# Empty compiler generated dependencies file for bench_fig6_snort_monitor.
# This may be replaced when dependencies are built.
