file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_setup.dir/bench_ablation_setup.cpp.o"
  "CMakeFiles/bench_ablation_setup.dir/bench_ablation_setup.cpp.o.d"
  "bench_ablation_setup"
  "bench_ablation_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
