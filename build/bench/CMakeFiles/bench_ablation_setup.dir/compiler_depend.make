# Empty compiler generated dependencies file for bench_ablation_setup.
# This may be replaced when dependencies are built.
