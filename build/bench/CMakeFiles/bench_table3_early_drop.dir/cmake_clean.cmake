file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_early_drop.dir/bench_table3_early_drop.cpp.o"
  "CMakeFiles/bench_table3_early_drop.dir/bench_table3_early_drop.cpp.o.d"
  "bench_table3_early_drop"
  "bench_table3_early_drop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_early_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
