# Empty compiler generated dependencies file for bench_table3_early_drop.
# This may be replaced when dependencies are built.
