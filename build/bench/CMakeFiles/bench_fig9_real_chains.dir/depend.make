# Empty dependencies file for bench_fig9_real_chains.
# This may be replaced when dependencies are built.
