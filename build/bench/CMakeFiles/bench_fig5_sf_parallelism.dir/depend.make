# Empty dependencies file for bench_fig5_sf_parallelism.
# This may be replaced when dependencies are built.
