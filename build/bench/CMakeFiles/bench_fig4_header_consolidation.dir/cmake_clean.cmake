file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_header_consolidation.dir/bench_fig4_header_consolidation.cpp.o"
  "CMakeFiles/bench_fig4_header_consolidation.dir/bench_fig4_header_consolidation.cpp.o.d"
  "bench_fig4_header_consolidation"
  "bench_fig4_header_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_header_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
