# Empty compiler generated dependencies file for bench_fig4_header_consolidation.
# This may be replaced when dependencies are built.
