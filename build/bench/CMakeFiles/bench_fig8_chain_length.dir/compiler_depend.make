# Empty compiler generated dependencies file for bench_fig8_chain_length.
# This may be replaced when dependencies are built.
