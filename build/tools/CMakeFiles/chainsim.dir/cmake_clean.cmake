file(REMOVE_RECURSE
  "CMakeFiles/chainsim.dir/chainsim.cpp.o"
  "CMakeFiles/chainsim.dir/chainsim.cpp.o.d"
  "chainsim"
  "chainsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chainsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
