# Empty compiler generated dependencies file for chainsim.
# This may be replaced when dependencies are built.
