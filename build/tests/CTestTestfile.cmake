# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_util "/root/repo/build/tests/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;speedybox_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_net "/root/repo/build/tests/test_net")
set_tests_properties(test_net PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;22;speedybox_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;31;speedybox_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_property "/root/repo/build/tests/test_property")
set_tests_properties(test_property PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;42;speedybox_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_nf "/root/repo/build/tests/test_nf")
set_tests_properties(test_nf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;50;speedybox_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_trace "/root/repo/build/tests/test_trace")
set_tests_properties(test_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;65;speedybox_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_platform "/root/repo/build/tests/test_platform")
set_tests_properties(test_platform PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;71;speedybox_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_runtime "/root/repo/build/tests/test_runtime")
set_tests_properties(test_runtime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;76;speedybox_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;83;speedybox_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_equivalence "/root/repo/build/tests/test_equivalence")
set_tests_properties(test_equivalence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;93;speedybox_add_test;/root/repo/tests/CMakeLists.txt;0;")
