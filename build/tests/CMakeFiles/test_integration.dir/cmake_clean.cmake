file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/early_drop_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/early_drop_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/event_integration_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/event_integration_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/fastpath_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/fastpath_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/flow_lifecycle_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/flow_lifecycle_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/idle_expiry_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/idle_expiry_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/speedybox_pipeline_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/speedybox_pipeline_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/vpn_chain_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/vpn_chain_test.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
