file(REMOVE_RECURSE
  "CMakeFiles/test_platform.dir/unit/platform/costs_test.cpp.o"
  "CMakeFiles/test_platform.dir/unit/platform/costs_test.cpp.o.d"
  "CMakeFiles/test_platform.dir/unit/platform/onvm_pipeline_test.cpp.o"
  "CMakeFiles/test_platform.dir/unit/platform/onvm_pipeline_test.cpp.o.d"
  "test_platform"
  "test_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
