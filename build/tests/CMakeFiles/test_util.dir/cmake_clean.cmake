file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/unit/util/cycle_clock_test.cpp.o"
  "CMakeFiles/test_util.dir/unit/util/cycle_clock_test.cpp.o.d"
  "CMakeFiles/test_util.dir/unit/util/hash_test.cpp.o"
  "CMakeFiles/test_util.dir/unit/util/hash_test.cpp.o.d"
  "CMakeFiles/test_util.dir/unit/util/histogram_test.cpp.o"
  "CMakeFiles/test_util.dir/unit/util/histogram_test.cpp.o.d"
  "CMakeFiles/test_util.dir/unit/util/logging_test.cpp.o"
  "CMakeFiles/test_util.dir/unit/util/logging_test.cpp.o.d"
  "CMakeFiles/test_util.dir/unit/util/rng_test.cpp.o"
  "CMakeFiles/test_util.dir/unit/util/rng_test.cpp.o.d"
  "CMakeFiles/test_util.dir/unit/util/spsc_ring_test.cpp.o"
  "CMakeFiles/test_util.dir/unit/util/spsc_ring_test.cpp.o.d"
  "CMakeFiles/test_util.dir/unit/util/thread_pool_test.cpp.o"
  "CMakeFiles/test_util.dir/unit/util/thread_pool_test.cpp.o.d"
  "test_util"
  "test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
