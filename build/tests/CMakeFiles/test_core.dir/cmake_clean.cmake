file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/unit/core/api_test.cpp.o"
  "CMakeFiles/test_core.dir/unit/core/api_test.cpp.o.d"
  "CMakeFiles/test_core.dir/unit/core/classifier_test.cpp.o"
  "CMakeFiles/test_core.dir/unit/core/classifier_test.cpp.o.d"
  "CMakeFiles/test_core.dir/unit/core/event_table_test.cpp.o"
  "CMakeFiles/test_core.dir/unit/core/event_table_test.cpp.o.d"
  "CMakeFiles/test_core.dir/unit/core/fastpath_measurement_test.cpp.o"
  "CMakeFiles/test_core.dir/unit/core/fastpath_measurement_test.cpp.o.d"
  "CMakeFiles/test_core.dir/unit/core/global_mat_test.cpp.o"
  "CMakeFiles/test_core.dir/unit/core/global_mat_test.cpp.o.d"
  "CMakeFiles/test_core.dir/unit/core/header_action_test.cpp.o"
  "CMakeFiles/test_core.dir/unit/core/header_action_test.cpp.o.d"
  "CMakeFiles/test_core.dir/unit/core/local_mat_test.cpp.o"
  "CMakeFiles/test_core.dir/unit/core/local_mat_test.cpp.o.d"
  "CMakeFiles/test_core.dir/unit/core/parallel_schedule_test.cpp.o"
  "CMakeFiles/test_core.dir/unit/core/parallel_schedule_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
