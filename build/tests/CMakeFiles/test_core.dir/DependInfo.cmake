
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/unit/core/api_test.cpp" "tests/CMakeFiles/test_core.dir/unit/core/api_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/unit/core/api_test.cpp.o.d"
  "/root/repo/tests/unit/core/classifier_test.cpp" "tests/CMakeFiles/test_core.dir/unit/core/classifier_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/unit/core/classifier_test.cpp.o.d"
  "/root/repo/tests/unit/core/event_table_test.cpp" "tests/CMakeFiles/test_core.dir/unit/core/event_table_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/unit/core/event_table_test.cpp.o.d"
  "/root/repo/tests/unit/core/fastpath_measurement_test.cpp" "tests/CMakeFiles/test_core.dir/unit/core/fastpath_measurement_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/unit/core/fastpath_measurement_test.cpp.o.d"
  "/root/repo/tests/unit/core/global_mat_test.cpp" "tests/CMakeFiles/test_core.dir/unit/core/global_mat_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/unit/core/global_mat_test.cpp.o.d"
  "/root/repo/tests/unit/core/header_action_test.cpp" "tests/CMakeFiles/test_core.dir/unit/core/header_action_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/unit/core/header_action_test.cpp.o.d"
  "/root/repo/tests/unit/core/local_mat_test.cpp" "tests/CMakeFiles/test_core.dir/unit/core/local_mat_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/unit/core/local_mat_test.cpp.o.d"
  "/root/repo/tests/unit/core/parallel_schedule_test.cpp" "tests/CMakeFiles/test_core.dir/unit/core/parallel_schedule_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/unit/core/parallel_schedule_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/speedybox_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/speedybox_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/speedybox_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/nf/CMakeFiles/speedybox_nf.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/speedybox_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/speedybox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/speedybox_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
