file(REMOVE_RECURSE
  "CMakeFiles/test_property.dir/property/checksum_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/checksum_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/consolidation_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/consolidation_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/maglev_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/maglev_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/robustness_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/robustness_property_test.cpp.o.d"
  "CMakeFiles/test_property.dir/property/schedule_property_test.cpp.o"
  "CMakeFiles/test_property.dir/property/schedule_property_test.cpp.o.d"
  "test_property"
  "test_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
