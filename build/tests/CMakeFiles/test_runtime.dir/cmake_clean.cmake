file(REMOVE_RECURSE
  "CMakeFiles/test_runtime.dir/unit/runtime/accounting_test.cpp.o"
  "CMakeFiles/test_runtime.dir/unit/runtime/accounting_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/unit/runtime/chain_test.cpp.o"
  "CMakeFiles/test_runtime.dir/unit/runtime/chain_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/unit/runtime/parallel_executor_test.cpp.o"
  "CMakeFiles/test_runtime.dir/unit/runtime/parallel_executor_test.cpp.o.d"
  "CMakeFiles/test_runtime.dir/unit/runtime/runner_test.cpp.o"
  "CMakeFiles/test_runtime.dir/unit/runtime/runner_test.cpp.o.d"
  "test_runtime"
  "test_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
