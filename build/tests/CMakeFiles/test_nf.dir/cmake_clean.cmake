file(REMOVE_RECURSE
  "CMakeFiles/test_nf.dir/unit/nf/aho_corasick_test.cpp.o"
  "CMakeFiles/test_nf.dir/unit/nf/aho_corasick_test.cpp.o.d"
  "CMakeFiles/test_nf.dir/unit/nf/dos_prevention_test.cpp.o"
  "CMakeFiles/test_nf.dir/unit/nf/dos_prevention_test.cpp.o.d"
  "CMakeFiles/test_nf.dir/unit/nf/gateway_test.cpp.o"
  "CMakeFiles/test_nf.dir/unit/nf/gateway_test.cpp.o.d"
  "CMakeFiles/test_nf.dir/unit/nf/ip_filter_test.cpp.o"
  "CMakeFiles/test_nf.dir/unit/nf/ip_filter_test.cpp.o.d"
  "CMakeFiles/test_nf.dir/unit/nf/maglev_test.cpp.o"
  "CMakeFiles/test_nf.dir/unit/nf/maglev_test.cpp.o.d"
  "CMakeFiles/test_nf.dir/unit/nf/mazu_nat_test.cpp.o"
  "CMakeFiles/test_nf.dir/unit/nf/mazu_nat_test.cpp.o.d"
  "CMakeFiles/test_nf.dir/unit/nf/monitor_heavy_test.cpp.o"
  "CMakeFiles/test_nf.dir/unit/nf/monitor_heavy_test.cpp.o.d"
  "CMakeFiles/test_nf.dir/unit/nf/monitor_test.cpp.o"
  "CMakeFiles/test_nf.dir/unit/nf/monitor_test.cpp.o.d"
  "CMakeFiles/test_nf.dir/unit/nf/snort_rule_test.cpp.o"
  "CMakeFiles/test_nf.dir/unit/nf/snort_rule_test.cpp.o.d"
  "CMakeFiles/test_nf.dir/unit/nf/snort_test.cpp.o"
  "CMakeFiles/test_nf.dir/unit/nf/snort_test.cpp.o.d"
  "CMakeFiles/test_nf.dir/unit/nf/synthetic_test.cpp.o"
  "CMakeFiles/test_nf.dir/unit/nf/synthetic_test.cpp.o.d"
  "CMakeFiles/test_nf.dir/unit/nf/vpn_gateway_test.cpp.o"
  "CMakeFiles/test_nf.dir/unit/nf/vpn_gateway_test.cpp.o.d"
  "test_nf"
  "test_nf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
