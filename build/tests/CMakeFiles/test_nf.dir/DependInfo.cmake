
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/unit/nf/aho_corasick_test.cpp" "tests/CMakeFiles/test_nf.dir/unit/nf/aho_corasick_test.cpp.o" "gcc" "tests/CMakeFiles/test_nf.dir/unit/nf/aho_corasick_test.cpp.o.d"
  "/root/repo/tests/unit/nf/dos_prevention_test.cpp" "tests/CMakeFiles/test_nf.dir/unit/nf/dos_prevention_test.cpp.o" "gcc" "tests/CMakeFiles/test_nf.dir/unit/nf/dos_prevention_test.cpp.o.d"
  "/root/repo/tests/unit/nf/gateway_test.cpp" "tests/CMakeFiles/test_nf.dir/unit/nf/gateway_test.cpp.o" "gcc" "tests/CMakeFiles/test_nf.dir/unit/nf/gateway_test.cpp.o.d"
  "/root/repo/tests/unit/nf/ip_filter_test.cpp" "tests/CMakeFiles/test_nf.dir/unit/nf/ip_filter_test.cpp.o" "gcc" "tests/CMakeFiles/test_nf.dir/unit/nf/ip_filter_test.cpp.o.d"
  "/root/repo/tests/unit/nf/maglev_test.cpp" "tests/CMakeFiles/test_nf.dir/unit/nf/maglev_test.cpp.o" "gcc" "tests/CMakeFiles/test_nf.dir/unit/nf/maglev_test.cpp.o.d"
  "/root/repo/tests/unit/nf/mazu_nat_test.cpp" "tests/CMakeFiles/test_nf.dir/unit/nf/mazu_nat_test.cpp.o" "gcc" "tests/CMakeFiles/test_nf.dir/unit/nf/mazu_nat_test.cpp.o.d"
  "/root/repo/tests/unit/nf/monitor_heavy_test.cpp" "tests/CMakeFiles/test_nf.dir/unit/nf/monitor_heavy_test.cpp.o" "gcc" "tests/CMakeFiles/test_nf.dir/unit/nf/monitor_heavy_test.cpp.o.d"
  "/root/repo/tests/unit/nf/monitor_test.cpp" "tests/CMakeFiles/test_nf.dir/unit/nf/monitor_test.cpp.o" "gcc" "tests/CMakeFiles/test_nf.dir/unit/nf/monitor_test.cpp.o.d"
  "/root/repo/tests/unit/nf/snort_rule_test.cpp" "tests/CMakeFiles/test_nf.dir/unit/nf/snort_rule_test.cpp.o" "gcc" "tests/CMakeFiles/test_nf.dir/unit/nf/snort_rule_test.cpp.o.d"
  "/root/repo/tests/unit/nf/snort_test.cpp" "tests/CMakeFiles/test_nf.dir/unit/nf/snort_test.cpp.o" "gcc" "tests/CMakeFiles/test_nf.dir/unit/nf/snort_test.cpp.o.d"
  "/root/repo/tests/unit/nf/synthetic_test.cpp" "tests/CMakeFiles/test_nf.dir/unit/nf/synthetic_test.cpp.o" "gcc" "tests/CMakeFiles/test_nf.dir/unit/nf/synthetic_test.cpp.o.d"
  "/root/repo/tests/unit/nf/vpn_gateway_test.cpp" "tests/CMakeFiles/test_nf.dir/unit/nf/vpn_gateway_test.cpp.o" "gcc" "tests/CMakeFiles/test_nf.dir/unit/nf/vpn_gateway_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/speedybox_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/speedybox_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/speedybox_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/nf/CMakeFiles/speedybox_nf.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/speedybox_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/speedybox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/speedybox_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
