
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/unit/trace/payload_synth_test.cpp" "tests/CMakeFiles/test_trace.dir/unit/trace/payload_synth_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/unit/trace/payload_synth_test.cpp.o.d"
  "/root/repo/tests/unit/trace/pcap_test.cpp" "tests/CMakeFiles/test_trace.dir/unit/trace/pcap_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/unit/trace/pcap_test.cpp.o.d"
  "/root/repo/tests/unit/trace/workload_test.cpp" "tests/CMakeFiles/test_trace.dir/unit/trace/workload_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/unit/trace/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/speedybox_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/speedybox_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/speedybox_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/nf/CMakeFiles/speedybox_nf.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/speedybox_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/speedybox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/speedybox_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
