file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/unit/trace/payload_synth_test.cpp.o"
  "CMakeFiles/test_trace.dir/unit/trace/payload_synth_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/unit/trace/pcap_test.cpp.o"
  "CMakeFiles/test_trace.dir/unit/trace/pcap_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/unit/trace/workload_test.cpp.o"
  "CMakeFiles/test_trace.dir/unit/trace/workload_test.cpp.o.d"
  "test_trace"
  "test_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
