file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/unit/net/checksum_test.cpp.o"
  "CMakeFiles/test_net.dir/unit/net/checksum_test.cpp.o.d"
  "CMakeFiles/test_net.dir/unit/net/encap_test.cpp.o"
  "CMakeFiles/test_net.dir/unit/net/encap_test.cpp.o.d"
  "CMakeFiles/test_net.dir/unit/net/fields_test.cpp.o"
  "CMakeFiles/test_net.dir/unit/net/fields_test.cpp.o.d"
  "CMakeFiles/test_net.dir/unit/net/five_tuple_test.cpp.o"
  "CMakeFiles/test_net.dir/unit/net/five_tuple_test.cpp.o.d"
  "CMakeFiles/test_net.dir/unit/net/packet_builder_test.cpp.o"
  "CMakeFiles/test_net.dir/unit/net/packet_builder_test.cpp.o.d"
  "CMakeFiles/test_net.dir/unit/net/packet_test.cpp.o"
  "CMakeFiles/test_net.dir/unit/net/packet_test.cpp.o.d"
  "test_net"
  "test_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
