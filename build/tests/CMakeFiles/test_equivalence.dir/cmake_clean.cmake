file(REMOVE_RECURSE
  "CMakeFiles/test_equivalence.dir/equivalence/gateway_chain_equivalence_test.cpp.o"
  "CMakeFiles/test_equivalence.dir/equivalence/gateway_chain_equivalence_test.cpp.o.d"
  "CMakeFiles/test_equivalence.dir/equivalence/maglev_event_equivalence_test.cpp.o"
  "CMakeFiles/test_equivalence.dir/equivalence/maglev_event_equivalence_test.cpp.o.d"
  "CMakeFiles/test_equivalence.dir/equivalence/real_chain_equivalence_test.cpp.o"
  "CMakeFiles/test_equivalence.dir/equivalence/real_chain_equivalence_test.cpp.o.d"
  "CMakeFiles/test_equivalence.dir/equivalence/snort_equivalence_test.cpp.o"
  "CMakeFiles/test_equivalence.dir/equivalence/snort_equivalence_test.cpp.o.d"
  "test_equivalence"
  "test_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
