
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/chain.cpp" "src/runtime/CMakeFiles/speedybox_runtime.dir/chain.cpp.o" "gcc" "src/runtime/CMakeFiles/speedybox_runtime.dir/chain.cpp.o.d"
  "/root/repo/src/runtime/parallel_executor.cpp" "src/runtime/CMakeFiles/speedybox_runtime.dir/parallel_executor.cpp.o" "gcc" "src/runtime/CMakeFiles/speedybox_runtime.dir/parallel_executor.cpp.o.d"
  "/root/repo/src/runtime/runner.cpp" "src/runtime/CMakeFiles/speedybox_runtime.dir/runner.cpp.o" "gcc" "src/runtime/CMakeFiles/speedybox_runtime.dir/runner.cpp.o.d"
  "/root/repo/src/runtime/speedybox_pipeline.cpp" "src/runtime/CMakeFiles/speedybox_runtime.dir/speedybox_pipeline.cpp.o" "gcc" "src/runtime/CMakeFiles/speedybox_runtime.dir/speedybox_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/speedybox_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/nf/CMakeFiles/speedybox_nf.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/speedybox_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/speedybox_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/speedybox_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/speedybox_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
