file(REMOVE_RECURSE
  "CMakeFiles/speedybox_runtime.dir/chain.cpp.o"
  "CMakeFiles/speedybox_runtime.dir/chain.cpp.o.d"
  "CMakeFiles/speedybox_runtime.dir/parallel_executor.cpp.o"
  "CMakeFiles/speedybox_runtime.dir/parallel_executor.cpp.o.d"
  "CMakeFiles/speedybox_runtime.dir/runner.cpp.o"
  "CMakeFiles/speedybox_runtime.dir/runner.cpp.o.d"
  "CMakeFiles/speedybox_runtime.dir/speedybox_pipeline.cpp.o"
  "CMakeFiles/speedybox_runtime.dir/speedybox_pipeline.cpp.o.d"
  "libspeedybox_runtime.a"
  "libspeedybox_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedybox_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
