file(REMOVE_RECURSE
  "libspeedybox_runtime.a"
)
