# Empty dependencies file for speedybox_runtime.
# This may be replaced when dependencies are built.
