file(REMOVE_RECURSE
  "libspeedybox_trace.a"
)
