file(REMOVE_RECURSE
  "CMakeFiles/speedybox_trace.dir/payload_synth.cpp.o"
  "CMakeFiles/speedybox_trace.dir/payload_synth.cpp.o.d"
  "CMakeFiles/speedybox_trace.dir/pcap.cpp.o"
  "CMakeFiles/speedybox_trace.dir/pcap.cpp.o.d"
  "CMakeFiles/speedybox_trace.dir/workload.cpp.o"
  "CMakeFiles/speedybox_trace.dir/workload.cpp.o.d"
  "libspeedybox_trace.a"
  "libspeedybox_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedybox_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
