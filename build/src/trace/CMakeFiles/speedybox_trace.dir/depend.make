# Empty dependencies file for speedybox_trace.
# This may be replaced when dependencies are built.
