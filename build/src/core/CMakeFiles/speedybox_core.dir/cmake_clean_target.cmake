file(REMOVE_RECURSE
  "libspeedybox_core.a"
)
