file(REMOVE_RECURSE
  "CMakeFiles/speedybox_core.dir/classifier.cpp.o"
  "CMakeFiles/speedybox_core.dir/classifier.cpp.o.d"
  "CMakeFiles/speedybox_core.dir/event_table.cpp.o"
  "CMakeFiles/speedybox_core.dir/event_table.cpp.o.d"
  "CMakeFiles/speedybox_core.dir/global_mat.cpp.o"
  "CMakeFiles/speedybox_core.dir/global_mat.cpp.o.d"
  "CMakeFiles/speedybox_core.dir/header_action.cpp.o"
  "CMakeFiles/speedybox_core.dir/header_action.cpp.o.d"
  "CMakeFiles/speedybox_core.dir/parallel_schedule.cpp.o"
  "CMakeFiles/speedybox_core.dir/parallel_schedule.cpp.o.d"
  "libspeedybox_core.a"
  "libspeedybox_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedybox_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
