
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classifier.cpp" "src/core/CMakeFiles/speedybox_core.dir/classifier.cpp.o" "gcc" "src/core/CMakeFiles/speedybox_core.dir/classifier.cpp.o.d"
  "/root/repo/src/core/event_table.cpp" "src/core/CMakeFiles/speedybox_core.dir/event_table.cpp.o" "gcc" "src/core/CMakeFiles/speedybox_core.dir/event_table.cpp.o.d"
  "/root/repo/src/core/global_mat.cpp" "src/core/CMakeFiles/speedybox_core.dir/global_mat.cpp.o" "gcc" "src/core/CMakeFiles/speedybox_core.dir/global_mat.cpp.o.d"
  "/root/repo/src/core/header_action.cpp" "src/core/CMakeFiles/speedybox_core.dir/header_action.cpp.o" "gcc" "src/core/CMakeFiles/speedybox_core.dir/header_action.cpp.o.d"
  "/root/repo/src/core/parallel_schedule.cpp" "src/core/CMakeFiles/speedybox_core.dir/parallel_schedule.cpp.o" "gcc" "src/core/CMakeFiles/speedybox_core.dir/parallel_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/speedybox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/speedybox_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
