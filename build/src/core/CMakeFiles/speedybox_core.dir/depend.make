# Empty dependencies file for speedybox_core.
# This may be replaced when dependencies are built.
