# Empty compiler generated dependencies file for speedybox_util.
# This may be replaced when dependencies are built.
