file(REMOVE_RECURSE
  "CMakeFiles/speedybox_util.dir/cycle_clock.cpp.o"
  "CMakeFiles/speedybox_util.dir/cycle_clock.cpp.o.d"
  "CMakeFiles/speedybox_util.dir/histogram.cpp.o"
  "CMakeFiles/speedybox_util.dir/histogram.cpp.o.d"
  "CMakeFiles/speedybox_util.dir/logging.cpp.o"
  "CMakeFiles/speedybox_util.dir/logging.cpp.o.d"
  "CMakeFiles/speedybox_util.dir/thread_pool.cpp.o"
  "CMakeFiles/speedybox_util.dir/thread_pool.cpp.o.d"
  "libspeedybox_util.a"
  "libspeedybox_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedybox_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
