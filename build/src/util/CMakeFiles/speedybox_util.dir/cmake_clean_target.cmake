file(REMOVE_RECURSE
  "libspeedybox_util.a"
)
