
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nf/aho_corasick.cpp" "src/nf/CMakeFiles/speedybox_nf.dir/aho_corasick.cpp.o" "gcc" "src/nf/CMakeFiles/speedybox_nf.dir/aho_corasick.cpp.o.d"
  "/root/repo/src/nf/dos_prevention.cpp" "src/nf/CMakeFiles/speedybox_nf.dir/dos_prevention.cpp.o" "gcc" "src/nf/CMakeFiles/speedybox_nf.dir/dos_prevention.cpp.o.d"
  "/root/repo/src/nf/gateway.cpp" "src/nf/CMakeFiles/speedybox_nf.dir/gateway.cpp.o" "gcc" "src/nf/CMakeFiles/speedybox_nf.dir/gateway.cpp.o.d"
  "/root/repo/src/nf/ip_filter.cpp" "src/nf/CMakeFiles/speedybox_nf.dir/ip_filter.cpp.o" "gcc" "src/nf/CMakeFiles/speedybox_nf.dir/ip_filter.cpp.o.d"
  "/root/repo/src/nf/maglev_hash.cpp" "src/nf/CMakeFiles/speedybox_nf.dir/maglev_hash.cpp.o" "gcc" "src/nf/CMakeFiles/speedybox_nf.dir/maglev_hash.cpp.o.d"
  "/root/repo/src/nf/maglev_lb.cpp" "src/nf/CMakeFiles/speedybox_nf.dir/maglev_lb.cpp.o" "gcc" "src/nf/CMakeFiles/speedybox_nf.dir/maglev_lb.cpp.o.d"
  "/root/repo/src/nf/mazu_nat.cpp" "src/nf/CMakeFiles/speedybox_nf.dir/mazu_nat.cpp.o" "gcc" "src/nf/CMakeFiles/speedybox_nf.dir/mazu_nat.cpp.o.d"
  "/root/repo/src/nf/monitor.cpp" "src/nf/CMakeFiles/speedybox_nf.dir/monitor.cpp.o" "gcc" "src/nf/CMakeFiles/speedybox_nf.dir/monitor.cpp.o.d"
  "/root/repo/src/nf/snort_ids.cpp" "src/nf/CMakeFiles/speedybox_nf.dir/snort_ids.cpp.o" "gcc" "src/nf/CMakeFiles/speedybox_nf.dir/snort_ids.cpp.o.d"
  "/root/repo/src/nf/snort_rule.cpp" "src/nf/CMakeFiles/speedybox_nf.dir/snort_rule.cpp.o" "gcc" "src/nf/CMakeFiles/speedybox_nf.dir/snort_rule.cpp.o.d"
  "/root/repo/src/nf/synthetic_nf.cpp" "src/nf/CMakeFiles/speedybox_nf.dir/synthetic_nf.cpp.o" "gcc" "src/nf/CMakeFiles/speedybox_nf.dir/synthetic_nf.cpp.o.d"
  "/root/repo/src/nf/vpn_gateway.cpp" "src/nf/CMakeFiles/speedybox_nf.dir/vpn_gateway.cpp.o" "gcc" "src/nf/CMakeFiles/speedybox_nf.dir/vpn_gateway.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/speedybox_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/speedybox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/speedybox_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
