file(REMOVE_RECURSE
  "CMakeFiles/speedybox_nf.dir/aho_corasick.cpp.o"
  "CMakeFiles/speedybox_nf.dir/aho_corasick.cpp.o.d"
  "CMakeFiles/speedybox_nf.dir/dos_prevention.cpp.o"
  "CMakeFiles/speedybox_nf.dir/dos_prevention.cpp.o.d"
  "CMakeFiles/speedybox_nf.dir/gateway.cpp.o"
  "CMakeFiles/speedybox_nf.dir/gateway.cpp.o.d"
  "CMakeFiles/speedybox_nf.dir/ip_filter.cpp.o"
  "CMakeFiles/speedybox_nf.dir/ip_filter.cpp.o.d"
  "CMakeFiles/speedybox_nf.dir/maglev_hash.cpp.o"
  "CMakeFiles/speedybox_nf.dir/maglev_hash.cpp.o.d"
  "CMakeFiles/speedybox_nf.dir/maglev_lb.cpp.o"
  "CMakeFiles/speedybox_nf.dir/maglev_lb.cpp.o.d"
  "CMakeFiles/speedybox_nf.dir/mazu_nat.cpp.o"
  "CMakeFiles/speedybox_nf.dir/mazu_nat.cpp.o.d"
  "CMakeFiles/speedybox_nf.dir/monitor.cpp.o"
  "CMakeFiles/speedybox_nf.dir/monitor.cpp.o.d"
  "CMakeFiles/speedybox_nf.dir/snort_ids.cpp.o"
  "CMakeFiles/speedybox_nf.dir/snort_ids.cpp.o.d"
  "CMakeFiles/speedybox_nf.dir/snort_rule.cpp.o"
  "CMakeFiles/speedybox_nf.dir/snort_rule.cpp.o.d"
  "CMakeFiles/speedybox_nf.dir/synthetic_nf.cpp.o"
  "CMakeFiles/speedybox_nf.dir/synthetic_nf.cpp.o.d"
  "CMakeFiles/speedybox_nf.dir/vpn_gateway.cpp.o"
  "CMakeFiles/speedybox_nf.dir/vpn_gateway.cpp.o.d"
  "libspeedybox_nf.a"
  "libspeedybox_nf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedybox_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
