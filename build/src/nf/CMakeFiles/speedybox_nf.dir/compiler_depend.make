# Empty compiler generated dependencies file for speedybox_nf.
# This may be replaced when dependencies are built.
