file(REMOVE_RECURSE
  "libspeedybox_nf.a"
)
