file(REMOVE_RECURSE
  "CMakeFiles/speedybox_net.dir/checksum.cpp.o"
  "CMakeFiles/speedybox_net.dir/checksum.cpp.o.d"
  "CMakeFiles/speedybox_net.dir/fields.cpp.o"
  "CMakeFiles/speedybox_net.dir/fields.cpp.o.d"
  "CMakeFiles/speedybox_net.dir/packet.cpp.o"
  "CMakeFiles/speedybox_net.dir/packet.cpp.o.d"
  "CMakeFiles/speedybox_net.dir/packet_builder.cpp.o"
  "CMakeFiles/speedybox_net.dir/packet_builder.cpp.o.d"
  "libspeedybox_net.a"
  "libspeedybox_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedybox_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
