# Empty compiler generated dependencies file for speedybox_net.
# This may be replaced when dependencies are built.
