file(REMOVE_RECURSE
  "libspeedybox_net.a"
)
