# Empty compiler generated dependencies file for speedybox_platform.
# This may be replaced when dependencies are built.
