file(REMOVE_RECURSE
  "libspeedybox_platform.a"
)
