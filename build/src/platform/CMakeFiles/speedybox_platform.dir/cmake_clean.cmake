file(REMOVE_RECURSE
  "CMakeFiles/speedybox_platform.dir/costs.cpp.o"
  "CMakeFiles/speedybox_platform.dir/costs.cpp.o.d"
  "CMakeFiles/speedybox_platform.dir/onvm_pipeline.cpp.o"
  "CMakeFiles/speedybox_platform.dir/onvm_pipeline.cpp.o.d"
  "libspeedybox_platform.a"
  "libspeedybox_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedybox_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
