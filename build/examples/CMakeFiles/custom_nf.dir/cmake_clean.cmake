file(REMOVE_RECURSE
  "CMakeFiles/custom_nf.dir/custom_nf.cpp.o"
  "CMakeFiles/custom_nf.dir/custom_nf.cpp.o.d"
  "custom_nf"
  "custom_nf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
