# Empty dependencies file for custom_nf.
# This may be replaced when dependencies are built.
