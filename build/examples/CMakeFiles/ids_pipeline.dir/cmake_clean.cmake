file(REMOVE_RECURSE
  "CMakeFiles/ids_pipeline.dir/ids_pipeline.cpp.o"
  "CMakeFiles/ids_pipeline.dir/ids_pipeline.cpp.o.d"
  "ids_pipeline"
  "ids_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
