// Quickstart: the smallest end-to-end use of the SpeedyBox public API.
//
// Builds a 3-NF chain (NAT -> Monitor -> Firewall), sends a few packets of
// two flows through the SpeedyBox data path, and prints what happened:
// which packet took the original (recording) path, what consolidated rule
// the Global MAT built, and how subsequent packets ride the fast path.
//
//   $ ./quickstart
#include <cstdio>

#include "nf/ip_filter.hpp"
#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "runtime/runner.hpp"
#include "util/cycle_clock.hpp"

using namespace speedybox;

int main() {
  // 1. Build the chain. ServiceChain owns NFs added via emplace_nf and
  //    wires up a Local MAT per NF plus the shared Global MAT + classifier.
  runtime::ServiceChain chain{"quickstart"};
  chain.emplace_nf<nf::MazuNat>();
  chain.emplace_nf<nf::Monitor>();
  chain.emplace_nf<nf::IpFilter>(std::vector<nf::AclRule>{
      nf::AclRule::drop_dst_port(23)});  // telnet is blocked

  // 2. Attach a runner: platform model (BESS-style run-to-completion here)
  //    + the SpeedyBox data path.
  runtime::ChainRunner runner{
      chain, {platform::PlatformKind::kBess, /*speedybox=*/true}};

  // 3. Two flows: one normal HTTP flow, one telnet flow that the firewall
  //    blacklists.
  net::FiveTuple http;
  http.src_ip = net::Ipv4Addr{192, 168, 1, 10};
  http.dst_ip = net::Ipv4Addr{10, 1, 0, 1};
  http.src_port = 40000;
  http.dst_port = 80;
  net::FiveTuple telnet = http;
  telnet.src_port = 40001;
  telnet.dst_port = 23;

  std::printf("--- sending 4 packets of the HTTP flow ---\n");
  for (int i = 0; i < 4; ++i) {
    net::Packet packet = net::make_tcp_packet(http, "GET / HTTP/1.1");
    const auto outcome = runner.process_packet(packet);
    std::printf("pkt %d: %-10s work=%5llu cycles  latency=%.3f us\n", i + 1,
                outcome.initial ? "initial" : "fast-path",
                static_cast<unsigned long long>(outcome.work_cycles),
                util::CycleClock::to_us(outcome.latency_cycles));
    if (i == 0) {
      const core::ConsolidatedRule* rule =
          chain.global_mat().find(packet.fid());
      std::printf("       consolidated rule: %s, %zu state-function "
                  "batch(es)\n",
                  rule->action.to_string().c_str(), rule->batches.size());
    }
  }

  std::printf("--- sending 3 packets of the telnet flow ---\n");
  for (int i = 0; i < 3; ++i) {
    net::Packet packet = net::make_tcp_packet(telnet, "root");
    const auto outcome = runner.process_packet(packet);
    std::printf("pkt %d: %-10s %s\n", i + 1,
                outcome.initial ? "initial" : "fast-path",
                outcome.dropped ? "DROPPED (early drop at chain head)"
                                : "forwarded");
  }

  const auto& monitor = dynamic_cast<const nf::Monitor&>(chain.nf(1));
  std::printf("--- final state ---\n");
  std::printf("monitor counted %llu packets / %llu bytes\n",
              static_cast<unsigned long long>(monitor.total_packets()),
              static_cast<unsigned long long>(monitor.total_bytes()));
  std::printf("classifier: %zu active flows, %llu initial / %llu subsequent\n",
              chain.classifier().active_flows(),
              static_cast<unsigned long long>(
                  chain.classifier().initial_count()),
              static_cast<unsigned long long>(
                  chain.classifier().subsequent_count()));
  std::printf("global MAT: %zu consolidated rules, %llu consolidations\n",
              chain.global_mat().size(),
              static_cast<unsigned long long>(
                  chain.global_mat().consolidations()));
  return 0;
}
