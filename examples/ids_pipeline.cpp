// IDS pipeline (the paper's Chain 2): IPFilter -> Snort -> Monitor.
//
// Synthesizes traffic where a fraction of flows carry payloads matching
// Snort's Pass / Alert / Log rules, runs the chain with and without
// SpeedyBox, and prints an equivalence audit of the inspection results —
// the §VII-C-1 case study as a runnable program.
//
//   $ ./ids_pipeline
#include <cstdio>
#include <memory>

#include "nf/ip_filter.hpp"
#include "nf/monitor.hpp"
#include "nf/snort_ids.hpp"
#include "runtime/runner.hpp"
#include "trace/payload_synth.hpp"

using namespace speedybox;

namespace {

struct Chain {
  std::unique_ptr<runtime::ServiceChain> chain =
      std::make_unique<runtime::ServiceChain>("ids");
  nf::SnortIds* snort = nullptr;
  nf::Monitor* monitor = nullptr;
};

Chain build_chain() {
  Chain c;
  c.chain->emplace_nf<nf::IpFilter>(std::vector<nf::AclRule>{
      nf::AclRule::drop_dst_prefix(net::Ipv4Addr{10, 1, 7, 0}, 24)});
  c.snort = &c.chain->emplace_nf<nf::SnortIds>(trace::default_snort_rules());
  c.monitor = &c.chain->emplace_nf<nf::Monitor>();
  return c;
}

struct Audit {
  std::vector<nf::SnortLogEntry> log;
  std::uint64_t alerts, logs, passes, drops;
};

Audit run_mode(bool speedybox, const trace::Workload& workload) {
  Chain c = build_chain();
  runtime::ChainRunner runner{
      *c.chain, {platform::PlatformKind::kBess, speedybox}};
  runner.run_workload(workload);
  return {c.snort->log(), c.snort->alert_count(), c.snort->log_count(),
          c.snort->pass_count(), runner.stats().drops};
}

}  // namespace

int main() {
  // Datacenter-style workload; 30% of flows carry rule-matching payloads.
  trace::DatacenterWorkloadConfig config;
  config.flow_count = 120;
  config.payload_size = 300;
  trace::Workload workload = make_datacenter_workload(config);
  trace::PayloadSynthConfig synth;
  synth.match_fraction = 0.3;
  const auto planted =
      plant_rule_contents(workload, trace::default_snort_rules(), synth);

  std::size_t planted_flows = 0;
  for (const auto p : planted) planted_flows += p >= 0;
  std::printf("IDS pipeline: IPFilter -> Snort -> Monitor\n");
  std::printf("workload: %zu flows (%zu with planted rule contents), %zu "
              "packets\n\n",
              workload.flows.size(), planted_flows, workload.packet_count());

  const Audit original = run_mode(false, workload);
  const Audit speedy = run_mode(true, workload);

  const auto show = [](const char* label, const Audit& audit) {
    std::printf("%-18s alerts=%-6llu logs=%-6llu passes=%-6llu drops=%llu\n",
                label, static_cast<unsigned long long>(audit.alerts),
                static_cast<unsigned long long>(audit.logs),
                static_cast<unsigned long long>(audit.passes),
                static_cast<unsigned long long>(audit.drops));
  };
  show("original chain:", original);
  show("with SpeedyBox:", speedy);

  const bool identical = original.log == speedy.log &&
                         original.alerts == speedy.alerts &&
                         original.logs == speedy.logs &&
                         original.passes == speedy.passes &&
                         original.drops == speedy.drops;
  std::printf("\nequivalence audit: %zu log entries compared entry-by-entry "
              "-> %s\n",
              original.log.size(), identical ? "IDENTICAL" : "MISMATCH");
  if (!original.log.empty()) {
    const auto& entry = original.log.front();
    std::printf("first entry: %s sid=%u action=%s\n",
                entry.tuple.to_string().c_str(), entry.sid,
                std::string(nf::snort_action_name(entry.action)).c_str());
  }
  return identical ? 0 : 1;
}
