// Enterprise service chain (the paper's Chain 1):
//
//   MazuNAT -> Maglev LB -> Monitor -> IPFilter
//
// on a datacenter-style workload, with a Maglev backend failure injected
// mid-run. Demonstrates: consolidation across four heterogeneous NFs,
// per-flow events rerouting established connections on the fast path, and
// the latency distribution with vs without SpeedyBox.
//
//   $ ./enterprise_chain
#include <cstdio>
#include <memory>

#include "nf/ip_filter.hpp"
#include "nf/maglev_lb.hpp"
#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "runtime/runner.hpp"
#include "trace/workload.hpp"

using namespace speedybox;

namespace {

struct Chain {
  std::unique_ptr<runtime::ServiceChain> chain =
      std::make_unique<runtime::ServiceChain>("enterprise");
  nf::MaglevLb* lb = nullptr;
  nf::Monitor* monitor = nullptr;
};

Chain build_chain() {
  Chain c;
  c.chain->emplace_nf<nf::MazuNat>();
  std::vector<nf::Backend> backends;
  for (int i = 0; i < 4; ++i) {
    backends.push_back({"web-" + std::to_string(i),
                        net::Ipv4Addr{10, 2, 0, static_cast<std::uint8_t>(
                                                    10 + i)},
                        static_cast<std::uint16_t>(8080), true});
  }
  c.lb = &c.chain->emplace_nf<nf::MaglevLb>(backends, std::size_t{65537});
  c.monitor = &c.chain->emplace_nf<nf::Monitor>();
  c.chain->emplace_nf<nf::IpFilter>(std::vector<nf::AclRule>{
      nf::AclRule::drop_src_ip(net::Ipv4Addr{192, 168, 66, 66})});
  return c;
}

void run_mode(const char* label, bool speedybox,
              const trace::Workload& workload) {
  Chain c = build_chain();
  runtime::ChainRunner runner{
      *c.chain, {platform::PlatformKind::kBess, speedybox}};

  const std::size_t fail_at = workload.order.size() / 2;
  for (std::size_t i = 0; i < workload.order.size(); ++i) {
    if (i == fail_at) {
      std::printf("  [%s] backend web-1 fails after packet %zu\n", label, i);
      c.lb->fail_backend(1);
    }
    net::Packet packet = workload.materialize(i);
    runner.process_packet(packet);
  }

  const auto& stats = runner.stats();
  std::printf("  [%s] %llu packets, %llu drops, %llu events triggered, "
              "%llu reroutes\n",
              label, static_cast<unsigned long long>(stats.packets),
              static_cast<unsigned long long>(stats.drops),
              static_cast<unsigned long long>(stats.events_triggered),
              static_cast<unsigned long long>(c.lb->reroutes()));
  std::printf("  [%s] subsequent-packet latency: %s\n", label,
              util::summarize_percentiles(stats.latency_us_subsequent)
                  .c_str());
  std::printf("  [%s] monitor totals: %llu packets / %llu bytes\n", label,
              static_cast<unsigned long long>(c.monitor->total_packets()),
              static_cast<unsigned long long>(c.monitor->total_bytes()));
  std::printf("  [%s] per-backend bytes:", label);
  for (std::size_t b = 0; b < c.lb->backends().size(); ++b) {
    std::printf(" %s=%llu", c.lb->backends()[b].name.c_str(),
                static_cast<unsigned long long>(
                    c.lb->bytes_per_backend()[b]));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  trace::DatacenterWorkloadConfig config;
  config.flow_count = 150;
  config.payload_size = 200;
  const trace::Workload workload = make_datacenter_workload(config);
  std::printf("enterprise chain: MazuNAT -> Maglev(4 backends) -> Monitor -> "
              "IPFilter\nworkload: %zu flows, %zu packets\n\n",
              workload.flows.size(), workload.packet_count());

  std::printf("original chain (no SpeedyBox):\n");
  run_mode("orig", false, workload);
  std::printf("\nwith SpeedyBox runtime consolidation:\n");
  run_mode("sbox", true, workload);
  std::printf("\nNote: identical drop counts, reroutes and monitor totals —\n"
              "the fast path is logically equivalent; only the latency "
              "changes.\n");
  return 0;
}
