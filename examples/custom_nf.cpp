// Tutorial: writing your own NF against the SpeedyBox API — the Fig. 3
// walkthrough as a runnable program.
//
// Implements a small rate-limiter NF from scratch (not one of the bundled
// NFs) and shows the full integration recipe:
//
//   1. process packets normally (parse, look up flow state, act);
//   2. on the recording pass, describe the behavior through the context:
//      header action, state function, event, teardown hook;
//   3. watch an event flip a flow's fast-path rule from modify to drop the
//      moment its counter crosses the threshold.
//
//   $ ./custom_nf
#include <cstdio>
#include <unordered_map>

#include "nf/network_function.hpp"
#include "runtime/runner.hpp"

using namespace speedybox;

namespace {

/// Example NF: marks flows with a DSCP class while they are under a packet
/// budget; flows exceeding the budget are dropped — the Fig. 3 pattern
/// (modify action replaced by drop through an event).
class RateLimiter final : public nf::NetworkFunction {
 public:
  explicit RateLimiter(std::uint64_t budget)
      : NetworkFunction("ratelimiter"), budget_(budget) {}

  void process(net::Packet& packet, core::SpeedyBoxContext* ctx) override {
    count_packet();
    const auto parsed = parse_and_check(packet);  // step 1: normal parsing
    if (!parsed) return;
    const net::FiveTuple tuple = net::extract_five_tuple(packet, *parsed);

    // Normal processing: verdict from the state *before* this packet
    // (evaluate-on-arrival, the Event Table semantics), then count.
    std::uint64_t& count = packets_seen_[tuple];
    if (count > budget_) {
      packet.mark_dropped();
      return;
    }
    ++count;
    core::apply_action_baseline(mark_action(), packet);

    if (ctx == nullptr) return;  // original path: nothing else to do

    // Step 2: record the same behavior into the Local MAT.
    ctx->add_header_action(mark_action());
    core::localmat_add_SF(
        ctx,
        [this, tuple](net::Packet&, const net::ParsedPacket&) {
          ++packets_seen_[tuple];
        },
        core::PayloadAccess::kIgnore, "ratelimiter.count");

    // Step 3: the event — when the budget is exceeded, replace this NF's
    // header actions for the flow with drop and re-consolidate.
    ctx->register_event(
        "ratelimiter.exceeded",
        [this, tuple] {
          const auto it = packets_seen_.find(tuple);
          return it != packets_seen_.end() && it->second > budget_;
        },
        [] {
          core::EventUpdate update;
          update.header_actions = {core::HeaderAction::drop()};
          return update;
        },
        /*one_shot=*/true);

    // Step 4: free per-flow state when the connection closes.
    ctx->on_teardown([this, tuple] { packets_seen_.erase(tuple); });
  }

 private:
  static core::HeaderAction mark_action() {
    return core::HeaderAction::modify(net::HeaderField::kTos,
                                      0xB8);  // DSCP EF
  }

  std::uint64_t budget_;
  std::unordered_map<net::FiveTuple, std::uint64_t, net::FiveTupleHash>
      packets_seen_;
};

}  // namespace

int main() {
  constexpr std::uint64_t kBudget = 5;
  runtime::ServiceChain chain{"custom"};
  chain.emplace_nf<RateLimiter>(kBudget);
  runtime::ChainRunner runner{
      chain, {platform::PlatformKind::kBess, /*speedybox=*/true}};

  net::FiveTuple flow;
  flow.src_ip = net::Ipv4Addr{192, 168, 0, 5};
  flow.dst_ip = net::Ipv4Addr{10, 1, 0, 9};
  flow.src_port = 5555;
  flow.dst_port = 80;

  std::printf("rate limiter budget: %llu packets per flow\n\n",
              static_cast<unsigned long long>(kBudget));
  for (int i = 1; i <= 10; ++i) {
    net::Packet packet = net::make_tcp_packet(flow, "data");
    const auto outcome = runner.process_packet(packet);
    const core::ConsolidatedRule* rule =
        chain.global_mat().find(packet.fid());
    std::printf("pkt %2d: %-9s %-9s  consolidated rule: %s\n", i,
                outcome.initial ? "initial" : "fast-path",
                outcome.dropped ? "DROPPED" : "marked",
                rule != nullptr ? rule->action.to_string().c_str() : "-");
  }
  std::printf("\nThe event fired when the counter crossed the budget: the\n"
              "flow's rule flipped from modify(tos) to drop and every later\n"
              "packet was dropped at the head of the chain (Fig. 3).\n");
  return 0;
}
