#include "platform/costs.hpp"

#include <gtest/gtest.h>

namespace speedybox::platform {
namespace {

TEST(PlatformCosts, MeasuredValuesPlausible) {
  const PlatformCosts costs = PlatformCosts::measure();
  // An indirect call costs a few cycles, never thousands.
  EXPECT_GE(costs.bess_hop_cycles, 1u);
  EXPECT_LT(costs.bess_hop_cycles, 2000u);
  // Ring hop = measured pair + cross-core penalty, so it is at least the
  // penalty and far below a microsecond.
  EXPECT_GE(costs.onvm_ring_hop_cycles, kCrossCorePenaltyCycles);
  EXPECT_LT(costs.onvm_ring_hop_cycles, 20000u);
}

TEST(PlatformCosts, OnvmHopDearerThanBessHop) {
  // The defining platform difference: shared-memory ring + cross-core
  // transfer costs more than an in-process module call.
  const PlatformCosts costs = PlatformCosts::measure();
  EXPECT_GT(costs.onvm_ring_hop_cycles, costs.bess_hop_cycles);
}

TEST(PlatformCosts, CalibratedSingletonStable) {
  const PlatformCosts& a = PlatformCosts::calibrated();
  const PlatformCosts& b = PlatformCosts::calibrated();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.bess_hop_cycles, b.bess_hop_cycles);
}

TEST(PlatformName, Stable) {
  EXPECT_STREQ(platform_name(PlatformKind::kBess), "BESS");
  EXPECT_STREQ(platform_name(PlatformKind::kOnvm), "ONVM");
}

}  // namespace
}  // namespace speedybox::platform
