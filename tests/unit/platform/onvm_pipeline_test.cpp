#include "platform/onvm_pipeline.hpp"

#include <gtest/gtest.h>

#include "nf/ip_filter.hpp"
#include "nf/monitor.hpp"
#include "nf/synthetic_nf.hpp"
#include "test_helpers.hpp"

namespace speedybox::platform {
namespace {

using speedybox::testing::tuple_n;

TEST(OnvmPipeline, AllPacketsTraverseAllStages) {
  nf::Monitor m1{"m1"}, m2{"m2"}, m3{"m3"};
  OnvmPipeline pipeline{{&m1, &m2, &m3}};
  constexpr int kPackets = 500;
  for (int i = 0; i < kPackets; ++i) {
    pipeline.push(net::make_tcp_packet(
        tuple_n(static_cast<std::uint32_t>(i % 10)), "data"));
  }
  const auto out = pipeline.stop_and_collect();
  EXPECT_EQ(out.size(), static_cast<std::size_t>(kPackets));
  EXPECT_EQ(m1.packets_processed(), static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(m2.packets_processed(), static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(m3.packets_processed(), static_cast<std::uint64_t>(kPackets));
}

TEST(OnvmPipeline, PreservesFifoOrder) {
  nf::Monitor m1{"m1"}, m2{"m2"};
  OnvmPipeline pipeline{{&m1, &m2}, 64};
  constexpr int kPackets = 300;
  for (int i = 0; i < kPackets; ++i) {
    // Encode sequence in the source port.
    net::FiveTuple tuple = tuple_n(1);
    tuple.src_port = static_cast<std::uint16_t>(1000 + i);
    pipeline.push(net::make_tcp_packet(tuple, "x"));
  }
  const auto out = pipeline.stop_and_collect();
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kPackets));
  for (int i = 0; i < kPackets; ++i) {
    const auto parsed = net::parse_packet(out[static_cast<std::size_t>(i)]);
    EXPECT_EQ(net::extract_five_tuple(out[static_cast<std::size_t>(i)],
                                      *parsed)
                  .src_port,
              1000 + i);
  }
}

TEST(OnvmPipeline, DroppedPacketsNeverReachDownstream) {
  nf::IpFilter filter{{nf::AclRule::drop_dst_port(80)}, "fw"};
  nf::Monitor monitor{"after"};
  OnvmPipeline pipeline{{&filter, &monitor}};
  for (int i = 0; i < 50; ++i) {
    pipeline.push(net::make_tcp_packet(tuple_n(1, 80), "blocked"));
    pipeline.push(net::make_tcp_packet(tuple_n(2, 443), "allowed"));
  }
  const auto out = pipeline.stop_and_collect();
  EXPECT_EQ(out.size(), 50u);
  EXPECT_EQ(monitor.packets_processed(), 50u);
  EXPECT_EQ(filter.drops(), 50u);
}

TEST(OnvmPipeline, StagesActuallyTransformPackets) {
  nf::SyntheticNfConfig config;
  config.access = core::PayloadAccess::kWrite;
  config.work_iterations = 1;
  nf::SyntheticNf writer{config, "writer"};
  OnvmPipeline pipeline{{&writer}};
  pipeline.push(net::make_tcp_packet(tuple_n(3), "mutate me"));
  const auto out = pipeline.stop_and_collect();
  ASSERT_EQ(out.size(), 1u);
  const net::Packet reference = net::make_tcp_packet(tuple_n(3), "mutate me");
  EXPECT_FALSE(speedybox::testing::same_bytes(out[0], reference));
}

TEST(OnvmPipeline, StopIdempotent) {
  nf::Monitor m{"m"};
  OnvmPipeline pipeline{{&m}};
  pipeline.push(net::make_tcp_packet(tuple_n(4), "x"));
  const auto first = pipeline.stop_and_collect();
  EXPECT_EQ(first.size(), 1u);
  const auto second = pipeline.stop_and_collect();
  EXPECT_TRUE(second.empty());
}

TEST(OnvmPipeline, SmallRingsBackpressureWithoutDeadlock) {
  nf::Monitor m1{"m1"}, m2{"m2"};
  OnvmPipeline pipeline{{&m1, &m2}, 2};  // tiny rings
  for (int i = 0; i < 200; ++i) {
    pipeline.push(net::make_tcp_packet(tuple_n(5), "x"));
  }
  EXPECT_EQ(pipeline.stop_and_collect().size(), 200u);
}

}  // namespace
}  // namespace speedybox::platform
