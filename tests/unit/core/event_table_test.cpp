#include "core/event_table.hpp"

#include <gtest/gtest.h>

namespace speedybox::core {
namespace {

EventRegistration make_event(std::uint32_t fid, bool* flag,
                             bool one_shot = true,
                             std::string name = "ev") {
  EventRegistration event;
  event.fid = fid;
  event.nf_index = 0;
  event.name = std::move(name);
  event.condition = [flag] { return *flag; };
  event.update = [] {
    EventUpdate update;
    update.header_actions = {HeaderAction::drop()};
    return update;
  };
  event.one_shot = one_shot;
  return event;
}

TEST(EventTable, NoEventsNoTriggers) {
  EventTable table;
  int triggered = 0;
  EXPECT_EQ(table.check(1, [&](const EventRegistration&, EventUpdate) {
    ++triggered;
  }),
            0u);
  EXPECT_EQ(triggered, 0);
}

TEST(EventTable, ConditionFalseDoesNotTrigger) {
  EventTable table;
  bool flag = false;
  table.register_event(make_event(1, &flag));
  EXPECT_EQ(table.check(1, [](const EventRegistration&, EventUpdate) {}),
            0u);
  EXPECT_TRUE(table.has_events(1));
  EXPECT_EQ(table.events_triggered(), 0u);
  EXPECT_EQ(table.checks_performed(), 1u);
}

TEST(EventTable, TriggerDeliversUpdate) {
  EventTable table;
  bool flag = true;
  table.register_event(make_event(1, &flag));
  bool got_drop = false;
  table.check(1, [&](const EventRegistration& event, EventUpdate update) {
    EXPECT_EQ(event.fid, 1u);
    ASSERT_TRUE(update.header_actions.has_value());
    got_drop = update.header_actions->at(0).type == HeaderActionType::kDrop;
  });
  EXPECT_TRUE(got_drop);
}

TEST(EventTable, OneShotDeregistersAfterTrigger) {
  EventTable table;
  bool flag = true;
  table.register_event(make_event(1, &flag, /*one_shot=*/true));
  EXPECT_EQ(table.check(1, [](const EventRegistration&, EventUpdate) {}),
            1u);
  EXPECT_FALSE(table.has_events(1));
  EXPECT_EQ(table.check(1, [](const EventRegistration&, EventUpdate) {}),
            0u);
}

TEST(EventTable, PersistentKeepsFiring) {
  EventTable table;
  bool flag = true;
  table.register_event(make_event(1, &flag, /*one_shot=*/false));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(table.check(1, [](const EventRegistration&, EventUpdate) {}),
              1u);
  }
  EXPECT_TRUE(table.has_events(1));
  flag = false;
  EXPECT_EQ(table.check(1, [](const EventRegistration&, EventUpdate) {}),
            0u);
}

TEST(EventTable, MultipleEventsPerFlowAllChecked) {
  EventTable table;
  bool flag1 = true, flag2 = true;
  table.register_event(make_event(1, &flag1, true, "a"));
  table.register_event(make_event(1, &flag2, true, "b"));
  std::vector<std::string> fired;
  table.check(1, [&](const EventRegistration& event, EventUpdate) {
    fired.push_back(event.name);
  });
  EXPECT_EQ(fired, (std::vector<std::string>{"a", "b"}));
}

TEST(EventTable, EventsIsolatedPerFlow) {
  EventTable table;
  bool flag = true;
  table.register_event(make_event(1, &flag));
  EXPECT_EQ(table.check(2, [](const EventRegistration&, EventUpdate) {}),
            0u);
  EXPECT_TRUE(table.has_events(1));
}

TEST(EventTable, EraseFlowRemovesEvents) {
  EventTable table;
  bool flag = true;
  table.register_event(make_event(3, &flag));
  table.erase_flow(3);
  EXPECT_FALSE(table.has_events(3));
}

TEST(EventTable, StatsAccumulate) {
  EventTable table;
  bool flag = false;
  table.register_event(make_event(1, &flag, /*one_shot=*/false));
  table.check(1, [](const EventRegistration&, EventUpdate) {});
  flag = true;
  table.check(1, [](const EventRegistration&, EventUpdate) {});
  EXPECT_EQ(table.checks_performed(), 2u);
  EXPECT_EQ(table.events_triggered(), 1u);
}

}  // namespace
}  // namespace speedybox::core
