#include "core/classifier.hpp"

#include <unordered_set>

#include <gtest/gtest.h>

#include "net/packet_builder.hpp"
#include "test_helpers.hpp"

namespace speedybox::core {
namespace {

using speedybox::testing::tuple_n;

TEST(Classifier, FirstPacketIsInitial) {
  PacketClassifier classifier;
  net::Packet packet = net::make_tcp_packet(tuple_n(1), "x");
  const auto result = classifier.classify(packet);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->path, PacketClassifier::Path::kInitial);
  EXPECT_TRUE(packet.is_initial());
  EXPECT_TRUE(packet.has_fid());
  EXPECT_EQ(packet.fid(), result->fid);
}

TEST(Classifier, SecondPacketIsSubsequentWithSameFid) {
  PacketClassifier classifier;
  net::Packet first = net::make_tcp_packet(tuple_n(2), "a");
  net::Packet second = net::make_tcp_packet(tuple_n(2), "b");
  const auto r1 = classifier.classify(first);
  const auto r2 = classifier.classify(second);
  EXPECT_EQ(r2->path, PacketClassifier::Path::kSubsequent);
  EXPECT_EQ(r1->fid, r2->fid);
  EXPECT_FALSE(second.is_initial());
}

TEST(Classifier, DistinctFlowsGetDistinctFids) {
  PacketClassifier classifier;
  net::Packet a = net::make_tcp_packet(tuple_n(3), "x");
  net::Packet b = net::make_tcp_packet(tuple_n(4), "x");
  const auto ra = classifier.classify(a);
  const auto rb = classifier.classify(b);
  EXPECT_NE(ra->fid, rb->fid);
}

TEST(Classifier, FidIs20Bits) {
  PacketClassifier classifier;
  for (std::uint32_t i = 0; i < 100; ++i) {
    net::Packet packet = net::make_tcp_packet(tuple_n(i), "x");
    const auto result = classifier.classify(packet);
    EXPECT_LE(result->fid, net::kFidMask);
  }
}

TEST(Classifier, MalformedPacketRejected) {
  PacketClassifier classifier;
  net::Packet garbage{std::vector<std::uint8_t>(20, 0xAA)};
  EXPECT_FALSE(classifier.classify(garbage).has_value());
}

TEST(Classifier, FinMarksTeardown) {
  PacketClassifier classifier;
  net::Packet open = net::make_tcp_packet(tuple_n(5), "x");
  classifier.classify(open);
  net::Packet fin = net::make_tcp_packet(
      tuple_n(5), "", net::kTcpFlagFin | net::kTcpFlagAck);
  const auto result = classifier.classify(fin);
  EXPECT_TRUE(result->teardown);
  EXPECT_EQ(result->path, PacketClassifier::Path::kSubsequent);
}

TEST(Classifier, RstMarksTeardown) {
  PacketClassifier classifier;
  net::Packet rst = net::make_tcp_packet(tuple_n(6), "", net::kTcpFlagRst);
  const auto result = classifier.classify(rst);
  EXPECT_TRUE(result->teardown);
}

TEST(Classifier, ReleaseFlowAllowsFreshInitial) {
  PacketClassifier classifier;
  net::Packet first = net::make_tcp_packet(tuple_n(7), "x");
  const auto r1 = classifier.classify(first);
  classifier.release_flow(r1->fid);
  EXPECT_EQ(classifier.active_flows(), 0u);

  net::Packet again = net::make_tcp_packet(tuple_n(7), "x");
  const auto r2 = classifier.classify(again);
  EXPECT_EQ(r2->path, PacketClassifier::Path::kInitial);
}

TEST(Classifier, CountsInitialAndSubsequent) {
  PacketClassifier classifier;
  for (int flow = 0; flow < 3; ++flow) {
    for (int pkt = 0; pkt < 4; ++pkt) {
      net::Packet packet =
          net::make_tcp_packet(tuple_n(static_cast<std::uint32_t>(flow)), "x");
      classifier.classify(packet);
    }
  }
  EXPECT_EQ(classifier.initial_count(), 3u);
  EXPECT_EQ(classifier.subsequent_count(), 9u);
  EXPECT_EQ(classifier.active_flows(), 3u);
}

TEST(Classifier, ManyFlowsNoDuplicateFids) {
  PacketClassifier classifier;
  std::unordered_set<std::uint32_t> fids;
  for (std::uint32_t i = 0; i < 5000; ++i) {
    net::Packet packet = net::make_tcp_packet(tuple_n(i), "x");
    const auto result = classifier.classify(packet);
    EXPECT_TRUE(fids.insert(result->fid).second)
        << "duplicate FID " << result->fid << " at flow " << i;
  }
}

TEST(Classifier, UdpFlowsClassified) {
  PacketClassifier classifier;
  net::FiveTuple tuple = tuple_n(9);
  tuple.proto = static_cast<std::uint8_t>(net::IpProto::kUdp);
  net::Packet a = net::make_udp_packet(tuple, "x");
  net::Packet b = net::make_udp_packet(tuple, "y");
  const auto ra = classifier.classify(a);
  const auto rb = classifier.classify(b);
  EXPECT_EQ(ra->path, PacketClassifier::Path::kInitial);
  EXPECT_EQ(rb->path, PacketClassifier::Path::kSubsequent);
  EXPECT_FALSE(rb->teardown);  // no TCP flags on UDP
}

}  // namespace
}  // namespace speedybox::core
