#include "core/header_action.hpp"

#include <gtest/gtest.h>

#include "net/fields.hpp"
#include "net/checksum.hpp"
#include "net/packet_builder.hpp"
#include "test_helpers.hpp"

namespace speedybox::core {
namespace {

using net::HeaderField;
using speedybox::testing::same_bytes;
using speedybox::testing::tuple_n;

TEST(Consolidate, EmptyListIsForward) {
  const ConsolidatedAction action = consolidate({});
  EXPECT_TRUE(action.is_pure_forward());
  EXPECT_EQ(action.to_string(), "forward");
}

TEST(Consolidate, ForwardsCollapse) {
  const std::vector<HeaderAction> actions(3, HeaderAction::forward());
  EXPECT_TRUE(consolidate(actions).is_pure_forward());
}

TEST(Consolidate, DropDominatesEverything) {
  const std::vector<HeaderAction> actions{
      HeaderAction::modify(HeaderField::kDstIp, 1),
      HeaderAction::encap_ah(5),
      HeaderAction::drop(),
      HeaderAction::modify(HeaderField::kDstPort, 99),
  };
  const ConsolidatedAction action = consolidate(actions);
  EXPECT_TRUE(action.drop);
  EXPECT_FALSE(action.has_field_writes());
  EXPECT_TRUE(action.trailing_encaps.empty());
}

TEST(Consolidate, LastModifyWinsSameField) {
  const std::vector<HeaderAction> actions{
      HeaderAction::modify(HeaderField::kDstIp, 111),
      HeaderAction::modify(HeaderField::kDstIp, 222),
  };
  const ConsolidatedAction action = consolidate(actions);
  EXPECT_EQ(action.field_writes[static_cast<std::size_t>(
                HeaderField::kDstIp)],
            222u);
}

TEST(Consolidate, DistinctFieldsMerge) {
  const std::vector<HeaderAction> actions{
      HeaderAction::modify(HeaderField::kDstIp, 111),
      HeaderAction::modify(HeaderField::kDstPort, 8080),
  };
  const ConsolidatedAction action = consolidate(actions);
  EXPECT_EQ(action.field_writes[static_cast<std::size_t>(
                HeaderField::kDstIp)],
            111u);
  EXPECT_EQ(action.field_writes[static_cast<std::size_t>(
                HeaderField::kDstPort)],
            8080u);
}

TEST(Consolidate, AdjacentEncapDecapCancel) {
  const std::vector<HeaderAction> actions{
      HeaderAction::encap_ah(1),
      HeaderAction::decap(net::EncapKind::kAh),
  };
  const ConsolidatedAction action = consolidate(actions);
  EXPECT_TRUE(action.is_pure_forward());
}

TEST(Consolidate, NestedEncapDecapCancelInStackOrder) {
  const std::vector<HeaderAction> actions{
      HeaderAction::encap_ah(1),
      HeaderAction::encap_ah(2),
      HeaderAction::decap(net::EncapKind::kAh),
      HeaderAction::decap(net::EncapKind::kAh),
  };
  EXPECT_TRUE(consolidate(actions).is_pure_forward());
}

TEST(Consolidate, UnmatchedDecapBecomesLeading) {
  const std::vector<HeaderAction> actions{
      HeaderAction::decap(net::EncapKind::kAh),
      HeaderAction::modify(HeaderField::kTtl, 5),
  };
  const ConsolidatedAction action = consolidate(actions);
  ASSERT_EQ(action.leading_decaps.size(), 1u);
  EXPECT_EQ(action.leading_decaps[0], net::EncapKind::kAh);
}

TEST(Consolidate, MismatchedKindDoesNotCancel) {
  const std::vector<HeaderAction> actions{
      HeaderAction::encap_ipip(net::Ipv4Addr{1}, net::Ipv4Addr{2}),
      HeaderAction::decap(net::EncapKind::kAh),
  };
  const ConsolidatedAction action = consolidate(actions);
  EXPECT_EQ(action.trailing_encaps.size(), 1u);
  EXPECT_EQ(action.leading_decaps.size(), 1u);
}

TEST(Consolidate, SurvivingEncapsKeepOrder) {
  const std::vector<HeaderAction> actions{
      HeaderAction::encap_ipip(net::Ipv4Addr{1}, net::Ipv4Addr{2}),
      HeaderAction::encap_ah(9),
  };
  const ConsolidatedAction action = consolidate(actions);
  ASSERT_EQ(action.trailing_encaps.size(), 2u);
  EXPECT_EQ(action.trailing_encaps[0].kind, net::EncapKind::kIpIp);
  EXPECT_EQ(action.trailing_encaps[1].kind, net::EncapKind::kAh);
}

TEST(BytePatch, AppliesMergedFieldWrites) {
  net::Packet packet = net::make_tcp_packet(tuple_n(1), "x");
  const auto parsed = net::parse_packet(packet);
  ConsolidatedAction action = consolidate(std::vector<HeaderAction>{
      HeaderAction::modify(HeaderField::kDstIp, 0x0A0B0C0D),
      HeaderAction::modify(HeaderField::kDstPort, 4443),
  });
  BytePatch patch = BytePatch::compile(action, *parsed);
  EXPECT_FALSE(patch.empty());
  patch.apply(packet);
  EXPECT_EQ(net::get_field(packet, *parsed, HeaderField::kDstIp),
            0x0A0B0C0Du);
  EXPECT_EQ(net::get_field(packet, *parsed, HeaderField::kDstPort), 4443u);
}

TEST(BytePatch, LeavesUntouchedFieldsAlone) {
  net::Packet packet = net::make_tcp_packet(tuple_n(2), "x");
  const auto parsed = net::parse_packet(packet);
  const std::uint32_t src_ip_before =
      net::get_field(packet, *parsed, HeaderField::kSrcIp);
  const std::uint32_t src_port_before =
      net::get_field(packet, *parsed, HeaderField::kSrcPort);

  ConsolidatedAction action = consolidate(std::vector<HeaderAction>{
      HeaderAction::modify(HeaderField::kDstIp, 0x01010101),
  });
  BytePatch patch = BytePatch::compile(action, *parsed);
  patch.apply(packet);
  EXPECT_EQ(net::get_field(packet, *parsed, HeaderField::kSrcIp),
            src_ip_before);
  EXPECT_EQ(net::get_field(packet, *parsed, HeaderField::kSrcPort),
            src_port_before);
}

TEST(BytePatch, ShapeMatching) {
  net::Packet tcp = net::make_tcp_packet(tuple_n(3), "x");
  const auto parsed = net::parse_packet(tcp);
  ConsolidatedAction action = consolidate(std::vector<HeaderAction>{
      HeaderAction::modify(HeaderField::kTtl, 9)});
  const BytePatch patch = BytePatch::compile(action, *parsed);
  EXPECT_TRUE(patch.matches_shape(*parsed));

  net::Packet tunneled = net::make_tcp_packet(tuple_n(3), "x");
  net::encap_ipip(tunneled, net::Ipv4Addr{1}, net::Ipv4Addr{2});
  const auto tunneled_parsed = net::parse_packet(tunneled);
  EXPECT_FALSE(patch.matches_shape(*tunneled_parsed));
}

TEST(ApplyConsolidated, DropMarksPacket) {
  net::Packet packet = net::make_tcp_packet(tuple_n(4), "x");
  ConsolidatedAction action = consolidate(std::vector<HeaderAction>{
      HeaderAction::drop()});
  BytePatch patch;
  apply_consolidated(action, patch, packet);
  EXPECT_TRUE(packet.dropped());
}

TEST(ApplyConsolidated, ChecksumsValidAfterFieldWrites) {
  net::Packet packet = net::make_tcp_packet(tuple_n(5), "payload");
  ConsolidatedAction action = consolidate(std::vector<HeaderAction>{
      HeaderAction::modify(HeaderField::kDstIp, 0x0A010203),
      HeaderAction::modify(HeaderField::kSrcPort, 3333),
  });
  BytePatch patch;
  apply_consolidated(action, patch, packet);
  const auto parsed = net::parse_packet(packet);
  EXPECT_TRUE(net::verify_ipv4_checksum(packet, parsed->l3_offset));
  EXPECT_TRUE(net::verify_l4_checksum(packet, *parsed));
}

TEST(ApplyConsolidated, EquivalentToSequentialBaseline) {
  const std::vector<HeaderAction> actions{
      HeaderAction::modify(HeaderField::kDstIp, 0x0A000042),
      HeaderAction::modify(HeaderField::kDstPort, 8080),
      HeaderAction::modify(HeaderField::kDstIp, 0x0A000043),  // overwrite
      HeaderAction::modify(HeaderField::kTtl, 17),
  };
  net::Packet sequential = net::make_tcp_packet(tuple_n(6), "R3 overwrite");
  for (const auto& action : actions) {
    apply_action_baseline(action, sequential);
  }
  net::Packet fast = net::make_tcp_packet(tuple_n(6), "R3 overwrite");
  ConsolidatedAction consolidated = consolidate(actions);
  BytePatch patch;
  apply_consolidated(consolidated, patch, fast);
  EXPECT_TRUE(same_bytes(sequential, fast));
}

TEST(ApplyConsolidated, EncapThenModifyEquivalence) {
  const std::vector<HeaderAction> actions{
      HeaderAction::modify(HeaderField::kDstIp, 0x0A000099),
      HeaderAction::encap_ah(77),
  };
  net::Packet sequential = net::make_tcp_packet(tuple_n(7), "vpn");
  for (const auto& action : actions) {
    apply_action_baseline(action, sequential);
  }
  net::Packet fast = net::make_tcp_packet(tuple_n(7), "vpn");
  ConsolidatedAction consolidated = consolidate(actions);
  BytePatch patch;
  apply_consolidated(consolidated, patch, fast);
  EXPECT_TRUE(same_bytes(sequential, fast));
}

TEST(ApplyConsolidated, PatchReusedAcrossPackets) {
  ConsolidatedAction action = consolidate(std::vector<HeaderAction>{
      HeaderAction::modify(HeaderField::kDstPort, 1234)});
  BytePatch patch;
  for (int i = 0; i < 3; ++i) {
    net::Packet packet = net::make_tcp_packet(tuple_n(8), "again");
    apply_consolidated(action, patch, packet);
    const auto parsed = net::parse_packet(packet);
    EXPECT_EQ(net::get_field(packet, *parsed, HeaderField::kDstPort), 1234u);
  }
}

TEST(HeaderActionToString, Readable) {
  EXPECT_EQ(HeaderAction::drop().to_string(), "drop");
  EXPECT_EQ(HeaderAction::modify(HeaderField::kDstPort, 80).to_string(),
            "modify(dst_port=80)");
  EXPECT_EQ(HeaderAction::encap_ah(1).to_string(), "encap(ah)");
}

}  // namespace
}  // namespace speedybox::core
