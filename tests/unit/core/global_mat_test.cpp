#include "core/global_mat.hpp"

#include <gtest/gtest.h>

#include "net/fields.hpp"
#include "net/packet_builder.hpp"
#include "test_helpers.hpp"

namespace speedybox::core {
namespace {

using net::HeaderField;
using speedybox::testing::tuple_n;

class GlobalMatTest : public ::testing::Test {
 protected:
  GlobalMatTest() : nat_("nat", 0), monitor_("monitor", 1) {
    mat_.set_chain({&nat_, &monitor_});
  }

  LocalMat nat_;
  LocalMat monitor_;
  GlobalMat mat_;
};

TEST_F(GlobalMatTest, ConsolidatesAcrossLocalMats) {
  nat_.add_header_action(1, HeaderAction::modify(HeaderField::kSrcIp, 7));
  monitor_.add_header_action(1,
                             HeaderAction::modify(HeaderField::kDstPort, 99));
  mat_.consolidate_flow(1);

  const ConsolidatedRule* rule = mat_.find(1);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->action.field_writes[static_cast<std::size_t>(
                HeaderField::kSrcIp)],
            7u);
  EXPECT_EQ(rule->action.field_writes[static_cast<std::size_t>(
                HeaderField::kDstPort)],
            99u);
}

TEST_F(GlobalMatTest, BatchesKeepChainOrder) {
  int order_marker = 0;
  int nat_seen_at = -1, monitor_seen_at = -1;
  nat_.add_state_function(
      2, StateFunction{[&](net::Packet&, const net::ParsedPacket&) {
                         nat_seen_at = order_marker++;
                       },
                       PayloadAccess::kIgnore, "nat.sf"});
  monitor_.add_state_function(
      2, StateFunction{[&](net::Packet&, const net::ParsedPacket&) {
                         monitor_seen_at = order_marker++;
                       },
                       PayloadAccess::kIgnore, "mon.sf"});
  mat_.consolidate_flow(2);

  net::Packet packet = net::make_tcp_packet(tuple_n(2), "x");
  packet.set_fid(2);
  mat_.process(packet);
  EXPECT_EQ(nat_seen_at, 0);
  EXPECT_EQ(monitor_seen_at, 1);
}

TEST_F(GlobalMatTest, ProcessMissReturnsNoHit) {
  net::Packet packet = net::make_tcp_packet(tuple_n(3), "x");
  packet.set_fid(3);
  const auto result = mat_.process(packet);
  EXPECT_FALSE(result.rule_hit);
  EXPECT_FALSE(result.dropped);
}

TEST_F(GlobalMatTest, AppliesConsolidatedModify) {
  nat_.add_header_action(4, HeaderAction::modify(HeaderField::kDstIp,
                                                 0x0A0A0A0A));
  mat_.consolidate_flow(4);

  net::Packet packet = net::make_tcp_packet(tuple_n(4), "x");
  packet.set_fid(4);
  const auto result = mat_.process(packet);
  EXPECT_TRUE(result.rule_hit);
  const auto parsed = net::parse_packet(packet);
  EXPECT_EQ(net::get_field(packet, *parsed, HeaderField::kDstIp),
            0x0A0A0A0Au);
}

TEST_F(GlobalMatTest, DropShortCircuitsStateFunctions) {
  bool sf_ran = false;
  nat_.add_header_action(5, HeaderAction::drop());
  monitor_.add_state_function(
      5, StateFunction{[&](net::Packet&, const net::ParsedPacket&) {
                         sf_ran = true;
                       },
                       PayloadAccess::kIgnore, "sf"});
  mat_.consolidate_flow(5);

  net::Packet packet = net::make_tcp_packet(tuple_n(5), "x");
  packet.set_fid(5);
  const auto result = mat_.process(packet);
  EXPECT_TRUE(result.dropped);
  EXPECT_TRUE(packet.dropped());
  EXPECT_FALSE(sf_ran) << "dropped packets must not execute state functions";
}

TEST_F(GlobalMatTest, EventTriggerRewritesRuleBeforeProcessing) {
  bool condition = false;
  nat_.add_header_action(6, HeaderAction::modify(HeaderField::kDstPort, 80));
  mat_.consolidate_flow(6);

  EventRegistration event;
  event.fid = 6;
  event.nf_index = 0;
  event.name = "switch-port";
  event.condition = [&condition] { return condition; };
  event.update = [] {
    EventUpdate update;
    update.header_actions = {HeaderAction::modify(HeaderField::kDstPort,
                                                  8080)};
    return update;
  };
  mat_.event_table().register_event(std::move(event));
  // Events are normally registered during the recording pass; a late
  // registration takes effect at the next consolidation.
  mat_.consolidate_flow(6);

  // Before the condition holds: port 80.
  net::Packet before = net::make_tcp_packet(tuple_n(6), "x");
  before.set_fid(6);
  mat_.process(before);
  EXPECT_EQ(net::get_field(before, *net::parse_packet(before),
                           HeaderField::kDstPort),
            80u);

  // Once triggered, the same packet stream gets the updated action.
  condition = true;
  net::Packet after = net::make_tcp_packet(tuple_n(6), "x");
  after.set_fid(6);
  const auto result = mat_.process(after);
  EXPECT_EQ(result.events_triggered, 1u);
  EXPECT_EQ(net::get_field(after, *net::parse_packet(after),
                           HeaderField::kDstPort),
            8080u);
}

TEST_F(GlobalMatTest, ReconsolidationBumpsVersion) {
  nat_.add_header_action(7, HeaderAction::forward());
  mat_.consolidate_flow(7);
  EXPECT_EQ(mat_.find(7)->version, 1u);
  mat_.consolidate_flow(7);
  EXPECT_EQ(mat_.find(7)->version, 2u);
}

TEST_F(GlobalMatTest, EraseFlowClearsRuleEventsAndLocalRules) {
  nat_.add_header_action(8, HeaderAction::forward());
  mat_.consolidate_flow(8);
  bool torn_down = false;
  nat_.add_teardown_hook(8, [&torn_down] { torn_down = true; });

  EventRegistration event;
  event.fid = 8;
  event.condition = [] { return false; };
  mat_.event_table().register_event(std::move(event));

  mat_.erase_flow(8);
  EXPECT_EQ(mat_.find(8), nullptr);
  EXPECT_FALSE(mat_.event_table().has_events(8));
  EXPECT_EQ(nat_.find(8), nullptr);
  EXPECT_TRUE(torn_down);
}

TEST_F(GlobalMatTest, MeasuredRunReportsCycleBreakdown) {
  nat_.add_header_action(9, HeaderAction::modify(HeaderField::kTtl, 3));
  monitor_.add_state_function(
      9, StateFunction{[](net::Packet&, const net::ParsedPacket&) {
                         volatile int x = 0;
                         for (int i = 0; i < 200; ++i) x = x + i;
                       },
                       PayloadAccess::kIgnore, "work"});
  mat_.consolidate_flow(9);

  net::Packet packet = net::make_tcp_packet(tuple_n(9), "x");
  packet.set_fid(9);
  const auto result = mat_.process(packet, /*measure_batches=*/true);
  EXPECT_GT(result.sf_total_cycles, 0u);
  EXPECT_GT(result.sf_critical_path_cycles, 0u);
  EXPECT_LE(result.sf_critical_path_cycles, result.sf_total_cycles);
}

TEST_F(GlobalMatTest, ScheduleGroupsReadBatches) {
  nat_.add_state_function(
      10, StateFunction{[](net::Packet&, const net::ParsedPacket&) {},
                        PayloadAccess::kRead, "a"});
  monitor_.add_state_function(
      10, StateFunction{[](net::Packet&, const net::ParsedPacket&) {},
                        PayloadAccess::kRead, "b"});
  mat_.consolidate_flow(10);
  const ConsolidatedRule* rule = mat_.find(10);
  ASSERT_EQ(rule->batches.size(), 2u);
  EXPECT_EQ(rule->schedule.group_count(), 1u);
}

}  // namespace
}  // namespace speedybox::core
