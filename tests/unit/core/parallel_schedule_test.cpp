#include "core/parallel_schedule.hpp"

#include <gtest/gtest.h>

namespace speedybox::core {
namespace {

StateFunctionBatch batch_with(PayloadAccess access, std::size_t nf_index) {
  StateFunctionBatch batch;
  batch.nf_index = nf_index;
  batch.nf_name = "nf" + std::to_string(nf_index);
  batch.functions.push_back(
      StateFunction{[](net::Packet&, const net::ParsedPacket&) {}, access,
                    "sf"});
  return batch;
}

// Table I, literally: parallelizable unless batch1 WRITEs and batch2 does
// not IGNORE.
TEST(TableI, PairwiseRules) {
  using enum PayloadAccess;
  EXPECT_FALSE(parallelizable(kWrite, kWrite));
  EXPECT_FALSE(parallelizable(kWrite, kRead));
  EXPECT_TRUE(parallelizable(kWrite, kIgnore));
  EXPECT_TRUE(parallelizable(kRead, kWrite));
  EXPECT_TRUE(parallelizable(kRead, kRead));
  EXPECT_TRUE(parallelizable(kRead, kIgnore));
  EXPECT_TRUE(parallelizable(kIgnore, kWrite));
  EXPECT_TRUE(parallelizable(kIgnore, kRead));
  EXPECT_TRUE(parallelizable(kIgnore, kIgnore));
}

TEST(BatchAccess, HighestPriorityWins) {
  StateFunctionBatch batch;
  batch.functions.push_back(
      StateFunction{{}, PayloadAccess::kRead, "r"});
  batch.functions.push_back(
      StateFunction{{}, PayloadAccess::kIgnore, "i"});
  EXPECT_EQ(batch.access(), PayloadAccess::kRead);
  batch.functions.push_back(
      StateFunction{{}, PayloadAccess::kWrite, "w"});
  EXPECT_EQ(batch.access(), PayloadAccess::kWrite);
}

TEST(BuildSchedule, AllReadsFormOneGroup) {
  std::vector<StateFunctionBatch> batches{
      batch_with(PayloadAccess::kRead, 0),
      batch_with(PayloadAccess::kRead, 1),
      batch_with(PayloadAccess::kRead, 2),
  };
  const ParallelSchedule schedule = build_schedule(batches);
  ASSERT_EQ(schedule.group_count(), 1u);
  EXPECT_EQ(schedule.groups[0], (std::vector<std::size_t>{0, 1, 2}));
}

TEST(BuildSchedule, WriterBlocksFollowingReader) {
  std::vector<StateFunctionBatch> batches{
      batch_with(PayloadAccess::kWrite, 0),
      batch_with(PayloadAccess::kRead, 1),
  };
  const ParallelSchedule schedule = build_schedule(batches);
  EXPECT_EQ(schedule.group_count(), 2u);
}

TEST(BuildSchedule, WriterGroupsWithFollowingIgnore) {
  std::vector<StateFunctionBatch> batches{
      batch_with(PayloadAccess::kWrite, 0),
      batch_with(PayloadAccess::kIgnore, 1),
  };
  const ParallelSchedule schedule = build_schedule(batches);
  ASSERT_EQ(schedule.group_count(), 1u);
  EXPECT_EQ(schedule.groups[0].size(), 2u);
}

TEST(BuildSchedule, ReaderThenWriterGroupTogether) {
  // Table I: (read, write) = Y.
  std::vector<StateFunctionBatch> batches{
      batch_with(PayloadAccess::kRead, 0),
      batch_with(PayloadAccess::kWrite, 1),
  };
  EXPECT_EQ(build_schedule(batches).group_count(), 1u);
}

TEST(BuildSchedule, WriterInGroupBlocksLaterReader) {
  // {read, write} group formed; a following read must not join because the
  // write in the group forbids it.
  std::vector<StateFunctionBatch> batches{
      batch_with(PayloadAccess::kRead, 0),
      batch_with(PayloadAccess::kWrite, 1),
      batch_with(PayloadAccess::kRead, 2),
  };
  const ParallelSchedule schedule = build_schedule(batches);
  ASSERT_EQ(schedule.group_count(), 2u);
  EXPECT_EQ(schedule.groups[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(schedule.groups[1], (std::vector<std::size_t>{2}));
}

TEST(BuildSchedule, EmptyBatchesSkipped) {
  std::vector<StateFunctionBatch> batches{
      batch_with(PayloadAccess::kRead, 0),
      StateFunctionBatch{},  // NF with no state functions
      batch_with(PayloadAccess::kRead, 2),
  };
  const ParallelSchedule schedule = build_schedule(batches);
  ASSERT_EQ(schedule.group_count(), 1u);
  EXPECT_EQ(schedule.groups[0], (std::vector<std::size_t>{0, 2}));
}

TEST(BuildSchedule, NoBatchesNoGroups) {
  EXPECT_EQ(build_schedule({}).group_count(), 0u);
}

TEST(CriticalPath, SumOfGroupMaxima) {
  std::vector<StateFunctionBatch> batches{
      batch_with(PayloadAccess::kRead, 0),
      batch_with(PayloadAccess::kRead, 1),
      batch_with(PayloadAccess::kWrite, 2),
  };
  // Groups: {0,1,2}? read,read then write joins only if every prior allows:
  // (read,write)=Y, (read,write)=Y -> one group of 3.
  const ParallelSchedule schedule = build_schedule(batches);
  ASSERT_EQ(schedule.group_count(), 1u);
  EXPECT_EQ(schedule.critical_path({100, 250, 50}), 250u);
}

TEST(CriticalPath, SequentialGroupsAdd) {
  std::vector<StateFunctionBatch> batches{
      batch_with(PayloadAccess::kWrite, 0),
      batch_with(PayloadAccess::kWrite, 1),
  };
  const ParallelSchedule schedule = build_schedule(batches);
  ASSERT_EQ(schedule.group_count(), 2u);
  EXPECT_EQ(schedule.critical_path({100, 250}), 350u);
}

}  // namespace
}  // namespace speedybox::core
