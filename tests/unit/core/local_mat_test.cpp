#include "core/local_mat.hpp"

#include <gtest/gtest.h>

namespace speedybox::core {
namespace {

TEST(LocalMat, RecordsHeaderActionsInOrder) {
  LocalMat mat{"nat", 0};
  mat.add_header_action(1, HeaderAction::modify(net::HeaderField::kSrcIp, 5));
  mat.add_header_action(1, HeaderAction::modify(net::HeaderField::kSrcPort, 6));
  const LocalRule* rule = mat.find(1);
  ASSERT_NE(rule, nullptr);
  ASSERT_EQ(rule->header_actions.size(), 2u);
  EXPECT_EQ(rule->header_actions[0].field, net::HeaderField::kSrcIp);
  EXPECT_EQ(rule->header_actions[1].field, net::HeaderField::kSrcPort);
}

TEST(LocalMat, StateFunctionQueuePreservesOrder) {
  LocalMat mat{"ids", 1};
  std::vector<int> calls;
  for (int i = 0; i < 3; ++i) {
    mat.add_state_function(
        7, StateFunction{[&calls, i](net::Packet&, const net::ParsedPacket&) {
                           calls.push_back(i);
                         },
                         PayloadAccess::kRead, "sf"});
  }
  net::Packet packet;
  net::ParsedPacket parsed;
  for (const auto& fn : mat.find(7)->state_functions) {
    fn.handler(packet, parsed);
  }
  EXPECT_EQ(calls, (std::vector<int>{0, 1, 2}));
}

TEST(LocalMat, FlowsAreIndependent) {
  LocalMat mat{"fw", 0};
  mat.add_header_action(1, HeaderAction::drop());
  mat.add_header_action(2, HeaderAction::forward());
  EXPECT_EQ(mat.find(1)->header_actions[0].type, HeaderActionType::kDrop);
  EXPECT_EQ(mat.find(2)->header_actions[0].type, HeaderActionType::kForward);
  EXPECT_EQ(mat.size(), 2u);
}

TEST(LocalMat, FindMissingReturnsNull) {
  LocalMat mat{"x", 0};
  EXPECT_EQ(mat.find(42), nullptr);
  EXPECT_FALSE(mat.contains(42));
}

TEST(LocalMat, ReplaceHeaderActions) {
  LocalMat mat{"lb", 2};
  mat.add_header_action(9, HeaderAction::modify(net::HeaderField::kDstIp, 1));
  mat.replace_header_actions(9, {HeaderAction::drop()});
  ASSERT_EQ(mat.find(9)->header_actions.size(), 1u);
  EXPECT_EQ(mat.find(9)->header_actions[0].type, HeaderActionType::kDrop);
}

TEST(LocalMat, ReplaceStateFunctions) {
  LocalMat mat{"mon", 3};
  mat.add_state_function(
      4, StateFunction{[](net::Packet&, const net::ParsedPacket&) {},
                       PayloadAccess::kIgnore, "old"});
  mat.replace_state_functions(
      4, {StateFunction{[](net::Packet&, const net::ParsedPacket&) {},
                        PayloadAccess::kWrite, "new"}});
  ASSERT_EQ(mat.find(4)->state_functions.size(), 1u);
  EXPECT_EQ(mat.find(4)->state_functions[0].name, "new");
}

TEST(LocalMat, EraseFlowFreesRule) {
  LocalMat mat{"x", 0};
  mat.add_header_action(5, HeaderAction::forward());
  mat.erase_flow(5);
  EXPECT_EQ(mat.find(5), nullptr);
  EXPECT_EQ(mat.size(), 0u);
}

TEST(LocalMat, TeardownHooksRunOnceAndClear) {
  LocalMat mat{"nat", 0};
  int runs = 0;
  mat.add_teardown_hook(3, [&runs] { ++runs; });
  mat.add_teardown_hook(3, [&runs] { ++runs; });
  mat.run_teardown_hooks(3);
  EXPECT_EQ(runs, 2);
  mat.run_teardown_hooks(3);  // hooks consumed
  EXPECT_EQ(runs, 2);
}

TEST(LocalMat, MetadataAccessors) {
  LocalMat mat{"snort", 4};
  EXPECT_EQ(mat.nf_name(), "snort");
  EXPECT_EQ(mat.nf_index(), 4u);
}

}  // namespace
}  // namespace speedybox::core
