// FlowTable unit tests: control-byte probing semantics, slab record
// stability, incremental resize draining, statistics, and the pre-hashed
// key path (DESIGN.md §13).
#include "core/flow_table.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/five_tuple.hpp"

namespace speedybox::core {
namespace {

net::FiveTuple tuple_n(std::uint32_t n) {
  return net::FiveTuple{net::Ipv4Addr{0x0a000001u + n},
                        net::Ipv4Addr{0xc0a80001u},
                        static_cast<std::uint16_t>(1000 + (n % 50000)),
                        static_cast<std::uint16_t>(80), 17};
}

TEST(FlowTableTest, InsertFindErase) {
  FlowTable<net::FiveTuple, std::uint64_t> table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.find(tuple_n(1)), nullptr);

  auto [value, inserted] = table.try_emplace(tuple_n(1), 41u);
  ASSERT_TRUE(inserted);
  EXPECT_EQ(*value, 41u);
  EXPECT_EQ(table.size(), 1u);

  auto [again, inserted_again] = table.try_emplace(tuple_n(1), 99u);
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(*again, 41u);
  EXPECT_EQ(again, value);

  const std::uint64_t* found = table.find(tuple_n(1));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, 41u);

  EXPECT_TRUE(table.erase(tuple_n(1)));
  EXPECT_FALSE(table.erase(tuple_n(1)));
  EXPECT_EQ(table.find(tuple_n(1)), nullptr);
  EXPECT_TRUE(table.empty());
}

TEST(FlowTableTest, PreHashedOpsMatchHashingOps) {
  FlowTable<net::FiveTuple, int> table;
  const auto key = HashedTuple::of(tuple_n(7));
  table.try_emplace(key.tuple, key.hash, 3);
  EXPECT_NE(table.find(key.tuple), nullptr);
  EXPECT_NE(table.find(key.tuple, key.hash), nullptr);
  EXPECT_EQ(*table.find(key.tuple, key.hash), 3);
  EXPECT_TRUE(table.erase(key.tuple, key.hash));
  EXPECT_EQ(table.find(key.tuple), nullptr);
}

TEST(FlowTableTest, ValuePointersSurviveResize) {
  // The NF contract: recorded state-function closures capture raw pointers
  // to per-flow state. Slab records must never move, across any number of
  // resizes.
  FlowTable<net::FiveTuple, std::uint64_t> table;
  std::vector<std::uint64_t*> pointers;
  constexpr std::uint32_t kFlows = 5000;
  for (std::uint32_t n = 0; n < kFlows; ++n) {
    pointers.push_back(table.try_emplace(tuple_n(n), std::uint64_t{n}).first);
  }
  EXPECT_GT(table.stats().resizes, 0u);
  for (std::uint32_t n = 0; n < kFlows; ++n) {
    EXPECT_EQ(table.find(tuple_n(n)), pointers[n]) << n;
    EXPECT_EQ(*pointers[n], n);
  }
}

TEST(FlowTableTest, IncrementalResizeKeepsDrainingTableVisible) {
  FlowTable<net::FiveTuple, std::uint32_t> table;
  // Fill to just past a growth trigger, then verify every key is visible
  // while old_ is still draining (stats().resizing true) and after.
  std::uint32_t n = 0;
  while (!table.stats().resizing) {
    table.try_emplace(tuple_n(n), n);
    ++n;
  }
  ASSERT_TRUE(table.stats().resizing);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t* v = table.find(tuple_n(i));
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
  }
  // Mutations retire the drain in bounded steps.
  const std::uint64_t steps_before = table.stats().resize_steps;
  while (table.stats().resizing) {
    table.try_emplace(tuple_n(n), n);
    ++n;
  }
  EXPECT_GT(table.stats().resize_steps, steps_before);
  EXPECT_GT(table.stats().migrated_entries, 0u);
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_NE(table.find(tuple_n(i)), nullptr) << i;
  }
}

TEST(FlowTableTest, EraseDuringDrainAndReinsert) {
  FlowTable<net::FiveTuple, std::uint32_t> table;
  std::uint32_t n = 0;
  while (!table.stats().resizing) table.try_emplace(tuple_n(n), n), ++n;
  // Erase keys that are still in the draining table, then re-insert them.
  for (std::uint32_t i = 0; i < n; i += 2) EXPECT_TRUE(table.erase(tuple_n(i)));
  for (std::uint32_t i = 0; i < n; i += 2) {
    EXPECT_EQ(table.find(tuple_n(i)), nullptr);
    EXPECT_TRUE(table.try_emplace(tuple_n(i), i + 1000).second);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t* v = table.find(tuple_n(i));
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i % 2 == 0 ? i + 1000 : i);
  }
}

TEST(FlowTableTest, ChurnPurgesTombstonesWithoutUnboundedGrowth) {
  FlowTable<net::FiveTuple, std::uint32_t> table;
  // Steady-state churn: insert/erase pairs keep the live count tiny; the
  // occupancy trigger must purge tombstones instead of growing forever.
  for (std::uint32_t round = 0; round < 50000; ++round) {
    table.try_emplace(tuple_n(round), round);
    table.erase(tuple_n(round));
  }
  EXPECT_EQ(table.size(), 0u);
  EXPECT_LE(table.stats().capacity, 4096u);
}

TEST(FlowTableTest, ForEachVisitsEveryEntryOnceIncludingDraining) {
  FlowTable<net::FiveTuple, std::uint32_t> table;
  std::uint32_t n = 0;
  while (!table.stats().resizing) table.try_emplace(tuple_n(n), n), ++n;
  ASSERT_TRUE(table.stats().resizing);
  std::vector<bool> seen(n, false);
  table.for_each([&](const net::FiveTuple&, std::uint32_t& value) {
    ASSERT_LT(value, n);
    EXPECT_FALSE(seen[value]);
    seen[value] = true;
  });
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_TRUE(seen[i]) << i;
  const auto& const_table = table;
  std::size_t count = 0;
  const_table.for_each(
      [&](const net::FiveTuple&, const std::uint32_t&) { ++count; });
  EXPECT_EQ(count, table.size());
}

TEST(FlowTableTest, NonTrivialValuesDestroyedExactlyOnce) {
  struct Tracked {
    std::shared_ptr<int> token;
  };
  auto token = std::make_shared<int>(7);
  {
    FlowTable<net::FiveTuple, Tracked> table;
    for (std::uint32_t n = 0; n < 300; ++n) {
      table.try_emplace(tuple_n(n), Tracked{token});
    }
    EXPECT_EQ(token.use_count(), 301);
    for (std::uint32_t n = 0; n < 300; n += 3) table.erase(tuple_n(n));
    EXPECT_EQ(token.use_count(), 201);
    table.clear();
    EXPECT_EQ(token.use_count(), 1);
    for (std::uint32_t n = 0; n < 100; ++n) {
      table.try_emplace(tuple_n(n), Tracked{token});
    }
    EXPECT_EQ(token.use_count(), 101);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(FlowTableTest, IntegralKeysUseMixedHash) {
  FlowTable<std::uint32_t, std::string> table;
  for (std::uint32_t fid = 0; fid < 2000; ++fid) {
    table.try_emplace(fid, std::to_string(fid));
  }
  EXPECT_EQ(table.size(), 2000u);
  for (std::uint32_t fid = 0; fid < 2000; ++fid) {
    const std::string* v = table.find(fid);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, std::to_string(fid));
  }
  // Sequential keys through mix64 must not degenerate into long probes.
  EXPECT_LT(table.stats().avg_probe(), 4.0);
}

TEST(FlowTableTest, ReservePreventsResizes) {
  FlowTable<net::FiveTuple, std::uint32_t> table;
  table.reserve(10000);
  for (std::uint32_t n = 0; n < 10000; ++n) table.try_emplace(tuple_n(n), n);
  EXPECT_EQ(table.stats().resizes, 0u);
  EXPECT_EQ(table.size(), 10000u);
}

TEST(FlowTableTest, StatsTrackOccupancyProbesAndSlab) {
  FlowTable<net::FiveTuple, std::uint64_t> table;
  for (std::uint32_t n = 0; n < 1000; ++n) table.try_emplace(tuple_n(n), n);
  for (std::uint32_t n = 0; n < 1000; ++n) table.find(tuple_n(n));
  const FlowTableStats stats = table.stats();
  EXPECT_EQ(stats.entries, 1000u);
  EXPECT_GE(stats.capacity, 1000u);
  EXPECT_GE(stats.lookups, 2000u);
  EXPECT_GE(stats.probe_total, stats.lookups);
  EXPECT_GE(stats.max_probe, 1u);
  EXPECT_EQ(stats.slab_records, 1000u);
  EXPECT_GE(stats.slab_bytes, 1000u * sizeof(std::uint64_t));
  EXPECT_GT(stats.load_factor(), 0.0);
  EXPECT_LE(stats.load_factor(), 0.875 + 1e-9);

  FlowTableStats merged;
  merged.merge_from(stats);
  merged.merge_from(stats);
  EXPECT_EQ(merged.entries, 2000u);
  EXPECT_EQ(merged.max_probe, stats.max_probe);
}

TEST(FlowTableTest, InsertOrAssignOverwrites) {
  FlowTable<net::FiveTuple, std::uint32_t> table;
  table.insert_or_assign(tuple_n(1), 5u);
  table.insert_or_assign(tuple_n(1), 9u);
  ASSERT_NE(table.find(tuple_n(1)), nullptr);
  EXPECT_EQ(*table.find(tuple_n(1)), 9u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTableTest, MoveTransfersEntries) {
  FlowTable<net::FiveTuple, std::uint32_t> table;
  for (std::uint32_t n = 0; n < 100; ++n) table.try_emplace(tuple_n(n), n);
  FlowTable<net::FiveTuple, std::uint32_t> moved = std::move(table);
  EXPECT_EQ(moved.size(), 100u);
  ASSERT_NE(moved.find(tuple_n(5)), nullptr);
  EXPECT_EQ(*moved.find(tuple_n(5)), 5u);
}

}  // namespace
}  // namespace speedybox::core
