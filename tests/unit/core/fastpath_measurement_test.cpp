// Measurement mechanics of the fast path: per-rule batch-cost sampling,
// the learned critical-path fraction, parse-hint reuse, and timer-overhead
// bookkeeping.
#include <gtest/gtest.h>

#include "core/global_mat.hpp"
#include "net/packet_builder.hpp"
#include "test_helpers.hpp"
#include "util/cycle_clock.hpp"

namespace speedybox::core {
namespace {

using speedybox::testing::tuple_n;

StateFunction busy_sf(PayloadAccess access, int weight,
                      std::string name = "sf") {
  return StateFunction{
      [weight](net::Packet&, const net::ParsedPacket&) {
        volatile int x = 0;
        for (int i = 0; i < weight * 400; ++i) x = x + i;
      },
      access, std::move(name)};
}

class FastPathMeasurement : public ::testing::Test {
 protected:
  FastPathMeasurement() : a_("a", 0), b_("b", 1) {
    mat_.set_chain({&a_, &b_});
  }

  GlobalMat::FastPathResult run_packet(std::uint32_t fid) {
    net::Packet packet = net::make_tcp_packet(tuple_n(fid), "x");
    packet.set_fid(fid);
    return mat_.process(packet, /*measure_batches=*/true);
  }

  LocalMat a_;
  LocalMat b_;
  GlobalMat mat_;
};

TEST_F(FastPathMeasurement, SamplingPhaseReportsPerBatchPairs) {
  a_.add_state_function(1, busy_sf(PayloadAccess::kRead, 2));
  b_.add_state_function(1, busy_sf(PayloadAccess::kRead, 2));
  mat_.consolidate_flow(1);

  const auto result = run_packet(1);
  EXPECT_EQ(result.timer_pairs, 2u) << "sampling: one pair per batch";
  EXPECT_GT(result.sf_total_cycles, 0u);
  EXPECT_LE(result.sf_critical_path_cycles, result.sf_total_cycles);
}

TEST_F(FastPathMeasurement, SteadyStateUsesOnePair) {
  a_.add_state_function(2, busy_sf(PayloadAccess::kRead, 2));
  b_.add_state_function(2, busy_sf(PayloadAccess::kRead, 2));
  mat_.consolidate_flow(2);

  for (std::uint32_t i = 0; i < ConsolidatedRule::kCostSampleWindow; ++i) {
    run_packet(2);
  }
  const auto steady = run_packet(2);
  EXPECT_EQ(steady.timer_pairs, 1u);
  EXPECT_GT(steady.sf_total_cycles, 0u);
  EXPECT_LE(steady.sf_critical_path_cycles, steady.sf_total_cycles);
}

TEST_F(FastPathMeasurement, CriticalFractionLearnedForParallelBatches) {
  // Two equal READ batches in one group: the critical path is ~half the
  // total, and the learned fraction must reflect that in steady state.
  a_.add_state_function(3, busy_sf(PayloadAccess::kRead, 4));
  b_.add_state_function(3, busy_sf(PayloadAccess::kRead, 4));
  mat_.consolidate_flow(3);
  ASSERT_EQ(mat_.find(3)->schedule.group_count(), 1u);

  for (std::uint32_t i = 0; i <= ConsolidatedRule::kCostSampleWindow; ++i) {
    run_packet(3);
  }
  const double fraction = mat_.find(3)->critical_fraction;
  EXPECT_GT(fraction, 0.3);
  EXPECT_LT(fraction, 0.8) << "two equal parallel batches -> fraction ~0.5";

  const auto steady = run_packet(3);
  EXPECT_NEAR(static_cast<double>(steady.sf_critical_path_cycles),
              static_cast<double>(steady.sf_total_cycles) * fraction,
              static_cast<double>(steady.sf_total_cycles) * 0.05);
}

TEST_F(FastPathMeasurement, SequentialBatchesKeepFractionNearOne) {
  a_.add_state_function(4, busy_sf(PayloadAccess::kWrite, 3));
  b_.add_state_function(4, busy_sf(PayloadAccess::kWrite, 3));
  mat_.consolidate_flow(4);
  ASSERT_EQ(mat_.find(4)->schedule.group_count(), 2u);

  for (std::uint32_t i = 0; i <= ConsolidatedRule::kCostSampleWindow; ++i) {
    run_packet(4);
  }
  EXPECT_GT(mat_.find(4)->critical_fraction, 0.9);
}

TEST_F(FastPathMeasurement, ReconsolidationRestartsSampling) {
  a_.add_state_function(5, busy_sf(PayloadAccess::kRead, 1));
  mat_.consolidate_flow(5);
  for (int i = 0; i < 12; ++i) run_packet(5);
  EXPECT_EQ(mat_.find(5)->cost_samples,
            ConsolidatedRule::kCostSampleWindow);

  mat_.consolidate_flow(5);
  EXPECT_EQ(mat_.find(5)->cost_samples, 0u);
  EXPECT_DOUBLE_EQ(mat_.find(5)->critical_fraction, 1.0);
}

TEST_F(FastPathMeasurement, ParsedHintReusedWhenLayoutIntact) {
  // A modify-only rule: the hint from the classifier parse must be usable
  // and the state function must see correct payload offsets.
  a_.add_header_action(6, HeaderAction::modify(net::HeaderField::kTtl, 7));
  std::string seen_payload;
  a_.add_state_function(
      6, StateFunction{[&seen_payload](net::Packet& pkt,
                                       const net::ParsedPacket& parsed) {
                         const auto payload = net::payload_view(
                             static_cast<const net::Packet&>(pkt), parsed);
                         seen_payload.assign(payload.begin(), payload.end());
                       },
                       PayloadAccess::kRead, "peek"});
  mat_.consolidate_flow(6);

  net::Packet packet = net::make_tcp_packet(tuple_n(6), "HINTED");
  packet.set_fid(6);
  const auto parsed = net::parse_packet(packet);
  mat_.process(packet, /*measure_batches=*/true, &*parsed);
  EXPECT_EQ(seen_payload, "HINTED");
}

TEST_F(FastPathMeasurement, StructuralRuleReparsesForStateFunctions) {
  // A rule with a trailing encap changes offsets; the state function must
  // still see the (re-parsed) payload, not stale hint offsets.
  a_.add_header_action(7, HeaderAction::encap_ah(42));
  std::string seen_payload;
  b_.add_state_function(
      7, StateFunction{[&seen_payload](net::Packet& pkt,
                                       const net::ParsedPacket& parsed) {
                         const auto payload = net::payload_view(
                             static_cast<const net::Packet&>(pkt), parsed);
                         seen_payload.assign(payload.begin(), payload.end());
                       },
                       PayloadAccess::kRead, "peek"});
  mat_.consolidate_flow(7);

  net::Packet packet = net::make_tcp_packet(tuple_n(7), "TUNNELED");
  packet.set_fid(7);
  const auto parsed = net::parse_packet(packet);
  mat_.process(packet, /*measure_batches=*/true, &*parsed);
  EXPECT_EQ(seen_payload, "TUNNELED");
  EXPECT_TRUE(net::outer_ah_spi(packet).has_value());
}

TEST(TimerOverhead, CalibratedAndStable) {
  const std::uint64_t a = util::CycleClock::timer_overhead();
  const std::uint64_t b = util::CycleClock::timer_overhead();
  EXPECT_EQ(a, b);
  EXPECT_LT(a, 2000u) << "a single rdtsc cannot cost microseconds";
}

TEST(TimerOverhead, SegmentSaturatesAtZero) {
  const std::uint64_t t = util::CycleClock::now();
  // A zero-length raw span minus overhead must clamp, not wrap.
  EXPECT_EQ(util::CycleClock::segment(t, t), 0u);
}

TEST(TimerOverhead, SegmentSubtractsOverhead) {
  const std::uint64_t overhead = util::CycleClock::timer_overhead();
  EXPECT_EQ(util::CycleClock::segment(100, 100 + overhead + 50), 50u);
}

}  // namespace
}  // namespace speedybox::core
