#include "core/api.hpp"

#include <gtest/gtest.h>

#include "net/packet_builder.hpp"
#include "test_helpers.hpp"

namespace speedybox::core {
namespace {

using speedybox::testing::tuple_n;

class ApiTest : public ::testing::Test {
 protected:
  ApiTest() : mat_("nf", 0), ctx_(mat_, events_, 42) {}

  LocalMat mat_;
  EventTable events_;
  SpeedyBoxContext ctx_;
};

TEST_F(ApiTest, FidExposed) { EXPECT_EQ(ctx_.fid(), 42u); }

TEST_F(ApiTest, AddHeaderActionRecordsUnderFid) {
  ctx_.add_header_action(HeaderAction::drop());
  ASSERT_NE(mat_.find(42), nullptr);
  EXPECT_EQ(mat_.find(42)->header_actions[0].type, HeaderActionType::kDrop);
}

TEST_F(ApiTest, AddStateFunctionRecordsUnderFid) {
  ctx_.add_state_function(
      StateFunction{[](net::Packet&, const net::ParsedPacket&) {},
                    PayloadAccess::kRead, "sf"});
  ASSERT_NE(mat_.find(42), nullptr);
  EXPECT_EQ(mat_.find(42)->state_functions.size(), 1u);
}

TEST_F(ApiTest, RegisterEventBindsFidAndNfIndex) {
  ctx_.register_event(
      "ev", [] { return true; }, [] { return EventUpdate{}; });
  EXPECT_TRUE(events_.has_events(42));
  std::size_t seen_nf = 99;
  events_.check(42, [&](const EventRegistration& event, EventUpdate) {
    seen_nf = event.nf_index;
  });
  EXPECT_EQ(seen_nf, 0u);
}

TEST_F(ApiTest, OnTeardownRegistersHook) {
  bool ran = false;
  ctx_.on_teardown([&ran] { ran = true; });
  mat_.run_teardown_hooks(42);
  EXPECT_TRUE(ran);
}

TEST(ApiFigure2, NfExtractFidReadsMetadata) {
  net::Packet packet = net::make_tcp_packet(tuple_n(1), "x");
  packet.set_fid(0x777);
  EXPECT_EQ(nf_extract_fid(packet), 0x777u);
}

TEST(ApiFigure2, NullContextIsSafeNoOp) {
  // Baseline path: NFs call the C-style wrappers with a null context; the
  // calls must be no-ops, not crashes.
  localmat_add_HA(nullptr, HeaderAction::drop());
  localmat_add_SF(
      nullptr, [](net::Packet&, const net::ParsedPacket&) {},
      PayloadAccess::kRead);
  register_event(
      nullptr, "ev", [] { return false; }, [] { return EventUpdate{}; });
  SUCCEED();
}

TEST(ApiFigure2, WrappersForwardToContext) {
  LocalMat mat{"nf", 3};
  EventTable events;
  SpeedyBoxContext ctx{mat, events, 7};

  localmat_add_HA(&ctx, HeaderAction::modify(net::HeaderField::kTtl, 1));
  localmat_add_SF(
      &ctx, [](net::Packet&, const net::ParsedPacket&) {},
      PayloadAccess::kWrite, "writer");
  register_event(
      &ctx, "ev", [] { return false; }, [] { return EventUpdate{}; });

  ASSERT_NE(mat.find(7), nullptr);
  EXPECT_EQ(mat.find(7)->header_actions.size(), 1u);
  ASSERT_EQ(mat.find(7)->state_functions.size(), 1u);
  EXPECT_EQ(mat.find(7)->state_functions[0].access, PayloadAccess::kWrite);
  EXPECT_EQ(mat.find(7)->state_functions[0].name, "writer");
  EXPECT_TRUE(events.has_events(7));
}

}  // namespace
}  // namespace speedybox::core
