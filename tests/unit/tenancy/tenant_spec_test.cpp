// HostSpec / TenantSpec / EnforcementConfig: strict-JSON round-trip and
// the cross-field validation contract (DESIGN.md §14). Same discipline as
// the DeploymentPlan suite: a typoed knob is an error, never a silent
// default.
#include <gtest/gtest.h>

#include "tenancy/tenant_spec.hpp"

namespace speedybox::tenancy {
namespace {

plan::DeploymentPlan sharded_plan(std::size_t shards) {
  plan::DeploymentPlan deployment;
  deployment.chain = plan::ChainSpec::parse("nat,monitor");
  deployment.executor = plan::ExecutorKind::kSharded;
  deployment.shards = shards;
  return deployment;
}

plan::DeploymentPlan runner_plan() {
  plan::DeploymentPlan deployment;
  deployment.chain = plan::ChainSpec::parse("ipfilter,monitor");
  deployment.executor = plan::ExecutorKind::kRunner;
  return deployment;
}

HostSpec two_tenant_host() {
  HostSpec host;
  host.name = "isolation";
  TenantSpec steady;
  steady.id = "steady";
  steady.plan = sharded_plan(2);
  steady.slo_us = 40.0;
  steady.weight = 2.0;
  steady.listen_port = 9001;
  steady.workload.kind = "uniform";
  steady.workload.flows = 50;
  steady.workload.packets_per_flow = 8;
  TenantSpec flood;
  flood.id = "flood";
  flood.plan = runner_plan();
  flood.slo_us = 500.0;
  flood.workload.kind = "syn-flood";
  flood.workload.flows = 0;  // scenario default population
  host.tenants = {steady, flood};
  host.pool_shards = 3;
  host.enforcement.window_packets = 512;
  host.enforcement.tighten_factor = 0.25;
  return host;
}

TEST(TenantSpec, HostRoundTripsThroughJson) {
  const HostSpec host = two_tenant_host();
  const HostSpec reparsed = HostSpec::parse(host.dump());
  EXPECT_EQ(reparsed.dump(), host.dump());
  EXPECT_EQ(reparsed.name, "isolation");
  ASSERT_EQ(reparsed.tenants.size(), 2u);
  EXPECT_EQ(reparsed.tenants[0], host.tenants[0]);
  EXPECT_EQ(reparsed.tenants[1], host.tenants[1]);
  EXPECT_EQ(reparsed.tenants[0].listen_port, 9001);
  EXPECT_EQ(reparsed.tenants[1].listen_port, 0);  // ephemeral stays absent
  EXPECT_EQ(reparsed.pool_shards, 3u);
  EXPECT_EQ(reparsed.enforcement.window_packets, 512u);
  EXPECT_DOUBLE_EQ(reparsed.enforcement.tighten_factor, 0.25);
  EXPECT_NO_THROW(reparsed.validate());
}

TEST(TenantSpec, DefaultsSurviveARoundTrip) {
  HostSpec host;
  TenantSpec tenant;
  tenant.id = "solo";
  tenant.plan = runner_plan();
  host.tenants = {tenant};
  const HostSpec reparsed = HostSpec::parse(host.dump());
  EXPECT_DOUBLE_EQ(reparsed.tenants[0].slo_us, 50.0);
  EXPECT_DOUBLE_EQ(reparsed.tenants[0].weight, 1.0);
  EXPECT_EQ(reparsed.enforcement.window_packets, 1024u);
  EXPECT_TRUE(reparsed.enforcement.tighten_admission);
  EXPECT_TRUE(reparsed.enforcement.reallocate_shards);
}

TEST(TenantSpec, UnknownFieldsAreErrorsAtEveryLevel) {
  const HostSpec host = two_tenant_host();
  auto json = host.to_json();
  json.set("bogus", telemetry::Json::integer(1));
  EXPECT_THROW(HostSpec::from_json(json), SpecError);

  auto typoed_enforcement = host.to_json();
  auto enforcement = host.enforcement.to_json();
  enforcement.set("window_pakets", telemetry::Json::integer(64));
  typoed_enforcement.set("enforcement", std::move(enforcement));
  EXPECT_THROW(HostSpec::from_json(typoed_enforcement), SpecError);

  auto tenant_json = host.tenants[0].to_json();
  tenant_json.set("slo", telemetry::Json::number(10.0));  // typo of slo_us
  EXPECT_THROW(TenantSpec::from_json(tenant_json), SpecError);
}

TEST(TenantSpec, MissingRequiredFieldsAreErrors) {
  EXPECT_THROW(HostSpec::parse(R"({"version":1})"), SpecError);
  EXPECT_THROW(HostSpec::parse(R"({"version":1,"tenants":[]})"), SpecError);
  EXPECT_THROW(HostSpec::parse(R"({"version":2,"tenants":[{}]})"),
               SpecError);
  // A tenant needs both an id and a plan.
  EXPECT_THROW(TenantSpec::from_json(*telemetry::Json::parse(
                   R"({"id":"a"})")),
               SpecError);
  EXPECT_THROW(HostSpec::parse("not json"), SpecError);
}

TEST(TenantSpec, EnforcementRangesAreChecked) {
  EnforcementConfig config;
  config.tighten_factor = 1.0;  // must shrink the budget
  EXPECT_THROW(config.validate(), SpecError);
  config = EnforcementConfig{};
  config.calm_fraction = 1.5;
  EXPECT_THROW(config.validate(), SpecError);
  config = EnforcementConfig{};
  config.window_packets = 0;
  EXPECT_THROW(config.validate(), SpecError);
  config = EnforcementConfig{};
  EXPECT_NO_THROW(config.validate());
}

TEST(TenantSpec, OneShotExecutorsCannotHostATenant) {
  HostSpec host = two_tenant_host();
  host.tenants[1].plan.executor = plan::ExecutorKind::kPipeline;
  host.tenants[1].plan.segments = {};  // keep the plan itself well-formed
  EXPECT_THROW(host.validate(), SpecError);
}

TEST(TenantSpec, DuplicateIdsAndPortsAreRejected) {
  HostSpec host = two_tenant_host();
  host.tenants[1].id = host.tenants[0].id;
  EXPECT_THROW(host.validate(), SpecError);

  host = two_tenant_host();
  host.tenants[1].listen_port = host.tenants[0].listen_port;
  EXPECT_THROW(host.validate(), SpecError);

  // Two ephemeral listeners (port 0) are fine.
  host = two_tenant_host();
  host.tenants[0].listen_port = 0;
  host.tenants[1].listen_port = 0;
  EXPECT_NO_THROW(host.validate());
}

TEST(TenantSpec, PlannedShardsMustFitThePool) {
  HostSpec host = two_tenant_host();
  host.pool_shards = 1;  // steady alone plans 2
  EXPECT_THROW(host.validate(), SpecError);
  host.pool_shards = 2;
  EXPECT_NO_THROW(host.validate());
}

TEST(TenantSpec, EffectivePoolDefaultsToThePlannedSum) {
  HostSpec host = two_tenant_host();
  EXPECT_EQ(host.effective_pool_shards(), 3u);  // explicit pool wins
  host.pool_shards = 0;
  EXPECT_EQ(host.effective_pool_shards(), 2u);  // steady 2 + flood 0
}

}  // namespace
}  // namespace speedybox::tenancy
