// TenantGate: the host-boundary admission gate (DESIGN.md §14). Single
// drive thread here — the concurrency story (arbiter publishing while the
// drive offers) is covered by the live serve() path under TSan.
#include <gtest/gtest.h>

#include "tenancy/tenant_host.hpp"

namespace speedybox::tenancy {
namespace {

TEST(TenantGate, UnlimitedByDefault) {
  TenantGate gate;
  for (std::uint64_t hash = 0; hash < 100; ++hash) {
    EXPECT_TRUE(gate.offer(hash));
  }
  EXPECT_EQ(gate.offered(), 100u);
  EXPECT_EQ(gate.shed(), 0u);
}

TEST(TenantGate, TailDropBudgetAdmitsWindowPrefix) {
  TenantGate gate;
  gate.configure(5, runtime::DropPolicy::kTailDrop, /*last_offered=*/100);
  std::uint64_t admitted = 0;
  for (std::uint64_t i = 0; i < 12; ++i) {
    if (gate.offer(i)) ++admitted;
  }
  EXPECT_EQ(admitted, 5u);
  EXPECT_EQ(gate.offered(), 12u);
  EXPECT_EQ(gate.shed(), 7u);

  // A reconfigure bumps the window epoch: the drive-side count restarts,
  // so the next window admits a fresh budget's worth.
  gate.configure(5, runtime::DropPolicy::kTailDrop, 12);
  admitted = 0;
  for (std::uint64_t i = 0; i < 12; ++i) {
    if (gate.offer(i)) ++admitted;
  }
  EXPECT_EQ(admitted, 5u);
  EXPECT_EQ(gate.shed(), 14u);
}

TEST(TenantGate, ResetWindowRestartsTheCount) {
  TenantGate gate;
  gate.configure(3, runtime::DropPolicy::kTailDrop, 10);
  for (std::uint64_t i = 0; i < 5; ++i) gate.offer(i);
  EXPECT_EQ(gate.shed(), 2u);
  gate.reset_window();
  std::uint64_t admitted = 0;
  for (std::uint64_t i = 0; i < 3; ++i) {
    if (gate.offer(i)) ++admitted;
  }
  EXPECT_EQ(admitted, 3u);
}

TEST(TenantGate, PerFlowFairShedsByHashBand) {
  TenantGate gate;
  // Budget carries half of last window's arrivals: band = 512/1024.
  gate.configure(512, runtime::DropPolicy::kPerFlowFair,
                 /*last_offered=*/1024);
  std::uint64_t admitted = 0;
  for (std::uint64_t hash = 0; hash < 1024; ++hash) {
    const bool verdict = gate.offer(hash);
    // Flow-consistent: the verdict depends only on the hash.
    EXPECT_EQ(verdict, hash % 1024 < 512);
    if (verdict) ++admitted;
  }
  EXPECT_EQ(admitted, 512u);
}

TEST(TenantGate, PerFlowFairBandNeverEmpties) {
  TenantGate gate;
  // Budget is a rounding error of the offered load; at least one band
  // (1/1024th of the hash space) must still survive.
  gate.configure(1, runtime::DropPolicy::kPerFlowFair,
                 /*last_offered=*/1'000'000);
  EXPECT_TRUE(gate.offer(0));
  EXPECT_FALSE(gate.offer(1));
}

TEST(TenantGate, PerFlowFairWithUnlimitedBudgetAdmitsAll) {
  TenantGate gate;
  gate.configure(kUnlimitedBudget, runtime::DropPolicy::kPerFlowFair, 500);
  for (std::uint64_t hash = 1000; hash < 1100; ++hash) {
    EXPECT_TRUE(gate.offer(hash));
  }
  EXPECT_EQ(gate.shed(), 0u);
}

}  // namespace
}  // namespace speedybox::tenancy
