// SloEnforcementPolicy ladder: pure state machine, driven from synthetic
// per-window signals (no runtime, no clocks). Mirrors the discipline of
// the control::ScalingPolicy tests: every transition of DESIGN.md §14's
// escalation ladder is exercised from canned signal sequences.
#include <gtest/gtest.h>

#include <stdexcept>

#include "tenancy/slo_policy.hpp"

namespace speedybox::tenancy {
namespace {

EnforcementConfig test_config() {
  EnforcementConfig config;
  config.breach_streak = 2;
  config.calm_streak = 2;
  config.calm_fraction = 0.5;
  config.cooldown_windows = 1;
  config.tighten_factor = 0.5;
  config.min_budget = 4;
  return config;
}

TenantInput make_input(double slo_us, double weight, bool sharded,
                       std::size_t shards, double p99_us,
                       std::uint64_t offered) {
  TenantInput input;
  input.slo_us = slo_us;
  input.weight = weight;
  input.sharded = sharded;
  input.active_shards = shards;
  input.signals.p99_latency_us = p99_us;
  input.signals.window_offered = offered;
  input.signals.window_forwarded = offered;
  return input;
}

/// Victim breaching at index 0, offender flooding at index 1, both
/// sharded 2+2 — the canonical adversarial-tenant window.
std::vector<TenantInput> adversarial_window() {
  return {make_input(10.0, 1.0, true, 2, /*p99=*/50.0, /*offered=*/100),
          make_input(1000.0, 1.0, true, 2, /*p99=*/1.0, /*offered=*/1000)};
}

TEST(SloPolicy, NoBreachMeansNoInterference) {
  SloEnforcementPolicy policy(test_config(), 2);
  const std::vector<TenantInput> window = {
      make_input(50.0, 1.0, true, 2, 10.0, 500),
      make_input(50.0, 1.0, true, 2, 12.0, 500)};
  for (int tick = 0; tick < 5; ++tick) {
    const auto decisions = policy.tick(window, 4);
    for (const TenantDecision& decision : decisions) {
      EXPECT_EQ(decision.admission_budget, kUnlimitedBudget);
      EXPECT_EQ(decision.gate_policy, runtime::DropPolicy::kTailDrop);
      EXPECT_EQ(decision.escalation, 0);
      EXPECT_EQ(decision.shard_delta, 0);
    }
  }
}

TEST(SloPolicy, BreachStreakGatesTheFirstAction) {
  SloEnforcementPolicy policy(test_config(), 2);
  // Window 1: streak 1 < breach_streak 2 — no action yet.
  auto decisions = policy.tick(adversarial_window(), 4);
  EXPECT_EQ(decisions[1].escalation, 0);
  EXPECT_EQ(decisions[1].admission_budget, kUnlimitedBudget);
  // Window 2: streak reaches 2 — the offender (highest offered/weight)
  // steps to L1 with its budget tightened from its own offered load.
  decisions = policy.tick(adversarial_window(), 4);
  EXPECT_EQ(decisions[1].escalation, 1);
  EXPECT_EQ(decisions[1].admission_budget, 500u);  // 1000 * 0.5
  EXPECT_EQ(decisions[1].gate_policy, runtime::DropPolicy::kTailDrop);
  // The victim is never tightened.
  EXPECT_EQ(decisions[0].escalation, 0);
  EXPECT_EQ(decisions[0].admission_budget, kUnlimitedBudget);
}

TEST(SloPolicy, LadderEscalatesThroughFlowFairToReallocation) {
  SloEnforcementPolicy policy(test_config(), 2);
  policy.tick(adversarial_window(), 4);
  auto decisions = policy.tick(adversarial_window(), 4);  // acts: L1
  EXPECT_EQ(decisions[1].escalation, 1);

  // Cooldown window: pressure keeps building but no action fires.
  decisions = policy.tick(adversarial_window(), 4);
  EXPECT_EQ(decisions[1].escalation, 1);

  // Streak rebuilds to 2 -> second action: L2, flow-fair gate, budget
  // halves again.
  policy.tick(adversarial_window(), 4);
  decisions = policy.tick(adversarial_window(), 4);
  EXPECT_EQ(decisions[1].escalation, 2);
  EXPECT_EQ(decisions[1].gate_policy, runtime::DropPolicy::kPerFlowFair);
  EXPECT_EQ(decisions[1].admission_budget, 250u);

  // Streak rebuilds during the cooldown window, so the very next tick is
  // the third action: L3 — with no pool headroom the offender gives one
  // shard and the victim takes it, paired in one tick.
  decisions = policy.tick(adversarial_window(), 4);
  EXPECT_EQ(decisions[1].escalation, 3);
  EXPECT_EQ(decisions[1].shard_delta, -1);
  EXPECT_EQ(decisions[0].shard_delta, +1);
  EXPECT_EQ(decisions[1].admission_budget, 125u);
}

TEST(SloPolicy, FreePoolHeadroomIsClaimedBeforeOffenderShards) {
  SloEnforcementPolicy policy(test_config(), 2);
  policy.tick(adversarial_window(), /*pool_shards=*/5);
  const auto decisions = policy.tick(adversarial_window(), 5);
  // 4 allocated, pool of 5: the victim grows out of the free headroom and
  // the offender keeps its shards (it is still admission-tightened).
  EXPECT_EQ(decisions[0].shard_delta, +1);
  EXPECT_EQ(decisions[1].shard_delta, 0);
  EXPECT_EQ(decisions[1].escalation, 1);
}

TEST(SloPolicy, SelfInflictedBreachNeverTightensAnInnocentNeighbour) {
  SloEnforcementPolicy policy(test_config(), 2);
  // The breaching tenant is its own heaviest load (1000 offered/weight vs
  // the neighbour's 10): no offender, no headroom, so nothing to do.
  const std::vector<TenantInput> window = {
      make_input(10.0, 1.0, true, 2, 50.0, 1000),
      make_input(1000.0, 1.0, true, 2, 1.0, 10)};
  for (int tick = 0; tick < 4; ++tick) {
    const auto decisions = policy.tick(window, 4);
    EXPECT_EQ(decisions[1].escalation, 0);
    EXPECT_EQ(decisions[1].admission_budget, kUnlimitedBudget);
    EXPECT_EQ(decisions[0].shard_delta, 0);
  }
  // With no qualifying action the victim's streak keeps growing — the
  // arbiter stays ready to claim headroom the moment some appears.
  EXPECT_GE(policy.breach_streak(0), 4);
  const auto decisions = policy.tick(window, /*pool_shards=*/5);
  EXPECT_EQ(decisions[0].shard_delta, +1);
}

TEST(SloPolicy, WeightScalesTheOffenderChoice) {
  SloEnforcementPolicy policy(test_config(), 3);
  // Tenant 2 offers less than tenant 1 but at a fraction of the weight:
  // per-weight it is the heavier offender.
  const std::vector<TenantInput> window = {
      make_input(10.0, 1.0, true, 2, 50.0, 100),
      make_input(1000.0, 4.0, true, 2, 1.0, 1200),  // 300 per weight
      make_input(1000.0, 1.0, true, 2, 1.0, 800)};  // 800 per weight
  policy.tick(window, 6);
  const auto decisions = policy.tick(window, 6);
  EXPECT_EQ(decisions[1].escalation, 0);
  EXPECT_EQ(decisions[2].escalation, 1);
  EXPECT_EQ(decisions[2].admission_budget, 400u);  // 800 * 0.5
}

TEST(SloPolicy, CalmStreakDeescalatesAndLoosensTheBudget) {
  SloEnforcementPolicy policy(test_config(), 2);
  policy.tick(adversarial_window(), 4);
  policy.tick(adversarial_window(), 4);  // offender at L1, budget 500
  // Calm from here on: the victim recovers, the offender idles. One
  // cooldown window passes, then calm_streak = 2 de-escalates.
  const std::vector<TenantInput> calm = {
      make_input(10.0, 1.0, true, 2, 1.0, 100),
      make_input(1000.0, 1.0, true, 2, 0.0, 0)};  // idle counts as calm
  policy.tick(calm, 4);  // cooldown
  policy.tick(calm, 4);  // calm streak 2 -> de-escalate to L0
  EXPECT_EQ(policy.escalation(1), 0);
  const auto decisions = policy.tick(calm, 4);
  EXPECT_EQ(decisions[1].admission_budget, kUnlimitedBudget);
  EXPECT_EQ(decisions[1].escalation, 0);
}

TEST(SloPolicy, DisabledTighteningJumpsStraightToReallocation) {
  EnforcementConfig config = test_config();
  config.tighten_admission = false;
  SloEnforcementPolicy policy(config, 2);
  policy.tick(adversarial_window(), 4);
  const auto decisions = policy.tick(adversarial_window(), 4);
  // The only rung with teeth is L3: the offender jumps to it, but its
  // admission budget stays untouched.
  EXPECT_EQ(decisions[1].escalation, 3);
  EXPECT_EQ(decisions[1].admission_budget, kUnlimitedBudget);
  EXPECT_EQ(decisions[1].shard_delta, -1);
  EXPECT_EQ(decisions[0].shard_delta, +1);
}

TEST(SloPolicy, RunnerTenantsOnlyGate) {
  SloEnforcementPolicy policy(test_config(), 2);
  // Neither tenant is sharded: the ladder still tightens admission but no
  // shard ever moves.
  std::vector<TenantInput> window = adversarial_window();
  window[0].sharded = false;
  window[0].active_shards = 0;
  window[1].sharded = false;
  window[1].active_shards = 0;
  for (int tick = 0; tick < 10; ++tick) {
    const auto decisions = policy.tick(window, 4);
    EXPECT_EQ(decisions[0].shard_delta, 0);
    EXPECT_EQ(decisions[1].shard_delta, 0);
  }
  EXPECT_GE(policy.escalation(1), 1);
}

TEST(SloPolicy, BudgetFloorsAtMinBudget) {
  EnforcementConfig config = test_config();
  config.cooldown_windows = 0;
  SloEnforcementPolicy policy(config, 2);
  std::uint64_t budget = kUnlimitedBudget;
  // Halving from 1000 reaches the floor of 4 after eight actions (one
  // action per two windows: streak rebuild + act, no cooldown).
  for (int tick = 0; tick < 20; ++tick) {
    budget = policy.tick(adversarial_window(), 4)[1].admission_budget;
  }
  EXPECT_EQ(budget, config.min_budget);
}

TEST(SloPolicy, TenantCountMustStayStable) {
  SloEnforcementPolicy policy(test_config(), 2);
  const std::vector<TenantInput> three(3);
  EXPECT_THROW(policy.tick(three, 4), std::logic_error);
  EXPECT_THROW(SloEnforcementPolicy(test_config(), 0), std::logic_error);
}

}  // namespace
}  // namespace speedybox::tenancy
