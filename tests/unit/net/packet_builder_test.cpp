#include "net/packet_builder.hpp"

#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "test_helpers.hpp"

namespace speedybox::net {
namespace {

using speedybox::testing::tuple_n;

TEST(PacketBuilder, TupleRoundTrips) {
  const FiveTuple tuple = tuple_n(1, 443);
  const Packet packet = make_tcp_packet(tuple, "x");
  const auto parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(extract_five_tuple(packet, *parsed), tuple);
}

TEST(PacketBuilder, UdpTupleRoundTrips) {
  FiveTuple tuple = tuple_n(2, 53);
  tuple.proto = static_cast<std::uint8_t>(IpProto::kUdp);
  const Packet packet = make_udp_packet(tuple, "dns");
  const auto parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(extract_five_tuple(packet, *parsed), tuple);
}

TEST(PacketBuilder, ChecksumsValidOnBuild) {
  const Packet packet = make_tcp_packet(tuple_n(3), "payload bytes");
  const auto parsed = parse_packet(packet);
  EXPECT_TRUE(verify_ipv4_checksum(packet, parsed->l3_offset));
  EXPECT_TRUE(verify_l4_checksum(packet, *parsed));
}

TEST(PacketBuilder, UdpChecksumValid) {
  const Packet packet = make_udp_packet(tuple_n(4), "u");
  const auto parsed = parse_packet(packet);
  EXPECT_TRUE(verify_l4_checksum(packet, *parsed));
}

TEST(PacketBuilder, FrameOfRequestedSize) {
  const Packet packet = make_tcp_packet_of_size(tuple_n(5), 64);
  EXPECT_EQ(packet.size(), 64u);
  const Packet big = make_tcp_packet_of_size(tuple_n(5), 1500);
  EXPECT_EQ(big.size(), 1500u);
}

TEST(PacketBuilder, FrameSizeNeverBelowHeaders) {
  const Packet packet = make_tcp_packet_of_size(tuple_n(6), 10);
  EXPECT_EQ(packet.size(), kEthHeaderLen + kIpv4MinHeaderLen + kTcpHeaderLen);
}

TEST(PacketBuilder, TtlAndTosApplied) {
  PacketSpec spec;
  spec.tuple = tuple_n(7);
  spec.ttl = 12;
  spec.tos = 0xB8;
  const Packet packet = build_packet(spec);
  EXPECT_EQ(packet.bytes()[kEthHeaderLen + 8], 12);
  EXPECT_EQ(packet.bytes()[kEthHeaderLen + 1], 0xB8);
}

TEST(PacketBuilder, FlagsApplied) {
  const Packet packet =
      make_tcp_packet(tuple_n(8), "", kTcpFlagSyn | kTcpFlagAck);
  const auto parsed = parse_packet(packet);
  EXPECT_EQ(parsed->tcp_flags, kTcpFlagSyn | kTcpFlagAck);
}

TEST(PacketBuilder, EmptyPayloadValid) {
  const Packet packet = make_tcp_packet(tuple_n(9), "");
  const auto parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(payload_view(packet, *parsed).size(), 0u);
}

}  // namespace
}  // namespace speedybox::net
