#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "net/packet.hpp"
#include "net/packet_builder.hpp"
#include "test_helpers.hpp"

namespace speedybox::net {
namespace {

using speedybox::testing::same_bytes;
using speedybox::testing::tuple_n;

TEST(EncapAh, AddsHeaderAndStaysParseable) {
  Packet packet = make_tcp_packet(tuple_n(1), "vpn payload");
  const std::size_t before = packet.size();
  encap_ah(packet, 0xDEADBEEF);
  EXPECT_EQ(packet.size(), before + kAhHeaderLen);
  EXPECT_EQ(outer_ah_spi(packet), 0xDEADBEEF);

  const auto parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_tcp());
  EXPECT_EQ(parsed->encap_depth, 1u);
  EXPECT_TRUE(verify_ipv4_checksum(packet, parsed->l3_offset));
}

TEST(EncapAh, PayloadUnchanged) {
  Packet packet = make_tcp_packet(tuple_n(2), "SECRET");
  encap_ah(packet, 7);
  const auto parsed = parse_packet(packet);
  const auto payload = payload_view(packet, *parsed);
  EXPECT_EQ(std::string(payload.begin(), payload.end()), "SECRET");
}

TEST(DecapAh, InvertsEncap) {
  Packet packet = make_tcp_packet(tuple_n(3), "round trip");
  const Packet original = packet;
  encap_ah(packet, 42);
  ASSERT_TRUE(decap_ah(packet));
  EXPECT_TRUE(same_bytes(packet, original));
}

TEST(DecapAh, FailsWithoutAh) {
  Packet packet = make_tcp_packet(tuple_n(4), "x");
  EXPECT_FALSE(decap_ah(packet));
}

TEST(EncapAh, Nestable) {
  Packet packet = make_tcp_packet(tuple_n(5), "deep");
  const Packet original = packet;
  encap_ah(packet, 1);
  encap_ah(packet, 2);
  EXPECT_EQ(outer_ah_spi(packet), 2u);
  const auto parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->encap_depth, 2u);
  EXPECT_TRUE(parsed->is_tcp());

  ASSERT_TRUE(decap_ah(packet));
  EXPECT_EQ(outer_ah_spi(packet), 1u);
  ASSERT_TRUE(decap_ah(packet));
  EXPECT_TRUE(same_bytes(packet, original));
}

TEST(EncapIpip, AddsOuterHeader) {
  Packet packet = make_tcp_packet(tuple_n(6), "tunnel");
  const std::size_t before = packet.size();
  encap_ipip(packet, Ipv4Addr{172, 16, 0, 1}, Ipv4Addr{172, 16, 0, 2});
  EXPECT_EQ(packet.size(), before + kIpv4MinHeaderLen);

  const auto parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->encap_depth, 1u);
  EXPECT_NE(parsed->l3_offset, parsed->inner_l3_offset);
  EXPECT_TRUE(verify_ipv4_checksum(packet, parsed->l3_offset));
  EXPECT_TRUE(verify_ipv4_checksum(packet, parsed->inner_l3_offset));
  // Inner tuple still extractable.
  EXPECT_EQ(extract_five_tuple(packet, *parsed), tuple_n(6));
}

TEST(DecapIpip, InvertsEncap) {
  Packet packet = make_tcp_packet(tuple_n(7), "x");
  const Packet original = packet;
  encap_ipip(packet, Ipv4Addr{1, 1, 1, 1}, Ipv4Addr{2, 2, 2, 2});
  ASSERT_TRUE(decap_ipip(packet));
  EXPECT_TRUE(same_bytes(packet, original));
}

TEST(DecapIpip, FailsWithoutTunnel) {
  Packet packet = make_tcp_packet(tuple_n(8), "x");
  EXPECT_FALSE(decap_ipip(packet));
}

TEST(Encap, MixedAhOverIpip) {
  Packet packet = make_tcp_packet(tuple_n(9), "mix");
  encap_ipip(packet, Ipv4Addr{1, 0, 0, 1}, Ipv4Addr{1, 0, 0, 2});
  encap_ah(packet, 99);
  const auto parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->encap_depth, 2u);
  EXPECT_TRUE(parsed->is_tcp());
  EXPECT_EQ(extract_five_tuple(packet, *parsed), tuple_n(9));
}

TEST(Encap, L4ChecksumSurvivesTunnel) {
  Packet packet = make_tcp_packet(tuple_n(10), "integrity");
  encap_ipip(packet, Ipv4Addr{3, 3, 3, 3}, Ipv4Addr{4, 4, 4, 4});
  const auto parsed = parse_packet(packet);
  EXPECT_TRUE(verify_l4_checksum(packet, *parsed));
}

}  // namespace
}  // namespace speedybox::net
