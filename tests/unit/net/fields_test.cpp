#include "net/fields.hpp"

#include <gtest/gtest.h>

#include "net/packet_builder.hpp"
#include "test_helpers.hpp"

namespace speedybox::net {
namespace {

using speedybox::testing::tuple_n;

TEST(Fields, GetMatchesBuiltTuple) {
  const FiveTuple tuple = tuple_n(1, 8080);
  const Packet packet = make_tcp_packet(tuple, "x");
  const auto parsed = parse_packet(packet);
  EXPECT_EQ(get_field(packet, *parsed, HeaderField::kSrcIp),
            tuple.src_ip.value);
  EXPECT_EQ(get_field(packet, *parsed, HeaderField::kDstIp),
            tuple.dst_ip.value);
  EXPECT_EQ(get_field(packet, *parsed, HeaderField::kSrcPort),
            tuple.src_port);
  EXPECT_EQ(get_field(packet, *parsed, HeaderField::kDstPort), 8080u);
  EXPECT_EQ(get_field(packet, *parsed, HeaderField::kTtl), 64u);
}

TEST(Fields, SetGetRoundTripEveryField) {
  for (const HeaderField field :
       {HeaderField::kSrcIp, HeaderField::kDstIp, HeaderField::kSrcPort,
        HeaderField::kDstPort, HeaderField::kTtl, HeaderField::kTos}) {
    Packet packet = make_tcp_packet(tuple_n(2), "x");
    const auto parsed = parse_packet(packet);
    const std::uint32_t value =
        field == HeaderField::kTtl || field == HeaderField::kTos
            ? 0xAB
            : field == HeaderField::kSrcPort || field == HeaderField::kDstPort
                ? 0xBEEF
                : 0xC0A80499;
    set_field(packet, *parsed, field, value);
    EXPECT_EQ(get_field(packet, *parsed, field), value)
        << field_name(field);
  }
}

TEST(Fields, PortsUnavailableOnNonTransport) {
  // Build a TCP packet then flip the protocol to an unknown value.
  Packet packet = make_tcp_packet(tuple_n(3), "x");
  packet.bytes()[kEthHeaderLen + 9] = 47;  // GRE
  const auto parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(field_ref(*parsed, HeaderField::kSrcPort).has_value());
  EXPECT_FALSE(field_ref(*parsed, HeaderField::kDstPort).has_value());
  EXPECT_TRUE(field_ref(*parsed, HeaderField::kSrcIp).has_value());
}

TEST(Fields, WidthsAreCorrect) {
  const Packet packet = make_tcp_packet(tuple_n(4), "x");
  const auto parsed = parse_packet(packet);
  EXPECT_EQ(field_ref(*parsed, HeaderField::kSrcIp)->width, 4u);
  EXPECT_EQ(field_ref(*parsed, HeaderField::kDstPort)->width, 2u);
  EXPECT_EQ(field_ref(*parsed, HeaderField::kTtl)->width, 1u);
}

TEST(Fields, NamesAreStable) {
  EXPECT_EQ(field_name(HeaderField::kSrcIp), "src_ip");
  EXPECT_EQ(field_name(HeaderField::kDstPort), "dst_port");
  EXPECT_EQ(field_name(HeaderField::kTos), "tos");
}

TEST(Fields, SetFieldDoesNotDisturbNeighbors) {
  Packet packet = make_tcp_packet(tuple_n(5), "x");
  const auto parsed = parse_packet(packet);
  const std::uint32_t src_before =
      get_field(packet, *parsed, HeaderField::kSrcIp);
  set_field(packet, *parsed, HeaderField::kDstIp, 0x08080808);
  EXPECT_EQ(get_field(packet, *parsed, HeaderField::kSrcIp), src_before);
  EXPECT_EQ(get_field(packet, *parsed, HeaderField::kDstIp), 0x08080808u);
}

}  // namespace
}  // namespace speedybox::net
