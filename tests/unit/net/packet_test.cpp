#include "net/packet.hpp"

#include <gtest/gtest.h>

#include "net/packet_builder.hpp"
#include "test_helpers.hpp"

namespace speedybox::net {
namespace {

using speedybox::testing::tuple_n;

TEST(PacketParse, ValidTcpPacket) {
  const Packet packet = make_tcp_packet(tuple_n(1), "payload");
  const auto parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->l3_offset, kEthHeaderLen);
  EXPECT_EQ(parsed->inner_l3_offset, kEthHeaderLen);
  EXPECT_EQ(parsed->l4_offset, kEthHeaderLen + kIpv4MinHeaderLen);
  EXPECT_EQ(parsed->payload_offset,
            kEthHeaderLen + kIpv4MinHeaderLen + kTcpHeaderLen);
  EXPECT_TRUE(parsed->is_tcp());
  EXPECT_FALSE(parsed->is_udp());
  EXPECT_EQ(parsed->encap_depth, 0u);
}

TEST(PacketParse, ValidUdpPacket) {
  const Packet packet = make_udp_packet(tuple_n(2), "x");
  const auto parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_udp());
  EXPECT_EQ(parsed->payload_offset,
            kEthHeaderLen + kIpv4MinHeaderLen + kUdpHeaderLen);
}

TEST(PacketParse, TcpFlags) {
  const Packet syn =
      make_tcp_packet(tuple_n(3), "", kTcpFlagSyn);
  EXPECT_TRUE(parse_packet(syn)->has_syn());
  EXPECT_FALSE(parse_packet(syn)->has_fin_or_rst());

  const Packet fin =
      make_tcp_packet(tuple_n(3), "", kTcpFlagFin | kTcpFlagAck);
  EXPECT_TRUE(parse_packet(fin)->has_fin_or_rst());

  const Packet rst = make_tcp_packet(tuple_n(3), "", kTcpFlagRst);
  EXPECT_TRUE(parse_packet(rst)->has_fin_or_rst());
}

TEST(PacketParse, RejectsTruncated) {
  Packet packet{std::vector<std::uint8_t>(10, 0)};
  EXPECT_FALSE(parse_packet(packet).has_value());
}

TEST(PacketParse, RejectsNonIpv4Ethertype) {
  Packet packet = make_tcp_packet(tuple_n(4), "x");
  packet.bytes()[12] = 0x86;  // 0x86DD = IPv6
  packet.bytes()[13] = 0xDD;
  EXPECT_FALSE(parse_packet(packet).has_value());
}

TEST(PacketParse, RejectsBadIpVersion) {
  Packet packet = make_tcp_packet(tuple_n(5), "x");
  packet.bytes()[kEthHeaderLen] = 0x65;  // version 6
  EXPECT_FALSE(parse_packet(packet).has_value());
}

TEST(PacketParse, TotalLengthFromHeader) {
  const Packet packet = make_tcp_packet(tuple_n(6), "abcd");
  const auto parsed = parse_packet(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->total_length, kIpv4MinHeaderLen + kTcpHeaderLen + 4);
}

TEST(PacketMetadata, FidLifecycle) {
  Packet packet = make_tcp_packet(tuple_n(7), "x");
  EXPECT_FALSE(packet.has_fid());
  packet.set_fid(0x12345);
  EXPECT_TRUE(packet.has_fid());
  EXPECT_EQ(packet.fid(), 0x12345u);
  packet.clear_fid();
  EXPECT_FALSE(packet.has_fid());
}

TEST(PacketMetadata, FidTruncatedTo20Bits) {
  Packet packet;
  packet.set_fid(0xFFFFFFFF);
  EXPECT_EQ(packet.fid(), kFidMask);
}

TEST(PacketMetadata, DropMarksDescriptor) {
  Packet packet = make_tcp_packet(tuple_n(8), "x");
  EXPECT_FALSE(packet.dropped());
  packet.mark_dropped();
  EXPECT_TRUE(packet.dropped());
}

TEST(PacketMetadata, ResetClearsEverything) {
  Packet packet = make_tcp_packet(tuple_n(9), "x");
  packet.set_fid(7);
  packet.set_initial(true);
  packet.mark_dropped();
  packet.set_arrival_cycle(99);
  packet.reset_metadata();
  EXPECT_FALSE(packet.has_fid());
  EXPECT_FALSE(packet.is_initial());
  EXPECT_FALSE(packet.dropped());
  EXPECT_EQ(packet.arrival_cycle(), 0u);
}

TEST(PacketBytes, InsertEraseRoundTrip) {
  Packet packet = make_tcp_packet(tuple_n(10), "hello");
  const std::vector<std::uint8_t> before{packet.bytes().begin(),
                                         packet.bytes().end()};
  packet.insert_bytes(20, 8);
  EXPECT_EQ(packet.size(), before.size() + 8);
  packet.erase_bytes(20, 8);
  EXPECT_TRUE(std::equal(packet.bytes().begin(), packet.bytes().end(),
                         before.begin(), before.end()));
}

TEST(PacketPayload, ViewMatchesBuiltPayload) {
  const Packet packet = make_tcp_packet(tuple_n(11), "SECRET");
  const auto parsed = parse_packet(packet);
  const auto payload = payload_view(packet, *parsed);
  EXPECT_EQ(std::string(payload.begin(), payload.end()), "SECRET");
}

}  // namespace
}  // namespace speedybox::net
