#include "net/five_tuple.hpp"

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

namespace speedybox::net {
namespace {

TEST(Ipv4Addr, OctetConstructorAndToString) {
  const Ipv4Addr addr{192, 168, 1, 42};
  EXPECT_EQ(addr.value, 0xC0A8012Au);
  EXPECT_EQ(addr.to_string(), "192.168.1.42");
}

TEST(Ipv4Addr, Comparisons) {
  EXPECT_EQ(Ipv4Addr(10, 0, 0, 1), Ipv4Addr{0x0A000001});
  EXPECT_LT(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
}

TEST(FiveTuple, EqualityCoversAllFields) {
  FiveTuple a;
  a.src_ip = Ipv4Addr{1};
  a.dst_ip = Ipv4Addr{2};
  a.src_port = 3;
  a.dst_port = 4;
  a.proto = 6;
  FiveTuple b = a;
  EXPECT_EQ(a, b);
  b.proto = 17;
  EXPECT_NE(a, b);
}

TEST(FiveTuple, HashDiffersAcrossFields) {
  FiveTuple base;
  base.src_ip = Ipv4Addr{0x0A000001};
  base.dst_ip = Ipv4Addr{0x0A000002};
  base.src_port = 1111;
  base.dst_port = 80;

  std::set<std::uint64_t> hashes{base.hash()};
  FiveTuple t = base;
  t.src_ip = Ipv4Addr{0x0A000003};
  hashes.insert(t.hash());
  t = base;
  t.dst_port = 81;
  hashes.insert(t.hash());
  t = base;
  t.proto = 17;
  hashes.insert(t.hash());
  EXPECT_EQ(hashes.size(), 4u) << "each field change must alter the hash";
}

TEST(FiveTuple, HashWellDistributedIn20Bits) {
  // The classifier uses hash % 2^20; sequential flows must not collide
  // pathologically.
  std::unordered_set<std::uint32_t> fids;
  constexpr int kFlows = 10000;
  for (int i = 0; i < kFlows; ++i) {
    FiveTuple tuple;
    tuple.src_ip = Ipv4Addr{0xC0A80000u + static_cast<std::uint32_t>(i)};
    tuple.dst_ip = Ipv4Addr{10, 1, 0, 1};
    tuple.src_port = static_cast<std::uint16_t>(1024 + i % 60000);
    tuple.dst_port = 80;
    fids.insert(static_cast<std::uint32_t>(tuple.hash()) & 0xFFFFF);
  }
  // Expected collisions for 10k keys in 1M slots ≈ 47; allow 3x slack.
  EXPECT_GT(fids.size(), static_cast<std::size_t>(kFlows - 150));
}

TEST(FiveTuple, ReversedSwapsEndpoints) {
  FiveTuple t;
  t.src_ip = Ipv4Addr{1};
  t.dst_ip = Ipv4Addr{2};
  t.src_port = 10;
  t.dst_port = 20;
  const FiveTuple r = t.reversed();
  EXPECT_EQ(r.src_ip, Ipv4Addr{2});
  EXPECT_EQ(r.dst_ip, Ipv4Addr{1});
  EXPECT_EQ(r.src_port, 20);
  EXPECT_EQ(r.dst_port, 10);
  EXPECT_EQ(r.reversed(), t);
}

TEST(FiveTupleHash, UsableInUnorderedContainers) {
  std::unordered_set<FiveTuple, FiveTupleHash> set;
  FiveTuple t;
  t.src_port = 1;
  set.insert(t);
  set.insert(t);
  EXPECT_EQ(set.size(), 1u);
}

}  // namespace
}  // namespace speedybox::net
