#include "net/checksum.hpp"

#include <array>

#include <gtest/gtest.h>

#include "net/byte_order.hpp"
#include "net/packet_builder.hpp"
#include "test_helpers.hpp"

namespace speedybox::net {
namespace {

using speedybox::testing::tuple_n;

TEST(InternetChecksum, RFC1071Example) {
  // Classic example: 0001 f203 f4f5 f6f7 -> checksum 0x220d.
  const std::array<std::uint8_t, 8> data{0x00, 0x01, 0xF2, 0x03,
                                         0xF4, 0xF5, 0xF6, 0xF7};
  EXPECT_EQ(internet_checksum(data), 0x220D);
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  const std::array<std::uint8_t, 3> odd{0x12, 0x34, 0x56};
  const std::array<std::uint8_t, 4> even{0x12, 0x34, 0x56, 0x00};
  EXPECT_EQ(internet_checksum(odd), internet_checksum(even));
}

TEST(InternetChecksum, AllZeros) {
  const std::array<std::uint8_t, 4> zeros{};
  EXPECT_EQ(internet_checksum(zeros), 0xFFFF);
}

TEST(IncrementalUpdate, MatchesFullRecompute) {
  Packet packet = make_tcp_packet(tuple_n(1), "data");
  const auto parsed = parse_packet(packet);
  const std::size_t l3 = parsed->l3_offset;

  // Change the destination IP's low 16 bits via incremental update.
  const std::uint16_t old_word = load_be16(packet.bytes(), l3 + 18);
  const std::uint16_t new_word = 0xBEEF;
  const std::uint16_t old_sum = load_be16(packet.bytes(), l3 + 10);
  store_be16(packet.bytes(), l3 + 18, new_word);
  const std::uint16_t incremental =
      incremental_update(old_sum, old_word, new_word);

  write_ipv4_checksum(packet, l3);
  const std::uint16_t full = load_be16(packet.bytes(), l3 + 10);
  EXPECT_EQ(incremental, full);
}

TEST(Ipv4Checksum, VerifyDetectsCorruption) {
  Packet packet = make_tcp_packet(tuple_n(2), "x");
  const auto parsed = parse_packet(packet);
  ASSERT_TRUE(verify_ipv4_checksum(packet, parsed->l3_offset));
  packet.bytes()[parsed->l3_offset + 12] ^= 0xFF;  // corrupt src ip
  EXPECT_FALSE(verify_ipv4_checksum(packet, parsed->l3_offset));
}

TEST(L4Checksum, VerifyDetectsPayloadCorruption) {
  Packet packet = make_tcp_packet(tuple_n(3), "sensitive");
  const auto parsed = parse_packet(packet);
  ASSERT_TRUE(verify_l4_checksum(packet, *parsed));
  packet.bytes()[parsed->payload_offset] ^= 0x01;
  EXPECT_FALSE(verify_l4_checksum(packet, *parsed));
}

TEST(L4Checksum, CoversPseudoHeader) {
  Packet packet = make_tcp_packet(tuple_n(4), "x");
  const auto parsed = parse_packet(packet);
  // Change src IP without fixing the TCP checksum: verification must fail
  // because the pseudo-header is covered.
  store_be32(packet.bytes(), parsed->l3_offset + 12, 0x01020304);
  write_ipv4_checksum(packet, parsed->l3_offset);
  EXPECT_FALSE(verify_l4_checksum(packet, *parsed));
  write_l4_checksum(packet, *parsed);
  EXPECT_TRUE(verify_l4_checksum(packet, *parsed));
}

TEST(FixAllChecksums, RepairsEverything) {
  Packet packet = make_tcp_packet(tuple_n(5), "abc");
  const auto parsed = parse_packet(packet);
  store_be32(packet.bytes(), parsed->l3_offset + 16, 0x0A0B0C0D);
  store_be16(packet.bytes(), parsed->l4_offset + 2, 4242);
  fix_all_checksums(packet, *parsed);
  EXPECT_TRUE(verify_ipv4_checksum(packet, parsed->l3_offset));
  EXPECT_TRUE(verify_l4_checksum(packet, *parsed));
}

TEST(UdpChecksum, ZeroMapsToFFFF) {
  // RFC 768: a computed UDP checksum of 0 is transmitted as 0xFFFF. Find no
  // easy natural vector; instead just assert the written checksum is never
  // 0 across a batch of packets.
  for (std::uint32_t i = 0; i < 64; ++i) {
    const Packet packet =
        make_udp_packet(tuple_n(i, static_cast<std::uint16_t>(i + 1)), "z");
    const auto parsed = parse_packet(packet);
    EXPECT_NE(load_be16(packet.bytes(), parsed->l4_offset + 6), 0);
  }
}

}  // namespace
}  // namespace speedybox::net
