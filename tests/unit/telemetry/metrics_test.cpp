#include "telemetry/metrics.hpp"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace speedybox::telemetry {
namespace {

TEST(RelaxedCell, AddSetGet) {
  RelaxedCell cell;
  EXPECT_EQ(cell.get(), 0u);
  cell.add();
  cell.add(41);
  EXPECT_EQ(cell.get(), 42u);
  cell.set(7);
  EXPECT_EQ(cell.get(), 7u);
}

TEST(CycleHistogram, SnapshotMatchesDirectLogHistogram) {
  CycleHistogram cycles;
  util::LogHistogram direct;
  for (const std::uint64_t v : {1u, 10u, 100u, 1000u, 65536u}) {
    cycles.record(v);
    direct.add(static_cast<double>(v));
  }
  const util::LogHistogram snap = cycles.snapshot();
  EXPECT_EQ(snap.count(), direct.count());
  EXPECT_DOUBLE_EQ(snap.mean(), direct.mean());
  for (const double p : {50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(snap.percentile(p), direct.percentile(p));
  }
}

TEST(Registry, CreateShardAndSnapshot) {
  Registry registry{/*span_sample_every_n=*/4};
  ShardMetrics& shard =
      registry.create_shard("shard0", {"nat", "monitor"});
  EXPECT_EQ(shard.label, "shard0");
  ASSERT_EQ(shard.per_nf.size(), 2u);
  EXPECT_EQ(shard.per_nf[0].label, "nat");
  EXPECT_TRUE(shard.spans.enabled());

  shard.packets.add(5);
  shard.mat_hits.add(3);
  shard.ring_occupancy.set(17);
  shard.per_nf[1].packets.add(2);
  shard.per_nf[1].cycles.record(250);
  shard.fastpath_cycles.record(100);

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.shards.size(), 1u);
  const ShardSnapshot& s = snap.shards[0];
  EXPECT_EQ(s.label, "shard0");
  const auto counter = [&s](const std::string& name) -> std::uint64_t {
    for (const auto& [key, value] : s.counters) {
      if (key == name) return value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(counter("packets"), 5u);
  EXPECT_EQ(counter("mat_hits"), 3u);
  EXPECT_EQ(counter("drops"), 0u);
  ASSERT_EQ(s.per_nf.size(), 2u);
  EXPECT_EQ(s.per_nf[1].packets, 2u);
  EXPECT_EQ(s.per_nf[1].cycles.count(), 1u);
  bool found_gauge = false;
  for (const auto& [key, value] : s.gauges) {
    if (key == "ring_occupancy") {
      EXPECT_EQ(value, 17u);
      found_gauge = true;
    }
  }
  EXPECT_TRUE(found_gauge);
}

TEST(Registry, SnapshotSequenceIsMonotonic) {
  Registry registry;
  registry.create_shard("s");
  EXPECT_EQ(registry.snapshot().sequence, 0u);
  EXPECT_EQ(registry.snapshot().sequence, 1u);
  EXPECT_EQ(registry.snapshot().sequence, 2u);
}

TEST(MetricsSnapshot, AggregateSumsAndMerges) {
  Registry registry;
  ShardMetrics& a = registry.create_shard("shard0", {"nf"});
  ShardMetrics& b = registry.create_shard("shard1", {"nf"});
  a.packets.add(10);
  b.packets.add(32);
  a.fastpath_cycles.record(100);
  b.fastpath_cycles.record(100);
  a.per_nf[0].packets.add(1);
  b.per_nf[0].packets.add(2);

  const ShardSnapshot total = registry.snapshot().aggregate();
  for (const auto& [name, value] : total.counters) {
    if (name == "packets") {
      EXPECT_EQ(value, 42u);
    }
  }
  for (const auto& [name, hist] : total.histograms) {
    if (name == "fastpath_cycles") {
      EXPECT_EQ(hist.count(), 2u);
    }
  }
  ASSERT_EQ(total.per_nf.size(), 1u);
  EXPECT_EQ(total.per_nf[0].packets, 3u);
}

// The single-writer/any-reader contract: one thread hammers the cells of
// its shard while another snapshots concurrently. Values must be torn-free
// and the final snapshot exact. Run under TSan, this is the telemetry
// data-race guard.
TEST(Registry, ConcurrentWriterAndSnapshotReader) {
  Registry registry{/*span_sample_every_n=*/2};
  ShardMetrics& shard = registry.create_shard("shard0", {"nf"});
  constexpr std::uint64_t kIterations = 50000;

  std::thread writer([&shard] {
    for (std::uint64_t i = 0; i < kIterations; ++i) {
      shard.packets.add(1);
      shard.ring_occupancy.set(i);
      shard.fastpath_cycles.record(i % 1024 + 1);
      if (shard.spans.should_sample(i)) {
        shard.spans.begin(i, static_cast<std::uint32_t>(i), i);
        shard.spans.event(SpanStage::kHeaderAction, 10);
        shard.spans.finish(/*fast_path=*/true, /*dropped=*/false, 20);
      }
    }
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const ShardSnapshot snap = registry.snapshot().shards.at(0);
    for (const auto& [name, value] : snap.counters) {
      if (name == "packets") {
        EXPECT_GE(value, last);  // monotonic under concurrent writes
        last = value;
      }
    }
  }
  writer.join();
  const ShardSnapshot final = registry.snapshot().shards.at(0);
  for (const auto& [name, value] : final.counters) {
    if (name == "packets") {
      EXPECT_EQ(value, kIterations);
    }
  }
  EXPECT_EQ(shard.spans.sampled_total(), kIterations / 2);
}

}  // namespace
}  // namespace speedybox::telemetry
