// Json::parse (RFC 8259 recursive descent) — round-trips with dump(),
// accessors, and the rejection cases that keep bench_gate honest about
// malformed input.
#include "telemetry/json.hpp"

#include <optional>
#include <string>

#include <gtest/gtest.h>

namespace speedybox::telemetry {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_FALSE(Json::parse("false")->as_bool());
  EXPECT_EQ(Json::parse("42")->as_integer(), 42u);
  EXPECT_DOUBLE_EQ(Json::parse("-3.5")->as_number(), -3.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3")->as_number(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParse, IntegerVsNumberClassification) {
  // Non-negative integrals without fraction/exponent stay integers
  // (exact u64); everything else is a double.
  EXPECT_TRUE(Json::parse("7")->is_integer());
  EXPECT_FALSE(Json::parse("7.0")->is_integer());
  EXPECT_FALSE(Json::parse("-7")->is_integer());
  EXPECT_TRUE(Json::parse("7.0")->is_number());
  EXPECT_TRUE(Json::parse("7")->is_number());  // integers are numbers too
  EXPECT_DOUBLE_EQ(Json::parse("7")->as_number(), 7.0);
  EXPECT_EQ(Json::parse("18446744073709551615")->as_integer(),
            18446744073709551615ull);
}

TEST(JsonParse, NestedStructure) {
  const auto doc = Json::parse(
      R"({"a": [1, 2.5, "x"], "b": {"c": true}, "d": null})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const Json* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->elements().size(), 3u);
  EXPECT_EQ(a->elements()[0].as_integer(), 1u);
  EXPECT_EQ(a->elements()[2].as_string(), "x");
  EXPECT_TRUE(doc->find("b")->find("c")->as_bool());
  EXPECT_TRUE(doc->find("d")->is_null());
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\/d")")->as_string(), "a\"b\\c/d");
  EXPECT_EQ(Json::parse(R"("tab\there")")->as_string(), "tab\there");
  EXPECT_EQ(Json::parse(R"("\n\r\b\f")")->as_string(), "\n\r\b\f");
  EXPECT_EQ(Json::parse(R"("Aé")")->as_string(), "A\xc3\xa9");
}

TEST(JsonParse, WhitespaceTolerance) {
  const auto doc = Json::parse("  {\n\t\"k\" :\r [ 1 , 2 ]\n}  ");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("k")->elements().size(), 2u);
}

TEST(JsonParse, RoundTripsWithDump) {
  Json original = Json::object();
  original.set("name", Json::string("matrix \"quoted\"\nline"));
  original.set("rate", Json::number(3.25));
  original.set("packets", Json::integer(123456789));
  original.set("ok", Json::boolean(true));
  Json rows = Json::array();
  Json row = Json::object();
  row.set("rel_rate", Json::number(1.75));
  rows.push(std::move(row));
  original.set("rows", std::move(rows));

  const auto reparsed = Json::parse(original.dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->dump(), original.dump());
  EXPECT_EQ(reparsed->find("name")->as_string(), "matrix \"quoted\"\nline");
  EXPECT_DOUBLE_EQ(
      reparsed->find("rows")->elements()[0].find("rel_rate")->as_number(),
      1.75);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1, 2").has_value());
  EXPECT_FALSE(Json::parse("{\"a\": }").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("nul").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("'single'").has_value());
}

TEST(JsonParse, RejectsTrailingGarbage) {
  EXPECT_FALSE(Json::parse("{} extra").has_value());
  EXPECT_FALSE(Json::parse("1 2").has_value());
  EXPECT_TRUE(Json::parse("{}  \n ").has_value());  // trailing ws is fine
}

TEST(JsonParse, RejectsRfc8259NumberViolations) {
  EXPECT_FALSE(Json::parse("01").has_value());     // leading zero
  EXPECT_FALSE(Json::parse("+1").has_value());     // leading plus
  EXPECT_FALSE(Json::parse(".5").has_value());     // bare fraction
  EXPECT_FALSE(Json::parse("1.").has_value());     // empty fraction
  EXPECT_FALSE(Json::parse("1e").has_value());     // empty exponent
  EXPECT_FALSE(Json::parse("NaN").has_value());
  EXPECT_FALSE(Json::parse("Infinity").has_value());
  EXPECT_TRUE(Json::parse("0.5").has_value());
  EXPECT_TRUE(Json::parse("0").has_value());
}

TEST(JsonParse, RejectsBadEscapes) {
  EXPECT_FALSE(Json::parse(R"("\x41")").has_value());
  EXPECT_FALSE(Json::parse(R"("\u12")").has_value());    // short hex
  EXPECT_FALSE(Json::parse(R"("\ud800")").has_value());  // lone surrogate
}

TEST(JsonParse, RejectsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 400; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 400; ++i) deep += "]";
  EXPECT_FALSE(Json::parse(deep).has_value());
  // A reasonable depth still parses.
  EXPECT_TRUE(Json::parse("[[[[[[[[1]]]]]]]]").has_value());
}

TEST(JsonAccessors, PredicatesMatchKind) {
  EXPECT_TRUE(Json::object().is_object());
  EXPECT_TRUE(Json::array().is_array());
  EXPECT_FALSE(Json::array().is_object());
  EXPECT_TRUE(Json::string("s").is_string());
  EXPECT_TRUE(Json::boolean(false).is_bool());
  EXPECT_TRUE(Json::integer(1).is_integer());
  EXPECT_TRUE(Json::number(1.5).is_number());
  EXPECT_FALSE(Json::number(1.5).is_integer());
}

}  // namespace
}  // namespace speedybox::telemetry
