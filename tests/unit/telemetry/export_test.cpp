#include "telemetry/export.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace speedybox::telemetry {
namespace {

TEST(Json, DumpsScalarsExactly) {
  Json j = Json::object();
  j.set("u64", Json::integer(18446744073709551615ull));
  j.set("neg", Json::number(-2.5));
  j.set("flag", Json::boolean(true));
  j.set("text", Json::string("a\"b\\c\n\t"));
  EXPECT_EQ(j.dump(),
            "{\"u64\":18446744073709551615,\"neg\":-2.5,\"flag\":true,"
            "\"text\":\"a\\\"b\\\\c\\n\\t\"}");
}

TEST(Json, NestedArraysAndObjects) {
  Json root = Json::object();
  Json arr = Json::array();
  arr.push(Json::integer(1));
  arr.push(Json::string("two"));
  Json inner = Json::object();
  inner.set("k", Json::number(3.0));
  arr.push(std::move(inner));
  root.set("list", std::move(arr));
  EXPECT_EQ(root.dump(), "{\"list\":[1,\"two\",{\"k\":3}]}");
}

TEST(Json, NonFiniteNumbersRenderAsNull) {
  Json j = Json::array();
  j.push(Json::number(std::numeric_limits<double>::infinity()));
  j.push(Json::number(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(j.dump(), "[null,null]");
}

void populate(Registry& registry) {
  ShardMetrics& shard = registry.create_shard("shard0", {"nat", "monitor"});
  shard.packets.add(100);
  shard.mat_hits.add(90);
  shard.mat_misses.add(10);
  shard.ring_capacity.set(1024);
  shard.fastpath_cycles.record(500);
  shard.slowpath_cycles.record(9000);
  shard.per_nf[0].packets.add(10);
  shard.per_nf[0].cycles.record(300);
  shard.spans.begin(64, 3, 12345);
  shard.spans.event(SpanStage::kHeaderAction, 40);
  shard.spans.finish(/*fast_path=*/true, /*dropped=*/false, 55);
}

TEST(Export, JsonSnapshotHasFullStructure) {
  Registry registry{/*span_sample_every_n=*/1};
  populate(registry);
  const std::string text = to_json(registry.snapshot());
  for (const char* key :
       {"\"sequence\"", "\"aggregate\"", "\"shards\"", "\"shard\"",
        "\"counters\"", "\"packets\":100", "\"mat_hits\":90", "\"gauges\"",
        "\"ring_capacity\":1024", "\"histograms\"", "\"fastpath_cycles\"",
        "\"per_nf\"", "\"nf\":\"nat\"", "\"spans\"", "\"flow_hash\":64",
        "\"stage\":\"header_action\"", "\"complete\":true",
        "\"spans_sampled\":1"}) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing " << key
                                                 << " in " << text;
  }
}

/// Minimal Prometheus text-format check: every non-comment line is
/// `name{label="value",...} number`, every counter ends in _total, and
/// TYPE headers are unique.
TEST(Export, PrometheusTextParses) {
  Registry registry{/*span_sample_every_n=*/1};
  populate(registry);
  const std::string text =
      to_prometheus(registry.snapshot(), "mode=\"speedybox\"");
  std::istringstream stream{text};
  std::string line;
  std::vector<std::string> type_headers;
  int series = 0;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      EXPECT_EQ(std::count(type_headers.begin(), type_headers.end(), line),
                0)
          << "duplicate TYPE header: " << line;
      type_headers.push_back(line);
      continue;
    }
    ++series;
    EXPECT_EQ(line.rfind("speedybox_", 0), 0) << line;
    const auto open = line.find('{');
    const auto close = line.find('}');
    ASSERT_NE(open, std::string::npos) << line;
    ASSERT_NE(close, std::string::npos) << line;
    ASSERT_LT(open, close) << line;
    // Labels include the shard and the spliced extra label.
    const std::string labels = line.substr(open + 1, close - open - 1);
    EXPECT_NE(labels.find("shard=\"shard0\""), std::string::npos) << line;
    EXPECT_NE(labels.find("mode=\"speedybox\""), std::string::npos) << line;
    // One space then a parseable number.
    ASSERT_EQ(line[close + 1], ' ') << line;
    char* end = nullptr;
    const std::string value = line.substr(close + 2);
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparseable value in: " << line;
  }
  EXPECT_GT(series, 20);
  EXPECT_NE(text.find("speedybox_packets_total"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("nf=\"monitor\""), std::string::npos);
}

TEST(Export, AppendLineCreatesAndAppends) {
  const std::string path = testing::TempDir() + "telemetry_append_test.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(append_line(path, "{\"a\":1}"));
  ASSERT_TRUE(append_line(path, "{\"a\":2}"));
  std::ifstream file{path};
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(file, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"a\":1}");
  EXPECT_EQ(lines[1], "{\"a\":2}");
  std::remove(path.c_str());
}

TEST(Export, SnapshotterWritesPeriodicallyAndOnStop) {
  Registry registry{1};
  ShardMetrics& shard = registry.create_shard("shard0");
  const std::string path = testing::TempDir() + "telemetry_snapshotter.jsonl";
  std::remove(path.c_str());
  {
    Snapshotter snapshotter{registry, path, std::chrono::milliseconds(1)};
    // Keep writing while the snapshotter runs — the TSan guard for the
    // background thread.
    for (int i = 0; i < 20000; ++i) shard.packets.add(1);
    snapshotter.stop();
    EXPECT_GE(snapshotter.snapshots_written(), 1u);
  }
  std::ifstream file{path};
  std::string line, last;
  std::size_t lines = 0;
  while (std::getline(file, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    last = line;
    ++lines;
  }
  EXPECT_GE(lines, 1u);
  // The stop() snapshot runs after the last add: it must see the final
  // count (single writer finished before stop was called).
  EXPECT_NE(last.find("\"packets\":20000"), std::string::npos) << last;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace speedybox::telemetry
