#include "telemetry/span.hpp"

#include <gtest/gtest.h>

namespace speedybox::telemetry {
namespace {

TEST(SpanRecorder, DisabledRecorderSamplesNothing) {
  SpanRecorder recorder{/*sample_every_n=*/0};
  EXPECT_FALSE(recorder.enabled());
  EXPECT_FALSE(recorder.should_sample(0));
  EXPECT_FALSE(recorder.should_sample(64));
}

TEST(SpanRecorder, SamplesOneInNByHash) {
  SpanRecorder recorder{/*sample_every_n=*/4};
  EXPECT_TRUE(recorder.enabled());
  int sampled = 0;
  for (std::uint64_t hash = 0; hash < 100; ++hash) {
    if (recorder.should_sample(hash)) ++sampled;
  }
  EXPECT_EQ(sampled, 25);
  // Deterministic per flow: same hash, same decision.
  EXPECT_EQ(recorder.should_sample(8), recorder.should_sample(8));
}

TEST(SpanRecorder, RecordsCompleteSpanWithEvents) {
  SpanRecorder recorder{1};
  recorder.begin(/*flow_hash=*/99, /*fid=*/7, /*start_cycle=*/1000);
  recorder.event(SpanStage::kClassify, 50);
  recorder.event(SpanStage::kNf, 150, /*nf_index=*/0);
  recorder.event(SpanStage::kNf, 300, /*nf_index=*/1);
  recorder.event(SpanStage::kConsolidate, 400);
  recorder.finish(/*fast_path=*/false, /*dropped=*/false,
                  /*total_cycles=*/420);

  const auto spans = recorder.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  const PacketSpan& span = spans[0];
  EXPECT_EQ(span.flow_hash, 99u);
  EXPECT_EQ(span.fid, 7u);
  EXPECT_EQ(span.start_cycle, 1000u);
  EXPECT_FALSE(span.fast_path);
  EXPECT_FALSE(span.dropped);
  EXPECT_TRUE(span.complete);
  ASSERT_EQ(span.events.size(), 5u);  // 4 stages + terminal kDone
  EXPECT_EQ(span.events[0].stage, SpanStage::kClassify);
  EXPECT_EQ(span.events[1].nf_index, 0);
  EXPECT_EQ(span.events[2].nf_index, 1);
  EXPECT_EQ(span.events.back().stage, SpanStage::kDone);
  EXPECT_EQ(span.events.back().cycles, 420u);
  // Cycle offsets are non-decreasing along the journey.
  for (std::size_t i = 1; i < span.events.size(); ++i) {
    EXPECT_GE(span.events[i].cycles, span.events[i - 1].cycles);
  }
}

TEST(SpanRecorder, DroppedPacketSealsWithDropStage) {
  SpanRecorder recorder{1};
  recorder.begin(1, 1, 0);
  recorder.event(SpanStage::kHeaderAction, 30);
  recorder.finish(/*fast_path=*/true, /*dropped=*/true, 30);
  const auto spans = recorder.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].dropped);
  EXPECT_TRUE(spans[0].fast_path);
  EXPECT_EQ(spans[0].events.back().stage, SpanStage::kDrop);
}

TEST(SpanRecorder, EvictsOldestWhenFullAndCountsEvictions) {
  SpanRecorder recorder{/*sample_every_n=*/1, /*max_spans=*/2};
  for (std::uint64_t i = 0; i < 5; ++i) {
    recorder.begin(i, static_cast<std::uint32_t>(i), 0);
    recorder.finish(false, false, 1);
  }
  const auto spans = recorder.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Oldest evicted: the survivors are the two most recent flows.
  EXPECT_EQ(spans[0].flow_hash, 3u);
  EXPECT_EQ(spans[1].flow_hash, 4u);
  EXPECT_EQ(recorder.sampled_total(), 5u);
  EXPECT_EQ(recorder.evicted_total(), 3u);
}

TEST(SpanRecorder, EventWithoutBeginIsIgnored) {
  SpanRecorder recorder{1};
  recorder.event(SpanStage::kNf, 10, 0);  // no active span: no-op
  recorder.finish(false, false, 10);
  EXPECT_TRUE(recorder.snapshot().empty());
  EXPECT_EQ(recorder.sampled_total(), 0u);
}

TEST(SpanStageName, CoversAllStages) {
  EXPECT_EQ(span_stage_name(SpanStage::kClassify), "classify");
  EXPECT_EQ(span_stage_name(SpanStage::kNf), "nf");
  EXPECT_EQ(span_stage_name(SpanStage::kConsolidate), "consolidate");
  EXPECT_EQ(span_stage_name(SpanStage::kHeaderAction), "header_action");
  EXPECT_EQ(span_stage_name(SpanStage::kStateFunctions), "state_functions");
  EXPECT_EQ(span_stage_name(SpanStage::kDrop), "drop");
  EXPECT_EQ(span_stage_name(SpanStage::kDone), "done");
}

}  // namespace
}  // namespace speedybox::telemetry
