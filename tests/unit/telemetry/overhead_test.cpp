// Telemetry overhead guard on the §VII-C chain (Snort + Monitor).
//
// Two properties:
//   1. Attaching telemetry must not change what a run computes — hooks only
//      re-record values the runner already measured, so packet/drop/event
//      counts are bit-identical with and without a sink, and the sink's
//      counters agree with the runner's own stats.
//   2. The disabled path (sink detached, every hook one null-pointer test)
//      must stay within noise of the instrumented path's cost envelope. We
//      take the min wall time over several repetitions for each mode and
//      assert a deliberately generous bound — this is a regression tripwire
//      for someone putting real work on the hook path, not a microbenchmark.
#include <algorithm>
#include <chrono>
#include <cstdint>

#include <gtest/gtest.h>

#include "nf/monitor.hpp"
#include "nf/snort_ids.hpp"
#include "runtime/runner.hpp"
#include "telemetry/metrics.hpp"
#include "trace/payload_synth.hpp"
#include "trace/workload.hpp"

namespace speedybox::telemetry {
namespace {

struct RunResult {
  std::uint64_t packets = 0;
  std::uint64_t drops = 0;
  std::uint64_t events = 0;
  double seconds = 0.0;
};

trace::Workload make_workload() {
  trace::Workload workload =
      trace::make_uniform_workload(/*flow_count=*/32,
                                   /*packets_per_flow=*/150,
                                   /*payload_size=*/64);
  trace::PayloadSynthConfig synth;
  synth.match_fraction = 0.2;
  plant_rule_contents(workload, trace::default_snort_rules(), synth);
  return workload;
}

RunResult run_once(const trace::Workload& workload, Registry* registry,
                   std::size_t batch_size = net::kDefaultBatchSize) {
  runtime::ServiceChain chain;
  chain.emplace_nf<nf::SnortIds>(trace::default_snort_rules());
  chain.emplace_nf<nf::Monitor>(nf::MonitorConfig::heavy(), "monitor");
  runtime::RunConfig config;
  config.batch_size = batch_size;
  runtime::ChainRunner runner{chain, config};
  ShardMetrics* metrics = nullptr;
  if (registry != nullptr) {
    metrics = &registry->create_shard("shard0", chain.nf_names());
    runner.set_telemetry(metrics);
  }
  const auto start = std::chrono::steady_clock::now();
  const runtime::RunStats& stats = runner.run_workload(workload);
  const auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.packets = stats.packets;
  result.drops = stats.drops;
  result.events = stats.events_triggered;
  result.seconds = std::chrono::duration<double>(end - start).count();
  if (metrics != nullptr) {
    // The sink's view must agree with the runner's own accounting.
    EXPECT_EQ(metrics->packets.get(), stats.packets);
    EXPECT_EQ(metrics->drops.get(), stats.drops);
    EXPECT_EQ(metrics->mat_hits.get() + metrics->mat_misses.get(),
              metrics->classifier_lookups.get());
  }
  return result;
}

TEST(TelemetryOverhead, AttachedRunComputesIdenticalResults) {
  const trace::Workload workload = make_workload();
  const RunResult detached = run_once(workload, nullptr);
  Registry registry{/*span_sample_every_n=*/16};
  const RunResult attached = run_once(workload, &registry);

  EXPECT_EQ(detached.packets, workload.packet_count());
  EXPECT_EQ(attached.packets, detached.packets);
  EXPECT_EQ(attached.drops, detached.drops);
  EXPECT_EQ(attached.events, detached.events);
}

TEST(TelemetryOverhead, BatchedPathIdenticalAcrossAttachAndBatchSize) {
  // The §VII-C guard extended to the vector data path: counts must be
  // identical detached vs attached AND scalar (batch=1) vs batched
  // (batch=32); the attached batched run must additionally fill the
  // batch_occupancy histogram (one sample per process_batch call).
  const trace::Workload workload = make_workload();
  const RunResult scalar_detached =
      run_once(workload, nullptr, /*batch_size=*/1);
  const RunResult batched_detached =
      run_once(workload, nullptr, /*batch_size=*/32);
  Registry registry{/*span_sample_every_n=*/16};
  const RunResult batched_attached =
      run_once(workload, &registry, /*batch_size=*/32);

  EXPECT_EQ(scalar_detached.packets, workload.packet_count());
  EXPECT_EQ(batched_detached.packets, scalar_detached.packets);
  EXPECT_EQ(batched_detached.drops, scalar_detached.drops);
  EXPECT_EQ(batched_detached.events, scalar_detached.events);
  EXPECT_EQ(batched_attached.packets, batched_detached.packets);
  EXPECT_EQ(batched_attached.drops, batched_detached.drops);
  EXPECT_EQ(batched_attached.events, batched_detached.events);

  const ShardSnapshot snap = registry.snapshot().shards.at(0);
  const auto occupancy = std::find_if(
      snap.histograms.begin(), snap.histograms.end(),
      [](const auto& entry) { return entry.first == "batch_occupancy"; });
  ASSERT_NE(occupancy, snap.histograms.end());
  EXPECT_GE(occupancy->second.count(),
            workload.packet_count() / 32)
      << "one occupancy sample per process_batch call";
}

TEST(TelemetryOverhead, DisabledPathWithinNoiseOfEnabled) {
  const trace::Workload workload = make_workload();
  constexpr int kRepetitions = 5;
  double detached_best = 1e9;
  double attached_best = 1e9;
  for (int i = 0; i < kRepetitions; ++i) {
    detached_best = std::min(detached_best,
                             run_once(workload, nullptr).seconds);
    Registry registry{/*span_sample_every_n=*/16};
    attached_best = std::min(attached_best,
                             run_once(workload, &registry).seconds);
  }
  // Generous bound: min-of-N attached within 2x of min-of-N detached, plus
  // an absolute 2 ms floor so sub-millisecond runs can't flake on scheduler
  // jitter. Trips only if the hook path gains real per-packet work.
  EXPECT_LE(attached_best, detached_best * 2.0 + 0.002)
      << "attached " << attached_best << "s vs detached " << detached_best
      << "s";
  // And the symmetric direction: detaching must not somehow be slower than
  // the instrumented run by more than the same envelope.
  EXPECT_LE(detached_best, attached_best * 2.0 + 0.002)
      << "detached " << detached_best << "s vs attached " << attached_best
      << "s";
}

}  // namespace
}  // namespace speedybox::telemetry
