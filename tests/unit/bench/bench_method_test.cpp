// Unit tests for the measurement methodology library (bench/bench_method):
// everything runs on synthetic loss/latency functions — no packets, no
// timing — so convergence properties are exact.
#include "bench_method.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/histogram.hpp"

namespace speedybox::bench {
namespace {

// -- aggregate_trials --------------------------------------------------------

TEST(AggregateTrials, EmptyReturnsZeroCount) {
  const TrialAggregate agg = aggregate_trials({});
  EXPECT_EQ(agg.count, 0);
  EXPECT_EQ(agg.best, 0.0);
  EXPECT_EQ(agg.rel_spread, 0.0);
}

TEST(AggregateTrials, SingleScoreHasZeroSpread) {
  const TrialAggregate agg = aggregate_trials({3.5});
  EXPECT_EQ(agg.count, 1);
  EXPECT_DOUBLE_EQ(agg.best, 3.5);
  EXPECT_DOUBLE_EQ(agg.worst, 3.5);
  EXPECT_DOUBLE_EQ(agg.median, 3.5);
  EXPECT_DOUBLE_EQ(agg.mean, 3.5);
  EXPECT_DOUBLE_EQ(agg.rel_spread, 0.0);
}

TEST(AggregateTrials, SpreadAndMedianOddCount) {
  const TrialAggregate agg = aggregate_trials({4.0, 5.0, 2.0});
  EXPECT_EQ(agg.count, 3);
  EXPECT_DOUBLE_EQ(agg.best, 5.0);
  EXPECT_DOUBLE_EQ(agg.worst, 2.0);
  EXPECT_DOUBLE_EQ(agg.median, 4.0);
  EXPECT_NEAR(agg.mean, 11.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(agg.rel_spread, (5.0 - 2.0) / 5.0);
}

TEST(AggregateTrials, MedianEvenCountAveragesMiddlePair) {
  const TrialAggregate agg = aggregate_trials({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(agg.median, 2.5);
}

TEST(AggregateTrials, AllZerosDoesNotDivideByZero) {
  const TrialAggregate agg = aggregate_trials({0.0, 0.0});
  EXPECT_EQ(agg.count, 2);
  EXPECT_DOUBLE_EQ(agg.rel_spread, 0.0);
}

// -- best_of -----------------------------------------------------------------

TEST(BestOf, WarmupRunsAreDiscardedUnmeasured) {
  // Probe returns its call index: warmups see 0,1; measured trials see
  // 2,3,4 — so the best must be 4 and scores_out must hold exactly the
  // measured three.
  int calls = 0;
  std::vector<double> scores;
  const TrialPolicy policy{2, 3};
  const int best = best_of<int>(
      policy, [&] { return calls++; },
      [](const int& v) { return static_cast<double>(v); }, &scores);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(best, 4);
  EXPECT_EQ(scores, (std::vector<double>{2.0, 3.0, 4.0}));
}

TEST(BestOf, KeepsHighestScoreNotLatest) {
  const std::vector<double> sequence{0.0, 7.0, 3.0, 5.0};
  std::size_t next = 0;
  const TrialPolicy policy{1, 3};
  const double best = best_of<double>(
      policy, [&] { return sequence.at(next++); },
      [](const double& v) { return v; });
  EXPECT_DOUBLE_EQ(best, 7.0);
}

TEST(BestOf, ZeroTrialsStillMeasuresOnce) {
  int calls = 0;
  const TrialPolicy policy{0, 0};
  best_of<int>(policy, [&] { return calls++; },
               [](const int& v) { return static_cast<double>(v); });
  EXPECT_EQ(calls, 1);
}

// -- zero_loss_max_rate ------------------------------------------------------

/// Hard step: loss 0 below the knee, 1 at or above it.
std::function<double(double)> step_loss(double knee) {
  return [knee](double rate) { return rate >= knee ? 1.0 : 0.0; };
}

TEST(ZeroLossMaxRate, ConvergesOnMonotoneStep) {
  RateSearchConfig config;
  config.min_rate = 0.0;
  config.max_rate = 10.0;
  config.resolution = 0.01;  // bracket closes within 0.1 of the knee
  const RateSearchResult result = zero_loss_max_rate(step_loss(6.4), config);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.rate, 6.4);
  EXPECT_GT(result.rate, 6.4 - 10.0 * config.resolution * 2);
  EXPECT_DOUBLE_EQ(result.loss_at_rate, 0.0);
}

TEST(ZeroLossMaxRate, EverythingPassesReturnsMaxImmediately) {
  RateSearchConfig config;
  config.max_rate = 5.0;
  const RateSearchResult result = zero_loss_max_rate(
      [](double) { return 0.0; }, config);
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.rate, 5.0);
  EXPECT_LE(result.iterations, 2);
}

TEST(ZeroLossMaxRate, NothingPassesReturnsMinRate) {
  RateSearchConfig config;
  config.min_rate = 1.0;
  config.max_rate = 8.0;
  const RateSearchResult result = zero_loss_max_rate(
      [](double) { return 1.0; }, config);
  EXPECT_DOUBLE_EQ(result.rate, 1.0);
  EXPECT_DOUBLE_EQ(result.loss_at_rate, 1.0);
}

TEST(ZeroLossMaxRate, LossToleranceAdmitsSmallLoss) {
  // Loss ramps linearly: 0 at rate 0 -> 0.1 at rate 10. With tolerance
  // 0.05 the passing region is [0, 5].
  RateSearchConfig config;
  config.max_rate = 10.0;
  config.loss_tolerance = 0.05;
  config.resolution = 0.005;
  const RateSearchResult result = zero_loss_max_rate(
      [](double rate) { return rate / 100.0; }, config);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.rate, 5.0, 10.0 * config.resolution * 2);
  EXPECT_LE(result.loss_at_rate, 0.05);
}

TEST(ZeroLossMaxRate, NoisyLossStillBracketsKnee) {
  // Deterministic "noise": +-0.0005 jitter below the knee stays under the
  // tolerance, so the search treats it as passing; above the knee the loss
  // is far beyond any jitter.
  RateSearchConfig config;
  config.max_rate = 10.0;
  config.loss_tolerance = 0.001;
  config.resolution = 0.01;
  int flip = 0;
  const RateSearchResult result = zero_loss_max_rate(
      [&](double rate) {
        const double jitter = (flip++ % 2 == 0) ? 0.0005 : 0.0;
        return rate >= 7.0 ? 0.5 : jitter;
      },
      config);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.rate, 7.0);
  EXPECT_GT(result.rate, 6.5);
}

TEST(ZeroLossMaxRate, IterationBudgetExhaustionReportsNotConverged) {
  RateSearchConfig config;
  config.max_rate = 1024.0;
  config.resolution = 1e-9;  // unreachable with 3 iterations
  config.max_iterations = 3;
  const RateSearchResult result = zero_loss_max_rate(step_loss(512.0),
                                                     config);
  EXPECT_FALSE(result.converged);
  EXPECT_LE(result.iterations, 3 + 2);  // bisections + bracket probes
  EXPECT_LT(result.rate, 512.0);       // still returns a passing rate
}

TEST(ZeroLossMaxRate, ReturnedRateAlwaysPassed) {
  // Whatever the knee, the reported rate must be one the probe accepted.
  for (const double knee : {0.3, 1.7, 4.9, 9.99}) {
    RateSearchConfig config;
    config.max_rate = 10.0;
    const RateSearchResult result = zero_loss_max_rate(step_loss(knee),
                                                       config);
    EXPECT_LE(result.loss_at_rate, config.loss_tolerance) << knee;
    EXPECT_LT(result.rate, knee) << knee;
  }
}

// -- curve_points ------------------------------------------------------------

TEST(CurvePoints, LinearEndpointsIncludedAndSorted) {
  const std::vector<double> points =
      curve_points(1.0, 3.0, 5, Spacing::kLinear);
  ASSERT_EQ(points.size(), 5u);
  EXPECT_DOUBLE_EQ(points.front(), 1.0);
  EXPECT_DOUBLE_EQ(points.back(), 3.0);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i], points[i - 1]);
  }
  EXPECT_NEAR(points[2], 2.0, 1e-12);
}

TEST(CurvePoints, GeometricRatiosAreConstant) {
  const std::vector<double> points =
      curve_points(1.0, 8.0, 4, Spacing::kGeometric);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_NEAR(points[1] / points[0], 2.0, 1e-9);
  EXPECT_NEAR(points[2] / points[1], 2.0, 1e-9);
  EXPECT_NEAR(points[3] / points[2], 2.0, 1e-9);
}

TEST(CurvePoints, GeometricWithNonPositiveLoFallsBackToLinear) {
  const std::vector<double> points =
      curve_points(0.0, 4.0, 3, Spacing::kGeometric);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[1], 2.0);  // linear midpoint, not geometric
}

TEST(CurvePoints, FewerThanTwoPointsCollapsesToHi) {
  EXPECT_EQ(curve_points(1.0, 9.0, 1, Spacing::kLinear),
            (std::vector<double>{9.0}));
  EXPECT_EQ(curve_points(1.0, 9.0, 0, Spacing::kGeometric),
            (std::vector<double>{9.0}));
}

TEST(CurvePoints, EqualEndpointsCollapseToOnePoint) {
  EXPECT_EQ(curve_points(2.0, 2.0, 6, Spacing::kLinear),
            (std::vector<double>{2.0}));
}

// -- summarize / latency_json ------------------------------------------------

TEST(Summarize, EmptyRecorderIsAllZeros) {
  util::SampleRecorder samples;
  const LatencySummary summary = summarize(samples);
  EXPECT_EQ(summary.count, 0u);
  EXPECT_EQ(summary.p50, 0.0);
  EXPECT_EQ(summary.p999, 0.0);
}

TEST(Summarize, PercentilesComeFromTheRecorder) {
  util::SampleRecorder samples;
  for (int i = 1; i <= 1000; ++i) samples.add(static_cast<double>(i));
  const LatencySummary summary = summarize(samples);
  EXPECT_EQ(summary.count, 1000u);
  EXPECT_NEAR(summary.p50, 500.0, 1.0);
  EXPECT_NEAR(summary.p99, 990.0, 1.0);
  EXPECT_NEAR(summary.p999, 999.0, 1.0);
  EXPECT_NEAR(summary.mean, 500.5, 1e-9);
}

TEST(LatencyJson, CarriesAllFields) {
  LatencySummary summary;
  summary.p50 = 1.0;
  summary.p99 = 2.0;
  summary.p999 = 3.0;
  summary.mean = 1.5;
  summary.count = 7;
  const telemetry::Json json = latency_json(summary);
  ASSERT_TRUE(json.is_object());
  EXPECT_DOUBLE_EQ(json.find("p50")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(json.find("p999")->as_number(), 3.0);
  EXPECT_EQ(json.find("count")->as_integer(), 7u);
}

// -- environment capture -----------------------------------------------------

TEST(EnvironmentJson, RequiredKeysPresent) {
  const telemetry::Json env = environment_json();
  ASSERT_TRUE(env.is_object());
  ASSERT_NE(env.find("cpu_ghz"), nullptr);
  EXPECT_GT(env.find("cpu_ghz")->as_number(), 0.0);
  ASSERT_NE(env.find("git_describe"), nullptr);
  EXPECT_FALSE(env.find("git_describe")->as_string().empty());
  ASSERT_NE(env.find("hardware_concurrency"), nullptr);
  // Shape fields omitted when not applicable.
  EXPECT_EQ(env.find("shards"), nullptr);
  EXPECT_EQ(env.find("batch_size"), nullptr);
}

TEST(EnvironmentJson, ShapeFieldsAppearWhenSet) {
  const telemetry::Json env = environment_json(4, 32);
  EXPECT_EQ(env.find("shards")->as_integer(), 4u);
  EXPECT_EQ(env.find("batch_size")->as_integer(), 32u);
}

TEST(GitDescribe, NeverNullNeverEmpty) {
  ASSERT_NE(git_describe(), nullptr);
  EXPECT_GT(std::string(git_describe()).size(), 0u);
}

}  // namespace
}  // namespace speedybox::bench
