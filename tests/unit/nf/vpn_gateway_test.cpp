#include "nf/vpn_gateway.hpp"

#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "net/packet_builder.hpp"
#include "test_helpers.hpp"

namespace speedybox::nf {
namespace {

using speedybox::testing::same_bytes;
using speedybox::testing::tuple_n;

TEST(VpnGateway, EgressEncapsulates) {
  VpnGateway vpn{VpnMode::kEgress};
  net::Packet packet = net::make_tcp_packet(tuple_n(1), "secret");
  const std::size_t before = packet.size();
  vpn.process(packet, nullptr);
  EXPECT_EQ(packet.size(), before + net::kAhHeaderLen);
  EXPECT_TRUE(net::outer_ah_spi(packet).has_value());
  EXPECT_EQ(vpn.encapsulated(), 1u);

  const auto parsed = net::parse_packet(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(net::verify_ipv4_checksum(packet, parsed->l3_offset));
}

TEST(VpnGateway, StableSpiPerFlow) {
  VpnGateway vpn{VpnMode::kEgress};
  net::Packet a = net::make_tcp_packet(tuple_n(2), "x");
  net::Packet b = net::make_tcp_packet(tuple_n(2), "y");
  vpn.process(a, nullptr);
  vpn.process(b, nullptr);
  EXPECT_EQ(net::outer_ah_spi(a), net::outer_ah_spi(b));
  EXPECT_EQ(vpn.active_associations(), 1u);
}

TEST(VpnGateway, DistinctFlowsDistinctSpis) {
  VpnGateway vpn{VpnMode::kEgress};
  net::Packet a = net::make_tcp_packet(tuple_n(3), "x");
  net::Packet b = net::make_tcp_packet(tuple_n(4), "x");
  vpn.process(a, nullptr);
  vpn.process(b, nullptr);
  EXPECT_NE(net::outer_ah_spi(a), net::outer_ah_spi(b));
}

TEST(VpnGateway, IngressDecapsulatesRoundTrip) {
  VpnGateway egress{VpnMode::kEgress, 0x1000, "vpn-out"};
  VpnGateway ingress{VpnMode::kIngress, 0x1000, "vpn-in"};
  net::Packet packet = net::make_tcp_packet(tuple_n(5), "tunnel me");
  const net::Packet original = packet;
  egress.process(packet, nullptr);
  ingress.process(packet, nullptr);
  EXPECT_TRUE(same_bytes(packet, original));
  EXPECT_EQ(ingress.decapsulated(), 1u);
}

TEST(VpnGateway, IngressRejectsPlainPackets) {
  VpnGateway ingress{VpnMode::kIngress};
  net::Packet packet = net::make_tcp_packet(tuple_n(6), "no tunnel");
  ingress.process(packet, nullptr);
  EXPECT_TRUE(packet.dropped());
  EXPECT_EQ(ingress.rejected(), 1u);
}

TEST(VpnGateway, RecordsEncapAction) {
  VpnGateway vpn{VpnMode::kEgress};
  core::LocalMat mat{"vpn", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx{mat, events, 5};
  net::Packet packet = net::make_tcp_packet(tuple_n(7), "x");
  packet.set_fid(5);
  vpn.process(packet, &ctx);
  ASSERT_NE(mat.find(5), nullptr);
  ASSERT_EQ(mat.find(5)->header_actions.size(), 1u);
  EXPECT_EQ(mat.find(5)->header_actions[0].type,
            core::HeaderActionType::kEncap);
  EXPECT_EQ(mat.find(5)->header_actions[0].encap.kind, net::EncapKind::kAh);
}

TEST(VpnGateway, RecordsDecapAction) {
  VpnGateway egress{VpnMode::kEgress};
  VpnGateway ingress{VpnMode::kIngress};
  core::LocalMat mat{"vpn-in", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx{mat, events, 6};
  net::Packet packet = net::make_tcp_packet(tuple_n(8), "x");
  packet.set_fid(6);
  egress.process(packet, nullptr);
  ingress.process(packet, &ctx);
  ASSERT_NE(mat.find(6), nullptr);
  EXPECT_EQ(mat.find(6)->header_actions[0].type,
            core::HeaderActionType::kDecap);
}

TEST(VpnGateway, TeardownFreesAssociation) {
  VpnGateway vpn{VpnMode::kEgress};
  core::LocalMat mat{"vpn", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx{mat, events, 7};
  net::Packet packet = net::make_tcp_packet(tuple_n(9), "x");
  packet.set_fid(7);
  vpn.process(packet, &ctx);
  EXPECT_EQ(vpn.active_associations(), 1u);
  mat.run_teardown_hooks(7);
  EXPECT_EQ(vpn.active_associations(), 0u);
}

}  // namespace
}  // namespace speedybox::nf
