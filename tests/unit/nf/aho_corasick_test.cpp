#include "nf/aho_corasick.hpp"

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace speedybox::nf {
namespace {

std::span<const std::uint8_t> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(AhoCorasick, FindsSinglePattern) {
  AhoCorasick ac;
  ac.add_pattern("needle", 1);
  ac.build();
  const std::string hay = "hay needle stack";
  EXPECT_EQ(ac.match_ids(as_bytes(hay)), (std::vector<std::uint32_t>{1}));
}

TEST(AhoCorasick, NoFalsePositive) {
  AhoCorasick ac;
  ac.add_pattern("needle", 1);
  ac.build();
  const std::string hay = "haystack without it; need le";
  EXPECT_TRUE(ac.match_ids(as_bytes(hay)).empty());
  EXPECT_FALSE(ac.contains_any(as_bytes(hay)));
}

TEST(AhoCorasick, OverlappingPatterns) {
  AhoCorasick ac;
  ac.add_pattern("he", 1);
  ac.add_pattern("she", 2);
  ac.add_pattern("hers", 3);
  ac.build();
  const std::string hay = "ushers";
  const auto ids = ac.match_ids(as_bytes(hay));
  EXPECT_EQ(ids, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(AhoCorasick, ReportsEndOffsets) {
  AhoCorasick ac;
  ac.add_pattern("ab", 1);
  ac.build();
  const std::string hay = "abab";
  std::vector<std::size_t> ends;
  ac.match(as_bytes(hay),
           [&](std::uint32_t, std::size_t end) { ends.push_back(end); });
  EXPECT_EQ(ends, (std::vector<std::size_t>{2, 4}));
}

TEST(AhoCorasick, PatternAtStartAndEnd) {
  AhoCorasick ac;
  ac.add_pattern("start", 1);
  ac.add_pattern("end", 2);
  ac.build();
  const std::string hay = "start middle end";
  EXPECT_EQ(ac.match_ids(as_bytes(hay)),
            (std::vector<std::uint32_t>{1, 2}));
}

TEST(AhoCorasick, BinaryPatterns) {
  AhoCorasick ac;
  const std::string pattern{"\x00\xFF\x7F", 3};
  ac.add_pattern(pattern, 9);
  ac.build();
  std::string hay = "xx";
  hay += pattern;
  hay += "yy";
  EXPECT_EQ(ac.match_ids(as_bytes(hay)), (std::vector<std::uint32_t>{9}));
}

TEST(AhoCorasick, EmptyTextNoMatches) {
  AhoCorasick ac;
  ac.add_pattern("x", 1);
  ac.build();
  EXPECT_TRUE(ac.match_ids({}).empty());
}

TEST(AhoCorasick, EmptyPatternIgnored) {
  AhoCorasick ac;
  ac.add_pattern("", 1);
  ac.add_pattern("ok", 2);
  ac.build();
  EXPECT_EQ(ac.pattern_count(), 1u);
  EXPECT_EQ(ac.match_ids(as_bytes(std::string{"ok"})),
            (std::vector<std::uint32_t>{2}));
}

TEST(AhoCorasick, DuplicatePatternBothIdsFire) {
  AhoCorasick ac;
  ac.add_pattern("dup", 1);
  ac.add_pattern("dup", 2);
  ac.build();
  EXPECT_EQ(ac.match_ids(as_bytes(std::string{"a dup b"})),
            (std::vector<std::uint32_t>{1, 2}));
}

/// Differential test against a naive multi-pattern scan.
class AhoCorasickProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AhoCorasickProperty, MatchesNaiveSearch) {
  util::Rng rng{GetParam()};
  for (int trial = 0; trial < 50; ++trial) {
    // Small alphabet to force overlaps.
    const auto random_string = [&rng](std::size_t max_len) {
      std::string s(1 + rng.below(max_len), 'a');
      for (auto& c : s) c = static_cast<char>('a' + rng.below(3));
      return s;
    };

    AhoCorasick ac;
    std::vector<std::string> patterns;
    for (std::uint32_t i = 0; i < 6; ++i) {
      patterns.push_back(random_string(5));
      ac.add_pattern(patterns.back(), i);
    }
    ac.build();
    const std::string text = random_string(200);

    std::map<std::uint32_t, int> naive;
    for (std::uint32_t i = 0; i < patterns.size(); ++i) {
      for (std::size_t pos = 0;
           (pos = text.find(patterns[i], pos)) != std::string::npos; ++pos) {
        ++naive[i];
      }
    }
    std::map<std::uint32_t, int> actual;
    ac.match(as_bytes(text),
             [&](std::uint32_t id, std::size_t) { ++actual[id]; });
    ASSERT_EQ(actual, naive) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AhoCorasickProperty,
                         ::testing::Values(3, 14, 159, 2653));

}  // namespace
}  // namespace speedybox::nf
