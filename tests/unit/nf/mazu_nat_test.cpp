#include "nf/mazu_nat.hpp"

#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "net/fields.hpp"
#include "net/packet_builder.hpp"
#include "test_helpers.hpp"

namespace speedybox::nf {
namespace {

using speedybox::testing::tuple_n;

MazuNatConfig small_pool() {
  MazuNatConfig config;
  config.port_lo = 10000;
  config.port_hi = 10003;  // 4 ports for exhaustion tests
  return config;
}

TEST(MazuNat, TranslatesOutboundSource) {
  MazuNat nat;
  net::Packet packet = net::make_tcp_packet(tuple_n(1), "x");
  nat.process(packet, nullptr);

  const auto parsed = net::parse_packet(packet);
  EXPECT_EQ(net::get_field(packet, *parsed, net::HeaderField::kSrcIp),
            MazuNatConfig{}.external_ip.value);
  const auto mapping = nat.mapping_of(tuple_n(1));
  ASSERT_TRUE(mapping.has_value());
  EXPECT_EQ(net::get_field(packet, *parsed, net::HeaderField::kSrcPort),
            *mapping);
}

TEST(MazuNat, StableMappingPerFlow) {
  MazuNat nat;
  net::Packet a = net::make_tcp_packet(tuple_n(2), "x");
  net::Packet b = net::make_tcp_packet(tuple_n(2), "y");
  nat.process(a, nullptr);
  nat.process(b, nullptr);
  const auto pa = net::parse_packet(a);
  const auto pb = net::parse_packet(b);
  EXPECT_EQ(net::get_field(a, *pa, net::HeaderField::kSrcPort),
            net::get_field(b, *pb, net::HeaderField::kSrcPort));
  EXPECT_EQ(nat.active_mappings(), 1u);
}

TEST(MazuNat, DistinctFlowsDistinctPorts) {
  MazuNat nat;
  net::Packet a = net::make_tcp_packet(tuple_n(3), "x");
  net::Packet b = net::make_tcp_packet(tuple_n(4), "x");
  nat.process(a, nullptr);
  nat.process(b, nullptr);
  EXPECT_NE(nat.mapping_of(tuple_n(3)), nat.mapping_of(tuple_n(4)));
}

TEST(MazuNat, InboundReverseTranslation) {
  MazuNat nat;
  net::Packet outbound = net::make_tcp_packet(tuple_n(5), "req");
  nat.process(outbound, nullptr);
  const std::uint16_t ext_port = nat.mapping_of(tuple_n(5)).value();

  // Reply addressed to the external IP/port.
  net::FiveTuple reply;
  reply.src_ip = tuple_n(5).dst_ip;
  reply.src_port = tuple_n(5).dst_port;
  reply.dst_ip = MazuNatConfig{}.external_ip;
  reply.dst_port = ext_port;
  reply.proto = tuple_n(5).proto;
  net::Packet inbound = net::make_tcp_packet(reply, "resp");
  nat.process(inbound, nullptr);

  const auto parsed = net::parse_packet(inbound);
  EXPECT_EQ(net::get_field(inbound, *parsed, net::HeaderField::kDstIp),
            tuple_n(5).src_ip.value);
  EXPECT_EQ(net::get_field(inbound, *parsed, net::HeaderField::kDstPort),
            tuple_n(5).src_port);
}

TEST(MazuNat, UnsolicitedInboundDropped) {
  MazuNat nat;
  net::FiveTuple unsolicited;
  unsolicited.src_ip = net::Ipv4Addr{8, 8, 8, 8};
  unsolicited.src_port = 53;
  unsolicited.dst_ip = MazuNatConfig{}.external_ip;
  unsolicited.dst_port = 4444;
  unsolicited.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);
  net::Packet packet = net::make_tcp_packet(unsolicited, "scan");
  nat.process(packet, nullptr);
  EXPECT_TRUE(packet.dropped());
}

TEST(MazuNat, NonInternalNonExternalForwardedUntouched) {
  MazuNat nat;
  net::FiveTuple transit;
  transit.src_ip = net::Ipv4Addr{8, 8, 4, 4};
  transit.src_port = 1234;
  transit.dst_ip = net::Ipv4Addr{9, 9, 9, 9};
  transit.dst_port = 80;
  transit.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);
  net::Packet packet = net::make_tcp_packet(transit, "pass");
  const std::vector<std::uint8_t> before{packet.bytes().begin(),
                                         packet.bytes().end()};
  nat.process(packet, nullptr);
  EXPECT_FALSE(packet.dropped());
  EXPECT_TRUE(std::equal(packet.bytes().begin(), packet.bytes().end(),
                         before.begin(), before.end()));
}

TEST(MazuNat, PortReleaseOnFinAndReuse) {
  MazuNat nat{small_pool()};
  for (std::uint32_t flow = 0; flow < 20; ++flow) {
    net::Packet open = net::make_tcp_packet(tuple_n(flow), "x");
    nat.process(open, nullptr);
    ASSERT_EQ(nat.active_mappings(), 1u);
    net::Packet fin = net::make_tcp_packet(
        tuple_n(flow), "", net::kTcpFlagFin | net::kTcpFlagAck);
    nat.process(fin, nullptr);
    ASSERT_EQ(nat.active_mappings(), 0u) << "flow " << flow;
  }
}

TEST(MazuNat, PortPoolExhaustionThrows) {
  MazuNat nat{small_pool()};
  for (std::uint32_t flow = 0; flow < 4; ++flow) {
    net::Packet packet = net::make_tcp_packet(tuple_n(flow), "x");
    nat.process(packet, nullptr);
  }
  net::Packet fifth = net::make_tcp_packet(tuple_n(99), "x");
  EXPECT_THROW(nat.process(fifth, nullptr), std::runtime_error);
}

TEST(MazuNat, ChecksumsValidAfterTranslation) {
  MazuNat nat;
  net::Packet packet = net::make_tcp_packet(tuple_n(6), "payload");
  nat.process(packet, nullptr);
  const auto parsed = net::parse_packet(packet);
  EXPECT_TRUE(net::verify_ipv4_checksum(packet, parsed->l3_offset));
  EXPECT_TRUE(net::verify_l4_checksum(packet, *parsed));
}

TEST(MazuNat, RecordsTwoModifyActions) {
  MazuNat nat;
  core::LocalMat mat{"nat", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx{mat, events, 9};
  net::Packet packet = net::make_tcp_packet(tuple_n(7), "x");
  packet.set_fid(9);
  nat.process(packet, &ctx);

  const core::LocalRule* rule = mat.find(9);
  ASSERT_NE(rule, nullptr);
  ASSERT_EQ(rule->header_actions.size(), 2u);
  EXPECT_EQ(rule->header_actions[0].field, net::HeaderField::kSrcIp);
  EXPECT_EQ(rule->header_actions[1].field, net::HeaderField::kSrcPort);
}

TEST(MazuNat, TeardownHookReleasesMapping) {
  MazuNat nat;
  core::LocalMat mat{"nat", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx{mat, events, 10};
  net::Packet packet = net::make_tcp_packet(tuple_n(8), "x");
  packet.set_fid(10);
  nat.process(packet, &ctx);
  EXPECT_EQ(nat.active_mappings(), 1u);
  mat.run_teardown_hooks(10);
  EXPECT_EQ(nat.active_mappings(), 0u);
}

TEST(MazuNat, RejectsEmptyPortRange) {
  MazuNatConfig config;
  config.port_lo = 2000;
  config.port_hi = 1000;
  EXPECT_THROW(MazuNat{config}, std::invalid_argument);
}

}  // namespace
}  // namespace speedybox::nf
