// Per-NF flow-state serialization (DESIGN.md §10): export → import into an
// identically configured replica → re-export must be byte-identical, and
// the replica must keep processing the flow exactly as the source would
// have. These are the unit-level guarantees the live-resharding migration
// engine builds on; the autoscale differential harness then proves the
// composed chain-level property.
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/api.hpp"
#include "core/event_table.hpp"
#include "core/local_mat.hpp"
#include "net/fields.hpp"
#include "net/packet_builder.hpp"
#include "nf/dos_prevention.hpp"
#include "nf/flow_state.hpp"
#include "nf/ip_filter.hpp"
#include "nf/maglev_lb.hpp"
#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "nf/network_function.hpp"
#include "nf/snort_ids.hpp"
#include "test_helpers.hpp"
#include "trace/payload_synth.hpp"

namespace speedybox::nf {
namespace {

using speedybox::testing::tuple_n;

/// Recording scaffold: a LocalMat/EventTable pair plus a context for one
/// flow, mirroring what the migration engine hands import_flow_state.
struct Recorder {
  core::LocalMat mat{"nf-under-test", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx;
  explicit Recorder(std::uint32_t fid) : ctx{mat, events, fid} {}
};

/// export(source) → import(dest) → export(dest): both exports must exist
/// and carry identical bytes. Returns the payload for further checks.
std::vector<std::uint8_t> roundtrip(NetworkFunction& source,
                                    NetworkFunction& dest,
                                    const net::FiveTuple& tuple,
                                    core::SpeedyBoxContext* ctx = nullptr) {
  const auto exported = source.export_flow_state(tuple);
  EXPECT_TRUE(exported.has_value());
  if (!exported) return {};
  dest.import_flow_state(tuple, *exported, ctx);
  const auto reexported = dest.export_flow_state(tuple);
  EXPECT_TRUE(reexported.has_value());
  if (reexported) {
    EXPECT_EQ(*exported, *reexported);
  }
  return *exported;
}

TEST(FlowStateWire, RoundTripsEveryFieldType) {
  FlowStateWriter writer;
  writer.u8(0xAB);
  writer.u16(0xBEEF);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0123456789ABCDEFull);
  writer.boolean(true);
  writer.tuple(tuple_n(7));
  const std::vector<std::uint8_t> bytes = writer.take();

  FlowStateReader reader{bytes};
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u16(), 0xBEEF);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(reader.boolean());
  EXPECT_EQ(reader.tuple(), tuple_n(7));
  EXPECT_TRUE(reader.done());
}

TEST(FlowStateWire, TruncatedPayloadThrows) {
  FlowStateWriter writer;
  writer.u32(42);
  const std::vector<std::uint8_t> bytes = writer.take();
  FlowStateReader reader{bytes};
  EXPECT_THROW(reader.u64(), std::out_of_range);
}

TEST(FlowStateDefaults, UnimplementedNfFailsLoudlyWithName) {
  struct Opaque final : NetworkFunction {
    Opaque() : NetworkFunction("opaque-box") {}
    void process(net::Packet&, core::SpeedyBoxContext*) override {}
  } nf;
  EXPECT_FALSE(nf.supports_flow_migration());
  try {
    nf.export_flow_state(tuple_n(1));
    FAIL() << "export on a non-migratable NF must throw";
  } catch (const std::logic_error& error) {
    EXPECT_NE(std::string{error.what()}.find("opaque-box"),
              std::string::npos);
  }
  EXPECT_THROW(nf.import_flow_state(tuple_n(1), {}, nullptr),
               std::logic_error);
}

TEST(FlowStateDefaults, NoStateExportsNullopt) {
  Monitor monitor;
  EXPECT_EQ(monitor.export_flow_state(tuple_n(1)), std::nullopt);
  IpFilter filter{std::vector<AclRule>{}};
  EXPECT_EQ(filter.export_flow_state(tuple_n(1)), std::nullopt);
}

// --- MazuNAT --------------------------------------------------------------

TEST(MazuNatFlowState, OutboundRoundTripPreservesPortMap) {
  MazuNat source;
  net::Packet initial = net::make_tcp_packet(tuple_n(1), "x");
  source.process(initial, nullptr);
  const auto source_port = source.mapping_of(tuple_n(1));
  ASSERT_TRUE(source_port.has_value());

  auto clone = source.clone_checked();
  auto& dest = static_cast<MazuNat&>(*clone);
  roundtrip(source, dest, tuple_n(1));

  // Port-map determinism: the imported mapping IS the source's mapping,
  // so post-migration packets translate to the identical external port.
  EXPECT_EQ(dest.mapping_of(tuple_n(1)), source_port);
  net::Packet via_source = net::make_tcp_packet(tuple_n(1), "next");
  net::Packet via_dest = net::make_tcp_packet(tuple_n(1), "next");
  source.process(via_source, nullptr);
  dest.process(via_dest, nullptr);
  EXPECT_TRUE(speedybox::testing::same_bytes(via_source, via_dest));
}

TEST(MazuNatFlowState, ImportReRecordsActionsAndTeardown) {
  MazuNat source;
  net::Packet initial = net::make_tcp_packet(tuple_n(2), "x");
  source.process(initial, nullptr);

  auto clone = source.clone_checked();
  auto& dest = static_cast<MazuNat&>(*clone);
  Recorder rec{5};
  roundtrip(source, dest, tuple_n(2), &rec.ctx);

  const core::LocalRule* rule = rec.mat.find(5);
  ASSERT_NE(rule, nullptr);
  ASSERT_EQ(rule->header_actions.size(), 2u);
  EXPECT_EQ(rule->header_actions[0].field, net::HeaderField::kSrcIp);
  EXPECT_EQ(rule->header_actions[1].field, net::HeaderField::kSrcPort);
  EXPECT_EQ(rule->header_actions[1].value,
            static_cast<std::uint32_t>(*dest.mapping_of(tuple_n(2))));

  // The teardown hook must release the DESTINATION's mapping.
  EXPECT_EQ(dest.active_mappings(), 1u);
  rec.mat.run_teardown_hooks(5);
  EXPECT_EQ(dest.active_mappings(), 0u);
  EXPECT_EQ(source.active_mappings(), 1u);
}

TEST(MazuNatFlowState, InboundRoundTripTranslatesIdentically) {
  MazuNat source;
  net::Packet outbound = net::make_tcp_packet(tuple_n(3), "req");
  source.process(outbound, nullptr);
  const std::uint16_t ext_port = source.mapping_of(tuple_n(3)).value();

  net::FiveTuple reply;
  reply.src_ip = tuple_n(3).dst_ip;
  reply.src_port = tuple_n(3).dst_port;
  reply.dst_ip = MazuNatConfig{}.external_ip;
  reply.dst_port = ext_port;
  reply.proto = tuple_n(3).proto;
  net::Packet prime = net::make_tcp_packet(reply, "resp");
  source.process(prime, nullptr);  // records the inbound flow

  // Import the inbound payload into a FRESH replica: it must reconstruct
  // both directions of the mapping from the carried original tuple.
  MazuNat dest;
  roundtrip(source, dest, reply);
  net::Packet via_source = net::make_tcp_packet(reply, "more");
  net::Packet via_dest = net::make_tcp_packet(reply, "more");
  source.process(via_source, nullptr);
  dest.process(via_dest, nullptr);
  EXPECT_FALSE(via_dest.dropped());
  EXPECT_TRUE(speedybox::testing::same_bytes(via_source, via_dest));
  EXPECT_EQ(dest.mapping_of(tuple_n(3)), ext_port);
}

TEST(MazuNatFlowState, UnknownKindThrows) {
  MazuNat nat;
  FlowStateWriter writer;
  writer.u8(99);
  const std::vector<std::uint8_t> bytes = writer.take();
  EXPECT_THROW(nat.import_flow_state(tuple_n(4), bytes, nullptr),
               std::invalid_argument);
}

// --- MaglevLb -------------------------------------------------------------

std::vector<Backend> two_backends() {
  return {{"b0", net::Ipv4Addr{10, 2, 0, 10}, 8000, true},
          {"b1", net::Ipv4Addr{10, 2, 0, 11}, 8001, true}};
}

TEST(MaglevLbFlowState, ConnTrackSurvivesMigration) {
  MaglevLb source{two_backends(), 13};
  net::Packet initial = net::make_tcp_packet(tuple_n(1), "x");
  source.process(initial, nullptr);
  const auto backend = source.backend_of(tuple_n(1));
  ASSERT_TRUE(backend.has_value());

  auto clone = source.clone_checked();
  auto& dest = static_cast<MaglevLb&>(*clone);
  roundtrip(source, dest, tuple_n(1));
  EXPECT_EQ(dest.backend_of(tuple_n(1)), backend);

  // Stickiness is the migrated property: even after the hash-preferred
  // backend fails, the imported flow keeps steering to its backend.
  net::Packet via_source = net::make_tcp_packet(tuple_n(1), "next");
  net::Packet via_dest = net::make_tcp_packet(tuple_n(1), "next");
  source.process(via_source, nullptr);
  dest.process(via_dest, nullptr);
  EXPECT_TRUE(speedybox::testing::same_bytes(via_source, via_dest));
}

TEST(MaglevLbFlowState, OutOfRangeBackendRejected) {
  MaglevLb lb{two_backends(), 13};
  FlowStateWriter writer;
  writer.u64(7);  // only 2 backends exist
  const std::vector<std::uint8_t> bytes = writer.take();
  EXPECT_THROW(lb.import_flow_state(tuple_n(2), bytes, nullptr),
               std::invalid_argument);
  // The rejected import must not leave the flow tracked.
  EXPECT_EQ(lb.backend_of(tuple_n(2)), std::nullopt);
}

TEST(MaglevLbFlowState, TruncatedPayloadRejected) {
  MaglevLb lb{two_backends(), 13};
  FlowStateWriter writer;
  writer.u32(0);  // half a backend-index payload
  const std::vector<std::uint8_t> bytes = writer.take();
  EXPECT_THROW(lb.import_flow_state(tuple_n(3), bytes, nullptr),
               std::out_of_range);
  EXPECT_EQ(lb.backend_of(tuple_n(3)), std::nullopt);
}

// --- Monitor --------------------------------------------------------------

TEST(MonitorFlowState, ExportMovesCountersSoShardsStayAPartition) {
  Monitor source;
  for (int i = 0; i < 3; ++i) {
    net::Packet packet = net::make_tcp_packet(tuple_n(1), "abc");
    source.process(packet, nullptr);
  }
  const FlowCounters* found = source.counters_of(tuple_n(1));
  ASSERT_NE(found, nullptr);
  const FlowCounters expected = *found;

  const auto exported = source.export_flow_state(tuple_n(1));
  ASSERT_TRUE(exported.has_value());
  // Move semantics: the source sheds the entry at export time.
  EXPECT_EQ(source.counters_of(tuple_n(1)), nullptr);
  EXPECT_EQ(source.export_flow_state(tuple_n(1)), std::nullopt);

  Monitor dest;
  dest.import_flow_state(tuple_n(1), *exported, nullptr);
  const FlowCounters* imported = dest.counters_of(tuple_n(1));
  ASSERT_NE(imported, nullptr);
  EXPECT_EQ(*imported, expected);
  EXPECT_EQ(dest.export_flow_state(tuple_n(1)), exported);
}

// --- IpFilter -------------------------------------------------------------

TEST(IpFilterFlowState, CachedVerdictsRoundTrip) {
  const std::vector<AclRule> acl{
      AclRule::drop_dst_prefix(net::Ipv4Addr{10, 1, 3, 0}, 24)};
  IpFilter source{acl};
  net::FiveTuple blocked = tuple_n(1);
  blocked.dst_ip = net::Ipv4Addr{10, 1, 3, 9};
  for (const net::FiveTuple& tuple : {tuple_n(2), blocked}) {
    net::Packet packet = net::make_tcp_packet(tuple, "x");
    source.process(packet, nullptr);
  }

  IpFilter dest{acl};
  Recorder pass_rec{1};
  const auto pass_payload = roundtrip(source, dest, tuple_n(2),
                                      &pass_rec.ctx);
  Recorder drop_rec{2};
  const auto drop_payload = roundtrip(source, dest, blocked, &drop_rec.ctx);
  EXPECT_NE(pass_payload, drop_payload);

  // The re-recorded rule must reproduce the verdict.
  ASSERT_NE(pass_rec.mat.find(1), nullptr);
  EXPECT_EQ(pass_rec.mat.find(1)->header_actions[0].type,
            core::HeaderActionType::kForward);
  ASSERT_NE(drop_rec.mat.find(2), nullptr);
  EXPECT_EQ(drop_rec.mat.find(2)->header_actions[0].type,
            core::HeaderActionType::kDrop);
  EXPECT_EQ(dest.cached_flows(), 2u);
}

// --- SnortIds -------------------------------------------------------------

TEST(SnortIdsFlowState, CandidateRuleGroupRoundTrips) {
  SnortIds source{trace::default_snort_rules()};
  net::Packet initial = net::make_tcp_packet(tuple_n(1), "hello");
  source.process(initial, nullptr);
  ASSERT_EQ(source.tracked_flows(), 1u);

  auto clone = source.clone_checked();
  auto& dest = static_cast<SnortIds&>(*clone);
  roundtrip(source, dest, tuple_n(1));
  EXPECT_EQ(dest.tracked_flows(), 1u);

  // Post-migration inspection uses the identical candidate group: the same
  // follow-up packet produces the same verdict and audit deltas.
  net::Packet via_source = net::make_tcp_packet(tuple_n(1), "attackdata");
  net::Packet via_dest = net::make_tcp_packet(tuple_n(1), "attackdata");
  source.process(via_source, nullptr);
  dest.process(via_dest, nullptr);
  EXPECT_EQ(via_source.dropped(), via_dest.dropped());
  EXPECT_TRUE(speedybox::testing::same_bytes(via_source, via_dest));
}

TEST(SnortIdsFlowState, OutOfRangeRuleIndexRejected) {
  SnortIds ids{trace::default_snort_rules()};
  FlowStateWriter writer;
  writer.u32(1);
  writer.u32(1000000);
  const std::vector<std::uint8_t> bytes = writer.take();
  EXPECT_THROW(ids.import_flow_state(tuple_n(1), bytes, nullptr),
               std::invalid_argument);
}

// --- DosPrevention --------------------------------------------------------

net::Packet syn_packet(std::uint32_t flow) {
  return net::make_tcp_packet(tuple_n(flow), "", net::kTcpFlagSyn);
}

TEST(DosPreventionFlowState, SynCounterSurvivesMigration) {
  DosPrevention source{100};
  for (int i = 0; i < 3; ++i) {
    net::Packet packet = syn_packet(1);
    source.process(packet, nullptr);
  }
  auto clone = source.clone_checked();
  auto& dest = static_cast<DosPrevention&>(*clone);
  roundtrip(source, dest, tuple_n(1));
  EXPECT_EQ(dest.syn_count(tuple_n(1)), 3u);
  EXPECT_FALSE(dest.is_blacklisted(tuple_n(1)));
}

TEST(DosPreventionFlowState, BlacklistedFlowImportsAsDropWithoutReArming) {
  DosPrevention source{1};
  for (int i = 0; i < 3; ++i) {
    net::Packet packet = syn_packet(2);
    source.process(packet, nullptr);
  }
  ASSERT_TRUE(source.is_blacklisted(tuple_n(2)));

  auto clone = source.clone_checked();
  auto& dest = static_cast<DosPrevention&>(*clone);
  Recorder rec{3};
  roundtrip(source, dest, tuple_n(2), &rec.ctx);
  EXPECT_TRUE(dest.is_blacklisted(tuple_n(2)));

  // The re-recorded rule drops; the one-shot blacklist event is NOT
  // re-armed (it already fired on the source shard — re-arming would
  // double-count drops when the consolidated rule replays it).
  const core::LocalRule* rule = rec.mat.find(3);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->header_actions[0].type, core::HeaderActionType::kDrop);
  EXPECT_FALSE(rec.events.has_events(3));
}

}  // namespace
}  // namespace speedybox::nf
