#include "nf/gateway.hpp"

#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "net/fields.hpp"
#include "net/packet_builder.hpp"
#include "test_helpers.hpp"

namespace speedybox::nf {
namespace {

using speedybox::testing::tuple_n;

std::vector<TrafficClass> voice_video_classes() {
  return {
      {5060, 5061, 46},  // SIP -> EF
      {8000, 8099, 34},  // media -> AF41
  };
}

TEST(Gateway, DecrementsTtl) {
  Gateway gw{voice_video_classes()};
  net::Packet packet = net::make_tcp_packet(tuple_n(1), "x");  // TTL 64
  gw.process(packet, nullptr);
  const auto parsed = net::parse_packet(packet);
  EXPECT_EQ(net::get_field(packet, *parsed, net::HeaderField::kTtl), 63u);
  EXPECT_TRUE(net::verify_ipv4_checksum(packet, parsed->l3_offset));
  EXPECT_EQ(gw.routed(), 1u);
}

TEST(Gateway, StampsDscpByPort) {
  Gateway gw{voice_video_classes()};
  net::Packet sip = net::make_tcp_packet(tuple_n(2, 5060), "INVITE");
  gw.process(sip, nullptr);
  const auto parsed = net::parse_packet(sip);
  EXPECT_EQ(net::get_field(sip, *parsed, net::HeaderField::kTos),
            46u << 2);
}

TEST(Gateway, UnmatchedFlowsBestEffort) {
  Gateway gw{voice_video_classes()};
  net::Packet web = net::make_tcp_packet(tuple_n(3, 443), "x");
  gw.process(web, nullptr);
  const auto parsed = net::parse_packet(web);
  EXPECT_EQ(net::get_field(web, *parsed, net::HeaderField::kTos), 0u);
}

TEST(Gateway, DropsExpiredTtl) {
  Gateway gw{{}};
  net::PacketSpec spec;
  spec.tuple = tuple_n(4);
  spec.ttl = 1;
  net::Packet packet = net::build_packet(spec);
  gw.process(packet, nullptr);
  EXPECT_TRUE(packet.dropped());
  EXPECT_EQ(gw.ttl_expired(), 1u);
}

TEST(Gateway, RecordsTwoModifies) {
  Gateway gw{voice_video_classes()};
  core::LocalMat mat{"gw", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx{mat, events, 3};
  net::Packet packet = net::make_tcp_packet(tuple_n(5, 5060), "x");
  packet.set_fid(3);
  gw.process(packet, &ctx);
  ASSERT_NE(mat.find(3), nullptr);
  ASSERT_EQ(mat.find(3)->header_actions.size(), 2u);
  EXPECT_EQ(mat.find(3)->header_actions[0].field, net::HeaderField::kTtl);
  EXPECT_EQ(mat.find(3)->header_actions[1].field, net::HeaderField::kTos);
}

TEST(Gateway, RecordsDropOnExpiredTtl) {
  Gateway gw{{}};
  core::LocalMat mat{"gw", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx{mat, events, 4};
  net::PacketSpec spec;
  spec.tuple = tuple_n(6);
  spec.ttl = 1;
  net::Packet packet = net::build_packet(spec);
  packet.set_fid(4);
  gw.process(packet, &ctx);
  EXPECT_EQ(mat.find(4)->header_actions[0].type,
            core::HeaderActionType::kDrop);
}

TEST(Gateway, FirstMatchingClassWins) {
  Gateway gw{{{5000, 6000, 10}, {5060, 5061, 46}}};
  net::Packet packet = net::make_tcp_packet(tuple_n(7, 5060), "x");
  gw.process(packet, nullptr);
  const auto parsed = net::parse_packet(packet);
  EXPECT_EQ(net::get_field(packet, *parsed, net::HeaderField::kTos),
            10u << 2);
}

}  // namespace
}  // namespace speedybox::nf
