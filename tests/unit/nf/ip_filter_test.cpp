#include "nf/ip_filter.hpp"

#include <gtest/gtest.h>

#include "net/packet_builder.hpp"
#include "test_helpers.hpp"

namespace speedybox::nf {
namespace {

using speedybox::testing::tuple_n;

TEST(AclRule, DstPortMatch) {
  const AclRule rule = AclRule::drop_dst_port(22);
  net::FiveTuple tuple = tuple_n(1, 22);
  EXPECT_TRUE(rule.matches(tuple));
  tuple.dst_port = 23;
  EXPECT_FALSE(rule.matches(tuple));
}

TEST(AclRule, SrcIpExactMatch) {
  const AclRule rule = AclRule::drop_src_ip(net::Ipv4Addr{1, 2, 3, 4});
  net::FiveTuple tuple;
  tuple.src_ip = net::Ipv4Addr{1, 2, 3, 4};
  EXPECT_TRUE(rule.matches(tuple));
  tuple.src_ip = net::Ipv4Addr{1, 2, 3, 5};
  EXPECT_FALSE(rule.matches(tuple));
}

TEST(AclRule, PrefixMatch) {
  const AclRule rule = AclRule::drop_dst_prefix(net::Ipv4Addr{10, 7, 0, 0}, 16);
  net::FiveTuple tuple;
  tuple.dst_ip = net::Ipv4Addr{10, 7, 200, 1};
  EXPECT_TRUE(rule.matches(tuple));
  tuple.dst_ip = net::Ipv4Addr{10, 8, 0, 1};
  EXPECT_FALSE(rule.matches(tuple));
}

TEST(AclRule, ProtoFilter) {
  AclRule rule = AclRule::drop_dst_port(80);
  rule.proto = static_cast<std::uint8_t>(net::IpProto::kUdp);
  net::FiveTuple tuple = tuple_n(1, 80);  // TCP
  EXPECT_FALSE(rule.matches(tuple));
  tuple.proto = static_cast<std::uint8_t>(net::IpProto::kUdp);
  EXPECT_TRUE(rule.matches(tuple));
}

TEST(AclRule, PortRanges) {
  AclRule rule;
  rule.dport_lo = 1000;
  rule.dport_hi = 2000;
  net::FiveTuple tuple = tuple_n(1, 999);
  EXPECT_FALSE(rule.matches(tuple));
  tuple.dst_port = 1000;
  EXPECT_TRUE(rule.matches(tuple));
  tuple.dst_port = 2000;
  EXPECT_TRUE(rule.matches(tuple));
  tuple.dst_port = 2001;
  EXPECT_FALSE(rule.matches(tuple));
}

TEST(IpFilter, DropsBlacklistedFlow) {
  IpFilter filter{{AclRule::drop_dst_port(80)}};
  net::Packet packet = net::make_tcp_packet(tuple_n(1, 80), "x");
  filter.process(packet, nullptr);
  EXPECT_TRUE(packet.dropped());
  EXPECT_EQ(filter.drops(), 1u);
}

TEST(IpFilter, ForwardsNonMatching) {
  IpFilter filter{{AclRule::drop_dst_port(22)}};
  net::Packet packet = net::make_tcp_packet(tuple_n(2, 80), "x");
  filter.process(packet, nullptr);
  EXPECT_FALSE(packet.dropped());
}

TEST(IpFilter, FirstMatchWins) {
  AclRule allow = AclRule::allow_all();
  allow.dport_lo = allow.dport_hi = 80;
  allow.drop = false;
  IpFilter filter{{allow, AclRule::drop_dst_port(80)}};
  net::Packet packet = net::make_tcp_packet(tuple_n(3, 80), "x");
  filter.process(packet, nullptr);
  EXPECT_FALSE(packet.dropped()) << "earlier allow must shadow later drop";
}

TEST(IpFilter, DefaultAllow) {
  IpFilter filter{{}};
  net::Packet packet = net::make_tcp_packet(tuple_n(4, 1234), "x");
  filter.process(packet, nullptr);
  EXPECT_FALSE(packet.dropped());
}

TEST(IpFilter, VerdictCachedPerFlow) {
  IpFilter filter{{AclRule::drop_dst_port(80)}};
  for (int i = 0; i < 3; ++i) {
    net::Packet packet = net::make_tcp_packet(tuple_n(5, 80), "x");
    filter.process(packet, nullptr);
    EXPECT_TRUE(packet.dropped());
  }
  EXPECT_EQ(filter.cached_flows(), 1u);
  EXPECT_EQ(filter.drops(), 3u);
}

TEST(IpFilter, RecordsDropOrForward) {
  IpFilter filter{{AclRule::drop_dst_port(80)}};
  core::LocalMat mat{"fw", 0};
  core::EventTable events;

  core::SpeedyBoxContext drop_ctx{mat, events, 1};
  net::Packet bad = net::make_tcp_packet(tuple_n(6, 80), "x");
  bad.set_fid(1);
  filter.process(bad, &drop_ctx);
  EXPECT_EQ(mat.find(1)->header_actions[0].type,
            core::HeaderActionType::kDrop);

  core::SpeedyBoxContext fwd_ctx{mat, events, 2};
  net::Packet good = net::make_tcp_packet(tuple_n(7, 443), "x");
  good.set_fid(2);
  filter.process(good, &fwd_ctx);
  EXPECT_EQ(mat.find(2)->header_actions[0].type,
            core::HeaderActionType::kForward);
}

TEST(IpFilter, CacheFreedOnFin) {
  IpFilter filter{{}};
  net::Packet open = net::make_tcp_packet(tuple_n(8, 80), "x");
  filter.process(open, nullptr);
  EXPECT_EQ(filter.cached_flows(), 1u);
  net::Packet fin = net::make_tcp_packet(
      tuple_n(8, 80), "", net::kTcpFlagFin | net::kTcpFlagAck);
  filter.process(fin, nullptr);
  EXPECT_EQ(filter.cached_flows(), 0u);
}

TEST(IpFilter, MalformedPacketDropped) {
  IpFilter filter{{}};
  net::Packet garbage{std::vector<std::uint8_t>(30, 0x42)};
  filter.process(garbage, nullptr);
  EXPECT_TRUE(garbage.dropped());
}

}  // namespace
}  // namespace speedybox::nf
