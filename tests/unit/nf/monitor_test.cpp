#include "nf/monitor.hpp"

#include <gtest/gtest.h>

#include "net/packet_builder.hpp"
#include "test_helpers.hpp"

namespace speedybox::nf {
namespace {

using speedybox::testing::tuple_n;

TEST(Monitor, CountsPacketsAndBytes) {
  Monitor monitor;
  net::Packet a = net::make_tcp_packet(tuple_n(1), "aaaa");
  net::Packet b = net::make_tcp_packet(tuple_n(1), "bbbbbbbb");
  monitor.process(a, nullptr);
  monitor.process(b, nullptr);

  const FlowCounters* counters = monitor.counters_of(tuple_n(1));
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->packets, 2u);
  EXPECT_EQ(counters->bytes, a.size() + b.size());
}

TEST(Monitor, PerFlowIsolation) {
  Monitor monitor;
  net::Packet a = net::make_tcp_packet(tuple_n(1), "x");
  net::Packet b = net::make_tcp_packet(tuple_n(2), "x");
  monitor.process(a, nullptr);
  monitor.process(b, nullptr);
  EXPECT_EQ(monitor.flow_count(), 2u);
  ASSERT_NE(monitor.counters_of(tuple_n(1)), nullptr);
  ASSERT_NE(monitor.counters_of(tuple_n(2)), nullptr);
  EXPECT_EQ(monitor.counters_of(tuple_n(1))->packets, 1u);
  EXPECT_EQ(monitor.counters_of(tuple_n(2))->packets, 1u);
}

TEST(Monitor, NeverModifiesPacket) {
  Monitor monitor;
  net::Packet packet = net::make_tcp_packet(tuple_n(3), "payload");
  const std::vector<std::uint8_t> before{packet.bytes().begin(),
                                         packet.bytes().end()};
  monitor.process(packet, nullptr);
  EXPECT_FALSE(packet.dropped());
  EXPECT_TRUE(std::equal(packet.bytes().begin(), packet.bytes().end(),
                         before.begin(), before.end()));
}

TEST(Monitor, TotalsAggregate) {
  Monitor monitor;
  std::uint64_t bytes = 0;
  for (std::uint32_t flow = 0; flow < 4; ++flow) {
    net::Packet packet = net::make_tcp_packet(tuple_n(flow), "zz");
    monitor.process(packet, nullptr);
    bytes += packet.size();
  }
  EXPECT_EQ(monitor.total_packets(), 4u);
  EXPECT_EQ(monitor.total_bytes(), bytes);
}

TEST(Monitor, RecordsIgnoreClassStateFunction) {
  Monitor monitor;
  core::LocalMat mat{"monitor", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx{mat, events, 5};
  net::Packet packet = net::make_tcp_packet(tuple_n(4), "x");
  packet.set_fid(5);
  monitor.process(packet, &ctx);

  const core::LocalRule* rule = mat.find(5);
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->header_actions[0].type, core::HeaderActionType::kForward);
  ASSERT_EQ(rule->state_functions.size(), 1u);
  EXPECT_EQ(rule->state_functions[0].access, core::PayloadAccess::kIgnore);
}

TEST(Monitor, RecordedHandlerCountsSubsequentPackets) {
  Monitor monitor;
  core::LocalMat mat{"monitor", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx{mat, events, 6};
  net::Packet initial = net::make_tcp_packet(tuple_n(5), "x");
  initial.set_fid(6);
  monitor.process(initial, &ctx);

  net::Packet subsequent = net::make_tcp_packet(tuple_n(5), "yy");
  const auto parsed = net::parse_packet(subsequent);
  mat.find(6)->state_functions[0].handler(subsequent, *parsed);
  ASSERT_NE(monitor.counters_of(tuple_n(5)), nullptr);
  EXPECT_EQ(monitor.counters_of(tuple_n(5))->packets, 2u);
}

TEST(Monitor, CountersSurviveFin) {
  // Counters are audit state and must NOT be dropped at flow teardown
  // (§VII-C-3 compares them after the run).
  Monitor monitor;
  net::Packet fin = net::make_tcp_packet(
      tuple_n(6), "x", net::kTcpFlagFin | net::kTcpFlagAck);
  monitor.process(fin, nullptr);
  EXPECT_NE(monitor.counters_of(tuple_n(6)), nullptr);
}

TEST(Monitor, ForEachFlowVisitsEveryFlowOnce) {
  Monitor monitor;
  for (std::uint32_t flow = 1; flow <= 3; ++flow) {
    net::Packet packet = net::make_tcp_packet(tuple_n(flow), "x");
    monitor.process(packet, nullptr);
  }
  std::size_t visited = 0;
  std::uint64_t packets = 0;
  monitor.for_each_flow(
      [&](const net::FiveTuple& tuple, const FlowCounters& counters) {
        ++visited;
        packets += counters.packets;
        EXPECT_NE(monitor.counters_of(tuple), nullptr);
      });
  EXPECT_EQ(visited, monitor.flow_count());
  EXPECT_EQ(packets, 3u);
}

}  // namespace
}  // namespace speedybox::nf
