#include "nf/dos_prevention.hpp"

#include <gtest/gtest.h>

#include "net/fields.hpp"
#include "net/packet_builder.hpp"
#include "test_helpers.hpp"

namespace speedybox::nf {
namespace {

using speedybox::testing::tuple_n;

net::Packet syn_packet(std::uint32_t flow) {
  return net::make_tcp_packet(tuple_n(flow), "", net::kTcpFlagSyn);
}

TEST(DosPrevention, CountsSynFlags) {
  DosPrevention dos{100};
  for (int i = 0; i < 5; ++i) {
    net::Packet packet = syn_packet(1);
    dos.process(packet, nullptr);
  }
  net::Packet ack = net::make_tcp_packet(tuple_n(1), "data");
  dos.process(ack, nullptr);
  EXPECT_EQ(dos.syn_count(tuple_n(1)), 5u);
}

TEST(DosPrevention, UnderThresholdForwards) {
  DosPrevention dos{3};
  for (int i = 0; i < 3; ++i) {
    net::Packet packet = syn_packet(2);
    dos.process(packet, nullptr);
    EXPECT_FALSE(packet.dropped());
  }
}

TEST(DosPrevention, CheckThenCountSemantics) {
  // Threshold 3: packets 1-3 raise the counter to 3; packet 4 raises it to
  // 4 (counter>threshold still false at arrival: 3 > 3 is false), so packet
  // 4 passes and packet 5 is the first dropped — matching the Event Table's
  // evaluate-on-arrival semantics.
  DosPrevention dos{3};
  for (int i = 0; i < 4; ++i) {
    net::Packet packet = syn_packet(3);
    dos.process(packet, nullptr);
    EXPECT_FALSE(packet.dropped()) << "packet " << i;
  }
  net::Packet fifth = syn_packet(3);
  dos.process(fifth, nullptr);
  EXPECT_TRUE(fifth.dropped());
  EXPECT_TRUE(dos.is_blacklisted(tuple_n(3)));
}

TEST(DosPrevention, BlacklistIsSticky) {
  DosPrevention dos{1};
  for (int i = 0; i < 3; ++i) {
    net::Packet packet = syn_packet(4);
    dos.process(packet, nullptr);
  }
  // Even a non-SYN packet is dropped once blacklisted.
  net::Packet data = net::make_tcp_packet(tuple_n(4), "data");
  dos.process(data, nullptr);
  EXPECT_TRUE(data.dropped());
}

TEST(DosPrevention, FlowsIndependent) {
  DosPrevention dos{1};
  for (int i = 0; i < 5; ++i) {
    net::Packet packet = syn_packet(5);
    dos.process(packet, nullptr);
  }
  EXPECT_TRUE(dos.is_blacklisted(tuple_n(5)));
  net::Packet other = syn_packet(6);
  dos.process(other, nullptr);
  EXPECT_FALSE(other.dropped());
  EXPECT_FALSE(dos.is_blacklisted(tuple_n(6)));
}

TEST(DosPrevention, AppliesNormalActionWhenClean) {
  DosPrevention dos{100,
                    core::HeaderAction::modify(net::HeaderField::kTos, 0x20)};
  net::Packet packet = net::make_tcp_packet(tuple_n(7), "x");
  dos.process(packet, nullptr);
  const auto parsed = net::parse_packet(packet);
  EXPECT_EQ(net::get_field(packet, *parsed, net::HeaderField::kTos), 0x20u);
}

TEST(DosPrevention, RegistersEventAndStateFunction) {
  DosPrevention dos{2};
  core::LocalMat mat{"dos", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx{mat, events, 15};
  net::Packet packet = syn_packet(8);
  packet.set_fid(15);
  dos.process(packet, &ctx);

  ASSERT_NE(mat.find(15), nullptr);
  EXPECT_EQ(mat.find(15)->state_functions.size(), 1u);
  EXPECT_TRUE(events.has_events(15));
}

TEST(DosPrevention, EventTriggersDropUpdateAtThreshold) {
  DosPrevention dos{2};
  core::LocalMat mat{"dos", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx{mat, events, 16};
  net::Packet initial = syn_packet(9);
  initial.set_fid(16);
  dos.process(initial, &ctx);  // syn_count = 1

  // Simulate the fast path running the recorded SF twice more.
  const auto& sf = mat.find(16)->state_functions[0];
  net::Packet more = syn_packet(9);
  const auto parsed = net::parse_packet(more);
  sf.handler(more, *parsed);  // 2
  int triggered = 0;
  events.check(16, [&](const core::EventRegistration&, core::EventUpdate) {
    ++triggered;
  });
  EXPECT_EQ(triggered, 0) << "2 > 2 is false";

  sf.handler(more, *parsed);  // 3
  events.check(16,
               [&](const core::EventRegistration&, core::EventUpdate update) {
                 ++triggered;
                 ASSERT_TRUE(update.header_actions.has_value());
                 EXPECT_EQ(update.header_actions->at(0).type,
                           core::HeaderActionType::kDrop);
               });
  EXPECT_EQ(triggered, 1);
  EXPECT_TRUE(dos.is_blacklisted(tuple_n(9)));
}

}  // namespace
}  // namespace speedybox::nf
