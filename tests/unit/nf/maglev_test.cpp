#include "nf/maglev_lb.hpp"

#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "net/fields.hpp"
#include "net/packet_builder.hpp"
#include "test_helpers.hpp"

namespace speedybox::nf {
namespace {

using speedybox::testing::tuple_n;

std::vector<Backend> test_backends() {
  return {
      {"b0", net::Ipv4Addr{10, 2, 0, 10}, 8000, true},
      {"b1", net::Ipv4Addr{10, 2, 0, 11}, 8001, true},
      {"b2", net::Ipv4Addr{10, 2, 0, 12}, 8002, true},
  };
}

TEST(MaglevLb, RewritesDestinationToBackend) {
  MaglevLb lb{test_backends(), 251};
  net::Packet packet = net::make_tcp_packet(tuple_n(1), "x");
  lb.process(packet, nullptr);

  const auto parsed = net::parse_packet(packet);
  const std::uint32_t dst_ip =
      net::get_field(packet, *parsed, net::HeaderField::kDstIp);
  const std::uint32_t dst_port =
      net::get_field(packet, *parsed, net::HeaderField::kDstPort);
  const auto backend = lb.backend_of(tuple_n(1));
  ASSERT_TRUE(backend.has_value());
  EXPECT_EQ(dst_ip, lb.backends()[*backend].ip.value);
  EXPECT_EQ(dst_port, lb.backends()[*backend].port);
}

TEST(MaglevLb, ConnectionStickiness) {
  MaglevLb lb{test_backends(), 251};
  const auto backend_for = [&lb](std::uint32_t flow) {
    net::Packet packet = net::make_tcp_packet(tuple_n(flow), "x");
    lb.process(packet, nullptr);
    return lb.backend_of(tuple_n(flow)).value();
  };
  const std::size_t first = backend_for(2);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(backend_for(2), first);
  }
}

TEST(MaglevLb, SpreadsFlowsAcrossBackends) {
  MaglevLb lb{test_backends(), 251};
  std::vector<int> hits(3, 0);
  for (std::uint32_t flow = 0; flow < 300; ++flow) {
    net::Packet packet = net::make_tcp_packet(tuple_n(flow), "x");
    lb.process(packet, nullptr);
    ++hits[lb.backend_of(tuple_n(flow)).value()];
  }
  for (const int count : hits) {
    EXPECT_GT(count, 50) << "grossly unbalanced";
  }
}

TEST(MaglevLb, FailoverReroutesEstablishedFlow) {
  MaglevLb lb{test_backends(), 251};
  net::Packet first = net::make_tcp_packet(tuple_n(3), "x");
  lb.process(first, nullptr);
  const std::size_t original = lb.backend_of(tuple_n(3)).value();

  lb.fail_backend(original);
  net::Packet second = net::make_tcp_packet(tuple_n(3), "x");
  lb.process(second, nullptr);
  const std::size_t rerouted = lb.backend_of(tuple_n(3)).value();
  EXPECT_NE(rerouted, original);
  EXPECT_TRUE(lb.backends()[rerouted].healthy);
  EXPECT_EQ(lb.reroutes(), 1u);

  const auto parsed = net::parse_packet(second);
  EXPECT_EQ(net::get_field(second, *parsed, net::HeaderField::kDstIp),
            lb.backends()[rerouted].ip.value);
}

TEST(MaglevLb, HealedBackendReceivesNewFlows) {
  MaglevLb lb{test_backends(), 251};
  lb.fail_backend(0);
  lb.heal_backend(0);
  std::vector<int> hits(3, 0);
  for (std::uint32_t flow = 100; flow < 400; ++flow) {
    net::Packet packet = net::make_tcp_packet(tuple_n(flow), "x");
    lb.process(packet, nullptr);
    ++hits[lb.backend_of(tuple_n(flow)).value()];
  }
  EXPECT_GT(hits[0], 0);
}

TEST(MaglevLb, ChecksumsValidAfterRewrite) {
  MaglevLb lb{test_backends(), 251};
  net::Packet packet = net::make_tcp_packet(tuple_n(4), "payload");
  lb.process(packet, nullptr);
  const auto parsed = net::parse_packet(packet);
  EXPECT_TRUE(net::verify_ipv4_checksum(packet, parsed->l3_offset));
  EXPECT_TRUE(net::verify_l4_checksum(packet, *parsed));
}

TEST(MaglevLb, RecordsModifyActionsAndEvent) {
  MaglevLb lb{test_backends(), 251};
  core::LocalMat mat{"maglev", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx{mat, events, 77};

  net::Packet packet = net::make_tcp_packet(tuple_n(5), "x");
  packet.set_fid(77);
  lb.process(packet, &ctx);

  const core::LocalRule* rule = mat.find(77);
  ASSERT_NE(rule, nullptr);
  ASSERT_EQ(rule->header_actions.size(), 2u);
  EXPECT_EQ(rule->header_actions[0].field, net::HeaderField::kDstIp);
  EXPECT_EQ(rule->header_actions[1].field, net::HeaderField::kDstPort);
  EXPECT_TRUE(events.has_events(77));
  ASSERT_EQ(rule->state_functions.size(), 1u);
  EXPECT_EQ(rule->state_functions[0].access, core::PayloadAccess::kIgnore);
}

TEST(MaglevLb, EventFiresOnlyWhenBackendUnhealthy) {
  MaglevLb lb{test_backends(), 251};
  core::LocalMat mat{"maglev", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx{mat, events, 88};
  net::Packet packet = net::make_tcp_packet(tuple_n(6), "x");
  packet.set_fid(88);
  lb.process(packet, &ctx);
  const std::size_t original = lb.backend_of(tuple_n(6)).value();

  int triggered = 0;
  events.check(88, [&](const core::EventRegistration&, core::EventUpdate) {
    ++triggered;
  });
  EXPECT_EQ(triggered, 0);

  lb.fail_backend(original);
  events.check(88,
               [&](const core::EventRegistration&, core::EventUpdate update) {
                 ++triggered;
                 ASSERT_TRUE(update.header_actions.has_value());
                 EXPECT_EQ(update.header_actions->size(), 2u);
               });
  EXPECT_EQ(triggered, 1);
  EXPECT_NE(lb.backend_of(tuple_n(6)).value(), original);
}

TEST(MaglevLb, TeardownReleasesTracking) {
  MaglevLb lb{test_backends(), 251};
  net::Packet open = net::make_tcp_packet(tuple_n(7), "x");
  lb.process(open, nullptr);
  EXPECT_EQ(lb.tracked_flows(), 1u);
  net::Packet fin = net::make_tcp_packet(
      tuple_n(7), "", net::kTcpFlagFin | net::kTcpFlagAck);
  lb.process(fin, nullptr);
  EXPECT_EQ(lb.tracked_flows(), 0u);
}

TEST(MaglevLb, ThrowsWithNoBackends) {
  EXPECT_THROW(MaglevLb({}, 251), std::invalid_argument);
}

TEST(MaglevLb, BytesAccounted) {
  MaglevLb lb{test_backends(), 251};
  net::Packet packet = net::make_tcp_packet(tuple_n(8), "12345");
  lb.process(packet, nullptr);
  const std::size_t backend = lb.backend_of(tuple_n(8)).value();
  EXPECT_EQ(lb.bytes_per_backend()[backend], packet.size());
}

}  // namespace
}  // namespace speedybox::nf
