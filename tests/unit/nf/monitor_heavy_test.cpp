// Heavy-monitor statistics: count-min sketch estimates, per-port bytes and
// the payload byte histogram — and their baseline-vs-fast-path equivalence.
#include <gtest/gtest.h>

#include "nf/monitor.hpp"
#include "runtime/runner.hpp"
#include "test_helpers.hpp"

namespace speedybox::nf {
namespace {

using speedybox::testing::tuple_n;

TEST(MonitorHeavy, SketchEstimateUpperBoundsTrueBytes) {
  Monitor monitor{MonitorConfig::heavy(), "m"};
  std::uint64_t true_bytes = 0;
  for (int i = 0; i < 50; ++i) {
    net::Packet packet = net::make_tcp_packet(tuple_n(1), "abcdefgh");
    monitor.process(packet, nullptr);
    true_bytes += packet.size();
  }
  const std::uint64_t estimate = monitor.estimate_flow_bytes(tuple_n(1));
  EXPECT_GE(estimate, true_bytes) << "count-min never underestimates";
  // With one flow there are no collisions: exact.
  EXPECT_EQ(estimate, true_bytes);
}

TEST(MonitorHeavy, PerPortBytesAccumulate) {
  Monitor monitor{MonitorConfig::heavy(), "m"};
  net::Packet a = net::make_tcp_packet(tuple_n(1, 80), "x");
  net::Packet b = net::make_tcp_packet(tuple_n(2, 80), "yy");
  net::Packet c = net::make_tcp_packet(tuple_n(3, 443), "z");
  monitor.process(a, nullptr);
  monitor.process(b, nullptr);
  monitor.process(c, nullptr);
  EXPECT_EQ(monitor.port_bytes(80), a.size() + b.size());
  EXPECT_EQ(monitor.port_bytes(443), c.size());
  EXPECT_EQ(monitor.port_bytes(22), 0u);
}

TEST(MonitorHeavy, PayloadHistogramCountsBytes) {
  Monitor monitor{MonitorConfig::heavy(), "m"};
  net::Packet packet = net::make_tcp_packet(tuple_n(4), "aab");
  monitor.process(packet, nullptr);
  EXPECT_EQ(monitor.payload_histogram()[static_cast<unsigned char>('a')],
            2u);
  EXPECT_EQ(monitor.payload_histogram()[static_cast<unsigned char>('b')],
            1u);
}

TEST(MonitorHeavy, DisabledFeaturesReturnZero) {
  Monitor monitor;  // default config: everything off
  net::Packet packet = net::make_tcp_packet(tuple_n(5), "zz");
  monitor.process(packet, nullptr);
  EXPECT_EQ(monitor.estimate_flow_bytes(tuple_n(5)), 0u);
  EXPECT_EQ(monitor.port_bytes(80), 0u);
  EXPECT_TRUE(monitor.payload_histogram().empty());
}

TEST(MonitorHeavy, HistogramMakesStateFunctionReadClass) {
  Monitor monitor{MonitorConfig::heavy(), "m"};
  core::LocalMat mat{"m", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx{mat, events, 1};
  net::Packet packet = net::make_tcp_packet(tuple_n(6), "x");
  packet.set_fid(1);
  monitor.process(packet, &ctx);
  ASSERT_NE(mat.find(1), nullptr);
  EXPECT_EQ(mat.find(1)->state_functions[0].access,
            core::PayloadAccess::kRead);
}

TEST(MonitorHeavy, FastPathStatsEqualBaselineStats) {
  const auto feed = [](Monitor& monitor, bool speedybox) {
    runtime::ServiceChain chain;
    chain.add_nf(&monitor);
    runtime::ChainRunner runner{
        chain, {platform::PlatformKind::kBess, speedybox, false}};
    for (std::uint32_t flow = 0; flow < 6; ++flow) {
      for (int pkt = 0; pkt < 9; ++pkt) {
        net::Packet packet = net::make_tcp_packet(
            tuple_n(flow, static_cast<std::uint16_t>(80 + flow % 3)),
            "heavy stats payload");
        runner.process_packet(packet);
      }
    }
  };

  Monitor baseline{MonitorConfig::heavy(), "baseline"};
  feed(baseline, false);
  Monitor speedy{MonitorConfig::heavy(), "speedy"};
  feed(speedy, true);

  EXPECT_EQ(baseline.total_bytes(), speedy.total_bytes());
  for (std::uint32_t flow = 0; flow < 6; ++flow) {
    EXPECT_EQ(baseline.estimate_flow_bytes(tuple_n(flow, 80 + flow % 3)),
              speedy.estimate_flow_bytes(tuple_n(flow, 80 + flow % 3)))
        << "flow " << flow;
  }
  EXPECT_EQ(baseline.payload_histogram(), speedy.payload_histogram());
  for (const std::uint16_t port : {80, 81, 82}) {
    EXPECT_EQ(baseline.port_bytes(port), speedy.port_bytes(port));
  }
}

}  // namespace
}  // namespace speedybox::nf
