#include "nf/snort_rule.hpp"

#include <gtest/gtest.h>

namespace speedybox::nf {
namespace {

TEST(ParseIpv4, Valid) {
  EXPECT_EQ(parse_ipv4("192.168.1.2"), net::Ipv4Addr(192, 168, 1, 2));
  EXPECT_EQ(parse_ipv4("0.0.0.0"), net::Ipv4Addr{0});
  EXPECT_EQ(parse_ipv4("255.255.255.255"), net::Ipv4Addr{0xFFFFFFFF});
}

TEST(ParseIpv4, Invalid) {
  EXPECT_FALSE(parse_ipv4("1.2.3").has_value());
  EXPECT_FALSE(parse_ipv4("1.2.3.4.5").has_value());
  EXPECT_FALSE(parse_ipv4("1.2.3.256").has_value());
  EXPECT_FALSE(parse_ipv4("a.b.c.d").has_value());
  EXPECT_FALSE(parse_ipv4("").has_value());
}

TEST(ParseSnortRule, FullRule) {
  const auto rule = parse_snort_rule(
      R"(alert tcp 10.0.0.1 any -> any 80 (content:"evil"; msg:"bad"; sid:42;))");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->action, SnortAction::kAlert);
  EXPECT_EQ(rule->proto, net::IpProto::kTcp);
  EXPECT_EQ(rule->src_ip, net::Ipv4Addr(10, 0, 0, 1));
  EXPECT_FALSE(rule->src_port.has_value());
  EXPECT_FALSE(rule->dst_ip.has_value());
  EXPECT_EQ(rule->dst_port, 80);
  ASSERT_EQ(rule->contents.size(), 1u);
  EXPECT_EQ(rule->contents[0].pattern, "evil");
  EXPECT_FALSE(rule->contents[0].nocase);
  EXPECT_EQ(rule->contents[0].offset, 0u);
  EXPECT_FALSE(rule->contents[0].depth.has_value());
  EXPECT_EQ(rule->msg, "bad");
  EXPECT_EQ(rule->sid, 42u);
}

TEST(ParseSnortRule, MultipleContents) {
  const auto rule = parse_snort_rule(
      R"(log udp any any -> any any (content:"a"; content:"b"; sid:1;))");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->action, SnortAction::kLog);
  EXPECT_EQ(rule->proto, net::IpProto::kUdp);
  ASSERT_EQ(rule->contents.size(), 2u);
  EXPECT_EQ(rule->contents[0].pattern, "a");
  EXPECT_EQ(rule->contents[1].pattern, "b");
}

TEST(ParseSnortRule, PassAction) {
  const auto rule = parse_snort_rule(
      R"(pass tcp any any -> any 80 (content:"GET /healthz"; sid:2;))");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->action, SnortAction::kPass);
}

TEST(ParseSnortRule, IpProtoMeansAny) {
  const auto rule =
      parse_snort_rule(R"(alert ip any any -> any any (content:"x"; sid:3;))");
  ASSERT_TRUE(rule.has_value());
  EXPECT_FALSE(rule->proto.has_value());
}

TEST(ParseSnortRule, UnknownOptionTolerated) {
  const auto rule = parse_snort_rule(
      R"(alert tcp any any -> any any (content:"x"; classtype:misc; sid:4;))");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->sid, 4u);
}

TEST(ParseSnortRule, Errors) {
  std::string error;
  EXPECT_FALSE(parse_snort_rule("bogus tcp any any -> any any (content:\"x\";)",
                                &error)
                   .has_value());
  EXPECT_NE(error.find("unknown action"), std::string::npos);

  EXPECT_FALSE(
      parse_snort_rule("alert tcp any any any 80 (content:\"x\";)", &error)
          .has_value());

  EXPECT_FALSE(
      parse_snort_rule("alert tcp any any -> any 80", &error).has_value());
  EXPECT_NE(error.find("option body"), std::string::npos);

  // content is mandatory.
  EXPECT_FALSE(
      parse_snort_rule("alert tcp any any -> any 80 (msg:\"m\"; sid:1;)",
                       &error)
          .has_value());
  EXPECT_NE(error.find("no content"), std::string::npos);

  // bad port
  EXPECT_FALSE(parse_snort_rule(
                   "alert tcp any any -> any 99999 (content:\"x\"; sid:1;)",
                   &error)
                   .has_value());
}

TEST(ParseSnortRules, FileWithCommentsAndBlanks) {
  const auto rules = parse_snort_rules(R"(
# comment
alert tcp any any -> any 80 (content:"one"; sid:1;)

log tcp any any -> any any (content:"two"; sid:2;)
)");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].sid, 1u);
  EXPECT_EQ(rules[1].sid, 2u);
}

TEST(ParseSnortRules, ThrowsOnMalformedLine) {
  EXPECT_THROW(parse_snort_rules("alert tcp broken"), std::invalid_argument);
}

TEST(HeaderMatches, FiltersByEveryDimension) {
  SnortRule rule;
  rule.proto = net::IpProto::kTcp;
  rule.dst_port = 80;
  net::FiveTuple tuple;
  tuple.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);
  tuple.dst_port = 80;
  EXPECT_TRUE(rule.header_matches(tuple));

  tuple.dst_port = 81;
  EXPECT_FALSE(rule.header_matches(tuple));
  tuple.dst_port = 80;
  tuple.proto = static_cast<std::uint8_t>(net::IpProto::kUdp);
  EXPECT_FALSE(rule.header_matches(tuple));
}

TEST(HeaderMatches, AnyMatchesEverything) {
  const SnortRule rule;  // all fields nullopt
  net::FiveTuple tuple;
  tuple.src_ip = net::Ipv4Addr{123};
  tuple.dst_port = 9999;
  tuple.proto = 250;
  EXPECT_TRUE(rule.header_matches(tuple));
}

TEST(ParseSnortRule, ContentModifiers) {
  const auto rule = parse_snort_rule(
      R"(alert tcp any any -> any 80 (content:"EvIl"; nocase; offset:4; depth:16; content:"tail"; sid:9;))");
  ASSERT_TRUE(rule.has_value());
  ASSERT_EQ(rule->contents.size(), 2u);
  EXPECT_TRUE(rule->contents[0].nocase);
  EXPECT_EQ(rule->contents[0].offset, 4u);
  EXPECT_EQ(rule->contents[0].depth, 16u);
  EXPECT_FALSE(rule->contents[1].nocase)
      << "modifiers bind to the preceding content only";
  EXPECT_EQ(rule->contents[1].offset, 0u);
}

TEST(ParseSnortRule, ModifierWithoutContentRejected) {
  std::string error;
  EXPECT_FALSE(
      parse_snort_rule("alert tcp any any -> any 80 (nocase; content:\"x\"; sid:1;)",
                       &error)
          .has_value());
  EXPECT_NE(error.find("nocase"), std::string::npos);
  EXPECT_FALSE(
      parse_snort_rule("alert tcp any any -> any 80 (offset:3; content:\"x\"; sid:1;)",
                       &error)
          .has_value());
}

TEST(ParseSnortRule, ZeroDepthRejected) {
  std::string error;
  EXPECT_FALSE(parse_snort_rule(
                   "alert tcp any any -> any 80 (content:\"x\"; depth:0; sid:1;)",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("depth"), std::string::npos);
}

TEST(ContentMatch, PositionConstraints) {
  nf::ContentMatch content;
  content.pattern = "abcd";
  content.offset = 2;
  content.depth = 3;  // start must be in [2, 5)
  EXPECT_FALSE(content.position_ok(4));   // start 0
  EXPECT_FALSE(content.position_ok(5));   // start 1
  EXPECT_TRUE(content.position_ok(6));    // start 2
  EXPECT_TRUE(content.position_ok(8));    // start 4
  EXPECT_FALSE(content.position_ok(9));   // start 5: outside depth window
}

TEST(SnortActionName, Stable) {
  EXPECT_EQ(snort_action_name(SnortAction::kPass), "pass");
  EXPECT_EQ(snort_action_name(SnortAction::kAlert), "alert");
  EXPECT_EQ(snort_action_name(SnortAction::kLog), "log");
}

}  // namespace
}  // namespace speedybox::nf
