#include "nf/synthetic_nf.hpp"

#include <gtest/gtest.h>

#include "net/fields.hpp"
#include "net/packet_builder.hpp"
#include "test_helpers.hpp"

namespace speedybox::nf {
namespace {

using speedybox::testing::tuple_n;

TEST(SyntheticNf, ReadWorkIsDeterministic) {
  SyntheticNfConfig config;
  config.access = core::PayloadAccess::kRead;
  SyntheticNf a{config, "a"};
  SyntheticNf b{config, "b"};
  for (int i = 0; i < 5; ++i) {
    net::Packet pa = net::make_tcp_packet(tuple_n(1), "same payload");
    net::Packet pb = net::make_tcp_packet(tuple_n(1), "same payload");
    a.process(pa, nullptr);
    b.process(pb, nullptr);
  }
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), 0u);
}

TEST(SyntheticNf, ReadDoesNotModifyPacket) {
  SyntheticNfConfig config;
  config.access = core::PayloadAccess::kRead;
  SyntheticNf nf{config};
  net::Packet packet = net::make_tcp_packet(tuple_n(2), "payload");
  const std::vector<std::uint8_t> before{packet.bytes().begin(),
                                         packet.bytes().end()};
  nf.process(packet, nullptr);
  EXPECT_TRUE(std::equal(packet.bytes().begin(), packet.bytes().end(),
                         before.begin(), before.end()));
}

TEST(SyntheticNf, WriteModifiesPayloadDeterministically) {
  SyntheticNfConfig config;
  config.access = core::PayloadAccess::kWrite;
  config.work_iterations = 1;
  SyntheticNf nf1{config};
  SyntheticNf nf2{config};
  net::Packet p1 = net::make_tcp_packet(tuple_n(3), "mutate me");
  net::Packet p2 = net::make_tcp_packet(tuple_n(3), "mutate me");
  nf1.process(p1, nullptr);
  nf2.process(p2, nullptr);
  EXPECT_TRUE(speedybox::testing::same_bytes(p1, p2));

  net::Packet untouched = net::make_tcp_packet(tuple_n(3), "mutate me");
  EXPECT_FALSE(speedybox::testing::same_bytes(p1, untouched));
}

TEST(SyntheticNf, IgnoreLeavesPayloadAlone) {
  SyntheticNfConfig config;
  config.access = core::PayloadAccess::kIgnore;
  SyntheticNf nf{config};
  net::Packet packet = net::make_tcp_packet(tuple_n(4), "untouched");
  const std::vector<std::uint8_t> before{packet.bytes().begin(),
                                         packet.bytes().end()};
  nf.process(packet, nullptr);
  EXPECT_TRUE(std::equal(packet.bytes().begin(), packet.bytes().end(),
                         before.begin(), before.end()));
  EXPECT_NE(nf.digest(), 0u);
}

TEST(SyntheticNf, WorkScalesWithIterations) {
  // More iterations -> more digest evolution; weak but deterministic signal
  // that the knob is wired through.
  SyntheticNfConfig small;
  small.work_iterations = 1;
  SyntheticNfConfig large;
  large.work_iterations = 64;
  SyntheticNf nf_small{small};
  SyntheticNf nf_large{large};
  net::Packet a = net::make_tcp_packet(tuple_n(5), "zz");
  net::Packet b = net::make_tcp_packet(tuple_n(5), "zz");
  nf_small.process(a, nullptr);
  nf_large.process(b, nullptr);
  EXPECT_NE(nf_small.digest(), nf_large.digest());
}

TEST(SyntheticNf, RecordsConfiguredAccessClass) {
  SyntheticNfConfig config;
  config.access = core::PayloadAccess::kWrite;
  SyntheticNf nf{config};
  core::LocalMat mat{"syn", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx{mat, events, 3};
  net::Packet packet = net::make_tcp_packet(tuple_n(6), "x");
  packet.set_fid(3);
  nf.process(packet, &ctx);
  ASSERT_NE(mat.find(3), nullptr);
  EXPECT_EQ(mat.find(3)->state_functions[0].access,
            core::PayloadAccess::kWrite);
}

TEST(SyntheticNf, OptionalHeaderActionAppliedAndRecorded) {
  SyntheticNfConfig config;
  config.header_action =
      core::HeaderAction::modify(net::HeaderField::kTos, 0x10);
  SyntheticNf nf{config};
  core::LocalMat mat{"syn", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx{mat, events, 4};
  net::Packet packet = net::make_tcp_packet(tuple_n(7), "x");
  packet.set_fid(4);
  nf.process(packet, &ctx);
  const auto parsed = net::parse_packet(packet);
  EXPECT_EQ(net::get_field(packet, *parsed, net::HeaderField::kTos), 0x10u);
  EXPECT_EQ(mat.find(4)->header_actions[0].type,
            core::HeaderActionType::kModify);
}

}  // namespace
}  // namespace speedybox::nf
