#include "nf/snort_ids.hpp"

#include <gtest/gtest.h>

#include "net/packet_builder.hpp"
#include "test_helpers.hpp"

namespace speedybox::nf {
namespace {

using speedybox::testing::tuple_n;

std::vector<SnortRule> test_rules() {
  return parse_snort_rules(R"(
alert tcp any any -> any 80 (content:"attack"; msg:"m1"; sid:100;)
log tcp any any -> any 80 (content:"curious"; msg:"m2"; sid:200;)
pass tcp any any -> any 80 (content:"healthz"; msg:"m3"; sid:300;)
alert tcp any any -> any 443 (content:"tls-bad"; msg:"m4"; sid:400;)
alert tcp any any -> any any (content:"multi"; content:"part"; msg:"m5"; sid:500;)
)");
}

TEST(SnortIds, AlertsOnMatchingPayload) {
  SnortIds snort{test_rules()};
  net::Packet packet = net::make_tcp_packet(tuple_n(1, 80), "an attack here");
  snort.process(packet, nullptr);
  ASSERT_EQ(snort.log().size(), 1u);
  EXPECT_EQ(snort.log()[0].sid, 100u);
  EXPECT_EQ(snort.log()[0].action, SnortAction::kAlert);
  EXPECT_EQ(snort.alert_count(), 1u);
  EXPECT_FALSE(packet.dropped()) << "IDS only observes";
}

TEST(SnortIds, CleanPayloadNoLog) {
  SnortIds snort{test_rules()};
  net::Packet packet = net::make_tcp_packet(tuple_n(2, 80), "nothing here");
  snort.process(packet, nullptr);
  EXPECT_TRUE(snort.log().empty());
}

TEST(SnortIds, PortGroupFiltering) {
  SnortIds snort{test_rules()};
  // "attack" rule is dst-port-80 only; on port 443 it must not fire.
  net::Packet packet =
      net::make_tcp_packet(tuple_n(3, 443), "an attack here");
  snort.process(packet, nullptr);
  EXPECT_TRUE(snort.log().empty());
}

TEST(SnortIds, LogAction) {
  SnortIds snort{test_rules()};
  net::Packet packet = net::make_tcp_packet(tuple_n(4, 80), "curious cat");
  snort.process(packet, nullptr);
  ASSERT_EQ(snort.log().size(), 1u);
  EXPECT_EQ(snort.log()[0].action, SnortAction::kLog);
  EXPECT_EQ(snort.log_count(), 1u);
}

TEST(SnortIds, PassSuppressesAlert) {
  SnortIds snort{test_rules()};
  // Payload matches both the pass rule and the alert rule: pass-first order
  // suppresses the alert.
  net::Packet packet =
      net::make_tcp_packet(tuple_n(5, 80), "healthz attack");
  snort.process(packet, nullptr);
  EXPECT_TRUE(snort.log().empty());
  EXPECT_EQ(snort.pass_count(), 1u);
}

TEST(SnortIds, MultiContentRuleNeedsAllContents) {
  SnortIds snort{test_rules()};
  net::Packet partial = net::make_tcp_packet(tuple_n(6, 80), "multi only");
  snort.process(partial, nullptr);
  EXPECT_TRUE(snort.log().empty());

  net::Packet full =
      net::make_tcp_packet(tuple_n(7, 80), "multi and part");
  snort.process(full, nullptr);
  ASSERT_EQ(snort.log().size(), 1u);
  EXPECT_EQ(snort.log()[0].sid, 500u);
}

TEST(SnortIds, PerPacketInspectionRepeats) {
  SnortIds snort{test_rules()};
  for (int i = 0; i < 3; ++i) {
    net::Packet packet = net::make_tcp_packet(tuple_n(8, 80), "attack");
    snort.process(packet, nullptr);
  }
  EXPECT_EQ(snort.alert_count(), 3u) << "every packet is inspected";
}

TEST(SnortIds, RecordsForwardAndReadStateFunction) {
  SnortIds snort{test_rules()};
  core::LocalMat mat{"snort", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx{mat, events, 11};

  net::Packet packet = net::make_tcp_packet(tuple_n(9, 80), "attack");
  packet.set_fid(11);
  snort.process(packet, &ctx);

  const core::LocalRule* rule = mat.find(11);
  ASSERT_NE(rule, nullptr);
  ASSERT_EQ(rule->header_actions.size(), 1u);
  EXPECT_EQ(rule->header_actions[0].type, core::HeaderActionType::kForward);
  ASSERT_EQ(rule->state_functions.size(), 1u);
  EXPECT_EQ(rule->state_functions[0].access, core::PayloadAccess::kRead);
}

TEST(SnortIds, RecordedHandlerInspectsLikeProcess) {
  SnortIds snort{test_rules()};
  core::LocalMat mat{"snort", 0};
  core::EventTable events;
  core::SpeedyBoxContext ctx{mat, events, 12};

  net::Packet initial = net::make_tcp_packet(tuple_n(10, 80), "clean");
  initial.set_fid(12);
  snort.process(initial, &ctx);
  EXPECT_EQ(snort.alert_count(), 0u);

  // Invoke the recorded handler on a malicious subsequent packet.
  net::Packet subsequent = net::make_tcp_packet(tuple_n(10, 80), "attack!");
  const auto parsed = net::parse_packet(subsequent);
  mat.find(12)->state_functions[0].handler(subsequent, *parsed);
  EXPECT_EQ(snort.alert_count(), 1u);
}

TEST(SnortIds, FlowStateFreedOnFin) {
  SnortIds snort{test_rules()};
  net::Packet open = net::make_tcp_packet(tuple_n(11, 80), "x");
  snort.process(open, nullptr);
  EXPECT_EQ(snort.tracked_flows(), 1u);
  net::Packet fin = net::make_tcp_packet(
      tuple_n(11, 80), "", net::kTcpFlagFin | net::kTcpFlagAck);
  snort.process(fin, nullptr);
  EXPECT_EQ(snort.tracked_flows(), 0u);
}

TEST(SnortIds, NocaseMatchesAnyCapitalization) {
  SnortIds snort{parse_snort_rules(
      R"(alert tcp any any -> any 80 (content:"attack"; nocase; sid:700;))")};
  for (const char* payload : {"ATTACK", "AtTaCk now", "attack"}) {
    net::Packet packet = net::make_tcp_packet(tuple_n(20, 80), payload);
    snort.process(packet, nullptr);
  }
  EXPECT_EQ(snort.alert_count(), 3u);

  // Case-sensitive rules must NOT match the wrong case.
  SnortIds strict{parse_snort_rules(
      R"(alert tcp any any -> any 80 (content:"attack"; sid:701;))")};
  net::Packet upper = net::make_tcp_packet(tuple_n(21, 80), "ATTACK");
  strict.process(upper, nullptr);
  EXPECT_EQ(strict.alert_count(), 0u);
}

TEST(SnortIds, OffsetDepthConstrainMatchPosition) {
  // Content must start within payload bytes [4, 4+4): classic "match the
  // command field, not the body".
  SnortIds snort{parse_snort_rules(
      R"(alert tcp any any -> any 80 (content:"EVIL"; offset:4; depth:4; sid:702;))")};

  net::Packet in_window = net::make_tcp_packet(tuple_n(22, 80), "xxxxEVIL");
  snort.process(in_window, nullptr);
  EXPECT_EQ(snort.alert_count(), 1u);

  net::Packet too_early = net::make_tcp_packet(tuple_n(23, 80), "EVILxxxx");
  snort.process(too_early, nullptr);
  EXPECT_EQ(snort.alert_count(), 1u) << "match before offset must not fire";

  net::Packet too_late =
      net::make_tcp_packet(tuple_n(24, 80), "xxxxxxxxxxEVIL");
  snort.process(too_late, nullptr);
  EXPECT_EQ(snort.alert_count(), 1u) << "match beyond depth must not fire";
}

TEST(SnortIds, MixedCaseClassesInOneRule) {
  SnortIds snort{parse_snort_rules(
      R"(alert tcp any any -> any 80 (content:"HDR"; nocase; content:"body"; sid:703;))")};
  net::Packet both = net::make_tcp_packet(tuple_n(25, 80), "hdr ... body");
  snort.process(both, nullptr);
  EXPECT_EQ(snort.alert_count(), 1u);

  net::Packet wrong_case_body =
      net::make_tcp_packet(tuple_n(26, 80), "hdr ... BODY");
  snort.process(wrong_case_body, nullptr);
  EXPECT_EQ(snort.alert_count(), 1u)
      << "the case-sensitive content must still be enforced";
}

TEST(SnortIds, LogRecordsFlowTuple) {
  SnortIds snort{test_rules()};
  net::Packet packet = net::make_tcp_packet(tuple_n(12, 80), "attack");
  snort.process(packet, nullptr);
  ASSERT_EQ(snort.log().size(), 1u);
  EXPECT_EQ(snort.log()[0].tuple, tuple_n(12, 80));
}

}  // namespace
}  // namespace speedybox::nf
