#include "trace/pcap.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "nf/monitor.hpp"
#include "runtime/runner.hpp"
#include "test_helpers.hpp"

namespace speedybox::trace {
namespace {

using speedybox::testing::same_bytes;
using speedybox::testing::tuple_n;

class PcapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("speedybox_pcap_test_" +
              std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name() +
              ".pcap"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(PcapTest, RoundTripPreservesBytes) {
  std::vector<net::Packet> packets;
  packets.push_back(net::make_tcp_packet(tuple_n(1), "first"));
  packets.push_back(net::make_udp_packet(tuple_n(2), "second packet"));
  packets.push_back(net::make_tcp_packet(tuple_n(3), ""));

  write_pcap(path_, packets);
  const auto loaded = read_pcap(path_);
  ASSERT_EQ(loaded.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_TRUE(same_bytes(loaded[i], packets[i])) << "packet " << i;
  }
}

TEST_F(PcapTest, WorkloadExportMatchesMaterialization) {
  const Workload workload = make_uniform_workload(5, 4, 48);
  write_pcap(path_, workload);
  const auto loaded = read_pcap(path_);
  ASSERT_EQ(loaded.size(), workload.packet_count());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_TRUE(same_bytes(loaded[i], workload.materialize(i)));
  }
}

TEST_F(PcapTest, FileHasStandardMagicAndLinkType) {
  write_pcap(path_, std::vector<net::Packet>{
                        net::make_tcp_packet(tuple_n(4), "x")});
  std::ifstream file{path_, std::ios::binary};
  std::uint32_t magic = 0;
  file.read(reinterpret_cast<char*>(&magic), 4);
  EXPECT_EQ(magic, 0xA1B2C3D4u);
  file.seekg(20);
  std::uint32_t network = 0;
  file.read(reinterpret_cast<char*>(&network), 4);
  EXPECT_EQ(network, 1u) << "Ethernet link type";
}

TEST_F(PcapTest, EmptyCaptureRoundTrips) {
  write_pcap(path_, std::vector<net::Packet>{});
  EXPECT_TRUE(read_pcap(path_).empty());
}

TEST_F(PcapTest, RejectsMissingFile) {
  EXPECT_THROW(read_pcap("/nonexistent/definitely_not_here.pcap"),
               std::runtime_error);
}

TEST_F(PcapTest, RejectsBadMagic) {
  std::ofstream file{path_, std::ios::binary};
  const std::uint32_t bogus = 0xDEADBEEF;
  file.write(reinterpret_cast<const char*>(&bogus), 4);
  std::vector<char> padding(20, 0);
  file.write(padding.data(), 20);
  file.close();
  EXPECT_THROW(read_pcap(path_), std::runtime_error);
}

TEST_F(PcapTest, RejectsTruncatedRecord) {
  write_pcap(path_, std::vector<net::Packet>{
                        net::make_tcp_packet(tuple_n(5), "whole")});
  // Chop the last 10 bytes off.
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 10);
  EXPECT_THROW(read_pcap(path_), std::runtime_error);
}

TEST_F(PcapTest, PcapDrivesAChainRun) {
  const Workload workload = make_uniform_workload(6, 5, 40);
  write_pcap(path_, workload);
  const auto packets = read_pcap(path_);

  runtime::ServiceChain chain;
  auto& monitor = chain.emplace_nf<nf::Monitor>();
  runtime::ChainRunner runner{
      chain, {platform::PlatformKind::kBess, /*speedybox=*/true}};
  const auto& stats = runner.run_packets(packets);
  EXPECT_EQ(stats.packets, workload.packet_count());
  EXPECT_EQ(monitor.total_packets(), workload.packet_count());
  EXPECT_EQ(runner.flow_time_us().count(), 6u);
}

}  // namespace
}  // namespace speedybox::trace
