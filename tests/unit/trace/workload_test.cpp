#include "trace/workload.hpp"

#include <set>

#include <gtest/gtest.h>

namespace speedybox::trace {
namespace {

TEST(UniformWorkload, CountsMatch) {
  const Workload workload = make_uniform_workload(5, 10, 64);
  EXPECT_EQ(workload.flows.size(), 5u);
  EXPECT_EQ(workload.packet_count(), 50u);
}

TEST(UniformWorkload, EveryFlowFullyScheduled) {
  const Workload workload = make_uniform_workload(4, 7, 32);
  std::vector<std::set<std::uint32_t>> seqs(4);
  for (const TracePacket& tp : workload.order) {
    EXPECT_TRUE(seqs[tp.flow].insert(tp.seq).second)
        << "duplicate (flow, seq)";
  }
  for (const auto& seq_set : seqs) {
    EXPECT_EQ(seq_set.size(), 7u);
    EXPECT_EQ(*seq_set.begin(), 0u);
    EXPECT_EQ(*seq_set.rbegin(), 6u);
  }
}

TEST(UniformWorkload, PerFlowOrderIsSequential) {
  const Workload workload = make_uniform_workload(3, 20, 16);
  std::vector<std::uint32_t> next(3, 0);
  for (const TracePacket& tp : workload.order) {
    EXPECT_EQ(tp.seq, next[tp.flow]) << "packets of a flow must be in order";
    ++next[tp.flow];
  }
}

TEST(UniformWorkload, SynAndFinFlags) {
  const Workload workload = make_uniform_workload(2, 5, 16);
  for (const TracePacket& tp : workload.order) {
    if (tp.seq == 0) {
      EXPECT_TRUE(tp.tcp_flags & net::kTcpFlagSyn);
    } else if (tp.seq == 4) {
      EXPECT_TRUE(tp.tcp_flags & net::kTcpFlagFin);
    } else {
      EXPECT_EQ(tp.tcp_flags, net::kTcpFlagAck);
    }
  }
}

TEST(UniformWorkload, DeterministicForSeed) {
  const Workload a = make_uniform_workload(4, 6, 16, 99);
  const Workload b = make_uniform_workload(4, 6, 16, 99);
  ASSERT_EQ(a.order.size(), b.order.size());
  for (std::size_t i = 0; i < a.order.size(); ++i) {
    EXPECT_EQ(a.order[i].flow, b.order[i].flow);
    EXPECT_EQ(a.order[i].seq, b.order[i].seq);
  }
}

TEST(UniformWorkload, MaterializePacketsParse) {
  const Workload workload = make_uniform_workload(2, 3, 64);
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    const net::Packet packet = workload.materialize(i);
    const auto parsed = net::parse_packet(packet);
    ASSERT_TRUE(parsed.has_value()) << "packet " << i;
    EXPECT_EQ(net::extract_five_tuple(packet, *parsed),
              workload.flows[workload.order[i].flow].tuple);
  }
}

TEST(DatacenterWorkload, FlowSizesHeavyTailed) {
  DatacenterWorkloadConfig config;
  config.flow_count = 500;
  const Workload workload = make_datacenter_workload(config);
  ASSERT_EQ(workload.flows.size(), 500u);

  std::vector<std::uint32_t> sizes;
  for (const FlowSpec& flow : workload.flows) {
    sizes.push_back(flow.packet_count);
  }
  std::sort(sizes.begin(), sizes.end());
  const std::uint32_t median = sizes[sizes.size() / 2];
  const std::uint32_t p99 = sizes[sizes.size() * 99 / 100];
  EXPECT_GE(median, 2u);
  EXPECT_LE(median, 40u);
  EXPECT_GT(p99, median * 3) << "tail must be heavy";
}

TEST(DatacenterWorkload, TuplesAreUniquePerFlow) {
  DatacenterWorkloadConfig config;
  config.flow_count = 300;
  const Workload workload = make_datacenter_workload(config);
  std::set<std::pair<std::uint64_t, std::uint16_t>> keys;
  for (const FlowSpec& flow : workload.flows) {
    keys.insert({(static_cast<std::uint64_t>(flow.tuple.src_ip.value) << 16) |
                     flow.tuple.src_port,
                 flow.tuple.dst_port});
  }
  // Random collisions are possible but should be rare.
  EXPECT_GT(keys.size(), 290u);
}

TEST(DatacenterWorkload, SourcesInConfiguredPrefix) {
  DatacenterWorkloadConfig config;
  config.flow_count = 100;
  const Workload workload = make_datacenter_workload(config);
  for (const FlowSpec& flow : workload.flows) {
    EXPECT_EQ(flow.tuple.src_ip.value & 0xFFFF0000u,
              config.src_base.value & 0xFFFF0000u);
  }
}

TEST(DatacenterWorkload, InterleavesFlows) {
  DatacenterWorkloadConfig config;
  config.flow_count = 50;
  const Workload workload = make_datacenter_workload(config);
  // Count adjacent pairs from the same flow; a round-robin-ish interleave
  // should make them a small minority.
  std::size_t same_flow_adjacent = 0;
  for (std::size_t i = 1; i < workload.order.size(); ++i) {
    same_flow_adjacent += workload.order[i].flow == workload.order[i - 1].flow;
  }
  EXPECT_LT(same_flow_adjacent, workload.order.size() / 2);
}

TEST(DatacenterWorkload, DeterministicForSeed) {
  DatacenterWorkloadConfig config;
  config.flow_count = 40;
  config.seed = 777;
  const Workload a = make_datacenter_workload(config);
  const Workload b = make_datacenter_workload(config);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].tuple, b.flows[i].tuple);
    EXPECT_EQ(a.flows[i].packet_count, b.flows[i].packet_count);
  }
}

// -- Scenario generators (benchmark matrix, DESIGN.md §11) -------------------

TEST(ElephantMiceWorkload, SkewAndPopulationMatchConfig) {
  ElephantMiceConfig config;
  config.elephant_count = 3;
  config.mice_count = 50;
  config.elephant_packets = 200;
  config.mice_packets = 2;
  const Workload workload = make_elephant_mice_workload(config);
  ASSERT_EQ(workload.flows.size(), 53u);
  std::size_t elephant_packets = 0;
  std::size_t mice_packets = 0;
  for (const FlowSpec& flow : workload.flows) {
    (flow.packet_count >= config.elephant_packets ? elephant_packets
                                                  : mice_packets) +=
        flow.packet_count;
  }
  EXPECT_EQ(elephant_packets, 3u * 200u);
  EXPECT_EQ(mice_packets, 50u * 2u);
  // The elephants carry almost all the traffic — the skew the generator
  // exists to produce.
  EXPECT_GT(elephant_packets, 5u * mice_packets);
  EXPECT_EQ(workload.packet_count(), elephant_packets + mice_packets);
}

TEST(SyncBurstWorkload, BurstsAreContiguousPerFlow) {
  SyncBurstConfig config;
  config.flow_count = 10;
  config.rounds = 4;
  config.burst_len = 5;
  const Workload workload = make_sync_burst_workload(config);
  ASSERT_EQ(workload.packet_count(), 10u * 4u * 5u);
  // The schedule is runs of burst_len packets from one flow.
  for (std::size_t i = 0; i < workload.order.size(); i += config.burst_len) {
    for (std::size_t j = 1; j < config.burst_len; ++j) {
      EXPECT_EQ(workload.order[i + j].flow, workload.order[i].flow)
          << "burst starting at " << i << " is not contiguous";
    }
  }
}

TEST(FlashCrowdWorkload, CrowdFlowsArriveAfterBaselineStarts) {
  FlashCrowdConfig config;
  config.baseline_flows = 8;
  config.baseline_packets = 32;
  config.crowd_flows = 40;
  config.crowd_packets = 3;
  const Workload workload = make_flash_crowd_workload(config);
  ASSERT_EQ(workload.flows.size(), 48u);
  EXPECT_EQ(workload.packet_count(), 8u * 32u + 40u * 3u);
  // First appearance of any crowd flow comes after a baseline-only prefix
  // — the ramp is the point of the scenario.
  std::size_t first_crowd = workload.order.size();
  for (std::size_t i = 0; i < workload.order.size(); ++i) {
    if (workload.order[i].flow >= config.baseline_flows) {
      first_crowd = i;
      break;
    }
  }
  EXPECT_GT(first_crowd, 0u);
  EXPECT_LT(first_crowd, workload.order.size());
}

TEST(SynFloodWorkload, AttackPacketsAllCarrySyn) {
  SynFloodConfig config;
  config.benign_flows = 6;
  config.benign_packets = 8;
  config.attack_flows = 20;
  config.syns_per_attack_flow = 10;
  const Workload workload = make_syn_flood_workload(config);
  ASSERT_EQ(workload.flows.size(), 26u);
  const net::Ipv4Addr victim{10, 1, 0, 1};
  std::size_t attack_packets = 0;
  for (const TracePacket& tp : workload.order) {
    if (tp.flow >= config.benign_flows) {
      ++attack_packets;
      EXPECT_EQ(tp.tcp_flags, net::kTcpFlagSyn)
          << "attack packet without SYN at flow " << tp.flow;
    }
  }
  EXPECT_EQ(attack_packets, 20u * 10u);
  for (std::size_t i = config.benign_flows; i < workload.flows.size(); ++i) {
    EXPECT_EQ(workload.flows[i].tuple.dst_ip.value, victim.value);
    EXPECT_FALSE(workload.flows[i].close_with_fin) << "flood is half-open";
  }
  // Materialized attack packets really parse as SYNs.
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    if (workload.order[i].flow >= config.benign_flows) {
      net::Packet packet = workload.materialize(i);
      const auto parsed = net::parse_packet(packet);
      ASSERT_TRUE(parsed.has_value());
      EXPECT_TRUE(parsed->has_syn());
      break;
    }
  }
}

TEST(NamedScenarios, DispatchCoversAllFourAndRejectsUnknown) {
  const std::vector<std::string> names = named_scenarios();
  ASSERT_EQ(names.size(), 4u);
  for (const std::string& name : names) {
    const auto workload = make_named_scenario(name);
    ASSERT_TRUE(workload.has_value()) << name;
    EXPECT_GT(workload->packet_count(), 0u) << name;
    EXPECT_FALSE(workload->flows.empty()) << name;
  }
  EXPECT_FALSE(make_named_scenario("no-such-scenario").has_value());
}

TEST(NamedScenarios, ScaleShrinksPopulationKeepingShape) {
  ScenarioScale small;
  small.flows = 20;
  const auto scaled = make_named_scenario("elephant-mice", small);
  const auto full = make_named_scenario("elephant-mice");
  ASSERT_TRUE(scaled.has_value());
  ASSERT_TRUE(full.has_value());
  EXPECT_LT(scaled->flows.size(), full->flows.size());
  EXPECT_LE(scaled->flows.size(), 20u + 1u);
}

TEST(ScenarioGenerators, DeterministicForSeed) {
  for (const std::string& name : named_scenarios()) {
    const auto a = make_named_scenario(name);
    const auto b = make_named_scenario(name);
    ASSERT_TRUE(a.has_value() && b.has_value());
    ASSERT_EQ(a->packet_count(), b->packet_count()) << name;
    for (std::size_t i = 0; i < a->order.size(); ++i) {
      ASSERT_EQ(a->order[i].flow, b->order[i].flow) << name << " @" << i;
      ASSERT_EQ(a->order[i].seq, b->order[i].seq) << name << " @" << i;
    }
  }
}

}  // namespace
}  // namespace speedybox::trace
