#include "trace/workload.hpp"

#include <set>

#include <gtest/gtest.h>

namespace speedybox::trace {
namespace {

TEST(UniformWorkload, CountsMatch) {
  const Workload workload = make_uniform_workload(5, 10, 64);
  EXPECT_EQ(workload.flows.size(), 5u);
  EXPECT_EQ(workload.packet_count(), 50u);
}

TEST(UniformWorkload, EveryFlowFullyScheduled) {
  const Workload workload = make_uniform_workload(4, 7, 32);
  std::vector<std::set<std::uint32_t>> seqs(4);
  for (const TracePacket& tp : workload.order) {
    EXPECT_TRUE(seqs[tp.flow].insert(tp.seq).second)
        << "duplicate (flow, seq)";
  }
  for (const auto& seq_set : seqs) {
    EXPECT_EQ(seq_set.size(), 7u);
    EXPECT_EQ(*seq_set.begin(), 0u);
    EXPECT_EQ(*seq_set.rbegin(), 6u);
  }
}

TEST(UniformWorkload, PerFlowOrderIsSequential) {
  const Workload workload = make_uniform_workload(3, 20, 16);
  std::vector<std::uint32_t> next(3, 0);
  for (const TracePacket& tp : workload.order) {
    EXPECT_EQ(tp.seq, next[tp.flow]) << "packets of a flow must be in order";
    ++next[tp.flow];
  }
}

TEST(UniformWorkload, SynAndFinFlags) {
  const Workload workload = make_uniform_workload(2, 5, 16);
  for (const TracePacket& tp : workload.order) {
    if (tp.seq == 0) {
      EXPECT_TRUE(tp.tcp_flags & net::kTcpFlagSyn);
    } else if (tp.seq == 4) {
      EXPECT_TRUE(tp.tcp_flags & net::kTcpFlagFin);
    } else {
      EXPECT_EQ(tp.tcp_flags, net::kTcpFlagAck);
    }
  }
}

TEST(UniformWorkload, DeterministicForSeed) {
  const Workload a = make_uniform_workload(4, 6, 16, 99);
  const Workload b = make_uniform_workload(4, 6, 16, 99);
  ASSERT_EQ(a.order.size(), b.order.size());
  for (std::size_t i = 0; i < a.order.size(); ++i) {
    EXPECT_EQ(a.order[i].flow, b.order[i].flow);
    EXPECT_EQ(a.order[i].seq, b.order[i].seq);
  }
}

TEST(UniformWorkload, MaterializePacketsParse) {
  const Workload workload = make_uniform_workload(2, 3, 64);
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    const net::Packet packet = workload.materialize(i);
    const auto parsed = net::parse_packet(packet);
    ASSERT_TRUE(parsed.has_value()) << "packet " << i;
    EXPECT_EQ(net::extract_five_tuple(packet, *parsed),
              workload.flows[workload.order[i].flow].tuple);
  }
}

TEST(DatacenterWorkload, FlowSizesHeavyTailed) {
  DatacenterWorkloadConfig config;
  config.flow_count = 500;
  const Workload workload = make_datacenter_workload(config);
  ASSERT_EQ(workload.flows.size(), 500u);

  std::vector<std::uint32_t> sizes;
  for (const FlowSpec& flow : workload.flows) {
    sizes.push_back(flow.packet_count);
  }
  std::sort(sizes.begin(), sizes.end());
  const std::uint32_t median = sizes[sizes.size() / 2];
  const std::uint32_t p99 = sizes[sizes.size() * 99 / 100];
  EXPECT_GE(median, 2u);
  EXPECT_LE(median, 40u);
  EXPECT_GT(p99, median * 3) << "tail must be heavy";
}

TEST(DatacenterWorkload, TuplesAreUniquePerFlow) {
  DatacenterWorkloadConfig config;
  config.flow_count = 300;
  const Workload workload = make_datacenter_workload(config);
  std::set<std::pair<std::uint64_t, std::uint16_t>> keys;
  for (const FlowSpec& flow : workload.flows) {
    keys.insert({(static_cast<std::uint64_t>(flow.tuple.src_ip.value) << 16) |
                     flow.tuple.src_port,
                 flow.tuple.dst_port});
  }
  // Random collisions are possible but should be rare.
  EXPECT_GT(keys.size(), 290u);
}

TEST(DatacenterWorkload, SourcesInConfiguredPrefix) {
  DatacenterWorkloadConfig config;
  config.flow_count = 100;
  const Workload workload = make_datacenter_workload(config);
  for (const FlowSpec& flow : workload.flows) {
    EXPECT_EQ(flow.tuple.src_ip.value & 0xFFFF0000u,
              config.src_base.value & 0xFFFF0000u);
  }
}

TEST(DatacenterWorkload, InterleavesFlows) {
  DatacenterWorkloadConfig config;
  config.flow_count = 50;
  const Workload workload = make_datacenter_workload(config);
  // Count adjacent pairs from the same flow; a round-robin-ish interleave
  // should make them a small minority.
  std::size_t same_flow_adjacent = 0;
  for (std::size_t i = 1; i < workload.order.size(); ++i) {
    same_flow_adjacent += workload.order[i].flow == workload.order[i - 1].flow;
  }
  EXPECT_LT(same_flow_adjacent, workload.order.size() / 2);
}

TEST(DatacenterWorkload, DeterministicForSeed) {
  DatacenterWorkloadConfig config;
  config.flow_count = 40;
  config.seed = 777;
  const Workload a = make_datacenter_workload(config);
  const Workload b = make_datacenter_workload(config);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].tuple, b.flows[i].tuple);
    EXPECT_EQ(a.flows[i].packet_count, b.flows[i].packet_count);
  }
}

}  // namespace
}  // namespace speedybox::trace
