#include "trace/payload_synth.hpp"

#include <string>

#include <gtest/gtest.h>

namespace speedybox::trace {
namespace {

bool payload_contains(const FlowSpec& flow, const std::string& needle) {
  const std::string haystack{flow.payload.begin(), flow.payload.end()};
  return haystack.find(needle) != std::string::npos;
}

TEST(PayloadSynth, PlantsAllContentsOfChosenRule) {
  Workload workload = make_uniform_workload(50, 2, 128);
  const auto rules = default_snort_rules();
  PayloadSynthConfig config;
  config.match_fraction = 1.0;  // every flow planted
  const auto planted = plant_rule_contents(workload, rules, config);

  for (std::size_t f = 0; f < workload.flows.size(); ++f) {
    ASSERT_GE(planted[f], 0);
    const auto& rule = rules[static_cast<std::size_t>(planted[f])];
    for (const nf::ContentMatch& content : rule.contents) {
      EXPECT_TRUE(payload_contains(workload.flows[f], content.pattern))
          << "flow " << f << " missing '" << content.pattern << "'";
    }
  }
}

TEST(PayloadSynth, FractionRespected) {
  Workload workload = make_uniform_workload(1000, 1, 128);
  PayloadSynthConfig config;
  config.match_fraction = 0.2;
  const auto planted =
      plant_rule_contents(workload, default_snort_rules(), config);
  std::size_t count = 0;
  for (const auto p : planted) count += p >= 0;
  EXPECT_NEAR(static_cast<double>(count) / 1000.0, 0.2, 0.05);
}

TEST(PayloadSynth, ZeroFractionPlantsNothing) {
  Workload workload = make_uniform_workload(100, 1, 64);
  PayloadSynthConfig config;
  config.match_fraction = 0.0;
  const auto planted =
      plant_rule_contents(workload, default_snort_rules(), config);
  for (const auto p : planted) EXPECT_EQ(p, -1);
}

TEST(PayloadSynth, RoundRobinOverRules) {
  const auto rules = default_snort_rules();
  const int repeats = 10;
  Workload workload =
      make_uniform_workload(rules.size() * repeats, 1, 128);
  PayloadSynthConfig config;
  config.match_fraction = 1.0;
  const auto planted = plant_rule_contents(workload, rules, config);
  std::vector<int> usage(rules.size(), 0);
  for (const auto p : planted) {
    ASSERT_GE(p, 0);
    ++usage[static_cast<std::size_t>(p)];
  }
  for (std::size_t r = 0; r < rules.size(); ++r) {
    EXPECT_EQ(usage[r], repeats) << "rule " << r;
  }
}

TEST(PayloadSynth, GrowsPayloadWhenNeeded) {
  Workload workload = make_uniform_workload(10, 1, 4);  // tiny payloads
  const auto rules = default_snort_rules();
  PayloadSynthConfig config;
  config.match_fraction = 1.0;
  const auto planted = plant_rule_contents(workload, rules, config);
  for (std::size_t f = 0; f < workload.flows.size(); ++f) {
    const auto& rule = rules[static_cast<std::size_t>(planted[f])];
    for (const nf::ContentMatch& content : rule.contents) {
      EXPECT_TRUE(payload_contains(workload.flows[f], content.pattern));
    }
  }
}

TEST(PayloadSynth, EmptyRulesSafe) {
  Workload workload = make_uniform_workload(5, 1, 32);
  PayloadSynthConfig config;
  config.match_fraction = 1.0;
  const auto planted = plant_rule_contents(workload, {}, config);
  for (const auto p : planted) EXPECT_EQ(p, -1);
}

TEST(DefaultSnortRules, CoverAllThreeActions) {
  const auto rules = default_snort_rules();
  bool has_pass = false, has_alert = false, has_log = false;
  for (const auto& rule : rules) {
    has_pass |= rule.action == nf::SnortAction::kPass;
    has_alert |= rule.action == nf::SnortAction::kAlert;
    has_log |= rule.action == nf::SnortAction::kLog;
  }
  EXPECT_TRUE(has_pass);
  EXPECT_TRUE(has_alert);
  EXPECT_TRUE(has_log);
}

}  // namespace
}  // namespace speedybox::trace
