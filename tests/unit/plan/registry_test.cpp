// nf::Registry and NfSpec: token parsing, the library-level name->factory
// lookup, and — per the ISSUE — the error paths: an unknown NF name or a
// malformed option must name the offender and list the valid choices, so a
// typo in --chain or a plan file fails loudly instead of building the wrong
// chain.
#include <gtest/gtest.h>

#include "core/state_function.hpp"
#include "nf/dos_prevention.hpp"
#include "nf/ip_filter.hpp"
#include "nf/maglev_lb.hpp"
#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "nf/registry.hpp"
#include "nf/snort_ids.hpp"

namespace speedybox::nf {
namespace {

/// EXPECT that `expr` throws RegistryError whose message contains every
/// needle — the loud-error contract.
template <typename Fn>
void expect_registry_error(Fn&& fn,
                           std::initializer_list<const char*> needles) {
  try {
    fn();
    FAIL() << "expected RegistryError";
  } catch (const RegistryError& error) {
    const std::string message = error.what();
    for (const char* needle : needles) {
      EXPECT_NE(message.find(needle), std::string::npos)
          << "message \"" << message << "\" lacks \"" << needle << "\"";
    }
  }
}

TEST(NfSpec, ParsesKindAndOptions) {
  const NfSpec spec = NfSpec::parse("maglev:backends=5:port=8000:heavy");
  EXPECT_EQ(spec.kind, "maglev");
  ASSERT_EQ(spec.options.size(), 3u);
  ASSERT_NE(spec.option("backends"), nullptr);
  EXPECT_EQ(*spec.option("backends"), "5");
  ASSERT_NE(spec.option("heavy"), nullptr);
  EXPECT_EQ(*spec.option("heavy"), "");  // value-less flag option
  EXPECT_EQ(spec.option("missing"), nullptr);
  EXPECT_TRUE(spec.has_option("heavy"));
}

TEST(NfSpec, ToStringRoundTrips) {
  for (const char* token :
       {"nat", "maglev:backends=5:table=1021:subnet=10.2.0.10:port=8000",
        "monitor:heavy", "ipfilter:drop-dst-prefix=10.1.3.0/24",
        "synthetic:iterations=100:access=write"}) {
    const NfSpec spec = NfSpec::parse(token);
    EXPECT_EQ(spec.to_string(), token);
    EXPECT_EQ(NfSpec::parse(spec.to_string()), spec);
  }
}

TEST(NfSpec, RejectsMalformedTokens) {
  expect_registry_error([] { NfSpec::parse(""); }, {"empty NF name"});
  expect_registry_error([] { NfSpec::parse(":backends=5"); },
                        {"empty NF name"});
  expect_registry_error([] { NfSpec::parse("maglev:=5"); },
                        {"maglev", "empty option"});
  expect_registry_error(
      [] { NfSpec::parse("maglev:backends=5:backends=9"); },
      {"maglev", "duplicate option 'backends'"});
}

TEST(Registry, UnknownKindListsRegisteredNfs) {
  // The loud-error contract: the message names the offender AND the menu.
  expect_registry_error(
      [] {
        Registry::instance().make(NfSpec::parse("natt"), "x");
      },
      {"unknown NF 'natt'", "registered NFs:", "nat", "maglev", "snort"});
}

TEST(Registry, UnknownOptionListsValidOptions) {
  expect_registry_error(
      [] {
        Registry::instance().make(NfSpec::parse("maglev:bogus=1"), "x");
      },
      {"maglev", "unknown option 'bogus'", "valid options:", "backends",
       "table"});
  expect_registry_error(
      [] { Registry::instance().make(NfSpec::parse("nat:foo=1"), "x"); },
      {"nat", "unknown option 'foo'", "takes no options"});
}

TEST(Registry, MalformedOptionValuesNameTheOffender) {
  expect_registry_error(
      [] {
        Registry::instance().make(NfSpec::parse("maglev:backends=zero"),
                                  "x");
      },
      {"maglev", "backends=zero", "malformed"});
  expect_registry_error(
      [] {
        Registry::instance().make(
            NfSpec::parse("ipfilter:drop-dst-prefix=10.1.3.0"), "x");
      },
      {"ipfilter", "drop-dst-prefix", "A.B.C.D/LEN"});
  expect_registry_error(
      [] {
        Registry::instance().make(NfSpec::parse("synthetic:access=maybe"),
                                  "x");
      },
      {"synthetic", "access=maybe", "read, write or ignore"});
}

TEST(Registry, FactoriesProduceTheExpectedTypes) {
  const Registry& registry = Registry::instance();
  const auto is = [&](const char* token, auto* tag) {
    using Nf = std::remove_pointer_t<decltype(tag)>;
    const auto nf = registry.make(NfSpec::parse(token), "label");
    EXPECT_NE(dynamic_cast<Nf*>(nf.get()), nullptr) << token;
    EXPECT_EQ(nf->name(), "label") << token;
  };
  is("nat", static_cast<MazuNat*>(nullptr));
  is("maglev:backends=5:subnet=10.2.0.10:port=8000:port-stride=1",
     static_cast<MaglevLb*>(nullptr));
  is("monitor", static_cast<Monitor*>(nullptr));
  is("heavymonitor", static_cast<Monitor*>(nullptr));
  is("ipfilter:blacklist=8", static_cast<IpFilter*>(nullptr));
  is("firewall", static_cast<IpFilter*>(nullptr));
  is("snort", static_cast<SnortIds*>(nullptr));
  is("dos:threshold=8", static_cast<DosPrevention*>(nullptr));
}

TEST(Registry, PayloadAccessMatchesTableIMetadata) {
  const Registry& registry = Registry::instance();
  using core::PayloadAccess;
  EXPECT_EQ(registry.payload_access(NfSpec::parse("nat")),
            PayloadAccess::kIgnore);
  EXPECT_EQ(registry.payload_access(NfSpec::parse("monitor")),
            PayloadAccess::kIgnore);
  EXPECT_EQ(registry.payload_access(NfSpec::parse("monitor:heavy")),
            PayloadAccess::kRead);
  EXPECT_EQ(registry.payload_access(NfSpec::parse("snort")),
            PayloadAccess::kRead);
  EXPECT_EQ(registry.payload_access(NfSpec::parse("vpn-out")),
            PayloadAccess::kWrite);
  EXPECT_EQ(registry.payload_access(NfSpec::parse("synthetic:access=write")),
            PayloadAccess::kWrite);
}

TEST(Registry, KindsEnumeratesEveryEntry) {
  const Registry& registry = Registry::instance();
  const std::vector<std::string> kinds = registry.kinds();
  EXPECT_GE(kinds.size(), 10u);
  for (const char* expected :
       {"nat", "maglev", "monitor", "ipfilter", "snort", "dos",
        "synthetic", "vpn-out", "vpn-in"}) {
    EXPECT_TRUE(registry.contains(expected)) << expected;
  }
  EXPECT_FALSE(registry.contains("natt"));
}

}  // namespace
}  // namespace speedybox::nf
