// The deployment-plan layer (runtime/plan.hpp): ChainSpec parsing and
// validation, DeploymentPlan cross-field constraints and strict JSON, the
// canonical §VII-C chain definitions, plan::build()'s executor shapes, and
// the offline planner's consolidation/sharding model (runtime/planner.hpp).
#include <gtest/gtest.h>

#include "nf/maglev_lb.hpp"
#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "nf/snort_ids.hpp"
#include "runtime/plan.hpp"
#include "runtime/planner.hpp"

namespace speedybox::plan {
namespace {

/// EXPECT that `expr` throws (PlanError or RegistryError — both derive
/// from std::runtime_error) with every needle in the message.
template <typename Fn>
void expect_plan_error(Fn&& fn,
                       std::initializer_list<const char*> needles) {
  try {
    fn();
    FAIL() << "expected a plan/registry error";
  } catch (const std::runtime_error& error) {
    const std::string message = error.what();
    for (const char* needle : needles) {
      EXPECT_NE(message.find(needle), std::string::npos)
          << "message \"" << message << "\" lacks \"" << needle << "\"";
    }
  }
}

TEST(ChainSpec, ParseAndToStringRoundTrip) {
  const ChainSpec spec =
      ChainSpec::parse("nat,maglev:backends=5,monitor:heavy", "mychain");
  EXPECT_EQ(spec.name, "mychain");
  ASSERT_EQ(spec.nfs.size(), 3u);
  EXPECT_EQ(spec.nfs[1].kind, "maglev");
  EXPECT_EQ(spec.to_string(), "nat,maglev:backends=5,monitor:heavy");
  EXPECT_EQ(ChainSpec::parse(spec.to_string(), "mychain"), spec);
}

TEST(ChainSpec, RejectsEmptySpecs) {
  expect_plan_error([] { ChainSpec::parse(""); }, {"no NFs"});
  expect_plan_error([] { ChainSpec::parse(",,"); }, {"no NFs"});
}

TEST(ChainSpec, ValidateConsultsTheRegistry) {
  ChainSpec spec = ChainSpec::parse("nat,nosuchnf");
  expect_plan_error([&] { spec.validate(); },
                    {"unknown NF 'nosuchnf'", "registered NFs:"});
  ChainSpec bad_option = ChainSpec::parse("maglev:warp=9");
  expect_plan_error([&] { bad_option.validate(); },
                    {"unknown option 'warp'", "valid options:"});
}

TEST(ChainSpec, JsonRoundTrip) {
  const ChainSpec spec = vii_c_chain1();
  EXPECT_EQ(ChainSpec::from_json(spec.to_json()), spec);
}

TEST(CanonicalChains, BuildTheTwoEvaluationChains) {
  const auto chain1 = build_chain(vii_c_chain1());
  ASSERT_EQ(chain1->size(), 4u);
  EXPECT_EQ(chain1->name(), "chain1_gateway");
  EXPECT_NE(dynamic_cast<nf::MazuNat*>(&chain1->nf(0)), nullptr);
  EXPECT_NE(dynamic_cast<nf::MaglevLb*>(&chain1->nf(1)), nullptr);
  EXPECT_NE(dynamic_cast<nf::Monitor*>(&chain1->nf(2)), nullptr);

  const auto chain2 = build_chain(vii_c_chain2());
  ASSERT_EQ(chain2->size(), 3u);
  EXPECT_NE(dynamic_cast<nf::SnortIds*>(&chain2->nf(1)), nullptr);

  // The heavy bench variants validate too.
  vii_c_chain1_heavy().validate();
  vii_c_chain2_heavy().validate();
}

TEST(CanonicalChains, NfLabelsAreKindDashIndex) {
  const auto chain = build_chain(vii_c_chain2());
  const auto names = chain->nf_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "ipfilter-0");
  EXPECT_EQ(names[1], "snort-1");
  EXPECT_EQ(names[2], "monitor-2");
}

TEST(DeploymentPlan, ValidateEnforcesExecutorModeShardRules) {
  DeploymentPlan plan;
  plan.chain = vii_c_chain2();

  plan.executor = ExecutorKind::kSharded;
  plan.shards = 0;
  expect_plan_error([&] { plan.validate(); }, {"shards"});

  plan.executor = ExecutorKind::kRunner;
  plan.shards = 2;
  expect_plan_error([&] { plan.validate(); },
                    {"shards only applies to the sharded executor"});

  plan.shards = 0;
  plan.executor = ExecutorKind::kPipeline;
  plan.speedybox = false;
  expect_plan_error([&] { plan.validate(); },
                    {"pipeline", "mode must be speedybox"});

  plan.executor = ExecutorKind::kOnvm;
  plan.speedybox = true;
  expect_plan_error([&] { plan.validate(); },
                    {"onvm", "mode must be original"});

  plan.executor = ExecutorKind::kRunner;
  plan.batch_size = 0;
  expect_plan_error([&] { plan.validate(); }, {"batch_size"});
}

TEST(DeploymentPlan, ValidateEnforcesSegmentCoverageAndTableI) {
  DeploymentPlan plan;
  plan.chain = vii_c_chain2();  // 3 NFs
  plan.segments = {{2, false}};
  expect_plan_error([&] { plan.validate(); },
                    {"segments cover 2 NFs", "has 3"});

  plan.segments = {{2, false}, {1, false}};
  plan.validate();  // fused but not parallel: always legal

  // vpn-out WRITEs the payload, snort READs it downstream — Table I
  // forbids claiming that pair parallel.
  plan.chain = ChainSpec::parse("vpn-out,snort,monitor");
  plan.segments = {{2, true}, {1, false}};
  expect_plan_error([&] { plan.validate(); },
                    {"parallel", "vpn-out", "snort", "Table I"});
}

TEST(DeploymentPlan, ValidateChecksFaultTarget) {
  DeploymentPlan plan;
  plan.chain = vii_c_chain2();
  plan.fault = runtime::parse_fault_spec("maglev:fail-every=5");
  ASSERT_TRUE(plan.fault.has_value());
  expect_plan_error([&] { plan.validate(); },
                    {"fault target 'maglev'", "not in the chain"});
  plan.fault = runtime::parse_fault_spec("snort:fail-every=5");
  plan.validate();
}

TEST(DeploymentPlan, JsonRoundTripsEveryField) {
  DeploymentPlan plan;
  plan.chain = vii_c_chain1();
  plan.executor = ExecutorKind::kSharded;
  plan.speedybox = true;
  plan.platform = platform::PlatformKind::kOnvm;
  plan.batch_size = 64;
  plan.shards = 4;
  plan.ring_capacity = 2048;
  plan.segments = {{2, true}, {2, false}};
  plan.overload.enabled = true;
  plan.overload.offered_load = 2.5;
  plan.overload.policy = runtime::DropPolicy::kSloEarlyDrop;
  plan.overload.queue_capacity = 512;
  plan.fault = runtime::parse_fault_spec("nat:fail-every=7");
  plan.predicted_cycles_per_packet = 1234.5;
  plan.target_rate_mpps = 2.0;

  const DeploymentPlan reparsed = DeploymentPlan::parse(plan.dump());
  EXPECT_EQ(reparsed, plan);  // == compares dump()
  EXPECT_EQ(reparsed.shards, 4u);
  EXPECT_EQ(reparsed.segments, plan.segments);
  EXPECT_TRUE(reparsed.overload.enabled);
  EXPECT_EQ(reparsed.overload.queue_capacity, 512u);
  ASSERT_TRUE(reparsed.fault.has_value());
  EXPECT_EQ(reparsed.fault->first, "nat");
}

TEST(DeploymentPlan, StrictJsonRejectsUnknownAndMalformedFields) {
  const auto parse = [](const char* text) {
    return DeploymentPlan::parse(text);
  };
  expect_plan_error([&] { parse("{"); }, {"not valid JSON"});
  expect_plan_error([&] { parse("{}"); }, {"missing field 'chain'"});
  expect_plan_error(
      [&] {
        parse(R"({"chain":{"name":"c","nfs":["nat"]},"typo_knob":1})");
      },
      {"unknown field 'typo_knob'"});
  expect_plan_error(
      [&] {
        parse(R"({"version":2,"chain":{"name":"c","nfs":["nat"]}})");
      },
      {"unsupported plan version 2"});
  expect_plan_error(
      [&] {
        parse(R"({"chain":{"name":"c","nfs":["nat"]},"executor":"warp"})");
      },
      {"executor", "runner, sharded, pipeline or onvm"});
  expect_plan_error(
      [&] { parse(R"({"chain":{"name":"c","nfs":[]}})"); },
      {"chain.nfs", "non-empty"});
  expect_plan_error(
      [&] {
        parse(R"({"chain":{"name":"c","nfs":["nat"]},"overload":)"
              R"({"policy":"yolo"}})");
      },
      {"overload.policy"});
}

TEST(Build, ConstructsEveryExecutorShape) {
  DeploymentPlan plan;
  plan.chain = vii_c_chain2();

  plan.executor = ExecutorKind::kRunner;
  EXPECT_EQ(build(plan).executor->kind(), "runner");

  plan.executor = ExecutorKind::kSharded;
  plan.shards = 2;
  EXPECT_EQ(build(plan).executor->kind(), "sharded");
  plan.shards = 0;

  plan.executor = ExecutorKind::kPipeline;
  EXPECT_EQ(build(plan).executor->kind(), "pipeline");

  plan.executor = ExecutorKind::kOnvm;
  plan.speedybox = false;
  EXPECT_EQ(build(plan).executor->kind(), "onvm");
}

TEST(Build, RejectsInvalidPlansBeforeConstructing) {
  DeploymentPlan plan;
  plan.chain = ChainSpec::parse("nat,nosuchnf");
  expect_plan_error([&] { build(plan); }, {"unknown NF 'nosuchnf'"});
}

// --- Planner ---------------------------------------------------------------

Profile profile_of(std::initializer_list<std::pair<const char*, double>>
                       entries) {
  Profile profile;
  for (const auto& [name, cycles] : entries) {
    profile.per_nf.push_back({name, 1000, cycles, cycles});
  }
  return profile;
}

TEST(Planner, FusesParallelizableRunsAndModelsMaxCost) {
  // ipfilter (ignore), snort (read), monitor (ignore): all pairwise
  // parallelizable -> ONE parallel segment costing its bottleneck member
  // plus one hop.
  PlannerConfig config;
  config.target_mpps = 0.001;  // trivially met: stay single-core
  config.cpu_ghz = 3.0;
  config.hop_cycles = 60.0;
  PlanRationale rationale;
  const DeploymentPlan plan = plan_deployment(
      ChainSpec::parse("ipfilter,snort,monitor"),
      profile_of({{"ipfilter-0", 100.0}, {"snort-1", 1000.0},
                  {"monitor-2", 200.0}}),
      config, &rationale);

  ASSERT_EQ(plan.segments.size(), 1u);
  EXPECT_EQ(plan.segments[0].nf_count, 3u);
  EXPECT_TRUE(plan.segments[0].parallel);
  EXPECT_DOUBLE_EQ(rationale.predicted_cycles_per_packet, 1000.0 + 60.0);
  EXPECT_EQ(plan.executor, ExecutorKind::kRunner);
  EXPECT_EQ(plan.shards, 0u);
  EXPECT_TRUE(plan.speedybox);
  plan.validate();
}

TEST(Planner, SplitsSegmentsAtTableIViolations) {
  // ipfilter(ignore) + vpn-out(write) fuse (an earlier ignore never
  // blocks); snort READs behind vpn-out's WRITE -> new segment.
  PlannerConfig config;
  config.target_mpps = 0.001;
  config.cpu_ghz = 3.0;
  PlanRationale rationale;
  const DeploymentPlan plan = plan_deployment(
      ChainSpec::parse("ipfilter,vpn-out,snort"),
      profile_of({{"ipfilter-0", 100.0}, {"vpn-out-1", 300.0},
                  {"snort-2", 1000.0}}),
      config, &rationale);

  ASSERT_EQ(plan.segments.size(), 2u);
  EXPECT_EQ(plan.segments[0].nf_count, 2u);
  EXPECT_TRUE(plan.segments[0].parallel);
  EXPECT_EQ(plan.segments[1].nf_count, 1u);
  // max(100, 300) + hop  +  1000 + hop
  EXPECT_DOUBLE_EQ(rationale.predicted_cycles_per_packet,
                   300.0 + 60.0 + 1000.0 + 60.0);
  plan.validate();
}

TEST(Planner, ShardsWhenOneCoreCannotMeetTheTarget) {
  // 3 GHz over ~1060 cycles/pkt ≈ 2.83 Mpps/core; a 10 Mpps target needs
  // ceil(10 / 2.83) = 4 shards.
  PlannerConfig config;
  config.target_mpps = 10.0;
  config.cpu_ghz = 3.0;
  config.max_shards = 8;
  PlanRationale rationale;
  const DeploymentPlan plan = plan_deployment(
      ChainSpec::parse("ipfilter,snort,monitor"),
      profile_of({{"ipfilter-0", 100.0}, {"snort-1", 1000.0},
                  {"monitor-2", 200.0}}),
      config, &rationale);

  EXPECT_EQ(plan.executor, ExecutorKind::kSharded);
  EXPECT_EQ(plan.shards, 4u);
  EXPECT_EQ(rationale.shards, 4u);
  EXPECT_NEAR(rationale.predicted_single_core_mpps, 3000.0 / 1060.0, 1e-9);
  EXPECT_DOUBLE_EQ(plan.target_rate_mpps, 10.0);
  plan.validate();

  // An absurd target clamps at max_shards instead of exploding.
  config.target_mpps = 1e6;
  const DeploymentPlan capped = plan_deployment(
      ChainSpec::parse("ipfilter,snort,monitor"),
      profile_of({{"snort-1", 1000.0}}), config, nullptr);
  EXPECT_EQ(capped.shards, config.max_shards);
}

TEST(Planner, UnprofiledNfsFallBackToDefaultCycles) {
  PlannerConfig config;
  config.target_mpps = 0.001;
  config.cpu_ghz = 3.0;
  config.default_nf_cycles = 500.0;
  PlanRationale rationale;
  plan_deployment(ChainSpec::parse("ipfilter,snort"),
                  profile_of({{"snort-1", 2000.0}}), config, &rationale);
  ASSERT_EQ(rationale.nf_cycles.size(), 2u);
  EXPECT_FALSE(rationale.nf_profiled[0]);
  EXPECT_DOUBLE_EQ(rationale.nf_cycles[0], 500.0);
  EXPECT_TRUE(rationale.nf_profiled[1]);
  EXPECT_DOUBLE_EQ(rationale.nf_cycles[1], 2000.0);
}

TEST(PlannerProfile, FromJsonlReadsTheLastLineAndFailsLoudly) {
  const char* jsonl =
      "{\"aggregate\":{\"per_nf\":[{\"nf\":\"snort-1\",\"packets\":10,"
      "\"cycles\":{\"count\":10,\"mean\":900.0,\"p95\":1000.0}}]}}\n"
      "{\"aggregate\":{\"per_nf\":[{\"nf\":\"snort-1\",\"packets\":20,"
      "\"cycles\":{\"count\":20,\"mean\":1100.0,\"p95\":1200.0}}]}}\n";
  const Profile profile = Profile::from_jsonl(jsonl);
  const NfProfile* snort = profile.find("snort-1");
  ASSERT_NE(snort, nullptr);
  EXPECT_EQ(snort->packets, 20u);  // LAST line wins (cumulative counters)
  EXPECT_DOUBLE_EQ(snort->mean_cycles, 1100.0);

  expect_plan_error([] { Profile::from_jsonl(""); }, {"empty"});
  expect_plan_error([] { Profile::from_jsonl("{\"no\":\"per_nf\"}"); },
                    {"--metrics-out"});
}

}  // namespace
}  // namespace speedybox::plan
