// EventLoop reactor semantics: dispatch, timeout, cross-thread stop
// wakeup, and the self-removal case (a callback removing its own fd
// mid-dispatch — the TCP connection-close path).
#include "io/event_loop.hpp"

#include <gtest/gtest.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <chrono>
#include <thread>

namespace speedybox::io {
namespace {

struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
  Pipe() {
    int fds[2];
    EXPECT_EQ(pipe(fds), 0);
    read_fd = fds[0];
    write_fd = fds[1];
  }
  ~Pipe() {
    close(read_fd);
    close(write_fd);
  }
  void poke() const { EXPECT_EQ(write(write_fd, "x", 1), 1); }
  void drain() const {
    char buffer[16];
    EXPECT_GT(read(read_fd, buffer, sizeof buffer), 0);
  }
};

TEST(EventLoop, DispatchesReadableFd) {
  EventLoop loop;
  Pipe pipe;
  int hits = 0;
  loop.add(pipe.read_fd, EPOLLIN, [&](std::uint32_t) {
    ++hits;
    pipe.drain();
  });
  pipe.poke();
  EXPECT_EQ(loop.poll_once(1000), 1);
  EXPECT_EQ(hits, 1);
  loop.remove(pipe.read_fd);
}

TEST(EventLoop, TimeoutReturnsZero) {
  EventLoop loop;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(loop.poll_once(30), 0);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
}

TEST(EventLoop, StopFromAnotherThreadWakesBlockedPoll) {
  EventLoop loop;
  std::thread stopper([&loop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    loop.stop();
  });
  // Would block 10 s without the eventfd wakeup.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(loop.poll_once(10000), -1);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  stopper.join();
  EXPECT_EQ(loop.poll_once(0), -1);  // stop is sticky
}

TEST(EventLoop, CallbackMayRemoveItsOwnFd) {
  // The connection-close path: the drain callback removes the very fd
  // being dispatched. The loop must invoke a copy, or the erase destroys
  // the std::function mid-call.
  EventLoop loop;
  Pipe pipe;
  int hits = 0;
  loop.add(pipe.read_fd, EPOLLIN, [&](std::uint32_t) {
    ++hits;
    pipe.drain();
    loop.remove(pipe.read_fd);
  });
  pipe.poke();
  EXPECT_EQ(loop.poll_once(1000), 1);
  EXPECT_EQ(hits, 1);
  pipe.poke();  // no longer registered: nothing dispatches
  EXPECT_EQ(loop.poll_once(20), 0);
}

TEST(EventLoop, CallbackMayRemoveAnotherPendingFd) {
  // Both pipes readable in one epoll batch; the first callback removes the
  // second fd. The loop must re-look-up per event, not dispatch stale
  // entries.
  EventLoop loop;
  Pipe a;
  Pipe b;
  int a_hits = 0;
  int b_hits = 0;
  loop.add(a.read_fd, EPOLLIN, [&](std::uint32_t) {
    ++a_hits;
    a.drain();
    loop.remove(b.read_fd);
  });
  loop.add(b.read_fd, EPOLLIN, [&](std::uint32_t) {
    ++b_hits;
    b.drain();
    loop.remove(a.read_fd);
  });
  a.poke();
  b.poke();
  EXPECT_EQ(loop.poll_once(1000), 1);  // exactly one side wins
  EXPECT_EQ(a_hits + b_hits, 1);
}

TEST(EventLoop, LevelTriggeredRedeliversUndrainedData) {
  EventLoop loop;
  Pipe pipe;
  int hits = 0;
  loop.add(pipe.read_fd, EPOLLIN, [&](std::uint32_t) { ++hits; });
  pipe.poke();
  EXPECT_EQ(loop.poll_once(1000), 1);
  // Data was not drained: level-triggered epoll re-reports immediately.
  EXPECT_EQ(loop.poll_once(1000), 1);
  EXPECT_EQ(hits, 2);
  loop.remove(pipe.read_fd);
}

}  // namespace
}  // namespace speedybox::io
