// Wire-frame validation: every malformed shape decode_frame rejects, the
// Ethernet-padding trim, and a deterministic fuzz sweep (random bytes and
// random mutations of valid frames) proving the parser never crashes or
// accepts garbage — the suite runs under ASan in tools/run_sanitizers.sh.
#include "io/frame.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/byte_order.hpp"
#include "net/packet_builder.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace speedybox::io {
namespace {

using speedybox::testing::same_bytes;
using speedybox::testing::tuple_n;

std::vector<std::uint8_t> valid_frame_bytes(std::uint32_t flow = 1) {
  const net::Packet packet = net::make_tcp_packet(tuple_n(flow), "payload");
  return {packet.bytes().begin(), packet.bytes().end()};
}

TEST(DecodeFrame, ValidTcpFrameRoundTrips) {
  const std::vector<std::uint8_t> bytes = valid_frame_bytes();
  net::Packet out;
  ASSERT_EQ(decode_frame(bytes, out), FrameError::kOk);
  EXPECT_EQ(out.bytes().size(), bytes.size());
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), out.bytes().begin()));
  EXPECT_FALSE(out.dropped());
}

TEST(DecodeFrame, ValidUdpFrameRoundTrips) {
  net::FiveTuple tuple = tuple_n(2);
  tuple.proto = static_cast<std::uint8_t>(net::IpProto::kUdp);
  const net::Packet packet = net::make_udp_packet(tuple, "data");
  net::Packet out;
  EXPECT_EQ(decode_frame(packet.bytes(), out), FrameError::kOk);
  EXPECT_TRUE(same_bytes(packet, out));
}

TEST(DecodeFrame, EthernetPaddingIsTrimmed) {
  // A 64-byte-min Ethernet frame pads short datagrams; the decoder must
  // hand downstream exactly the declared IPv4 datagram.
  std::vector<std::uint8_t> bytes = valid_frame_bytes();
  const std::size_t declared = bytes.size();
  bytes.insert(bytes.end(), 18, 0x00);  // trailer padding
  net::Packet out;
  ASSERT_EQ(decode_frame(bytes, out), FrameError::kOk);
  EXPECT_EQ(out.bytes().size(), declared);
}

TEST(DecodeFrame, RejectsRunt) {
  const std::vector<std::uint8_t> bytes(net::kEthHeaderLen + 4, 0xAB);
  net::Packet out;
  EXPECT_EQ(decode_frame(bytes, out), FrameError::kRunt);
}

TEST(DecodeFrame, RejectsOversize) {
  const std::vector<std::uint8_t> bytes(kMaxFrameBytes + 1, 0);
  net::Packet out;
  EXPECT_EQ(decode_frame(bytes, out), FrameError::kOversize);
}

TEST(DecodeFrame, RejectsNonIpv4EtherType) {
  std::vector<std::uint8_t> bytes = valid_frame_bytes();
  bytes[12] = 0x86;  // 0x86DD = IPv6
  bytes[13] = 0xDD;
  net::Packet out;
  EXPECT_EQ(decode_frame(bytes, out), FrameError::kBadEtherType);
}

TEST(DecodeFrame, RejectsBadIpVersion) {
  std::vector<std::uint8_t> bytes = valid_frame_bytes();
  bytes[net::kEthHeaderLen] =
      static_cast<std::uint8_t>(0x60 | (bytes[net::kEthHeaderLen] & 0x0F));
  net::Packet out;
  EXPECT_EQ(decode_frame(bytes, out), FrameError::kBadIpVersion);
}

TEST(DecodeFrame, RejectsShortIhl) {
  std::vector<std::uint8_t> bytes = valid_frame_bytes();
  bytes[net::kEthHeaderLen] = 0x44;  // IHL=4 -> 16 bytes < minimum 20
  net::Packet out;
  EXPECT_EQ(decode_frame(bytes, out), FrameError::kBadIhl);
}

TEST(DecodeFrame, RejectsIhlPastFrameEnd) {
  std::vector<std::uint8_t> bytes = valid_frame_bytes();
  bytes[net::kEthHeaderLen] = 0x4F;  // IHL=15 -> 60-byte header
  bytes.resize(net::kEthHeaderLen + 40);
  net::Packet out;
  EXPECT_EQ(decode_frame(bytes, out), FrameError::kBadIhl);
}

TEST(DecodeFrame, RejectsDeclaredLengthBeyondWire) {
  // total_length says more payload than was actually received — the shape
  // that makes a trusting NF read past the buffer.
  std::vector<std::uint8_t> bytes = valid_frame_bytes();
  const std::size_t l3 = net::kEthHeaderLen;
  const std::uint16_t declared =
      static_cast<std::uint16_t>(bytes.size() - l3 + 100);
  bytes[l3 + 2] = static_cast<std::uint8_t>(declared >> 8);
  bytes[l3 + 3] = static_cast<std::uint8_t>(declared);
  net::Packet out;
  EXPECT_EQ(decode_frame(bytes, out), FrameError::kBadLength);
}

TEST(DecodeFrame, RejectsLengthShorterThanHeader) {
  std::vector<std::uint8_t> bytes = valid_frame_bytes();
  const std::size_t l3 = net::kEthHeaderLen;
  bytes[l3 + 2] = 0;
  bytes[l3 + 3] = 8;  // total_length 8 < IHL 20
  net::Packet out;
  EXPECT_EQ(decode_frame(bytes, out), FrameError::kBadLength);
}

TEST(DecodeFrame, RejectsTruncatedL4) {
  // Valid Ethernet+IPv4 declaring TCP, but the declared datagram ends
  // mid-TCP-header.
  std::vector<std::uint8_t> bytes = valid_frame_bytes();
  const std::size_t l3 = net::kEthHeaderLen;
  const std::uint16_t short_len = 20 + 6;  // IPv4 header + 6 TCP bytes
  bytes[l3 + 2] = static_cast<std::uint8_t>(short_len >> 8);
  bytes[l3 + 3] = static_cast<std::uint8_t>(short_len);
  bytes.resize(l3 + short_len);
  net::Packet out;
  EXPECT_EQ(decode_frame(bytes, out), FrameError::kTruncatedL4);
}

TEST(DecodeFrame, ErrorLeavesOutputUntouched) {
  const std::vector<std::uint8_t> good = valid_frame_bytes(7);
  net::Packet out;
  ASSERT_EQ(decode_frame(good, out), FrameError::kOk);
  const std::vector<std::uint8_t> runt(10, 0xFF);
  EXPECT_EQ(decode_frame(runt, out), FrameError::kRunt);
  EXPECT_TRUE(std::equal(good.begin(), good.end(), out.bytes().begin()));
}

// -- fuzz sweeps -------------------------------------------------------------

TEST(DecodeFrameFuzz, RandomBytesNeverCrash) {
  util::Rng rng{0xF022ED};
  int accepted = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    const std::size_t size = rng.below(200);
    std::vector<std::uint8_t> bytes(size);
    for (std::uint8_t& byte : bytes) {
      byte = static_cast<std::uint8_t>(rng());
    }
    net::Packet out;
    if (decode_frame(bytes, out) == FrameError::kOk) {
      ++accepted;
      // Whatever survives must be a parseable packet.
      EXPECT_TRUE(net::parse_packet(out).has_value());
    }
  }
  // Pure noise essentially never passes the EtherType + version + length
  // + checksum-free structural gauntlet.
  EXPECT_LT(accepted, 5);
}

TEST(DecodeFrameFuzz, MutatedValidFramesNeverCrash) {
  util::Rng rng{0xBADF00D};
  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<std::uint8_t> bytes = valid_frame_bytes(
        static_cast<std::uint32_t>(rng.below(16)));
    // Corrupt 1-8 random bytes, sometimes truncate, sometimes extend.
    const std::size_t flips = 1 + rng.below(8);
    for (std::size_t f = 0; f < flips; ++f) {
      bytes[rng.below(bytes.size())] = static_cast<std::uint8_t>(rng());
    }
    if (rng.below(4) == 0) bytes.resize(rng.below(bytes.size() + 1));
    if (rng.below(8) == 0) bytes.insert(bytes.end(), rng.below(64), 0x5A);
    net::Packet out;
    const FrameError error = decode_frame(bytes, out);
    if (error == FrameError::kOk) {
      EXPECT_TRUE(net::parse_packet(out).has_value());
    }
  }
}

// -- TCP stream framing ------------------------------------------------------

TEST(StreamFramer, ReassemblesAcrossArbitrarySplits) {
  std::vector<std::uint8_t> stream;
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::uint32_t i = 0; i < 5; ++i) {
    frames.push_back(valid_frame_bytes(i));
    append_framed(stream, frames.back());
  }
  // Feed in 7-byte slivers — every length prefix and frame body straddles
  // a feed boundary somewhere.
  StreamFramer framer;
  std::vector<std::vector<std::uint8_t>> got;
  for (std::size_t offset = 0; offset < stream.size(); offset += 7) {
    const std::size_t chunk = std::min<std::size_t>(7, stream.size() - offset);
    framer.feed(std::span<const std::uint8_t>(stream.data() + offset, chunk));
    while (auto frame = framer.next()) got.push_back(*frame);
  }
  ASSERT_EQ(got.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(got[i], frames[i]) << "frame " << i;
  }
  EXPECT_EQ(framer.buffered(), 0u);
}

TEST(StreamFramer, OversizePrefixPoisons) {
  StreamFramer framer;
  const std::vector<std::uint8_t> evil = {0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3};
  framer.feed(evil);
  EXPECT_FALSE(framer.next().has_value());
  EXPECT_TRUE(framer.poisoned());
  // Nothing ever comes out again, even valid framed data.
  std::vector<std::uint8_t> stream;
  append_framed(stream, valid_frame_bytes());
  framer.feed(stream);
  EXPECT_FALSE(framer.next().has_value());
}

TEST(StreamFramer, ZeroLengthPrefixPoisons) {
  StreamFramer framer;
  framer.feed(std::vector<std::uint8_t>{0, 0, 0, 0});
  EXPECT_FALSE(framer.next().has_value());
  EXPECT_TRUE(framer.poisoned());
}

TEST(StreamFramer, PartialFrameStaysBuffered) {
  std::vector<std::uint8_t> stream;
  const std::vector<std::uint8_t> frame = valid_frame_bytes();
  append_framed(stream, frame);
  StreamFramer framer;
  framer.feed(std::span<const std::uint8_t>(stream.data(), stream.size() - 1));
  EXPECT_FALSE(framer.next().has_value());
  EXPECT_GT(framer.buffered(), 0u);
  framer.feed(std::span<const std::uint8_t>(stream.data() + stream.size() - 1,
                                            1));
  const auto got = framer.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, frame);
}

}  // namespace
}  // namespace speedybox::io
