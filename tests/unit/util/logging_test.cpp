#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace speedybox::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, FormatLogBasic) {
  EXPECT_EQ(format_log("x=%d y=%s", 42, "abc"), "x=42 y=abc");
}

TEST_F(LoggingTest, FormatLogEmpty) {
  EXPECT_EQ(format_log("%s", ""), "");
}

TEST_F(LoggingTest, FormatLogLongString) {
  const std::string big(5000, 'z');
  EXPECT_EQ(format_log("%s", big.c_str()), big);
}

TEST_F(LoggingTest, MacroSkipsBelowLevel) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  const auto expensive = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  SB_LOG_DEBUG("test", "value=%d", expensive());
  EXPECT_EQ(evaluations, 0) << "disabled log must not evaluate arguments";
}

TEST_F(LoggingTest, MacroEvaluatesAtOrAboveLevel) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  const auto counted = [&evaluations]() {
    ++evaluations;
    return 7;
  };
  SB_LOG_ERROR("test", "value=%d", counted());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace speedybox::util
