#include "util/hash.hpp"

#include <array>
#include <set>

#include <gtest/gtest.h>

namespace speedybox::util {
namespace {

TEST(Fnv1a, KnownVector) {
  // FNV-1a 64-bit of "a" is 0xAF63DC4C8601EC8C.
  EXPECT_EQ(fnv1a(std::string_view{"a"}), 0xAF63DC4C8601EC8CULL);
}

TEST(Fnv1a, EmptyIsOffsetBasis) {
  EXPECT_EQ(fnv1a(std::string_view{}), 0xCBF29CE484222325ULL);
}

TEST(Fnv1a, ByteSpanMatchesStringView) {
  const std::array<std::uint8_t, 3> bytes{'f', 'o', 'o'};
  EXPECT_EQ(fnv1a(std::span<const std::uint8_t>{bytes}),
            fnv1a(std::string_view{"foo"}));
}

TEST(Fnv1a, SensitiveToOrder) {
  EXPECT_NE(fnv1a(std::string_view{"ab"}), fnv1a(std::string_view{"ba"}));
}

TEST(Mix64, BijectiveOnSamples) {
  // mix64 is a bijection; distinct inputs must produce distinct outputs.
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Mix64, AvalanchesLowBits) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  for (std::uint64_t i = 1; i <= 64; ++i) {
    total_flips += __builtin_popcountll(mix64(i) ^ mix64(i ^ 1));
  }
  const double mean_flips = total_flips / 64.0;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

TEST(HashCombine, OrderMatters) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

TEST(HashCombine, Deterministic) {
  EXPECT_EQ(hash_combine(42, 7), hash_combine(42, 7));
}

}  // namespace
}  // namespace speedybox::util
