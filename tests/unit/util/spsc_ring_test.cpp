#include "util/spsc_ring.hpp"

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace speedybox::util {
namespace {

TEST(SpscRing, PushPopSingleThread) {
  SpscRing<int> ring{8};
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.try_pop().value(), 1);
  EXPECT_EQ(ring.try_pop().value(), 2);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring{5};
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRing, FullRejectsPush) {
  SpscRing<int> ring{4};
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.try_pop().value(), 0);
  EXPECT_TRUE(ring.try_push(99));  // slot freed
}

TEST(SpscRing, FifoOrderAcrossWrap) {
  SpscRing<int> ring{4};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.try_push(round * 3 + i));
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(ring.try_pop().value(), round * 3 + i);
    }
  }
}

TEST(SpscRing, MoveOnlyElements) {
  SpscRing<std::unique_ptr<int>> ring{4};
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(42)));
  auto popped = ring.try_pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(**popped, 42);
}

TEST(SpscRing, TwoThreadStress) {
  constexpr int kCount = 200000;
  SpscRing<int> ring{256};
  std::uint64_t consumer_sum = 0;
  int consumed = 0;

  std::thread consumer([&] {
    while (consumed < kCount) {
      if (auto value = ring.try_pop()) {
        consumer_sum += static_cast<std::uint64_t>(*value);
        ++consumed;
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (int i = 0; i < kCount; ++i) {
    while (!ring.try_push(i)) std::this_thread::yield();
  }
  consumer.join();

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kCount) * (kCount - 1) / 2;
  EXPECT_EQ(consumer_sum, expected);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PreservesOrderUnderConcurrency) {
  constexpr int kCount = 50000;
  SpscRing<int> ring{64};
  bool ordered = true;

  std::thread consumer([&] {
    int expected = 0;
    while (expected < kCount) {
      if (auto value = ring.try_pop()) {
        if (*value != expected) ordered = false;
        ++expected;
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (int i = 0; i < kCount; ++i) {
    while (!ring.try_push(i)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_TRUE(ordered);
}

}  // namespace
}  // namespace speedybox::util
