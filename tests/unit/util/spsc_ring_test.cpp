#include "util/spsc_ring.hpp"

#include <limits>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace speedybox::util {
namespace {

TEST(SpscRing, PushPopSingleThread) {
  SpscRing<int> ring{8};
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.try_pop().value(), 1);
  EXPECT_EQ(ring.try_pop().value(), 2);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring{5};
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRing, FullRejectsPush) {
  SpscRing<int> ring{4};
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.try_pop().value(), 0);
  EXPECT_TRUE(ring.try_push(99));  // slot freed
}

TEST(SpscRing, FifoOrderAcrossWrap) {
  SpscRing<int> ring{4};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.try_push(round * 3 + i));
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(ring.try_pop().value(), round * 3 + i);
    }
  }
}

TEST(SpscRing, MoveOnlyElements) {
  SpscRing<std::unique_ptr<int>> ring{4};
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(42)));
  auto popped = ring.try_pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(**popped, 42);
}

TEST(SpscRing, FailedPushDoesNotConsumeTheValue) {
  // The backpressure pattern `while (!ring.try_push(std::move(v)))` is only
  // correct if a rejected push leaves `v` untouched — a moved-from retry
  // would enqueue a hollowed value once a slot frees up.
  SpscRing<std::unique_ptr<int>> ring{2};
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(0)));
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(1)));
  auto value = std::make_unique<int>(2);
  ASSERT_FALSE(ring.try_push(std::move(value)));
  ASSERT_NE(value, nullptr) << "rejected push must not consume the value";
  EXPECT_EQ(*value, 2);
  ring.try_pop();
  ASSERT_TRUE(ring.try_push(std::move(value)));
  EXPECT_EQ(value, nullptr);
  EXPECT_EQ(**ring.try_pop(), 1);
  EXPECT_EQ(**ring.try_pop(), 2);
}

TEST(SpscRing, IndexWraparoundSingleThread) {
  // Seed the cursors just below SIZE_MAX so head/tail overflow mid-test:
  // the full/empty checks use unsigned difference arithmetic and must not
  // care that head numerically < tail after the wrap.
  const std::size_t start = std::numeric_limits<std::size_t>::max() - 5;
  SpscRing<int> ring{4, start};
  EXPECT_TRUE(ring.empty());
  int next_push = 0;
  int next_pop = 0;
  // 16 > 6 remaining pre-wrap indices: both cursors cross the boundary.
  for (int round = 0; round < 16; ++round) {
    ASSERT_TRUE(ring.try_push(next_push++));
    ASSERT_TRUE(ring.try_push(next_push++));
    ASSERT_EQ(ring.size(), 2u);
    ASSERT_EQ(ring.try_pop().value(), next_pop++);
    ASSERT_EQ(ring.try_pop().value(), next_pop++);
    ASSERT_TRUE(ring.empty());
  }
}

TEST(SpscRing, FullDetectionAcrossWraparound) {
  const std::size_t start = std::numeric_limits<std::size_t>::max() - 1;
  SpscRing<int> ring{4};
  SpscRing<int> wrapped{4, start};
  // Identical behavior regardless of where the index space starts.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_push(i));
    ASSERT_TRUE(wrapped.try_push(i));
  }
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_FALSE(wrapped.try_push(99));
  EXPECT_EQ(wrapped.try_pop().value(), 0);
  EXPECT_TRUE(wrapped.try_push(99));
  for (const int expected : {1, 2, 3, 99}) {
    EXPECT_EQ(wrapped.try_pop().value(), expected);
  }
}

TEST(SpscRing, TwoThreadStressAcrossWraparound) {
  constexpr int kCount = 100000;
  // Cursors overflow ~100 pushes in; FIFO order and the sum must survive
  // the boundary under real concurrency.
  const std::size_t start = std::numeric_limits<std::size_t>::max() - 100;
  SpscRing<int> ring{64, start};
  bool ordered = true;
  std::uint64_t consumer_sum = 0;

  std::thread consumer([&] {
    int expected = 0;
    while (expected < kCount) {
      if (auto value = ring.try_pop()) {
        if (*value != expected) ordered = false;
        consumer_sum += static_cast<std::uint64_t>(*value);
        ++expected;
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (int i = 0; i < kCount; ++i) {
    while (!ring.try_push(i)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(consumer_sum,
            static_cast<std::uint64_t>(kCount) * (kCount - 1) / 2);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, TwoThreadMoveOnlyStress) {
  constexpr int kCount = 20000;
  SpscRing<std::unique_ptr<int>> ring{32};
  std::uint64_t consumer_sum = 0;
  int null_values = 0;

  std::thread consumer([&] {
    int consumed = 0;
    while (consumed < kCount) {
      if (auto value = ring.try_pop()) {
        if (*value == nullptr) {
          ++null_values;  // would betray a moved-from retry push
        } else {
          consumer_sum += static_cast<std::uint64_t>(**value);
        }
        ++consumed;
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (int i = 0; i < kCount; ++i) {
    auto value = std::make_unique<int>(i);
    while (!ring.try_push(std::move(value))) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(null_values, 0);
  EXPECT_EQ(consumer_sum,
            static_cast<std::uint64_t>(kCount) * (kCount - 1) / 2);
}

TEST(SpscRing, TwoThreadStress) {
  constexpr int kCount = 200000;
  SpscRing<int> ring{256};
  std::uint64_t consumer_sum = 0;
  int consumed = 0;

  std::thread consumer([&] {
    while (consumed < kCount) {
      if (auto value = ring.try_pop()) {
        consumer_sum += static_cast<std::uint64_t>(*value);
        ++consumed;
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (int i = 0; i < kCount; ++i) {
    while (!ring.try_push(i)) std::this_thread::yield();
  }
  consumer.join();

  const std::uint64_t expected =
      static_cast<std::uint64_t>(kCount) * (kCount - 1) / 2;
  EXPECT_EQ(consumer_sum, expected);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, BurstPushPopRoundTrip) {
  SpscRing<int> ring{8};
  std::vector<int> values{1, 2, 3, 4, 5};
  EXPECT_EQ(ring.try_push_burst(std::span<int>{values}), 5u);
  EXPECT_EQ(ring.size(), 5u);
  std::vector<int> out(8, -1);
  EXPECT_EQ(ring.try_pop_burst(std::span<int>{out}), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], i + 1);
  EXPECT_EQ(out[5], -1) << "slots past the popped count stay untouched";
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, BurstEmptySpansAreNoOps) {
  SpscRing<int> ring{4};
  EXPECT_EQ(ring.try_push_burst(std::span<int>{}), 0u);
  EXPECT_EQ(ring.try_pop_burst(std::span<int>{}), 0u);
  EXPECT_TRUE(ring.empty());
  std::vector<int> out(4);
  EXPECT_EQ(ring.try_pop_burst(std::span<int>{out}), 0u)
      << "pop from an empty ring reports zero";
}

TEST(SpscRing, PartialBurstPushFillsExactlyTheFreeSlots) {
  SpscRing<int> ring{4};
  ASSERT_TRUE(ring.try_push(100));
  std::vector<int> values{0, 1, 2, 3, 4, 5};
  // 3 slots free: the burst takes values[0..3) and reports 3.
  EXPECT_EQ(ring.try_push_burst(std::span<int>{values}), 3u);
  EXPECT_EQ(ring.try_push_burst(std::span<int>{values}.subspan(3)), 0u)
      << "a full ring accepts nothing";
  for (const int expected : {100, 0, 1, 2}) {
    EXPECT_EQ(ring.try_pop().value(), expected);
  }
}

TEST(SpscRing, PartialBurstPopDrainsExactlyTheOccupancy) {
  SpscRing<int> ring{8};
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.try_push(i));
  std::vector<int> out(8, -1);
  EXPECT_EQ(ring.try_pop_burst(std::span<int>{out}), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(out[3], -1);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PartialBurstPushDoesNotConsumeTheTail) {
  // The burst analogue of FailedPushDoesNotConsumeTheValue: the retry loop
  // `pending = pending.subspan(ring.try_push_burst(pending))` is only
  // correct if the un-pushed tail keeps its values.
  SpscRing<std::unique_ptr<int>> ring{2};
  std::vector<std::unique_ptr<int>> values;
  for (int i = 0; i < 4; ++i) values.push_back(std::make_unique<int>(i));
  EXPECT_EQ(ring.try_push_burst(std::span{values}), 2u);
  EXPECT_EQ(values[0], nullptr);
  EXPECT_EQ(values[1], nullptr);
  ASSERT_NE(values[2], nullptr) << "un-pushed tail must keep its values";
  ASSERT_NE(values[3], nullptr);
  EXPECT_EQ(*values[2], 2);
  EXPECT_EQ(*values[3], 3);
  // Drain and retry the tail — the backpressure pattern end to end.
  EXPECT_EQ(**ring.try_pop(), 0);
  EXPECT_EQ(**ring.try_pop(), 1);
  EXPECT_EQ(ring.try_push_burst(std::span{values}.subspan(2)), 2u);
  EXPECT_EQ(**ring.try_pop(), 2);
  EXPECT_EQ(**ring.try_pop(), 3);
}

TEST(SpscRing, BurstFifoAcrossIndexWraparound) {
  // Cursors seeded just below SIZE_MAX: burst index arithmetic (head + i,
  // tail + i, the free/available differences) crosses the unsigned
  // overflow boundary mid-test and must not care.
  const std::size_t start = std::numeric_limits<std::size_t>::max() - 5;
  SpscRing<int> ring{4, start};
  int next_push = 0;
  int next_pop = 0;
  std::vector<int> in(3);
  std::vector<int> out(3);
  for (int round = 0; round < 8; ++round) {
    for (int& v : in) v = next_push++;
    ASSERT_EQ(ring.try_push_burst(std::span<int>{in}), 3u);
    ASSERT_EQ(ring.try_pop_burst(std::span<int>{out}), 3u);
    for (const int v : out) ASSERT_EQ(v, next_pop++);
    ASSERT_TRUE(ring.empty());
  }
}

TEST(SpscRing, BurstMixesWithScalarOps) {
  SpscRing<int> ring{8};
  std::vector<int> values{0, 1, 2};
  ASSERT_EQ(ring.try_push_burst(std::span<int>{values}), 3u);
  ASSERT_TRUE(ring.try_push(3));
  EXPECT_EQ(ring.try_pop().value(), 0);
  std::vector<int> out(8);
  EXPECT_EQ(ring.try_pop_burst(std::span<int>{out}), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(out[i], i + 1);
}

TEST(SpscRing, TwoThreadBurstStressAcrossWraparound) {
  constexpr int kCount = 100000;
  const std::size_t start = std::numeric_limits<std::size_t>::max() - 100;
  SpscRing<int> ring{64, start};
  bool ordered = true;
  std::uint64_t consumer_sum = 0;

  std::thread consumer([&] {
    std::vector<int> out(16);
    int expected = 0;
    while (expected < kCount) {
      const std::size_t n = ring.try_pop_burst(std::span<int>{out});
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (out[i] != expected) ordered = false;
        consumer_sum += static_cast<std::uint64_t>(out[i]);
        ++expected;
      }
    }
  });

  std::vector<int> in;
  int produced = 0;
  while (produced < kCount) {
    in.clear();
    for (int i = 0; i < 16 && produced + i < kCount; ++i) {
      in.push_back(produced + i);
    }
    std::span<int> pending{in};
    while (!pending.empty()) {
      pending = pending.subspan(ring.try_push_burst(pending));
      if (!pending.empty()) std::this_thread::yield();
    }
    produced += static_cast<int>(in.size());
  }
  consumer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(consumer_sum,
            static_cast<std::uint64_t>(kCount) * (kCount - 1) / 2);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WatermarkDefaultsEquivalentToRingFull) {
  SpscRing<int> ring{8};
  EXPECT_EQ(ring.high_watermark(), 8u);
  EXPECT_EQ(ring.low_watermark(), 4u);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(ring.try_push(int{i}));
    EXPECT_FALSE(ring.over_watermark()) << "below capacity at depth "
                                        << i + 1;
  }
  ASSERT_TRUE(ring.try_push(7));
  EXPECT_TRUE(ring.over_watermark()) << "default high watermark == capacity";
}

TEST(SpscRing, WatermarkClampsToCapacityAndHigh) {
  SpscRing<int> ring{8};
  ring.set_watermarks(100, 50);
  EXPECT_EQ(ring.high_watermark(), 8u);
  EXPECT_EQ(ring.low_watermark(), 8u);
  ring.set_watermarks(4, 6);
  EXPECT_EQ(ring.high_watermark(), 4u);
  EXPECT_EQ(ring.low_watermark(), 4u) << "low clamps to high";
}

TEST(SpscRing, WatermarkHysteresis) {
  SpscRing<int> ring{8};
  ring.set_watermarks(6, 2);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.try_push(int{i}));
  EXPECT_FALSE(ring.over_watermark()) << "5 < high 6: not pressured";
  ASSERT_TRUE(ring.try_push(5));
  EXPECT_TRUE(ring.over_watermark()) << "depth 6 engages pressure";
  // Draining below high but not to low keeps the gate engaged.
  ring.try_pop();
  ring.try_pop();
  ring.try_pop();
  EXPECT_TRUE(ring.over_watermark()) << "depth 3 > low 2: still pressured";
  EXPECT_TRUE(ring.pressured()) << "pressured() echoes the last verdict";
  ring.try_pop();
  EXPECT_FALSE(ring.over_watermark()) << "depth 2 == low: pressure clears";
  EXPECT_FALSE(ring.pressured());
  // Re-engaging needs the HIGH watermark again, not low+1.
  ASSERT_TRUE(ring.try_push(10));
  EXPECT_FALSE(ring.over_watermark()) << "depth 3 < high 6 after clearing";
}

TEST(SpscRing, WatermarkAcrossIndexWraparound) {
  // The gate computes depth with the same unsigned difference arithmetic
  // as full/empty; seed the cursors so it crosses the overflow boundary.
  const std::size_t start = std::numeric_limits<std::size_t>::max() - 3;
  SpscRing<int> ring{8, start};
  ring.set_watermarks(4, 1);
  int value = 0;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.try_push(value++));
    EXPECT_FALSE(ring.over_watermark()) << "depth 3 < high 4";
    ASSERT_TRUE(ring.try_push(value++));
    EXPECT_TRUE(ring.over_watermark()) << "depth 4 engages";
    for (int i = 0; i < 3; ++i) ring.try_pop();
    EXPECT_FALSE(ring.over_watermark()) << "depth 1 == low clears";
    ring.try_pop();
    ASSERT_TRUE(ring.empty());
  }
}

TEST(SpscRing, WatermarkBurstStraddle) {
  // One burst push that jumps from below-high to above-high in a single
  // call: the NEXT over_watermark() probe must see the pressure (the gate
  // is probe-driven, not push-driven).
  SpscRing<int> ring{16};
  ring.set_watermarks(8, 3);
  std::vector<int> burst(6);
  for (int i = 0; i < 6; ++i) burst[i] = i;
  ASSERT_EQ(ring.try_push_burst(std::span<int>{burst}), 6u);
  EXPECT_FALSE(ring.over_watermark()) << "6 < 8";
  // This burst straddles the high watermark (6 -> 12).
  ASSERT_EQ(ring.try_push_burst(std::span<int>{burst}), 6u);
  EXPECT_TRUE(ring.over_watermark()) << "12 >= 8 engages in one probe";
  // A burst pop that straddles low on the way down (12 -> 2).
  std::vector<int> out(10);
  ASSERT_EQ(ring.try_pop_burst(std::span<int>{out}), 10u);
  EXPECT_FALSE(ring.over_watermark()) << "2 <= low 3 clears in one probe";
}

TEST(SpscRing, WatermarkSeesConsumerDrainUnderConcurrency) {
  // The producer-local tail cache may be stale; the gate must refresh it
  // rather than report pressure the consumer has already relieved. Drive a
  // consumer that drains everything, then check the gate drops.
  SpscRing<int> ring{64};
  ring.set_watermarks(48, 8);
  for (int i = 0; i < 48; ++i) ASSERT_TRUE(ring.try_push(int{i}));
  ASSERT_TRUE(ring.over_watermark());
  std::thread consumer([&] {
    int drained = 0;
    while (drained < 48) {
      if (ring.try_pop()) {
        ++drained;
      } else {
        std::this_thread::yield();
      }
    }
  });
  consumer.join();
  EXPECT_FALSE(ring.over_watermark())
      << "gate must refresh the stale tail cache and see the drain";
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PreservesOrderUnderConcurrency) {
  constexpr int kCount = 50000;
  SpscRing<int> ring{64};
  bool ordered = true;

  std::thread consumer([&] {
    int expected = 0;
    while (expected < kCount) {
      if (auto value = ring.try_pop()) {
        if (*value != expected) ordered = false;
        ++expected;
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (int i = 0; i < kCount; ++i) {
    while (!ring.try_push(i)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_TRUE(ordered);
}

}  // namespace
}  // namespace speedybox::util
