#include "util/histogram.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace speedybox::util {
namespace {

TEST(SampleRecorder, BasicStats) {
  SampleRecorder rec;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) rec.add(v);
  EXPECT_EQ(rec.count(), 4u);
  EXPECT_DOUBLE_EQ(rec.sum(), 10.0);
  EXPECT_DOUBLE_EQ(rec.mean(), 2.5);
  EXPECT_DOUBLE_EQ(rec.min(), 1.0);
  EXPECT_DOUBLE_EQ(rec.max(), 4.0);
}

TEST(SampleRecorder, PercentileNearestRank) {
  SampleRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.add(i);
  EXPECT_DOUBLE_EQ(rec.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(rec.percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(rec.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(rec.percentile(0), 1.0);
}

TEST(SampleRecorder, PercentileUnsortedInsertOrder) {
  SampleRecorder rec;
  for (const double v : {9.0, 1.0, 5.0, 3.0, 7.0}) rec.add(v);
  EXPECT_DOUBLE_EQ(rec.percentile(50), 5.0);
}

TEST(SampleRecorder, AddAfterPercentileStillCorrect) {
  SampleRecorder rec;
  rec.add(10.0);
  EXPECT_DOUBLE_EQ(rec.percentile(50), 10.0);
  rec.add(1.0);
  rec.add(2.0);
  EXPECT_DOUBLE_EQ(rec.percentile(50), 2.0);
}

TEST(SampleRecorder, EmptyThrows) {
  const SampleRecorder rec;
  EXPECT_THROW(rec.percentile(50), std::out_of_range);
  EXPECT_THROW(rec.min(), std::out_of_range);
  EXPECT_THROW(rec.max(), std::out_of_range);
}

TEST(SampleRecorder, CdfPoints) {
  SampleRecorder rec;
  for (int i = 1; i <= 10; ++i) rec.add(i);
  const auto points = rec.cdf({10, 50, 90});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].second, 1.0);
  EXPECT_DOUBLE_EQ(points[1].second, 5.0);
  EXPECT_DOUBLE_EQ(points[2].second, 9.0);
}

TEST(SampleRecorder, MergeDisjointRangesEqualsSingleRecorder) {
  SampleRecorder low, high, all;
  for (int i = 1; i <= 50; ++i) {
    low.add(i);
    all.add(i);
  }
  for (int i = 51; i <= 100; ++i) {
    high.add(i);
    all.add(i);
  }
  low.merge(high);
  EXPECT_EQ(low.count(), all.count());
  for (const double p : {0.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(low.percentile(p), all.percentile(p)) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(low.min(), 1.0);
  EXPECT_DOUBLE_EQ(low.max(), 100.0);
}

TEST(SampleRecorder, MergeEmptySides) {
  SampleRecorder rec, empty;
  rec.add(7.0);
  rec.merge(empty);  // no-op
  EXPECT_EQ(rec.count(), 1u);
  empty.merge(rec);  // into-empty works
  EXPECT_DOUBLE_EQ(empty.percentile(50), 7.0);
}

TEST(SampleRecorder, PercentileClampsOutOfRangeP) {
  SampleRecorder rec;
  for (int i = 1; i <= 10; ++i) rec.add(i);
  EXPECT_DOUBLE_EQ(rec.percentile(-5), rec.percentile(0));
  EXPECT_DOUBLE_EQ(rec.percentile(250), rec.percentile(100));
}

TEST(LogHistogram, ApproximatePercentiles) {
  LogHistogram hist;
  for (int i = 1; i <= 10000; ++i) hist.add(i);
  EXPECT_EQ(hist.count(), 10000u);
  // Eighth-octave buckets: ≤ ~9% relative error.
  EXPECT_NEAR(hist.percentile(50), 5000.0, 5000.0 * 0.10);
  EXPECT_NEAR(hist.percentile(99), 9900.0, 9900.0 * 0.10);
}

TEST(LogHistogram, MeanIsExact) {
  LogHistogram hist;
  for (const double v : {2.0, 4.0, 6.0}) hist.add(v);
  EXPECT_DOUBLE_EQ(hist.mean(), 4.0);
}

TEST(LogHistogram, EmptyIsZero) {
  const LogHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
}

TEST(LogHistogram, PercentileEndpointsClampAndOrder) {
  LogHistogram hist;
  for (int i = 1; i <= 1000; ++i) hist.add(i);
  // p is clamped to [0, 100]; endpoints bracket the distribution within
  // bucket resolution.
  EXPECT_DOUBLE_EQ(hist.percentile(-10), hist.percentile(0));
  EXPECT_DOUBLE_EQ(hist.percentile(200), hist.percentile(100));
  EXPECT_LE(hist.percentile(0), hist.percentile(50));
  EXPECT_LE(hist.percentile(50), hist.percentile(100));
  EXPECT_NEAR(hist.percentile(100), 1000.0, 1000.0 * 0.10);
}

TEST(LogHistogram, MergeDisjointRanges) {
  LogHistogram low, high;
  for (int i = 1; i <= 100; ++i) low.add(i);
  for (int i = 10000; i <= 10100; ++i) high.add(i);
  low.merge(high);
  EXPECT_EQ(low.count(), 201u);
  // Lower half of the merged mass is the small range, upper half the big.
  EXPECT_NEAR(low.percentile(25), 50.0, 50.0 * 0.15);
  EXPECT_NEAR(low.percentile(75), 10050.0, 10050.0 * 0.10);
}

TEST(LogHistogram, MergeThenPercentileEqualsSingleHistogram) {
  // Bucket math is deterministic, so merged percentiles must equal the
  // single-histogram percentiles exactly — not just approximately.
  LogHistogram a, b, all;
  for (int i = 1; i <= 5000; ++i) {
    ((i % 3 == 0) ? a : b).add(i);
    all.add(i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  for (const double p : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), all.percentile(p)) << "p=" << p;
  }
}

TEST(LogHistogram, FromRawRoundTrip) {
  // Accumulating raw buckets through the static geometry then rebuilding
  // must reproduce the directly built histogram (the telemetry subsystem's
  // atomic mirror relies on this).
  LogHistogram direct;
  std::vector<std::uint64_t> raw(
      static_cast<std::size_t>(LogHistogram::raw_bucket_count()), 0);
  double sum = 0.0;
  for (const double v : {0.5, 1.0, 3.0, 17.0, 900.0, 1e6, 1e18}) {
    direct.add(v);
    ++raw[static_cast<std::size_t>(LogHistogram::raw_bucket_index(v))];
    sum += v;
  }
  const LogHistogram rebuilt = LogHistogram::from_raw(
      raw.data(), static_cast<int>(raw.size()), sum);
  EXPECT_EQ(rebuilt.count(), direct.count());
  EXPECT_DOUBLE_EQ(rebuilt.mean(), direct.mean());
  for (const double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(rebuilt.percentile(p), direct.percentile(p));
  }
}

TEST(LogHistogram, FromRawShortPrefixTreatsTailAsZero) {
  std::vector<std::uint64_t> raw(4, 0);
  raw[0] = 2;  // two values in [1, 2^(1/8))
  const LogHistogram hist = LogHistogram::from_raw(raw.data(), 4, 2.2);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_DOUBLE_EQ(hist.mean(), 1.1);
  EXPECT_LT(hist.percentile(100), 2.0);
}

TEST(SummarizePercentiles, FormatsKeyFields) {
  SampleRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.add(i);
  const std::string summary = summarize_percentiles(rec);
  EXPECT_NE(summary.find("n=100"), std::string::npos);
  EXPECT_NE(summary.find("p50=50"), std::string::npos);
}

TEST(SummarizePercentiles, EmptySafe) {
  const SampleRecorder rec;
  EXPECT_EQ(summarize_percentiles(rec), "(no samples)");
}

}  // namespace
}  // namespace speedybox::util
