#include "util/histogram.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace speedybox::util {
namespace {

TEST(SampleRecorder, BasicStats) {
  SampleRecorder rec;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) rec.add(v);
  EXPECT_EQ(rec.count(), 4u);
  EXPECT_DOUBLE_EQ(rec.sum(), 10.0);
  EXPECT_DOUBLE_EQ(rec.mean(), 2.5);
  EXPECT_DOUBLE_EQ(rec.min(), 1.0);
  EXPECT_DOUBLE_EQ(rec.max(), 4.0);
}

TEST(SampleRecorder, PercentileNearestRank) {
  SampleRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.add(i);
  EXPECT_DOUBLE_EQ(rec.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(rec.percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(rec.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(rec.percentile(0), 1.0);
}

TEST(SampleRecorder, PercentileUnsortedInsertOrder) {
  SampleRecorder rec;
  for (const double v : {9.0, 1.0, 5.0, 3.0, 7.0}) rec.add(v);
  EXPECT_DOUBLE_EQ(rec.percentile(50), 5.0);
}

TEST(SampleRecorder, AddAfterPercentileStillCorrect) {
  SampleRecorder rec;
  rec.add(10.0);
  EXPECT_DOUBLE_EQ(rec.percentile(50), 10.0);
  rec.add(1.0);
  rec.add(2.0);
  EXPECT_DOUBLE_EQ(rec.percentile(50), 2.0);
}

TEST(SampleRecorder, EmptyThrows) {
  const SampleRecorder rec;
  EXPECT_THROW(rec.percentile(50), std::out_of_range);
  EXPECT_THROW(rec.min(), std::out_of_range);
  EXPECT_THROW(rec.max(), std::out_of_range);
}

TEST(SampleRecorder, CdfPoints) {
  SampleRecorder rec;
  for (int i = 1; i <= 10; ++i) rec.add(i);
  const auto points = rec.cdf({10, 50, 90});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].second, 1.0);
  EXPECT_DOUBLE_EQ(points[1].second, 5.0);
  EXPECT_DOUBLE_EQ(points[2].second, 9.0);
}

TEST(LogHistogram, ApproximatePercentiles) {
  LogHistogram hist;
  for (int i = 1; i <= 10000; ++i) hist.add(i);
  EXPECT_EQ(hist.count(), 10000u);
  // Eighth-octave buckets: ≤ ~9% relative error.
  EXPECT_NEAR(hist.percentile(50), 5000.0, 5000.0 * 0.10);
  EXPECT_NEAR(hist.percentile(99), 9900.0, 9900.0 * 0.10);
}

TEST(LogHistogram, MeanIsExact) {
  LogHistogram hist;
  for (const double v : {2.0, 4.0, 6.0}) hist.add(v);
  EXPECT_DOUBLE_EQ(hist.mean(), 4.0);
}

TEST(LogHistogram, EmptyIsZero) {
  const LogHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
}

TEST(SummarizePercentiles, FormatsKeyFields) {
  SampleRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.add(i);
  const std::string summary = summarize_percentiles(rec);
  EXPECT_NE(summary.find("n=100"), std::string::npos);
  EXPECT_NE(summary.find("p50=50"), std::string::npos);
}

TEST(SummarizePercentiles, EmptySafe) {
  const SampleRecorder rec;
  EXPECT_EQ(summarize_percentiles(rec), "(no samples)");
}

}  // namespace
}  // namespace speedybox::util
