#include "util/cycle_clock.hpp"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace speedybox::util {
namespace {

TEST(CycleClock, Monotonic) {
  const std::uint64_t a = CycleClock::now();
  const std::uint64_t b = CycleClock::now();
  EXPECT_LE(a, b);
}

TEST(CycleClock, FrequencyIsPlausible) {
  const double hz = CycleClock::frequency_hz();
  // Any real CPU TSC (or the ns fallback) ticks between 100MHz and 10GHz.
  EXPECT_GT(hz, 1e8);
  EXPECT_LT(hz, 1e10);
}

TEST(CycleClock, FrequencyIsStable) {
  EXPECT_DOUBLE_EQ(CycleClock::frequency_hz(), CycleClock::frequency_hz());
}

TEST(CycleClock, ConversionRoundTrip) {
  const std::uint64_t cycles = 123456;
  const double ns = CycleClock::to_ns(cycles);
  const std::uint64_t back = CycleClock::from_ns(ns);
  EXPECT_NEAR(static_cast<double>(back), static_cast<double>(cycles),
              static_cast<double>(cycles) * 0.01);
}

TEST(CycleClock, ToUsIsToNsOver1000) {
  EXPECT_DOUBLE_EQ(CycleClock::to_us(5000) * 1000.0,
                   CycleClock::to_ns(5000));
}

TEST(CycleClock, MeasuresSleepRoughly) {
  const std::uint64_t t0 = CycleClock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double ms = CycleClock::to_ns(CycleClock::now() - t0) / 1e6;
  EXPECT_GT(ms, 8.0);
  EXPECT_LT(ms, 500.0);  // generous upper bound for noisy CI machines
}

TEST(ScopedCycleTimer, AccumulatesElapsed) {
  std::uint64_t sink = 0;
  {
    ScopedCycleTimer timer{sink};
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x = x + i;
  }
  EXPECT_GT(sink, 0u);
  const std::uint64_t first = sink;
  {
    ScopedCycleTimer timer{sink};
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x = x + i;
  }
  EXPECT_GT(sink, first);
}

}  // namespace
}  // namespace speedybox::util
