#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace speedybox::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng{5};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.range(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= v == 10;
    saw_hi |= v == 13;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{9};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng{13};
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng rng{17};
  double sum = 0, sum_sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.1);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng{19};
  std::vector<double> samples;
  for (int i = 0; i < 10001; ++i) samples.push_back(rng.lognormal(2.0, 1.0));
  std::nth_element(samples.begin(), samples.begin() + 5000, samples.end());
  EXPECT_NEAR(samples[5000], std::exp(2.0), std::exp(2.0) * 0.1);
}

TEST(Rng, ParetoWithinBounds) {
  Rng rng{23};
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.pareto(1.2, 1.0, 1000.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 1000.0 * 1.0001);
  }
}

}  // namespace
}  // namespace speedybox::util
