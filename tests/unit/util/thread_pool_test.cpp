#include "util/thread_pool.hpp"

#include <atomic>

#include <gtest/gtest.h>

namespace speedybox::util {
namespace {

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool{2};
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool{1};
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool{3};
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) pool.submit([&counter] { ++counter; });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool{1};
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, TasksCanSubmitFromWorker) {
  ThreadPool pool{2};
  std::atomic<int> counter{0};
  pool.submit([&pool, &counter] {
    ++counter;
    pool.submit([&counter] { ++counter; });
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace speedybox::util
