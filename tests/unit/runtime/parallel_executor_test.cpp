#include "runtime/parallel_executor.hpp"

#include <atomic>

#include <gtest/gtest.h>

#include "net/packet_builder.hpp"
#include "test_helpers.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::tuple_n;

core::StateFunctionBatch counting_batch(std::atomic<int>& counter,
                                        core::PayloadAccess access) {
  core::StateFunctionBatch batch;
  batch.functions.push_back(core::StateFunction{
      [&counter](net::Packet&, const net::ParsedPacket&) { ++counter; },
      access, "count"});
  return batch;
}

TEST(ParallelExecutor, ExecutesEveryBatchOnce) {
  ParallelExecutor executor{2};
  std::atomic<int> counter{0};
  std::vector<core::StateFunctionBatch> batches;
  for (int i = 0; i < 4; ++i) {
    batches.push_back(counting_batch(counter, core::PayloadAccess::kRead));
  }
  const core::ParallelSchedule schedule = core::build_schedule(batches);
  net::Packet packet = net::make_tcp_packet(tuple_n(1), "x");
  const auto parsed = net::parse_packet(packet);
  executor.execute(schedule, batches, packet, *parsed);
  EXPECT_EQ(counter.load(), 4);
}

TEST(ParallelExecutor, SequentialGroupsOrdered) {
  ParallelExecutor executor{2};
  std::vector<int> order;
  std::mutex order_mutex;
  std::vector<core::StateFunctionBatch> batches;
  for (int i = 0; i < 3; ++i) {
    core::StateFunctionBatch batch;
    batch.functions.push_back(core::StateFunction{
        [&order, &order_mutex, i](net::Packet&, const net::ParsedPacket&) {
          const std::lock_guard lock(order_mutex);
          order.push_back(i);
        },
        core::PayloadAccess::kWrite, "w"});  // writes never group
    batches.push_back(std::move(batch));
  }
  const core::ParallelSchedule schedule = core::build_schedule(batches);
  ASSERT_EQ(schedule.group_count(), 3u);
  net::Packet packet = net::make_tcp_packet(tuple_n(2), "x");
  const auto parsed = net::parse_packet(packet);
  executor.execute(schedule, batches, packet, *parsed);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ParallelExecutor, GlobalMatIntegration) {
  // Wire the executor into a GlobalMat and verify the unmeasured fast path
  // produces identical state updates.
  core::LocalMat a{"a", 0}, b{"b", 1};
  core::GlobalMat mat;
  mat.set_chain({&a, &b});
  std::atomic<int> counter{0};
  a.add_state_function(
      1, core::StateFunction{[&counter](net::Packet&,
                                        const net::ParsedPacket&) {
                               ++counter;
                             },
                             core::PayloadAccess::kRead, "sf-a"});
  b.add_state_function(
      1, core::StateFunction{[&counter](net::Packet&,
                                        const net::ParsedPacket&) {
                               counter += 10;
                             },
                             core::PayloadAccess::kRead, "sf-b"});
  mat.consolidate_flow(1);

  ParallelExecutor executor{2};
  mat.set_batch_executor(&executor);
  net::Packet packet = net::make_tcp_packet(tuple_n(3), "x");
  packet.set_fid(1);
  const auto result = mat.process(packet);
  EXPECT_TRUE(result.rule_hit);
  EXPECT_EQ(counter.load(), 11);
}

TEST(ParallelExecutor, SingletonGroupRunsInline) {
  ParallelExecutor executor{1};
  std::atomic<int> counter{0};
  std::vector<core::StateFunctionBatch> batches{
      counting_batch(counter, core::PayloadAccess::kWrite)};
  const core::ParallelSchedule schedule = core::build_schedule(batches);
  net::Packet packet = net::make_tcp_packet(tuple_n(4), "x");
  const auto parsed = net::parse_packet(packet);
  executor.execute(schedule, batches, packet, *parsed);
  EXPECT_EQ(counter.load(), 1);
}

}  // namespace
}  // namespace speedybox::runtime
