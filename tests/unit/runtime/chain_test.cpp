#include "runtime/chain.hpp"

#include <gtest/gtest.h>

#include "nf/ip_filter.hpp"
#include "nf/monitor.hpp"
#include "test_helpers.hpp"

namespace speedybox::runtime {
namespace {

TEST(ServiceChain, AddNfCreatesLocalMatAndWiresGlobalMat) {
  nf::Monitor monitor;
  nf::IpFilter filter{{}};
  ServiceChain chain;
  chain.add_nf(&monitor);
  chain.add_nf(&filter);

  EXPECT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain.local_mat(0).nf_name(), "monitor");
  EXPECT_EQ(chain.local_mat(0).nf_index(), 0u);
  EXPECT_EQ(chain.local_mat(1).nf_name(), "ipfilter");
  EXPECT_EQ(chain.local_mat(1).nf_index(), 1u);
  EXPECT_EQ(chain.global_mat().chain().size(), 2u);
  EXPECT_EQ(chain.global_mat().chain()[1], &chain.local_mat(1));
}

TEST(ServiceChain, EmplaceNfOwnsInstance) {
  ServiceChain chain;
  auto& monitor = chain.emplace_nf<nf::Monitor>("owned-monitor");
  EXPECT_EQ(chain.size(), 1u);
  EXPECT_EQ(&chain.nf(0), &monitor);
  EXPECT_EQ(chain.nf(0).name(), "owned-monitor");
}

TEST(ServiceChain, ResetFlowsClearsMatsAndClassifier) {
  ServiceChain chain;
  chain.emplace_nf<nf::Monitor>();
  chain.local_mat(0).add_header_action(1, core::HeaderAction::forward());
  chain.global_mat().consolidate_flow(1);
  net::Packet packet =
      net::make_tcp_packet(speedybox::testing::tuple_n(1), "x");
  chain.classifier().classify(packet);

  chain.reset_flows();
  EXPECT_EQ(chain.global_mat().size(), 0u);
  EXPECT_EQ(chain.local_mat(0).size(), 0u);
  EXPECT_EQ(chain.classifier().active_flows(), 0u);
}

TEST(ServiceChain, NameAccessor) {
  ServiceChain chain{"my-chain"};
  EXPECT_EQ(chain.name(), "my-chain");
}

}  // namespace
}  // namespace speedybox::runtime
