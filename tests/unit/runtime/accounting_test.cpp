// Cycle-accounting invariants of the runner: platform cycles vs work
// cycles, the dual (parallel/sequential) latency recorders, and the
// adaptive-parallelism guarantee.
#include <gtest/gtest.h>

#include "nf/monitor.hpp"
#include "nf/synthetic_nf.hpp"
#include "runtime/runner.hpp"
#include "test_helpers.hpp"
#include "trace/workload.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::tuple_n;

TEST(Accounting, PlatformCyclesIncludePerNfOverhead) {
  platform::PlatformCosts costs;
  costs.bess_hop_cycles = 1000;  // exaggerated to make the check crisp
  ServiceChain chain;
  chain.emplace_nf<nf::Monitor>();
  chain.emplace_nf<nf::Monitor>("m2");
  ChainRunner runner{chain, {platform::PlatformKind::kBess, false, false},
                     costs};
  net::Packet packet = net::make_tcp_packet(tuple_n(1), "x");
  const PacketOutcome outcome = runner.process_packet(packet);
  EXPECT_GE(outcome.platform_cycles, outcome.work_cycles + 2000)
      << "original path: one hop per NF";
}

TEST(Accounting, FastPathPaysExactlyOneHopPlusRxShare) {
  platform::PlatformCosts costs;
  costs.bess_hop_cycles = 1000;
  costs.rx_burst_fixed_cycles = 640;
  ServiceChain chain;
  chain.emplace_nf<nf::Monitor>();
  chain.emplace_nf<nf::Monitor>("m2");
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false},
                     costs};
  net::Packet first = net::make_tcp_packet(tuple_n(2), "x");
  runner.process_packet(first);
  net::Packet second = net::make_tcp_packet(tuple_n(2), "x");
  const PacketOutcome outcome = runner.process_packet(second);
  EXPECT_FALSE(outcome.initial);
  // Scalar = a burst of one: one hop plus the whole rx fixed cost.
  EXPECT_EQ(outcome.platform_cycles, outcome.work_cycles + 1000 + 640);

  // In a full burst the same packet carries only a 1/N share of the rx
  // cost — the amortization the batch sweep measures.
  net::Packet burst_pkt[4];
  net::PacketBatch batch{4};
  for (auto& p : burst_pkt) {
    p = net::make_tcp_packet(tuple_n(2), "x");
    batch.push(&p);
  }
  std::vector<PacketOutcome> outcomes;
  runner.process_batch(batch, outcomes);
  for (const PacketOutcome& o : outcomes) {
    ASSERT_FALSE(o.initial);
    EXPECT_EQ(o.platform_cycles, o.work_cycles + 1000 + 640 / 4);
  }
}

TEST(Accounting, SequentialLatencyNeverBelowParallel) {
  // Adaptive parallelism: the modeled (parallel) latency can never exceed
  // the sequential accounting of the same packet.
  ServiceChain chain;
  nf::SyntheticNfConfig config;
  config.access = core::PayloadAccess::kRead;
  config.work_iterations = 64;
  chain.emplace_nf<nf::SyntheticNf>(config, "s1");
  chain.emplace_nf<nf::SyntheticNf>(config, "s2");
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};

  net::Packet first = net::make_tcp_packet(tuple_n(3), "payload payload");
  runner.process_packet(first);
  for (int i = 0; i < 20; ++i) {
    net::Packet packet = net::make_tcp_packet(tuple_n(3), "payload payload");
    const PacketOutcome outcome = runner.process_packet(packet);
    ASSERT_TRUE(outcome.fast_path);
    ASSERT_LE(outcome.latency_cycles, outcome.latency_cycles_sequential);
  }
  EXPECT_EQ(runner.stats().latency_us_subsequent.count(),
            runner.stats().latency_us_subsequent_sequential.count());
}

TEST(Accounting, SequentialRecorderEmptyOnOriginalPath) {
  ServiceChain chain;
  chain.emplace_nf<nf::Monitor>();
  ChainRunner runner{chain, {platform::PlatformKind::kBess, false, false}};
  runner.run_workload(trace::make_uniform_workload(3, 5, 32));
  EXPECT_EQ(runner.stats().latency_us_subsequent_sequential.count(), 0u);
}

TEST(Accounting, LatencyAtLeastPlatformMinusParallelOverlap) {
  // With no state functions there is nothing to overlap: latency equals
  // platform cycles on BESS.
  ServiceChain chain;
  chain.emplace_nf<nf::SyntheticNf>(
      nf::SyntheticNfConfig{0, core::PayloadAccess::kIgnore, std::nullopt},
      "noop");
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};
  net::Packet first = net::make_tcp_packet(tuple_n(4), "x");
  runner.process_packet(first);
  net::Packet second = net::make_tcp_packet(tuple_n(4), "x");
  const PacketOutcome outcome = runner.process_packet(second);
  EXPECT_EQ(outcome.latency_cycles, outcome.platform_cycles);
}

TEST(Accounting, OnvmStageSamplesSplitFrontEndAndStateFunctions) {
  ServiceChain chain;
  nf::SyntheticNfConfig config;
  config.access = core::PayloadAccess::kRead;
  config.work_iterations = 64;
  chain.emplace_nf<nf::SyntheticNf>(config, "s1");
  ChainRunner runner{chain, {platform::PlatformKind::kOnvm, true, false}};
  runner.run_workload(trace::make_uniform_workload(4, 20, 64));
  // Stage 0 = classifier+serial front end, stage 1 = state functions.
  ASSERT_GE(runner.stats().stage_cycle_sum.size(), 2u);
  EXPECT_GT(runner.stats().stage_cycle_count[0], 0u);
  EXPECT_GT(runner.stats().stage_cycle_count[1], 0u);
}

}  // namespace
}  // namespace speedybox::runtime
