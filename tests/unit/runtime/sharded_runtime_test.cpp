// ShardedRuntime unit tests: flow→shard affinity (both directions of a
// connection), drain-on-destruction, full-ring backpressure, clone
// refusal, and exact per-shard stats merging.
#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "nf/ip_filter.hpp"
#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "runtime/sharded_runtime.hpp"
#include "test_helpers.hpp"
#include "trace/workload.hpp"
#include "util/hash.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::same_bytes;
using speedybox::testing::tuple_n;

std::unique_ptr<ServiceChain> monitor_chain() {
  auto chain = std::make_unique<ServiceChain>("mon");
  chain->emplace_nf<nf::Monitor>();
  return chain;
}

TEST(ShardedRuntime, BothDirectionsOfAFlowShareAShard) {
  auto chain = monitor_chain();
  ShardedRuntime runtime{*chain, 4};
  for (std::uint32_t id = 0; id < 200; ++id) {
    const net::FiveTuple forward = tuple_n(id);
    EXPECT_EQ(runtime.shard_of(forward), runtime.shard_of(forward.reversed()))
        << forward.to_string();
    EXPECT_LT(runtime.shard_of(forward), runtime.shard_count());
  }
}

TEST(ShardedRuntime, PacketsLandOnTheirFlowsShard) {
  const trace::Workload workload = trace::make_uniform_workload(32, 6, 32);
  auto chain = monitor_chain();
  ShardedRuntime runtime{*chain, 4};

  // Expected per-shard packet counts from the dispatch function alone.
  std::vector<std::uint64_t> expected(runtime.shard_count(), 0);
  for (const trace::TracePacket& tp : workload.order) {
    ++expected[runtime.shard_of(workload.flows[tp.flow].tuple)];
  }

  const ShardedRunResult result = runtime.run_workload(workload);
  EXPECT_EQ(result.shard_packets, expected);
  EXPECT_EQ(result.stats.packets, workload.packet_count());

  // And the per-shard Monitor state covers exactly that shard's flows.
  for (std::size_t s = 0; s < runtime.shard_count(); ++s) {
    auto* monitor = dynamic_cast<nf::Monitor*>(&runtime.shard_chain(s).nf(0));
    ASSERT_NE(monitor, nullptr);
    monitor->for_each_flow(
        [&](const net::FiveTuple& tuple, const nf::FlowCounters&) {
          EXPECT_EQ(runtime.shard_of(tuple), s) << tuple.to_string();
        });
  }
}

TEST(ShardedRuntime, PartitionByFlowMatchesDispatcherSteering) {
  // trace::partition_by_flow promises sub-workload k is exactly what shard
  // k sees; hold it to that against the runtime's own shard_of.
  const trace::Workload workload = trace::make_uniform_workload(40, 3, 16);
  auto chain = monitor_chain();
  ShardedRuntime runtime{*chain, 4};
  const auto parts = trace::partition_by_flow(workload, 4);
  ASSERT_EQ(parts.size(), 4u);
  for (std::size_t s = 0; s < parts.size(); ++s) {
    for (const auto& flow : parts[s].flows) {
      EXPECT_EQ(runtime.shard_of(flow.tuple), s) << flow.tuple.to_string();
    }
  }
}

/// Counts process() calls into shared storage so processing is observable
/// after the runtime (and its cloned chains) are gone.
class CountingNf : public nf::NetworkFunction {
 public:
  explicit CountingNf(std::atomic<std::uint64_t>* counter)
      : nf::NetworkFunction("counting"), counter_(counter) {}
  void process(net::Packet&, core::SpeedyBoxContext*) override {
    counter_->fetch_add(1, std::memory_order_relaxed);
  }
  std::unique_ptr<nf::NetworkFunction> clone() const override {
    return std::make_unique<CountingNf>(counter_);
  }

 private:
  std::atomic<std::uint64_t>* counter_;
};

TEST(ShardedRuntime, DestructorDrainsInFlightPackets) {
  std::atomic<std::uint64_t> processed{0};
  {
    ServiceChain chain{"count"};
    chain.emplace_nf<CountingNf>(&processed);
    // Original mode: every packet reaches the NF, so the counter is an
    // exact packet count.
    ShardedRuntime runtime{
        chain, 4, {platform::PlatformKind::kBess, false, false}};
    for (std::uint32_t i = 0; i < 300; ++i) {
      runtime.push(net::make_tcp_packet(tuple_n(i % 24), "inflight"));
    }
    // No finish(): the destructor must drain all 300 before joining.
  }
  EXPECT_EQ(processed.load(), 300u);
}

TEST(ShardedRuntime, FullRingExertsBackpressureWithoutLoss) {
  auto chain = monitor_chain();
  // Ring of 2 slots: the dispatcher outruns the workers immediately.
  ShardedRuntime runtime{*chain, 2,
                         {platform::PlatformKind::kBess, true, false},
                         /*ring_capacity=*/2};
  const trace::Workload workload = trace::make_uniform_workload(16, 25, 32);
  const ShardedRunResult result = runtime.run_workload(workload);
  EXPECT_EQ(result.stats.packets, workload.packet_count());
  EXPECT_EQ(result.outcomes.size(), workload.packet_count());
  EXPECT_GT(runtime.backpressure_waits(), 0u)
      << "a 2-slot ring under a 400-packet burst must fill";
  for (const PacketOutcome& outcome : result.outcomes) {
    EXPECT_FALSE(outcome.dropped);
  }
}

TEST(ShardedRuntime, RingSmallerThanBurstStillDeliversEverything) {
  // Ring capacity 4 < batch_size 8: every staging flush is a partial burst
  // push, so the dispatcher's retry loop and the worker's partial pops are
  // both on the hot path. Nothing may be lost or reordered per flow.
  auto chain = monitor_chain();
  runtime::RunConfig config{platform::PlatformKind::kBess, true, false};
  config.batch_size = 8;
  ShardedRuntime runtime{*chain, 2, config, /*ring_capacity=*/4};
  const trace::Workload workload = trace::make_uniform_workload(12, 30, 24);
  const ShardedRunResult result = runtime.run_workload(workload);
  EXPECT_EQ(result.stats.packets, workload.packet_count());
  EXPECT_EQ(result.outcomes.size(), workload.packet_count());
  EXPECT_GT(runtime.backpressure_waits(), 0u)
      << "burst of 8 into a 4-slot ring must block at least once";
  for (const PacketOutcome& outcome : result.outcomes) {
    EXPECT_FALSE(outcome.dropped);
  }
}

TEST(ShardedRuntime, PartialStagingBuffersFlushOnFinish) {
  // 5 packets of one flow with batch_size 8: the staging buffer never
  // fills, so only the finish()-time flush delivers them.
  auto chain = monitor_chain();
  runtime::RunConfig config{platform::PlatformKind::kBess, true, false};
  config.batch_size = 8;
  ShardedRuntime runtime{*chain, 2, config};
  for (int i = 0; i < 5; ++i) {
    runtime.push(net::make_tcp_packet(tuple_n(3), "staged"));
  }
  const ShardedRunResult result = runtime.finish();
  EXPECT_EQ(result.stats.packets, 5u);
  EXPECT_EQ(result.outcomes.size(), 5u);
}

TEST(ShardedRuntime, SingleShardMatchesChainRunnerExactly) {
  const trace::Workload workload = trace::make_uniform_workload(10, 8, 48);

  auto reference_chain = std::make_unique<ServiceChain>("ref");
  reference_chain->emplace_nf<nf::MazuNat>();
  reference_chain->emplace_nf<nf::Monitor>();
  ChainRunner runner{*reference_chain,
                     {platform::PlatformKind::kBess, true, false}};
  std::vector<net::Packet> reference_out;
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    net::Packet packet = workload.materialize(i);
    runner.process_packet(packet);
    reference_out.push_back(std::move(packet));
  }

  auto prototype = std::make_unique<ServiceChain>("proto");
  prototype->emplace_nf<nf::MazuNat>();
  prototype->emplace_nf<nf::Monitor>();
  ShardedRuntime runtime{*prototype, 1,
                         {platform::PlatformKind::kBess, true, false}};
  const ShardedRunResult result = runtime.run_workload(workload);

  ASSERT_EQ(result.packets.size(), reference_out.size());
  for (std::size_t i = 0; i < reference_out.size(); ++i) {
    EXPECT_TRUE(same_bytes(result.packets[i], reference_out[i]))
        << "packet " << i;
  }
}

TEST(ShardedRuntime, RefusesChainsWithNonClonableNfs) {
  class NotClonable : public nf::NetworkFunction {
   public:
    NotClonable() : nf::NetworkFunction("opaque") {}
    void process(net::Packet&, core::SpeedyBoxContext*) override {}
  };
  ServiceChain chain{"opaque-chain"};
  chain.emplace_nf<NotClonable>();
  EXPECT_THROW(ShardedRuntime(chain, 2), std::logic_error);
}

TEST(ShardedRuntime, PushAfterFinishThrows) {
  auto chain = monitor_chain();
  ShardedRuntime runtime{*chain, 2};
  runtime.push(net::make_tcp_packet(tuple_n(1), "x"));
  runtime.finish();
  EXPECT_THROW(runtime.push(net::make_tcp_packet(tuple_n(2), "y")),
               std::logic_error);
}

TEST(ShardedRuntime, MergedStatsAreExactSumsOfShardStats) {
  const trace::Workload workload = trace::make_uniform_workload(30, 10, 64);
  auto chain = std::make_unique<ServiceChain>("stats");
  chain->emplace_nf<nf::MazuNat>();
  chain->emplace_nf<nf::IpFilter>(std::vector<nf::AclRule>{
      nf::AclRule::drop_dst_port(81)});
  ShardedRuntime runtime{*chain, 3,
                         {platform::PlatformKind::kBess, true, false}};
  const ShardedRunResult result = runtime.run_workload(workload);

  std::uint64_t packets = 0;
  std::uint64_t drops = 0;
  std::size_t latency_samples = 0;
  for (const RunStats& stats : result.shard_stats) {
    packets += stats.packets;
    drops += stats.drops;
    latency_samples += stats.latency_us_all.count();
  }
  EXPECT_EQ(result.stats.packets, packets);
  EXPECT_EQ(result.stats.packets, workload.packet_count());
  EXPECT_EQ(result.stats.drops, drops);
  EXPECT_EQ(result.stats.latency_us_all.count(), latency_samples);
  // One per-flow time sample per flow, across all shards.
  EXPECT_EQ(result.flow_time_us.count(), workload.flows.size());
}

}  // namespace
}  // namespace speedybox::runtime
