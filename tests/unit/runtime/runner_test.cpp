#include "runtime/runner.hpp"

#include <gtest/gtest.h>

#include "nf/ip_filter.hpp"
#include "nf/monitor.hpp"
#include "test_helpers.hpp"
#include "trace/workload.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::tuple_n;

RunConfig bess_original() {
  return {platform::PlatformKind::kBess, /*speedybox=*/false, false};
}
RunConfig bess_speedybox() {
  return {platform::PlatformKind::kBess, /*speedybox=*/true, false};
}

TEST(Runner, OriginalModeProcessesThroughAllNfs) {
  ServiceChain chain;
  auto& m1 = chain.emplace_nf<nf::Monitor>("m1");
  auto& m2 = chain.emplace_nf<nf::Monitor>("m2");
  ChainRunner runner{chain, bess_original()};

  net::Packet packet = net::make_tcp_packet(tuple_n(1), "x");
  const PacketOutcome outcome = runner.process_packet(packet);
  EXPECT_FALSE(outcome.dropped);
  EXPECT_TRUE(outcome.initial);
  EXPECT_GT(outcome.work_cycles, 0u);
  EXPECT_GE(outcome.latency_cycles, outcome.work_cycles);
  EXPECT_EQ(m1.packets_processed(), 1u);
  EXPECT_EQ(m2.packets_processed(), 1u);
}

TEST(Runner, OriginalModeTagsInitVsSub) {
  ServiceChain chain;
  chain.emplace_nf<nf::Monitor>();
  ChainRunner runner{chain, bess_original()};
  for (int i = 0; i < 4; ++i) {
    net::Packet packet = net::make_tcp_packet(tuple_n(2), "x");
    runner.process_packet(packet);
  }
  EXPECT_EQ(runner.stats().work_cycles_initial.count(), 1u);
  EXPECT_EQ(runner.stats().work_cycles_subsequent.count(), 3u);
}

TEST(Runner, SpeedyBoxInitialRecordsThenSubsequentHitsFastPath) {
  ServiceChain chain;
  auto& monitor = chain.emplace_nf<nf::Monitor>();
  ChainRunner runner{chain, bess_speedybox()};

  net::Packet first = net::make_tcp_packet(tuple_n(3), "x");
  const PacketOutcome o1 = runner.process_packet(first);
  EXPECT_TRUE(o1.initial);
  EXPECT_EQ(chain.global_mat().size(), 1u);
  EXPECT_EQ(monitor.packets_processed(), 1u);

  net::Packet second = net::make_tcp_packet(tuple_n(3), "y");
  const PacketOutcome o2 = runner.process_packet(second);
  EXPECT_FALSE(o2.initial);
  // Fast path: the NF's process() is NOT called again, but its recorded
  // state function keeps the counters fresh.
  EXPECT_EQ(monitor.packets_processed(), 1u);
  ASSERT_NE(monitor.counters_of(tuple_n(3)), nullptr);
  EXPECT_EQ(monitor.counters_of(tuple_n(3))->packets, 2u);
}

TEST(Runner, SpeedyBoxDropOnFastPath) {
  ServiceChain chain;
  chain.emplace_nf<nf::IpFilter>(
      std::vector<nf::AclRule>{nf::AclRule::drop_dst_port(80)});
  ChainRunner runner{chain, bess_speedybox()};

  net::Packet first = net::make_tcp_packet(tuple_n(4, 80), "x");
  EXPECT_TRUE(runner.process_packet(first).dropped);
  net::Packet second = net::make_tcp_packet(tuple_n(4, 80), "x");
  const PacketOutcome outcome = runner.process_packet(second);
  EXPECT_TRUE(outcome.dropped);
  EXPECT_EQ(runner.stats().drops, 2u);
}

TEST(Runner, TeardownErasesRulesAndFid) {
  ServiceChain chain;
  chain.emplace_nf<nf::Monitor>();
  ChainRunner runner{chain, bess_speedybox()};

  net::Packet open = net::make_tcp_packet(tuple_n(5), "x");
  runner.process_packet(open);
  EXPECT_EQ(chain.global_mat().size(), 1u);

  net::Packet fin = net::make_tcp_packet(
      tuple_n(5), "", net::kTcpFlagFin | net::kTcpFlagAck);
  runner.process_packet(fin);
  EXPECT_EQ(chain.global_mat().size(), 0u);
  EXPECT_EQ(chain.classifier().active_flows(), 0u);
  EXPECT_EQ(chain.local_mat(0).size(), 0u);
}

TEST(Runner, MalformedPacketDroppedInSpeedyBoxMode) {
  ServiceChain chain;
  chain.emplace_nf<nf::Monitor>();
  ChainRunner runner{chain, bess_speedybox()};
  net::Packet garbage{std::vector<std::uint8_t>(16, 1)};
  EXPECT_TRUE(runner.process_packet(garbage).dropped);
}

TEST(Runner, RunWorkloadAggregatesStats) {
  ServiceChain chain;
  chain.emplace_nf<nf::Monitor>();
  ChainRunner runner{chain, bess_speedybox()};
  const trace::Workload workload = trace::make_uniform_workload(5, 8, 64);
  const RunStats& stats = runner.run_workload(workload);
  EXPECT_EQ(stats.packets, 40u);
  EXPECT_EQ(stats.latency_us_initial.count(), 5u);
  EXPECT_EQ(stats.latency_us_subsequent.count(), 35u);
  EXPECT_EQ(runner.flow_time_us().count(), 5u);
  EXPECT_GT(runner.flow_time_us().mean(), 0.0);
}

TEST(Runner, PerNfAttributionInOriginalMode) {
  ServiceChain chain;
  chain.emplace_nf<nf::Monitor>("a");
  chain.emplace_nf<nf::Monitor>("b");
  RunConfig config = bess_original();
  config.measure_per_nf = true;
  ChainRunner runner{chain, config};
  const trace::Workload workload = trace::make_uniform_workload(2, 10, 64);
  runner.run_workload(workload);
  ASSERT_EQ(runner.stats().per_nf_mean_cycles.size(), 2u);
  EXPECT_GT(runner.stats().per_nf_mean_cycles[0], 0.0);
  EXPECT_GT(runner.stats().per_nf_mean_cycles[1], 0.0);
}

TEST(Runner, RateModelProducesFiniteRates) {
  ServiceChain chain;
  chain.emplace_nf<nf::Monitor>();
  for (const auto platform :
       {platform::PlatformKind::kBess, platform::PlatformKind::kOnvm}) {
    ServiceChain fresh;
    fresh.emplace_nf<nf::Monitor>();
    ChainRunner runner{fresh, {platform, false, false}};
    runner.run_workload(trace::make_uniform_workload(3, 20, 64));
    const double mpps = runner.stats().rate_mpps(platform);
    EXPECT_GT(mpps, 0.0);
    EXPECT_LT(mpps, 10000.0);
  }
}

TEST(Runner, OnvmLatencyExceedsBessLatency) {
  // Same chain + workload: ONVM pays a ring hop per NF, BESS a cheap module
  // hop, so modeled ONVM latency must be strictly higher.
  const trace::Workload workload = trace::make_uniform_workload(3, 30, 64);
  double bess_latency, onvm_latency;
  {
    ServiceChain chain;
    chain.emplace_nf<nf::Monitor>();
    chain.emplace_nf<nf::Monitor>("m2");
    ChainRunner runner{chain, bess_original()};
    bess_latency =
        runner.run_workload(workload).latency_us_subsequent.percentile(50);
  }
  {
    ServiceChain chain;
    chain.emplace_nf<nf::Monitor>();
    chain.emplace_nf<nf::Monitor>("m2");
    ChainRunner runner{chain,
                       {platform::PlatformKind::kOnvm, false, false}};
    onvm_latency =
        runner.run_workload(workload).latency_us_subsequent.percentile(50);
  }
  EXPECT_GT(onvm_latency, bess_latency);
}

TEST(Runner, EventsCountedInStats) {
  ServiceChain chain;
  chain.emplace_nf<nf::Monitor>();
  ChainRunner runner{chain, bess_speedybox()};
  net::Packet first = net::make_tcp_packet(tuple_n(6), "x");
  runner.process_packet(first);

  // Register a hair-trigger event directly.
  core::EventRegistration event;
  event.fid = first.fid();
  event.nf_index = 0;
  event.name = "test";
  event.condition = [] { return true; };
  event.update = [] { return core::EventUpdate{}; };
  chain.global_mat().event_table().register_event(std::move(event));
  chain.global_mat().consolidate_flow(first.fid());  // refresh event flag

  net::Packet second = net::make_tcp_packet(tuple_n(6), "x");
  const PacketOutcome outcome = runner.process_packet(second);
  EXPECT_EQ(outcome.events_triggered, 1u);
  EXPECT_EQ(runner.stats().events_triggered, 1u);
}

}  // namespace
}  // namespace speedybox::runtime
