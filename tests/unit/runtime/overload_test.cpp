// Unit tests for the overload-control subsystem (DESIGN.md §9): the
// deterministic OverloadController (token bucket, watermark gate, drop
// policies, graceful degradation), the WatermarkGate hysteresis, the
// OverloadStats merge, and the FaultInjector wrapper.
#include "runtime/overload.hpp"

#include <gtest/gtest.h>

#include "nf/monitor.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/runner.hpp"
#include "test_helpers.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::tuple_n;
using Decision = OverloadController::Decision;

OverloadConfig base_config(DropPolicy policy, double offered_load,
                           std::size_t queue_capacity) {
  OverloadConfig config;
  config.enabled = true;
  config.policy = policy;
  config.offered_load = offered_load;
  config.queue_capacity = queue_capacity;
  config.degrade_after = 0;  // degradation tested separately
  return config;
}

/// The per-flow-fair band mapping, duplicated from overload.cpp so tests
/// can pick hashes on either side of the shed boundary deterministically.
std::uint64_t band_of(std::uint64_t flow_hash) {
  return (flow_hash * 0x9E3779B97F4A7C15ull) >> 54;
}

std::uint64_t hash_with_band(bool low_band) {
  for (std::uint64_t h = 1; h < 100000; ++h) {
    const std::uint64_t band = band_of(h);
    if (low_band && band < 64) return h;
    if (!low_band && band >= 960) return h;
  }
  ADD_FAILURE() << "no hash found for requested band";
  return 0;
}

TEST(DropPolicyNames, RoundTrip) {
  for (const DropPolicy policy :
       {DropPolicy::kTailDrop, DropPolicy::kPerFlowFair,
        DropPolicy::kSloEarlyDrop}) {
    const auto parsed = parse_drop_policy(drop_policy_name(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_drop_policy("head-drop").has_value());
  EXPECT_FALSE(parse_drop_policy("").has_value());
}

TEST(WatermarkGate, Hysteresis) {
  WatermarkGate gate{8, 3};
  EXPECT_FALSE(gate.update(7));
  EXPECT_TRUE(gate.update(8)) << "engages at high";
  EXPECT_TRUE(gate.update(5)) << "stays engaged above low";
  EXPECT_TRUE(gate.update(4));
  EXPECT_FALSE(gate.update(3)) << "clears at low";
  EXPECT_FALSE(gate.update(7)) << "re-engaging needs high again";
  EXPECT_TRUE(gate.update(8));
}

TEST(WatermarkGate, LowClampsToHigh) {
  WatermarkGate gate{4, 10};
  EXPECT_TRUE(gate.update(4));
  EXPECT_FALSE(gate.update(4)) << "low clamped to high: drains immediately";
}

TEST(OverloadStats, MergeFromAddsEveryField) {
  OverloadStats a;
  a.offered = 1;
  a.admitted = 2;
  a.shed_admission = 3;
  a.shed_watermark = 4;
  a.shed_early_drop = 5;
  a.faulted = 6;
  a.degraded_flows = 7;
  a.degraded_packets = 8;
  a.degraded_episodes = 9;
  a.degraded_episode_packets = 10;
  OverloadStats b = a;
  b.merge_from(a);
  EXPECT_EQ(b.offered, 2u);
  EXPECT_EQ(b.admitted, 4u);
  EXPECT_EQ(b.shed_admission, 6u);
  EXPECT_EQ(b.shed_watermark, 8u);
  EXPECT_EQ(b.shed_early_drop, 10u);
  EXPECT_EQ(b.faulted, 12u);
  EXPECT_EQ(b.degraded_flows, 14u);
  EXPECT_EQ(b.degraded_packets, 16u);
  EXPECT_EQ(b.degraded_episodes, 18u);
  EXPECT_EQ(b.degraded_episode_packets, 20u);
  EXPECT_EQ(b.shed_total(), 24u);
}

TEST(OverloadController, UnderloadNeverSheds) {
  // At 0.5x capacity the virtual queue drains faster than it fills: every
  // arrival admits, forever.
  OverloadController controller{
      base_config(DropPolicy::kTailDrop, 0.5, 64)};
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(controller.offer(i, false), Decision::kAdmit);
  }
  EXPECT_FALSE(controller.pressured());
  EXPECT_LE(controller.queue_depth(), 1.0);
}

TEST(OverloadController, OverloadTailDropShedsTheExcess) {
  // At 2x, depth grows 0.5/arrival until the high watermark (56 of 64),
  // then tail-drop sheds every arrival while pressured — a deterministic
  // sawtooth between the watermarks.
  OverloadController controller{
      base_config(DropPolicy::kTailDrop, 2.0, 64)};
  int admitted = 0;
  int shed = 0;
  bool shed_before_pressure = false;
  for (int i = 0; i < 1000; ++i) {
    const Decision decision = controller.offer(i, false);
    if (decision == Decision::kAdmit) {
      ++admitted;
      if (shed > 0 && !controller.pressured()) {
        // Recovered below the low watermark: admitting again is correct.
      }
    } else {
      ASSERT_EQ(decision, Decision::kShedWatermark);
      if (admitted < 100) shed_before_pressure = true;
      ++shed;
    }
  }
  EXPECT_FALSE(shed_before_pressure) << "no shedding before the queue fills";
  EXPECT_GT(shed, 0);
  EXPECT_EQ(admitted + shed, 1000) << "every arrival is admitted or shed";
  // Long-run admit fraction approaches the service rate: 1/offered_load.
  EXPECT_NEAR(static_cast<double>(admitted) / 1000.0, 0.5, 0.15);
  EXPECT_LE(controller.queue_depth(), 64.0) << "hard queue bound";
}

TEST(OverloadController, HardBoundCapsTheQueueWhateverThePolicy) {
  // A per-flow-fair survivor band can outpace the drain; the capacity
  // bound must tail-drop what the policy admitted past it.
  OverloadConfig config = base_config(DropPolicy::kPerFlowFair, 2.0, 16);
  OverloadController controller{config};
  const std::uint64_t keep = hash_with_band(/*low_band=*/false);
  for (int i = 0; i < 500; ++i) {
    controller.offer(keep, false);
    ASSERT_LE(controller.queue_depth(),
              static_cast<double>(config.queue_capacity));
  }
}

TEST(OverloadController, PerFlowFairShedsWholeBands) {
  // Once pressured, the low hash bands shed every packet and the high
  // bands keep their full sequence (goodput, not just throughput).
  OverloadController controller{
      base_config(DropPolicy::kPerFlowFair, 2.0, 32)};
  const std::uint64_t keep = hash_with_band(false);
  const std::uint64_t dump = hash_with_band(true);
  // Drive to pressure with the surviving flow only.
  int guard = 0;
  while (!controller.pressured() && guard++ < 10000) {
    controller.offer(keep, false);
  }
  ASSERT_TRUE(controller.pressured());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(controller.offer(dump, false), Decision::kShedWatermark)
        << "low band sheds while pressured";
    EXPECT_EQ(controller.offer(keep, false), Decision::kAdmit)
        << "high band keeps its packets";
  }
}

TEST(OverloadController, TokenBucketShapesAdmission) {
  // offered_load 1.0 keeps the queue flat, so only the bucket acts:
  // burst 2 drains, then rate 0.5/arrival alternates admit/shed.
  OverloadConfig config = base_config(DropPolicy::kTailDrop, 1.0, 1024);
  config.admission_rate = 0.5;
  config.admission_burst = 2.0;
  OverloadController controller{config};
  std::vector<Decision> decisions;
  for (int i = 0; i < 9; ++i) {
    decisions.push_back(controller.offer(7, false));
  }
  const std::vector<Decision> expected{
      Decision::kAdmit,         Decision::kAdmit,
      Decision::kAdmit,         Decision::kShedAdmission,
      Decision::kAdmit,         Decision::kShedAdmission,
      Decision::kAdmit,         Decision::kShedAdmission,
      Decision::kAdmit,
  };
  EXPECT_EQ(decisions, expected);
}

TEST(OverloadController, SloEarlyDropShedsDoomedUnconditionally) {
  OverloadController slo{
      base_config(DropPolicy::kSloEarlyDrop, 0.5, 64)};
  EXPECT_EQ(slo.offer(1, /*doomed=*/true), Decision::kShedEarlyDrop)
      << "doomed flows shed even with an empty queue";
  EXPECT_EQ(slo.offer(1, /*doomed=*/false), Decision::kAdmit);
  // Other policies ignore the doomed flag entirely.
  OverloadController tail{base_config(DropPolicy::kTailDrop, 0.5, 64)};
  EXPECT_EQ(tail.offer(1, /*doomed=*/true), Decision::kAdmit);
}

TEST(OverloadController, ExternalPressureJoinsTheGate) {
  // A real ingress ring over its watermark must trigger policy shedding
  // even though the virtual queue is empty.
  OverloadController controller{
      base_config(DropPolicy::kTailDrop, 0.5, 64)};
  EXPECT_EQ(controller.offer(1, false, /*external_pressure=*/true),
            Decision::kShedWatermark);
  EXPECT_EQ(controller.offer(1, false, /*external_pressure=*/false),
            Decision::kAdmit);
}

TEST(OverloadController, DegradationEpisodeLifecycle) {
  OverloadConfig config = base_config(DropPolicy::kTailDrop, 0.5, 64);
  config.degrade_after = 3;
  OverloadController controller{config};
  // Three consecutive pressured arrivals engage degradation...
  controller.offer(1, false, true);
  controller.offer(1, false, true);
  EXPECT_FALSE(controller.degraded());
  controller.offer(1, false, true);
  EXPECT_TRUE(controller.degraded());
  EXPECT_EQ(controller.degraded_episodes(), 1u);
  EXPECT_FALSE(controller.take_finished_episode().has_value())
      << "episode still open";
  // ...two more arrivals ride the episode, then pressure clears.
  controller.offer(1, false, true);
  controller.offer(1, false, true);
  controller.offer(1, false, false);
  EXPECT_FALSE(controller.degraded());
  const auto episode = controller.take_finished_episode();
  ASSERT_TRUE(episode.has_value());
  EXPECT_EQ(*episode, 4u) << "arrivals 3..6 rode the episode";
  EXPECT_FALSE(controller.take_finished_episode().has_value())
      << "the latch drains on read";
  EXPECT_EQ(controller.degraded_episode_packets(), 4u);
  // An interrupted streak never degrades.
  controller.offer(1, false, true);
  controller.offer(1, false, false);
  controller.offer(1, false, true);
  EXPECT_FALSE(controller.degraded());
  EXPECT_EQ(controller.degraded_episodes(), 1u);
}

TEST(ChainRunnerDegradation, NewFlowsGetDefaultRulesUnderPressure) {
  // per-flow-fair at 2x with a tiny queue: pressure engages quickly and the
  // surviving bands keep arriving, so some initial packets are admitted
  // while degraded and must take the pre-consolidated default rule.
  ServiceChain chain;
  chain.emplace_nf<nf::Monitor>();
  RunConfig run_config{platform::PlatformKind::kBess, /*speedybox=*/true,
                       false};
  ChainRunner runner{chain, run_config};
  OverloadConfig overload = base_config(DropPolicy::kPerFlowFair, 2.0, 16);
  overload.degrade_after = 4;
  runner.set_overload_policy(overload);

  for (std::uint32_t i = 0; i < 2000; ++i) {
    net::Packet packet = net::make_tcp_packet(tuple_n(i), "x");
    runner.process_packet(packet);
  }
  const OverloadStats& stats = runner.stats().overload;
  EXPECT_EQ(stats.offered, 2000u);
  EXPECT_EQ(stats.admitted + stats.shed_total(), stats.offered)
      << "arrival conservation";
  EXPECT_EQ(stats.admitted, runner.stats().packets);
  EXPECT_GT(stats.shed_watermark, 0u);
  EXPECT_GT(stats.degraded_episodes, 0u);
  EXPECT_GT(stats.degraded_flows, 0u)
      << "flows admitted while degraded take the default rule";
  EXPECT_GT(stats.degraded_episode_packets, 0u);
}

// ---------------------------------------------------------------- faults --

net::Packet flow_packet(std::uint32_t flow, const char* payload = "x") {
  return net::make_tcp_packet(tuple_n(flow), payload);
}

TEST(FaultSpecParse, AcceptsEveryKey) {
  const auto parsed = parse_fault_spec(
      "snort:fail-every=3,latency-every=5,latency-cycles=777,crash-at=9");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first, "snort");
  EXPECT_EQ(parsed->second.fail_every, 3u);
  EXPECT_EQ(parsed->second.latency_every, 5u);
  EXPECT_EQ(parsed->second.latency_cycles, 777u);
  EXPECT_EQ(parsed->second.crash_at, 9u);
  EXPECT_EQ(parsed->second.to_string(),
            "fail-every=3,latency-every=5,latency-cycles=777,crash-at=9");
}

TEST(FaultSpecParse, RejectsMalformedSpecs) {
  EXPECT_FALSE(parse_fault_spec("no-colon").has_value());
  EXPECT_FALSE(parse_fault_spec(":fail-every=3").has_value());
  EXPECT_FALSE(parse_fault_spec("nat:bad-key=3").has_value());
  EXPECT_FALSE(parse_fault_spec("nat:fail-every=abc").has_value());
  EXPECT_FALSE(parse_fault_spec("nat:latency-cycles=5").has_value())
      << "cycles alone schedules nothing";
}

TEST(FaultInjector, TransientFailuresAreDroppedAndFaulted) {
  FaultSpec spec;
  spec.fail_every = 3;
  FaultInjector injector{std::make_unique<nf::Monitor>("m"), spec};
  int faulted = 0;
  for (int i = 1; i <= 10; ++i) {
    net::Packet packet = flow_packet(1);
    injector.process(packet, nullptr);
    if (packet.dropped()) {
      EXPECT_TRUE(packet.faulted()) << "lost packets are faulted, not drops";
      EXPECT_EQ(i % 3, 0) << "deterministic schedule";
      ++faulted;
    }
  }
  EXPECT_EQ(faulted, 3);
  EXPECT_EQ(injector.transient_failures(), 3u);
  const auto& monitor = static_cast<const nf::Monitor&>(injector.inner());
  EXPECT_EQ(monitor.packets_processed(), 7u)
      << "the inner NF never sees lost packets";
  EXPECT_EQ(injector.name(), "m") << "the wrapper is transparent";
}

TEST(FaultInjector, LatencySpikesAreCountedAndHarmless) {
  FaultSpec spec;
  spec.latency_every = 4;
  spec.latency_cycles = 500;  // keep the busy-spin cheap in tests
  FaultInjector injector{std::make_unique<nf::Monitor>("m"), spec};
  for (int i = 0; i < 8; ++i) {
    net::Packet packet = flow_packet(2);
    injector.process(packet, nullptr);
    EXPECT_FALSE(packet.dropped());
  }
  EXPECT_EQ(injector.latency_spikes(), 2u);
  EXPECT_EQ(static_cast<const nf::Monitor&>(injector.inner())
                .packets_processed(),
            8u);
}

TEST(FaultInjector, CrashAndRestoreSwapsInAFreshClone) {
  FaultSpec spec;
  spec.crash_at = 3;
  FaultInjector injector{std::make_unique<nf::Monitor>("m"), spec};
  for (int i = 0; i < 2; ++i) {
    net::Packet packet = flow_packet(3);
    injector.process(packet, nullptr);
  }
  EXPECT_EQ(injector.crashes(), 0u);
  net::Packet third = flow_packet(3);
  injector.process(third, nullptr);
  EXPECT_EQ(injector.crashes(), 1u);
  // The restored instance starts from checkpointed CONFIG, not state: it
  // has only seen the post-crash packet.
  EXPECT_EQ(static_cast<const nf::Monitor&>(injector.inner())
                .packets_processed(),
            1u);
  net::Packet fourth = flow_packet(3);
  injector.process(fourth, nullptr);
  EXPECT_EQ(injector.crashes(), 1u) << "crash-at is one-shot";
  EXPECT_EQ(static_cast<const nf::Monitor&>(injector.inner())
                .packets_processed(),
            2u);
}

TEST(FaultInjector, CloneRunsAnIndependentSchedule) {
  FaultSpec spec;
  spec.fail_every = 2;
  FaultInjector original{std::make_unique<nf::Monitor>("m"), spec};
  auto cloned = original.clone();
  ASSERT_NE(cloned, nullptr);
  auto& copy = static_cast<FaultInjector&>(*cloned);
  for (int i = 0; i < 4; ++i) {
    net::Packet packet = flow_packet(4);
    copy.process(packet, nullptr);
  }
  EXPECT_EQ(copy.transient_failures(), 2u);
  EXPECT_EQ(original.transient_failures(), 0u)
      << "per-shard schedules are independent";
  EXPECT_EQ(copy.spec().fail_every, 2u);
}

}  // namespace
}  // namespace speedybox::runtime
