// Unit coverage for the elastic control plane (DESIGN.md §10): the
// hysteresis scaling policy in isolation, the chain-level flow-migration
// engine, and the controller end-to-end against a real sharded runtime.
// The chain-level safety property (byte-identical outputs under mid-trace
// resharding) lives in the autoscale differential-equivalence harness;
// these tests pin the mechanisms it composes.
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "control/controller.hpp"
#include "control/flow_migration.hpp"
#include "net/packet_builder.hpp"
#include "nf/ip_filter.hpp"
#include "nf/monitor.hpp"
#include "nf/network_function.hpp"
#include "runtime/chain.hpp"
#include "runtime/runner.hpp"
#include "runtime/sharded_runtime.hpp"
#include "telemetry/metrics.hpp"
#include "test_helpers.hpp"

namespace speedybox::control {
namespace {

using speedybox::testing::tuple_n;

// --- ScalingPolicy --------------------------------------------------------

AutoscaleConfig fast_config() {
  AutoscaleConfig config;
  config.slo_us = 100.0;
  config.min_shards = 1;
  config.max_shards = 4;
  config.up_streak = 2;
  config.down_streak = 2;
  config.cooldown_windows = 0;
  return config;
}

ControlSignals breach_signals() {
  ControlSignals signals;
  signals.p99_latency_us = 500.0;  // over the 100us SLO
  signals.window_packets = 1000;
  return signals;
}

ControlSignals calm_signals() {
  ControlSignals signals;
  signals.p99_latency_us = 10.0;  // under slo * scale_down_fraction
  signals.window_packets = 1000;
  return signals;
}

TEST(ScalingPolicy, ScalesUpOnlyAfterTheBreachStreak) {
  ScalingPolicy policy{fast_config()};
  EXPECT_EQ(policy.decide(breach_signals(), 1), 1u);  // streak 1 of 2
  EXPECT_EQ(policy.decide(breach_signals(), 1), 2u);  // streak 2: up
}

TEST(ScalingPolicy, CalmWindowResetsTheBreachStreak) {
  ScalingPolicy policy{fast_config()};
  EXPECT_EQ(policy.decide(breach_signals(), 1), 1u);
  EXPECT_EQ(policy.decide(calm_signals(), 1), 1u);  // resets breach streak
  EXPECT_EQ(policy.decide(breach_signals(), 1), 1u);  // back to streak 1
  EXPECT_EQ(policy.decide(breach_signals(), 1), 2u);
}

TEST(ScalingPolicy, ScalesDownOnlyAfterTheCalmStreak) {
  ScalingPolicy policy{fast_config()};
  EXPECT_EQ(policy.decide(calm_signals(), 3), 3u);
  EXPECT_EQ(policy.decide(calm_signals(), 3), 2u);
}

TEST(ScalingPolicy, MiddlingWindowIsNeitherBreachNorCalm) {
  // p99 between scale_down_fraction * slo and slo: both streaks reset.
  ScalingPolicy policy{fast_config()};
  ControlSignals middling;
  middling.p99_latency_us = 80.0;
  middling.window_packets = 1000;
  EXPECT_EQ(policy.decide(calm_signals(), 2), 2u);
  EXPECT_EQ(policy.decide(middling, 2), 2u);
  EXPECT_EQ(policy.calm_streak(), 0);
  EXPECT_EQ(policy.breach_streak(), 0);
}

TEST(ScalingPolicy, EmptyWindowNeverScalesDown) {
  // An idle trace tail must not shrink the deployment: calm requires
  // observed packets.
  ScalingPolicy policy{fast_config()};
  ControlSignals idle;
  idle.p99_latency_us = 0.0;
  idle.window_packets = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(policy.decide(idle, 2), 2u);
  }
}

TEST(ScalingPolicy, QueueAndAdmissionPressureCountAsBreaches) {
  AutoscaleConfig config = fast_config();
  config.up_streak = 1;
  {
    ScalingPolicy policy{config};
    ControlSignals pressured = calm_signals();
    pressured.ring_occupancy = 0.75;  // >= occupancy_high
    EXPECT_EQ(policy.decide(pressured, 1), 2u);
  }
  {
    ScalingPolicy policy{config};
    ControlSignals shedding = calm_signals();
    shedding.admit_fraction = 0.90;  // < admit_low
    EXPECT_EQ(policy.decide(shedding, 1), 2u);
  }
}

TEST(ScalingPolicy, CooldownDefersButStreaksKeepBuilding) {
  AutoscaleConfig config = fast_config();
  config.cooldown_windows = 2;
  ScalingPolicy policy{config};
  EXPECT_EQ(policy.decide(breach_signals(), 1), 1u);
  EXPECT_EQ(policy.decide(breach_signals(), 1), 2u);  // up; cooldown armed
  // Two cooldown windows absorb the decisions; the breach streak still
  // accumulates, so the first post-cooldown window fires immediately.
  EXPECT_EQ(policy.decide(breach_signals(), 2), 2u);
  EXPECT_EQ(policy.decide(breach_signals(), 2), 2u);
  EXPECT_GE(policy.breach_streak(), config.up_streak);
  EXPECT_EQ(policy.decide(breach_signals(), 2), 3u);
}

TEST(ScalingPolicy, ClampsOutOfBandCountsBeforeJudging) {
  ScalingPolicy policy{fast_config()};
  EXPECT_EQ(policy.decide(calm_signals(), 9), 4u);  // above max_shards
  EXPECT_EQ(policy.decide(breach_signals(), 0), 1u);  // below min_shards
}

TEST(ScalingPolicy, NeverLeavesTheConfiguredRange) {
  AutoscaleConfig config = fast_config();
  config.up_streak = 1;
  config.down_streak = 1;
  ScalingPolicy up{config};
  EXPECT_EQ(up.decide(breach_signals(), 4), 4u);  // at ceiling: stays
  ScalingPolicy down{config};
  EXPECT_EQ(down.decide(calm_signals(), 1), 1u);  // at floor: stays
}

// --- Flow migration -------------------------------------------------------

std::unique_ptr<runtime::ServiceChain> monitor_filter_chain() {
  auto chain = std::make_unique<runtime::ServiceChain>("mini");
  chain->emplace_nf<nf::Monitor>();
  chain->emplace_nf<nf::IpFilter>(std::vector<nf::AclRule>{});
  return chain;
}

TEST(FlowMigration, RequireMigratableNamesTheOffendingNf) {
  struct Opaque final : nf::NetworkFunction {
    Opaque() : NetworkFunction("legacy-blackbox") {}
    void process(net::Packet&, core::SpeedyBoxContext*) override {}
  };
  runtime::ServiceChain chain{"mixed"};
  chain.emplace_nf<nf::Monitor>();
  chain.emplace_nf<Opaque>();
  try {
    require_migratable(chain);
    FAIL() << "chain with a non-migratable NF must be refused";
  } catch (const std::logic_error& error) {
    EXPECT_NE(std::string{error.what()}.find("legacy-blackbox"),
              std::string::npos);
  }
  EXPECT_NO_THROW(require_migratable(*monitor_filter_chain()));
}

TEST(FlowMigration, MigratedFlowsTakeTheFastPathOnTheDestination) {
  const runtime::RunConfig run_config{platform::PlatformKind::kBess, true,
                                      false};
  auto source_chain = monitor_filter_chain();
  auto control_chain = monitor_filter_chain();  // never-migrated baseline
  runtime::ChainRunner source_runner{*source_chain, run_config};
  runtime::ChainRunner control_runner{*control_chain, run_config};
  for (std::uint32_t flow = 0; flow < 4; ++flow) {
    for (int i = 0; i < 3; ++i) {
      net::Packet a = net::make_tcp_packet(tuple_n(flow), "warm");
      net::Packet b = net::make_tcp_packet(tuple_n(flow), "warm");
      source_runner.process_packet(a);
      control_runner.process_packet(b);
    }
  }

  auto dest_chain = monitor_filter_chain();
  const auto flows = source_chain->classifier().active_tuples();
  ASSERT_EQ(flows.size(), 4u);
  EXPECT_EQ(migrate_flows(*source_chain, *dest_chain, flows), 4u);

  // The source sheds everything it held for the migrated flows...
  EXPECT_TRUE(source_chain->classifier().active_tuples().empty());
  auto& source_monitor =
      static_cast<nf::Monitor&>(source_chain->nf(0));
  EXPECT_EQ(source_monitor.flow_count(), 0u);

  // ...and the destination continues them exactly where the baseline is:
  // same bytes, same audit counters, and on the consolidated fast path
  // (no re-recording pass).
  runtime::ChainRunner dest_runner{*dest_chain, run_config};
  for (std::uint32_t flow = 0; flow < 4; ++flow) {
    net::Packet migrated = net::make_tcp_packet(tuple_n(flow), "after");
    net::Packet baseline = net::make_tcp_packet(tuple_n(flow), "after");
    const auto outcome = dest_runner.process_packet(migrated);
    control_runner.process_packet(baseline);
    EXPECT_FALSE(outcome.initial) << "flow " << flow;
    EXPECT_TRUE(outcome.fast_path) << "flow " << flow;
    EXPECT_TRUE(speedybox::testing::same_bytes(migrated, baseline))
        << "flow " << flow;
  }
  auto& dest_monitor = static_cast<nf::Monitor&>(dest_chain->nf(0));
  auto& control_monitor =
      static_cast<nf::Monitor&>(control_chain->nf(0));
  ASSERT_EQ(dest_monitor.flow_count(), control_monitor.flow_count());
  control_monitor.for_each_flow(
      [&](const net::FiveTuple& tuple, const nf::FlowCounters& counters) {
        const nf::FlowCounters* dest = dest_monitor.counters_of(tuple);
        ASSERT_NE(dest, nullptr) << tuple.to_string();
        EXPECT_EQ(*dest, counters) << tuple.to_string();
      });
}

// --- Controller against a live runtime ------------------------------------

std::vector<net::Packet> warm_packets(std::size_t count) {
  std::vector<net::Packet> packets;
  packets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    packets.push_back(net::make_tcp_packet(
        tuple_n(static_cast<std::uint32_t>(i % 8)), "payload"));
  }
  return packets;
}

TEST(Controller, ScalesUpUnderAnUnmeetableSloAndLosesNothing) {
  telemetry::Registry registry;
  auto prototype = monitor_filter_chain();
  runtime::ShardedRuntime runtime{
      *prototype, 1, {platform::PlatformKind::kBess, true, false}, 1024,
      &registry, "rt/"};

  AutoscaleConfig config;
  config.slo_us = 0.001;  // unmeetable: every window is a breach
  config.min_shards = 1;
  config.max_shards = 2;
  config.interval_packets = 128;
  config.up_streak = 1;
  config.cooldown_windows = 0;
  Controller controller{config, registry};
  controller.attach(runtime);

  const auto result = runtime.run_packets(warm_packets(4096));
  ASSERT_GE(controller.scale_events().size(), 1u);
  EXPECT_EQ(controller.scale_events().front().from_shards, 1u);
  EXPECT_EQ(controller.scale_events().front().to_shards, 2u);
  EXPECT_EQ(runtime.active_shard_count(), 2u);
  EXPECT_EQ(result.stats.packets, 4096u);
  EXPECT_EQ(result.stats.drops, 0u);
  EXPECT_EQ(result.outcomes.size(), 4096u);

  // The controller's own cells surface through the standard exporters.
  const telemetry::ShardSnapshot total = registry.snapshot().aggregate();
  std::uint64_t scale_events = 0;
  std::uint64_t active_shards = 0;
  for (const auto& [name, value] : total.counters) {
    if (name == "scale_events") scale_events = value;
  }
  for (const auto& [name, value] : total.gauges) {
    if (name == "active_shards") active_shards = value;
  }
  EXPECT_EQ(scale_events, controller.scale_events().size());
  EXPECT_EQ(active_shards, 2u);
}

TEST(Controller, ScalesDownWhenCalmAndRetiredShardsHoldNoFlows) {
  telemetry::Registry registry;
  auto prototype = monitor_filter_chain();
  runtime::ShardedRuntime runtime{
      *prototype, 2, {platform::PlatformKind::kBess, true, false}, 1024,
      &registry, "rt/"};

  AutoscaleConfig config;
  config.slo_us = 1e9;  // everything is calm
  config.min_shards = 1;
  config.max_shards = 2;
  config.down_streak = 1;
  config.cooldown_windows = 0;
  Controller controller{config, registry};
  controller.attach(runtime);

  // Drive the tick by hand at a quiesced boundary so the window is
  // guaranteed non-empty (the workers have visibly processed the burst).
  for (const net::Packet& packet : warm_packets(512)) {
    runtime.push(packet);
  }
  runtime.quiesce();
  controller.tick(runtime);
  ASSERT_EQ(controller.scale_events().size(), 1u);
  EXPECT_EQ(controller.scale_events().front().from_shards, 2u);
  EXPECT_EQ(controller.scale_events().front().to_shards, 1u);
  EXPECT_EQ(runtime.active_shard_count(), 1u);

  // Scale-down must shed no packets and leave no flow behind on the
  // retired shard.
  EXPECT_TRUE(runtime.shard_chain(1).classifier().active_tuples().empty());
  for (const net::Packet& packet : warm_packets(256)) {
    runtime.push(packet);
  }
  const auto result = runtime.finish();
  EXPECT_EQ(result.stats.packets, 768u);
  EXPECT_EQ(result.stats.drops, 0u);
}

}  // namespace
}  // namespace speedybox::control
