// Property: every BENCH_*.json emitter output validates against the shared
// schema (bench/bench_schema.hpp) — required keys, finite numbers, and the
// conservation identity offered == admitted + shed — across executor
// shapes, overload policies and workloads. Plus the gate itself: an
// unmodified document passes against itself, an injected regression fails.
#include "bench_schema.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util.hpp"
#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "runtime/onvm_executor.hpp"
#include "runtime/sharded_runtime.hpp"
#include "runtime/speedybox_pipeline.hpp"

namespace speedybox::bench {
namespace {

ChainFactory small_chain() {
  return [] {
    auto chain = std::make_unique<runtime::ServiceChain>("schema_chain");
    chain->emplace_nf<nf::MazuNat>();
    chain->emplace_nf<nf::Monitor>();
    return chain;
  };
}

trace::Workload small_workload() {
  return trace::make_uniform_workload(12, 8, 64);
}

/// Assemble a document exactly the way BenchJson::write does, but in
/// memory: the property under test is that the emitter pipeline
/// (config_row -> rows -> document) satisfies validate_bench_json.
telemetry::Json make_document(std::vector<telemetry::Json> rows) {
  using telemetry::Json;
  Json root = Json::object();
  root.set("bench", Json::string("property"));
  root.set("schema_version", Json::integer(kBenchSchemaVersion));
  root.set("cpu_ghz", Json::number(2.5));
  root.set("environment", environment_json(2, 32));
  root.set("params", Json::object());
  Json configs = Json::array();
  for (Json& row : rows) configs.push(std::move(row));
  root.set("configs", std::move(configs));
  return root;
}

void expect_valid(const telemetry::Json& doc) {
  const std::vector<std::string> issues = validate_bench_json(doc);
  EXPECT_TRUE(issues.empty());
  for (const std::string& issue : issues) ADD_FAILURE() << issue;
}

TEST(BenchSchemaProperty, RunnerRowsValidateBothModes) {
  const trace::Workload workload = small_workload();
  std::vector<telemetry::Json> rows;
  for (const bool speedybox : {false, true}) {
    const ConfigResult result =
        run_config(small_chain(), platform::PlatformKind::kBess, speedybox,
                   workload);
    rows.push_back(config_row(speedybox ? "speedybox" : "original", result));
  }
  expect_valid(make_document(std::move(rows)));
}

TEST(BenchSchemaProperty, OverloadRowsConserveAcrossPolicies) {
  const trace::Workload workload = small_workload();
  std::vector<telemetry::Json> rows;
  for (const runtime::DropPolicy policy :
       {runtime::DropPolicy::kTailDrop, runtime::DropPolicy::kPerFlowFair,
        runtime::DropPolicy::kSloEarlyDrop}) {
    runtime::OverloadConfig overload;
    overload.enabled = true;
    overload.offered_load = 2.0;
    overload.queue_capacity = 64;
    overload.policy = policy;
    const ConfigResult result =
        run_config(small_chain(), platform::PlatformKind::kBess, true,
                   workload, false, net::kDefaultBatchSize, overload);
    // The emitter must have included the overload split for this row, or
    // the conservation property is vacuous.
    ASSERT_GT(result.stats.overload.offered, 0u);
    rows.push_back(config_row("overload", result));
  }
  expect_valid(make_document(std::move(rows)));
}

TEST(BenchSchemaProperty, EveryExecutorShapeEmitsValidRows) {
  const trace::Workload workload = small_workload();
  std::vector<net::Packet> packets;
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    packets.push_back(workload.materialize(i));
  }
  std::vector<telemetry::Json> rows;
  {
    auto chain = small_chain()();
    runtime::ShardedRuntime sharded{
        *chain, 2, {platform::PlatformKind::kBess, true, false}};
    sharded.run(packets, nullptr);
    rows.push_back(config_row(
        "sharded", collect_result(sharded, platform::PlatformKind::kBess)));
  }
  {
    auto chain = small_chain()();
    runtime::SpeedyBoxPipeline pipeline{*chain};
    pipeline.run(packets, nullptr);
    rows.push_back(config_row(
        "pipeline", collect_result(pipeline, platform::PlatformKind::kOnvm)));
  }
  {
    auto chain = small_chain()();
    runtime::OnvmExecutor onvm{*chain};
    onvm.run(packets, nullptr);
    rows.push_back(config_row(
        "onvm", collect_result(onvm, platform::PlatformKind::kOnvm)));
  }
  expect_valid(make_document(std::move(rows)));
}

TEST(BenchSchemaProperty, ScenarioWorkloadRowsValidate) {
  std::vector<telemetry::Json> rows;
  for (const std::string& name : trace::named_scenarios()) {
    trace::ScenarioScale scale;
    scale.flows = 24;
    const auto workload = trace::make_named_scenario(name, scale);
    ASSERT_TRUE(workload.has_value()) << name;
    const ConfigResult result = run_config(
        small_chain(), platform::PlatformKind::kBess, true, *workload);
    telemetry::Json row = config_row(name, result);
    row.set("workload", telemetry::Json::string(name));
    rows.push_back(std::move(row));
  }
  expect_valid(make_document(std::move(rows)));
}

// -- Schema violations must be caught ---------------------------------------

TEST(BenchSchemaProperty, MissingTopLevelKeysAreReported) {
  using telemetry::Json;
  const Json doc = Json::object();
  const std::vector<std::string> issues = validate_bench_json(doc);
  EXPECT_GE(issues.size(), 5u);  // bench, version, cpu, env, params, configs
}

TEST(BenchSchemaProperty, NonFiniteNumberIsReported) {
  telemetry::Json row = telemetry::Json::object();
  row.set("config", telemetry::Json::string("bad"));
  row.set("rate_mpps",
          telemetry::Json::number(std::numeric_limits<double>::infinity()));
  const auto issues =
      validate_bench_json(make_document({std::move(row)}));
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().find("non-finite"), std::string::npos);
}

TEST(BenchSchemaProperty, ConservationViolationIsReported) {
  telemetry::Json row = telemetry::Json::object();
  row.set("config", telemetry::Json::string("bad"));
  row.set("offered", telemetry::Json::integer(100));
  row.set("admitted", telemetry::Json::integer(90));
  row.set("shed", telemetry::Json::integer(5));  // 90 + 5 != 100
  const auto issues =
      validate_bench_json(make_document({std::move(row)}));
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().find("conservation"), std::string::npos);
}

TEST(BenchSchemaProperty, RowWithoutConfigLabelIsReported) {
  telemetry::Json row = telemetry::Json::object();
  row.set("rate_mpps", telemetry::Json::number(1.0));
  const auto issues =
      validate_bench_json(make_document({std::move(row)}));
  EXPECT_FALSE(issues.empty());
}

// -- Gate behavior ----------------------------------------------------------

telemetry::Json gated_row(double rel_rate, double rel_p99) {
  telemetry::Json row = telemetry::Json::object();
  row.set("config", telemetry::Json::string("runner/speedybox"));
  row.set("chain", telemetry::Json::string("chain1"));
  row.set("workload", telemetry::Json::string("elephant-mice"));
  row.set("gated", telemetry::Json::boolean(true));
  row.set("rel_rate", telemetry::Json::number(rel_rate));
  row.set("rel_p99", telemetry::Json::number(rel_p99));
  return row;
}

TEST(BenchGateProperty, DocumentPassesAgainstItself) {
  const telemetry::Json doc = make_document({gated_row(1.8, 0.6)});
  const GateReport report = gate_compare(doc, doc, GateConfig{});
  EXPECT_TRUE(report.pass());
  EXPECT_EQ(report.rows_compared, 1);
  EXPECT_EQ(report.rows_missing, 0);
}

TEST(BenchGateProperty, TwentyPercentRateLossFailsTenPercentGate) {
  const telemetry::Json baseline = make_document({gated_row(2.0, 0.6)});
  const telemetry::Json slowed = make_document({gated_row(1.6, 0.6)});
  const GateReport report = gate_compare(baseline, slowed, GateConfig{});
  EXPECT_FALSE(report.pass());
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings.front().metric, "rel_rate");
}

TEST(BenchGateProperty, WithinToleranceJitterPasses) {
  const telemetry::Json baseline = make_document({gated_row(2.0, 0.6)});
  const telemetry::Json jittered = make_document({gated_row(1.85, 0.64)});
  EXPECT_TRUE(gate_compare(baseline, jittered, GateConfig{}).pass());
}

TEST(BenchGateProperty, P99GrowthBeyondToleranceFails) {
  const telemetry::Json baseline = make_document({gated_row(2.0, 0.6)});
  const telemetry::Json slower = make_document({gated_row(2.0, 0.9)});
  const GateReport report = gate_compare(baseline, slower, GateConfig{});
  EXPECT_FALSE(report.pass());
}

TEST(BenchGateProperty, PerRowToleranceOverridesDefault) {
  telemetry::Json loose = gated_row(2.0, 0.6);
  loose.set("tolerance_rel_rate", telemetry::Json::number(0.5));
  const telemetry::Json baseline = make_document({std::move(loose)});
  const telemetry::Json slowed = make_document({gated_row(1.2, 0.6)});
  // 40% loss passes the per-row 50% tolerance even though the default
  // gate is 10%.
  EXPECT_TRUE(gate_compare(baseline, slowed, GateConfig{}).pass());
}

TEST(BenchGateProperty, UngatedRowsAreIgnored) {
  telemetry::Json informational = gated_row(2.0, 0.6);
  informational.set("gated", telemetry::Json::boolean(false));
  const telemetry::Json baseline = make_document({std::move(informational)});
  const telemetry::Json slowed = make_document({gated_row(0.1, 9.9)});
  const GateReport report = gate_compare(baseline, slowed, GateConfig{});
  EXPECT_TRUE(report.pass());
  EXPECT_EQ(report.rows_compared, 0);
}

TEST(BenchGateProperty, UnstableTailSkipsP99WithoutLatencyFallback) {
  // A row that measured its own tail as too noisy drops rel_p99 and sets
  // rel_p99_unstable; the gate must not fall back to absolute latency for
  // that row, so a wild p99 swing in the candidate cannot flake the gate.
  telemetry::Json baseline_row = telemetry::Json::object();
  telemetry::Json candidate_row = telemetry::Json::object();
  for (telemetry::Json* row : {&baseline_row, &candidate_row}) {
    row->set("config", telemetry::Json::string("runner/speedybox"));
    row->set("chain", telemetry::Json::string("chain2"));
    row->set("workload", telemetry::Json::string("syn-flood"));
    row->set("gated", telemetry::Json::boolean(true));
    row->set("rel_rate", telemetry::Json::number(2.0));
    row->set("rel_p99_unstable", telemetry::Json::boolean(true));
  }
  baseline_row.set("latency_us_p99", telemetry::Json::number(5.0));
  candidate_row.set("latency_us_p99", telemetry::Json::number(40.0));
  const GateReport report =
      gate_compare(make_document({std::move(baseline_row)}),
                   make_document({std::move(candidate_row)}), GateConfig{});
  EXPECT_TRUE(report.pass());
  for (const GateFinding& finding : report.findings) {
    EXPECT_EQ(finding.metric, "rel_rate");
  }
}

TEST(BenchGateProperty, MissingRowFailsCoverage) {
  const telemetry::Json baseline = make_document({gated_row(2.0, 0.6)});
  telemetry::Json other = gated_row(2.0, 0.6);
  other.set("workload", telemetry::Json::string("sync-burst"));
  const telemetry::Json candidate = make_document({std::move(other)});
  const GateReport strict = gate_compare(baseline, candidate, GateConfig{});
  EXPECT_FALSE(strict.pass());
  EXPECT_EQ(strict.rows_missing, 1);
  GateConfig lenient;
  lenient.require_all_rows = false;
  EXPECT_TRUE(gate_compare(baseline, candidate, lenient).pass());
}

TEST(BenchGateProperty, InvalidDocumentFailsTheGate) {
  const telemetry::Json good = make_document({gated_row(2.0, 0.6)});
  const telemetry::Json bad = telemetry::Json::object();
  EXPECT_FALSE(gate_compare(good, bad, GateConfig{}).pass());
  EXPECT_FALSE(gate_compare(bad, good, GateConfig{}).pass());
}

// -- Committed baselines -----------------------------------------------------

TEST(BenchBaselines, CommittedBaselinesParseAndValidate) {
#ifndef SPEEDYBOX_BASELINE_DIR
  GTEST_SKIP() << "baseline dir not configured";
#else
  // Every baseline the CI gate compares against.
  const char* names[] = {"BENCH_matrix.json", "BENCH_ingest.json"};
  int found = 0;
  for (const char* name : names) {
    const std::string path =
        std::string(SPEEDYBOX_BASELINE_DIR) + "/" + name;
    std::ifstream in{path, std::ios::binary};
    if (!in) continue;
    ++found;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const auto doc = telemetry::Json::parse(buffer.str());
    ASSERT_TRUE(doc.has_value()) << path << " is not valid JSON";
    expect_valid(*doc);
    // And the gate's reflexive property holds on the real artifact.
    EXPECT_TRUE(gate_compare(*doc, *doc, GateConfig{}).pass()) << path;
  }
  if (found == 0) GTEST_SKIP() << "no committed baselines";
#endif
}

}  // namespace
}  // namespace speedybox::bench
