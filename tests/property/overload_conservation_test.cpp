// Conservation property of the overload-control data path (DESIGN.md §9):
// for every drop policy, on both §VII-C real-world chains, at 1 and 4
// shards as well as the single-threaded runner, the counters balance
// EXACTLY —
//
//   offered  == admitted + shed_admission + shed_watermark + shed_early_drop
//   admitted == delivered + drops + faulted
//
// where delivered is counted from the actual output packets, not from a
// counter. And with overload control disabled, the path is byte-identical
// to a run that never heard of the subsystem, with every overload counter
// at zero.
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chain_fixtures.hpp"
#include "runtime/executor.hpp"
#include "runtime/runner.hpp"
#include "runtime/sharded_runtime.hpp"
#include "test_helpers.hpp"
#include "trace/payload_synth.hpp"
#include "trace/workload.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::make_chain1;
using speedybox::testing::make_chain2;
using speedybox::testing::same_bytes;

std::vector<net::Packet> chain1_packets() {
  trace::DatacenterWorkloadConfig config;
  config.flow_count = 80;
  config.seed = 20190708;
  const trace::Workload workload = make_datacenter_workload(config);
  std::vector<net::Packet> packets;
  packets.reserve(workload.packet_count());
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    packets.push_back(workload.materialize(i));
  }
  return packets;
}

std::vector<net::Packet> chain2_packets() {
  trace::DatacenterWorkloadConfig config;
  config.flow_count = 60;
  config.seed = 5550123;
  trace::Workload workload = make_datacenter_workload(config);
  trace::PayloadSynthConfig synth;
  synth.match_fraction = 0.25;
  plant_rule_contents(workload, trace::default_snort_rules(), synth);
  std::vector<net::Packet> packets;
  packets.reserve(workload.packet_count());
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    packets.push_back(workload.materialize(i));
  }
  return packets;
}

OverloadConfig overload_at_2x(DropPolicy policy) {
  OverloadConfig config;
  config.enabled = true;
  config.policy = policy;
  config.offered_load = 2.0;
  // Small enough that these workloads (a few thousand packets) actually
  // reach the watermarks and shed.
  config.queue_capacity = 256;
  return config;
}

/// Conservation over the executor's own counters plus `delivered` counted
/// from the actual outputs (never trust a counter to check a counter).
void expect_conserved(const RunStats& stats, std::size_t offered_inputs,
                      std::uint64_t delivered) {
  const OverloadStats& overload = stats.overload;
  EXPECT_EQ(overload.offered, offered_inputs)
      << "every input packet is offered";
  EXPECT_EQ(overload.offered,
            overload.admitted + overload.shed_admission +
                overload.shed_watermark + overload.shed_early_drop)
      << "arrival conservation";
  EXPECT_EQ(overload.admitted, stats.packets)
      << "admitted packets are exactly the chain's packets";
  EXPECT_EQ(stats.packets, delivered + stats.drops + overload.faulted)
      << "admitted == delivered + drops + faulted";
}

struct Scenario {
  const char* chain_name;
  std::vector<net::Packet> (*packets)();
  std::unique_ptr<ServiceChain> (*factory)();
};

const Scenario kScenarios[] = {
    {"chain1", chain1_packets, make_chain1},
    {"chain2", chain2_packets, make_chain2},
};

constexpr DropPolicy kPolicies[] = {
    DropPolicy::kTailDrop,
    DropPolicy::kPerFlowFair,
    DropPolicy::kSloEarlyDrop,
};

TEST(OverloadConservation, RunnerAllPoliciesBothChains) {
  for (const Scenario& scenario : kScenarios) {
    const std::vector<net::Packet> packets = scenario.packets();
    for (const DropPolicy policy : kPolicies) {
      SCOPED_TRACE(std::string(scenario.chain_name) + "/" +
                   std::string(drop_policy_name(policy)));
      auto chain = scenario.factory();
      ChainRunner runner{*chain,
                         {platform::PlatformKind::kBess, true, false}};
      Executor& executor = runner;
      executor.set_overload_policy(overload_at_2x(policy));
      std::vector<net::Packet> outputs;
      const RunStats& stats = executor.run(packets, &outputs);
      ASSERT_EQ(outputs.size(), packets.size())
          << "runner outputs keep input order, dropped/shed included";
      std::uint64_t delivered = 0;
      for (const net::Packet& packet : outputs) {
        if (!packet.dropped()) ++delivered;
      }
      expect_conserved(stats, packets.size(), delivered);
      EXPECT_GT(stats.overload.shed_total(), 0u)
          << "a 2x offered load must actually shed on these workloads";
    }
  }
}

TEST(OverloadConservation, ShardedAllPoliciesBothChains) {
  for (const Scenario& scenario : kScenarios) {
    const std::vector<net::Packet> packets = scenario.packets();
    for (const DropPolicy policy : kPolicies) {
      for (const std::size_t shards : {1u, 4u}) {
        SCOPED_TRACE(std::string(scenario.chain_name) + "/" +
                     std::string(drop_policy_name(policy)) + "/shards=" +
                     std::to_string(shards));
        auto prototype = scenario.factory();
        ShardedRuntime runtime{*prototype, shards,
                               {platform::PlatformKind::kBess, true,
                                false}};
        Executor& executor = runtime;
        executor.set_overload_policy(overload_at_2x(policy));
        executor.run(packets, nullptr);
        const ShardedRunResult& result = runtime.last_result();
        ASSERT_EQ(result.outcomes.size(), packets.size());
        std::uint64_t delivered = 0;
        for (const PacketOutcome& outcome : result.outcomes) {
          if (!outcome.dropped) ++delivered;
        }
        expect_conserved(result.stats, packets.size(), delivered);
      }
    }
  }
}

/// The four adversarial scenario generators (benchmark matrix, DESIGN.md
/// §11) obey the same conservation identities on both §VII-C chains at
/// shards {1, 4}. Policies rotate per (chain, workload, shards) cell so
/// every policy is exercised without the full cross product.
TEST(OverloadConservation, ScenarioGeneratorsConserveOnBothChains) {
  const std::vector<std::string> scenarios = trace::named_scenarios();
  ASSERT_GE(scenarios.size(), 4u);
  std::size_t cell = 0;
  for (const Scenario& scenario : kScenarios) {
    for (const std::string& name : scenarios) {
      trace::ScenarioScale scale;
      scale.flows = 48;  // bounded runtime: small but sheds at 2x
      auto workload = trace::make_named_scenario(name, scale);
      ASSERT_TRUE(workload.has_value()) << name;
      if (scenario.factory == make_chain2) {
        trace::PayloadSynthConfig synth;
        synth.match_fraction = 0.25;
        plant_rule_contents(*workload, trace::default_snort_rules(), synth);
      }
      std::vector<net::Packet> packets;
      packets.reserve(workload->packet_count());
      for (std::size_t i = 0; i < workload->packet_count(); ++i) {
        packets.push_back(workload->materialize(i));
      }
      for (const std::size_t shards : {1u, 4u}) {
        const DropPolicy policy =
            kPolicies[cell++ % std::size(kPolicies)];
        SCOPED_TRACE(std::string(scenario.chain_name) + "/" + name +
                     "/" + std::string(drop_policy_name(policy)) +
                     "/shards=" + std::to_string(shards));
        auto prototype = scenario.factory();
        ShardedRuntime runtime{*prototype, shards,
                               {platform::PlatformKind::kBess, true,
                                false}};
        Executor& executor = runtime;
        executor.set_overload_policy(overload_at_2x(policy));
        executor.run(packets, nullptr);
        const ShardedRunResult& result = runtime.last_result();
        ASSERT_EQ(result.outcomes.size(), packets.size());
        std::uint64_t delivered = 0;
        for (const PacketOutcome& outcome : result.outcomes) {
          if (!outcome.dropped) ++delivered;
        }
        expect_conserved(result.stats, packets.size(), delivered);
      }
    }
  }
}

TEST(OverloadConservation, SloEarlyDropActuallyShedsDoomedFlows) {
  // Chain 2's ACL consolidates 10.1.3/24 flows to pure-drop rules; under
  // slo-early-drop their subsequent packets must shed at ingress.
  const std::vector<net::Packet> packets = chain2_packets();
  auto chain = make_chain2();
  ChainRunner runner{*chain, {platform::PlatformKind::kBess, true, false}};
  Executor& executor = runner;
  executor.set_overload_policy(
      overload_at_2x(DropPolicy::kSloEarlyDrop));
  const RunStats& stats = executor.run(packets, nullptr);
  EXPECT_GT(stats.overload.shed_early_drop, 0u)
      << "doomed flows exist on chain2: some must shed at ingress";
}

TEST(OverloadConservation, DisabledOverloadIsByteIdentical) {
  // set_overload_policy(enabled=false) must restore the EXACT default
  // path: same bytes, same outcomes, all overload counters zero.
  for (const Scenario& scenario : kScenarios) {
    SCOPED_TRACE(scenario.chain_name);
    const std::vector<net::Packet> packets = scenario.packets();

    auto baseline_chain = scenario.factory();
    ChainRunner baseline{*baseline_chain,
                         {platform::PlatformKind::kBess, true, false}};
    std::vector<net::Packet> baseline_out;
    baseline.run(packets, &baseline_out);

    auto chain = scenario.factory();
    ChainRunner runner{*chain,
                       {platform::PlatformKind::kBess, true, false}};
    Executor& executor = runner;
    OverloadConfig disabled;
    disabled.enabled = false;
    executor.set_overload_policy(disabled);
    std::vector<net::Packet> outputs;
    const RunStats& stats = executor.run(packets, &outputs);

    ASSERT_EQ(outputs.size(), baseline_out.size());
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      ASSERT_TRUE(same_bytes(outputs[i], baseline_out[i]))
          << "packet " << i << " bytes differ with overload disabled";
      ASSERT_EQ(outputs[i].dropped(), baseline_out[i].dropped())
          << "packet " << i;
    }
    EXPECT_EQ(stats.packets, baseline.stats().packets);
    EXPECT_EQ(stats.drops, baseline.stats().drops);
    const OverloadStats& overload = stats.overload;
    EXPECT_EQ(overload.offered, 0u);
    EXPECT_EQ(overload.admitted, 0u);
    EXPECT_EQ(overload.shed_total(), 0u);
    EXPECT_EQ(overload.faulted, 0u);
    EXPECT_EQ(overload.degraded_flows, 0u);
  }
}

}  // namespace
}  // namespace speedybox::runtime
