// Round-trip property of the plan layer's serialization (DESIGN.md §12):
// for ANY ChainSpec/DeploymentPlan the generator can produce,
//
//   parse(serialize(x)) == x          (token, chain-string and JSON forms)
//
// and the parse of a re-serialized parse is a fixpoint (dump == re-dump).
// Alongside, the rejection property: structurally broken documents —
// unknown fields, empty chains, duplicate option keys, bad enum values —
// throw PlanError/RegistryError instead of quietly defaulting, and random
// single-character corruption of a valid document never crashes the parser
// (it either throws or yields a plan that round-trips again).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/plan.hpp"
#include "util/rng.hpp"

namespace speedybox::plan {
namespace {

// Kinds/options drawn from the registry's real vocabulary plus arbitrary
// not-yet-registered ones — NfSpec parsing is registry-agnostic by design.
const char* const kKinds[] = {"nat",     "maglev",  "monitor", "ipfilter",
                              "snort",   "dos",     "vpn-out", "synthetic",
                              "futurenf", "x"};
const char* const kKeys[] = {"backends", "table", "port", "threshold",
                             "iterations", "alpha", "k"};

nf::NfSpec random_nf(util::Rng& rng) {
  nf::NfSpec spec;
  spec.kind = kKinds[rng.below(std::size(kKinds))];
  const std::size_t options = rng.below(4);
  for (std::size_t i = 0; i < options && i < std::size(kKeys); ++i) {
    // Draw without replacement (duplicate keys are rejected by design).
    const std::string key = kKeys[(rng.below(3) + 2 * i) % std::size(kKeys)];
    if (spec.has_option(key)) continue;
    const bool flag = rng.chance(0.25);
    spec.options.emplace_back(
        key, flag ? "" : std::to_string(rng.below(100000)));
  }
  return spec;
}

ChainSpec random_chain(util::Rng& rng) {
  ChainSpec chain;
  chain.name = "chain-" + std::to_string(rng.below(1000));
  const std::size_t nfs = 1 + rng.below(6);
  for (std::size_t i = 0; i < nfs; ++i) chain.nfs.push_back(random_nf(rng));
  return chain;
}

DeploymentPlan random_plan(util::Rng& rng) {
  DeploymentPlan plan;
  plan.chain = random_chain(rng);
  // Executor/mode/shards drawn jointly legal-shaped (round-tripping does
  // not require validate() to pass, but keep the generator honest).
  switch (rng.below(4)) {
    case 0:
      plan.executor = ExecutorKind::kRunner;
      break;
    case 1:
      plan.executor = ExecutorKind::kSharded;
      plan.shards = 1 + rng.below(8);
      break;
    case 2:
      plan.executor = ExecutorKind::kPipeline;
      plan.speedybox = true;
      break;
    default:
      plan.executor = ExecutorKind::kOnvm;
      plan.speedybox = false;
      break;
  }
  if (plan.executor == ExecutorKind::kRunner) {
    plan.speedybox = rng.chance(0.5);
  }
  plan.platform = rng.chance(0.5) ? platform::PlatformKind::kBess
                                  : platform::PlatformKind::kOnvm;
  plan.batch_size = 1 + rng.below(256);
  plan.ring_capacity = 1 + rng.below(8192);
  if (rng.chance(0.5)) {
    // Random segmentation covering the chain exactly.
    std::size_t left = plan.chain.nfs.size();
    while (left > 0) {
      SegmentSpec segment;
      segment.nf_count = 1 + rng.below(left);
      segment.parallel = rng.chance(0.4);
      left -= segment.nf_count;
      plan.segments.push_back(segment);
    }
  }
  if (rng.chance(0.4)) {
    plan.overload.enabled = true;
    plan.overload.offered_load = 0.5 + rng.below(8) * 0.5;
    plan.overload.policy =
        rng.chance(0.5)
            ? runtime::DropPolicy::kTailDrop
            : (rng.chance(0.5) ? runtime::DropPolicy::kPerFlowFair
                               : runtime::DropPolicy::kSloEarlyDrop);
    plan.overload.queue_capacity = 1 + rng.below(4096);
  }
  if (rng.chance(0.3)) {
    runtime::FaultSpec fault;
    fault.fail_every = 1 + rng.below(100);
    plan.fault = {plan.chain.nfs[rng.below(plan.chain.nfs.size())].kind,
                  fault};
  }
  if (rng.chance(0.3)) {
    plan.predicted_cycles_per_packet = 1.0 + rng.below(100000);
    plan.target_rate_mpps = 0.1 + rng.below(100) * 0.1;
  }
  return plan;
}

class PlanRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanRoundTrip, ChainSpecStringAndJsonAreLossless) {
  util::Rng rng{GetParam()};
  for (int i = 0; i < 200; ++i) {
    const ChainSpec chain = random_chain(rng);
    // Token/string form.
    const ChainSpec from_string =
        ChainSpec::parse(chain.to_string(), chain.name);
    ASSERT_EQ(from_string, chain) << chain.to_string();
    // JSON form.
    const ChainSpec from_json = ChainSpec::from_json(chain.to_json());
    ASSERT_EQ(from_json, chain) << chain.to_json().dump();
  }
}

TEST_P(PlanRoundTrip, DeploymentPlanJsonIsLossless) {
  util::Rng rng{GetParam()};
  for (int i = 0; i < 100; ++i) {
    const DeploymentPlan plan = random_plan(rng);
    const std::string dump = plan.dump();
    DeploymentPlan reparsed;
    try {
      reparsed = DeploymentPlan::parse(dump);
    } catch (const std::exception& error) {
      FAIL() << "round-trip rejected its own dump: " << error.what()
             << "\n" << dump;
    }
    ASSERT_EQ(reparsed, plan) << dump;      // == is dump() equality
    ASSERT_EQ(reparsed.dump(), dump);       // serialization fixpoint
    // Field-level spot checks so == can't hide behind dump().
    ASSERT_EQ(reparsed.chain, plan.chain);
    ASSERT_EQ(reparsed.executor, plan.executor);
    ASSERT_EQ(reparsed.shards, plan.shards);
    ASSERT_EQ(reparsed.segments, plan.segments);
    ASSERT_EQ(reparsed.overload.enabled, plan.overload.enabled);
  }
}

TEST_P(PlanRoundTrip, CorruptedDocumentsNeverCrashTheParser) {
  util::Rng rng{GetParam()};
  const std::string pristine = random_plan(rng).dump();
  for (int i = 0; i < 300; ++i) {
    std::string corrupted = pristine;
    const std::size_t at = rng.below(corrupted.size());
    switch (rng.below(3)) {
      case 0:
        corrupted[at] = static_cast<char>(32 + rng.below(95));
        break;
      case 1:
        corrupted.erase(at, 1);
        break;
      default:
        corrupted.insert(at, 1, static_cast<char>(32 + rng.below(95)));
        break;
    }
    try {
      const DeploymentPlan plan = DeploymentPlan::parse(corrupted);
      // Survived the corruption: it must still round-trip.
      ASSERT_EQ(DeploymentPlan::parse(plan.dump()), plan);
    } catch (const std::exception&) {
      // Rejected loudly — the expected common case.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 20190708u,
                                           0xC0FFEEu));

TEST(PlanRejection, StructurallyBrokenSpecsFailLoudly) {
  // Duplicate option keys inside one token.
  EXPECT_THROW(ChainSpec::parse("maglev:backends=5:backends=9"),
               nf::RegistryError);
  // Empty chain, empty token name.
  EXPECT_THROW(ChainSpec::parse(""), PlanError);
  EXPECT_THROW(ChainSpec::parse("nat,:x=1"), nf::RegistryError);
  // JSON: nfs must be a non-empty string array.
  EXPECT_THROW(
      ChainSpec::from_json(*telemetry::Json::parse(
          R"({"name":"c","nfs":[]})")),
      PlanError);
  EXPECT_THROW(
      ChainSpec::from_json(*telemetry::Json::parse(
          R"({"name":"c","nfs":["nat"],"extra":1})")),
      PlanError);
}

}  // namespace
}  // namespace speedybox::plan
