// Property: RFC 1624 incremental checksum update ≡ full recompute, for any
// 16-bit word change anywhere in the IPv4 header; and the builder always
// produces wire-valid packets for arbitrary tuples/payloads.
#include <gtest/gtest.h>

#include "net/byte_order.hpp"
#include "net/checksum.hpp"
#include "net/packet_builder.hpp"
#include "util/rng.hpp"

namespace speedybox::net {
namespace {

class ChecksumProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChecksumProperty, IncrementalEqualsFullForAnyWordChange) {
  util::Rng rng{GetParam()};
  for (int trial = 0; trial < 500; ++trial) {
    FiveTuple tuple;
    tuple.src_ip = Ipv4Addr{static_cast<std::uint32_t>(rng.below(~0u))};
    tuple.dst_ip = Ipv4Addr{static_cast<std::uint32_t>(rng.below(~0u))};
    tuple.src_port = static_cast<std::uint16_t>(rng.below(65536));
    tuple.dst_port = static_cast<std::uint16_t>(rng.below(65536));
    tuple.proto = static_cast<std::uint8_t>(IpProto::kTcp);
    Packet packet = make_tcp_packet(tuple, "x");
    const std::size_t l3 = kEthHeaderLen;

    // Pick a random 16-bit-aligned word in the header, excluding the
    // checksum field itself (offset 10) and the version/IHL word (offset
    // 0), whose mutation changes the header length itself.
    std::size_t word_offset;
    do {
      word_offset = l3 + 2 * (1 + rng.below(9));
    } while (word_offset == l3 + 10);

    const std::uint16_t old_word = load_be16(packet.bytes(), word_offset);
    const std::uint16_t new_word =
        static_cast<std::uint16_t>(rng.below(65536));
    const std::uint16_t old_sum = load_be16(packet.bytes(), l3 + 10);

    store_be16(packet.bytes(), word_offset, new_word);
    const std::uint16_t incremental =
        incremental_update(old_sum, old_word, new_word);
    write_ipv4_checksum(packet, l3);
    const std::uint16_t full = load_be16(packet.bytes(), l3 + 10);
    ASSERT_EQ(incremental, full)
        << "offset=" << word_offset << " " << old_word << "->" << new_word;
  }
}

TEST_P(ChecksumProperty, BuilderAlwaysWireValid) {
  util::Rng rng{GetParam() ^ 0xABCD};
  for (int trial = 0; trial < 200; ++trial) {
    FiveTuple tuple;
    tuple.src_ip = Ipv4Addr{static_cast<std::uint32_t>(rng.below(~0u))};
    tuple.dst_ip = Ipv4Addr{static_cast<std::uint32_t>(rng.below(~0u))};
    tuple.src_port = static_cast<std::uint16_t>(rng.below(65536));
    tuple.dst_port = static_cast<std::uint16_t>(rng.below(65536));
    const bool udp = rng.chance(0.5);
    tuple.proto = static_cast<std::uint8_t>(udp ? IpProto::kUdp
                                               : IpProto::kTcp);

    std::string payload(rng.below(300), '\0');
    for (auto& c : payload) c = static_cast<char>(rng.below(256));

    const Packet packet = udp ? make_udp_packet(tuple, payload)
                              : make_tcp_packet(tuple, payload);
    const auto parsed = parse_packet(packet);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_TRUE(verify_ipv4_checksum(packet, parsed->l3_offset));
    ASSERT_TRUE(verify_l4_checksum(packet, *parsed));
    ASSERT_EQ(extract_five_tuple(packet, *parsed), tuple);
  }
}

TEST_P(ChecksumProperty, IncrementalChainOfUpdates) {
  // Many successive incremental updates never drift from full recompute —
  // exactly what a chain of modifying NFs does to a packet.
  util::Rng rng{GetParam() ^ 0x5555};
  Packet packet = make_tcp_packet(
      FiveTuple{Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{10, 0, 0, 2}, 1, 2,
                static_cast<std::uint8_t>(IpProto::kTcp)},
      "chain");
  const std::size_t l3 = kEthHeaderLen;
  for (int step = 0; step < 100; ++step) {
    std::size_t word_offset;
    do {
      word_offset = l3 + 2 * (1 + rng.below(9));
    } while (word_offset == l3 + 10);
    const std::uint16_t old_word = load_be16(packet.bytes(), word_offset);
    const std::uint16_t new_word =
        static_cast<std::uint16_t>(rng.below(65536));
    const std::uint16_t updated = incremental_update(
        load_be16(packet.bytes(), l3 + 10), old_word, new_word);
    store_be16(packet.bytes(), word_offset, new_word);
    store_be16(packet.bytes(), l3 + 10, updated);
    ASSERT_TRUE(verify_ipv4_checksum(packet, l3)) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChecksumProperty,
                         ::testing::Values(7, 77, 777, 7777));

}  // namespace
}  // namespace speedybox::net
