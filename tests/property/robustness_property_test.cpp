// Robustness properties: arbitrary and corrupted input bytes must never
// crash the parser, the classifier, or a full SpeedyBox chain — malformed
// packets are dropped, state stays consistent, and processing continues.
#include <gtest/gtest.h>

#include "nf/ip_filter.hpp"
#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "nf/snort_ids.hpp"
#include "runtime/runner.hpp"
#include "test_helpers.hpp"
#include "trace/payload_synth.hpp"
#include "util/rng.hpp"

namespace speedybox::net {
namespace {

using speedybox::testing::tuple_n;

class RobustnessProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RobustnessProperty, ParserNeverCrashesOnRandomBytes) {
  util::Rng rng{GetParam()};
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.below(128));
    for (auto& byte : bytes) {
      byte = static_cast<std::uint8_t>(rng.below(256));
    }
    Packet packet{std::move(bytes)};
    const auto parsed = parse_packet(packet);
    if (parsed) {
      // Whatever parsed must have self-consistent offsets.
      ASSERT_LE(parsed->l3_offset, parsed->inner_l3_offset);
      ASSERT_LE(parsed->inner_l3_offset, parsed->l4_offset);
      ASSERT_LE(parsed->l4_offset, parsed->payload_offset);
      ASSERT_LE(parsed->payload_offset, packet.size());
      (void)extract_five_tuple(packet, *parsed);
    }
  }
}

TEST_P(RobustnessProperty, BitFlippedPacketsNeverCrashTheParser) {
  util::Rng rng{GetParam() ^ 0xF1F1};
  for (int trial = 0; trial < 1000; ++trial) {
    Packet packet = make_tcp_packet(
        tuple_n(static_cast<std::uint32_t>(trial)), "fuzzable payload");
    // Flip 1-8 random bits anywhere in the frame.
    const std::size_t flips = 1 + rng.below(8);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t byte_index = rng.below(packet.size());
      packet.bytes()[byte_index] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    const auto parsed = parse_packet(packet);
    if (parsed) {
      ASSERT_LE(parsed->payload_offset, packet.size());
    }
  }
}

TEST_P(RobustnessProperty, FullChainSurvivesGarbageMixedWithTraffic) {
  util::Rng rng{GetParam() ^ 0xC4A05};
  runtime::ServiceChain chain;
  chain.emplace_nf<nf::MazuNat>();
  chain.emplace_nf<nf::SnortIds>(trace::default_snort_rules());
  auto& monitor = chain.emplace_nf<nf::Monitor>();
  runtime::ChainRunner runner{
      chain, {platform::PlatformKind::kBess, /*speedybox=*/true}};

  std::uint64_t garbage = 0;
  std::uint64_t valid = 0;
  for (int trial = 0; trial < 1500; ++trial) {
    if (rng.chance(0.3)) {
      std::vector<std::uint8_t> bytes(rng.below(96));
      for (auto& byte : bytes) {
        byte = static_cast<std::uint8_t>(rng.below(256));
      }
      Packet packet{std::move(bytes)};
      const auto outcome = runner.process_packet(packet);
      // Random bytes essentially never form a checksum-valid IPv4 packet.
      ASSERT_TRUE(outcome.dropped || !packet.dropped());
      ++garbage;
    } else {
      Packet packet = make_tcp_packet(
          tuple_n(static_cast<std::uint32_t>(rng.below(20))), "legit");
      const auto outcome = runner.process_packet(packet);
      ASSERT_FALSE(outcome.dropped);
      ++valid;
    }
  }
  EXPECT_EQ(monitor.total_packets(), valid);
  EXPECT_GT(garbage, 0u);
  // Flow table population bounded by the distinct legitimate flows.
  EXPECT_LE(chain.classifier().active_flows(), 20u);
}

TEST_P(RobustnessProperty, CorruptedChecksumsAreRejectedAtTheDoor) {
  util::Rng rng{GetParam() ^ 0xCEC5};
  (void)rng;
  runtime::ServiceChain chain;
  chain.emplace_nf<nf::Monitor>();
  runtime::ChainRunner runner{
      chain, {platform::PlatformKind::kBess, /*speedybox=*/true}};
  Packet packet = make_tcp_packet(tuple_n(1), "x");
  packet.bytes()[kEthHeaderLen + 12] ^= 0xFF;  // corrupt src IP
  const auto outcome = runner.process_packet(packet);
  EXPECT_TRUE(outcome.dropped);
  EXPECT_EQ(chain.classifier().active_flows(), 0u)
      << "invalid packets must not allocate flow state";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessProperty,
                         ::testing::Values(31, 41, 59, 26));

}  // namespace
}  // namespace speedybox::net
