// The central correctness property of SpeedyBox's header-action algebra
// (§V-B): for ANY ordered list of header actions, applying the consolidated
// action must produce the same packet as applying each action sequentially
// the way the original chain of NFs would.
//
// Randomized action lists are generated from a seeded RNG (parameterized
// over seeds), so every run covers thousands of distinct interleavings of
// modify / encap / decap / forward / drop deterministic across machines.
#include <gtest/gtest.h>

#include "core/header_action.hpp"
#include "net/checksum.hpp"
#include "net/packet_builder.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace speedybox::core {
namespace {

using net::HeaderField;
using speedybox::testing::same_bytes;
using speedybox::testing::tuple_n;

HeaderAction random_action(util::Rng& rng, int* stack_depth) {
  switch (rng.below(10)) {
    case 0:
      return HeaderAction::forward();
    case 1:  // rare drop (dominates, so keep it uncommon to test the rest)
      if (rng.chance(0.15)) return HeaderAction::drop();
      return HeaderAction::forward();
    case 2:
    case 3: {
      ++*stack_depth;
      if (rng.chance(0.5)) {
        return HeaderAction::encap_ah(
            static_cast<std::uint32_t>(rng.below(1 << 30)));
      }
      return HeaderAction::encap_ipip(
          net::Ipv4Addr{static_cast<std::uint32_t>(rng.below(~0u))},
          net::Ipv4Addr{static_cast<std::uint32_t>(rng.below(~0u))});
    }
    default: {
      constexpr HeaderField kFields[] = {
          HeaderField::kSrcIp, HeaderField::kDstIp, HeaderField::kSrcPort,
          HeaderField::kDstPort, HeaderField::kTtl, HeaderField::kTos};
      const HeaderField field = kFields[rng.below(6)];
      std::uint32_t value = static_cast<std::uint32_t>(rng.below(~0u));
      if (field == HeaderField::kSrcPort || field == HeaderField::kDstPort) {
        value &= 0xFFFF;
      } else if (field == HeaderField::kTtl || field == HeaderField::kTos) {
        value &= 0xFF;
      }
      return HeaderAction::modify(field, value);
    }
  }
}

class ConsolidationProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ConsolidationProperty, ConsolidatedEqualsSequential) {
  util::Rng rng{GetParam()};
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t length = 1 + rng.below(8);
    int stack_depth = 0;
    std::vector<HeaderAction> actions;
    for (std::size_t i = 0; i < length; ++i) {
      actions.push_back(random_action(rng, &stack_depth));
      // Occasionally decap (only when something is on the stack, matching
      // how a real chain's VPN terminator pairs with its initiator).
      if (stack_depth > 0 && rng.chance(0.4)) {
        actions.push_back(HeaderAction::decap(
            actions.back().type == HeaderActionType::kEncap &&
                    rng.chance(0.8)
                ? actions.back().encap.kind
                : (rng.chance(0.5) ? net::EncapKind::kAh
                                   : net::EncapKind::kIpIp)));
        --stack_depth;
      }
    }

    net::Packet sequential =
        net::make_tcp_packet(tuple_n(static_cast<std::uint32_t>(trial)),
                             "property payload");
    net::Packet fast = sequential;

    bool sequential_ok = true;
    for (const auto& action : actions) {
      // A decap that does not match the current outermost header is a
      // malformed chain; real NFs never emit it. Skip such trials for the
      // sequential arm and the consolidated arm alike by filtering here.
      if (action.type == HeaderActionType::kDecap) {
        const bool has_ah = net::outer_ah_spi(sequential).has_value();
        const bool is_ah = action.encap.kind == net::EncapKind::kAh;
        if (is_ah != has_ah) {
          sequential_ok = false;
          break;
        }
      }
      apply_action_baseline(action, sequential);
      if (sequential.dropped()) break;
    }
    if (!sequential_ok) continue;

    ConsolidatedAction consolidated = consolidate(actions);
    BytePatch patch;
    apply_consolidated(consolidated, patch, fast);

    ASSERT_EQ(fast.dropped(), sequential.dropped())
        << "seed=" << GetParam() << " trial=" << trial;
    if (!fast.dropped()) {
      ASSERT_TRUE(same_bytes(sequential, fast))
          << "seed=" << GetParam() << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsolidationProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

/// Modify-only lists additionally verify checksums stay wire-valid.
class ModifyOnlyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModifyOnlyProperty, ChecksumsAlwaysValid) {
  util::Rng rng{GetParam()};
  constexpr HeaderField kFields[] = {
      HeaderField::kSrcIp, HeaderField::kDstIp, HeaderField::kSrcPort,
      HeaderField::kDstPort, HeaderField::kTtl, HeaderField::kTos};
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<HeaderAction> actions;
    const std::size_t length = 1 + rng.below(6);
    for (std::size_t i = 0; i < length; ++i) {
      const HeaderField field = kFields[rng.below(6)];
      std::uint32_t value = static_cast<std::uint32_t>(rng.below(~0u));
      if (field == HeaderField::kSrcPort || field == HeaderField::kDstPort) {
        value &= 0xFFFF;
      } else if (field == HeaderField::kTtl || field == HeaderField::kTos) {
        value &= 0xFF;
      }
      actions.push_back(HeaderAction::modify(field, value));
    }
    net::Packet packet =
        net::make_tcp_packet(tuple_n(static_cast<std::uint32_t>(trial)),
                             "checksum property");
    ConsolidatedAction consolidated = consolidate(actions);
    BytePatch patch;
    apply_consolidated(consolidated, patch, packet);
    const auto parsed = net::parse_packet(packet);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_TRUE(net::verify_ipv4_checksum(packet, parsed->l3_offset));
    ASSERT_TRUE(net::verify_l4_checksum(packet, *parsed));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModifyOnlyProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

/// Consolidation is idempotent on its own output semantics: consolidating
/// the "expansion" of a consolidated action yields the same action.
TEST(ConsolidationAlgebra, IdempotentOnExpansion) {
  const std::vector<HeaderAction> actions{
      HeaderAction::modify(HeaderField::kDstIp, 1),
      HeaderAction::modify(HeaderField::kDstIp, 2),
      HeaderAction::encap_ah(3),
      HeaderAction::modify(HeaderField::kTtl, 4),
  };
  const ConsolidatedAction once = consolidate(actions);

  std::vector<HeaderAction> expansion;
  for (std::size_t i = 0; i < once.field_writes.size(); ++i) {
    if (once.field_writes[i]) {
      expansion.push_back(HeaderAction::modify(
          static_cast<HeaderField>(i), *once.field_writes[i]));
    }
  }
  for (const auto& spec : once.trailing_encaps) {
    HeaderAction encap;
    encap.type = HeaderActionType::kEncap;
    encap.encap = spec;
    expansion.push_back(encap);
  }
  const ConsolidatedAction twice = consolidate(expansion);
  EXPECT_EQ(once.field_writes, twice.field_writes);
  EXPECT_EQ(once.trailing_encaps.size(), twice.trailing_encaps.size());
  EXPECT_EQ(once.drop, twice.drop);
}

}  // namespace
}  // namespace speedybox::core
