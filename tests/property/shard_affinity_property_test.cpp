// Property tests for the flow-sharding dispatch function: the symmetric
// five-tuple hash and the Lemire shard reduction must give (1) direction
// invariance — both directions of every connection land on one shard,
// (2) determinism — the assignment is a pure function of the tuple, and
// (3) balance — flows spread near-uniformly across shards (chi-squared
// bound), since one overloaded shard caps the whole deployment.
// Also holds trace::partition_by_flow to its contract: flows stay whole,
// per-flow packet order survives, nothing is lost or invented.
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "net/five_tuple.hpp"
#include "trace/workload.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace speedybox {
namespace {

net::FiveTuple random_tuple(util::Rng& rng) {
  net::FiveTuple tuple;
  tuple.src_ip = net::Ipv4Addr{static_cast<std::uint32_t>(rng())};
  tuple.dst_ip = net::Ipv4Addr{static_cast<std::uint32_t>(rng())};
  tuple.src_port = static_cast<std::uint16_t>(rng.below(65536));
  tuple.dst_port = static_cast<std::uint16_t>(rng.below(65536));
  tuple.proto = rng.chance(0.5)
                    ? static_cast<std::uint8_t>(net::IpProto::kTcp)
                    : static_cast<std::uint8_t>(net::IpProto::kUdp);
  return tuple;
}

TEST(ShardAffinityProperty, SymmetricHashIsDirectionInvariant) {
  util::Rng rng{0xA11CE};
  for (int i = 0; i < 5000; ++i) {
    const net::FiveTuple tuple = random_tuple(rng);
    EXPECT_EQ(tuple.symmetric_hash(), tuple.reversed().symmetric_hash())
        << tuple.to_string();
  }
}

TEST(ShardAffinityProperty, SymmetricHashStillSeparatesConnections) {
  // Symmetry must not come at the price of collapsing distinct connections:
  // tuples differing only in one port (the common NAT/ephemeral case) hash
  // apart. Exact inequality for a deterministic sample.
  util::Rng rng{0xB0B};
  for (int i = 0; i < 2000; ++i) {
    net::FiveTuple a = random_tuple(rng);
    net::FiveTuple b = a;
    b.src_port = static_cast<std::uint16_t>(a.src_port + 1);
    EXPECT_NE(a.symmetric_hash(), b.symmetric_hash()) << a.to_string();
  }
}

TEST(ShardAffinityProperty, ShardAssignmentIsStableAndInRange) {
  util::Rng rng{0xFEED};
  for (int i = 0; i < 2000; ++i) {
    const net::FiveTuple tuple = random_tuple(rng);
    const std::uint64_t hash = tuple.symmetric_hash();
    for (std::size_t shards = 1; shards <= 16; ++shards) {
      const std::size_t assigned = util::shard_index(hash, shards);
      EXPECT_LT(assigned, shards);
      // Pure function: recomputing from an equal tuple gives the same
      // shard (no hidden state, no per-instance salt).
      net::FiveTuple copy = tuple;
      EXPECT_EQ(util::shard_index(copy.symmetric_hash(), shards), assigned);
      EXPECT_EQ(util::shard_index(copy.reversed().symmetric_hash(), shards),
                assigned);
    }
    EXPECT_EQ(util::shard_index(hash, 1), 0u);
    EXPECT_EQ(util::shard_index(hash, 0), 0u);
  }
}

double chi_squared(const std::vector<std::uint64_t>& observed,
                   double expected) {
  double chi2 = 0.0;
  for (const std::uint64_t count : observed) {
    const double d = static_cast<double>(count) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

TEST(ShardAffinityProperty, FlowsSpreadUniformlyAcrossShards) {
  // 8192 random connections over 4 and 8 shards. Thresholds are the
  // chi-squared 99.9th percentile for the respective degrees of freedom
  // (df=3: 16.27, df=7: 24.32) — deterministic seeds keep this stable.
  util::Rng rng{0x5EED5EED};
  std::vector<net::FiveTuple> tuples;
  tuples.reserve(8192);
  for (int i = 0; i < 8192; ++i) tuples.push_back(random_tuple(rng));

  for (const std::size_t shards : {std::size_t{4}, std::size_t{8}}) {
    std::vector<std::uint64_t> counts(shards, 0);
    for (const net::FiveTuple& tuple : tuples) {
      ++counts[util::shard_index(tuple.symmetric_hash(), shards)];
    }
    const double expected =
        static_cast<double>(tuples.size()) / static_cast<double>(shards);
    const double chi2 = chi_squared(counts, expected);
    const double threshold = shards == 4 ? 16.27 : 24.32;
    EXPECT_LT(chi2, threshold) << "shards=" << shards;
  }
}

TEST(ShardAffinityProperty, WorkloadFlowsSpreadAcceptably) {
  // The synthetic datacenter workload (structured addresses, not random
  // bits) must also balance: no shard may carry more than twice its fair
  // share of flows at 300 flows / 4 shards.
  trace::DatacenterWorkloadConfig config;
  config.flow_count = 300;
  config.seed = 20190710;
  const trace::Workload workload = make_datacenter_workload(config);
  const std::size_t shards = 4;
  std::vector<std::uint64_t> counts(shards, 0);
  for (const auto& flow : workload.flows) {
    ++counts[util::shard_index(flow.tuple.symmetric_hash(), shards)];
  }
  const double fair =
      static_cast<double>(workload.flows.size()) / shards;
  for (std::size_t s = 0; s < shards; ++s) {
    EXPECT_GT(counts[s], 0u) << "shard " << s << " got no flows";
    EXPECT_LT(static_cast<double>(counts[s]), 2.0 * fair)
        << "shard " << s;
  }
}

TEST(ShardAffinityProperty, PartitionByFlowIsLossless) {
  trace::DatacenterWorkloadConfig config;
  config.flow_count = 120;
  config.seed = 77;
  const trace::Workload workload = make_datacenter_workload(config);

  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{3}, std::size_t{4}}) {
    const auto parts = trace::partition_by_flow(workload, shards);
    ASSERT_EQ(parts.size(), shards);

    // Conservation: every flow lands whole in exactly one sub-workload and
    // on the shard its symmetric hash names.
    std::size_t total_flows = 0;
    std::size_t total_packets = 0;
    for (std::size_t s = 0; s < parts.size(); ++s) {
      total_flows += parts[s].flows.size();
      total_packets += parts[s].order.size();
      for (const auto& flow : parts[s].flows) {
        EXPECT_EQ(util::shard_index(flow.tuple.symmetric_hash(), shards), s)
            << flow.tuple.to_string();
      }
    }
    EXPECT_EQ(total_flows, workload.flows.size());
    EXPECT_EQ(total_packets, workload.order.size());

    // Order preservation: per flow, the seq sequence in the sub-workload
    // equals the seq sequence in the original interleaving.
    std::map<std::pair<std::size_t, std::uint32_t>,
             std::vector<std::uint32_t>>
        shard_seqs;  // (shard, local flow) -> seqs in shard order
    for (std::size_t s = 0; s < parts.size(); ++s) {
      for (const trace::TracePacket& tp : parts[s].order) {
        shard_seqs[{s, tp.flow}].push_back(tp.seq);
      }
    }
    std::map<std::uint64_t, std::vector<std::uint32_t>> original_seqs;
    for (const trace::TracePacket& tp : workload.order) {
      original_seqs[workload.flows[tp.flow].tuple.symmetric_hash()]
          .push_back(tp.seq);
    }
    for (std::size_t s = 0; s < parts.size(); ++s) {
      for (std::size_t f = 0; f < parts[s].flows.size(); ++f) {
        const auto& expected =
            original_seqs.at(parts[s].flows[f].tuple.symmetric_hash());
        const auto& actual =
            shard_seqs[std::pair{s, static_cast<std::uint32_t>(f)}];
        EXPECT_EQ(actual, expected)
            << parts[s].flows[f].tuple.to_string();
      }
    }
  }
}

}  // namespace
}  // namespace speedybox
