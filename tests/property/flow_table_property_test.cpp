// FlowTable differential property suite (ISSUE 9 satellite): drive a
// FlowTable and a std::unordered_map reference model through the same
// deterministic-seed random interleaving of insert / lookup / erase /
// iterate / clear — the mix that exercises mid-resize lookups, erases of
// entries still sitting in the draining table (the teardown-hook path),
// and tombstone reuse — and require identical observable behavior at every
// step. Runs under ASan/TSan via tools/run_sanitizers.sh (test_property is
// in its TARGETS list), which is what turns "the drain moved a slot it
// shouldn't" into a hard failure instead of a flaky lookup.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/flow_table.hpp"
#include "net/five_tuple.hpp"
#include "util/rng.hpp"

namespace speedybox::core {
namespace {

net::FiveTuple tuple_for(std::uint64_t n) {
  return net::FiveTuple{
      net::Ipv4Addr{static_cast<std::uint32_t>(0x0a000000u + n)},
      net::Ipv4Addr{static_cast<std::uint32_t>(0xc0a80000u + (n >> 8))},
      static_cast<std::uint16_t>(1024 + (n % 60000)),
      static_cast<std::uint16_t>(80 + (n % 7)), 6};
}

struct Model {
  FlowTable<net::FiveTuple, std::uint64_t> table;
  std::unordered_map<net::FiveTuple, std::uint64_t, net::FiveTupleHash> ref;

  void check_consistent() const {
    ASSERT_EQ(table.size(), ref.size());
    std::size_t visited = 0;
    table.for_each([&](const net::FiveTuple& key, const std::uint64_t& value) {
      ++visited;
      const auto it = ref.find(key);
      ASSERT_NE(it, ref.end());
      ASSERT_EQ(it->second, value);
    });
    ASSERT_EQ(visited, ref.size());
  }
};

// One full interleaving at a given seed and key-space size. The key space
// is kept small relative to the op count so the same keys are repeatedly
// inserted, erased and re-inserted — maximizing tombstone traffic and the
// odds that an op lands on an entry still in the draining table.
void run_interleaving(std::uint64_t seed, std::uint64_t key_space,
                      std::size_t ops) {
  util::Rng rng(seed);
  Model m;
  std::uint64_t next_value = 0;
  for (std::size_t op = 0; op < ops; ++op) {
    const std::uint64_t key_id = rng.below(key_space);
    const net::FiveTuple key = tuple_for(key_id);
    const FlowHash hash{key.hash()};
    switch (rng.below(100)) {
      case 0:  // rare: full clear
        m.table.clear();
        m.ref.clear();
        break;
      case 1: case 2: case 3: {  // iterate and cross-check
        m.check_consistent();
        if (::testing::Test::HasFatalFailure()) return;
        break;
      }
      case 4: case 5: case 6: case 7: case 8:
      case 9: case 10: case 11: case 12: case 13:
      case 14: case 15: case 16: case 17: case 18:
      case 19: case 20: case 21: case 22: case 23: {  // erase (24%-ish arm)
        const bool table_erased = m.table.erase(key, hash);
        const bool ref_erased = m.ref.erase(key) > 0;
        ASSERT_EQ(table_erased, ref_erased) << "op " << op;
        break;
      }
      case 24: case 25: case 26: case 27: case 28:
      case 29: case 30: case 31: case 32: case 33:
      case 34: case 35: case 36: case 37: case 38:
      case 39: case 40: case 41: case 42: case 43:
      case 44: case 45: case 46: case 47: case 48:
      case 49: case 50: case 51: case 52: case 53: {  // lookup
        const std::uint64_t* found = m.table.find(key, hash);
        const auto it = m.ref.find(key);
        if (it == m.ref.end()) {
          ASSERT_EQ(found, nullptr) << "op " << op;
        } else {
          ASSERT_NE(found, nullptr) << "op " << op;
          ASSERT_EQ(*found, it->second) << "op " << op;
        }
        break;
      }
      default: {  // insert (find-or-create, as every NF uses it)
        const std::uint64_t value = next_value++;
        auto [stored, inserted] = m.table.try_emplace(key, hash, value);
        const auto [ref_it, ref_inserted] = m.ref.try_emplace(key, value);
        ASSERT_EQ(inserted, ref_inserted) << "op " << op;
        ASSERT_EQ(*stored, ref_it->second) << "op " << op;
        break;
      }
    }
  }
  m.check_consistent();
}

TEST(FlowTablePropertyTest, MatchesReferenceModelAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    run_interleaving(seed, /*key_space=*/4096, /*ops=*/60000);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(FlowTablePropertyTest, TinyKeySpaceMaximizesTombstoneChurn) {
  // With 64 keys and 40k ops every slot is recycled hundreds of times;
  // this is the regime where tombstone purging (resize-in-place) happens
  // constantly.
  run_interleaving(/*seed=*/0xfeedULL, /*key_space=*/64, /*ops=*/40000);
}

TEST(FlowTablePropertyTest, GrowthHeavyKeySpace) {
  // Insert-dominated run over a wide key space: back-to-back growth
  // resizes with lookups landing mid-drain.
  run_interleaving(/*seed=*/0xabcdULL, /*key_space=*/1 << 20, /*ops=*/80000);
}

TEST(FlowTablePropertyTest, ValuePointersStableUnderChurn) {
  // The recorded-closure contract: a pointer captured at insert time stays
  // valid (and points at the same logical entry) until that entry is
  // erased, regardless of intervening resizes.
  util::Rng rng(2026);
  FlowTable<net::FiveTuple, std::uint64_t> table;
  std::unordered_map<std::uint64_t, std::uint64_t*> captured;
  for (std::size_t op = 0; op < 50000; ++op) {
    const std::uint64_t key_id = rng.below(2048);
    const net::FiveTuple key = tuple_for(key_id);
    if (rng.chance(0.3) && !captured.empty()) {
      // Erase via the captured map, as a teardown hook would.
      const auto victim = captured.begin();
      ASSERT_TRUE(table.erase(tuple_for(victim->first)));
      captured.erase(victim);
    } else {
      auto [value, inserted] =
          table.try_emplace(key, FlowHash{key.hash()}, key_id);
      if (inserted) {
        captured[key_id] = value;
      } else {
        ASSERT_EQ(captured.at(key_id), value) << "pointer moved, op " << op;
      }
      ASSERT_EQ(*value, key_id);
    }
  }
  for (const auto& [key_id, pointer] : captured) {
    ASSERT_EQ(table.find(tuple_for(key_id)), pointer);
    ASSERT_EQ(*pointer, key_id);
  }
}

TEST(FlowTablePropertyTest, IntegralKeyTableMatchesReference) {
  // The FID-keyed variant (GlobalMat, pipeline flow phases) goes through
  // FlowKeyOps' mix64 path; same differential check.
  util::Rng rng(7);
  FlowTable<std::uint32_t, std::uint64_t> table;
  std::unordered_map<std::uint32_t, std::uint64_t> ref;
  for (std::size_t op = 0; op < 60000; ++op) {
    const auto key = static_cast<std::uint32_t>(rng.below(8192));
    const std::uint64_t roll = rng.below(10);
    if (roll < 5) {
      auto [stored, inserted] = table.try_emplace(key, std::uint64_t{op});
      auto [it, ref_inserted] = ref.try_emplace(key, std::uint64_t{op});
      ASSERT_EQ(inserted, ref_inserted);
      ASSERT_EQ(*stored, it->second);
    } else if (roll < 8) {
      const std::uint64_t* found = table.find(key);
      const auto it = ref.find(key);
      ASSERT_EQ(found != nullptr, it != ref.end());
      if (found != nullptr) ASSERT_EQ(*found, it->second);
    } else {
      ASSERT_EQ(table.erase(key), ref.erase(key) > 0);
    }
  }
  ASSERT_EQ(table.size(), ref.size());
}

}  // namespace
}  // namespace speedybox::core
