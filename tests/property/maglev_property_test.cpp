// Maglev consistent-hashing properties from the Maglev paper (§3.4):
//   balance    — each backend owns ~M/N slots (small spread);
//   disruption — removing one backend only reassigns the slots it owned;
//                every other flow keeps its backend (minimal disruption).
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nf/maglev_hash.hpp"
#include "util/rng.hpp"

namespace speedybox::nf {
namespace {

std::vector<std::string> backend_names(std::size_t n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    names.push_back("backend-" + std::to_string(i));
  }
  return names;
}

class MaglevBalance
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(MaglevBalance, SlotsNearlyEven) {
  const auto [backends, table_size] = GetParam();
  const MaglevTable table{backend_names(backends), table_size};
  const auto counts = table.slot_counts(backends);
  const double expected =
      static_cast<double>(table_size) / static_cast<double>(backends);
  for (std::size_t i = 0; i < backends; ++i) {
    EXPECT_GT(counts[i], expected * 0.8)
        << "backend " << i << " underloaded";
    EXPECT_LT(counts[i], expected * 1.2)
        << "backend " << i << " overloaded";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MaglevBalance,
    ::testing::Values(std::make_tuple(3, 251), std::make_tuple(5, 1021),
                      std::make_tuple(10, 4099), std::make_tuple(16, 65537),
                      std::make_tuple(100, 65537)));

class MaglevDisruption : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaglevDisruption, RemovalOnlyMovesVictimSlots) {
  constexpr std::size_t kBackends = 8;
  constexpr std::size_t kTableSize = 4099;
  const auto names = backend_names(kBackends);
  const MaglevTable full{names, kTableSize};

  util::Rng rng{GetParam()};
  const std::size_t victim = rng.below(kBackends);
  std::vector<bool> active(kBackends, true);
  active[victim] = false;
  const MaglevTable reduced{names, active, kTableSize};

  std::size_t moved_non_victim = 0;
  std::size_t total_non_victim = 0;
  for (std::size_t slot = 0; slot < kTableSize; ++slot) {
    const std::int32_t before = full.entries()[slot];
    const std::int32_t after = reduced.entries()[slot];
    ASSERT_NE(after, static_cast<std::int32_t>(victim));
    if (before != static_cast<std::int32_t>(victim)) {
      ++total_non_victim;
      if (before != after) ++moved_non_victim;
    }
  }
  // Maglev's construction is not perfectly minimal, but the disruption to
  // surviving backends' slots must be a small fraction (<~15%; the paper
  // reports a few percent at larger table sizes).
  EXPECT_LT(static_cast<double>(moved_non_victim),
            static_cast<double>(total_non_victim) * 0.15)
      << "victim=" << victim;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaglevDisruption,
                         ::testing::Values(1, 2, 3, 4));

TEST(MaglevTable, DeterministicConstruction) {
  const auto names = backend_names(6);
  const MaglevTable a{names, 1021};
  const MaglevTable b{names, 1021};
  EXPECT_EQ(a.entries(), b.entries());
}

TEST(MaglevTable, LookupCoversAllBackends) {
  const MaglevTable table{backend_names(4), 251};
  std::vector<bool> seen(4, false);
  util::Rng rng{99};
  for (int i = 0; i < 10000; ++i) {
    const std::int32_t backend = table.lookup(rng());
    ASSERT_GE(backend, 0);
    ASSERT_LT(backend, 4);
    seen[static_cast<std::size_t>(backend)] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(MaglevTable, RejectsNonPrimeSize) {
  EXPECT_THROW(MaglevTable(backend_names(2), 100), std::invalid_argument);
}

TEST(MaglevTable, EmptyActiveSetYieldsNoBackend) {
  const MaglevTable table{backend_names(3), std::vector<bool>(3, false), 251};
  EXPECT_EQ(table.lookup(123), -1);
}

TEST(MaglevTable, SingleBackendOwnsEverything) {
  const MaglevTable table{backend_names(1), 251};
  const auto counts = table.slot_counts(1);
  EXPECT_EQ(counts[0], 251u);
}

TEST(IsPrime, Basics) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(251));
  EXPECT_TRUE(is_prime(65537));
  EXPECT_FALSE(is_prime(65536));
  EXPECT_FALSE(is_prime(1021 * 3));
}

}  // namespace
}  // namespace speedybox::nf
