// Per-tenant packet conservation under the adversarial-tenant scenario
// (DESIGN.md §14): a well-behaved tenant with a tight SLO shares the host
// with a syn-flood tenant. Every packet must be accounted for at both
// boundaries, per tenant:
//
//   offered   == gate_shed + forwarded          (host admission gate)
//   forwarded == outputs (delivered + dropped)  (executor hand-off)
//   admitted  == delivered + drops + faulted    (executor)
//
// where delivered is counted from the actual output packets, never from a
// counter — the same discipline as the overload conservation suite.
#include <gtest/gtest.h>

#include "tenancy/tenant_host.hpp"

namespace speedybox::tenancy {
namespace {

void expect_tenant_conserved(const TenantResult& tenant,
                             std::uint64_t expected_offered) {
  SCOPED_TRACE("tenant " + tenant.id);
  EXPECT_EQ(tenant.offered, expected_offered);
  EXPECT_EQ(tenant.offered, tenant.gate_shed + tenant.forwarded);
  // Every forwarded packet surfaces in the outputs, delivered or dropped;
  // gate-shed packets never reach the executor.
  EXPECT_EQ(tenant.forwarded, tenant.outputs.size());
  EXPECT_EQ(tenant.stats.packets, tenant.forwarded);
  EXPECT_EQ(tenant.stats.packets,
            tenant.delivered() + tenant.stats.drops +
                tenant.stats.overload.faulted);
}

TEST(TenantConservation, AdversarialTenantCannotBreakTheLedger) {
  HostSpec host;
  host.name = "adversarial";

  TenantSpec steady;
  steady.id = "steady";
  steady.plan.chain = plan::ChainSpec::parse("nat,monitor");
  steady.plan.executor = plan::ExecutorKind::kSharded;
  steady.plan.shards = 2;
  // Unreachably tight SLO: every window with recorded latency breaches,
  // so the arbiter must act and the flood tenant must be tightened.
  steady.slo_us = 0.001;
  steady.workload.kind = "uniform";
  steady.workload.flows = 50;
  steady.workload.packets_per_flow = 16;
  steady.workload.seed = 11;

  TenantSpec flood;
  flood.id = "flood";
  flood.plan.chain = plan::ChainSpec::parse("ipfilter,monitor");
  flood.plan.executor = plan::ExecutorKind::kRunner;
  flood.slo_us = 1e9;  // the flood never qualifies as a victim itself
  flood.workload.kind = "syn-flood";
  flood.workload.flows = 0;  // scenario default population
  flood.workload.seed = 12;
  flood.workload.repeat = 2;  // 2 * 3072 scenario packets

  host.tenants = {steady, flood};
  host.enforcement.window_packets = 256;
  host.enforcement.breach_streak = 1;
  host.enforcement.cooldown_windows = 0;
  host.enforcement.min_budget = 16;
  host.enforcement.reallocate_shards = false;  // pure admission test

  const std::uint64_t steady_packets =
      steady.workload.build().packet_count();
  const std::uint64_t flood_packets = flood.workload.build().packet_count();
  // The flood must dominate offered-per-weight or it is not the offender.
  ASSERT_GT(flood_packets, 2 * steady_packets);

  TenantHost tenant_host{host};
  const HostRunResult result = tenant_host.run();
  ASSERT_EQ(result.tenants.size(), 2u);
  EXPECT_GT(result.enforcement_ticks, 3u);

  expect_tenant_conserved(result.tenants[0], steady_packets);
  expect_tenant_conserved(result.tenants[1], flood_packets);

  // Isolation: the arbiter tightened the flood, never the victim. The
  // victim's gate stays wide open — all shedding lands on the offender.
  EXPECT_EQ(result.tenants[0].gate_shed, 0u);
  EXPECT_EQ(result.tenants[0].max_escalation, 0);
  EXPECT_GE(result.tenants[1].max_escalation, 1);
  EXPECT_GT(result.tenants[1].gate_shed, 0u);
  EXPECT_EQ(result.tenants[0].final_shards, 2u);
  EXPECT_EQ(result.tenants[1].final_shards, 0u);  // runner tenant
}

TEST(TenantConservation, WellBehavedTenantsAreNeverGated) {
  // Two polite tenants with generous SLOs: the enforcement loop runs but
  // must not interfere — zero shed on both, ladder never leaves L0.
  HostSpec host;
  for (int i = 0; i < 2; ++i) {
    TenantSpec tenant;
    tenant.id = i == 0 ? "alpha" : "bravo";
    tenant.plan.chain = plan::ChainSpec::parse("nat,monitor");
    tenant.plan.executor = plan::ExecutorKind::kSharded;
    tenant.plan.shards = 1;
    tenant.slo_us = 1e9;
    tenant.workload.kind = "uniform";
    tenant.workload.flows = 30;
    tenant.workload.packets_per_flow = 10;
    tenant.workload.seed = 100 + i;
    host.tenants.push_back(tenant);
  }
  host.enforcement.window_packets = 128;

  TenantHost tenant_host{host};
  const HostRunResult result = tenant_host.run();
  for (const TenantResult& tenant : result.tenants) {
    expect_tenant_conserved(tenant, 300);
    EXPECT_EQ(tenant.gate_shed, 0u);
    EXPECT_EQ(tenant.max_escalation, 0);
    EXPECT_EQ(tenant.realloc_events, 0u);
    EXPECT_EQ(tenant.delivered(),
              tenant.stats.packets - tenant.stats.drops -
                  tenant.stats.overload.faulted);
  }
}

}  // namespace
}  // namespace speedybox::tenancy
