// Properties of the Table-I parallel scheduler (§V-C2), over random batch
// access sequences:
//   soundness   — within every group, each ordered pair is parallelizable;
//   completeness— every batch appears exactly once, groups preserve order;
//   latency     — critical path ≤ sum of costs, ≥ max cost.
#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel_schedule.hpp"
#include "util/rng.hpp"

namespace speedybox::core {
namespace {

std::vector<StateFunctionBatch> random_batches(util::Rng& rng,
                                               std::size_t count) {
  std::vector<StateFunctionBatch> batches;
  for (std::size_t i = 0; i < count; ++i) {
    StateFunctionBatch batch;
    batch.nf_index = i;
    const auto access = static_cast<PayloadAccess>(rng.below(3));
    batch.functions.push_back(
        StateFunction{[](net::Packet&, const net::ParsedPacket&) {}, access,
                      "sf"});
    batches.push_back(std::move(batch));
  }
  return batches;
}

class ScheduleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleProperty, GroupsAreSoundAndComplete) {
  util::Rng rng{GetParam()};
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t count = 1 + rng.below(10);
    const auto batches = random_batches(rng, count);
    const ParallelSchedule schedule = build_schedule(batches);

    // Completeness: every index exactly once, ascending across groups.
    std::vector<std::size_t> flattened;
    for (const auto& group : schedule.groups) {
      for (const std::size_t index : group) flattened.push_back(index);
    }
    std::vector<std::size_t> expected(count);
    std::iota(expected.begin(), expected.end(), 0);
    ASSERT_EQ(flattened, expected);

    // Soundness: all ordered pairs within a group parallelizable.
    for (const auto& group : schedule.groups) {
      for (std::size_t a = 0; a < group.size(); ++a) {
        for (std::size_t b = a + 1; b < group.size(); ++b) {
          ASSERT_TRUE(parallelizable(batches[group[a]].access(),
                                     batches[group[b]].access()))
              << "group violates Table I";
        }
      }
    }
  }
}

TEST_P(ScheduleProperty, CriticalPathBounded) {
  util::Rng rng{GetParam() ^ 0xF00D};
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t count = 1 + rng.below(10);
    const auto batches = random_batches(rng, count);
    const ParallelSchedule schedule = build_schedule(batches);

    std::vector<std::uint64_t> costs;
    for (std::size_t i = 0; i < count; ++i) costs.push_back(rng.below(1000));
    const std::uint64_t critical = schedule.critical_path(costs);
    const std::uint64_t total =
        std::accumulate(costs.begin(), costs.end(), std::uint64_t{0});
    const std::uint64_t max_cost =
        *std::max_element(costs.begin(), costs.end());
    ASSERT_LE(critical, total);
    ASSERT_GE(critical, max_cost);
  }
}

TEST_P(ScheduleProperty, GreedyNeverWorseThanSequential) {
  // The number of groups never exceeds the batch count, and all-IGNORE
  // sequences always collapse to a single group.
  util::Rng rng{GetParam() ^ 0xBEEF};
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t count = 1 + rng.below(8);
    const auto batches = random_batches(rng, count);
    EXPECT_LE(build_schedule(batches).group_count(), count);
  }

  std::vector<StateFunctionBatch> ignores;
  for (std::size_t i = 0; i < 6; ++i) {
    StateFunctionBatch batch;
    batch.nf_index = i;
    batch.functions.push_back(
        StateFunction{{}, PayloadAccess::kIgnore, "i"});
    ignores.push_back(std::move(batch));
  }
  EXPECT_EQ(build_schedule(ignores).group_count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace speedybox::core
