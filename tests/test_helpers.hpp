// Shared helpers for the SpeedyBox test suite.
#pragma once

#include <cstdint>
#include <string_view>

#include "net/five_tuple.hpp"
#include "net/packet.hpp"
#include "net/byte_order.hpp"
#include "net/packet_builder.hpp"

namespace speedybox::testing {

/// A distinct, deterministic five-tuple per id.
inline net::FiveTuple tuple_n(std::uint32_t id,
                              std::uint16_t dst_port = 80) {
  net::FiveTuple tuple;
  tuple.src_ip = net::Ipv4Addr{0xC0A80000u + id + 2};  // 192.168.x.x
  tuple.dst_ip = net::Ipv4Addr{10, 1, 0, 1};
  tuple.src_port = static_cast<std::uint16_t>(20000 + (id % 40000));
  tuple.dst_port = dst_port;
  tuple.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);
  return tuple;
}

inline net::Packet tcp_packet(std::uint32_t flow_id,
                              std::string_view payload = "hello",
                              std::uint8_t flags = net::kTcpFlagAck) {
  return net::make_tcp_packet(tuple_n(flow_id), payload, flags);
}

/// Byte-for-byte wire equality (metadata ignored).
inline bool same_bytes(const net::Packet& a, const net::Packet& b) {
  const auto ba = a.bytes();
  const auto bb = b.bytes();
  return ba.size() == bb.size() &&
         std::equal(ba.begin(), ba.end(), bb.begin());
}

}  // namespace speedybox::testing
