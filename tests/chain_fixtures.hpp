// THE §VII-C evaluation chains and workloads for the test suite, built
// from the single registry-backed spec definitions in runtime/plan.hpp —
// tests must not hand-roll emplace_nf builders for these chains, so a
// change to the canonical topology propagates everywhere at once.
#pragma once

#include <memory>
#include <stdexcept>

#include "runtime/chain.hpp"
#include "runtime/plan.hpp"
#include "trace/payload_synth.hpp"
#include "trace/workload.hpp"

namespace speedybox::testing {

/// Chain 1 (gateway): MazuNAT -> Maglev(5 backends, table 1021) -> Monitor
/// -> IPFilter(empty ACL). NFs are labeled "<kind>-<index>".
inline std::unique_ptr<runtime::ServiceChain> make_chain1() {
  return plan::build_chain(plan::vii_c_chain1());
}

/// Chain 2 (IDS): IPFilter(drop 10.1.3.0/24) -> Snort -> Monitor.
inline std::unique_ptr<runtime::ServiceChain> make_chain2() {
  return plan::build_chain(plan::vii_c_chain2());
}

/// Typed access to the index-th NF of a registry-built chain (for
/// asserting on NF-internal state). Throws on a type mismatch so a
/// reordered spec fails loudly instead of null-dereferencing.
template <typename Nf>
Nf& nf_at(runtime::ServiceChain& chain, std::size_t index) {
  auto* nf = dynamic_cast<Nf*>(&chain.nf(index));
  if (nf == nullptr) {
    throw std::logic_error("chain NF " + std::to_string(index) +
                           " is not the expected type");
  }
  return *nf;
}

/// The canonical chain-1 evaluation workload (datacenter mix, 80 flows).
inline trace::Workload chain1_workload() {
  trace::DatacenterWorkloadConfig config;
  config.flow_count = 80;
  config.seed = 20190708;
  return make_datacenter_workload(config);
}

/// The canonical chain-2 evaluation workload: datacenter mix with Snort
/// rule contents planted into a quarter of the payloads.
inline trace::Workload chain2_workload() {
  trace::DatacenterWorkloadConfig config;
  config.flow_count = 60;
  config.seed = 5550123;
  trace::Workload workload = make_datacenter_workload(config);
  trace::PayloadSynthConfig synth;
  synth.match_fraction = 0.25;
  plant_rule_contents(workload, trace::default_snort_rules(), synth);
  return workload;
}

}  // namespace speedybox::testing
