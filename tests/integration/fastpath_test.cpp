// End-to-end structure of the fast path: consolidation contents, path
// switching, and per-packet byte-identical output between the recording
// (initial) pass and the Global MAT (subsequent) pass.
#include <gtest/gtest.h>

#include "net/fields.hpp"
#include "nf/ip_filter.hpp"
#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "runtime/runner.hpp"
#include "test_helpers.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::tuple_n;

TEST(FastPath, ConsolidatedRuleContainsNatModifiesAndMonitorBatch) {
  ServiceChain chain;
  chain.emplace_nf<nf::MazuNat>();
  chain.emplace_nf<nf::Monitor>();
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};

  net::Packet first = net::make_tcp_packet(tuple_n(1), "x");
  runner.process_packet(first);

  const core::ConsolidatedRule* rule =
      chain.global_mat().find(first.fid());
  ASSERT_NE(rule, nullptr);
  EXPECT_TRUE(rule->action.field_writes[static_cast<std::size_t>(
      net::HeaderField::kSrcIp)]);
  EXPECT_TRUE(rule->action.field_writes[static_cast<std::size_t>(
      net::HeaderField::kSrcPort)]);
  ASSERT_EQ(rule->batches.size(), 1u);  // only Monitor has state functions
  EXPECT_EQ(rule->batches[0].nf_name, "monitor");
}

TEST(FastPath, SubsequentOutputMatchesRecordingOutput) {
  ServiceChain chain;
  chain.emplace_nf<nf::MazuNat>();
  chain.emplace_nf<nf::Monitor>();
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};

  net::Packet first = net::make_tcp_packet(tuple_n(2), "same payload");
  runner.process_packet(first);

  net::Packet second = net::make_tcp_packet(tuple_n(2), "same payload");
  runner.process_packet(second);
  // NAT rewrote both identically: bytes must match exactly.
  EXPECT_TRUE(speedybox::testing::same_bytes(first, second));
}

TEST(FastPath, ManyFlowsIndependentRules) {
  ServiceChain chain;
  chain.emplace_nf<nf::MazuNat>();
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};

  constexpr std::uint32_t kFlows = 50;
  std::vector<std::uint16_t> ports(kFlows);
  for (std::uint32_t f = 0; f < kFlows; ++f) {
    net::Packet packet = net::make_tcp_packet(tuple_n(f), "x");
    runner.process_packet(packet);
    const auto parsed = net::parse_packet(packet);
    ports[f] = static_cast<std::uint16_t>(
        net::get_field(packet, *parsed, net::HeaderField::kSrcPort));
  }
  EXPECT_EQ(chain.global_mat().size(), kFlows);
  // Subsequent packets of each flow keep their flow's port.
  for (std::uint32_t f = 0; f < kFlows; ++f) {
    net::Packet packet = net::make_tcp_packet(tuple_n(f), "y");
    runner.process_packet(packet);
    const auto parsed = net::parse_packet(packet);
    EXPECT_EQ(net::get_field(packet, *parsed, net::HeaderField::kSrcPort),
              ports[f]);
  }
}

TEST(FastPath, ForwardOnlyChainRuleIsPureForward) {
  ServiceChain chain;
  chain.emplace_nf<nf::IpFilter>(std::vector<nf::AclRule>{});
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};
  net::Packet first = net::make_tcp_packet(tuple_n(60), "x");
  runner.process_packet(first);
  const core::ConsolidatedRule* rule = chain.global_mat().find(first.fid());
  ASSERT_NE(rule, nullptr);
  EXPECT_TRUE(rule->action.is_pure_forward());
}

TEST(FastPath, WorkCyclesShrinkVersusOriginalOnLongChain) {
  // The headline claim in microcosm: with 3 header-action NFs, the fast
  // path spends measurably fewer CPU cycles per subsequent packet than the
  // original chain. Measured work, not modeled.
  const trace::Workload workload = trace::make_uniform_workload(10, 50, 64);

  auto build = [] {
    auto chain = std::make_unique<ServiceChain>();
    chain->emplace_nf<nf::IpFilter>(std::vector<nf::AclRule>{}, "f1");
    chain->emplace_nf<nf::IpFilter>(std::vector<nf::AclRule>{}, "f2");
    chain->emplace_nf<nf::IpFilter>(std::vector<nf::AclRule>{}, "f3");
    return chain;
  };

  auto original_chain = build();
  ChainRunner original{*original_chain,
                       {platform::PlatformKind::kBess, false, false}};
  const double original_work =
      original.run_workload(workload).platform_cycles_subsequent.percentile(50);

  auto speedy_chain = build();
  ChainRunner speedy{*speedy_chain,
                     {platform::PlatformKind::kBess, true, false}};
  const double speedy_work =
      speedy.run_workload(workload).platform_cycles_subsequent.percentile(50);

  EXPECT_LT(speedy_work, original_work)
      << "consolidation must reduce real CPU work on a 3-NF chain";
}

}  // namespace
}  // namespace speedybox::runtime
