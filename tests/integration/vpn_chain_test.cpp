// Encap/decap consolidation end-to-end (§V-B stack simulation): a chain
// that tunnels and un-tunnels (VPN egress -> monitor segment -> VPN
// ingress) consolidates to NO encapsulation work at all on the fast path —
// the R3-style elimination for headers — while a one-endpoint chain keeps
// the residual encap/decap.
#include <gtest/gtest.h>

#include "equivalence/equivalence_helpers.hpp"
#include "nf/gateway.hpp"
#include "nf/monitor.hpp"
#include "nf/vpn_gateway.hpp"
#include "runtime/runner.hpp"
#include "test_helpers.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::tuple_n;

TEST(VpnChain, EncapDecapCancelOnFastPath) {
  ServiceChain chain;
  chain.emplace_nf<nf::VpnGateway>(nf::VpnMode::kEgress, 0x2000u, "vpn-out");
  chain.emplace_nf<nf::Monitor>(nf::MonitorConfig{}, "wan-monitor");
  chain.emplace_nf<nf::VpnGateway>(nf::VpnMode::kIngress, 0x2000u, "vpn-in");
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};

  net::Packet first = net::make_tcp_packet(tuple_n(1), "through the tunnel");
  runner.process_packet(first);

  const core::ConsolidatedRule* rule = chain.global_mat().find(first.fid());
  ASSERT_NE(rule, nullptr);
  EXPECT_TRUE(rule->action.trailing_encaps.empty())
      << "encap must cancel against the downstream decap";
  EXPECT_TRUE(rule->action.leading_decaps.empty());
  EXPECT_FALSE(rule->action.drop);

  // Subsequent packets leave the chain identical to how they entered.
  net::Packet second = net::make_tcp_packet(tuple_n(1), "through the tunnel");
  const net::Packet before = second;
  runner.process_packet(second);
  EXPECT_TRUE(speedybox::testing::same_bytes(second, before));
}

TEST(VpnChain, ResidualEncapSurvivesConsolidation) {
  ServiceChain chain;
  chain.emplace_nf<nf::Gateway>(std::vector<nf::TrafficClass>{},
                                "gateway");
  chain.emplace_nf<nf::VpnGateway>(nf::VpnMode::kEgress, 0x3000u, "vpn-out");
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};

  net::Packet first = net::make_tcp_packet(tuple_n(2), "egress only");
  runner.process_packet(first);
  const core::ConsolidatedRule* rule = chain.global_mat().find(first.fid());
  ASSERT_NE(rule, nullptr);
  ASSERT_EQ(rule->action.trailing_encaps.size(), 1u);
  EXPECT_EQ(rule->action.trailing_encaps[0].kind, net::EncapKind::kAh);

  net::Packet second = net::make_tcp_packet(tuple_n(2), "egress only");
  runner.process_packet(second);
  EXPECT_TRUE(net::outer_ah_spi(second).has_value());
  // Both the modify (TTL) and the encap applied, checksums valid.
  const auto parsed = net::parse_packet(second);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(net::verify_ipv4_checksum(second, parsed->l3_offset));
  EXPECT_EQ(net::get_field(second, *parsed, net::HeaderField::kTtl), 63u);
}

TEST(VpnChain, SiteToSiteEquivalence) {
  // Full site-to-site path: gateway -> VPN out -> WAN monitor -> VPN in ->
  // LAN monitor. Original vs SpeedyBox outputs must be byte-identical and
  // both monitors must agree between paths.
  const trace::Workload workload = trace::make_uniform_workload(20, 15, 120);

  struct Vpns {
    std::unique_ptr<ServiceChain> chain = std::make_unique<ServiceChain>();
    nf::Monitor* wan;
    nf::Monitor* lan;
  };
  const auto build = [] {
    Vpns v;
    v.chain->emplace_nf<nf::Gateway>(
        std::vector<nf::TrafficClass>{{80, 80, 18}}, "gateway");
    v.chain->emplace_nf<nf::VpnGateway>(nf::VpnMode::kEgress, 0x4000u,
                                        "vpn-out");
    v.wan = &v.chain->emplace_nf<nf::Monitor>(nf::MonitorConfig{}, "wan");
    v.chain->emplace_nf<nf::VpnGateway>(nf::VpnMode::kIngress, 0x4000u,
                                        "vpn-in");
    v.lan = &v.chain->emplace_nf<nf::Monitor>(nf::MonitorConfig{}, "lan");
    return v;
  };

  auto original = build();
  const auto original_run =
      speedybox::testing::run_chain(*original.chain, workload, false);
  auto speedy = build();
  const auto speedy_run =
      speedybox::testing::run_chain(*speedy.chain, workload, true);

  speedybox::testing::expect_identical_outputs(original_run, speedy_run);
  EXPECT_EQ(original.lan->total_bytes(), speedy.lan->total_bytes());
  // The WAN monitor sits inside the tunnel: on the original path it counts
  // encapsulated (larger) packets. The fast path executes its recorded
  // state function on the consolidated packet — sizes differ by the AH
  // length, packets counted identically.
  EXPECT_EQ(original.wan->total_packets(), speedy.wan->total_packets());
}

}  // namespace
}  // namespace speedybox::runtime
