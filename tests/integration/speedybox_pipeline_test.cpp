// The threaded SpeedyBox deployment end-to-end: recording on NF cores,
// consolidation at the manager, fast-path state functions dispatched to the
// owning cores, held packets released in order, early drop at the manager.
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "nf/ip_filter.hpp"
#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "runtime/runner.hpp"
#include "runtime/speedybox_pipeline.hpp"
#include "test_helpers.hpp"
#include "trace/workload.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::same_bytes;
using speedybox::testing::tuple_n;

TEST(SpeedyBoxPipeline, OutputsMatchSingleThreadedSpeedyBox) {
  const trace::Workload workload = trace::make_uniform_workload(15, 12, 80);

  // Threaded run.
  std::vector<net::Packet> threaded_out;
  std::uint64_t threaded_flows;
  {
    ServiceChain chain;
    chain.emplace_nf<nf::MazuNat>();
    chain.emplace_nf<nf::Monitor>();
    SpeedyBoxPipeline pipeline{chain};
    for (std::size_t i = 0; i < workload.packet_count(); ++i) {
      pipeline.push(workload.materialize(i));
    }
    threaded_out = pipeline.stop_and_collect();
    threaded_flows = pipeline.recorded_flows();
  }

  // Single-threaded reference run.
  std::vector<net::Packet> reference_out;
  {
    ServiceChain chain;
    chain.emplace_nf<nf::MazuNat>();
    chain.emplace_nf<nf::Monitor>();
    ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};
    for (std::size_t i = 0; i < workload.packet_count(); ++i) {
      net::Packet packet = workload.materialize(i);
      if (!runner.process_packet(packet).dropped) {
        reference_out.push_back(std::move(packet));
      }
    }
  }

  EXPECT_EQ(threaded_flows, 15u);
  ASSERT_EQ(threaded_out.size(), reference_out.size());

  // The pipeline guarantees per-flow FIFO but not global arrival order
  // (packets held during recording are released at consolidation time), so
  // compare the ordered per-flow byte sequences.
  using FlowOutputs =
      std::unordered_map<net::FiveTuple, std::vector<std::vector<std::uint8_t>>,
                         net::FiveTupleHash>;
  const auto group = [](const std::vector<net::Packet>& packets) {
    FlowOutputs flows;
    for (const net::Packet& packet : packets) {
      const auto parsed = net::parse_packet(packet);
      flows[net::extract_five_tuple(packet, *parsed)].emplace_back(
          packet.bytes().begin(), packet.bytes().end());
    }
    return flows;
  };
  const FlowOutputs threaded_flows_out = group(threaded_out);
  const FlowOutputs reference_flows_out = group(reference_out);
  ASSERT_EQ(threaded_flows_out.size(), reference_flows_out.size());
  for (const auto& [tuple, sequence] : reference_flows_out) {
    const auto it = threaded_flows_out.find(tuple);
    ASSERT_NE(it, threaded_flows_out.end()) << tuple.to_string();
    EXPECT_EQ(it->second, sequence) << tuple.to_string();
  }
}

TEST(SpeedyBoxPipeline, StateFunctionsRunOnNfCores) {
  ServiceChain chain;
  chain.emplace_nf<nf::MazuNat>();
  auto& monitor = chain.emplace_nf<nf::Monitor>();
  {
    SpeedyBoxPipeline pipeline{chain};
    for (int i = 0; i < 20; ++i) {
      pipeline.push(net::make_tcp_packet(tuple_n(1), "counted"));
    }
    pipeline.stop_and_collect();
  }
  // Every packet accounted exactly once (initial on the monitor's core via
  // process(), subsequent via its recorded state function on the same
  // core).
  EXPECT_EQ(monitor.total_packets(), 20u);
}

TEST(SpeedyBoxPipeline, EarlyDropAtManager) {
  ServiceChain chain;
  auto& f1 = chain.emplace_nf<nf::IpFilter>(std::vector<nf::AclRule>{},
                                            "pass");
  auto& f2 = chain.emplace_nf<nf::IpFilter>(
      std::vector<nf::AclRule>{nf::AclRule::drop_dst_port(80)}, "drop80");
  std::uint64_t drops;
  {
    SpeedyBoxPipeline pipeline{chain};
    for (int i = 0; i < 10; ++i) {
      pipeline.push(net::make_tcp_packet(tuple_n(2, 80), "doomed"));
    }
    const auto out = pipeline.stop_and_collect();
    EXPECT_TRUE(out.empty());
    drops = pipeline.drops();
  }
  EXPECT_EQ(drops, 10u);
  // Only the initial packet reached the NF cores.
  EXPECT_EQ(f1.packets_processed(), 1u);
  EXPECT_EQ(f2.packets_processed(), 1u);
}

TEST(SpeedyBoxPipeline, PacketsHeldDuringRecordingAreReleasedInOrder) {
  ServiceChain chain;
  chain.emplace_nf<nf::MazuNat>();
  auto& monitor = chain.emplace_nf<nf::Monitor>();
  std::uint64_t held;
  std::vector<net::Packet> out;
  {
    SpeedyBoxPipeline pipeline{chain};
    // Burst the whole flow without draining: packets 2..N arrive while the
    // initial packet is still being recorded on the NF threads.
    for (int i = 0; i < 30; ++i) {
      net::FiveTuple tuple = tuple_n(3);
      net::PacketSpec spec;
      spec.tuple = tuple;
      spec.seq = static_cast<std::uint32_t>(i);
      spec.payload = {};
      pipeline.push(net::build_packet(spec));
    }
    out = pipeline.stop_and_collect();
    held = pipeline.held_packets();
  }
  ASSERT_EQ(out.size(), 30u);
  EXPECT_GT(held, 0u) << "the burst must actually exercise the hold queue";
  EXPECT_EQ(monitor.total_packets(), 30u);
  // Per-flow FIFO: TCP sequence numbers strictly increasing.
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto parsed = net::parse_packet(out[i]);
    const std::uint32_t seq = net::load_be32(out[i].bytes(),
                                             parsed->l4_offset + 4);
    EXPECT_EQ(seq, i) << "packet " << i << " out of order";
  }
}

TEST(SpeedyBoxPipeline, TeardownFreesFlowState) {
  ServiceChain chain;
  auto& nat = chain.emplace_nf<nf::MazuNat>();
  {
    SpeedyBoxPipeline pipeline{chain};
    pipeline.push(net::make_tcp_packet(tuple_n(4), "open"));
    pipeline.push(net::make_tcp_packet(tuple_n(4), "data"));
    pipeline.push(net::make_tcp_packet(
        tuple_n(4), "", net::kTcpFlagFin | net::kTcpFlagAck));
    pipeline.stop_and_collect();
  }
  EXPECT_EQ(nat.active_mappings(), 0u);
  EXPECT_EQ(chain.global_mat().size(), 0u);
  EXPECT_EQ(chain.classifier().active_flows(), 0u);
}

TEST(SpeedyBoxPipeline, ManyFlowsStress) {
  ServiceChain chain;
  chain.emplace_nf<nf::MazuNat>();
  chain.emplace_nf<nf::Monitor>();
  chain.emplace_nf<nf::IpFilter>(std::vector<nf::AclRule>{});
  const trace::Workload workload = trace::make_uniform_workload(50, 40, 48);
  std::vector<net::Packet> out;
  {
    SpeedyBoxPipeline pipeline{chain, /*ring_capacity=*/32};
    for (std::size_t i = 0; i < workload.packet_count(); ++i) {
      pipeline.push(workload.materialize(i));
    }
    out = pipeline.stop_and_collect();
  }
  EXPECT_EQ(out.size(), workload.packet_count());
}

}  // namespace
}  // namespace speedybox::runtime
