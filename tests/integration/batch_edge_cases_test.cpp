// In-batch edge cases of the vector data path (DESIGN.md §8): the hazards
// that only exist once multiple packets share one PacketBatch.
//
//   * a FIN/RST teardown followed by a later packet of the SAME five-tuple
//     inside one batch — the batched classifier pass must flush at the
//     teardown boundary so the reused tuple re-records, exactly as it
//     would packet-at-a-time;
//   * a batch where every packet drops — all slots masked, nothing
//     forwarded, per-slot outcomes still filled;
//   * a recording-pass (initial) packet sharing a batch with fast-path
//     packets — recording stays scalar in-batch while its neighbors take
//     the Global-MAT path.
//
// Each case is checked both directly (expected flags) and differentially
// (byte-identical to a scalar run of the same packets on a fresh chain).
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "nf/ip_filter.hpp"
#include "nf/monitor.hpp"
#include "net/packet_batch.hpp"
#include "runtime/runner.hpp"
#include "test_helpers.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::same_bytes;
using speedybox::testing::tuple_n;

std::unique_ptr<ServiceChain> monitor_filter_chain() {
  auto chain = std::make_unique<ServiceChain>("mon-filter");
  chain->emplace_nf<nf::Monitor>();
  chain->emplace_nf<nf::IpFilter>(std::vector<nf::AclRule>{});
  return chain;
}

RunConfig speedybox_config(std::size_t batch_size) {
  RunConfig config{platform::PlatformKind::kBess, true, false};
  config.batch_size = batch_size;
  return config;
}

net::Packet flow_packet(std::uint32_t flow, std::string_view payload,
                        std::uint8_t flags = net::kTcpFlagAck) {
  return net::make_tcp_packet(tuple_n(flow), payload, flags);
}

/// Scalar reference of `packets` on a fresh chain from `factory`.
std::vector<net::Packet> scalar_reference(
    const std::vector<net::Packet>& packets,
    std::unique_ptr<ServiceChain> chain,
    std::vector<PacketOutcome>* outcomes = nullptr) {
  ChainRunner runner{*chain, speedybox_config(1)};
  std::vector<net::Packet> out;
  for (const net::Packet& original : packets) {
    net::Packet packet = original;
    packet.reset_metadata();
    const PacketOutcome outcome = runner.process_packet(packet);
    if (outcomes != nullptr) outcomes->push_back(outcome);
    out.push_back(std::move(packet));
  }
  return out;
}

TEST(BatchEdgeCases, TeardownThenSameTupleReuseInOneBatch) {
  // One batch: [A ack, A fin, A ack, A ack]. The FIN tears flow A down
  // mid-batch; the packet right after it is the SAME five-tuple, so it must
  // re-record (initial), and the last one rides the rebuilt rule.
  std::vector<net::Packet> packets;
  packets.push_back(flow_packet(7, "warmup"));
  packets.push_back(flow_packet(7, "", net::kTcpFlagFin | net::kTcpFlagAck));
  packets.push_back(flow_packet(7, "reopen"));
  packets.push_back(flow_packet(7, "steady"));

  auto chain = monitor_filter_chain();
  ChainRunner runner{*chain, speedybox_config(8)};
  std::vector<net::Packet> batched;
  for (const net::Packet& original : packets) {
    net::Packet packet = original;
    packet.reset_metadata();
    batched.push_back(std::move(packet));
  }
  net::PacketBatch batch{8};
  for (net::Packet& packet : batched) batch.push(&packet);
  std::vector<PacketOutcome> outcomes;
  runner.process_batch(batch, outcomes);

  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_TRUE(outcomes[0].initial) << "first packet of A records";
  EXPECT_TRUE(outcomes[1].fast_path) << "the FIN is a subsequent packet";
  EXPECT_TRUE(outcomes[2].initial)
      << "same tuple after an in-batch teardown must re-record";
  EXPECT_TRUE(outcomes[3].fast_path)
      << "packet after the re-record rides the rebuilt rule";
  for (const PacketOutcome& outcome : outcomes) {
    EXPECT_FALSE(outcome.dropped);
  }

  std::vector<PacketOutcome> ref_outcomes;
  const std::vector<net::Packet> reference =
      scalar_reference(packets, monitor_filter_chain(), &ref_outcomes);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(outcomes[i].initial, ref_outcomes[i].initial) << i;
    EXPECT_EQ(outcomes[i].fast_path, ref_outcomes[i].fast_path) << i;
    EXPECT_TRUE(same_bytes(batched[i], reference[i])) << "packet " << i;
  }
}

TEST(BatchEdgeCases, RstTeardownReuseInOneBatch) {
  // Same flush boundary, RST flavor, with unrelated flows interleaved so
  // the segment split lands mid-batch rather than at its edges.
  std::vector<net::Packet> packets;
  packets.push_back(flow_packet(1, "a"));
  packets.push_back(flow_packet(2, "b"));
  packets.push_back(flow_packet(1, "", net::kTcpFlagRst));
  packets.push_back(flow_packet(2, "c"));
  packets.push_back(flow_packet(1, "reborn"));

  auto chain = monitor_filter_chain();
  ChainRunner runner{*chain, speedybox_config(8)};
  std::vector<net::Packet> batched;
  for (const net::Packet& original : packets) {
    net::Packet packet = original;
    packet.reset_metadata();
    batched.push_back(std::move(packet));
  }
  net::PacketBatch batch{8};
  for (net::Packet& packet : batched) batch.push(&packet);
  std::vector<PacketOutcome> outcomes;
  runner.process_batch(batch, outcomes);

  ASSERT_EQ(outcomes.size(), 5u);
  EXPECT_TRUE(outcomes[2].fast_path) << "the RST itself is subsequent";
  EXPECT_TRUE(outcomes[3].fast_path)
      << "flow 2 is untouched by flow 1's teardown";
  EXPECT_TRUE(outcomes[4].initial) << "flow 1 re-records after the RST";

  std::vector<PacketOutcome> ref_outcomes;
  const std::vector<net::Packet> reference =
      scalar_reference(packets, monitor_filter_chain(), &ref_outcomes);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(outcomes[i].initial, ref_outcomes[i].initial) << i;
    EXPECT_EQ(outcomes[i].fast_path, ref_outcomes[i].fast_path) << i;
    EXPECT_TRUE(same_bytes(batched[i], reference[i])) << "packet " << i;
  }
}

TEST(BatchEdgeCases, BatchWhereEveryPacketDrops) {
  // An ACL that drops the whole test prefix: every slot masks, outcomes
  // still fill per slot, and the batch ends with zero valid packets.
  const auto make_chain = [] {
    auto chain = std::make_unique<ServiceChain>("drop-all");
    chain->emplace_nf<nf::IpFilter>(std::vector<nf::AclRule>{
        nf::AclRule::drop_dst_prefix(net::Ipv4Addr{10, 1, 0, 0}, 16)});
    chain->emplace_nf<nf::Monitor>();
    return chain;
  };
  std::vector<net::Packet> packets;
  for (std::uint32_t flow = 0; flow < 6; ++flow) {
    packets.push_back(flow_packet(flow, "doomed"));
  }

  auto chain = make_chain();
  ChainRunner runner{*chain, speedybox_config(8)};
  std::vector<net::Packet> batched = packets;
  for (net::Packet& packet : batched) packet.reset_metadata();
  net::PacketBatch batch{8};
  for (net::Packet& packet : batched) batch.push(&packet);
  std::vector<PacketOutcome> outcomes;
  runner.process_batch(batch, outcomes);

  ASSERT_EQ(outcomes.size(), 6u);
  EXPECT_EQ(batch.valid_count(), 0u) << "every slot must end masked";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].dropped) << "packet " << i;
    EXPECT_TRUE(batched[i].dropped()) << "packet " << i;
  }
  EXPECT_EQ(runner.stats().drops, 6u);
  EXPECT_EQ(runner.stats().packets, 6u);

  std::vector<PacketOutcome> ref_outcomes;
  scalar_reference(packets, make_chain(), &ref_outcomes);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].dropped, ref_outcomes[i].dropped) << i;
  }
}

TEST(BatchEdgeCases, RecordingPacketSharesBatchWithFastPathPackets) {
  // Warm flow A in a first batch, then one batch mixing A's fast-path
  // packets with flow B's very first (recording) packet.
  auto chain = monitor_filter_chain();
  ChainRunner runner{*chain, speedybox_config(8)};

  net::Packet warm = flow_packet(21, "warm");
  net::PacketBatch warm_batch{8};
  warm_batch.push(&warm);
  std::vector<PacketOutcome> outcomes;
  runner.process_batch(warm_batch, outcomes);
  ASSERT_TRUE(outcomes[0].initial);

  std::vector<net::Packet> packets;
  packets.push_back(flow_packet(21, "fast-1"));
  packets.push_back(flow_packet(22, "record-me"));
  packets.push_back(flow_packet(21, "fast-2"));
  packets.push_back(flow_packet(22, "now-fast"));
  std::vector<net::Packet> batched;
  for (const net::Packet& original : packets) {
    net::Packet packet = original;
    packet.reset_metadata();
    batched.push_back(std::move(packet));
  }
  net::PacketBatch batch{8};
  for (net::Packet& packet : batched) batch.push(&packet);
  runner.process_batch(batch, outcomes);

  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_TRUE(outcomes[0].fast_path);
  EXPECT_TRUE(outcomes[1].initial) << "flow B records mid-batch";
  EXPECT_TRUE(outcomes[2].fast_path);
  EXPECT_TRUE(outcomes[3].fast_path)
      << "flow B's second packet rides the just-consolidated rule";

  // Differential leg: the same five packets scalar, fresh chain.
  std::vector<net::Packet> all_packets;
  all_packets.push_back(flow_packet(21, "warm"));
  all_packets.insert(all_packets.end(), packets.begin(), packets.end());
  const std::vector<net::Packet> reference =
      scalar_reference(all_packets, monitor_filter_chain());
  EXPECT_TRUE(same_bytes(warm, reference[0]));
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_TRUE(same_bytes(batched[i], reference[i + 1]))
        << "packet " << i;
  }
}

TEST(BatchEdgeCases, PreDroppedPacketEntersMaskedAndIsSkipped) {
  // A packet already marked dropped when the batch is built enters masked:
  // the data path never touches it and it is not accounted.
  auto chain = monitor_filter_chain();
  ChainRunner runner{*chain, speedybox_config(8)};
  net::Packet live = flow_packet(31, "live");
  net::Packet dead = flow_packet(32, "dead");
  dead.mark_dropped();
  net::PacketBatch batch{8};
  batch.push(&live);
  batch.push(&dead);
  EXPECT_EQ(batch.valid_count(), 1u);
  std::vector<PacketOutcome> outcomes;
  runner.process_batch(batch, outcomes);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].initial);
  EXPECT_FALSE(outcomes[1].initial);
  EXPECT_FALSE(outcomes[1].fast_path);
  EXPECT_EQ(runner.stats().packets, 1u)
      << "slots masked at batch entry are not processed or accounted";
}

}  // namespace
}  // namespace speedybox::runtime
