// Flow lifecycle end-to-end (§VI-B): FIN/RST teardown frees rules in the
// Global MAT, every Local MAT, the classifier, and NF-internal state (via
// teardown hooks) — so resources are bounded across many short flows.
#include <gtest/gtest.h>

#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "nf/snort_ids.hpp"
#include "runtime/runner.hpp"
#include "test_helpers.hpp"
#include "trace/payload_synth.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::tuple_n;

TEST(FlowLifecycle, FinFreesAllTables) {
  ServiceChain chain;
  auto& nat = chain.emplace_nf<nf::MazuNat>();
  auto& snort = chain.emplace_nf<nf::SnortIds>(
      trace::default_snort_rules());
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};

  net::Packet open = net::make_tcp_packet(tuple_n(1), "hello");
  runner.process_packet(open);
  net::Packet mid = net::make_tcp_packet(tuple_n(1), "data");
  runner.process_packet(mid);
  EXPECT_EQ(nat.active_mappings(), 1u);
  EXPECT_EQ(snort.tracked_flows(), 1u);
  EXPECT_EQ(chain.global_mat().size(), 1u);

  net::Packet fin = net::make_tcp_packet(
      tuple_n(1), "", net::kTcpFlagFin | net::kTcpFlagAck);
  runner.process_packet(fin);
  EXPECT_EQ(nat.active_mappings(), 0u);
  EXPECT_EQ(snort.tracked_flows(), 0u);
  EXPECT_EQ(chain.global_mat().size(), 0u);
  EXPECT_EQ(chain.local_mat(0).size(), 0u);
  EXPECT_EQ(chain.local_mat(1).size(), 0u);
  EXPECT_EQ(chain.classifier().active_flows(), 0u);
}

TEST(FlowLifecycle, RstAlsoTearsDown) {
  ServiceChain chain;
  chain.emplace_nf<nf::Monitor>();
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};
  net::Packet open = net::make_tcp_packet(tuple_n(2), "x");
  runner.process_packet(open);
  net::Packet rst = net::make_tcp_packet(tuple_n(2), "", net::kTcpFlagRst);
  runner.process_packet(rst);
  EXPECT_EQ(chain.global_mat().size(), 0u);
  EXPECT_EQ(chain.classifier().active_flows(), 0u);
}

TEST(FlowLifecycle, NatPortsRecycledAcrossSequentialFlows) {
  nf::MazuNatConfig config;
  config.port_lo = 20000;
  config.port_hi = 20004;  // 5 ports only
  ServiceChain chain;
  auto& nat = chain.emplace_nf<nf::MazuNat>(config);
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};

  // 50 sequential flows with a 5-port pool: teardown must recycle ports.
  for (std::uint32_t f = 0; f < 50; ++f) {
    net::Packet open = net::make_tcp_packet(tuple_n(f), "x");
    runner.process_packet(open);
    net::Packet data = net::make_tcp_packet(tuple_n(f), "y");
    runner.process_packet(data);
    net::Packet fin = net::make_tcp_packet(
        tuple_n(f), "", net::kTcpFlagFin | net::kTcpFlagAck);
    runner.process_packet(fin);
    ASSERT_EQ(nat.active_mappings(), 0u) << "flow " << f;
  }
}

TEST(FlowLifecycle, ReopenedFlowIsInitialAgain) {
  ServiceChain chain;
  auto& monitor = chain.emplace_nf<nf::Monitor>();
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};

  net::Packet open = net::make_tcp_packet(tuple_n(3), "x");
  EXPECT_TRUE(runner.process_packet(open).initial);
  net::Packet fin = net::make_tcp_packet(
      tuple_n(3), "", net::kTcpFlagFin | net::kTcpFlagAck);
  runner.process_packet(fin);

  net::Packet reopen = net::make_tcp_packet(tuple_n(3), "z");
  EXPECT_TRUE(runner.process_packet(reopen).initial)
      << "a reopened connection records fresh rules";
  // open + reopen traverse the original path; the FIN was a subsequent
  // packet and rode the fast path (its accounting ran as a state function).
  EXPECT_EQ(monitor.packets_processed(), 2u);
  ASSERT_NE(monitor.counters_of(tuple_n(3)), nullptr);
  EXPECT_EQ(monitor.counters_of(tuple_n(3))->packets, 3u);
}

TEST(FlowLifecycle, SingletonFinFlowHandled) {
  // A flow whose very first packet carries FIN: recorded, consolidated,
  // then immediately torn down without leaks.
  ServiceChain chain;
  chain.emplace_nf<nf::Monitor>();
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};
  net::Packet fin = net::make_tcp_packet(
      tuple_n(4), "one-shot", net::kTcpFlagFin | net::kTcpFlagAck);
  const PacketOutcome outcome = runner.process_packet(fin);
  EXPECT_TRUE(outcome.initial);
  EXPECT_EQ(chain.global_mat().size(), 0u);
  EXPECT_EQ(chain.classifier().active_flows(), 0u);
}

TEST(FlowLifecycle, WorkloadRunLeavesNoResidue) {
  ServiceChain chain;
  chain.emplace_nf<nf::MazuNat>();
  chain.emplace_nf<nf::Monitor>();
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};

  // Uniform workload closes every flow with FIN.
  const trace::Workload workload = trace::make_uniform_workload(20, 10, 64);
  runner.run_workload(workload);
  EXPECT_EQ(chain.global_mat().size(), 0u);
  EXPECT_EQ(chain.classifier().active_flows(), 0u);
}

}  // namespace
}  // namespace speedybox::runtime
