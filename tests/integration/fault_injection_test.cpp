// Fault-injection integration (DESIGN.md §9): a FaultInjector-wrapped NF
// inside a real chain, driven through the runtime::Executor interface on
// the scalar runner and the 4-shard runtime. Checks:
//
//   * conservation with faults: packets == delivered + drops + faulted,
//     with `faulted` disjoint from policy `drops` — on both deployments;
//   * the deterministic fail-every schedule is exact on the original path
//     (every packet traverses the NF) and per-shard-independent when the
//     chain is clone()d;
//   * crash-and-restore mid-run: the chain keeps processing, consolidated
//     rules recorded against the pre-crash instance stay safe (the
//     graveyard keeps it alive), and per-flow state restarts from config.
//
// test_integration runs under TSan/ASan via tools/run_sanitizers.sh, which
// makes this the data-race gate for faults inside the sharded runtime.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "runtime/executor.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/runner.hpp"
#include "runtime/sharded_runtime.hpp"
#include "test_helpers.hpp"
#include "trace/workload.hpp"

namespace speedybox::runtime {
namespace {

/// nat -> monitor, with the monitor wrapped in a FaultInjector.
std::unique_ptr<ServiceChain> make_faulty_chain(const FaultSpec& spec) {
  auto chain = std::make_unique<ServiceChain>("faulty");
  chain->emplace_nf<nf::MazuNat>();
  chain->adopt_nf(std::make_unique<FaultInjector>(
      std::make_unique<nf::Monitor>("monitor"), spec));
  return chain;
}

const FaultInjector& injector_of(const ServiceChain& chain) {
  return static_cast<const FaultInjector&>(chain.nf(1));
}

std::vector<net::Packet> workload_packets() {
  const trace::Workload workload =
      trace::make_uniform_workload(/*flows=*/40, /*packets_per_flow=*/25,
                                   /*payload=*/64, /*seed=*/77);
  std::vector<net::Packet> packets;
  packets.reserve(workload.packet_count());
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    packets.push_back(workload.materialize(i));
  }
  return packets;
}

std::uint64_t count_delivered(const std::vector<net::Packet>& outputs) {
  std::uint64_t delivered = 0;
  for (const net::Packet& packet : outputs) {
    if (!packet.dropped()) ++delivered;
  }
  return delivered;
}

TEST(FaultInjection, ScalarOriginalPathExactScheduleAndConservation) {
  FaultSpec spec;
  spec.fail_every = 7;
  auto chain = make_faulty_chain(spec);
  // Original path: every packet traverses the NFs, so the schedule is
  // exact: floor(1000 / 7) failures.
  ChainRunner runner{*chain,
                     {platform::PlatformKind::kBess, /*speedybox=*/false,
                      false}};
  Executor& executor = runner;
  const std::vector<net::Packet> packets = workload_packets();
  std::vector<net::Packet> outputs;
  const RunStats& stats = executor.run(packets, &outputs);

  const std::uint64_t expected_faults = packets.size() / 7;
  EXPECT_EQ(injector_of(*chain).transient_failures(), expected_faults);
  EXPECT_EQ(stats.overload.faulted, expected_faults);
  EXPECT_EQ(stats.packets, packets.size());
  EXPECT_EQ(stats.packets,
            count_delivered(outputs) + stats.drops + stats.overload.faulted)
      << "packets == delivered + drops + faulted";
  EXPECT_EQ(stats.drops, 0u) << "faults are not policy drops";
}

TEST(FaultInjection, ScalarSpeedyBoxPathStillConserves) {
  // On the SpeedyBox path only recording-path packets traverse the NF, so
  // the fault count is workload-dependent — but conservation is not.
  FaultSpec spec;
  spec.fail_every = 5;
  auto chain = make_faulty_chain(spec);
  ChainRunner runner{*chain,
                     {platform::PlatformKind::kBess, /*speedybox=*/true,
                      false}};
  Executor& executor = runner;
  const std::vector<net::Packet> packets = workload_packets();
  std::vector<net::Packet> outputs;
  const RunStats& stats = executor.run(packets, &outputs);

  EXPECT_GT(stats.overload.faulted, 0u);
  EXPECT_EQ(stats.overload.faulted,
            injector_of(*chain).transient_failures());
  EXPECT_EQ(stats.packets,
            count_delivered(outputs) + stats.drops + stats.overload.faulted);
}

TEST(FaultInjection, ShardedFourWayIndependentSchedulesAndConservation) {
  FaultSpec spec;
  spec.fail_every = 7;
  auto prototype = make_faulty_chain(spec);
  ShardedRuntime runtime{*prototype, 4,
                         {platform::PlatformKind::kBess, /*speedybox=*/false,
                          false}};
  Executor& executor = runtime;
  const std::vector<net::Packet> packets = workload_packets();
  executor.run(packets, nullptr);
  const ShardedRunResult& result = runtime.last_result();

  // Each shard's clone()d injector runs its own schedule over the packets
  // that shard saw: the merged fault count is the sum of per-shard floors.
  std::uint64_t expected_faults = 0;
  for (std::size_t s = 0; s < runtime.shard_count(); ++s) {
    expected_faults += result.shard_packets[s] / 7;
    const auto& shard_injector = injector_of(runtime.shard_chain(s));
    EXPECT_EQ(shard_injector.transient_failures(),
              result.shard_packets[s] / 7)
        << "shard " << s;
  }
  EXPECT_EQ(result.stats.overload.faulted, expected_faults);

  std::uint64_t delivered = 0;
  for (const PacketOutcome& outcome : result.outcomes) {
    if (!outcome.dropped) ++delivered;
  }
  EXPECT_EQ(result.stats.packets,
            delivered + result.stats.drops + result.stats.overload.faulted);
  EXPECT_EQ(injector_of(*prototype).transient_failures(), 0u)
      << "the prototype never processes packets";
}

TEST(FaultInjection, CrashAndRestoreMidRunKeepsProcessing) {
  FaultSpec spec;
  // On the SpeedyBox path only recording-path packets reach the NF (one
  // initial packet per flow, 40 flows here), so the crash point must sit
  // inside that budget.
  spec.crash_at = 20;
  auto chain = make_faulty_chain(spec);
  // SpeedyBox path: rules consolidated against the PRE-crash monitor keep
  // running its recorded state functions from the graveyard; flows that
  // record after the crash hit the fresh instance.
  ChainRunner runner{*chain,
                     {platform::PlatformKind::kBess, /*speedybox=*/true,
                      false}};
  Executor& executor = runner;
  const std::vector<net::Packet> packets = workload_packets();
  std::vector<net::Packet> outputs;
  const RunStats& stats = executor.run(packets, &outputs);

  const FaultInjector& injector = injector_of(*chain);
  EXPECT_EQ(injector.crashes(), 1u);
  EXPECT_EQ(stats.packets, packets.size())
      << "a crash-and-restore loses no packets";
  EXPECT_EQ(stats.overload.faulted, 0u);
  EXPECT_EQ(stats.packets, count_delivered(outputs) + stats.drops);
  // The restored instance starts from config, not state: it has seen
  // strictly fewer packets than the whole run.
  const auto& monitor = static_cast<const nf::Monitor&>(injector.inner());
  EXPECT_LT(monitor.packets_processed(), packets.size());
}

TEST(FaultInjection, ShardedCrashAndRestoreUnderThreads) {
  // The TSan-relevant shape: four shard workers, each with its own
  // injector crashing on its own schedule, while the dispatcher keeps
  // pushing. No packet loss, no race, exact accounting.
  FaultSpec spec;
  // ~10 flows record per shard (40 flows over 4 shards): crash early
  // enough that most shards hit it.
  spec.crash_at = 5;
  auto prototype = make_faulty_chain(spec);
  ShardedRuntime runtime{*prototype, 4,
                         {platform::PlatformKind::kBess, /*speedybox=*/true,
                          false}};
  Executor& executor = runtime;
  const std::vector<net::Packet> packets = workload_packets();
  executor.run(packets, nullptr);
  const ShardedRunResult& result = runtime.last_result();

  EXPECT_EQ(result.stats.packets, packets.size());
  std::uint64_t crashes = 0;
  for (std::size_t s = 0; s < runtime.shard_count(); ++s) {
    crashes += injector_of(runtime.shard_chain(s)).crashes();
  }
  EXPECT_GT(crashes, 0u) << "at least one shard recorded 5+ flows";
}

}  // namespace
}  // namespace speedybox::runtime
