// Closed-loop live ingestion over real loopback sockets: the loadgen →
// IngestServer → IngestExecutor → chain path must deliver byte-identical
// post-chain packets to the in-process trace:: drive of the SAME workload,
// on both §VII-C evaluation chains; frame conservation must hold with
// garbage mixed in; and a SYN flood replayed over the wire must trip
// nf::DosPrevention's blacklist exactly as the in-process run does.
//
// UDP runs are single-threaded and deterministic: the sender socket is
// loaded BEFORE serve() starts (datagrams queue in the receive buffer,
// sized well above the workload), so ordering and zero-drop delivery are
// guaranteed. TCP runs send from a thread while serve() drains.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "chain_fixtures.hpp"
#include "io/ingest_executor.hpp"
#include "io/ingest_server.hpp"
#include "io/loadgen.hpp"
#include "io/socket.hpp"
#include "nf/dos_prevention.hpp"
#include "nf/monitor.hpp"
#include "runtime/runner.hpp"
#include "runtime/sharded_runtime.hpp"
#include "test_helpers.hpp"
#include "trace/payload_synth.hpp"
#include "trace/workload.hpp"

namespace speedybox::io {
namespace {

using speedybox::testing::same_bytes;

/// §VII-C Chain 1: MazuNAT -> Maglev -> Monitor -> IPFilter.
const auto chain1_gateway = speedybox::testing::make_chain1;
/// §VII-C Chain 2: IPFilter -> Snort -> Monitor.
const auto chain2_inspection = speedybox::testing::make_chain2;

trace::Workload small_datacenter_workload(std::uint64_t seed,
                                          bool plant_snort) {
  trace::DatacenterWorkloadConfig config;
  config.flow_count = 40;
  config.seed = seed;
  trace::Workload workload = make_datacenter_workload(config);
  if (plant_snort) {
    trace::PayloadSynthConfig synth;
    synth.match_fraction = 0.25;
    plant_rule_contents(workload, trace::default_snort_rules(), synth);
  }
  return workload;
}

runtime::RunConfig speedybox_run_config() {
  runtime::RunConfig config{platform::PlatformKind::kBess, true, false};
  config.batch_size = 32;
  return config;
}

/// Reference: the in-process drive every equivalence suite uses.
std::vector<net::Packet> run_in_process(runtime::ServiceChain& chain,
                                        const trace::Workload& workload,
                                        runtime::RunStats* stats_out) {
  runtime::ChainRunner runner{chain, speedybox_run_config()};
  std::vector<net::Packet> packets;
  packets.reserve(workload.packet_count());
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    packets.push_back(workload.materialize(i));
  }
  std::vector<net::Packet> outputs;
  const runtime::RunStats& stats = runner.run(packets, &outputs);
  if (stats_out != nullptr) *stats_out = stats;
  return outputs;
}

struct LiveResult {
  std::vector<net::Packet> outputs;
  IngestStats ingest;
  runtime::RunStats stats;
  std::uint64_t sent = 0;
};

/// Wire drive: replay `workload` over loopback into an IngestServer
/// feeding `executor`, capturing post-chain outputs.
LiveResult run_live(runtime::Executor& executor,
                    const trace::Workload& workload, IngestProto proto) {
  IngestConfig config;
  config.proto = proto;
  config.idle_timeout_ms = 300;
  IngestServer server{config};
  IngestExecutor sink{executor, /*capture_outputs=*/true};

  LoadgenConfig gen;
  gen.proto = proto;
  LiveResult result;
  if (proto == IngestProto::kUdp) {
    // Load the receive buffer before serving: deterministic, ordered,
    // zero-drop (the workload is far smaller than rcvbuf_bytes).
    gen.port = server.udp_port();
    const LoadgenReport report = replay_workload(workload, gen);
    EXPECT_EQ(report.send_errors, 0u);
    result.sent = report.sent;
    result.ingest = server.serve(sink);
  } else {
    gen.port = server.tcp_port();
    LoadgenReport report;
    std::thread sender(
        [&] { report = replay_workload(workload, gen); });
    result.ingest = server.serve(sink);
    sender.join();
    EXPECT_EQ(report.send_errors, 0u);
    result.sent = report.sent;
  }
  result.stats = sink.finish();
  result.outputs = sink.outputs();
  return result;
}

void expect_byte_identical(const std::vector<net::Packet>& live,
                           const std::vector<net::Packet>& reference) {
  ASSERT_EQ(live.size(), reference.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_TRUE(same_bytes(live[i], reference[i])) << "packet " << i;
    EXPECT_EQ(live[i].dropped(), reference[i].dropped()) << "packet " << i;
  }
}

TEST(LiveIngest, Chain1GatewayByteIdenticalOverUdp) {
  const trace::Workload workload = small_datacenter_workload(20190708, false);
  const auto reference_chain = chain1_gateway();
  const std::vector<net::Packet> reference =
      run_in_process(*reference_chain, workload, nullptr);

  const auto live_chain = chain1_gateway();
  runtime::ChainRunner runner{*live_chain, speedybox_run_config()};
  const LiveResult live = run_live(runner, workload, IngestProto::kUdp);

  EXPECT_EQ(live.ingest.parse_errors, 0u);
  EXPECT_EQ(live.ingest.socket_drops, 0u);
  EXPECT_EQ(live.ingest.rx_frames, live.sent);
  // The busy window excludes the idle tail but covers the drain.
  EXPECT_GT(live.ingest.drive_seconds, 0.0);
  EXPECT_LT(live.ingest.drive_seconds, 10.0);
  expect_byte_identical(live.outputs, reference);
}

TEST(LiveIngest, Chain2InspectionByteIdenticalOverUdp) {
  const trace::Workload workload = small_datacenter_workload(5550123, true);
  const auto reference_chain = chain2_inspection();
  runtime::RunStats reference_stats;
  const std::vector<net::Packet> reference =
      run_in_process(*reference_chain, workload, &reference_stats);

  const auto live_chain = chain2_inspection();
  runtime::ChainRunner runner{*live_chain, speedybox_run_config()};
  const LiveResult live = run_live(runner, workload, IngestProto::kUdp);

  EXPECT_EQ(live.ingest.parse_errors, 0u);
  EXPECT_EQ(live.ingest.socket_drops, 0u);
  expect_byte_identical(live.outputs, reference);
  // Snort verdicts and ACL drops match exactly, not just bytes.
  EXPECT_EQ(live.stats.drops, reference_stats.drops);
  EXPECT_EQ(live.stats.packets, reference_stats.packets);
}

TEST(LiveIngest, Chain2InspectionByteIdenticalOverTcp) {
  const trace::Workload workload = small_datacenter_workload(777, true);
  const auto reference_chain = chain2_inspection();
  const std::vector<net::Packet> reference =
      run_in_process(*reference_chain, workload, nullptr);

  const auto live_chain = chain2_inspection();
  runtime::ChainRunner runner{*live_chain, speedybox_run_config()};
  const LiveResult live = run_live(runner, workload, IngestProto::kTcp);

  EXPECT_EQ(live.ingest.tcp_connections, 1u);
  EXPECT_EQ(live.ingest.poisoned_streams, 0u);
  EXPECT_EQ(live.ingest.parse_errors, 0u);
  EXPECT_EQ(live.ingest.rx_frames, live.sent);
  expect_byte_identical(live.outputs, reference);
}

TEST(LiveIngest, SynFloodOverWireTripsDosBlacklistExactly) {
  // Acceptance: the syn-flood scenario replayed over the wire must drive
  // DosPrevention to the same blacklist verdicts as the in-process run —
  // same drop count, same survivor count.
  const trace::Workload workload = trace::make_syn_flood_workload({});
  auto reference_chain =
      std::make_unique<runtime::ServiceChain>("dos_inspection");
  reference_chain->emplace_nf<nf::DosPrevention>(std::uint64_t{8});
  reference_chain->emplace_nf<nf::Monitor>();
  runtime::RunStats reference_stats;
  const std::vector<net::Packet> reference =
      run_in_process(*reference_chain, workload, &reference_stats);
  ASSERT_GT(reference_stats.drops, 0u)
      << "the flood must actually trip the blacklist in-process";

  auto live_chain = std::make_unique<runtime::ServiceChain>("dos_inspection");
  live_chain->emplace_nf<nf::DosPrevention>(std::uint64_t{8});
  live_chain->emplace_nf<nf::Monitor>();
  runtime::ChainRunner runner{*live_chain, speedybox_run_config()};
  const LiveResult live = run_live(runner, workload, IngestProto::kUdp);

  EXPECT_EQ(live.ingest.socket_drops, 0u);
  EXPECT_EQ(live.stats.drops, reference_stats.drops);
  EXPECT_EQ(live.stats.packets, reference_stats.packets);
  expect_byte_identical(live.outputs, reference);
}

TEST(LiveIngest, ConservationHoldsWithGarbageOnTheWire) {
  // sent == admitted + shed + parse_errors + socket_drops, with the gate
  // off: admitted = submitted, shed = 0, and garbage lands in
  // parse_errors instead of crashing anything.
  const trace::Workload workload = small_datacenter_workload(31337, false);
  const auto chain = chain1_gateway();
  runtime::ChainRunner runner{*chain, speedybox_run_config()};

  IngestConfig config;
  config.idle_timeout_ms = 300;
  IngestServer server{config};
  IngestExecutor sink{runner};

  LoadgenConfig gen;
  gen.port = server.udp_port();
  const LoadgenReport report = replay_workload(workload, gen);
  ASSERT_EQ(report.send_errors, 0u);
  // Interleave hostile datagrams: runts, noise, truncated-L4.
  Fd evil = make_udp_sender("127.0.0.1", server.udp_port());
  const std::vector<std::vector<std::uint8_t>> garbage = {
      {0xDE, 0xAD},                         // runt
      std::vector<std::uint8_t>(64, 0xFF),  // noise, bad EtherType
      std::vector<std::uint8_t>(200, 0x00),
  };
  for (const auto& frame : garbage) {
    ASSERT_TRUE(send_all(evil.get(), frame));
  }
  const IngestStats ingest = server.serve(sink);
  const runtime::RunStats& stats = sink.finish();

  EXPECT_EQ(ingest.parse_errors, garbage.size());
  EXPECT_EQ(ingest.rx_frames, report.sent);
  EXPECT_EQ(ingest.socket_drops, 0u);
  // The identity the CI smoke enforces end to end.
  EXPECT_EQ(report.sent + garbage.size(),
            sink.submitted() + ingest.parse_errors + ingest.socket_drops);
  // RunStats.packets counts every processed packet (drops are a subset).
  EXPECT_EQ(stats.packets, sink.submitted());
}

TEST(LiveIngest, ShardedStreamPushConservesPackets) {
  // stream-push feeding: the ingest thread doubles as the dispatcher of a
  // 2-shard runtime; every wire frame must come out the other end.
  const trace::Workload workload = small_datacenter_workload(4242, false);
  const auto chain = chain1_gateway();
  runtime::ShardedRuntime sharded{*chain, 2, speedybox_run_config()};

  IngestConfig config;
  config.idle_timeout_ms = 300;
  IngestServer server{config};
  IngestExecutor sink{sharded, /*capture_outputs=*/true};
  EXPECT_EQ(sink.mode(), "stream-push");

  LoadgenConfig gen;
  gen.port = server.udp_port();
  const LoadgenReport report = replay_workload(workload, gen);
  ASSERT_EQ(report.send_errors, 0u);
  const IngestStats ingest = server.serve(sink);
  const runtime::RunStats& stats = sink.finish();

  EXPECT_EQ(ingest.rx_frames, report.sent);
  EXPECT_EQ(ingest.socket_drops, 0u);
  EXPECT_EQ(stats.packets, report.sent);
  EXPECT_EQ(stats.drops, 0u);  // chain1's ACL is empty
  EXPECT_EQ(sink.outputs().size(), report.sent);
}

TEST(LiveIngest, RecvmmsgBatchedUdpIsByteIdenticalAndConserving) {
  // The recvmmsg fast path must be a pure receive optimization: same
  // bytes, same ordering, same conservation ledger as recvfrom — with
  // garbage mixed into the batches.
  const trace::Workload workload = small_datacenter_workload(90125, false);
  const auto reference_chain = chain1_gateway();
  const std::vector<net::Packet> reference =
      run_in_process(*reference_chain, workload, nullptr);

  const auto live_chain = chain1_gateway();
  runtime::ChainRunner runner{*live_chain, speedybox_run_config()};
  IngestConfig config;
  config.idle_timeout_ms = 300;
  config.use_recvmmsg = true;
  IngestServer server{config};
  IngestExecutor sink{runner, /*capture_outputs=*/true};

  LoadgenConfig gen;
  gen.port = server.udp_port();
  const LoadgenReport report = replay_workload(workload, gen);
  ASSERT_EQ(report.send_errors, 0u);
  Fd evil = make_udp_sender("127.0.0.1", server.udp_port());
  const std::vector<std::uint8_t> runt = {0xDE, 0xAD};
  ASSERT_TRUE(send_all(evil.get(), runt));

  const IngestStats ingest = server.serve(sink);
  sink.finish();

  EXPECT_EQ(ingest.rx_frames, report.sent);
  EXPECT_EQ(ingest.parse_errors, 1u);
  EXPECT_EQ(ingest.socket_drops, 0u);
  EXPECT_EQ(report.sent + 1,
            sink.submitted() + ingest.parse_errors + ingest.socket_drops);
  expect_byte_identical(sink.outputs(), reference);
}

TEST(LiveIngest, PoisonedTcpStreamIsKilledNotCrashed) {
  const auto chain = chain2_inspection();
  runtime::ChainRunner runner{*chain, speedybox_run_config()};
  IngestConfig config;
  config.proto = IngestProto::kTcp;
  config.idle_timeout_ms = 300;
  IngestServer server{config};
  IngestExecutor sink{runner};

  std::thread sender([&] {
    Fd conn = make_tcp_sender("127.0.0.1", server.tcp_port());
    // A hostile length prefix claiming a 4 GB frame.
    const std::vector<std::uint8_t> evil = {0xFF, 0xFF, 0xFF, 0xFF, 0x00};
    ASSERT_TRUE(send_all(conn.get(), evil));
  });
  const IngestStats ingest = server.serve(sink);
  sender.join();
  sink.finish();

  EXPECT_EQ(ingest.poisoned_streams, 1u);
  EXPECT_EQ(ingest.rx_frames, 0u);
}

}  // namespace
}  // namespace speedybox::io
