// Events end-to-end on the fast path: DoS blacklisting (Fig. 3) and Maglev
// failover (§V-A Observation 2) driven through the full runner.
#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "net/fields.hpp"
#include "nf/dos_prevention.hpp"
#include "nf/maglev_lb.hpp"
#include "nf/monitor.hpp"
#include "runtime/runner.hpp"
#include "test_helpers.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::tuple_n;

TEST(EventIntegration, DosBlacklistFlipsFastPathToDrop) {
  constexpr std::uint64_t kThreshold = 3;
  ServiceChain chain;
  chain.emplace_nf<nf::DosPrevention>(kThreshold);
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};

  // SYN flood from one flow. Arrival-state semantics: the drop starts once
  // the counter observed at arrival exceeds the threshold.
  int first_dropped = -1;
  for (int i = 0; i < 10; ++i) {
    net::Packet packet =
        net::make_tcp_packet(tuple_n(1), "", net::kTcpFlagSyn);
    const PacketOutcome outcome = runner.process_packet(packet);
    if (outcome.dropped && first_dropped < 0) first_dropped = i;
  }
  // threshold=3: counter after packets 0..3 is 4; packet 4 arrives with
  // 4 > 3 -> event fires there.
  EXPECT_EQ(first_dropped, 4);
  // And it stays dropped.
  net::Packet more = net::make_tcp_packet(tuple_n(1), "", net::kTcpFlagSyn);
  EXPECT_TRUE(runner.process_packet(more).dropped);
  EXPECT_TRUE(
      chain.global_mat().find(more.fid())->action.drop);
}

TEST(EventIntegration, DosEventCountedOnce) {
  ServiceChain chain;
  chain.emplace_nf<nf::DosPrevention>(1);
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};
  for (int i = 0; i < 6; ++i) {
    net::Packet packet =
        net::make_tcp_packet(tuple_n(2), "", net::kTcpFlagSyn);
    runner.process_packet(packet);
  }
  EXPECT_EQ(runner.stats().events_triggered, 1u)
      << "one-shot blacklist event must fire exactly once";
}

TEST(EventIntegration, MaglevFailoverReroutesMidStream) {
  std::vector<nf::Backend> backends{
      {"b0", net::Ipv4Addr{10, 2, 0, 10}, 8000, true},
      {"b1", net::Ipv4Addr{10, 2, 0, 11}, 8001, true},
  };
  ServiceChain chain;
  auto& lb = chain.emplace_nf<nf::MaglevLb>(backends, std::size_t{251});
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};

  // 5 packets to the original backend.
  std::uint32_t ip_before = 0;
  for (int i = 0; i < 5; ++i) {
    net::Packet packet = net::make_tcp_packet(tuple_n(3), "x");
    runner.process_packet(packet);
    const auto parsed = net::parse_packet(packet);
    ip_before = net::get_field(packet, *parsed, net::HeaderField::kDstIp);
  }
  const std::size_t original = lb.backend_of(tuple_n(3)).value();
  EXPECT_EQ(ip_before, lb.backends()[original].ip.value);

  // Fail it; packets 6-10 must carry the other backend's address.
  lb.fail_backend(original);
  for (int i = 0; i < 5; ++i) {
    net::Packet packet = net::make_tcp_packet(tuple_n(3), "x");
    const PacketOutcome outcome = runner.process_packet(packet);
    EXPECT_FALSE(outcome.dropped);
    const auto parsed = net::parse_packet(packet);
    const std::uint32_t dst =
        net::get_field(packet, *parsed, net::HeaderField::kDstIp);
    EXPECT_NE(dst, lb.backends()[original].ip.value);
    EXPECT_TRUE(net::verify_l4_checksum(packet, *parsed));
  }
  EXPECT_EQ(lb.reroutes(), 1u);
}

TEST(EventIntegration, FailoverEventOnlyAffectsPinnedFlows) {
  std::vector<nf::Backend> backends{
      {"b0", net::Ipv4Addr{10, 2, 0, 10}, 8000, true},
      {"b1", net::Ipv4Addr{10, 2, 0, 11}, 8001, true},
      {"b2", net::Ipv4Addr{10, 2, 0, 12}, 8002, true},
  };
  ServiceChain chain;
  auto& lb = chain.emplace_nf<nf::MaglevLb>(backends, std::size_t{251});
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};

  // Establish many flows; find one pinned to backend 0 and one not.
  std::vector<std::size_t> flow_backend(40);
  for (std::uint32_t f = 0; f < 40; ++f) {
    net::Packet packet = net::make_tcp_packet(tuple_n(f), "x");
    runner.process_packet(packet);
    flow_backend[f] = lb.backend_of(tuple_n(f)).value();
  }
  lb.fail_backend(0);

  std::uint64_t moved = 0;
  for (std::uint32_t f = 0; f < 40; ++f) {
    net::Packet packet = net::make_tcp_packet(tuple_n(f), "x");
    runner.process_packet(packet);
    const std::size_t now = lb.backend_of(tuple_n(f)).value();
    if (flow_backend[f] == 0) {
      EXPECT_NE(now, 0u) << "flow " << f << " must leave the dead backend";
      ++moved;
    } else {
      EXPECT_EQ(now, flow_backend[f])
          << "flow " << f << " must not move (connection stickiness)";
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_EQ(lb.reroutes(), moved);
}

TEST(EventIntegration, EventsSurviveAcrossManyPackets) {
  // A persistent event keeps being checked but never fires while healthy;
  // the fast path must not degrade or mis-trigger.
  std::vector<nf::Backend> backends{
      {"b0", net::Ipv4Addr{10, 2, 0, 10}, 8000, true},
      {"b1", net::Ipv4Addr{10, 2, 0, 11}, 8001, true},
  };
  ServiceChain chain;
  chain.emplace_nf<nf::MaglevLb>(backends, std::size_t{251});
  chain.emplace_nf<nf::Monitor>();
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};

  for (int i = 0; i < 200; ++i) {
    net::Packet packet = net::make_tcp_packet(tuple_n(5), "x");
    runner.process_packet(packet);
  }
  EXPECT_EQ(runner.stats().events_triggered, 0u);
  EXPECT_GT(chain.global_mat().event_table().checks_performed(), 150u);
}

}  // namespace
}  // namespace speedybox::runtime
