// R2 / Table III: with a chain {forward, forward, drop}, the original path
// wastes NF1+NF2 work on every packet before NF3 drops it; SpeedyBox drops
// subsequent packets at the head of the chain.
#include <gtest/gtest.h>

#include "nf/ip_filter.hpp"
#include "runtime/runner.hpp"
#include "test_helpers.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::tuple_n;

std::vector<nf::AclRule> pass_acl() { return {}; }
std::vector<nf::AclRule> drop80_acl() {
  return {nf::AclRule::drop_dst_port(80)};
}

TEST(EarlyDrop, OriginalChainPaysAllThreeNfs) {
  ServiceChain chain;
  auto& f1 = chain.emplace_nf<nf::IpFilter>(pass_acl(), "f1");
  auto& f2 = chain.emplace_nf<nf::IpFilter>(pass_acl(), "f2");
  auto& f3 = chain.emplace_nf<nf::IpFilter>(drop80_acl(), "f3");
  ChainRunner runner{chain, {platform::PlatformKind::kBess, false, false}};

  for (int i = 0; i < 10; ++i) {
    net::Packet packet = net::make_tcp_packet(tuple_n(1, 80), "x");
    EXPECT_TRUE(runner.process_packet(packet).dropped);
  }
  EXPECT_EQ(f1.packets_processed(), 10u);
  EXPECT_EQ(f2.packets_processed(), 10u);
  EXPECT_EQ(f3.packets_processed(), 10u);
  EXPECT_EQ(f3.drops(), 10u);
}

TEST(EarlyDrop, SpeedyBoxDropsSubsequentAtChainHead) {
  ServiceChain chain;
  auto& f1 = chain.emplace_nf<nf::IpFilter>(pass_acl(), "f1");
  auto& f2 = chain.emplace_nf<nf::IpFilter>(pass_acl(), "f2");
  auto& f3 = chain.emplace_nf<nf::IpFilter>(drop80_acl(), "f3");
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};

  for (int i = 0; i < 10; ++i) {
    net::Packet packet = net::make_tcp_packet(tuple_n(2, 80), "x");
    EXPECT_TRUE(runner.process_packet(packet).dropped);
  }
  // Only the initial packet traversed the NFs.
  EXPECT_EQ(f1.packets_processed(), 1u);
  EXPECT_EQ(f2.packets_processed(), 1u);
  EXPECT_EQ(f3.packets_processed(), 1u);
  // The consolidated rule is a pure drop.
  net::Packet probe = net::make_tcp_packet(tuple_n(2, 80), "x");
  const auto cls = chain.classifier().classify(probe);
  const core::ConsolidatedRule* rule = chain.global_mat().find(cls->fid);
  ASSERT_NE(rule, nullptr);
  EXPECT_TRUE(rule->action.drop);
}

TEST(EarlyDrop, SubsequentWorkFarBelowOriginal) {
  // The ~65% CPU-cycle saving of Table III, asserted as a strict ordering
  // (absolute numbers are machine-dependent).
  const trace::Workload workload = trace::make_uniform_workload(5, 100, 64);
  auto build = [] {
    auto chain = std::make_unique<ServiceChain>();
    chain->emplace_nf<nf::IpFilter>(pass_acl(), "f1");
    chain->emplace_nf<nf::IpFilter>(pass_acl(), "f2");
    chain->emplace_nf<nf::IpFilter>(
        std::vector<nf::AclRule>{nf::AclRule::drop_dst_port(80)}, "f3");
    return chain;
  };
  // Workload flows all target port 80 -> all dropped at f3.
  // Platform cycles (work + per-NF overhead) — the Table-III metric.
  auto original_chain = build();
  ChainRunner original{*original_chain,
                       {platform::PlatformKind::kBess, false, false}};
  const double original_work = original.run_workload(workload)
                                   .platform_cycles_subsequent.percentile(50);

  auto speedy_chain = build();
  ChainRunner speedy{*speedy_chain,
                     {platform::PlatformKind::kBess, true, false}};
  const double speedy_work =
      speedy.run_workload(workload).platform_cycles_subsequent.percentile(50);

  EXPECT_LT(speedy_work, original_work * 0.7)
      << "early drop should save well over 30% of per-packet platform "
         "cycles";
}

TEST(EarlyDrop, MixedFlowsOnlyBlacklistedDropped) {
  ServiceChain chain;
  chain.emplace_nf<nf::IpFilter>(pass_acl(), "f1");
  chain.emplace_nf<nf::IpFilter>(drop80_acl(), "f2");
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};

  for (int i = 0; i < 5; ++i) {
    net::Packet blocked = net::make_tcp_packet(tuple_n(3, 80), "x");
    EXPECT_TRUE(runner.process_packet(blocked).dropped);
    net::Packet allowed = net::make_tcp_packet(tuple_n(4, 443), "x");
    EXPECT_FALSE(runner.process_packet(allowed).dropped);
  }
  EXPECT_EQ(runner.stats().drops, 5u);
}

}  // namespace
}  // namespace speedybox::runtime
