// Idle-flow expiry: the garbage collection complementing FIN/RST teardown —
// UDP flows (which never signal close) and abandoned TCP connections must
// not leak rules, FIDs or NF per-flow state.
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "runtime/runner.hpp"
#include "test_helpers.hpp"
#include "util/cycle_clock.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::tuple_n;

net::Packet udp_packet(std::uint32_t flow) {
  net::FiveTuple tuple = tuple_n(flow, 53);
  tuple.proto = static_cast<std::uint8_t>(net::IpProto::kUdp);
  return net::make_udp_packet(tuple, "query");
}

TEST(IdleExpiry, CollectIdleFindsOnlyStaleFlows) {
  core::PacketClassifier classifier;
  net::Packet stale = udp_packet(1);
  classifier.classify(stale);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  net::Packet fresh = udp_packet(2);
  classifier.classify(fresh);

  const auto idle = classifier.collect_idle(
      util::CycleClock::now(), util::CycleClock::from_ns(2e6));  // 2 ms
  ASSERT_EQ(idle.size(), 1u);
  EXPECT_EQ(idle[0], stale.fid());
}

TEST(IdleExpiry, RefreshedFlowIsNotIdle) {
  core::PacketClassifier classifier;
  net::Packet first = udp_packet(3);
  classifier.classify(first);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  net::Packet again = udp_packet(3);  // same tuple refreshes last-seen
  classifier.classify(again);

  EXPECT_TRUE(classifier
                  .collect_idle(util::CycleClock::now(),
                                util::CycleClock::from_ns(2e6))
                  .empty());
}

TEST(IdleExpiry, RunnerExpiryFreesEverything) {
  ServiceChain chain;
  auto& nat = chain.emplace_nf<nf::MazuNat>();
  chain.emplace_nf<nf::Monitor>();
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};

  for (std::uint32_t flow = 0; flow < 5; ++flow) {
    net::Packet a = udp_packet(10 + flow);
    runner.process_packet(a);
    net::Packet b = udp_packet(10 + flow);
    runner.process_packet(b);
  }
  EXPECT_EQ(chain.global_mat().size(), 5u);
  EXPECT_EQ(nat.active_mappings(), 5u);

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(runner.expire_idle_flows(/*max_idle_us=*/2000.0), 5u);
  EXPECT_EQ(chain.global_mat().size(), 0u);
  EXPECT_EQ(chain.classifier().active_flows(), 0u);
  EXPECT_EQ(nat.active_mappings(), 0u)
      << "teardown hooks must free NF per-flow state";

  // The flow re-records cleanly afterwards.
  net::Packet reopened = udp_packet(10);
  EXPECT_TRUE(runner.process_packet(reopened).initial);
}

TEST(IdleExpiry, ActiveFlowsSurviveExpiry) {
  ServiceChain chain;
  chain.emplace_nf<nf::Monitor>();
  ChainRunner runner{chain, {platform::PlatformKind::kBess, true, false}};
  net::Packet packet = udp_packet(30);
  runner.process_packet(packet);
  // Generous timeout: nothing is idle yet.
  EXPECT_EQ(runner.expire_idle_flows(/*max_idle_us=*/1e9), 0u);
  EXPECT_EQ(chain.global_mat().size(), 1u);
}

TEST(IdleExpiry, OriginalModeIsNoOp) {
  ServiceChain chain;
  chain.emplace_nf<nf::Monitor>();
  ChainRunner runner{chain, {platform::PlatformKind::kBess, false, false}};
  net::Packet packet = udp_packet(31);
  runner.process_packet(packet);
  EXPECT_EQ(runner.expire_idle_flows(0.0), 0u);
}

}  // namespace
}  // namespace speedybox::runtime
