// Multi-gateway and VPN chain equivalence: stacked modifies to the SAME
// field (two gateways both rewrite TTL — the R3 overwrite case) and
// encap/decap interplay must consolidate to exactly the original output.
#include <gtest/gtest.h>

#include "equivalence/equivalence_helpers.hpp"
#include "nf/gateway.hpp"
#include "nf/mazu_nat.hpp"
#include "nf/vpn_gateway.hpp"
#include "test_helpers.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::expect_identical_outputs;
using speedybox::testing::run_chain;

TEST(GatewayChainEquivalence, TwoGatewaysStackTtlDecrements) {
  // Gateway 1 writes TTL 63; gateway 2 observes 63 and writes 62. The
  // consolidated rule must keep the LAST write (62) — the §V-B
  // last-writer-wins merge observed end-to-end.
  const trace::Workload workload = trace::make_uniform_workload(10, 8, 48);

  const auto build = [] {
    auto chain = std::make_unique<ServiceChain>();
    chain->emplace_nf<nf::Gateway>(
        std::vector<nf::TrafficClass>{{80, 80, 18}}, "gw1");
    chain->emplace_nf<nf::Gateway>(
        std::vector<nf::TrafficClass>{{80, 80, 34}}, "gw2");
    return chain;
  };
  auto original_chain = build();
  const auto original = run_chain(*original_chain, workload, false);
  auto speedy_chain = build();
  const auto speedy = run_chain(*speedy_chain, workload, true);
  expect_identical_outputs(original, speedy);

  // Spot-check the semantic result: TTL decremented twice, DSCP from gw2.
  ASSERT_FALSE(speedy.outputs.empty());
  const auto parsed = net::parse_packet(speedy.outputs.back());
  EXPECT_EQ(net::get_field(speedy.outputs.back(), *parsed,
                           net::HeaderField::kTtl),
            62u);
  EXPECT_EQ(net::get_field(speedy.outputs.back(), *parsed,
                           net::HeaderField::kTos),
            34u << 2);
}

TEST(GatewayChainEquivalence, NatInsideVpnTunnel) {
  // NAT -> VPN egress: the modify applies to the inner header, then the AH
  // wraps it. Output equality checks the §V-B ordering (field writes before
  // trailing encaps).
  const trace::Workload workload = trace::make_uniform_workload(8, 6, 64);
  const auto build = [] {
    auto chain = std::make_unique<ServiceChain>();
    chain->emplace_nf<nf::MazuNat>();
    chain->emplace_nf<nf::VpnGateway>(nf::VpnMode::kEgress, 0x7000u,
                                      "vpn-out");
    return chain;
  };
  auto original_chain = build();
  const auto original = run_chain(*original_chain, workload, false);
  auto speedy_chain = build();
  const auto speedy = run_chain(*speedy_chain, workload, true);
  expect_identical_outputs(original, speedy);
  ASSERT_FALSE(speedy.outputs.empty());
  EXPECT_TRUE(net::outer_ah_spi(speedy.outputs.front()).has_value());
}

}  // namespace
}  // namespace speedybox::runtime
