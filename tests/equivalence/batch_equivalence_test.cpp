// Differential equivalence of the batched data path (DESIGN.md §8): the
// SAME packets through the SAME chain, scalar (process_packet, one at a
// time — the semantic reference) vs batched (process_batch at burst sizes
// 1, 8, 13, 32), on both §VII-C real-world chains and in both original and
// SpeedyBox modes.
//
// The contract under test: vector processing changes ONLY the
// amortization. Per input index the outcome flags, the event counts, and
// the exact output bytes must match the scalar run, and the aggregate
// RunStats counters (packets, drops, events, sample counts) must be
// identical. Burst sizes that do not divide the packet count exercise the
// non-multiple tail; the SpeedyBox leg's mid-batch teardowns exercise the
// classifier flush boundary.
#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "chain_fixtures.hpp"
#include "net/packet_batch.hpp"
#include "runtime/runner.hpp"
#include "test_helpers.hpp"
#include "trace/workload.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::chain1_workload;
using speedybox::testing::chain2_workload;
using speedybox::testing::make_chain1;
using speedybox::testing::make_chain2;
using speedybox::testing::same_bytes;

std::vector<net::Packet> materialize_all(const trace::Workload& workload) {
  std::vector<net::Packet> packets;
  packets.reserve(workload.packet_count());
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    packets.push_back(workload.materialize(i));
  }
  return packets;
}

struct RunResult {
  std::vector<PacketOutcome> outcomes;
  std::vector<net::Packet> packets;  // post-chain, dropped ones included
  RunStats stats;
};

RunConfig make_config(bool speedybox, std::size_t batch_size) {
  RunConfig config{platform::PlatformKind::kBess, speedybox, false};
  config.batch_size = batch_size;
  return config;
}

/// The semantic reference: one process_packet call per packet.
RunResult run_scalar(const std::vector<net::Packet>& packets,
                     std::unique_ptr<ServiceChain> chain, bool speedybox) {
  ChainRunner runner{*chain, make_config(speedybox, 1)};
  RunResult result;
  result.outcomes.reserve(packets.size());
  result.packets.reserve(packets.size());
  for (const net::Packet& original : packets) {
    net::Packet packet = original;
    packet.reset_metadata();
    result.outcomes.push_back(runner.process_packet(packet));
    result.packets.push_back(std::move(packet));
  }
  result.stats = runner.stats();
  return result;
}

/// The batched run: the same packets chunked into PacketBatches of
/// `batch_size` (the last chunk is the non-multiple tail whenever
/// batch_size does not divide the packet count).
RunResult run_batched(const std::vector<net::Packet>& packets,
                      std::unique_ptr<ServiceChain> chain, bool speedybox,
                      std::size_t batch_size) {
  ChainRunner runner{*chain, make_config(speedybox, batch_size)};
  RunResult result;
  result.outcomes.reserve(packets.size());
  result.packets.reserve(packets.size());
  for (const net::Packet& original : packets) {
    net::Packet packet = original;
    packet.reset_metadata();
    result.packets.push_back(std::move(packet));
  }
  std::vector<PacketOutcome> outcomes;
  for (std::size_t begin = 0; begin < result.packets.size();
       begin += batch_size) {
    const std::size_t end =
        std::min(begin + batch_size, result.packets.size());
    net::PacketBatch batch{batch_size};
    for (std::size_t i = begin; i < end; ++i) {
      batch.push(&result.packets[i]);
    }
    runner.process_batch(batch, outcomes);
    result.outcomes.insert(result.outcomes.end(), outcomes.begin(),
                           outcomes.end());
  }
  result.stats = runner.stats();
  return result;
}

/// Bit-identical semantics: flags, events and bytes per input index, and
/// identical aggregate counters. Cycle VALUES are measured (nondeterministic
/// by nature) — what must match is every count.
void expect_identical(const RunResult& ref, const RunResult& batched) {
  ASSERT_EQ(batched.outcomes.size(), ref.outcomes.size());
  ASSERT_EQ(batched.packets.size(), ref.packets.size());
  for (std::size_t i = 0; i < ref.outcomes.size(); ++i) {
    EXPECT_EQ(batched.outcomes[i].initial, ref.outcomes[i].initial)
        << "initial flag, packet " << i;
    EXPECT_EQ(batched.outcomes[i].dropped, ref.outcomes[i].dropped)
        << "dropped flag, packet " << i;
    EXPECT_EQ(batched.outcomes[i].fast_path, ref.outcomes[i].fast_path)
        << "fast-path flag, packet " << i;
    EXPECT_EQ(batched.outcomes[i].events_triggered,
              ref.outcomes[i].events_triggered)
        << "events, packet " << i;
    ASSERT_TRUE(same_bytes(batched.packets[i], ref.packets[i]))
        << "packet " << i << " bytes differ";
  }
  EXPECT_EQ(batched.stats.packets, ref.stats.packets);
  EXPECT_EQ(batched.stats.drops, ref.stats.drops);
  EXPECT_EQ(batched.stats.events_triggered, ref.stats.events_triggered);
  EXPECT_EQ(batched.stats.latency_us_all.count(),
            ref.stats.latency_us_all.count());
  EXPECT_EQ(batched.stats.latency_us_initial.count(),
            ref.stats.latency_us_initial.count());
  EXPECT_EQ(batched.stats.latency_us_subsequent.count(),
            ref.stats.latency_us_subsequent.count());
  EXPECT_EQ(batched.stats.work_cycles_initial.count(),
            ref.stats.work_cycles_initial.count());
  EXPECT_EQ(batched.stats.work_cycles_subsequent.count(),
            ref.stats.work_cycles_subsequent.count());
  EXPECT_EQ(batched.stats.platform_cycles_initial.count(),
            ref.stats.platform_cycles_initial.count());
  EXPECT_EQ(batched.stats.platform_cycles_subsequent.count(),
            ref.stats.platform_cycles_subsequent.count());
}

void run_differential(const trace::Workload& workload,
                      const std::function<std::unique_ptr<ServiceChain>()>&
                          factory,
                      bool speedybox) {
  const std::vector<net::Packet> packets = materialize_all(workload);
  const RunResult ref = run_scalar(packets, factory(), speedybox);
  // 13 never divides the datacenter workloads' packet counts evenly and 32
  // leaves a tail too: both chunkings end on a partial batch.
  for (const std::size_t batch_size : {1u, 8u, 13u, 32u}) {
    SCOPED_TRACE("batch_size=" + std::to_string(batch_size));
    const RunResult batched =
        run_batched(packets, factory(), speedybox, batch_size);
    expect_identical(ref, batched);
  }
}

TEST(BatchEquivalence, Chain1SpeedyBox) {
  run_differential(chain1_workload(), make_chain1, /*speedybox=*/true);
}

TEST(BatchEquivalence, Chain1Original) {
  run_differential(chain1_workload(), make_chain1, /*speedybox=*/false);
}

TEST(BatchEquivalence, Chain2SpeedyBox) {
  run_differential(chain2_workload(), make_chain2, /*speedybox=*/true);
}

TEST(BatchEquivalence, Chain2Original) {
  run_differential(chain2_workload(), make_chain2, /*speedybox=*/false);
}

TEST(BatchEquivalence, WorkloadsExerciseTailsDropsAndTeardowns) {
  // Guard that the comparisons above actually cover the interesting cases:
  // partial tail batches, real drops, and FIN/RST teardowns mid-run.
  const trace::Workload workload = chain2_workload();
  EXPECT_NE(workload.packet_count() % 32, 0u)
      << "chain2 workload should leave a non-multiple tail at batch=32";
  const RunResult ref = run_scalar(materialize_all(workload), make_chain2(),
                                   /*speedybox=*/true);
  EXPECT_GT(ref.stats.drops, 0u);
  std::size_t fins = 0;
  for (const trace::TracePacket& tp : workload.order) {
    if ((tp.tcp_flags & net::kTcpFlagFin) != 0) ++fins;
  }
  EXPECT_GT(fins, 0u) << "workload should tear flows down mid-run";
  // Same-tuple reuse after an in-batch teardown (the classifier flush
  // boundary) is exercised by the dedicated batch edge-case tests.
}

}  // namespace
}  // namespace speedybox::runtime
