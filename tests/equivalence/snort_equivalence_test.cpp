// §VII-C-1: "Testing Snort (different conditional branches)" — inject flows
// whose payloads match Pass, Alert and Log rules so every inspection branch
// is exercised, and verify the log outputs of the original and SpeedyBox
// paths are identical.
#include <gtest/gtest.h>

#include "equivalence/equivalence_helpers.hpp"
#include "nf/snort_ids.hpp"
#include "test_helpers.hpp"
#include "trace/payload_synth.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::expect_identical_outputs;
using speedybox::testing::run_chain;

trace::Workload snort_workload() {
  trace::Workload workload = trace::make_uniform_workload(30, 12, 160);
  trace::PayloadSynthConfig config;
  config.match_fraction = 0.6;  // plenty of matching flows
  plant_rule_contents(workload, trace::default_snort_rules(), config);
  return workload;
}

TEST(SnortEquivalence, LogOutputsIdentical) {
  const trace::Workload workload = snort_workload();

  ServiceChain original_chain;
  auto& original_snort =
      original_chain.emplace_nf<nf::SnortIds>(trace::default_snort_rules());
  const auto original = run_chain(original_chain, workload, false);

  ServiceChain speedy_chain;
  auto& speedy_snort =
      speedy_chain.emplace_nf<nf::SnortIds>(trace::default_snort_rules());
  const auto speedy = run_chain(speedy_chain, workload, true);

  // Identical packet outputs...
  expect_identical_outputs(original, speedy);
  // ...and identical inspection results, entry by entry.
  EXPECT_GT(original_snort.log().size(), 0u)
      << "workload must exercise alert/log branches";
  ASSERT_EQ(original_snort.log().size(), speedy_snort.log().size());
  for (std::size_t i = 0; i < original_snort.log().size(); ++i) {
    EXPECT_EQ(original_snort.log()[i], speedy_snort.log()[i])
        << "log entry " << i;
  }
  EXPECT_EQ(original_snort.alert_count(), speedy_snort.alert_count());
  EXPECT_EQ(original_snort.log_count(), speedy_snort.log_count());
  EXPECT_EQ(original_snort.pass_count(), speedy_snort.pass_count());
}

TEST(SnortEquivalence, AllThreeBranchesCovered) {
  const trace::Workload workload = snort_workload();
  ServiceChain chain;
  auto& snort = chain.emplace_nf<nf::SnortIds>(trace::default_snort_rules());
  run_chain(chain, workload, true);
  EXPECT_GT(snort.alert_count(), 0u);
  EXPECT_GT(snort.log_count(), 0u);
  EXPECT_GT(snort.pass_count(), 0u);
}

TEST(SnortEquivalence, CleanTrafficSilentOnBothPaths) {
  const trace::Workload workload = trace::make_uniform_workload(10, 10, 64);

  ServiceChain original_chain;
  auto& original_snort =
      original_chain.emplace_nf<nf::SnortIds>(trace::default_snort_rules());
  run_chain(original_chain, workload, false);

  ServiceChain speedy_chain;
  auto& speedy_snort =
      speedy_chain.emplace_nf<nf::SnortIds>(trace::default_snort_rules());
  run_chain(speedy_chain, workload, true);

  EXPECT_TRUE(original_snort.log().empty());
  EXPECT_TRUE(speedy_snort.log().empty());
}

}  // namespace
}  // namespace speedybox::runtime
