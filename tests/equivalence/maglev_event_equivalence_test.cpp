// §VII-C-2: "Testing Maglev (containing events)" — inject a flow of 10
// packets, trigger a backend failure before the 6th, and verify packets 1-5
// carry the original backend address, packets 6-10 the new one, with all
// other header fields and payloads intact.
#include <gtest/gtest.h>

#include "equivalence/equivalence_helpers.hpp"
#include "net/checksum.hpp"
#include "net/fields.hpp"
#include "nf/maglev_lb.hpp"
#include "test_helpers.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::run_chain;
using speedybox::testing::tuple_n;

std::vector<nf::Backend> two_backends() {
  return {
      {"b0", net::Ipv4Addr{10, 2, 0, 10}, 8000, true},
      {"b1", net::Ipv4Addr{10, 2, 0, 11}, 8001, true},
  };
}

trace::Workload ten_packet_flow() {
  trace::Workload workload;
  trace::FlowSpec flow;
  flow.tuple = tuple_n(1);
  flow.packet_count = 10;
  flow.payload.assign(32, 'p');
  flow.close_with_fin = false;  // keep the flow alive through the test
  flow.open_with_syn = false;
  workload.flows.push_back(flow);
  for (std::uint32_t seq = 0; seq < 10; ++seq) {
    workload.order.push_back({0, seq, net::kTcpFlagAck});
  }
  return workload;
}

TEST(MaglevEventEquivalence, PaperCaseStudy) {
  const trace::Workload workload = ten_packet_flow();

  const auto run_with_failover = [&workload](bool speedybox) {
    auto chain = std::make_unique<ServiceChain>();
    auto& lb = chain->emplace_nf<nf::MaglevLb>(two_backends(),
                                               std::size_t{251});
    std::size_t original_backend = SIZE_MAX;
    auto result = run_chain(
        *chain, workload, speedybox,
        [&lb, &original_backend](ServiceChain&, std::size_t index) {
          if (index == 5) {  // before the 6th packet
            original_backend = lb.backend_of(tuple_n(1)).value();
            lb.fail_backend(original_backend);
          }
        });
    return std::make_tuple(std::move(result), original_backend,
                           std::move(chain));
  };

  const auto [speedy, failed_backend, chain] = run_with_failover(true);
  ASSERT_EQ(speedy.outputs.size(), 10u);
  ASSERT_NE(failed_backend, SIZE_MAX);
  const auto backends = two_backends();
  const std::uint32_t ip1 = backends[failed_backend].ip.value;
  const std::uint32_t ip2 = backends[1 - failed_backend].ip.value;

  for (std::size_t i = 0; i < 10; ++i) {
    const auto parsed = net::parse_packet(speedy.outputs[i]);
    const std::uint32_t dst =
        net::get_field(speedy.outputs[i], *parsed, net::HeaderField::kDstIp);
    if (i < 5) {
      EXPECT_EQ(dst, ip1) << "packet " << i + 1 << " must go to ip1";
    } else {
      EXPECT_EQ(dst, ip2) << "packet " << i + 1 << " must go to ip2";
    }
    // "The remaining headers and packet payloads going to ip2 are verified
    // to be true": payload intact, checksums valid.
    const auto payload = net::payload_view(speedy.outputs[i], *parsed);
    EXPECT_EQ(std::string(payload.begin(), payload.end()),
              std::string(32, 'p'));
    EXPECT_TRUE(net::verify_ipv4_checksum(speedy.outputs[i],
                                          parsed->l3_offset));
    EXPECT_TRUE(net::verify_l4_checksum(speedy.outputs[i], *parsed));
  }
}

TEST(MaglevEventEquivalence, OriginalAndSpeedyBoxIdenticalUnderFailover) {
  const trace::Workload workload = ten_packet_flow();

  const auto run_mode = [&workload](bool speedybox) {
    auto chain = std::make_unique<ServiceChain>();
    auto& lb = chain->emplace_nf<nf::MaglevLb>(two_backends(),
                                               std::size_t{251});
    return run_chain(*chain, workload, speedybox,
                     [&lb](ServiceChain&, std::size_t index) {
                       if (index == 5) {
                         lb.fail_backend(
                             lb.backend_of(tuple_n(1)).value());
                       }
                     });
  };

  const auto original = run_mode(false);
  const auto speedy = run_mode(true);
  speedybox::testing::expect_identical_outputs(original, speedy);
}

TEST(MaglevEventEquivalence, NoFailureNoEvent) {
  const trace::Workload workload = ten_packet_flow();
  auto chain = std::make_unique<ServiceChain>();
  chain->emplace_nf<nf::MaglevLb>(two_backends(), std::size_t{251});
  ChainRunner runner{*chain, {platform::PlatformKind::kBess, true, false}};
  for (std::size_t i = 0; i < workload.order.size(); ++i) {
    net::Packet packet = workload.materialize(i);
    runner.process_packet(packet);
  }
  EXPECT_EQ(runner.stats().events_triggered, 0u);
}

}  // namespace
}  // namespace speedybox::runtime
