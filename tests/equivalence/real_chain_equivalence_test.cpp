// §VII-C-3: "Testing real world chains (comprehensive test)" — the two
// evaluation chains, run start-to-finish on a datacenter-style workload
// with synthesized payloads, original vs SpeedyBox:
//
//   Chain 1: MazuNAT -> Maglev -> Monitor -> IPFilter (+ mid-stream
//            backend-failure events hitting the flows pinned to the failed
//            backend, ~a fifth of traffic with five backends)
//   Chain 2: IPFilter -> Snort -> Monitor
//
// Packet outputs must be byte-identical. Monitor counters and Snort logs
// must match. One documented caveat: when a mid-stream event rewrites a
// flow's 5-tuple (Maglev failover), a tuple-keyed Monitor downstream splits
// the flow across two keys on the original path, while the recorded state
// function keeps the key captured at flow setup — the aggregate counts are
// identical (asserted), the keying differs by design (the paper's Monitor
// keys by FID, which is stable across rewrites). The no-event variant
// asserts exact per-key equality.
#include <gtest/gtest.h>

#include "chain_fixtures.hpp"
#include "equivalence/equivalence_helpers.hpp"
#include "nf/ip_filter.hpp"
#include "nf/maglev_lb.hpp"
#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "nf/snort_ids.hpp"
#include "test_helpers.hpp"
#include "trace/payload_synth.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::chain1_workload;
using speedybox::testing::chain2_workload;
using speedybox::testing::expect_identical_outputs;
using speedybox::testing::nf_at;
using speedybox::testing::run_chain;

struct Chain1 {
  std::unique_ptr<ServiceChain> chain;
  nf::MazuNat* nat;
  nf::MaglevLb* lb;
  nf::Monitor* monitor;

  /// Like the paper's Fig-8/§VII-C setup, the default ACL is tuned to avoid
  /// drops: a tail drop would legitimately diverge the *internal* counters
  /// of upstream NFs (early drop means Monitor never sees doomed packets —
  /// that IS the R2 optimization), so drop behavior is asserted separately
  /// on packet outputs only (Chain1WithTailDropOutputsIdentical).
  explicit Chain1(bool with_drops = false) {
    plan::ChainSpec spec = plan::vii_c_chain1();
    if (with_drops) {
      spec.nfs.back() =
          nf::NfSpec::parse("ipfilter:drop-dst-prefix=10.2.0.14/32");
    }
    chain = plan::build_chain(spec);
    nat = &nf_at<nf::MazuNat>(*chain, 0);
    lb = &nf_at<nf::MaglevLb>(*chain, 1);
    monitor = &nf_at<nf::Monitor>(*chain, 2);
  }
};

TEST(RealChainEquivalence, Chain1NoEvents) {
  const trace::Workload workload = chain1_workload();

  Chain1 original;
  const auto original_run = run_chain(*original.chain, workload, false);
  Chain1 speedy;
  const auto speedy_run = run_chain(*speedy.chain, workload, true);

  expect_identical_outputs(original_run, speedy_run);

  // Per-key Monitor counters identical with no events.
  ASSERT_EQ(original.monitor->flow_count(), speedy.monitor->flow_count());
  original.monitor->for_each_flow(
      [&](const net::FiveTuple& tuple, const nf::FlowCounters& counters) {
        const nf::FlowCounters* other = speedy.monitor->counters_of(tuple);
        ASSERT_NE(other, nullptr)
            << "missing counter for " << tuple.to_string();
        EXPECT_EQ(counters, *other) << tuple.to_string();
      });
  // NAT state identical.
  EXPECT_EQ(original.nat->active_mappings(), speedy.nat->active_mappings());
  // Per-backend byte steering identical.
  EXPECT_EQ(original.lb->bytes_per_backend(),
            speedy.lb->bytes_per_backend());
}

TEST(RealChainEquivalence, Chain1WithMidStreamEvents) {
  const trace::Workload workload = chain1_workload();
  const std::size_t fail_at = workload.order.size() / 3;

  const auto run_mode = [&](bool speedybox) {
    auto chain = std::make_shared<Chain1>();
    auto result = run_chain(
        *chain->chain, workload, speedybox,
        [chain, fail_at](ServiceChain&, std::size_t index) {
          if (index == fail_at) chain->lb->fail_backend(1);
        });
    return std::make_pair(std::move(result), chain);
  };

  const auto [original_run, original] = run_mode(false);
  const auto [speedy_run, speedy] = run_mode(true);

  // The packet streams leaving the chain are byte-identical, including the
  // rerouted tail of every flow pinned to the failed backend.
  expect_identical_outputs(original_run, speedy_run);
  EXPECT_EQ(original->lb->reroutes(), speedy->lb->reroutes());
  EXPECT_GT(speedy->lb->reroutes(), 0u) << "events must actually fire";

  // Aggregate Monitor accounting identical (per-key split caveat above).
  EXPECT_EQ(original->monitor->total_packets(),
            speedy->monitor->total_packets());
  EXPECT_EQ(original->monitor->total_bytes(),
            speedy->monitor->total_bytes());
}

TEST(RealChainEquivalence, Chain2SnortMonitor) {
  const trace::Workload workload = chain2_workload();

  const auto build = [] {
    struct Chain2 {
      std::unique_ptr<ServiceChain> chain;
      nf::SnortIds* snort;
      nf::Monitor* monitor;
    } c;
    c.chain = speedybox::testing::make_chain2();
    c.snort = &nf_at<nf::SnortIds>(*c.chain, 1);
    c.monitor = &nf_at<nf::Monitor>(*c.chain, 2);
    return c;
  };

  auto original = build();
  const auto original_run = run_chain(*original.chain, workload, false);
  auto speedy = build();
  const auto speedy_run = run_chain(*speedy.chain, workload, true);

  expect_identical_outputs(original_run, speedy_run);

  // Snort logs identical entry-by-entry.
  ASSERT_EQ(original.snort->log().size(), speedy.snort->log().size());
  for (std::size_t i = 0; i < original.snort->log().size(); ++i) {
    EXPECT_EQ(original.snort->log()[i], speedy.snort->log()[i]);
  }
  EXPECT_GT(speedy.snort->log().size(), 0u);

  // Monitor counters identical per key (no tuple rewrites upstream...
  // IPFilter and Snort never modify).
  ASSERT_EQ(original.monitor->flow_count(), speedy.monitor->flow_count());
  original.monitor->for_each_flow(
      [&](const net::FiveTuple& tuple, const nf::FlowCounters& counters) {
        const nf::FlowCounters* other = speedy.monitor->counters_of(tuple);
        ASSERT_NE(other, nullptr) << tuple.to_string();
        EXPECT_EQ(counters, *other) << tuple.to_string();
      });
}

TEST(RealChainEquivalence, Chain1WithTailDropOutputsIdentical) {
  // With a drop ACL at the tail, the packet streams (and drop counts) must
  // still match exactly; upstream NF-internal counters are exempt (see the
  // Chain1 comment).
  const trace::Workload workload = chain1_workload();
  Chain1 original{/*with_drops=*/true};
  const auto original_run = run_chain(*original.chain, workload, false);
  Chain1 speedy{/*with_drops=*/true};
  const auto speedy_run = run_chain(*speedy.chain, workload, true);
  expect_identical_outputs(original_run, speedy_run);
  EXPECT_GT(original_run.drops, 0u) << "the ACL must exercise drops";
}

TEST(RealChainEquivalence, Chain1DeterministicAcrossRuns) {
  // The SpeedyBox path itself is deterministic: two identical runs produce
  // identical outputs (guards against hidden iteration-order dependence).
  const trace::Workload workload = chain1_workload();
  Chain1 a;
  const auto run_a = run_chain(*a.chain, workload, true);
  Chain1 b;
  const auto run_b = run_chain(*b.chain, workload, true);
  expect_identical_outputs(run_a, run_b);
}

}  // namespace
}  // namespace speedybox::runtime
