// Differential equivalence of LIVE RESHARDING (DESIGN.md §10): the same
// workload through a static single-threaded ChainRunner and through a
// sharded runtime that scales up, scales down, or oscillates MID-TRACE on
// a fixed packet schedule. If the quiescence protocol, the per-NF
// export/import pairs, and the consolidated-rule handoff are correct, the
// elastic runs are byte-identical per input index to the static reference
// — migrated flows keep their NAT ports, backend assignments, verdicts,
// candidate rule groups and counters, and take the identical fast path on
// their new shard.
//
// The schedules bypass the hysteresis policy and call control::reshard
// directly from the scale hook, so the reshard points are exact packet
// indices — deterministic across batch sizes (quiescence flushes partial
// staging) and repeatable in CI.
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "chain_fixtures.hpp"
#include "control/flow_migration.hpp"
#include "nf/monitor.hpp"
#include "runtime/executor.hpp"
#include "runtime/runner.hpp"
#include "runtime/sharded_runtime.hpp"
#include "test_helpers.hpp"
#include "trace/workload.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::chain1_workload;
using speedybox::testing::chain2_workload;
using speedybox::testing::make_chain1;
using speedybox::testing::make_chain2;
using speedybox::testing::same_bytes;

std::vector<net::Packet> materialize_all(const trace::Workload& workload) {
  std::vector<net::Packet> packets;
  packets.reserve(workload.packet_count());
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    packets.push_back(workload.materialize(i));
  }
  return packets;
}

struct Reference {
  std::vector<PacketOutcome> outcomes;
  std::vector<net::Packet> packets;
  std::uint64_t drops = 0;
};

Reference run_reference(const std::vector<net::Packet>& packets,
                        std::unique_ptr<ServiceChain> chain) {
  ChainRunner runner{*chain, {platform::PlatformKind::kBess, true, false}};
  Reference ref;
  ref.outcomes.reserve(packets.size());
  ref.packets.reserve(packets.size());
  for (const net::Packet& original : packets) {
    net::Packet packet = original;
    packet.reset_metadata();
    ref.outcomes.push_back(runner.process_packet(packet));
    if (ref.outcomes.back().dropped) ++ref.drops;
    ref.packets.push_back(std::move(packet));
  }
  return ref;
}

void expect_index_identical(const Reference& ref,
                            const ShardedRunResult& sharded) {
  ASSERT_EQ(sharded.outcomes.size(), ref.outcomes.size());
  ASSERT_EQ(sharded.packets.size(), ref.packets.size());
  for (std::size_t i = 0; i < ref.outcomes.size(); ++i) {
    EXPECT_EQ(sharded.outcomes[i].initial, ref.outcomes[i].initial)
        << "initial flag, packet " << i;
    EXPECT_EQ(sharded.outcomes[i].dropped, ref.outcomes[i].dropped)
        << "dropped flag, packet " << i;
    EXPECT_EQ(sharded.outcomes[i].fast_path, ref.outcomes[i].fast_path)
        << "fast-path flag, packet " << i;
    ASSERT_TRUE(same_bytes(sharded.packets[i], ref.packets[i]))
        << "packet " << i << " bytes differ";
  }
  EXPECT_EQ(sharded.stats.drops, ref.drops);
  EXPECT_EQ(sharded.stats.packets, ref.outcomes.size());
}

/// A deterministic reshard schedule: at exactly `pushed-packet count` →
/// resize to `target shards`. Driven through the runtime's scale hook at
/// the schedule's granularity, bypassing the hysteresis policy.
using Schedule = std::map<std::uint64_t, std::size_t>;
constexpr std::uint64_t kHookInterval = 64;

/// Run `packets` through an elastic runtime executing `schedule`, return
/// the merged result plus the total flows migrated (so tests can assert
/// the schedule actually exercised migration).
struct ElasticRun {
  ShardedRunResult result;
  std::uint64_t migrated_flows = 0;
  std::size_t reshards = 0;
};

ElasticRun run_elastic(const std::vector<net::Packet>& packets,
                       const std::function<std::unique_ptr<ServiceChain>()>&
                           factory,
                       std::size_t start_shards, const Schedule& schedule,
                       std::size_t batch_size) {
  auto prototype = factory();
  RunConfig config{platform::PlatformKind::kBess, true, false};
  config.batch_size = batch_size;
  ShardedRuntime runtime{*prototype, start_shards, config};
  ElasticRun elastic;
  runtime.set_scale_hook(
      [&schedule, &elastic](ShardedRuntime& rt) {
        const auto it = schedule.find(rt.pushed());
        if (it == schedule.end()) return;
        const control::ReshardReport report =
            control::reshard(rt, it->second);
        elastic.migrated_flows += report.migrated_flows;
        ++elastic.reshards;
      },
      kHookInterval);
  Executor& executor = runtime;
  executor.run(packets, nullptr);
  elastic.result = runtime.last_result();
  return elastic;
}

void run_schedule_differential(
    const trace::Workload& workload,
    const std::function<std::unique_ptr<ServiceChain>()>& factory,
    std::size_t start_shards, const Schedule& schedule) {
  const std::vector<net::Packet> packets = materialize_all(workload);
  for (const auto& [at, target] : schedule) {
    ASSERT_LT(at, packets.size())
        << "schedule point past the end of the trace";
    ASSERT_EQ(at % kHookInterval, 0u)
        << "schedule point off the hook cadence";
    (void)target;
  }
  const Reference ref = run_reference(packets, factory());
  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{32}}) {
    SCOPED_TRACE("batch_size=" + std::to_string(batch_size));
    const ElasticRun elastic =
        run_elastic(packets, factory, start_shards, schedule, batch_size);
    EXPECT_EQ(elastic.reshards, schedule.size());
    EXPECT_GT(elastic.migrated_flows, 0u)
        << "schedule migrated nothing — the test proves less than it claims";
    expect_index_identical(ref, elastic.result);
  }
}

// --- Chain 1: NAT -> Maglev -> Monitor -> IpFilter ------------------------

TEST(AutoscaleEquivalence, Chain1ScaleUpMidTrace) {
  run_schedule_differential(chain1_workload(), make_chain1, 1,
                            {{256, 2}, {512, 4}});
}

TEST(AutoscaleEquivalence, Chain1ScaleDownMidTrace) {
  run_schedule_differential(chain1_workload(), make_chain1, 4,
                            {{256, 2}, {512, 1}});
}

TEST(AutoscaleEquivalence, Chain1Oscillating) {
  run_schedule_differential(chain1_workload(), make_chain1, 1,
                            {{128, 2}, {256, 1}, {384, 3}, {512, 2}});
}

// --- Chain 2: IpFilter -> Snort -> Monitor (drops + alerts live) ----------

TEST(AutoscaleEquivalence, Chain2ScaleUpMidTrace) {
  run_schedule_differential(chain2_workload(), make_chain2, 1,
                            {{256, 2}, {512, 4}});
}

TEST(AutoscaleEquivalence, Chain2ScaleDownMidTrace) {
  run_schedule_differential(chain2_workload(), make_chain2, 4,
                            {{256, 2}, {512, 1}});
}

TEST(AutoscaleEquivalence, Chain2Oscillating) {
  run_schedule_differential(chain2_workload(), make_chain2, 1,
                            {{128, 2}, {256, 1}, {384, 3}, {512, 2}});
}

// --- State partition across an oscillating run ----------------------------

TEST(AutoscaleEquivalence, MonitorStateStaysAPartitionAcrossReshards) {
  // Monitor's export MOVES its counters with the flow, so after any
  // sequence of reshards the union of the per-shard counter maps — retired
  // replicas included — must still equal what one global instance holds,
  // with no key counted twice.
  const trace::Workload workload = chain1_workload();
  const std::vector<net::Packet> packets = materialize_all(workload);

  auto global_chain = make_chain1();
  auto* global_monitor = dynamic_cast<nf::Monitor*>(&global_chain->nf(2));
  ASSERT_NE(global_monitor, nullptr);
  ChainRunner runner{*global_chain,
                     {platform::PlatformKind::kBess, true, false}};
  for (const net::Packet& original : packets) {
    net::Packet packet = original;
    packet.reset_metadata();
    runner.process_packet(packet);
  }

  auto prototype = make_chain1();
  ShardedRuntime runtime{*prototype, 1,
                         {platform::PlatformKind::kBess, true, false}};
  const Schedule schedule{{128, 3}, {320, 1}, {512, 4}};
  runtime.set_scale_hook(
      [&schedule](ShardedRuntime& rt) {
        const auto it = schedule.find(rt.pushed());
        if (it != schedule.end()) control::reshard(rt, it->second);
      },
      kHookInterval);
  runtime.run_packets(packets);

  std::size_t sharded_flow_count = 0;
  for (std::size_t s = 0; s < runtime.shard_count(); ++s) {
    auto* shard_monitor =
        dynamic_cast<nf::Monitor*>(&runtime.shard_chain(s).nf(2));
    ASSERT_NE(shard_monitor, nullptr);
    shard_monitor->for_each_flow(
        [&](const net::FiveTuple& tuple, const nf::FlowCounters& counters) {
          ++sharded_flow_count;
          const nf::FlowCounters* global = global_monitor->counters_of(tuple);
          ASSERT_NE(global, nullptr) << tuple.to_string();
          EXPECT_EQ(counters, *global) << tuple.to_string();
        });
  }
  EXPECT_EQ(sharded_flow_count, global_monitor->flow_count());
}

}  // namespace
}  // namespace speedybox::runtime
