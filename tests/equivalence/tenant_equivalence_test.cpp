// Tenant isolation is only real if hosting is invisible to the packets:
// every tenant's post-chain output must be byte-identical to a solo run of
// the same plan over the same workload — including across SLO-driven
// shard reallocation events (the PR 5 quiesce/export/import flow must stay
// byte-preserving when the tenancy arbiter triggers it mid-run).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "runtime/plan.hpp"
#include "runtime/runner.hpp"
#include "runtime/sharded_runtime.hpp"
#include "tenancy/tenant_host.hpp"
#include "test_helpers.hpp"

namespace speedybox::tenancy {
namespace {

using speedybox::testing::same_bytes;

/// Reference: the tenant's plan and workload, alone on the machine, no
/// host gate, no arbiter, untouched shard count.
std::vector<net::Packet> solo_outputs(const TenantSpec& spec) {
  plan::BuiltDeployment built = plan::build(spec.plan);
  const trace::Workload workload = spec.workload.build();
  if (auto* sharded =
          dynamic_cast<runtime::ShardedRuntime*>(built.executor.get())) {
    for (std::size_t i = 0; i < workload.packet_count(); ++i) {
      sharded->push(workload.materialize(i));
    }
    return std::move(sharded->finish().packets);
  }
  auto* runner = dynamic_cast<runtime::ChainRunner*>(built.executor.get());
  std::vector<net::Packet> outputs;
  outputs.reserve(workload.packet_count());
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    net::Packet packet = workload.materialize(i);
    runner->process_packet(packet);
    outputs.push_back(std::move(packet));
  }
  return outputs;
}

void expect_byte_identical(const std::vector<net::Packet>& hosted,
                           const std::vector<net::Packet>& solo,
                           const std::string& id) {
  ASSERT_EQ(hosted.size(), solo.size()) << "tenant " << id;
  for (std::size_t i = 0; i < hosted.size(); ++i) {
    ASSERT_TRUE(same_bytes(hosted[i], solo[i]))
        << "tenant " << id << " packet " << i;
    ASSERT_EQ(hosted[i].dropped(), solo[i].dropped())
        << "tenant " << id << " packet " << i;
  }
}

TenantSpec sharded_tenant(const std::string& id, double slo_us,
                          std::size_t flows, std::uint32_t packets,
                          std::uint64_t seed) {
  TenantSpec tenant;
  tenant.id = id;
  tenant.plan.chain = plan::ChainSpec::parse("nat,monitor");
  tenant.plan.executor = plan::ExecutorKind::kSharded;
  tenant.plan.shards = 2;
  tenant.slo_us = slo_us;
  tenant.workload.kind = "uniform";
  tenant.workload.flows = flows;
  tenant.workload.packets_per_flow = packets;
  tenant.workload.seed = seed;
  return tenant;
}

TEST(TenantEquivalence, HostedOutputsMatchSoloRuns) {
  // Quiet co-tenancy: no enforcement action ever fires, the interleaved
  // hosted drive must still be invisible per tenant.
  HostSpec host;
  host.tenants = {sharded_tenant("alpha", 1e9, 40, 12, 21),
                  sharded_tenant("bravo", 1e9, 25, 20, 22)};
  TenantHost tenant_host{host};
  const HostRunResult result = tenant_host.run();
  ASSERT_EQ(result.tenants.size(), 2u);
  for (std::size_t i = 0; i < host.tenants.size(); ++i) {
    EXPECT_EQ(result.tenants[i].gate_shed, 0u);
    EXPECT_EQ(result.tenants[i].realloc_events, 0u);
    expect_byte_identical(result.tenants[i].outputs,
                          solo_outputs(host.tenants[i]),
                          host.tenants[i].id);
  }
}

TEST(TenantEquivalence, OutputsSurviveSloDrivenShardReallocation) {
  // The victim's SLO is unreachably tight, admission tightening is off and
  // the pool has no headroom: the arbiter's only lever is L3, moving a
  // shard from the offender to the victim mid-run. Both tenants' outputs
  // must stay byte-identical to their solo runs across that migration.
  HostSpec host;
  host.tenants = {sharded_tenant("victim", 0.001, 40, 12, 7),
                  sharded_tenant("offender", 1e9, 100, 24, 8)};
  host.pool_shards = 4;  // exactly the planned sum: no free headroom
  host.enforcement.window_packets = 256;
  host.enforcement.breach_streak = 1;
  host.enforcement.cooldown_windows = 2;
  host.enforcement.tighten_admission = false;
  host.enforcement.reallocate_shards = true;

  TenantHost tenant_host{host};
  const HostRunResult result = tenant_host.run();
  ASSERT_EQ(result.tenants.size(), 2u);

  // The reallocation actually happened: offender 2 -> 1, victim 2 -> 3.
  EXPECT_GE(result.tenants[0].realloc_events, 1u);
  EXPECT_GE(result.tenants[1].realloc_events, 1u);
  EXPECT_EQ(result.tenants[0].final_shards, 3u);
  EXPECT_EQ(result.tenants[1].final_shards, 1u);
  EXPECT_EQ(result.tenants[1].max_escalation, 3);

  // With admission tightening disabled no packet is ever shed...
  for (const TenantResult& tenant : result.tenants) {
    EXPECT_EQ(tenant.gate_shed, 0u);
    EXPECT_EQ(tenant.forwarded, tenant.offered);
  }
  // ...and the hosted outputs are byte-identical to solo, reallocation
  // included.
  for (std::size_t i = 0; i < host.tenants.size(); ++i) {
    expect_byte_identical(result.tenants[i].outputs,
                          solo_outputs(host.tenants[i]),
                          host.tenants[i].id);
  }
}

}  // namespace
}  // namespace speedybox::tenancy
