// Shared harness for the §VII-C equivalence studies: run the SAME workload
// through an original chain and a SpeedyBox chain (independent NF
// instances), collecting the surviving output packets of each, with an
// optional mid-run control-plane action (e.g. failing a Maglev backend)
// applied identically to both runs.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/runner.hpp"
#include "test_helpers.hpp"
#include "trace/workload.hpp"

namespace speedybox::testing {

struct EquivalenceRun {
  std::vector<net::Packet> outputs;  // non-dropped packets, in order
  std::uint64_t drops = 0;
};

/// `mid_run_action(chain, packet_index)` is invoked before each packet and
/// may mutate NF state (both runs receive identical calls).
inline EquivalenceRun run_chain(
    runtime::ServiceChain& chain, const trace::Workload& workload,
    bool speedybox,
    const std::function<void(runtime::ServiceChain&, std::size_t)>&
        mid_run_action = {}) {
  runtime::ChainRunner runner{
      chain, {platform::PlatformKind::kBess, speedybox, false}};
  EquivalenceRun run;
  for (std::size_t i = 0; i < workload.order.size(); ++i) {
    if (mid_run_action) mid_run_action(chain, i);
    net::Packet packet = workload.materialize(i);
    const auto outcome = runner.process_packet(packet);
    if (outcome.dropped) {
      ++run.drops;
    } else {
      run.outputs.push_back(std::move(packet));
    }
  }
  return run;
}

inline void expect_identical_outputs(const EquivalenceRun& original,
                                     const EquivalenceRun& speedybox) {
  EXPECT_EQ(original.drops, speedybox.drops);
  ASSERT_EQ(original.outputs.size(), speedybox.outputs.size());
  for (std::size_t i = 0; i < original.outputs.size(); ++i) {
    ASSERT_TRUE(same_bytes(original.outputs[i], speedybox.outputs[i]))
        << "output packet " << i << " differs";
  }
}

}  // namespace speedybox::testing
