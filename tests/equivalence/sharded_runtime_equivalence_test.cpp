// Differential equivalence of the flow-sharded runtime: the SAME workload
// through three deployments of the SAME chain —
//
//   1. ChainRunner          (single thread, the semantic reference)
//   2. SpeedyBoxPipeline    (threaded manager/NF-core deployment)
//   3. ShardedRuntime       (N = 1, 2, 4 full chain replicas)
//
// on both §VII-C real-world chains. The sharded runtime preserves the full
// per-input-index outcome sequence — initial/dropped/fast-path flags and
// the exact output bytes — because flow sharding never reorders a flow and
// every replica computes the same per-flow state a global instance would
// (deterministic NAT port allocation makes that literal for MazuNAT).
// The pipeline leg only guarantees per-flow FIFO, so it is compared on
// ordered per-flow byte sequences.
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "chain_fixtures.hpp"
#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "runtime/executor.hpp"
#include "runtime/runner.hpp"
#include "runtime/sharded_runtime.hpp"
#include "runtime/speedybox_pipeline.hpp"
#include "test_helpers.hpp"
#include "trace/workload.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::chain1_workload;
using speedybox::testing::chain2_workload;
using speedybox::testing::make_chain1;
using speedybox::testing::make_chain2;
using speedybox::testing::same_bytes;

std::vector<net::Packet> materialize_all(const trace::Workload& workload) {
  std::vector<net::Packet> packets;
  packets.reserve(workload.packet_count());
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    packets.push_back(workload.materialize(i));
  }
  return packets;
}

/// Per-input-index record of what the reference (single-threaded
/// ChainRunner) deployment did to each packet.
struct Reference {
  std::vector<PacketOutcome> outcomes;
  std::vector<net::Packet> packets;  // post-chain, dropped ones included
  std::uint64_t drops = 0;
};

Reference run_reference(const std::vector<net::Packet>& packets,
                        std::unique_ptr<ServiceChain> chain) {
  ChainRunner runner{*chain, {platform::PlatformKind::kBess, true, false}};
  Reference ref;
  ref.outcomes.reserve(packets.size());
  ref.packets.reserve(packets.size());
  for (const net::Packet& original : packets) {
    net::Packet packet = original;
    packet.reset_metadata();
    ref.outcomes.push_back(runner.process_packet(packet));
    if (ref.outcomes.back().dropped) ++ref.drops;
    ref.packets.push_back(std::move(packet));
  }
  return ref;
}

/// The strong comparison: per input index, the sharded run must agree with
/// the reference on the outcome flags AND the exact packet bytes.
void expect_index_identical(const Reference& ref,
                            const ShardedRunResult& sharded) {
  ASSERT_EQ(sharded.outcomes.size(), ref.outcomes.size());
  ASSERT_EQ(sharded.packets.size(), ref.packets.size());
  for (std::size_t i = 0; i < ref.outcomes.size(); ++i) {
    EXPECT_EQ(sharded.outcomes[i].initial, ref.outcomes[i].initial)
        << "initial flag, packet " << i;
    EXPECT_EQ(sharded.outcomes[i].dropped, ref.outcomes[i].dropped)
        << "dropped flag, packet " << i;
    EXPECT_EQ(sharded.outcomes[i].fast_path, ref.outcomes[i].fast_path)
        << "fast-path flag, packet " << i;
    ASSERT_TRUE(same_bytes(sharded.packets[i], ref.packets[i]))
        << "packet " << i << " bytes differ";
  }
  EXPECT_EQ(sharded.stats.drops, ref.drops);
  EXPECT_EQ(sharded.stats.packets, ref.outcomes.size());
}

/// The pipeline leg guarantees per-flow FIFO but not global order: compare
/// the ordered per-flow byte sequences of the surviving packets.
void expect_per_flow_identical(const Reference& ref,
                               std::vector<net::Packet> pipeline_out,
                               std::uint64_t pipeline_drops) {
  using FlowOutputs = std::unordered_map<
      net::FiveTuple, std::vector<std::vector<std::uint8_t>>,
      net::FiveTupleHash>;
  const auto group_packet = [](FlowOutputs& flows,
                               const net::Packet& packet) {
    const auto parsed = net::parse_packet(packet);
    ASSERT_TRUE(parsed.has_value());
    flows[net::extract_five_tuple(packet, *parsed)].emplace_back(
        packet.bytes().begin(), packet.bytes().end());
  };
  FlowOutputs reference_flows;
  for (std::size_t i = 0; i < ref.packets.size(); ++i) {
    if (!ref.outcomes[i].dropped) {
      group_packet(reference_flows, ref.packets[i]);
    }
  }
  FlowOutputs pipeline_flows;
  for (const net::Packet& packet : pipeline_out) {
    group_packet(pipeline_flows, packet);
  }
  EXPECT_EQ(pipeline_drops, ref.drops);
  ASSERT_EQ(pipeline_flows.size(), reference_flows.size());
  for (const auto& [tuple, sequence] : reference_flows) {
    const auto it = pipeline_flows.find(tuple);
    ASSERT_NE(it, pipeline_flows.end()) << tuple.to_string();
    EXPECT_EQ(it->second, sequence) << tuple.to_string();
  }
}

/// Byte-identical sharded NAT relies on flows probing from distinct start
/// ports (see mazu_nat.hpp). Holds for these fixed workload seeds; if a
/// future edit reseeds the workload into a collision, this points at the
/// cause instead of a baffling byte diff.
void assert_distinct_nat_start_ports(const trace::Workload& workload) {
  const nf::MazuNatConfig nat_config{};
  const std::uint32_t range =
      static_cast<std::uint32_t>(nat_config.port_hi - nat_config.port_lo) +
      1;
  std::set<std::uint32_t> starts;
  for (const auto& flow : workload.flows) {
    ASSERT_TRUE(starts.insert(static_cast<std::uint32_t>(
                                  flow.tuple.hash() % range))
                    .second)
        << "workload seed produces a NAT start-port collision for "
        << flow.tuple.to_string();
  }
}

void run_differential(const trace::Workload& workload,
                      const std::function<std::unique_ptr<ServiceChain>()>&
                          factory) {
  const std::vector<net::Packet> packets = materialize_all(workload);
  const Reference ref = run_reference(packets, factory());

  // Both comparison legs drive through the runtime::Executor interface —
  // the same entry points chainsim and the benches use.
  for (const std::size_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    auto prototype = factory();
    ShardedRuntime runtime{*prototype, shards,
                           {platform::PlatformKind::kBess, true, false}};
    Executor& executor = runtime;
    EXPECT_EQ(executor.kind(), "sharded");
    executor.run(packets, nullptr);
    expect_index_identical(ref, runtime.last_result());
  }

  auto pipeline_chain = factory();
  SpeedyBoxPipeline pipeline{*pipeline_chain};
  Executor& executor = pipeline;
  EXPECT_EQ(executor.kind(), "pipeline");
  std::vector<net::Packet> pipeline_out;
  const RunStats& pipeline_stats = executor.run(packets, &pipeline_out);
  expect_per_flow_identical(ref, std::move(pipeline_out),
                            pipeline_stats.drops);
}

TEST(ShardedRuntimeEquivalence, Chain1NatMaglevMonitorFilter) {
  const trace::Workload workload = chain1_workload();
  assert_distinct_nat_start_ports(workload);
  run_differential(workload, make_chain1);
}

TEST(ShardedRuntimeEquivalence, Chain2FilterSnortMonitor) {
  const trace::Workload workload = chain2_workload();
  run_differential(workload, make_chain2);
}

TEST(ShardedRuntimeEquivalence, Chain2ActuallyDropsAndInspects) {
  // Guard that the Chain 2 comparison exercises drops and Snort alerts —
  // an equivalence test over a workload that never drops proves less.
  const trace::Workload workload = chain2_workload();
  const Reference ref =
      run_reference(materialize_all(workload), make_chain2());
  EXPECT_GT(ref.drops, 0u);
}

TEST(ShardedRuntimeEquivalence, ShardedStateMatchesGlobalState) {
  // Beyond the packet bytes: the union of the shard replicas' NF state
  // equals the global instance's state. Monitor counters are per-flow, so
  // the per-shard maps must partition the global map.
  const trace::Workload workload = chain1_workload();
  const std::vector<net::Packet> packets = materialize_all(workload);

  auto chain = make_chain1();
  auto* monitor = dynamic_cast<nf::Monitor*>(&chain->nf(2));
  ASSERT_NE(monitor, nullptr);
  ChainRunner runner{*chain, {platform::PlatformKind::kBess, true, false}};
  for (const net::Packet& original : packets) {
    net::Packet packet = original;
    packet.reset_metadata();
    runner.process_packet(packet);
  }

  auto prototype = make_chain1();
  ShardedRuntime runtime{*prototype, 4,
                         {platform::PlatformKind::kBess, true, false}};
  runtime.run_packets(packets);

  std::size_t sharded_flow_count = 0;
  for (std::size_t s = 0; s < runtime.shard_count(); ++s) {
    auto* shard_monitor =
        dynamic_cast<nf::Monitor*>(&runtime.shard_chain(s).nf(2));
    ASSERT_NE(shard_monitor, nullptr);
    shard_monitor->for_each_flow(
        [&](const net::FiveTuple& tuple, const nf::FlowCounters& counters) {
          ++sharded_flow_count;
          const nf::FlowCounters* global = monitor->counters_of(tuple);
          ASSERT_NE(global, nullptr) << tuple.to_string();
          EXPECT_EQ(counters, *global) << tuple.to_string();
        });
  }
  EXPECT_EQ(sharded_flow_count, monitor->flow_count());
}

}  // namespace
}  // namespace speedybox::runtime
