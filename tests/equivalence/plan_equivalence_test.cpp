// The refactor's safety net: executors built from a DeploymentPlan must be
// BYTE-IDENTICAL to executors built by hand with the direct NF constructor
// API, on both §VII-C chains, across the runner, sharded and pipeline
// shapes. The hand-built chains below are the ONE deliberate duplication of
// the canonical specs left in the tree — they are the ground truth this
// test holds plan::build() against (everything else builds from
// plan::vii_c_chain*()).
//
// Also: a plan that survives a JSON round-trip builds the same bytes (the
// serialized form is the deployment), and the pipeline's plan-driven fused
// segments ({2,2} / {1,2}) match the per-NF reference flow-for-flow.
#include <memory>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "chain_fixtures.hpp"
#include "nf/ip_filter.hpp"
#include "nf/maglev_lb.hpp"
#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "nf/snort_ids.hpp"
#include "nf/snort_rule.hpp"
#include "runtime/executor.hpp"
#include "runtime/plan.hpp"
#include "runtime/runner.hpp"
#include "runtime/sharded_runtime.hpp"
#include "runtime/speedybox_pipeline.hpp"
#include "test_helpers.hpp"
#include "trace/workload.hpp"

namespace speedybox::runtime {
namespace {

using speedybox::testing::chain1_workload;
using speedybox::testing::chain2_workload;
using speedybox::testing::same_bytes;

// --- Hand-built ground truth (see the file comment) -----------------------

std::unique_ptr<ServiceChain> hand_chain1() {
  auto chain = std::make_unique<ServiceChain>("chain1_gateway");
  chain->emplace_nf<nf::MazuNat>();
  std::vector<nf::Backend> backends;
  for (int i = 0; i < 5; ++i) {
    backends.push_back({"backend-" + std::to_string(i),
                        net::Ipv4Addr{10, 2, 0,
                                      static_cast<std::uint8_t>(10 + i)},
                        static_cast<std::uint16_t>(8000 + i), true});
  }
  chain->emplace_nf<nf::MaglevLb>(std::move(backends), std::size_t{1021});
  chain->emplace_nf<nf::Monitor>();
  chain->emplace_nf<nf::IpFilter>(std::vector<nf::AclRule>{});
  return chain;
}

std::unique_ptr<ServiceChain> hand_chain2() {
  auto chain = std::make_unique<ServiceChain>("chain2_ids");
  chain->emplace_nf<nf::IpFilter>(std::vector<nf::AclRule>{
      nf::AclRule::drop_dst_prefix(net::Ipv4Addr{10, 1, 3, 0}, 24)});
  chain->emplace_nf<nf::SnortIds>(nf::default_snort_rules());
  chain->emplace_nf<nf::Monitor>();
  return chain;
}

std::vector<net::Packet> materialize_all(const trace::Workload& workload) {
  std::vector<net::Packet> packets;
  packets.reserve(workload.packet_count());
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    packets.push_back(workload.materialize(i));
  }
  return packets;
}

/// Ordered, input-indexed run through a ChainRunner (hand-built or
/// plan-built): per-packet outcome flags plus the post-chain bytes.
struct IndexedRun {
  std::vector<PacketOutcome> outcomes;
  std::vector<net::Packet> packets;
};

IndexedRun drive_runner(ChainRunner& runner,
                        const std::vector<net::Packet>& packets) {
  IndexedRun run;
  run.outcomes.reserve(packets.size());
  run.packets.reserve(packets.size());
  for (const net::Packet& original : packets) {
    net::Packet packet = original;
    packet.reset_metadata();
    run.outcomes.push_back(runner.process_packet(packet));
    run.packets.push_back(std::move(packet));
  }
  return run;
}

void expect_runs_identical(const IndexedRun& a, const IndexedRun& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    ASSERT_EQ(a.outcomes[i].initial, b.outcomes[i].initial) << "packet " << i;
    ASSERT_EQ(a.outcomes[i].dropped, b.outcomes[i].dropped) << "packet " << i;
    ASSERT_EQ(a.outcomes[i].fast_path, b.outcomes[i].fast_path)
        << "packet " << i;
    ASSERT_TRUE(same_bytes(a.packets[i], b.packets[i]))
        << "packet " << i << " bytes differ";
  }
}

using DeploymentPlan = plan::DeploymentPlan;

DeploymentPlan runner_plan(const plan::ChainSpec& spec) {
  DeploymentPlan deployment;
  deployment.chain = spec;
  deployment.executor = plan::ExecutorKind::kRunner;
  return deployment;
}

struct ChainCase {
  const char* label;
  plan::ChainSpec (*spec)();
  std::unique_ptr<ServiceChain> (*hand)();
  trace::Workload (*workload)();
};

const ChainCase kCases[] = {
    {"chain1", plan::vii_c_chain1, hand_chain1, chain1_workload},
    {"chain2", plan::vii_c_chain2, hand_chain2, chain2_workload},
};

TEST(PlanEquivalence, RunnerMatchesHandBuiltOnBothChains) {
  for (const ChainCase& test_case : kCases) {
    for (const bool speedybox : {false, true}) {
      SCOPED_TRACE(std::string(test_case.label) +
                   (speedybox ? "/speedybox" : "/original"));
      const std::vector<net::Packet> packets =
          materialize_all(test_case.workload());

      const auto hand = test_case.hand();
      ChainRunner hand_runner{
          *hand, {platform::PlatformKind::kBess, speedybox, false}};
      const IndexedRun hand_run = drive_runner(hand_runner, packets);

      DeploymentPlan deployment = runner_plan(test_case.spec());
      deployment.speedybox = speedybox;
      auto built = plan::build(deployment);
      auto& plan_runner = dynamic_cast<ChainRunner&>(*built.executor);
      const IndexedRun plan_run = drive_runner(plan_runner, packets);

      expect_runs_identical(hand_run, plan_run);
      EXPECT_EQ(plan_runner.stats().drops, hand_runner.stats().drops);
    }
  }
}

TEST(PlanEquivalence, ShardedMatchesHandBuiltOnBothChains) {
  for (const ChainCase& test_case : kCases) {
    for (const std::size_t shards : {2u, 4u}) {
      SCOPED_TRACE(std::string(test_case.label) + "/shards=" +
                   std::to_string(shards));
      const std::vector<net::Packet> packets =
          materialize_all(test_case.workload());

      auto hand_proto = test_case.hand();
      ShardedRuntime hand_runtime{
          *hand_proto, shards, {platform::PlatformKind::kBess, true, false}};
      const ShardedRunResult hand_result = hand_runtime.run_packets(packets);

      DeploymentPlan deployment = runner_plan(test_case.spec());
      deployment.executor = plan::ExecutorKind::kSharded;
      deployment.shards = shards;
      auto built = plan::build(deployment);
      built.executor->run(packets, nullptr);
      const ShardedRunResult& plan_result =
          dynamic_cast<ShardedRuntime&>(*built.executor).last_result();

      ASSERT_EQ(plan_result.outcomes.size(), hand_result.outcomes.size());
      for (std::size_t i = 0; i < hand_result.outcomes.size(); ++i) {
        ASSERT_EQ(plan_result.outcomes[i].dropped,
                  hand_result.outcomes[i].dropped)
            << "packet " << i;
        ASSERT_TRUE(same_bytes(plan_result.packets[i],
                               hand_result.packets[i]))
            << "packet " << i << " bytes differ";
      }
      EXPECT_EQ(plan_result.stats.drops, hand_result.stats.drops);
    }
  }
}

/// Group surviving packets into per-flow ordered byte sequences — the
/// pipeline's guarantee is per-flow FIFO, not global order.
using FlowOutputs =
    std::unordered_map<net::FiveTuple,
                       std::vector<std::vector<std::uint8_t>>,
                       net::FiveTupleHash>;

FlowOutputs group_by_flow(const std::vector<net::Packet>& packets) {
  FlowOutputs flows;
  for (const net::Packet& packet : packets) {
    const auto parsed = net::parse_packet(packet);
    if (!parsed.has_value()) continue;
    flows[net::extract_five_tuple(packet, *parsed)].emplace_back(
        packet.bytes().begin(), packet.bytes().end());
  }
  return flows;
}

void expect_flows_identical(const FlowOutputs& expected,
                            const FlowOutputs& actual) {
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [tuple, sequence] : expected) {
    const auto it = actual.find(tuple);
    ASSERT_NE(it, actual.end()) << tuple.to_string();
    ASSERT_EQ(it->second, sequence) << tuple.to_string();
  }
}

TEST(PlanEquivalence, PipelineAndFusedSegmentsMatchTheReference) {
  // Per-NF reference: the hand-built single-threaded runner. Against it:
  // the plan-built pipeline with default (one NF per stage) segments, and
  // with the fused shapes {2,2} (chain1) / {1,2} (chain2) a planner would
  // emit. All three must agree flow-for-flow, byte-for-byte.
  const std::vector<std::vector<plan::SegmentSpec>> chain1_segments = {
      {}, {{2, false}, {2, false}}, {{2, true}, {2, true}}};
  const std::vector<std::vector<plan::SegmentSpec>> chain2_segments = {
      {}, {{1, false}, {2, false}}, {{3, true}}};

  for (const ChainCase& test_case : kCases) {
    const auto& segment_shapes =
        std::string(test_case.label) == "chain1" ? chain1_segments
                                                 : chain2_segments;
    const std::vector<net::Packet> packets =
        materialize_all(test_case.workload());

    auto hand = test_case.hand();
    ChainRunner reference{*hand,
                          {platform::PlatformKind::kBess, true, false}};
    std::uint64_t reference_drops = 0;
    std::vector<net::Packet> reference_out;
    for (const net::Packet& original : packets) {
      net::Packet packet = original;
      packet.reset_metadata();
      if (reference.process_packet(packet).dropped) {
        ++reference_drops;
      } else {
        reference_out.push_back(std::move(packet));
      }
    }
    const FlowOutputs reference_flows = group_by_flow(reference_out);

    for (const auto& segments : segment_shapes) {
      SCOPED_TRACE(std::string(test_case.label) + "/segments=" +
                   std::to_string(segments.size()));
      DeploymentPlan deployment = runner_plan(test_case.spec());
      deployment.executor = plan::ExecutorKind::kPipeline;
      deployment.segments = segments;
      auto built = plan::build(deployment);
      std::vector<net::Packet> out;
      const RunStats& stats = built.executor->run(packets, &out);
      EXPECT_EQ(stats.drops, reference_drops);
      expect_flows_identical(reference_flows, group_by_flow(out));
    }
  }
}

TEST(PlanEquivalence, JsonRoundTripPreservesBehavior) {
  // The serialized plan IS the deployment: parse(dump()) builds an
  // executor producing the same bytes as the original plan object.
  const std::vector<net::Packet> packets =
      materialize_all(chain2_workload());
  DeploymentPlan deployment = runner_plan(plan::vii_c_chain2());

  auto direct = plan::build(deployment);
  const IndexedRun direct_run =
      drive_runner(dynamic_cast<ChainRunner&>(*direct.executor), packets);

  auto roundtripped = plan::build(DeploymentPlan::parse(deployment.dump()));
  const IndexedRun roundtrip_run = drive_runner(
      dynamic_cast<ChainRunner&>(*roundtripped.executor), packets);

  expect_runs_identical(direct_run, roundtrip_run);
}

}  // namespace
}  // namespace speedybox::runtime
