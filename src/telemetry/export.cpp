#include "telemetry/export.hpp"

#include <cstdio>

namespace speedybox::telemetry {

namespace {

Json histogram_json(const util::LogHistogram& hist) {
  Json j = Json::object();
  j.set("count", Json::integer(hist.count()));
  j.set("mean", Json::number(hist.mean()));
  j.set("p50", Json::number(hist.percentile(50)));
  j.set("p95", Json::number(hist.percentile(95)));
  j.set("p99", Json::number(hist.percentile(99)));
  return j;
}

Json span_json(const PacketSpan& span) {
  Json j = Json::object();
  j.set("flow_hash", Json::integer(span.flow_hash));
  j.set("fid", Json::integer(span.fid));
  j.set("start_cycle", Json::integer(span.start_cycle));
  j.set("fast_path", Json::boolean(span.fast_path));
  j.set("dropped", Json::boolean(span.dropped));
  j.set("complete", Json::boolean(span.complete));
  Json events = Json::array();
  for (const SpanEvent& event : span.events) {
    Json e = Json::object();
    e.set("stage", Json::string(std::string(span_stage_name(event.stage))));
    if (event.nf_index >= 0) {
      e.set("nf", Json::integer(static_cast<std::uint64_t>(event.nf_index)));
    }
    e.set("cycles", Json::integer(event.cycles));
    events.push(std::move(e));
  }
  j.set("events", std::move(events));
  return j;
}

Json shard_json(const ShardSnapshot& shard) {
  Json j = Json::object();
  j.set("shard", Json::string(shard.label));
  if (!shard.tenant.empty()) j.set("tenant", Json::string(shard.tenant));
  Json counters = Json::object();
  for (const auto& [name, value] : shard.counters) {
    counters.set(name, Json::integer(value));
  }
  j.set("counters", std::move(counters));
  Json gauges = Json::object();
  for (const auto& [name, value] : shard.gauges) {
    gauges.set(name, Json::integer(value));
  }
  j.set("gauges", std::move(gauges));
  Json histograms = Json::object();
  for (const auto& [name, hist] : shard.histograms) {
    histograms.set(name, histogram_json(hist));
  }
  j.set("histograms", std::move(histograms));
  Json per_nf = Json::array();
  for (const auto& nf : shard.per_nf) {
    Json n = Json::object();
    n.set("nf", Json::string(nf.label));
    n.set("packets", Json::integer(nf.packets));
    n.set("cycles", histogram_json(nf.cycles));
    per_nf.push(std::move(n));
  }
  j.set("per_nf", std::move(per_nf));
  j.set("spans_sampled", Json::integer(shard.spans_sampled));
  j.set("spans_evicted", Json::integer(shard.spans_dropped));
  Json spans = Json::array();
  for (const PacketSpan& span : shard.spans) {
    spans.push(span_json(span));
  }
  j.set("spans", std::move(spans));
  return j;
}

}  // namespace

Json snapshot_json(const MetricsSnapshot& snapshot) {
  Json j = Json::object();
  j.set("sequence", Json::integer(snapshot.sequence));
  j.set("aggregate", shard_json(snapshot.aggregate()));
  Json shards = Json::array();
  for (const ShardSnapshot& shard : snapshot.shards) {
    shards.push(shard_json(shard));
  }
  j.set("shards", std::move(shards));
  return j;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  return snapshot_json(snapshot).dump();
}

namespace {

/// "name{labels}" with the shard (and, when tenanted, tenant) labels
/// spliced in front of extras.
std::string series(const std::string& name, const ShardSnapshot& shard,
                   const std::string& extra,
                   const std::string& more = "") {
  std::string out = "speedybox_" + name + "{shard=\"" + shard.label + "\"";
  if (!shard.tenant.empty()) out += ",tenant=\"" + shard.tenant + "\"";
  if (!extra.empty()) out += "," + extra;
  if (!more.empty()) out += "," + more;
  out += "}";
  return out;
}

void append_number(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out += buf;
}

void append_histogram(std::string& out, const std::string& name,
                      const ShardSnapshot& shard, const std::string& extra,
                      const std::string& more,
                      const util::LogHistogram& hist) {
  for (const double q : {0.5, 0.95, 0.99}) {
    char qlabel[40];
    std::snprintf(qlabel, sizeof(qlabel), "quantile=\"%g\"", q);
    out += series(name, shard, extra,
                  more.empty() ? qlabel : more + "," + qlabel);
    out.push_back(' ');
    append_number(out, hist.percentile(q * 100.0));
    out.push_back('\n');
  }
  out += series(name + "_sum", shard, extra, more);
  out.push_back(' ');
  append_number(out, hist.mean() * static_cast<double>(hist.count()));
  out.push_back('\n');
  out += series(name + "_count", shard, extra, more);
  out.push_back(' ');
  append_number(out, static_cast<double>(hist.count()));
  out.push_back('\n');
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot,
                          const std::string& extra_labels) {
  std::string out;
  if (snapshot.shards.empty()) return out;
  // TYPE headers once per metric family, from the first shard's key set
  // (every shard exports the same families).
  const ShardSnapshot& first = snapshot.shards.front();
  for (const auto& [name, value] : first.counters) {
    out += "# TYPE speedybox_" + name + "_total counter\n";
  }
  for (const auto& [name, value] : first.gauges) {
    out += "# TYPE speedybox_" + name + " gauge\n";
  }
  for (const auto& [name, hist] : first.histograms) {
    out += "# TYPE speedybox_" + name + " summary\n";
  }
  out += "# TYPE speedybox_nf_cycles summary\n";
  out += "# TYPE speedybox_nf_packets_total counter\n";

  for (const ShardSnapshot& shard : snapshot.shards) {
    for (const auto& [name, value] : shard.counters) {
      out += series(name + "_total", shard, extra_labels);
      out.push_back(' ');
      append_number(out, static_cast<double>(value));
      out.push_back('\n');
    }
    for (const auto& [name, value] : shard.gauges) {
      out += series(name, shard, extra_labels);
      out.push_back(' ');
      append_number(out, static_cast<double>(value));
      out.push_back('\n');
    }
    for (const auto& [name, hist] : shard.histograms) {
      append_histogram(out, name, shard, extra_labels, "", hist);
    }
    for (const auto& nf : shard.per_nf) {
      const std::string nf_label = "nf=\"" + nf.label + "\"";
      out += series("nf_packets_total", shard, extra_labels, nf_label);
      out.push_back(' ');
      append_number(out, static_cast<double>(nf.packets));
      out.push_back('\n');
      append_histogram(out, "nf_cycles", shard, extra_labels, nf_label,
                       nf.cycles);
    }
  }
  return out;
}

bool append_line(const std::string& path, const std::string& line) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) return false;
  const bool ok =
      std::fwrite(line.data(), 1, line.size(), file) == line.size() &&
      std::fputc('\n', file) != EOF;
  return std::fclose(file) == 0 && ok;
}

Snapshotter::Snapshotter(const Registry& registry, std::string path,
                         std::chrono::milliseconds period)
    : registry_(registry), path_(std::move(path)), period_(period) {
  thread_ = std::thread([this] { run(); });
}

Snapshotter::~Snapshotter() { stop(); }

void Snapshotter::stop() {
  {
    const std::lock_guard lock(mutex_);
    if (stopping_ && !thread_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Snapshotter::run() {
  for (;;) {
    bool stopping;
    {
      std::unique_lock lock(mutex_);
      stopping = cv_.wait_for(lock, period_, [this] { return stopping_; });
    }
    if (append_line(path_, to_json(registry_.snapshot()))) {
      written_.fetch_add(1, std::memory_order_relaxed);
    }
    if (stopping) return;  // final snapshot already written above
  }
}

}  // namespace speedybox::telemetry
