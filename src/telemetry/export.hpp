// Machine-readable exporters for MetricsSnapshot, plus the periodic
// background snapshotter.
//
//   to_json()        one JSON object: aggregate + per-shard metrics,
//                    per-NF cycle histograms, and the sampled packet spans.
//   to_prometheus()  Prometheus text exposition format. Counters/gauges map
//                    1:1; cycle histograms export as summaries
//                    (quantile-labeled series + _sum/_count), which keeps
//                    the output small regardless of bucket count.
//   Snapshotter      a thread that appends one JSON snapshot line to a file
//                    every `period` — JSON-lines, so a run's trajectory can
//                    be tailed live and parsed row by row.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace speedybox::telemetry {

/// JSON value for one snapshot (callers wanting to embed it — chainsim adds
/// run parameters around it — use this; to_json() is the plain dump).
Json snapshot_json(const MetricsSnapshot& snapshot);
std::string to_json(const MetricsSnapshot& snapshot);

/// Prometheus text format. Metric names are prefixed `speedybox_`; shard
/// and NF identities become labels. `extra_labels` (e.g. mode="speedybox")
/// is spliced into every series.
std::string to_prometheus(const MetricsSnapshot& snapshot,
                          const std::string& extra_labels = "");

/// Append `line` plus '\n' to `path` (creating it if needed). Returns
/// false on I/O failure.
bool append_line(const std::string& path, const std::string& line);

/// Periodic background snapshotter: every `period`, take a Registry
/// snapshot and append it as one JSON line to `path`. The registry must
/// outlive the snapshotter. stop() (or destruction) wakes the thread,
/// writes one final snapshot, and joins.
class Snapshotter {
 public:
  Snapshotter(const Registry& registry, std::string path,
              std::chrono::milliseconds period);
  ~Snapshotter();

  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  void stop();

  std::uint64_t snapshots_written() const noexcept {
    return written_.load(std::memory_order_relaxed);
  }

 private:
  void run();

  const Registry& registry_;
  const std::string path_;
  const std::chrono::milliseconds period_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> written_{0};
  std::thread thread_;
};

}  // namespace speedybox::telemetry
