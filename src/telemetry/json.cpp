#include "telemetry/json.hpp"

#include <cmath>
#include <cstdio>

namespace speedybox::telemetry {

Json& Json::set(std::string key, Json value) {
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  elements_.push_back(std::move(value));
  return *this;
}

namespace {

void escape_into(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

void Json::render(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInteger: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(integer_));
      out += buf;
      break;
    }
    case Kind::kNumber: {
      if (!std::isfinite(number_)) {  // JSON has no inf/nan
        out += "null";
        break;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", number_);
      // Prefer the shorter %.15g form when it round-trips.
      char shorter[32];
      std::snprintf(shorter, sizeof(shorter), "%.15g", number_);
      double parsed = 0.0;
      if (std::sscanf(shorter, "%lf", &parsed) == 1 && parsed == number_) {
        out += shorter;
      } else {
        out += buf;
      }
      break;
    }
    case Kind::kString:
      escape_into(string_, out);
      break;
    case Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) out.push_back(',');
        first = false;
        escape_into(key, out);
        out.push_back(':');
        value.render(out);
      }
      out.push_back('}');
      break;
    }
    case Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& value : elements_) {
        if (!first) out.push_back(',');
        first = false;
        value.render(out);
      }
      out.push_back(']');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  render(out);
  return out;
}

}  // namespace speedybox::telemetry
