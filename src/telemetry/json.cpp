#include "telemetry/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace speedybox::telemetry {

Json& Json::set(std::string key, Json value) {
  // Replace-on-rewrite: objects hold one value per key (RFC 8259 treats
  // duplicates as undefined, and the bench emitters re-set fields like
  // "rate_mpps" after config_row populated them).
  for (auto& [name, member] : members_) {
    if (name == key) {
      member = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  elements_.push_back(std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

void escape_into(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

void Json::render(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInteger: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(integer_));
      out += buf;
      break;
    }
    case Kind::kNumber: {
      if (!std::isfinite(number_)) {  // JSON has no inf/nan
        out += "null";
        break;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", number_);
      // Prefer the shorter %.15g form when it round-trips.
      char shorter[32];
      std::snprintf(shorter, sizeof(shorter), "%.15g", number_);
      double parsed = 0.0;
      if (std::sscanf(shorter, "%lf", &parsed) == 1 && parsed == number_) {
        out += shorter;
      } else {
        out += buf;
      }
      break;
    }
    case Kind::kString:
      escape_into(string_, out);
      break;
    case Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) out.push_back(',');
        first = false;
        escape_into(key, out);
        out.push_back(':');
        value.render(out);
      }
      out.push_back('}');
      break;
    }
    case Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& value : elements_) {
        if (!first) out.push_back(',');
        first = false;
        value.render(out);
      }
      out.push_back(']');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  render(out);
  return out;
}

namespace {

/// Recursive-descent RFC 8259 parser over a string_view cursor. Depth is
/// bounded so a hostile input cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run() {
    skip_ws();
    std::optional<Json> value = parse_value(0);
    if (!value) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::optional<Json> parse_value(int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        std::optional<std::string> s = parse_string();
        if (!s) return std::nullopt;
        return Json::string(std::move(*s));
      }
      case 't':
        return consume_literal("true") ? std::optional<Json>(
                                             Json::boolean(true))
                                       : std::nullopt;
      case 'f':
        return consume_literal("false") ? std::optional<Json>(
                                              Json::boolean(false))
                                        : std::nullopt;
      case 'n':
        return consume_literal("null") ? std::optional<Json>(Json{})
                                       : std::nullopt;
      default:
        return parse_number();
    }
  }

  std::optional<Json> parse_object(int depth) {
    ++pos_;  // '{'
    Json object = Json::object();
    skip_ws();
    if (consume('}')) return object;
    while (true) {
      skip_ws();
      std::optional<std::string> key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      skip_ws();
      std::optional<Json> value = parse_value(depth + 1);
      if (!value) return std::nullopt;
      object.set(std::move(*key), std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return object;
      return std::nullopt;
    }
  }

  std::optional<Json> parse_array(int depth) {
    ++pos_;  // '['
    Json array = Json::array();
    skip_ws();
    if (consume(']')) return array;
    while (true) {
      skip_ws();
      std::optional<Json> value = parse_value(depth + 1);
      if (!value) return std::nullopt;
      array.push(std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return array;
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return std::nullopt;
            }
            // Our emitter only escapes control characters; decode BMP code
            // points as UTF-8 (surrogate pairs unsupported — reject).
            if (code >= 0xD800 && code <= 0xDFFF) return std::nullopt;
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return std::nullopt;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return std::nullopt;  // raw control character
      } else {
        out.push_back(c);
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return std::nullopt;
    }
    // Leading zero may not be followed by another digit (RFC 8259).
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      return std::nullopt;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = text_[start] != '-';
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return std::nullopt;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return std::nullopt;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token{text_.substr(start, pos_ - start)};
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Json::integer(value);
      }
      // Out of u64 range: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return std::nullopt;
    return Json::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return Parser{text}.run();
}

}  // namespace speedybox::telemetry
