// Telemetry metric registry: lock-free per-shard counters, gauges and
// log-bucketed cycle histograms, aggregated on snapshot.
//
// Concurrency contract (DESIGN.md "Telemetry"): every cell has exactly ONE
// writer thread for its whole life — the same single-writer-per-shard
// discipline the sharded runtime applies to flow state. Writers mutate via
// relaxed load+store (no lock prefix: a relaxed non-contended RMW is just a
// register increment plus a plain store on x86), and snapshot readers load
// relaxed from any thread at any time. Because writer and reader never
// require each other's ordering, relaxed atomics make this exactly as cheap
// as plain fields while staying data-race-free (TSan-clean with the
// background snapshotter running mid-run).
//
// Different cells of one ShardMetrics may have different writers (the
// sharded dispatcher owns ring_occupancy/backpressure_yields while the
// shard worker owns everything else) — the contract is per cell, not per
// struct.
//
// Data-path cost when telemetry is off: the instrumented executors keep a
// `ShardMetrics*` that is null when no registry is attached, so every hook
// is one perfectly predicted branch; no telemetry object is ever allocated.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/span.hpp"
#include "util/histogram.hpp"

namespace speedybox::telemetry {

/// Single-writer relaxed cell: the building block of all metrics.
class RelaxedCell {
 public:
  /// Writer-thread only.
  void add(std::uint64_t delta = 1) noexcept {
    value_.store(value_.load(std::memory_order_relaxed) + delta,
                 std::memory_order_relaxed);
  }
  void set(std::uint64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  /// Any thread.
  std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

using Counter = RelaxedCell;  // monotonic
using Gauge = RelaxedCell;    // set to the latest value

/// Lock-free mirror of util::LogHistogram: same eighth-octave bucket
/// geometry, atomic single-writer buckets, materialized as a LogHistogram
/// on snapshot (so percentile math lives in exactly one place).
class CycleHistogram {
 public:
  CycleHistogram() : buckets_(util::LogHistogram::raw_bucket_count()) {}

  /// Writer-thread only.
  void record(std::uint64_t cycles) noexcept {
    const int index =
        util::LogHistogram::raw_bucket_index(static_cast<double>(cycles));
    buckets_[static_cast<std::size_t>(index)].add(1);
    sum_.add(cycles);
  }

  /// Any thread; consistent enough for monitoring (buckets are read one by
  /// one while the writer may still be adding — each bucket is exact, the
  /// total lags by at most the in-flight record()).
  util::LogHistogram snapshot() const;

 private:
  std::vector<RelaxedCell> buckets_;
  RelaxedCell sum_;
};

/// Per-NF attribution: slow-path (recording / original chain) work cycles.
struct NfMetrics {
  explicit NfMetrics(std::string nf_label) : label(std::move(nf_label)) {}
  std::string label;
  Counter packets;        // slow-path traversals of this NF
  CycleHistogram cycles;  // measured work cycles per traversal
};

/// One executor instance's metrics (a shard worker, a single-threaded
/// ChainRunner, the pipeline manager, or the sharded dispatcher).
struct ShardMetrics {
  ShardMetrics(std::string shard_label, std::vector<std::string> nf_labels,
               std::uint32_t span_sample_every_n,
               std::string tenant_label = {});

  const std::string label;
  /// Tenant this executor instance serves (DESIGN.md §14); empty in
  /// single-chain deployments. A first-class label dimension in both
  /// exporters, never folded into `label`.
  const std::string tenant;

  // -- counters --
  Counter packets;              // packets processed
  Counter drops;
  Counter mat_hits;             // fast path served from the Global MAT
  Counter mat_misses;           // initial packets (recording traversal)
  Counter classifier_lookups;
  Counter events_triggered;
  Counter consolidations;
  Counter teardowns;            // FIN/RST flow teardowns
  Counter held_packets;         // pipeline: packets held during recording
  Counter backpressure_yields;  // dispatcher: yields on a full ring

  // -- overload & fault counters (DESIGN.md §9). `drops` above excludes
  // -- faulted packets; the shed counters never overlap `packets`. --
  Counter admitted;          // passed the ingress gate
  Counter shed_admission;    // token bucket empty
  Counter shed_watermark;    // queue pressure shed (any policy)
  Counter shed_early_drop;   // MAT-doomed flow shed at ingress
  Counter faulted;           // lost to an injected NF failure
  Counter degraded_flows;    // flows given the degraded default rule
  Counter degraded_packets;  // packets that executed a default rule

  // -- autoscaling control plane (DESIGN.md §10). Written only by the
  // -- controller's own metric shard (the dispatcher thread is the single
  // -- writer); zero on every data shard. --
  Counter scale_events;    // resharding operations executed
  Counter migrated_flows;  // flows moved between shards, cumulative

  // -- live ingestion front-end (DESIGN.md §11). Written only by the
  // -- ingest thread's own metric shard ("<label>/ingest"); zero on every
  // -- data shard. --
  Counter rx_bytes;      // wire bytes read off the sockets
  Counter rx_frames;     // frames decoded into packet descriptors
  Counter rx_batches;    // batches staged to the executor sink
  Counter parse_errors;  // frames the wire parser rejected
  Counter socket_drops;  // datagrams lost to receive-queue overflow

  // -- flow-table engine (DESIGN.md §13). Cumulative incremental-resize
  // -- steps plus occupancy/probe/slab gauges, aggregated over the shard's
  // -- tables (classifier, Global MAT, per-NF state). --
  Counter flow_table_resize_steps;

  // -- gauges --
  Gauge ring_occupancy;   // ingress ring depth at last push
  Gauge ring_capacity;
  Gauge active_flows;     // classifier flow-table size
  Gauge ring_burst_size;  // dispatcher: size of the last burst push
  Gauge queue_depth;      // overload gate: virtual/real queue depth
  Gauge active_shards;    // controller: shards currently receiving flows
  Gauge flow_table_entries;     // live entries across the shard's tables
  Gauge flow_table_capacity;    // allocated slots across the tables
  Gauge flow_table_slab_bytes;  // slab-arena bytes backing flow records
  Gauge flow_table_max_probe;   // worst probe sequence observed

  /// One-call refresh of the flow-table cells from an aggregated
  /// core::FlowTableStats (raw values, so telemetry stays independent of
  /// core). resize_steps is already cumulative in the stats, hence set().
  void set_flow_table(std::uint64_t entries, std::uint64_t capacity,
                      std::uint64_t slab_bytes, std::uint64_t max_probe,
                      std::uint64_t resize_steps) noexcept {
    flow_table_entries.set(entries);
    flow_table_capacity.set(capacity);
    flow_table_slab_bytes.set(slab_bytes);
    flow_table_max_probe.set(max_probe);
    flow_table_resize_steps.set(resize_steps);
  }

  // -- cycle histograms --
  CycleHistogram fastpath_cycles;     // classify + event check + HA + SFs
  CycleHistogram slowpath_cycles;     // whole recording/original traversal
  CycleHistogram classify_cycles;     // slow path only (fast path folds the
                                      // classifier into fastpath_cycles)
  CycleHistogram consolidate_cycles;
  /// Batch fill level per process_batch call (worker-owned): how full the
  /// bursts actually run — tails and trickle traffic show up as mass at
  /// small occupancies. Value histogram, same lock-free cell layout as the
  /// cycle histograms.
  CycleHistogram batch_occupancy;
  /// Time-in-degraded: length of each completed degradation episode, in
  /// packet arrivals (value histogram).
  CycleHistogram degraded_episode_packets;
  /// Controller: cycles spent inside each resharding operation (quiesce +
  /// state migration + worker lifecycle), one sample per scale event.
  CycleHistogram migration_cycles;
  /// Ingest front-end: cycles between a frame's socket read and its
  /// hand-off to the executor sink (batch staging wait included) — the
  /// I/O-path contribution to end-to-end latency.
  CycleHistogram ingest_cycles;

  /// Indexed by chain position. deque: NfMetrics holds atomics (immovable)
  /// and deque constructs in place without ever relocating elements.
  std::deque<NfMetrics> per_nf;

  /// Sampled packet spans (1-in-N by five-tuple hash).
  SpanRecorder spans;
};

/// Point-in-time view of one ShardMetrics (plain values, no atomics).
struct ShardSnapshot {
  std::string label;
  std::string tenant;  // empty when untenanted (and on aggregate())
  /// Stable, export-ordered (name, value) pairs.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::uint64_t>> gauges;
  std::vector<std::pair<std::string, util::LogHistogram>> histograms;
  struct NfSnapshot {
    std::string label;
    std::uint64_t packets = 0;
    util::LogHistogram cycles;
  };
  std::vector<NfSnapshot> per_nf;
  std::vector<PacketSpan> spans;
  std::uint64_t spans_sampled = 0;
  std::uint64_t spans_dropped = 0;
};

struct MetricsSnapshot {
  /// Monotonic snapshot index (per Registry).
  std::uint64_t sequence = 0;
  std::vector<ShardSnapshot> shards;
  /// Cross-shard roll-up: counters/gauges summed, histograms merged,
  /// spans concatenated, per-NF merged by chain position.
  ShardSnapshot aggregate() const;
};

/// Owns every ShardMetrics instance; registration is control-plane
/// (mutex-protected), reads/writes of the cells are lock-free.
class Registry {
 public:
  /// N=0 disables span sampling; otherwise flows whose five-tuple hash
  /// satisfies hash % N == 0 are traced.
  explicit Registry(std::uint32_t span_sample_every_n = 0)
      : span_sample_every_n_(span_sample_every_n) {}

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Create (and own) metrics for one executor instance. The returned
  /// reference is stable for the Registry's lifetime. `nf_labels` sizes the
  /// per-NF attribution (empty for executors that don't attribute per NF).
  ShardMetrics& create_shard(std::string label,
                             std::vector<std::string> nf_labels = {});

  /// Scope every subsequent create_shard() to `tenant_id` (empty clears).
  /// Lets a tenant host stamp the tenant dimension onto shards registered
  /// deep inside Executor::attach_telemetry without widening that
  /// interface. Control-plane only, like create_shard.
  void set_tenant(std::string tenant_id);
  std::string tenant() const;

  std::uint32_t span_sample_every_n() const noexcept {
    return span_sample_every_n_;
  }

  /// Any thread, any time (including mid-run: the lock only excludes
  /// concurrent registration, never the data-path writers).
  MetricsSnapshot snapshot() const;

 private:
  const std::uint32_t span_sample_every_n_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ShardMetrics>> shards_;
  std::string tenant_;
  mutable std::uint64_t sequence_ = 0;
};

/// RAII tenant scoping: stamps `tenant_id` onto every shard registered
/// within the scope, restoring the previous scope on exit (scopes nest).
class TenantScope {
 public:
  TenantScope(Registry& registry, std::string tenant_id)
      : registry_(registry), previous_(registry.tenant()) {
    registry_.set_tenant(std::move(tenant_id));
  }
  ~TenantScope() { registry_.set_tenant(std::move(previous_)); }
  TenantScope(const TenantScope&) = delete;
  TenantScope& operator=(const TenantScope&) = delete;

 private:
  Registry& registry_;
  std::string previous_;
};

}  // namespace speedybox::telemetry
