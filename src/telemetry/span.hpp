// Sampled packet span tracing: 1-in-N flows (by five-tuple hash) get their
// packets' full journey recorded — parse/classify, then either the MAT fast
// path (header-action apply + state-function batches) or the per-NF
// recording traversal plus consolidation — with cycle offsets from span
// start.
//
// Spans are reconstructed AFTER the packet finishes, from the cycle values
// the executor already measured for its latency accounting, so tracing
// never adds work inside a measured region and sampled packets report the
// same cycle numbers as unsampled ones.
//
// Concurrency: one SpanRecorder per shard. The recording side (begin/event/
// finish) is single-writer — the shard's worker thread. finish() moves the
// completed span into a bounded buffer under a mutex shared with
// snapshot(); the lock is only ever taken for sampled packets (1-in-N
// flows), never on the common path.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string_view>
#include <vector>

namespace speedybox::telemetry {

enum class SpanStage : std::uint8_t {
  kClassify,        // parse + classifier lookup
  kNf,              // one NF of the recording/original traversal
  kConsolidate,     // Global MAT consolidation (initial packet)
  kHeaderAction,    // fast path: event check + consolidated header action
  kStateFunctions,  // fast path: state-function batches
  kDrop,
  kDone,
};

std::string_view span_stage_name(SpanStage stage) noexcept;

struct SpanEvent {
  SpanStage stage = SpanStage::kDone;
  /// Chain position for kNf events, -1 otherwise.
  int nf_index = -1;
  /// Cycle offset from span start at which this stage COMPLETED.
  std::uint64_t cycles = 0;
};

struct PacketSpan {
  std::uint64_t flow_hash = 0;  // five-tuple hash the sampler keyed on
  std::uint32_t fid = 0;
  std::uint64_t start_cycle = 0;  // CycleClock stamp at packet entry
  bool fast_path = false;
  bool dropped = false;
  /// True once kDone/kDrop is recorded — the packet's whole journey is in
  /// `events`.
  bool complete = false;
  std::vector<SpanEvent> events;
};

class SpanRecorder {
 public:
  /// `sample_every_n == 0` disables sampling entirely; `max_spans` bounds
  /// the completed-span buffer (oldest spans are evicted, eviction count
  /// reported so truncation is never silent).
  explicit SpanRecorder(std::uint32_t sample_every_n = 0,
                        std::size_t max_spans = 256);

  bool enabled() const noexcept { return sample_every_n_ != 0; }

  /// Sampling decision — pure function of the flow hash, so every packet
  /// of a sampled flow is traced and flows keep shard affinity of their
  /// spans.
  bool should_sample(std::uint64_t flow_hash) const noexcept {
    return sample_every_n_ != 0 && flow_hash % sample_every_n_ == 0;
  }

  // -- recording side (shard worker thread only) --
  void begin(std::uint64_t flow_hash, std::uint32_t fid,
             std::uint64_t start_cycle);
  void event(SpanStage stage, std::uint64_t cycles, int nf_index = -1);
  /// Seals the current span (appends kDrop/kDone) and publishes it.
  void finish(bool fast_path, bool dropped, std::uint64_t total_cycles);

  // -- snapshot side (any thread) --
  std::vector<PacketSpan> snapshot() const;
  std::uint64_t sampled_total() const noexcept {
    return sampled_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t evicted_total() const noexcept {
    return evicted_total_.load(std::memory_order_relaxed);
  }

 private:
  const std::uint32_t sample_every_n_;
  const std::size_t max_spans_;

  // Worker-local in-progress span.
  PacketSpan current_;
  bool active_ = false;

  mutable std::mutex mutex_;
  std::deque<PacketSpan> completed_;
  std::atomic<std::uint64_t> sampled_total_{0};
  std::atomic<std::uint64_t> evicted_total_{0};
};

}  // namespace speedybox::telemetry
