#include "telemetry/span.hpp"

namespace speedybox::telemetry {

std::string_view span_stage_name(SpanStage stage) noexcept {
  switch (stage) {
    case SpanStage::kClassify: return "classify";
    case SpanStage::kNf: return "nf";
    case SpanStage::kConsolidate: return "consolidate";
    case SpanStage::kHeaderAction: return "header_action";
    case SpanStage::kStateFunctions: return "state_functions";
    case SpanStage::kDrop: return "drop";
    case SpanStage::kDone: return "done";
  }
  return "?";
}

SpanRecorder::SpanRecorder(std::uint32_t sample_every_n,
                           std::size_t max_spans)
    : sample_every_n_(sample_every_n),
      max_spans_(max_spans < 1 ? 1 : max_spans) {}

void SpanRecorder::begin(std::uint64_t flow_hash, std::uint32_t fid,
                         std::uint64_t start_cycle) {
  current_ = PacketSpan{};
  current_.flow_hash = flow_hash;
  current_.fid = fid;
  current_.start_cycle = start_cycle;
  active_ = true;
}

void SpanRecorder::event(SpanStage stage, std::uint64_t cycles,
                         int nf_index) {
  if (!active_) return;
  current_.events.push_back({stage, nf_index, cycles});
}

void SpanRecorder::finish(bool fast_path, bool dropped,
                          std::uint64_t total_cycles) {
  if (!active_) return;
  current_.fast_path = fast_path;
  current_.dropped = dropped;
  current_.events.push_back(
      {dropped ? SpanStage::kDrop : SpanStage::kDone, -1, total_cycles});
  current_.complete = true;
  active_ = false;
  sampled_total_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard lock(mutex_);
    if (completed_.size() >= max_spans_) {
      completed_.pop_front();
      evicted_total_.fetch_add(1, std::memory_order_relaxed);
    }
    completed_.push_back(std::move(current_));
  }
  current_ = PacketSpan{};
}

std::vector<PacketSpan> SpanRecorder::snapshot() const {
  const std::lock_guard lock(mutex_);
  return {completed_.begin(), completed_.end()};
}

}  // namespace speedybox::telemetry
