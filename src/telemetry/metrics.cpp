#include "telemetry/metrics.hpp"

namespace speedybox::telemetry {

util::LogHistogram CycleHistogram::snapshot() const {
  std::vector<std::uint64_t> counts(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].get();
  }
  return util::LogHistogram::from_raw(counts.data(),
                                      static_cast<int>(counts.size()),
                                      static_cast<double>(sum_.get()));
}

ShardMetrics::ShardMetrics(std::string shard_label,
                           std::vector<std::string> nf_labels,
                           std::uint32_t span_sample_every_n,
                           std::string tenant_label)
    : label(std::move(shard_label)),
      tenant(std::move(tenant_label)),
      spans(span_sample_every_n) {
  for (auto& nf_label : nf_labels) {
    per_nf.emplace_back(std::move(nf_label));
  }
}

ShardMetrics& Registry::create_shard(std::string label,
                                     std::vector<std::string> nf_labels) {
  const std::lock_guard lock(mutex_);
  shards_.push_back(std::make_unique<ShardMetrics>(
      std::move(label), std::move(nf_labels), span_sample_every_n_,
      tenant_));
  return *shards_.back();
}

void Registry::set_tenant(std::string tenant_id) {
  const std::lock_guard lock(mutex_);
  tenant_ = std::move(tenant_id);
}

std::string Registry::tenant() const {
  const std::lock_guard lock(mutex_);
  return tenant_;
}

namespace {

ShardSnapshot snapshot_shard(const ShardMetrics& shard) {
  ShardSnapshot snap;
  snap.label = shard.label;
  snap.tenant = shard.tenant;
  snap.counters = {
      {"packets", shard.packets.get()},
      {"drops", shard.drops.get()},
      {"mat_hits", shard.mat_hits.get()},
      {"mat_misses", shard.mat_misses.get()},
      {"classifier_lookups", shard.classifier_lookups.get()},
      {"events_triggered", shard.events_triggered.get()},
      {"consolidations", shard.consolidations.get()},
      {"teardowns", shard.teardowns.get()},
      {"held_packets", shard.held_packets.get()},
      {"backpressure_yields", shard.backpressure_yields.get()},
      {"admitted", shard.admitted.get()},
      {"shed_admission", shard.shed_admission.get()},
      {"shed_watermark", shard.shed_watermark.get()},
      {"shed_early_drop", shard.shed_early_drop.get()},
      {"faulted", shard.faulted.get()},
      {"degraded_flows", shard.degraded_flows.get()},
      {"degraded_packets", shard.degraded_packets.get()},
      {"scale_events", shard.scale_events.get()},
      {"migrated_flows", shard.migrated_flows.get()},
      {"rx_bytes", shard.rx_bytes.get()},
      {"rx_frames", shard.rx_frames.get()},
      {"rx_batches", shard.rx_batches.get()},
      {"parse_errors", shard.parse_errors.get()},
      {"socket_drops", shard.socket_drops.get()},
      {"flow_table_resize_steps", shard.flow_table_resize_steps.get()},
  };
  snap.gauges = {
      {"ring_occupancy", shard.ring_occupancy.get()},
      {"ring_capacity", shard.ring_capacity.get()},
      {"active_flows", shard.active_flows.get()},
      {"ring_burst_size", shard.ring_burst_size.get()},
      {"queue_depth", shard.queue_depth.get()},
      {"active_shards", shard.active_shards.get()},
      {"flow_table_entries", shard.flow_table_entries.get()},
      {"flow_table_capacity", shard.flow_table_capacity.get()},
      {"flow_table_slab_bytes", shard.flow_table_slab_bytes.get()},
      {"flow_table_max_probe", shard.flow_table_max_probe.get()},
  };
  snap.histograms = {
      {"fastpath_cycles", shard.fastpath_cycles.snapshot()},
      {"slowpath_cycles", shard.slowpath_cycles.snapshot()},
      {"classify_cycles", shard.classify_cycles.snapshot()},
      {"consolidate_cycles", shard.consolidate_cycles.snapshot()},
      {"batch_occupancy", shard.batch_occupancy.snapshot()},
      {"degraded_episode_packets",
       shard.degraded_episode_packets.snapshot()},
      {"migration_cycles", shard.migration_cycles.snapshot()},
      {"ingest_cycles", shard.ingest_cycles.snapshot()},
  };
  snap.per_nf.reserve(shard.per_nf.size());
  for (const NfMetrics& nf : shard.per_nf) {
    snap.per_nf.push_back(
        {nf.label, nf.packets.get(), nf.cycles.snapshot()});
  }
  snap.spans = shard.spans.snapshot();
  snap.spans_sampled = shard.spans.sampled_total();
  snap.spans_dropped = shard.spans.evicted_total();
  return snap;
}

}  // namespace

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.sequence = sequence_++;
  snap.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    snap.shards.push_back(snapshot_shard(*shard));
  }
  return snap;
}

ShardSnapshot MetricsSnapshot::aggregate() const {
  ShardSnapshot total;
  total.label = "all";
  for (const ShardSnapshot& shard : shards) {
    const auto merge_pairs = [](auto& into, const auto& from) {
      for (const auto& [name, value] : from) {
        bool found = false;
        for (auto& [existing, sum] : into) {
          if (existing == name) {
            sum += value;
            found = true;
            break;
          }
        }
        if (!found) into.push_back({name, value});
      }
    };
    merge_pairs(total.counters, shard.counters);
    merge_pairs(total.gauges, shard.gauges);
    for (const auto& [name, hist] : shard.histograms) {
      bool found = false;
      for (auto& [existing, merged] : total.histograms) {
        if (existing == name) {
          merged.merge(hist);
          found = true;
          break;
        }
      }
      if (!found) total.histograms.push_back({name, hist});
    }
    for (std::size_t i = 0; i < shard.per_nf.size(); ++i) {
      if (total.per_nf.size() <= i) {
        total.per_nf.push_back(shard.per_nf[i]);
      } else {
        total.per_nf[i].packets += shard.per_nf[i].packets;
        total.per_nf[i].cycles.merge(shard.per_nf[i].cycles);
      }
    }
    total.spans.insert(total.spans.end(), shard.spans.begin(),
                       shard.spans.end());
    total.spans_sampled += shard.spans_sampled;
    total.spans_dropped += shard.spans_dropped;
  }
  return total;
}

}  // namespace speedybox::telemetry
