// Minimal JSON value tree + serializer/parser — just enough for the
// telemetry exporters, the bench harness's BENCH_*.json files, and the
// perf-regression gate that reads them back. Build values with the static
// factories, dump() renders compact RFC 8259 output (string escaping,
// integer-exact u64, shortest-round-trip doubles); parse() accepts any
// RFC 8259 document and round-trips everything dump() emits.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace speedybox::telemetry {

class Json {
 public:
  Json() : kind_(Kind::kNull) {}

  static Json object() { Json j; j.kind_ = Kind::kObject; return j; }
  static Json array() { Json j; j.kind_ = Kind::kArray; return j; }
  static Json string(std::string value) {
    Json j;
    j.kind_ = Kind::kString;
    j.string_ = std::move(value);
    return j;
  }
  static Json number(double value) {
    Json j;
    j.kind_ = Kind::kNumber;
    j.number_ = value;
    return j;
  }
  static Json integer(std::uint64_t value) {
    Json j;
    j.kind_ = Kind::kInteger;
    j.integer_ = value;
    return j;
  }
  static Json boolean(bool value) {
    Json j;
    j.kind_ = Kind::kBool;
    j.bool_ = value;
    return j;
  }

  /// Object member (insertion order preserved). Returns *this for chaining.
  Json& set(std::string key, Json value);
  /// Array element.
  Json& push(Json value);

  std::string dump() const;

  /// Parse an RFC 8259 document (single value, trailing whitespace only).
  /// Returns std::nullopt on any syntax error. Non-negative integral
  /// numbers without fraction/exponent parse as kInteger (u64-exact),
  /// everything else numeric as kNumber.
  static std::optional<Json> parse(std::string_view text);

  // -- Read-side accessors (for parse() consumers: the bench gate and the
  //    schema validator). as_*() return the natural zero value on a kind
  //    mismatch; check the is_*() predicates when the distinction matters.
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_integer() const noexcept { return kind_ == Kind::kInteger; }
  /// True for both kNumber and kInteger (any JSON number).
  bool is_number() const noexcept {
    return kind_ == Kind::kNumber || kind_ == Kind::kInteger;
  }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }

  bool as_bool() const noexcept { return bool_; }
  std::uint64_t as_integer() const noexcept { return integer_; }
  double as_number() const noexcept {
    return kind_ == Kind::kInteger ? static_cast<double>(integer_)
                                   : number_;
  }
  const std::string& as_string() const noexcept { return string_; }

  /// Object lookup (first match in insertion order); nullptr when absent
  /// or when this value is not an object.
  const Json* find(std::string_view key) const noexcept;
  const std::vector<std::pair<std::string, Json>>& members() const noexcept {
    return members_;
  }
  const std::vector<Json>& elements() const noexcept { return elements_; }

 private:
  enum class Kind { kNull, kBool, kInteger, kNumber, kString, kObject,
                    kArray };

  void render(std::string& out) const;

  Kind kind_;
  bool bool_ = false;
  std::uint64_t integer_ = 0;
  double number_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> elements_;
};

}  // namespace speedybox::telemetry
