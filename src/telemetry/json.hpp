// Minimal JSON value tree + serializer — just enough for the telemetry
// exporters and the bench harness's BENCH_*.json files. Build values with
// the static factories, dump() renders compact RFC 8259 output (string
// escaping, integer-exact u64, shortest-round-trip doubles).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace speedybox::telemetry {

class Json {
 public:
  Json() : kind_(Kind::kNull) {}

  static Json object() { Json j; j.kind_ = Kind::kObject; return j; }
  static Json array() { Json j; j.kind_ = Kind::kArray; return j; }
  static Json string(std::string value) {
    Json j;
    j.kind_ = Kind::kString;
    j.string_ = std::move(value);
    return j;
  }
  static Json number(double value) {
    Json j;
    j.kind_ = Kind::kNumber;
    j.number_ = value;
    return j;
  }
  static Json integer(std::uint64_t value) {
    Json j;
    j.kind_ = Kind::kInteger;
    j.integer_ = value;
    return j;
  }
  static Json boolean(bool value) {
    Json j;
    j.kind_ = Kind::kBool;
    j.bool_ = value;
    return j;
  }

  /// Object member (insertion order preserved). Returns *this for chaining.
  Json& set(std::string key, Json value);
  /// Array element.
  Json& push(Json value);

  std::string dump() const;

 private:
  enum class Kind { kNull, kBool, kInteger, kNumber, kString, kObject,
                    kArray };

  void render(std::string& out) const;

  Kind kind_;
  bool bool_ = false;
  std::uint64_t integer_ = 0;
  double number_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> elements_;
};

}  // namespace speedybox::telemetry
