// The transport five-tuple: flow identity for classification, NAT tables and
// FID generation. Addresses/ports are kept in host byte order here; raw
// packet bytes are network order (see byte_order.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "util/hash.hpp"

namespace speedybox::net {

/// IP protocol numbers we care about.
enum class IpProto : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
  kAh = 51,  // IPSec Authentication Header (used by the VPN-style encap)
};

/// IPv4 address, host byte order. Value type.
struct Ipv4Addr {
  std::uint32_t value = 0;

  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t v) : value(v) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value((static_cast<std::uint32_t>(a) << 24) |
              (static_cast<std::uint32_t>(b) << 16) |
              (static_cast<std::uint32_t>(c) << 8) | d) {}

  friend constexpr bool operator==(Ipv4Addr, Ipv4Addr) = default;
  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

  std::string to_string() const {
    return std::to_string(value >> 24) + "." +
           std::to_string((value >> 16) & 0xFF) + "." +
           std::to_string((value >> 8) & 0xFF) + "." +
           std::to_string(value & 0xFF);
  }
};

struct FiveTuple {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = static_cast<std::uint8_t>(IpProto::kTcp);

  friend constexpr bool operator==(const FiveTuple&,
                                   const FiveTuple&) = default;

  /// 64-bit hash over all five fields; the classifier truncates this to a
  /// 20-bit FID (§VI-B).
  constexpr std::uint64_t hash() const noexcept {
    std::uint64_t h = util::mix64(src_ip.value);
    h = util::hash_combine(h, dst_ip.value);
    h = util::hash_combine(h, (static_cast<std::uint64_t>(src_port) << 16) |
                                  dst_port);
    h = util::hash_combine(h, proto);
    return h;
  }

  /// Direction-invariant hash: both directions of a connection produce the
  /// same value, so an RSS-style dispatcher keyed on it gives a connection
  /// single-shard affinity (request and reply land on the same replica).
  /// Endpoints are ordered canonically by (ip, port) before mixing.
  constexpr std::uint64_t symmetric_hash() const noexcept {
    const std::uint64_t a =
        (static_cast<std::uint64_t>(src_ip.value) << 16) | src_port;
    const std::uint64_t b =
        (static_cast<std::uint64_t>(dst_ip.value) << 16) | dst_port;
    std::uint64_t h = util::mix64(a < b ? a : b);
    h = util::hash_combine(h, a < b ? b : a);
    return util::hash_combine(h, proto);
  }

  /// Reverse direction tuple (used by NAT return-path mapping).
  constexpr FiveTuple reversed() const noexcept {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, proto};
  }

  std::string to_string() const {
    return src_ip.to_string() + ":" + std::to_string(src_port) + " -> " +
           dst_ip.to_string() + ":" + std::to_string(dst_port) +
           " proto=" + std::to_string(proto);
  }
};

struct FiveTupleHash {
  std::size_t operator()(const FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(t.hash());
  }
};

}  // namespace speedybox::net
