#include "net/packet.hpp"

#include <cstring>

#include "net/byte_order.hpp"
#include "net/checksum.hpp"

namespace speedybox::net {
namespace {

constexpr std::uint8_t kProtoIpIp = 4;
constexpr std::uint8_t kProtoTcp = static_cast<std::uint8_t>(IpProto::kTcp);
constexpr std::uint8_t kProtoUdp = static_cast<std::uint8_t>(IpProto::kUdp);
constexpr std::uint8_t kProtoAh = static_cast<std::uint8_t>(IpProto::kAh);

}  // namespace

void Packet::insert_bytes(std::size_t offset, std::size_t count) {
  data_.insert(data_.begin() + static_cast<std::ptrdiff_t>(offset), count, 0);
}

void Packet::erase_bytes(std::size_t offset, std::size_t count) {
  data_.erase(data_.begin() + static_cast<std::ptrdiff_t>(offset),
              data_.begin() + static_cast<std::ptrdiff_t>(offset + count));
}

std::optional<ParsedPacket> parse_packet(const Packet& packet) noexcept {
  const auto bytes = packet.bytes();
  if (bytes.size() < kEthHeaderLen + kIpv4MinHeaderLen) return std::nullopt;
  if (load_be16(bytes, 12) != kEtherTypeIpv4) return std::nullopt;

  ParsedPacket parsed;
  parsed.l3_offset = kEthHeaderLen;

  std::size_t l3 = kEthHeaderLen;
  std::size_t cursor = 0;
  std::uint8_t proto = 0;
  bool first_ip = true;

  // Walk IPv4 / AH / IPIP layers until we reach the transport header.
  for (;;) {
    if (bytes.size() < l3 + kIpv4MinHeaderLen) return std::nullopt;
    const std::uint8_t version_ihl = bytes[l3];
    if ((version_ihl >> 4) != 4) return std::nullopt;
    const std::size_t ihl = static_cast<std::size_t>(version_ihl & 0x0F) * 4;
    if (ihl < kIpv4MinHeaderLen || bytes.size() < l3 + ihl) {
      return std::nullopt;
    }
    if (first_ip) {
      parsed.total_length = load_be16(bytes, l3 + 2);
      first_ip = false;
    }
    parsed.inner_l3_offset = l3;
    proto = bytes[l3 + 9];
    cursor = l3 + ihl;

    if (proto == kProtoIpIp) {
      ++parsed.encap_depth;
      l3 = cursor;
      continue;
    }
    // AH chain: each AH records the next protocol and its own length.
    bool restarted_ip = false;
    while (proto == kProtoAh) {
      if (bytes.size() < cursor + kAhHeaderLen) return std::nullopt;
      const std::size_t ah_len =
          (static_cast<std::size_t>(bytes[cursor + 1]) + 2) * 4;
      proto = bytes[cursor];
      cursor += ah_len;
      ++parsed.encap_depth;
      if (proto == kProtoIpIp) {
        ++parsed.encap_depth;
        l3 = cursor;
        restarted_ip = true;
        break;
      }
    }
    if (restarted_ip) continue;
    break;
  }

  parsed.l4_proto = proto;
  parsed.l4_offset = cursor;
  if (proto == kProtoTcp) {
    if (packet.bytes().size() < cursor + kTcpHeaderLen) return std::nullopt;
    const std::size_t doff =
        static_cast<std::size_t>(packet.bytes()[cursor + 12] >> 4) * 4;
    if (doff < kTcpHeaderLen || packet.bytes().size() < cursor + doff) {
      return std::nullopt;
    }
    parsed.tcp_flags = packet.bytes()[cursor + 13];
    parsed.payload_offset = cursor + doff;
  } else if (proto == kProtoUdp) {
    if (packet.bytes().size() < cursor + kUdpHeaderLen) return std::nullopt;
    parsed.payload_offset = cursor + kUdpHeaderLen;
  } else {
    parsed.payload_offset = cursor;
  }
  return parsed;
}

FiveTuple extract_five_tuple(const Packet& packet,
                             const ParsedPacket& parsed) noexcept {
  const auto bytes = packet.bytes();
  FiveTuple tuple;
  tuple.src_ip = Ipv4Addr{load_be32(bytes, parsed.inner_l3_offset + 12)};
  tuple.dst_ip = Ipv4Addr{load_be32(bytes, parsed.inner_l3_offset + 16)};
  tuple.proto = parsed.l4_proto;
  if (parsed.is_tcp() || parsed.is_udp()) {
    tuple.src_port = load_be16(bytes, parsed.l4_offset);
    tuple.dst_port = load_be16(bytes, parsed.l4_offset + 2);
  }
  return tuple;
}

std::span<const std::uint8_t> payload_view(const Packet& packet,
                                           const ParsedPacket& parsed) noexcept {
  return packet.bytes().subspan(parsed.payload_offset);
}

std::span<std::uint8_t> payload_view(Packet& packet,
                                     const ParsedPacket& parsed) noexcept {
  return packet.bytes().subspan(parsed.payload_offset);
}

void encap_ah(Packet& packet, std::uint32_t spi) {
  const auto parsed = parse_packet(packet);
  if (!parsed) return;
  const std::size_t l3 = parsed->l3_offset;
  const std::size_t ihl =
      static_cast<std::size_t>(packet.bytes()[l3] & 0x0F) * 4;
  const std::size_t insert_at = l3 + ihl;

  const std::uint8_t inner_proto = packet.bytes()[l3 + 9];
  packet.insert_bytes(insert_at, kAhHeaderLen);

  auto bytes = packet.bytes();
  bytes[insert_at] = inner_proto;  // next header
  bytes[insert_at + 1] =
      static_cast<std::uint8_t>(kAhHeaderLen / 4 - 2);  // AH payload length
  store_be16(bytes, insert_at + 2, 0);                  // reserved
  store_be32(bytes, insert_at + 4, spi);
  store_be32(bytes, insert_at + 8, 0);  // sequence number

  bytes[l3 + 9] = static_cast<std::uint8_t>(IpProto::kAh);
  store_be16(bytes, l3 + 2,
             static_cast<std::uint16_t>(load_be16(bytes, l3 + 2) +
                                        kAhHeaderLen));
  write_ipv4_checksum(packet, l3);
}

bool decap_ah(Packet& packet) {
  const auto parsed = parse_packet(packet);
  if (!parsed) return false;
  const std::size_t l3 = parsed->l3_offset;
  auto bytes = packet.bytes();
  if (bytes[l3 + 9] != static_cast<std::uint8_t>(IpProto::kAh)) return false;

  const std::size_t ihl = static_cast<std::size_t>(bytes[l3] & 0x0F) * 4;
  const std::size_t ah_at = l3 + ihl;
  const std::uint8_t next_proto = bytes[ah_at];
  const std::size_t ah_len =
      (static_cast<std::size_t>(bytes[ah_at + 1]) + 2) * 4;

  packet.erase_bytes(ah_at, ah_len);
  bytes = packet.bytes();
  bytes[l3 + 9] = next_proto;
  store_be16(bytes, l3 + 2,
             static_cast<std::uint16_t>(load_be16(bytes, l3 + 2) - ah_len));
  write_ipv4_checksum(packet, l3);
  return true;
}

void encap_ipip(Packet& packet, Ipv4Addr tunnel_src, Ipv4Addr tunnel_dst) {
  const auto parsed = parse_packet(packet);
  if (!parsed) return;
  const std::uint16_t inner_total = load_be16(packet.bytes(), kEthHeaderLen + 2);

  packet.insert_bytes(kEthHeaderLen, kIpv4MinHeaderLen);
  auto bytes = packet.bytes();
  const std::size_t l3 = kEthHeaderLen;
  bytes[l3] = 0x45;  // version 4, IHL 5
  bytes[l3 + 1] = 0;
  store_be16(bytes, l3 + 2,
             static_cast<std::uint16_t>(inner_total + kIpv4MinHeaderLen));
  store_be16(bytes, l3 + 4, 0);  // identification
  store_be16(bytes, l3 + 6, 0);  // flags/fragment
  bytes[l3 + 8] = 64;            // TTL
  bytes[l3 + 9] = kProtoIpIp;
  store_be16(bytes, l3 + 10, 0);  // checksum placeholder
  store_be32(bytes, l3 + 12, tunnel_src.value);
  store_be32(bytes, l3 + 16, tunnel_dst.value);
  write_ipv4_checksum(packet, l3);
}

bool decap_ipip(Packet& packet) {
  const auto bytes = packet.bytes();
  if (bytes.size() < kEthHeaderLen + 2 * kIpv4MinHeaderLen) return false;
  if (bytes[kEthHeaderLen + 9] != kProtoIpIp) return false;
  const std::size_t ihl =
      static_cast<std::size_t>(bytes[kEthHeaderLen] & 0x0F) * 4;
  packet.erase_bytes(kEthHeaderLen, ihl);
  return true;
}

std::optional<std::uint32_t> outer_ah_spi(const Packet& packet) noexcept {
  const auto bytes = packet.bytes();
  if (bytes.size() < kEthHeaderLen + kIpv4MinHeaderLen) return std::nullopt;
  if (bytes[kEthHeaderLen + 9] != static_cast<std::uint8_t>(IpProto::kAh)) {
    return std::nullopt;
  }
  const std::size_t ihl =
      static_cast<std::size_t>(bytes[kEthHeaderLen] & 0x0F) * 4;
  if (bytes.size() < kEthHeaderLen + ihl + kAhHeaderLen) return std::nullopt;
  return load_be32(bytes, kEthHeaderLen + ihl + 4);
}

}  // namespace speedybox::net
