#include "net/checksum.hpp"

#include "net/byte_order.hpp"

namespace speedybox::net {
namespace {

std::uint16_t fold(std::uint32_t sum) noexcept {
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(sum);
}

std::size_t ipv4_ihl(std::span<const std::uint8_t> bytes,
                     std::size_t l3_offset) noexcept {
  return static_cast<std::size_t>(bytes[l3_offset] & 0x0F) * 4;
}

}  // namespace

std::uint16_t ones_complement_sum(std::span<const std::uint8_t> bytes,
                                  std::uint32_t initial) noexcept {
  std::uint32_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < bytes.size(); i += 2) {
    sum += load_be16(bytes, i);
  }
  if (i < bytes.size()) {
    sum += static_cast<std::uint32_t>(bytes[i]) << 8;  // odd trailing byte
  }
  return fold(sum);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) noexcept {
  return static_cast<std::uint16_t>(~ones_complement_sum(bytes));
}

std::uint16_t incremental_update(std::uint16_t old_sum, std::uint16_t old_word,
                                 std::uint16_t new_word) noexcept {
  // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
  std::uint32_t sum = static_cast<std::uint16_t>(~old_sum);
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  return static_cast<std::uint16_t>(~fold(sum));
}

void write_ipv4_checksum(Packet& packet, std::size_t l3_offset) noexcept {
  auto bytes = packet.bytes();
  const std::size_t ihl = ipv4_ihl(bytes, l3_offset);
  store_be16(bytes, l3_offset + 10, 0);
  const std::uint16_t sum =
      internet_checksum(bytes.subspan(l3_offset, ihl));
  store_be16(bytes, l3_offset + 10, sum);
}

bool verify_ipv4_checksum(const Packet& packet,
                          std::size_t l3_offset) noexcept {
  const auto bytes = packet.bytes();
  const std::size_t ihl = ipv4_ihl(bytes, l3_offset);
  return ones_complement_sum(bytes.subspan(l3_offset, ihl)) == 0xFFFF;
}

namespace {

/// One's-complement sum of the IPv4 pseudo-header for the innermost
/// transport segment.
std::uint32_t pseudo_header_sum(std::span<const std::uint8_t> bytes,
                                const ParsedPacket& parsed,
                                std::size_t l4_length) noexcept {
  const std::size_t l3 = parsed.inner_l3_offset;
  std::uint32_t sum = 0;
  sum += load_be16(bytes, l3 + 12);  // src ip hi
  sum += load_be16(bytes, l3 + 14);  // src ip lo
  sum += load_be16(bytes, l3 + 16);  // dst ip hi
  sum += load_be16(bytes, l3 + 18);  // dst ip lo
  sum += parsed.l4_proto;
  sum += static_cast<std::uint32_t>(l4_length);
  return sum;
}

std::size_t l4_segment_length(std::span<const std::uint8_t> bytes,
                              const ParsedPacket& parsed) noexcept {
  // Inner IPv4 total length minus the inner IP header = transport segment.
  const std::size_t l3 = parsed.inner_l3_offset;
  const std::size_t total = load_be16(bytes, l3 + 2);
  const std::size_t ihl = ipv4_ihl(bytes, l3);
  if (total < ihl) return 0;
  const std::size_t seg = total - ihl;
  // Clamp to what is actually in the buffer (defensive).
  const std::size_t avail = bytes.size() - parsed.l4_offset;
  return seg > avail ? avail : seg;
}

}  // namespace

void write_l4_checksum(Packet& packet, const ParsedPacket& parsed) noexcept {
  if (!parsed.is_tcp() && !parsed.is_udp()) return;
  auto bytes = packet.bytes();
  const std::size_t len = l4_segment_length(bytes, parsed);
  const std::size_t ck_off =
      parsed.l4_offset + (parsed.is_tcp() ? std::size_t{16} : std::size_t{6});
  store_be16(bytes, ck_off, 0);
  const std::uint32_t pseudo = pseudo_header_sum(bytes, parsed, len);
  std::uint16_t sum = static_cast<std::uint16_t>(~ones_complement_sum(
      bytes.subspan(parsed.l4_offset, len), pseudo));
  if (parsed.is_udp() && sum == 0) sum = 0xFFFF;  // RFC 768
  store_be16(bytes, ck_off, sum);
}

bool verify_l4_checksum(const Packet& packet,
                        const ParsedPacket& parsed) noexcept {
  if (!parsed.is_tcp() && !parsed.is_udp()) return true;
  const auto bytes = packet.bytes();
  const std::size_t len = l4_segment_length(bytes, parsed);
  const std::uint32_t pseudo = pseudo_header_sum(bytes, parsed, len);
  return ones_complement_sum(bytes.subspan(parsed.l4_offset, len), pseudo) ==
         0xFFFF;
}

void fix_all_checksums(Packet& packet, const ParsedPacket& parsed) noexcept {
  // Every IPv4 layer: outermost first, then any tunneled inner headers.
  write_ipv4_checksum(packet, parsed.l3_offset);
  if (parsed.inner_l3_offset != parsed.l3_offset) {
    write_ipv4_checksum(packet, parsed.inner_l3_offset);
  }
  write_l4_checksum(packet, parsed);
}

}  // namespace speedybox::net
