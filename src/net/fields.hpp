// Named header fields that NF header actions can modify (§IV-A1), and their
// byte-level locations within a parsed packet. The modify-consolidation
// algebra (core/header_action) compiles field writes into byte patches using
// these references.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "net/packet.hpp"

namespace speedybox::net {

enum class HeaderField : std::uint8_t {
  kSrcIp,
  kDstIp,
  kSrcPort,
  kDstPort,
  kTtl,
  kTos,  // full TOS byte (covers DSCP marking)
};

inline constexpr std::size_t kHeaderFieldCount = 6;

std::string_view field_name(HeaderField field) noexcept;

/// Byte range of a field within the packet buffer. Fields address the
/// innermost headers (NAT/LB logic rewrites the inner flow tuple).
struct FieldRef {
  std::size_t offset = 0;
  std::size_t width = 0;  // bytes: 4 for IPs, 2 for ports, 1 for TTL/TOS
};

/// Resolve a field to its byte location. Returns nullopt when the packet has
/// no such field (e.g. ports on a non-TCP/UDP packet).
std::optional<FieldRef> field_ref(const ParsedPacket& parsed,
                                  HeaderField field) noexcept;

/// Read/write a field as a host-order integer. Precondition: field_ref()
/// resolves for this packet.
std::uint32_t get_field(const Packet& packet, const ParsedPacket& parsed,
                        HeaderField field) noexcept;
void set_field(Packet& packet, const ParsedPacket& parsed, HeaderField field,
               std::uint32_t value) noexcept;

}  // namespace speedybox::net
