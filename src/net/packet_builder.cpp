#include "net/packet_builder.hpp"

#include <algorithm>
#include <cstring>

#include "net/byte_order.hpp"
#include "net/checksum.hpp"

namespace speedybox::net {

Packet build_packet(const PacketSpec& spec) {
  const bool is_tcp =
      spec.tuple.proto == static_cast<std::uint8_t>(IpProto::kTcp);
  const std::size_t l4_len = is_tcp ? kTcpHeaderLen : kUdpHeaderLen;
  const std::size_t ip_total = kIpv4MinHeaderLen + l4_len + spec.payload.size();
  std::vector<std::uint8_t> buf(kEthHeaderLen + ip_total, 0);
  std::span<std::uint8_t> bytes{buf};

  // Ethernet: locally-administered MACs, ethertype IPv4.
  bytes[0] = 0x02;
  bytes[6] = 0x02;
  bytes[5] = 0x01;
  bytes[11] = 0x02;
  store_be16(bytes, 12, kEtherTypeIpv4);

  // IPv4.
  const std::size_t l3 = kEthHeaderLen;
  bytes[l3] = 0x45;
  bytes[l3 + 1] = spec.tos;
  store_be16(bytes, l3 + 2, static_cast<std::uint16_t>(ip_total));
  store_be16(bytes, l3 + 4, 0x1234);  // identification
  store_be16(bytes, l3 + 6, 0x4000);  // DF
  bytes[l3 + 8] = spec.ttl;
  bytes[l3 + 9] = spec.tuple.proto;
  store_be32(bytes, l3 + 12, spec.tuple.src_ip.value);
  store_be32(bytes, l3 + 16, spec.tuple.dst_ip.value);

  // Transport.
  const std::size_t l4 = l3 + kIpv4MinHeaderLen;
  store_be16(bytes, l4, spec.tuple.src_port);
  store_be16(bytes, l4 + 2, spec.tuple.dst_port);
  if (is_tcp) {
    store_be32(bytes, l4 + 4, spec.seq);
    store_be32(bytes, l4 + 8, 0);              // ack
    bytes[l4 + 12] = (kTcpHeaderLen / 4) << 4; // data offset
    bytes[l4 + 13] = spec.tcp_flags;
    store_be16(bytes, l4 + 14, 0xFFFF);        // window
  } else {
    store_be16(bytes, l4 + 4,
               static_cast<std::uint16_t>(kUdpHeaderLen + spec.payload.size()));
  }

  if (!spec.payload.empty()) {
    std::memcpy(buf.data() + l4 + l4_len, spec.payload.data(),
                spec.payload.size());
  }

  Packet packet{std::move(buf)};
  const auto parsed = parse_packet(packet);
  fix_all_checksums(packet, *parsed);
  return packet;
}

Packet make_tcp_packet(const FiveTuple& tuple, std::string_view payload,
                       std::uint8_t tcp_flags) {
  PacketSpec spec;
  spec.tuple = tuple;
  spec.tuple.proto = static_cast<std::uint8_t>(IpProto::kTcp);
  spec.tcp_flags = tcp_flags;
  spec.payload = {reinterpret_cast<const std::uint8_t*>(payload.data()),
                  payload.size()};
  return build_packet(spec);
}

Packet make_udp_packet(const FiveTuple& tuple, std::string_view payload) {
  PacketSpec spec;
  spec.tuple = tuple;
  spec.tuple.proto = static_cast<std::uint8_t>(IpProto::kUdp);
  spec.payload = {reinterpret_cast<const std::uint8_t*>(payload.data()),
                  payload.size()};
  return build_packet(spec);
}

Packet make_tcp_packet_of_size(const FiveTuple& tuple, std::size_t frame_size,
                               std::uint8_t tcp_flags) {
  constexpr std::size_t kHeaders =
      kEthHeaderLen + kIpv4MinHeaderLen + kTcpHeaderLen;
  const std::size_t payload_len =
      frame_size > kHeaders ? frame_size - kHeaders : 0;
  std::vector<std::uint8_t> payload(payload_len, 0x5A);
  PacketSpec spec;
  spec.tuple = tuple;
  spec.tuple.proto = static_cast<std::uint8_t>(IpProto::kTcp);
  spec.tcp_flags = tcp_flags;
  spec.payload = payload;
  return build_packet(spec);
}

}  // namespace speedybox::net
