// Big-endian (network byte order) field access over raw packet bytes.
#pragma once

#include <cstdint>
#include <span>

namespace speedybox::net {

constexpr std::uint16_t load_be16(std::span<const std::uint8_t> bytes,
                                  std::size_t offset) noexcept {
  return static_cast<std::uint16_t>((bytes[offset] << 8) | bytes[offset + 1]);
}

constexpr std::uint32_t load_be32(std::span<const std::uint8_t> bytes,
                                  std::size_t offset) noexcept {
  return (static_cast<std::uint32_t>(bytes[offset]) << 24) |
         (static_cast<std::uint32_t>(bytes[offset + 1]) << 16) |
         (static_cast<std::uint32_t>(bytes[offset + 2]) << 8) |
         static_cast<std::uint32_t>(bytes[offset + 3]);
}

constexpr void store_be16(std::span<std::uint8_t> bytes, std::size_t offset,
                          std::uint16_t value) noexcept {
  bytes[offset] = static_cast<std::uint8_t>(value >> 8);
  bytes[offset + 1] = static_cast<std::uint8_t>(value);
}

constexpr void store_be32(std::span<std::uint8_t> bytes, std::size_t offset,
                          std::uint32_t value) noexcept {
  bytes[offset] = static_cast<std::uint8_t>(value >> 24);
  bytes[offset + 1] = static_cast<std::uint8_t>(value >> 16);
  bytes[offset + 2] = static_cast<std::uint8_t>(value >> 8);
  bytes[offset + 3] = static_cast<std::uint8_t>(value);
}

}  // namespace speedybox::net
