// Internet checksum (RFC 1071) plus incremental update (RFC 1624).
//
// Baseline NFs pay a checksum fix-up per header modification (the R3
// redundancy when several NFs rewrite the same packet); the SpeedyBox fast
// path applies the consolidated patch and fixes checksums exactly once
// (§V-B "we modify these fields at the end of the consolidation").
#pragma once

#include <cstdint>
#include <span>

#include "net/packet.hpp"

namespace speedybox::net {

/// One's-complement sum over a byte span, folded to 16 bits (not inverted).
std::uint16_t ones_complement_sum(std::span<const std::uint8_t> bytes,
                                  std::uint32_t initial = 0) noexcept;

/// Full internet checksum (inverted fold) over a byte span.
std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) noexcept;

/// RFC 1624 eqn. 3: update checksum `old_sum` when a 16-bit word changes
/// from `old_word` to `new_word`.
std::uint16_t incremental_update(std::uint16_t old_sum, std::uint16_t old_word,
                                 std::uint16_t new_word) noexcept;

/// Recompute and store the IPv4 header checksum of the header at l3_offset.
void write_ipv4_checksum(Packet& packet, std::size_t l3_offset) noexcept;

/// Verify the IPv4 header checksum at l3_offset.
bool verify_ipv4_checksum(const Packet& packet,
                          std::size_t l3_offset) noexcept;

/// Recompute and store the TCP/UDP checksum (with IPv4 pseudo-header) of the
/// innermost transport header.
void write_l4_checksum(Packet& packet, const ParsedPacket& parsed) noexcept;

/// Verify the innermost TCP/UDP checksum.
bool verify_l4_checksum(const Packet& packet,
                        const ParsedPacket& parsed) noexcept;

/// Recompute every checksum in the packet (all IPv4 layers + innermost L4).
void fix_all_checksums(Packet& packet, const ParsedPacket& parsed) noexcept;

}  // namespace speedybox::net
