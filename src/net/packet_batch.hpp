// PacketBatch: the unit of vector processing (DESIGN.md §8).
//
// A fixed-capacity, non-owning view over packet descriptors with a validity
// mask — the software analogue of a DPDK rx burst / BESS packet vector.
// Executors fill a batch, hand it down the data path, and every stage
// operates on the whole burst: per-packet dispatch overhead (virtual calls,
// timer pairs, ring operations) amortizes across the batch and each stage
// can prefetch the state its later iterations will touch.
//
// Contract (mask, don't compact): a packet that drops mid-batch keeps its
// slot and is masked invalid; it is never compacted away. Slot index == the
// packet's position in the original arrival order for the whole traversal,
// so relative order — including teardown markers against later packets of
// the same flow — is preserved by construction, and per-slot results
// (outcomes, telemetry attribution) line up with inputs without an index
// indirection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"

namespace speedybox::net {

/// Default burst size — the DPDK rx-burst convention. Wired through
/// RunConfig::batch_size and chainsim --batch-size.
inline constexpr std::size_t kDefaultBatchSize = 32;

class PacketBatch {
 public:
  explicit PacketBatch(std::size_t capacity = kDefaultBatchSize)
      : capacity_(capacity == 0 ? 1 : capacity) {
    slots_.reserve(capacity_);
    valid_.reserve(capacity_);
  }

  std::size_t capacity() const noexcept { return capacity_; }
  /// Number of slots in use (valid or masked).
  std::size_t size() const noexcept { return slots_.size(); }
  bool empty() const noexcept { return slots_.empty(); }
  bool full() const noexcept { return slots_.size() >= capacity_; }

  /// Append a packet; a packet already marked dropped enters masked.
  /// Returns the slot index. The batch borrows the pointer — the caller
  /// keeps ownership and must keep the packet alive for the batch's life.
  std::size_t push(Packet* packet) {
    const std::size_t slot = slots_.size();
    slots_.push_back(packet);
    const bool valid = packet != nullptr && !packet->dropped();
    valid_.push_back(valid ? 1 : 0);
    if (valid) ++valid_count_;
    return slot;
  }

  Packet& packet(std::size_t slot) noexcept { return *slots_[slot]; }
  const Packet& packet(std::size_t slot) const noexcept {
    return *slots_[slot];
  }

  bool valid(std::size_t slot) const noexcept { return valid_[slot] != 0; }

  /// Mask a slot out (packet dropped or otherwise finished mid-batch).
  /// The slot itself stays — mask, don't compact.
  void mask(std::size_t slot) noexcept {
    if (valid_[slot] != 0) {
      valid_[slot] = 0;
      --valid_count_;
    }
  }

  std::size_t valid_count() const noexcept { return valid_count_; }

  void clear() noexcept {
    slots_.clear();
    valid_.clear();
    valid_count_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<Packet*> slots_;
  std::vector<std::uint8_t> valid_;  // 1 = live, 0 = masked out
  std::size_t valid_count_ = 0;
};

}  // namespace speedybox::net
