// Packet construction: builds wire-valid Ethernet/IPv4/TCP|UDP packets from
// a five-tuple + payload. This is what the trace generator (the DPDK-pktgen
// substitute) uses to materialize packets.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "net/packet.hpp"

namespace speedybox::net {

struct PacketSpec {
  FiveTuple tuple;
  std::uint8_t tcp_flags = kTcpFlagAck;  // ignored for UDP
  std::uint8_t ttl = 64;
  std::uint8_t tos = 0;
  std::uint32_t seq = 0;  // TCP sequence number
  std::span<const std::uint8_t> payload;
};

/// Build a complete packet with valid lengths and checksums.
Packet build_packet(const PacketSpec& spec);

/// Convenience: TCP packet with a string payload.
Packet make_tcp_packet(const FiveTuple& tuple, std::string_view payload,
                       std::uint8_t tcp_flags = kTcpFlagAck);

/// Convenience: UDP packet with a string payload.
Packet make_udp_packet(const FiveTuple& tuple, std::string_view payload);

/// Pad/trim the payload so the full frame is `frame_size` bytes (e.g. the
/// 64B packets of the paper's microbenchmarks). Never shrinks below the
/// header chain.
Packet make_tcp_packet_of_size(const FiveTuple& tuple, std::size_t frame_size,
                               std::uint8_t tcp_flags = kTcpFlagAck);

}  // namespace speedybox::net
