// Raw-byte packet model.
//
// Packets are contiguous byte buffers holding Ethernet + IPv4 + TCP/UDP
// headers and payload, exactly as they would sit in a DPDK mbuf. All NF
// processing operates on these bytes (real parsing, real field rewrites,
// real checksum updates) so that the redundancy SpeedyBox eliminates —
// repeated parsing/classification (R1), late drops (R2), overwrites (R3) —
// costs real cycles in the baseline and the measured savings are honest.
//
// Packet metadata mirrors the paper's descriptor metadata: the 20-bit FID
// attached by the Packet Classifier (§VI-B), the initial/subsequent flag,
// and the arrival timestamp used for latency accounting.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/five_tuple.hpp"

namespace speedybox::net {

inline constexpr std::size_t kEthHeaderLen = 14;
inline constexpr std::size_t kIpv4MinHeaderLen = 20;
inline constexpr std::size_t kTcpHeaderLen = 20;
inline constexpr std::size_t kUdpHeaderLen = 8;
inline constexpr std::size_t kAhHeaderLen = 12;
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

/// TCP flag bits (byte 13 of the TCP header).
inline constexpr std::uint8_t kTcpFlagFin = 0x01;
inline constexpr std::uint8_t kTcpFlagSyn = 0x02;
inline constexpr std::uint8_t kTcpFlagRst = 0x04;
inline constexpr std::uint8_t kTcpFlagPsh = 0x08;
inline constexpr std::uint8_t kTcpFlagAck = 0x10;

/// The FID is a 20-bit flow identifier (>1M concurrent flows, §VI-B).
inline constexpr std::uint32_t kFidBits = 20;
inline constexpr std::uint32_t kFidMask = (1u << kFidBits) - 1;
inline constexpr std::uint32_t kInvalidFid = ~0u;

class Packet {
 public:
  Packet() = default;
  explicit Packet(std::vector<std::uint8_t> bytes)
      : data_(std::move(bytes)) {}

  std::span<std::uint8_t> bytes() noexcept { return data_; }
  std::span<const std::uint8_t> bytes() const noexcept { return data_; }
  std::size_t size() const noexcept { return data_.size(); }

  /// Insert `count` zero bytes at `offset` (encap) / remove bytes (decap).
  void insert_bytes(std::size_t offset, std::size_t count);
  void erase_bytes(std::size_t offset, std::size_t count);

  // --- descriptor metadata (not part of the wire bytes) -------------------
  std::uint32_t fid() const noexcept { return fid_; }
  bool has_fid() const noexcept { return fid_ != kInvalidFid; }
  void set_fid(std::uint32_t fid) noexcept { fid_ = fid & kFidMask; }
  void clear_fid() noexcept { fid_ = kInvalidFid; }

  bool is_initial() const noexcept { return initial_; }
  void set_initial(bool initial) noexcept { initial_ = initial; }

  bool dropped() const noexcept { return dropped_; }
  /// Paper semantics: "set the associated packet descriptor to nil".
  void mark_dropped() noexcept { dropped_ = true; }

  /// Set by the fault-injection harness when an injected NF failure, not a
  /// policy decision, killed this packet — keeps conservation accounting
  /// (admitted = delivered + drops + faulted) able to tell the two apart.
  bool faulted() const noexcept { return faulted_; }
  void mark_faulted() noexcept { faulted_ = true; }

  std::uint64_t arrival_cycle() const noexcept { return arrival_cycle_; }
  void set_arrival_cycle(std::uint64_t c) noexcept { arrival_cycle_ = c; }

  void reset_metadata() noexcept {
    fid_ = kInvalidFid;
    initial_ = false;
    dropped_ = false;
    faulted_ = false;
    arrival_cycle_ = 0;
  }

 private:
  std::vector<std::uint8_t> data_;
  std::uint32_t fid_ = kInvalidFid;
  bool initial_ = false;
  bool dropped_ = false;
  bool faulted_ = false;
  std::uint64_t arrival_cycle_ = 0;
};

/// Offsets produced by parsing; every baseline NF re-derives this per packet
/// (the R1 redundancy), while the SpeedyBox fast path parses once at the
/// classifier.
struct ParsedPacket {
  std::size_t l3_offset = 0;       // start of (outermost) IPv4 header
  std::size_t inner_l3_offset = 0; // innermost IPv4 header (= l3 w/o tunnel)
  std::size_t l4_offset = 0;       // start of TCP/UDP header
  std::size_t payload_offset = 0;  // start of application payload
  std::uint8_t l4_proto = 0;       // protocol of the innermost L4 header
  std::uint16_t total_length = 0;  // IPv4 total length (outermost)
  std::uint8_t tcp_flags = 0;      // 0 unless TCP
  std::size_t encap_depth = 0;     // number of AH/IPIP layers seen

  bool is_tcp() const noexcept {
    return l4_proto == static_cast<std::uint8_t>(IpProto::kTcp);
  }
  bool is_udp() const noexcept {
    return l4_proto == static_cast<std::uint8_t>(IpProto::kUdp);
  }
  bool has_fin_or_rst() const noexcept {
    return (tcp_flags & (kTcpFlagFin | kTcpFlagRst)) != 0;
  }
  bool has_syn() const noexcept { return (tcp_flags & kTcpFlagSyn) != 0; }
};

/// Parse the Ethernet/IPv4/(AH|IPIP)*/TCP|UDP header chain, walking through
/// any encapsulation layers. Returns nullopt for malformed packets.
std::optional<ParsedPacket> parse_packet(const Packet& packet) noexcept;

/// Extract the five-tuple of the innermost headers. Requires a valid parse.
FiveTuple extract_five_tuple(const Packet& packet,
                             const ParsedPacket& parsed) noexcept;

/// Payload view (after all headers).
std::span<const std::uint8_t> payload_view(const Packet& packet,
                                           const ParsedPacket& parsed) noexcept;
std::span<std::uint8_t> payload_view(Packet& packet,
                                     const ParsedPacket& parsed) noexcept;

// --- Encapsulation -------------------------------------------------------
// Two header kinds, matching the paper's VPN example (IPSec AH) plus an
// IP-in-IP tunnel; both are exercised by the encap/decap consolidation.

enum class EncapKind : std::uint8_t { kAh, kIpIp };

/// Insert an AH header between the IPv4 header and its payload; the IPv4
/// protocol becomes 51 and the AH records the original protocol. Lengths
/// and the IPv4 checksum are fixed up.
void encap_ah(Packet& packet, std::uint32_t spi);

/// Remove the outermost AH header. Returns false if the packet's outermost
/// L4 protocol is not AH.
bool decap_ah(Packet& packet);

/// Prepend a new outer IPv4 header (protocol 4) with the given endpoints.
void encap_ipip(Packet& packet, Ipv4Addr tunnel_src, Ipv4Addr tunnel_dst);

/// Strip the outer IPv4 header of an IP-in-IP packet. Returns false if the
/// packet is not IP-in-IP.
bool decap_ipip(Packet& packet);

/// SPI of the outermost AH header (for tests); nullopt if none.
std::optional<std::uint32_t> outer_ah_spi(const Packet& packet) noexcept;

}  // namespace speedybox::net
