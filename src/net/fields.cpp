#include "net/fields.hpp"

#include "net/byte_order.hpp"

namespace speedybox::net {

std::string_view field_name(HeaderField field) noexcept {
  switch (field) {
    case HeaderField::kSrcIp: return "src_ip";
    case HeaderField::kDstIp: return "dst_ip";
    case HeaderField::kSrcPort: return "src_port";
    case HeaderField::kDstPort: return "dst_port";
    case HeaderField::kTtl: return "ttl";
    case HeaderField::kTos: return "tos";
  }
  return "?";
}

std::optional<FieldRef> field_ref(const ParsedPacket& parsed,
                                  HeaderField field) noexcept {
  const std::size_t l3 = parsed.inner_l3_offset;
  switch (field) {
    case HeaderField::kSrcIp: return FieldRef{l3 + 12, 4};
    case HeaderField::kDstIp: return FieldRef{l3 + 16, 4};
    case HeaderField::kTtl: return FieldRef{l3 + 8, 1};
    case HeaderField::kTos: return FieldRef{l3 + 1, 1};
    case HeaderField::kSrcPort:
      if (!parsed.is_tcp() && !parsed.is_udp()) return std::nullopt;
      return FieldRef{parsed.l4_offset, 2};
    case HeaderField::kDstPort:
      if (!parsed.is_tcp() && !parsed.is_udp()) return std::nullopt;
      return FieldRef{parsed.l4_offset + 2, 2};
  }
  return std::nullopt;
}

std::uint32_t get_field(const Packet& packet, const ParsedPacket& parsed,
                        HeaderField field) noexcept {
  const auto ref = field_ref(parsed, field);
  if (!ref) return 0;
  const auto bytes = packet.bytes();
  switch (ref->width) {
    case 1: return bytes[ref->offset];
    case 2: return load_be16(bytes, ref->offset);
    default: return load_be32(bytes, ref->offset);
  }
}

void set_field(Packet& packet, const ParsedPacket& parsed, HeaderField field,
               std::uint32_t value) noexcept {
  const auto ref = field_ref(parsed, field);
  if (!ref) return;
  auto bytes = packet.bytes();
  switch (ref->width) {
    case 1:
      bytes[ref->offset] = static_cast<std::uint8_t>(value);
      break;
    case 2:
      store_be16(bytes, ref->offset, static_cast<std::uint16_t>(value));
      break;
    default:
      store_be32(bytes, ref->offset, value);
      break;
  }
}

}  // namespace speedybox::net
