// runtime::Executor adapter over platform::OnvmPipeline.
//
// The platform layer sits below runtime in the link order and cannot see
// runtime/executor.hpp, so the adapter lives here: it builds the stage
// vector from a ServiceChain, owns the threaded pipeline, and adds the
// overload ingress gate in front of push().
//
// The ONVM platform path runs the NFs directly (no classifier, no MATs),
// so slo-early-drop has no consolidated rule to consult and degenerates to
// tail-drop on this shape; per-flow-fair and the token bucket work
// unchanged. Pressure is the REAL first descriptor ring's occupancy
// (SpscRing::over_watermark, producer side), OR'd into the controller's
// virtual gate.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "platform/onvm_pipeline.hpp"
#include "runtime/chain.hpp"
#include "runtime/executor.hpp"
#include "runtime/runner.hpp"
#include "telemetry/metrics.hpp"

namespace speedybox::runtime {

class OnvmExecutor final : public Executor {
 public:
  /// The chain is borrowed and must outlive the executor; its NF threads
  /// start immediately (OnvmPipeline semantics).
  explicit OnvmExecutor(ServiceChain& chain, std::size_t ring_capacity = 1024,
                        std::size_t batch_size = net::kDefaultBatchSize);

  // -- Executor interface (one-shot: run() joins the NF threads) --
  //
  // Like SpeedyBoxPipeline, this shape carries no cycle model: RunStats
  // hold packets/drops and the overload block. Output order is arrival
  // order (the ONVM sink preserves FIFO); dropped packets are omitted.
  std::string_view kind() const noexcept override { return "onvm"; }
  const RunStats& run(const trace::Workload& workload) override;
  const RunStats& run(const std::vector<net::Packet>& packets,
                      std::vector<net::Packet>* outputs) override;
  const RunStats& stats() const noexcept override { return stats_; }
  void attach_telemetry(telemetry::Registry* registry,
                        const std::string& label) override;
  void set_overload_policy(const OverloadConfig& config) override;

  platform::OnvmPipeline& pipeline() noexcept { return *pipeline_; }

 private:
  bool ingress_admit(const net::Packet& packet);
  /// Join the workers and settle the counters (drops/faulted come from the
  /// pipeline's relaxed cells, exact after the join).
  std::vector<net::Packet> finish();

  ServiceChain& chain_;
  std::unique_ptr<platform::OnvmPipeline> pipeline_;
  std::unique_ptr<OverloadController> controller_;
  telemetry::ShardMetrics* metrics_ = nullptr;
  RunStats stats_;
  std::uint64_t packets_ = 0;  // admitted into the pipeline
};

}  // namespace speedybox::runtime
