#include "runtime/runner.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "net/checksum.hpp"
#include "util/cycle_clock.hpp"
#include "util/field_count.hpp"

namespace speedybox::runtime {

/// Merge-site guard: merge_from below copies field by field, so a new
/// RunStats field that is not added there silently vanishes from every
/// sharded result. If this assert fires, extend merge_from (and, for a
/// counter that telemetry mirrors, telemetry/metrics.cpp's snapshot name
/// lists) and then bump the count.
static_assert(util::field_count<RunStats>() == 17,
              "RunStats changed: update RunStats::merge_from and this count");

double RunStats::rate_mpps(platform::PlatformKind) const {
  double bottleneck = 0.0;
  for (std::size_t i = 0; i < stage_cycle_sum.size(); ++i) {
    if (stage_cycle_count[i] == 0) continue;
    bottleneck = std::max(bottleneck, stage_cycle_sum[i] /
                                          static_cast<double>(
                                              stage_cycle_count[i]));
  }
  if (bottleneck <= 0.0) return 0.0;
  return util::CycleClock::frequency_hz() / bottleneck / 1e6;
}

void RunStats::merge_from(const RunStats& other) {
  latency_us_all.merge(other.latency_us_all);
  latency_us_initial.merge(other.latency_us_initial);
  latency_us_subsequent.merge(other.latency_us_subsequent);
  latency_us_subsequent_sequential.merge(
      other.latency_us_subsequent_sequential);
  work_cycles_initial.merge(other.work_cycles_initial);
  work_cycles_subsequent.merge(other.work_cycles_subsequent);
  platform_cycles_initial.merge(other.platform_cycles_initial);
  platform_cycles_subsequent.merge(other.platform_cycles_subsequent);

  packets += other.packets;
  drops += other.drops;
  events_triggered += other.events_triggered;

  const auto grow = [](auto& vec, std::size_t size) {
    if (vec.size() < size) vec.resize(size, 0);
  };
  grow(per_nf_cycle_sum, other.per_nf_cycle_sum.size());
  grow(per_nf_cycle_count, other.per_nf_cycle_count.size());
  for (std::size_t i = 0; i < other.per_nf_cycle_sum.size(); ++i) {
    per_nf_cycle_sum[i] += other.per_nf_cycle_sum[i];
  }
  for (std::size_t i = 0; i < other.per_nf_cycle_count.size(); ++i) {
    per_nf_cycle_count[i] += other.per_nf_cycle_count[i];
  }
  per_nf_mean_cycles.assign(per_nf_cycle_sum.size(), 0.0);
  for (std::size_t i = 0; i < per_nf_cycle_sum.size(); ++i) {
    if (i < per_nf_cycle_count.size() && per_nf_cycle_count[i] > 0) {
      per_nf_mean_cycles[i] = static_cast<double>(per_nf_cycle_sum[i]) /
                              static_cast<double>(per_nf_cycle_count[i]);
    }
  }

  grow(stage_cycle_sum, other.stage_cycle_sum.size());
  grow(stage_cycle_count, other.stage_cycle_count.size());
  for (std::size_t i = 0; i < other.stage_cycle_sum.size(); ++i) {
    stage_cycle_sum[i] += other.stage_cycle_sum[i];
  }
  for (std::size_t i = 0; i < other.stage_cycle_count.size(); ++i) {
    stage_cycle_count[i] += other.stage_cycle_count[i];
  }

  overload.merge_from(other.overload);
}

ChainRunner::ChainRunner(ServiceChain& chain, RunConfig config,
                         const platform::PlatformCosts& costs)
    : chain_(chain), config_(config), costs_(costs) {
  per_nf_cycle_sum_.assign(chain.size(), 0);
  per_nf_cycle_count_.assign(chain.size(), 0);
  if (config_.overload.enabled) {
    controller_ = std::make_unique<OverloadController>(config_.overload);
  }
}

void ChainRunner::attach_telemetry(telemetry::Registry* registry,
                                   const std::string& label) {
  if (registry == nullptr) {
    set_telemetry(nullptr);
    return;
  }
  set_telemetry(&registry->create_shard(label, chain_.nf_names()));
}

void ChainRunner::set_overload_policy(const OverloadConfig& config) {
  config_.overload = config;
  controller_ = config.enabled
                    ? std::make_unique<OverloadController>(config)
                    : nullptr;
}

bool ChainRunner::ingress_admit(net::Packet& packet,
                                PacketOutcome& outcome) {
  if (controller_ == nullptr) return true;
  ++stats_.overload.offered;

  // Flow hash for the per-flow-fair band; under slo-early-drop, ask the
  // classifier (side-effect-free peek) and the Global MAT whether this
  // flow's consolidated rule is already a settled drop. All unmeasured:
  // shedding here is the near-zero-cycle path.
  std::uint64_t flow_hash = 0;
  bool doomed = false;
  if (const auto parsed = net::parse_packet(packet)) {
    const net::FiveTuple tuple = net::extract_five_tuple(packet, *parsed);
    flow_hash = tuple.hash();
    if (config_.speedybox &&
        config_.overload.policy == DropPolicy::kSloEarlyDrop) {
      if (const auto fid = chain_.classifier().peek(tuple)) {
        doomed = chain_.global_mat().rule_marked_drop(*fid);
      }
    }
  }

  const auto decision = controller_->offer(flow_hash, doomed);
  // The controller owns the authoritative episode counts; mirror them into
  // the mergeable stats (assignment, not increment — always current).
  stats_.overload.degraded_episodes = controller_->degraded_episodes();
  stats_.overload.degraded_episode_packets =
      controller_->degraded_episode_packets();
  if (metrics_ != nullptr) {
    metrics_->queue_depth.set(
        static_cast<std::uint64_t>(controller_->queue_depth()));
    if (const auto episode = controller_->take_finished_episode()) {
      metrics_->degraded_episode_packets.record(*episode);
    }
  } else {
    controller_->take_finished_episode();  // keep the latch drained
  }

  switch (decision) {
    case OverloadController::Decision::kAdmit:
      ++stats_.overload.admitted;
      if (metrics_ != nullptr) metrics_->admitted.add(1);
      return true;
    case OverloadController::Decision::kShedAdmission:
      ++stats_.overload.shed_admission;
      if (metrics_ != nullptr) metrics_->shed_admission.add(1);
      break;
    case OverloadController::Decision::kShedWatermark:
      ++stats_.overload.shed_watermark;
      if (metrics_ != nullptr) metrics_->shed_watermark.add(1);
      break;
    case OverloadController::Decision::kShedEarlyDrop:
      ++stats_.overload.shed_early_drop;
      if (metrics_ != nullptr) metrics_->shed_early_drop.add(1);
      break;
  }
  packet.mark_dropped();
  outcome.dropped = true;
  outcome.shed = true;
  return false;
}

void ChainRunner::add_stage_sample(std::size_t stage, std::uint64_t cycles) {
  if (stats_.stage_cycle_sum.size() <= stage) {
    stats_.stage_cycle_sum.resize(stage + 1, 0.0);
    stats_.stage_cycle_count.resize(stage + 1, 0);
  }
  stats_.stage_cycle_sum[stage] += static_cast<double>(cycles);
  ++stats_.stage_cycle_count[stage];
}

PacketOutcome ChainRunner::process_original(net::Packet& packet) {
  PacketOutcome outcome;
  // Telemetry (incl. span sampling decisions) stays outside the measured
  // segments: each NF is timed with its own timer pair, so everything the
  // hooks do between segments never shows up in the reported cycles.
  telemetry::SpanRecorder* spans =
      metrics_ != nullptr && metrics_->spans.enabled() ? &metrics_->spans
                                                       : nullptr;
  bool trace = false;
  // Stats-only init/sub tagging, outside the measured region.
  if (const auto parsed = net::parse_packet(packet)) {
    const net::FiveTuple tuple = net::extract_five_tuple(packet, *parsed);
    outcome.initial = seen_tuples_.insert(tuple).second;
    if (parsed->has_fin_or_rst()) seen_tuples_.erase(tuple);
    if (spans != nullptr && spans->should_sample(tuple.hash())) {
      trace = true;
      spans->begin(tuple.hash(), net::kInvalidFid, util::CycleClock::now());
    }
  }

  const bool onvm = config_.platform == platform::PlatformKind::kOnvm;
  const std::uint64_t hop =
      onvm ? costs_.onvm_ring_hop_cycles : costs_.bess_hop_cycles;
  // Scalar = a burst of one: the packet carries the whole rx fixed cost.
  const std::uint64_t ingress = costs_.rx_burst_fixed_cycles;

  for (std::size_t i = 0; i < chain_.size(); ++i) {
    const std::uint64_t t0 = util::CycleClock::now();
    chain_.nf(i).process(packet, nullptr);
    const std::uint64_t cycles =
        util::CycleClock::segment(t0, util::CycleClock::now());

    outcome.work_cycles += cycles;
    outcome.latency_cycles += cycles + hop;
    if (config_.measure_per_nf) {
      per_nf_cycle_sum_[i] += cycles + hop;
      ++per_nf_cycle_count_[i];
    }
    if (metrics_ != nullptr && i < metrics_->per_nf.size()) {
      metrics_->per_nf[i].packets.add(1);
      metrics_->per_nf[i].cycles.record(cycles);
    }
    if (trace) {
      spans->event(telemetry::SpanStage::kNf, outcome.work_cycles,
                   static_cast<int>(i));
    }
    // ONVM pipeline: each NF core is a stage (steady state only); the
    // first stage fronts the rx burst.
    if (onvm && !outcome.initial) {
      add_stage_sample(i, cycles + hop + (i == 0 ? ingress : 0));
    }

    if (packet.dropped()) {
      outcome.dropped = true;
      outcome.faulted = packet.faulted();
      break;
    }
  }
  outcome.latency_cycles += ingress;
  outcome.platform_cycles = outcome.latency_cycles;
  // BESS run-to-completion: one logical stage.
  if (!onvm && !outcome.initial) add_stage_sample(0, outcome.latency_cycles);
  if (trace) {
    spans->finish(/*fast_path=*/false, outcome.dropped,
                  outcome.work_cycles);
  }
  return outcome;
}

void ChainRunner::run_recording_path(
    net::Packet& packet,
    const core::PacketClassifier::Classification& classification,
    std::uint64_t classify_cycles, std::uint64_t t_start,
    std::uint64_t ingress_cycles, PacketOutcome& outcome) {
  const bool onvm = config_.platform == platform::PlatformKind::kOnvm;
  const std::uint64_t hop =
      onvm ? costs_.onvm_ring_hop_cycles : costs_.bess_hop_cycles;

  outcome.work_cycles = classify_cycles;
  outcome.latency_cycles = classify_cycles + ingress_cycles;
  // Slow path: each segment below has its own timer pair, so telemetry
  // between segments stays invisible to the reported cycles.
  telemetry::SpanRecorder* spans =
      metrics_ != nullptr && metrics_->spans.enabled() ? &metrics_->spans
                                                       : nullptr;
  bool trace = false;
  if (metrics_ != nullptr) {
    metrics_->classify_cycles.record(classify_cycles);
    if (spans != nullptr && spans->should_sample(classification.fid)) {
      trace = true;
      spans->begin(classification.fid, classification.fid, t_start);
      spans->event(telemetry::SpanStage::kClassify, classify_cycles);
    }
  }
  // Recording pass down the original chain, then consolidation.
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    core::SpeedyBoxContext ctx{chain_.local_mat(i),
                               chain_.global_mat().event_table(),
                               classification.fid};
    const std::uint64_t t0 = util::CycleClock::now();
    chain_.nf(i).process(packet, &ctx);
    const std::uint64_t cycles =
        util::CycleClock::segment(t0, util::CycleClock::now());
    outcome.work_cycles += cycles;
    outcome.latency_cycles += cycles + hop;
    if (metrics_ != nullptr && i < metrics_->per_nf.size()) {
      metrics_->per_nf[i].packets.add(1);
      metrics_->per_nf[i].cycles.record(cycles);
    }
    if (trace) {
      spans->event(telemetry::SpanStage::kNf, outcome.work_cycles,
                   static_cast<int>(i));
    }
    if (packet.dropped()) {
      outcome.dropped = true;
      outcome.faulted = packet.faulted();
      break;
    }
  }
  const std::uint64_t t0 = util::CycleClock::now();
  chain_.global_mat().consolidate_flow(classification.fid);
  const std::uint64_t consolidate_cycles =
      util::CycleClock::segment(t0, util::CycleClock::now());
  outcome.work_cycles += consolidate_cycles;
  outcome.latency_cycles += consolidate_cycles;
  outcome.platform_cycles = outcome.latency_cycles;
  if (metrics_ != nullptr) {
    metrics_->consolidations.add(1);
    metrics_->consolidate_cycles.record(consolidate_cycles);
    metrics_->active_flows.set(chain_.classifier().active_flows());
    const core::FlowTableStats ft = chain_.flow_table_stats();
    metrics_->set_flow_table(ft.entries, ft.capacity, ft.slab_bytes,
                             ft.max_probe, ft.resize_steps);
  }
  if (trace) {
    spans->event(telemetry::SpanStage::kConsolidate, outcome.work_cycles);
    spans->finish(/*fast_path=*/false, outcome.dropped,
                  outcome.work_cycles);
  }
}

void ChainRunner::run_fast_path(
    net::Packet& packet,
    const core::PacketClassifier::Classification& classification,
    std::uint64_t t_start, std::uint64_t classify_cycles_ahead,
    std::uint64_t ingress_cycles, PacketOutcome& outcome) {
  const bool onvm = config_.platform == platform::PlatformKind::kOnvm;
  const std::uint64_t hop =
      onvm ? costs_.onvm_ring_hop_cycles : costs_.bess_hop_cycles;

  // Fast path: Global MAT (event check + consolidated HA + SF batches).
  const auto result = chain_.global_mat().process(
      packet, /*measure_batches=*/true, &classification.parsed);
  // Remove this measurement's own overhead plus that of the timer pairs
  // GlobalMat used internally for batch attribution, then add back the
  // classifier cycles measured outside this region (the batched pass times
  // classification once per burst; scalar callers pass 0 and start the
  // region before classify).
  const std::uint64_t raw = util::CycleClock::now() - t_start;
  const std::uint64_t timer_cost =
      util::CycleClock::timer_overhead() * (1 + result.timer_pairs);
  const std::uint64_t total =
      classify_cycles_ahead + (raw > timer_cost ? raw - timer_cost : 0);

  outcome.dropped = result.dropped;
  outcome.degraded = result.degraded_rule;
  outcome.events_triggered = result.events_triggered;
  outcome.work_cycles = total;
  outcome.platform_cycles = total + hop + ingress_cycles;

  // Latency model: everything except the state functions (classifier,
  // event check, consolidated header action) is serial; state functions
  // contribute their Table-I critical path plus one fork/join per
  // multi-batch group — adaptively: a group is only dispatched in
  // parallel when the overlap actually beats the fork/join cost, so
  // parallelism never makes latency worse. With parallelism modeling off
  // (Fig. 7 ablation) state functions count sequentially.
  const std::uint64_t serial =
      total > result.sf_total_cycles ? total - result.sf_total_cycles : 0;
  std::uint64_t sf_cycles = result.sf_total_cycles;
  if (config_.model_parallelism && result.multi_batch_groups > 0) {
    const std::uint64_t parallel =
        result.sf_critical_path_cycles +
        costs_.fork_join_cycles *
            static_cast<std::uint64_t>(result.multi_batch_groups);
    sf_cycles = std::min(sf_cycles, parallel);
  }
  outcome.fast_path = true;
  outcome.latency_cycles = serial + sf_cycles + hop + ingress_cycles;
  outcome.latency_cycles_sequential =
      serial + result.sf_total_cycles + hop + ingress_cycles;

  // Rate model stages (steady state): the serial front end and the
  // state-function execution pipeline against each other on ONVM; on
  // BESS the whole fast path is one logical stage. The front end fronts
  // the rx burst, so its stage carries the ingress share.
  if (onvm) {
    add_stage_sample(0, serial + hop + ingress_cycles);
    if (sf_cycles > 0) add_stage_sample(1, sf_cycles);
  } else {
    add_stage_sample(0, outcome.latency_cycles);
  }

  // Fast path: one timer pair brackets the whole path, so every hook —
  // including the sampling decision — runs after the closing now().
  // Span events are rebuilt from the already-measured splits.
  telemetry::SpanRecorder* spans =
      metrics_ != nullptr && metrics_->spans.enabled() ? &metrics_->spans
                                                       : nullptr;
  if (spans != nullptr && spans->should_sample(classification.fid)) {
    spans->begin(classification.fid, classification.fid, t_start);
    spans->event(telemetry::SpanStage::kHeaderAction, serial);
    if (result.sf_total_cycles > 0) {
      spans->event(telemetry::SpanStage::kStateFunctions, total);
    }
    spans->finish(/*fast_path=*/true, outcome.dropped, total);
  }
}

void ChainRunner::apply_teardown(
    const core::PacketClassifier::Classification& classification) {
  // Flow teardown (FIN/RST): free all rules and the FID (§VI-B).
  if (!classification.teardown) return;
  chain_.global_mat().erase_flow(classification.fid);
  chain_.classifier().release_flow(classification.fid);
  if (metrics_ != nullptr) {
    metrics_->teardowns.add(1);
    metrics_->active_flows.set(chain_.classifier().active_flows());
    const core::FlowTableStats ft = chain_.flow_table_stats();
    metrics_->set_flow_table(ft.entries, ft.capacity, ft.slab_bytes,
                             ft.max_probe, ft.resize_steps);
  }
}

PacketOutcome ChainRunner::process_speedybox(net::Packet& packet) {
  PacketOutcome outcome;
  // One timer pair covers classification AND the fast path, so per-packet
  // measurement overhead matches the original path's per-NF timers.
  // Scalar = a burst of one: the packet carries the whole rx fixed cost.
  const std::uint64_t ingress = costs_.rx_burst_fixed_cycles;
  const std::uint64_t t_start = util::CycleClock::now();
  const auto classification = chain_.classifier().classify(packet);
  if (!classification) {
    packet.mark_dropped();
    outcome.dropped = true;
    outcome.work_cycles = util::CycleClock::now() - t_start;
    outcome.platform_cycles = outcome.latency_cycles =
        outcome.work_cycles + ingress;
    return outcome;
  }

  outcome.initial =
      classification->path == core::PacketClassifier::Path::kInitial;
  if (outcome.initial && recording_suspended()) {
    // Graceful degradation (DESIGN.md §9): no recording traversal — the
    // flow gets a pre-consolidated pure-forward default rule and this
    // packet executes it on the fast path. The install cost lands inside
    // the measured region, which is honest: degraded initials pay it.
    chain_.global_mat().install_default_rule(classification->fid);
    ++stats_.overload.degraded_flows;
    if (metrics_ != nullptr) metrics_->degraded_flows.add(1);
    run_fast_path(packet, *classification, t_start,
                  /*classify_cycles_ahead=*/0, ingress, outcome);
  } else if (outcome.initial) {
    const std::uint64_t classify_cycles =
        util::CycleClock::segment(t_start, util::CycleClock::now());
    run_recording_path(packet, *classification, classify_cycles, t_start,
                       ingress, outcome);
  } else {
    run_fast_path(packet, *classification, t_start,
                  /*classify_cycles_ahead=*/0, ingress, outcome);
  }
  apply_teardown(*classification);
  return outcome;
}

PacketOutcome ChainRunner::process_packet(net::Packet& packet) {
  if (controller_ != nullptr) {
    PacketOutcome shed_outcome;
    if (!ingress_admit(packet, shed_outcome)) return shed_outcome;
  }
  const PacketOutcome outcome = config_.speedybox
                                    ? process_speedybox(packet)
                                    : process_original(packet);
  account(outcome);
  return outcome;
}

void ChainRunner::process_batch(net::PacketBatch& batch,
                                std::vector<PacketOutcome>& outcomes) {
  outcomes.assign(batch.size(), PacketOutcome{});
  if (batch.empty()) return;
  if (controller_ != nullptr) {
    // Ingress gate, in slot order, before any chain work: shed slots are
    // masked out of the traversal (they never entered the data path and
    // are not counted in RunStats.packets).
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!batch.valid(i)) continue;
      if (!ingress_admit(batch.packet(i), outcomes[i])) batch.mask(i);
    }
  }
  if (metrics_ != nullptr) metrics_->batch_occupancy.record(batch.size());
  if (config_.speedybox) {
    process_speedybox_batch(batch, outcomes);
  } else {
    process_original_batch(batch, outcomes);
  }
}

void ChainRunner::process_original_batch(
    net::PacketBatch& batch, std::vector<PacketOutcome>& outcomes) {
  const bool onvm = config_.platform == platform::PlatformKind::kOnvm;
  const std::uint64_t hop =
      onvm ? costs_.onvm_ring_hop_cycles : costs_.bess_hop_cycles;
  const std::size_t n = batch.size();

  // Pre-pass in slot order, outside the measured regions: stats-side
  // init/sub tagging and span sampling, exactly the per-packet bookkeeping
  // the scalar path does before its NF loop. The insert/erase sequence on
  // seen_tuples_ only depends on the tuple order, which slots preserve.
  telemetry::SpanRecorder* spans =
      metrics_ != nullptr && metrics_->spans.enabled() ? &metrics_->spans
                                                       : nullptr;
  std::vector<std::uint8_t> traced(n, 0);
  // Slots already masked when the batch arrives are skipped end to end —
  // only slots live here are processed and accounted.
  std::vector<std::uint8_t> entered_batch(n);
  std::size_t live_entry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    entered_batch[i] = batch.valid(i) ? 1 : 0;
    if (!batch.valid(i)) continue;
    ++live_entry;
    if (const auto parsed = net::parse_packet(batch.packet(i))) {
      const net::FiveTuple tuple =
          net::extract_five_tuple(batch.packet(i), *parsed);
      outcomes[i].initial = seen_tuples_.insert(tuple).second;
      if (parsed->has_fin_or_rst()) seen_tuples_.erase(tuple);
      if (spans != nullptr && spans->should_sample(tuple.hash())) {
        traced[i] = 1;
        spans->begin(tuple.hash(), net::kInvalidFid,
                     util::CycleClock::now());
      }
    }
  }

  // One rx-burst fixed cost per batch, shared by the packets that entered
  // it — the vector-I/O amortization (a burst of one pays it all).
  const std::uint64_t ingress =
      live_entry > 0 ? costs_.rx_burst_fixed_cycles / live_entry : 0;

  // NF-major traversal: NF k processes the whole burst (one timer pair per
  // NF per batch), then hands it to NF k+1 — the BESS/VPP execution shape.
  // Per-flow packet order within each NF is slot order, and no state is
  // shared across NFs on the original path, so every NF sees exactly the
  // state and bytes it would packet-at-a-time. A slot masked by NF k
  // (dropped) skips NFs k+1.. — the scalar early exit.
  std::vector<std::uint8_t> entered(n);
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    std::size_t live = 0;
    for (std::size_t s = 0; s < n; ++s) {
      entered[s] = batch.valid(s) ? 1 : 0;
      live += entered[s];
    }
    if (live == 0) break;

    const std::uint64_t t0 = util::CycleClock::now();
    chain_.nf(i).process_batch(batch, {});
    const std::uint64_t cycles =
        util::CycleClock::segment(t0, util::CycleClock::now());
    // Per-packet attribution: equal share of the batch segment (the batch
    // amortizes the timer pair; at batch size 1 this is the scalar number).
    const std::uint64_t share = cycles / live;

    for (std::size_t s = 0; s < n; ++s) {
      if (entered[s] == 0) continue;
      outcomes[s].work_cycles += share;
      outcomes[s].latency_cycles += share + hop;
      if (config_.measure_per_nf) {
        per_nf_cycle_sum_[i] += share + hop;
        ++per_nf_cycle_count_[i];
      }
      if (metrics_ != nullptr && i < metrics_->per_nf.size()) {
        metrics_->per_nf[i].packets.add(1);
        metrics_->per_nf[i].cycles.record(share);
      }
      if (traced[s] != 0) {
        spans->event(telemetry::SpanStage::kNf, outcomes[s].work_cycles,
                     static_cast<int>(i));
      }
      if (onvm && !outcomes[s].initial) {
        add_stage_sample(i, share + hop + (i == 0 ? ingress : 0));
      }
      if (batch.packet(s).dropped()) {
        outcomes[s].dropped = true;
        outcomes[s].faulted = batch.packet(s).faulted();
      }
    }
  }

  for (std::size_t s = 0; s < n; ++s) {
    if (entered_batch[s] == 0) continue;
    outcomes[s].latency_cycles += ingress;
    outcomes[s].platform_cycles = outcomes[s].latency_cycles;
    if (!onvm && !outcomes[s].initial) {
      add_stage_sample(0, outcomes[s].latency_cycles);
    }
    if (traced[s] != 0) {
      spans->finish(/*fast_path=*/false, outcomes[s].dropped,
                    outcomes[s].work_cycles);
    }
    account(outcomes[s]);
  }
}

void ChainRunner::process_speedybox_batch(
    net::PacketBatch& batch, std::vector<PacketOutcome>& outcomes) {
  const std::size_t n = batch.size();

  // Stateless pre-pass: parse + checksum-validate every live packet once
  // for the whole traversal (what the scalar classifier does per packet).
  std::vector<std::optional<net::ParsedPacket>> parsed(n);
  std::vector<net::FiveTuple> tuples(n);
  std::size_t live_entry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!batch.valid(i)) continue;
    ++live_entry;
    const net::Packet& packet = batch.packet(i);
    auto p = net::parse_packet(packet);
    if (p && net::verify_ipv4_checksum(packet, p->l3_offset)) {
      tuples[i] = net::extract_five_tuple(packet, *p);
      parsed[i] = *p;
    }
  }
  // One rx-burst fixed cost per batch, shared by the packets that entered
  // it — the vector-I/O amortization (a burst of one pays it all).
  const std::uint64_t ingress =
      live_entry > 0 ? costs_.rx_burst_fixed_cycles / live_entry : 0;

  // Segment loop. Classification is stateful (flow-table inserts, teardown
  // releases), so the burst is classified front-to-back and cut at the one
  // ordering hazard: a packet whose 5-tuple was torn down (FIN/RST) by an
  // EARLIER slot of the same segment must not be classified until that
  // teardown has executed — scalar would see it as a fresh flow. Everything
  // else (initial-then-subsequent of one flow, cross-flow interleavings)
  // classifies identically up front because execution never touches the
  // classifier outside apply_teardown.
  std::vector<std::optional<core::PacketClassifier::Classification>>
      classifications(n);
  std::vector<net::FiveTuple> torn;
  std::size_t begin = 0;
  while (begin < n) {
    torn.clear();
    // Pass 1: classify the segment under ONE timer pair — the classifier
    // cost amortizes across the burst instead of paying a pair per packet.
    std::size_t end = begin;
    std::size_t classified = 0;
    const std::uint64_t t0 = util::CycleClock::now();
    for (; end < n; ++end) {
      if (!batch.valid(end)) continue;
      if (parsed[end] &&
          std::find(torn.begin(), torn.end(), tuples[end]) != torn.end()) {
        break;  // flush boundary: reuse of a just-torn-down tuple
      }
      classifications[end] = chain_.classifier().classify(
          batch.packet(end), parsed[end] ? &*parsed[end] : nullptr);
      ++classified;
      if (classifications[end] && classifications[end]->teardown) {
        torn.push_back(tuples[end]);
      }
    }
    const std::uint64_t classify_segment =
        util::CycleClock::segment(t0, util::CycleClock::now());
    const std::uint64_t classify_share =
        classified > 0 ? classify_segment / classified : 0;

    // Pass 2: warm the Global MAT — prefetch the consolidated rule of
    // every fast-path slot before any of them executes.
    for (std::size_t i = begin; i < end; ++i) {
      if (!batch.valid(i) || !classifications[i]) continue;
      if (classifications[i]->path ==
          core::PacketClassifier::Path::kSubsequent) {
        chain_.global_mat().prefetch(classifications[i]->fid);
      }
    }

    // Pass 3: execute in slot order — recording packets take the scalar
    // recording pass (DESIGN.md §8: once per flow, and its Local MAT
    // writes must interleave exactly as scalar), fast-path packets run the
    // consolidated rule, teardowns release their flow, all exactly where
    // the scalar loop would.
    for (std::size_t i = begin; i < end; ++i) {
      if (!batch.valid(i)) continue;
      PacketOutcome& outcome = outcomes[i];
      if (!classifications[i]) {
        batch.packet(i).mark_dropped();
        outcome.dropped = true;
        outcome.work_cycles = classify_share;
        outcome.platform_cycles = outcome.latency_cycles =
            classify_share + ingress;
        batch.mask(i);
        account(outcome);
        continue;
      }
      const auto& classification = *classifications[i];
      outcome.initial =
          classification.path == core::PacketClassifier::Path::kInitial;
      if (outcome.initial && recording_suspended()) {
        chain_.global_mat().install_default_rule(classification.fid);
        ++stats_.overload.degraded_flows;
        if (metrics_ != nullptr) metrics_->degraded_flows.add(1);
        const std::uint64_t t_fast = util::CycleClock::now();
        run_fast_path(batch.packet(i), classification, t_fast,
                      classify_share, ingress, outcome);
      } else if (outcome.initial) {
        run_recording_path(batch.packet(i), classification, classify_share,
                           t0, ingress, outcome);
      } else {
        const std::uint64_t t_fast = util::CycleClock::now();
        run_fast_path(batch.packet(i), classification, t_fast,
                      classify_share, ingress, outcome);
      }
      apply_teardown(classification);
      if (outcome.dropped) batch.mask(i);
      account(outcome);
    }
    begin = end;
  }
}

void ChainRunner::account(const PacketOutcome& outcome) {
  ++stats_.packets;
  // Faulted packets are dropped too, but counted apart from policy/NF
  // drops so conservation (packets = delivered + drops + faulted) can
  // separate failures from behavior.
  if (outcome.faulted) {
    ++stats_.overload.faulted;
  } else if (outcome.dropped) {
    ++stats_.drops;
  }
  if (outcome.degraded) ++stats_.overload.degraded_packets;
  stats_.events_triggered += outcome.events_triggered;

  if (metrics_ != nullptr) {
    metrics_->packets.add(1);
    if (outcome.faulted) {
      metrics_->faulted.add(1);
    } else if (outcome.dropped) {
      metrics_->drops.add(1);
    }
    if (outcome.degraded) metrics_->degraded_packets.add(1);
    if (outcome.events_triggered > 0) {
      metrics_->events_triggered.add(outcome.events_triggered);
    }
    if (config_.speedybox) {
      metrics_->classifier_lookups.add(1);
      if (outcome.initial) {
        metrics_->mat_misses.add(1);
      } else if (outcome.fast_path) {
        metrics_->mat_hits.add(1);
      }
    }
    if (outcome.fast_path) {
      metrics_->fastpath_cycles.record(outcome.work_cycles);
    } else if (outcome.initial || !config_.speedybox) {
      metrics_->slowpath_cycles.record(outcome.work_cycles);
    }
  }

  double latency_us = util::CycleClock::to_us(outcome.latency_cycles);
  if (controller_ != nullptr) {
    // Queueing delay model (stats-only, DESIGN.md §9): a packet admitted
    // behind a virtual queue of depth d waits ~d service times. The EMA is
    // fed the pure service latency before the wait is added, so the model
    // never compounds itself. Bounded queue => bounded reported tail.
    service_ema_us_ = service_ema_us_ <= 0.0
                          ? latency_us
                          : 0.99 * service_ema_us_ + 0.01 * latency_us;
    latency_us += controller_->queue_depth() * service_ema_us_;
  }
  stats_.latency_us_all.add(latency_us);
  if (outcome.initial) {
    stats_.latency_us_initial.add(latency_us);
    stats_.work_cycles_initial.add(
        static_cast<double>(outcome.work_cycles));
    stats_.platform_cycles_initial.add(
        static_cast<double>(outcome.platform_cycles));
  } else {
    stats_.latency_us_subsequent.add(latency_us);
    stats_.work_cycles_subsequent.add(
        static_cast<double>(outcome.work_cycles));
    stats_.platform_cycles_subsequent.add(
        static_cast<double>(outcome.platform_cycles));
    if (outcome.fast_path) {
      stats_.latency_us_subsequent_sequential.add(
          util::CycleClock::to_us(outcome.latency_cycles_sequential));
    }
  }

  if (config_.measure_per_nf) {
    stats_.per_nf_cycle_sum = per_nf_cycle_sum_;
    stats_.per_nf_cycle_count = per_nf_cycle_count_;
    stats_.per_nf_mean_cycles.assign(per_nf_cycle_sum_.size(), 0.0);
    for (std::size_t i = 0; i < per_nf_cycle_sum_.size(); ++i) {
      if (per_nf_cycle_count_[i] > 0) {
        stats_.per_nf_mean_cycles[i] =
            static_cast<double>(per_nf_cycle_sum_[i]) /
            static_cast<double>(per_nf_cycle_count_[i]);
      }
    }
  }
}

std::size_t ChainRunner::expire_idle_flows(double max_idle_us) {
  if (!config_.speedybox) return 0;
  const std::vector<std::uint32_t> idle = chain_.classifier().collect_idle(
      util::CycleClock::now(),
      util::CycleClock::from_ns(max_idle_us * 1e3));
  for (const std::uint32_t fid : idle) {
    chain_.global_mat().erase_flow(fid);
    chain_.classifier().release_flow(fid);
  }
  return idle.size();
}

const RunStats& ChainRunner::run_packets(
    const std::vector<net::Packet>& packets,
    std::vector<net::Packet>* outputs) {
  std::unordered_map<net::FiveTuple, double, net::FiveTupleHash> flow_time;
  const std::size_t burst = std::max<std::size_t>(1, config_.batch_size);
  std::vector<net::Packet> local(burst);
  std::vector<std::optional<net::FiveTuple>> tuples(burst);
  std::vector<PacketOutcome> outcomes;
  if (outputs != nullptr) {
    outputs->clear();
    outputs->reserve(packets.size());
  }
  for (std::size_t offset = 0; offset < packets.size();) {
    const std::size_t chunk = std::min(burst, packets.size() - offset);
    net::PacketBatch batch{burst};
    for (std::size_t k = 0; k < chunk; ++k) {
      local[k] = packets[offset + k];
      local[k].reset_metadata();
      // Key flow time by the pre-chain tuple (unmeasured bookkeeping).
      tuples[k].reset();
      if (const auto parsed = net::parse_packet(local[k])) {
        tuples[k] = net::extract_five_tuple(local[k], *parsed);
      }
      local[k].set_arrival_cycle(util::CycleClock::now());
      batch.push(&local[k]);
    }
    process_batch(batch, outcomes);
    for (std::size_t k = 0; k < chunk; ++k) {
      if (tuples[k]) {
        flow_time[*tuples[k]] +=
            util::CycleClock::to_us(outcomes[k].latency_cycles);
      }
      if (outputs != nullptr) outputs->push_back(local[k]);
    }
    offset += chunk;
  }
  flow_time_us_.clear();
  for (const auto& [tuple, time_us] : flow_time) flow_time_us_.add(time_us);
  return stats_;
}

const RunStats& ChainRunner::run_workload(const trace::Workload& workload) {
  std::vector<double> flow_time_us(workload.flows.size(), 0.0);
  const std::size_t burst = std::max<std::size_t>(1, config_.batch_size);
  std::vector<net::Packet> local(burst);
  std::vector<PacketOutcome> outcomes;
  const std::size_t total = workload.order.size();
  for (std::size_t offset = 0; offset < total;) {
    const std::size_t chunk = std::min(burst, total - offset);
    net::PacketBatch batch{burst};
    for (std::size_t k = 0; k < chunk; ++k) {
      local[k] = workload.materialize(offset + k);
      local[k].set_arrival_cycle(util::CycleClock::now());
      batch.push(&local[k]);
    }
    process_batch(batch, outcomes);
    for (std::size_t k = 0; k < chunk; ++k) {
      flow_time_us[workload.order[offset + k].flow] +=
          util::CycleClock::to_us(outcomes[k].latency_cycles);
    }
    offset += chunk;
  }
  flow_time_us_.clear();
  for (const double t : flow_time_us) flow_time_us_.add(t);
  return stats_;
}

}  // namespace speedybox::runtime
