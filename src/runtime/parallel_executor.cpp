#include "runtime/parallel_executor.hpp"

namespace speedybox::runtime {

void ParallelExecutor::execute(
    const core::ParallelSchedule& schedule,
    const std::vector<core::StateFunctionBatch>& batches, net::Packet& packet,
    const net::ParsedPacket& parsed) {
  for (const auto& group : schedule.groups) {
    if (group.size() == 1) {
      batches[group.front()].execute(packet, parsed);
      continue;
    }
    // Fork: one task per batch; join before the next group so inter-group
    // ordering (the non-parallelizable dependencies) is preserved.
    for (const std::size_t index : group) {
      const core::StateFunctionBatch* batch = &batches[index];
      pool_.submit([batch, &packet, &parsed] {
        batch->execute(packet, parsed);
      });
    }
    pool_.wait_idle();
  }
}

}  // namespace speedybox::runtime
