// Fault-injection harness (DESIGN.md §9): wraps any NetworkFunction and
// injects, on a deterministic per-packet schedule,
//
//   * latency spikes      — busy-spin a configured number of cycles before
//                           the packet enters the NF, so the spike shows up
//                           in measured work cycles exactly like a real
//                           slow-path excursion (and, in the threaded
//                           executors, backs packets up into the SPSC rings
//                           where the overload machinery sees it);
//   * transient failures  — the NF "loses" the packet: marked dropped AND
//                           faulted, so conservation accounting separates
//                           failures from policy drops;
//   * crash-and-restore   — the wrapped NF instance is retired and replaced
//                           by a fresh clone() (configuration copied,
//                           per-flow state lost), modeling an NF restart
//                           that restores from its checkpointed config.
//
// Crash safety with consolidated rules: state functions recorded before the
// crash capture the OLD instance. The injector keeps retired instances
// alive in a graveyard, so in-flight and already-consolidated rules stay
// memory-safe — they keep mutating pre-crash state until their flows tear
// down or re-record, which is precisely the stale-state window a real
// restore-from-checkpoint exhibits.
//
// The wrapper is transparent: it reports the inner NF's name, forwards
// teardown hooks, and clone() produces an injector around a fresh inner
// clone (per-shard fault schedules run independently, like per-core
// hardware faults would).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "nf/network_function.hpp"

namespace speedybox::runtime {

struct FaultSpec {
  /// Every Nth packet is lost inside the NF (0 = off).
  std::uint64_t fail_every = 0;
  /// Every Nth packet pays a busy-spin latency spike (0 = off).
  std::uint64_t latency_every = 0;
  std::uint64_t latency_cycles = 20000;
  /// Crash + restore the NF after its Nth packet (0 = off; one-shot).
  std::uint64_t crash_at = 0;

  bool any() const noexcept {
    return fail_every != 0 || latency_every != 0 || crash_at != 0;
  }
  std::string to_string() const;
};

/// Parse a chainsim --inject-fault spec: "<nf>:<key>=<value>[,...]" where
/// <nf> names the target NF (as listed in --chain) and keys are
/// fail-every, latency-every, latency-cycles, crash-at. Returns the target
/// NF name and the spec, or nullopt on malformed input.
std::optional<std::pair<std::string, FaultSpec>> parse_fault_spec(
    std::string_view text);

class FaultInjector final : public nf::NetworkFunction {
 public:
  FaultInjector(std::unique_ptr<nf::NetworkFunction> inner, FaultSpec spec);

  void process(net::Packet& packet, core::SpeedyBoxContext* ctx) override;
  // process_batch intentionally NOT overridden: the base implementation
  // loops the scalar process() per slot, so the fault schedule sees every
  // packet in order regardless of batching.

  std::unique_ptr<nf::NetworkFunction> clone() const override;
  void on_flow_teardown(const net::FiveTuple& tuple) override;

  // Migration is transparent too: the injector delegates to the wrapped NF
  // (a crash between export and import loses the same state a crash
  // without migration would).
  bool supports_flow_migration() const override {
    return inner_->supports_flow_migration();
  }
  std::optional<std::vector<std::uint8_t>> export_flow_state(
      const net::FiveTuple& tuple) override {
    return inner_->export_flow_state(tuple);
  }
  void import_flow_state(const net::FiveTuple& tuple,
                         std::span<const std::uint8_t> bytes,
                         core::SpeedyBoxContext* ctx) override {
    inner_->import_flow_state(tuple, bytes, ctx);
  }

  const nf::NetworkFunction& inner() const noexcept { return *inner_; }
  nf::NetworkFunction& inner() noexcept { return *inner_; }
  const FaultSpec& spec() const noexcept { return spec_; }

  std::uint64_t transient_failures() const noexcept { return failures_; }
  std::uint64_t latency_spikes() const noexcept { return spikes_; }
  std::uint64_t crashes() const noexcept { return crashes_; }

 private:
  void crash_and_restore();

  std::unique_ptr<nf::NetworkFunction> inner_;
  FaultSpec spec_;
  std::uint64_t seq_ = 0;  // packets offered to this injector
  std::uint64_t failures_ = 0;
  std::uint64_t spikes_ = 0;
  std::uint64_t crashes_ = 0;
  /// Crashed instances, kept alive for the state functions that still
  /// reference them (see header comment).
  std::vector<std::unique_ptr<nf::NetworkFunction>> retired_;
};

}  // namespace speedybox::runtime
