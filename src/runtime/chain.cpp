#include "runtime/chain.hpp"

namespace speedybox::runtime {

void ServiceChain::add_nf(nf::NetworkFunction* nf) {
  local_mats_.push_back(
      std::make_unique<core::LocalMat>(nf->name(), nfs_.size()));
  nfs_.push_back(nf);

  std::vector<core::LocalMat*> mats;
  mats.reserve(local_mats_.size());
  for (const auto& mat : local_mats_) mats.push_back(mat.get());
  global_mat_.set_chain(std::move(mats));
}

void ServiceChain::reset_flows() {
  global_mat_.clear();
  classifier_.clear();
}

}  // namespace speedybox::runtime
