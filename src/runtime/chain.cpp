#include "runtime/chain.hpp"

#include <stdexcept>

namespace speedybox::runtime {

void ServiceChain::add_nf(nf::NetworkFunction* nf) {
  local_mats_.push_back(
      std::make_unique<core::LocalMat>(nf->name(), nfs_.size()));
  nfs_.push_back(nf);

  std::vector<core::LocalMat*> mats;
  mats.reserve(local_mats_.size());
  for (const auto& mat : local_mats_) mats.push_back(mat.get());
  global_mat_.set_chain(std::move(mats));
}

std::vector<std::string> ServiceChain::nf_names() const {
  std::vector<std::string> names;
  names.reserve(nfs_.size());
  for (const nf::NetworkFunction* nf : nfs_) names.push_back(nf->name());
  return names;
}

std::unique_ptr<ServiceChain> ServiceChain::clone(
    const std::string& name_suffix) const {
  auto replica = std::make_unique<ServiceChain>(name_ + name_suffix);
  for (const nf::NetworkFunction* nf : nfs_) {
    // clone_checked throws std::logic_error naming the NF when clone() is
    // unimplemented — replication fails loudly at setup, never at runtime.
    std::unique_ptr<nf::NetworkFunction> cloned = nf->clone_checked();
    nf::NetworkFunction& ref = *cloned;
    replica->owned_.push_back(std::move(cloned));
    replica->add_nf(&ref);
  }
  return replica;
}

void ServiceChain::reset_flows() {
  global_mat_.clear();
  classifier_.clear();
}

}  // namespace speedybox::runtime
