// Flow-sharded multi-core SpeedyBox runtime.
//
// The ONVM-style deployment (§VI-A) pins the NF Manager to one core, which
// caps the consolidated fast path at a single manager's throughput. The
// standard NFV answer is RSS-style flow sharding: replicate the whole
// pipeline once per core and steer each flow to one replica by hashing its
// five-tuple. Because every piece of SpeedyBox per-flow state — classifier
// FIDs, Local MAT records, Event Table entries, consolidated rules, and the
// NFs' own flow tables — is keyed by five-tuple, the chain replicates with
// no cross-shard state at all.
//
//   dispatcher (caller thread)
//     parse + symmetric five-tuple hash ──► shard = hash mod N
//     per-shard staging buffer, flushed to the shard's SPSC ring as a whole
//     burst (try_push_burst; yield on full: backpressure, never drop)
//   shard worker k (one thread per shard)
//     owns replica k of the ServiceChain (chain.clone()) and a ChainRunner
//     pops whole bursts (try_pop_burst), runs them through
//     ChainRunner::process_batch in FIFO order, records outcomes + stats
//   finish()
//     joins workers, reassembles outcomes/packets in input order, merges
//     per-shard RunStats (exact sum/count merging, see RunStats::merge_from)
//
// Concurrency contract (DESIGN.md "Sharded runtime"): the symmetric hash
// gives both directions of a connection the same shard, so every flow's
// state has exactly one writer — shard k's thread — for its whole life.
// No locks, no atomics beyond the SPSC rings and the shutdown flags.
// Per-flow FIFO order is preserved end-to-end (dispatch order within a
// shard is input order); the global output order across flows is not.
//
// Elastic resharding (DESIGN.md §10): the shard count is no longer fixed
// for the runtime's life. A control plane (src/control/) may, between two
// packets, quiesce the data path with epoch drain markers, migrate flow
// state between shard replicas, and change the number of active shards.
// The dispatcher routes with `active_shard_count()` while `shards_` keeps
// every replica ever started — retired replicas stay allocated (their
// aggregate NF state and RunStats still merge at finish()) and can be
// restarted by a later scale-up.
//
// On a single-core host the shards time-slice (results stay identical,
// overlap is zero); on a multi-core host they run truly in parallel.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "runtime/chain.hpp"
#include "runtime/executor.hpp"
#include "runtime/runner.hpp"
#include "telemetry/metrics.hpp"
#include "trace/workload.hpp"
#include "util/histogram.hpp"
#include "util/spsc_ring.hpp"

namespace speedybox::runtime {

/// Merged result of one sharded run — the same shape ChainRunner produces
/// (RunStats + per-flow times + per-packet outcomes), so figure benches and
/// chainsim report sharded runs through their existing paths.
struct ShardedRunResult {
  /// Exact merge of the per-shard stats (samples appended, sums added).
  RunStats stats;
  std::vector<RunStats> shard_stats;
  /// Packets dispatched to each shard.
  std::vector<std::uint64_t> shard_packets;
  /// Per input packet, in input order.
  std::vector<PacketOutcome> outcomes;
  /// The processed packets, in input order (dropped ones keep their
  /// dropped flag set).
  std::vector<net::Packet> packets;
  /// Per-flow processing time, keyed by the pre-chain five-tuple.
  util::SampleRecorder flow_time_us;
  /// Wall-clock of the run (dispatch through join). Unlike the modeled
  /// cycle stats this includes real thread overlap, so it is what the
  /// sharding-scaling bench reports.
  double wall_seconds = 0.0;
  /// Sum of the per-shard modeled steady-state rates: the aggregate
  /// capacity of the sharded deployment.
  double aggregate_rate_mpps = 0.0;
};

class ShardedRuntime : public Executor {
 public:
  /// Invoked by the dispatcher (from inside push()) every
  /// `interval_packets` packets — the control plane's deterministic entry
  /// point for autoscaling decisions. The hook runs on the dispatcher
  /// thread at a packet boundary, so it may quiesce and reshard.
  using ScaleHook = std::function<void(ShardedRuntime&)>;

  /// Clones `prototype` once per shard (the prototype itself is never
  /// touched again) and starts one worker thread per shard. Throws
  /// std::logic_error naming the NF if any NF in the prototype does not
  /// support clone().
  ///
  /// When `registry` is non-null (it must outlive the runtime) one
  /// ShardMetrics per shard is created there (`shard_label_prefix` +
  /// "shard0", "shard1", …, with per-NF slots from the prototype's NF
  /// names) and attached to the shard's ChainRunner. Cell ownership: the
  /// shard worker writes the processing metrics, the dispatcher (the
  /// push() caller) writes that shard's ring_occupancy /
  /// backpressure_yields / ring_burst_size cells.
  ShardedRuntime(const ServiceChain& prototype, std::size_t shard_count,
                 RunConfig config = {}, std::size_t ring_capacity = 1024,
                 telemetry::Registry* registry = nullptr,
                 std::string shard_label_prefix = {});
  /// Joins the workers, draining anything still in flight (results of a
  /// never-finish()ed run are discarded, but every pushed packet is still
  /// processed — NF state and counters stay consistent).
  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  /// Dispatch one packet to its flow's shard. Packets stage per shard and
  /// flush to the ring as a whole burst once `config.batch_size` have
  /// accumulated (finish()/the destructor flush partial bursts). A flush
  /// blocks (spin-yield) while the ring lacks room — backpressure, never
  /// packet loss.
  void push(net::Packet packet);

  /// Drain everything in flight, join the workers, and merge the per-shard
  /// results. One-shot: the runtime cannot be pushed to afterwards.
  ShardedRunResult finish();

  /// Convenience one-shot run: push every packet (copied, metadata reset)
  /// in order, then finish().
  ShardedRunResult run_packets(const std::vector<net::Packet>& packets);
  ShardedRunResult run_workload(const trace::Workload& workload);

  // -- Executor interface (one-shot: run() ends in finish()) --
  std::string_view kind() const noexcept override { return "sharded"; }
  const RunStats& run(const trace::Workload& workload) override;
  const RunStats& run(const std::vector<net::Packet>& packets,
                      std::vector<net::Packet>* outputs) override;
  const RunStats& stats() const noexcept override {
    return last_result_.stats;
  }
  /// Replaces the constructor's registry wiring: one metric shard per
  /// flow shard, labelled "<label>/shard<i>". Safe while the workers spin
  /// because they never touch runner state before the first ring pop, and
  /// the ring push/pop pair orders these writes before it. Shards started
  /// later by a scale-up inherit the same registry and label scheme.
  void attach_telemetry(telemetry::Registry* registry,
                        const std::string& label) override;
  /// Forwards the policy to every shard's ChainRunner (each shard gates
  /// its own arrivals — flow state is shard-affine, so slo-early-drop can
  /// consult the shard's own MAT) and arms the real rings' watermarks so
  /// the dispatcher sheds instead of spin-blocking when a worker falls
  /// behind. Must be called before the first push.
  void set_overload_policy(const OverloadConfig& config) override;
  /// Full merged result of the last Executor::run (outcomes, packets,
  /// per-flow times) — what the equivalence harnesses compare.
  const ShardedRunResult& last_result() const noexcept {
    return last_result_;
  }

  /// Total replicas ever started (retired ones included — their chains
  /// still hold aggregate NF state and their stats merge at finish()).
  std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Replicas currently receiving new packets; shard_of() routes over
  /// exactly this prefix of `shards_`.
  std::size_t active_shard_count() const noexcept { return active_count_; }
  std::size_t shard_of(const net::FiveTuple& tuple) const noexcept;
  /// Shard k's chain replica, for state inspection and migration. Only
  /// safe to touch after finish() or while the data path is quiesced.
  ServiceChain& shard_chain(std::size_t shard);
  /// How many burst flushes found the target ring short of room and had
  /// to wait for the worker.
  std::uint64_t backpressure_waits() const noexcept {
    return backpressure_waits_;
  }
  std::uint64_t pushed() const noexcept { return next_index_; }
  /// Worst ring fill fraction across the active shards, as the dispatcher
  /// sees it — a queue-pressure signal for the autoscaling controller.
  double max_ring_occupancy() const noexcept;

  /// Install (or clear, with a null hook) the autoscaling hook. Dispatcher
  /// thread only; may be called mid-run at a packet boundary.
  void set_scale_hook(ScaleHook hook, std::uint64_t interval_packets);

  // -- Control-plane primitives (src/control/ resharding; DESIGN.md §10).
  // -- All dispatcher-thread only. Callers sequence them as
  // -- quiesce → ensure/migrate/retire → set_active_shard_count.

  /// Epoch-based quiescence: flush every staged burst, push a drain marker
  /// through every running shard's ring (markers are never shed), and spin
  /// until every worker acknowledges the epoch. On return all previously
  /// pushed packets are fully processed, every worker is idle-polling an
  /// empty ring, and the workers' chain/state writes are visible to the
  /// caller (release/acquire on the epoch).
  void quiesce();
  /// Grow the replica set to `count` workers: restarts retired shards and
  /// clones brand-new replicas from the pristine prototype as needed. New
  /// replicas inherit the telemetry registry and overload policy. Existing
  /// running shards are untouched.
  void ensure_worker_shards(std::size_t count);
  /// Stop and join every worker with index >= `count`. Call only while
  /// quiesced, after migrating the victims' flows away — a retired shard's
  /// chain keeps its aggregate NF state but must hold no active flows.
  void retire_worker_shards(std::size_t count);
  /// Change the dispatch routing width. Shards [0, count) must be running.
  void set_active_shard_count(std::size_t count);

 private:
  struct Job {
    net::Packet packet;
    std::uint64_t index = 0;
    std::optional<net::FiveTuple> tuple;
    /// Non-zero marks a quiescence drain marker, not a packet: the worker
    /// publishes this epoch once everything ahead of it is processed.
    std::uint64_t drain_epoch = 0;
  };
  /// One worker's record of a processed packet; merged at finish().
  struct Processed {
    std::uint64_t index;
    PacketOutcome outcome;
    net::Packet packet;
  };
  struct Shard {
    std::unique_ptr<ServiceChain> chain;
    std::unique_ptr<ChainRunner> runner;
    std::unique_ptr<util::SpscRing<Job>> ring;
    /// Owned by the registry; null when telemetry is off.
    telemetry::ShardMetrics* metrics = nullptr;
    std::thread thread;
    /// Dispatcher-side: worker thread currently started and not joined.
    bool running = false;
    /// Worker → dispatcher: highest drain-marker epoch fully processed.
    std::atomic<std::uint64_t> drained_epoch{0};
    /// Dispatcher → worker: retire this shard (exit once the ring drains).
    std::atomic<bool> stop{false};
    /// Dispatcher-owned burst staging: jobs collect here and hit the ring
    /// via one try_push_burst per batch_size packets instead of one
    /// try_push each.
    std::vector<Job> staging;
    // Worker-local until the thread is joined; read only afterwards (or
    // while quiesced, ordered by the drain-marker epoch handshake).
    std::vector<Processed> processed;
    std::unordered_map<net::FiveTuple, double, net::FiveTupleHash>
        flow_time_us;
  };

  void worker(Shard& shard);
  void start_worker(Shard& shard);
  /// Push shard's staged jobs into its ring (partial bursts yield-retry
  /// the remainder; with overload enabled a pressured or full ring sheds
  /// them instead). Dispatcher thread only.
  void flush_shard(Shard& shard);
  /// Record `jobs` as dispatcher-shed (ring watermark): packets marked
  /// dropped, outcomes flagged shed, counted once in the merged
  /// offered/shed_watermark at finish().
  void shed_jobs(std::span<Job> jobs);
  void join_workers();

  RunConfig config_;
  /// Pristine replica of the construction-time prototype (never processes
  /// a packet): scale-ups clone brand-new shards from it long after the
  /// caller's prototype may be gone.
  std::unique_ptr<ServiceChain> prototype_;
  std::size_t ring_capacity_ = 1024;
  telemetry::Registry* registry_ = nullptr;
  /// Label prefix for shards registered later ("<prefix>shard" — the shard
  /// index is appended).
  std::string label_prefix_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t active_count_ = 0;
  std::uint64_t quiesce_epoch_ = 0;
  ScaleHook scale_hook_;
  std::uint64_t scale_interval_ = 0;
  std::atomic<bool> done_{false};
  bool joined_ = false;
  std::uint64_t next_index_ = 0;
  std::uint64_t backpressure_waits_ = 0;
  std::uint64_t start_ns_ = 0;
  OverloadConfig overload_{};
  bool overload_set_ = false;
  /// Shed at the dispatcher, so never seen by any shard runner; merged
  /// into outcomes/packets (and the overload counters) at finish().
  std::vector<Processed> dispatcher_shed_;
  ShardedRunResult last_result_;
};

}  // namespace speedybox::runtime
