#include "runtime/sharded_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <span>
#include <stdexcept>
#include <string>

#include "net/packet_batch.hpp"
#include "util/cycle_clock.hpp"
#include "util/hash.hpp"

namespace speedybox::runtime {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ShardedRuntime::ShardedRuntime(const ServiceChain& prototype,
                               std::size_t shard_count, RunConfig config,
                               std::size_t ring_capacity,
                               telemetry::Registry* registry,
                               std::string shard_label_prefix)
    : config_(config),
      ring_capacity_(ring_capacity),
      registry_(registry),
      label_prefix_(std::move(shard_label_prefix) + "shard") {
  if (shard_count == 0) shard_count = 1;
  if (config_.batch_size == 0) config_.batch_size = 1;
  // Keep a pristine replica so later scale-ups can clone fresh shards; the
  // caller's prototype is only borrowed for the constructor's duration.
  prototype_ = prototype.clone("");
  ensure_worker_shards(shard_count);
  active_count_ = shard_count;
  start_ns_ = steady_ns();
}

ShardedRuntime::~ShardedRuntime() { join_workers(); }

std::size_t ShardedRuntime::shard_of(
    const net::FiveTuple& tuple) const noexcept {
  return util::shard_index(tuple.symmetric_hash(), active_count_);
}

ServiceChain& ShardedRuntime::shard_chain(std::size_t shard) {
  return *shards_.at(shard)->chain;
}

double ShardedRuntime::max_ring_occupancy() const noexcept {
  double worst = 0.0;
  for (std::size_t s = 0; s < active_count_; ++s) {
    const util::SpscRing<Job>& ring = *shards_[s]->ring;
    const double fill = static_cast<double>(ring.size()) /
                        static_cast<double>(ring.capacity());
    worst = std::max(worst, fill);
  }
  return worst;
}

void ShardedRuntime::set_scale_hook(ScaleHook hook,
                                    std::uint64_t interval_packets) {
  scale_hook_ = std::move(hook);
  scale_interval_ = interval_packets == 0 ? 1 : interval_packets;
}

void ShardedRuntime::push(net::Packet packet) {
  if (joined_) {
    throw std::logic_error("ShardedRuntime::push after finish()");
  }
  Job job;
  job.index = next_index_++;
  if (const auto parsed = net::parse_packet(packet)) {
    job.tuple = net::extract_five_tuple(packet, *parsed);
  }
  // Unparseable packets have no flow; any fixed shard preserves their
  // relative order.
  const std::size_t shard_index =
      job.tuple ? shard_of(*job.tuple) : std::size_t{0};
  job.packet = std::move(packet);
  Shard& shard = *shards_[shard_index];
  shard.staging.push_back(std::move(job));
  if (shard.staging.size() >= config_.batch_size) {
    flush_shard(shard);
  }
  // Scaling decisions fire at exact packet counts, independent of batch
  // size or worker timing — the property the autoscale differential-
  // equivalence harness leans on.
  if (scale_hook_ && next_index_ % scale_interval_ == 0) {
    scale_hook_(*this);
  }
}

void ShardedRuntime::shed_jobs(std::span<Job> jobs) {
  for (Job& job : jobs) {
    job.packet.mark_dropped();
    PacketOutcome outcome;
    outcome.dropped = true;
    outcome.shed = true;
    dispatcher_shed_.push_back(
        {job.index, outcome, std::move(job.packet)});
  }
}

void ShardedRuntime::flush_shard(Shard& shard) {
  if (shard.staging.empty()) return;
  util::SpscRing<Job>& ring = *shard.ring;
  telemetry::ShardMetrics* metrics = shard.metrics;
  if (metrics != nullptr) {
    metrics->ring_burst_size.set(shard.staging.size());
  }
  std::span<Job> pending{shard.staging};
  // With overload enabled a pressured ring sheds the burst outright —
  // bounded queueing instead of unbounded dispatcher blocking. The shed
  // counters live dispatcher-side only (RunStats at finish()): the shard
  // worker owns the telemetry shed cells, and the single-writer contract
  // forbids the dispatcher touching them.
  if (overload_.enabled && ring.over_watermark()) {
    shed_jobs(pending);
    shard.staging.clear();
    if (metrics != nullptr) metrics->ring_occupancy.set(ring.size());
    return;
  }
  // A partial try_push_burst moves out exactly the slots it reports and
  // leaves the remainder intact, so the backpressure loop retries the
  // un-pushed tail until the worker frees room.
  bool waited = false;
  while (!pending.empty()) {
    const std::size_t pushed = ring.try_push_burst(pending);
    pending = pending.subspan(pushed);
    if (pending.empty()) break;
    if (overload_.enabled) {
      // Full ring under overload: shed the remainder, never block.
      shed_jobs(pending);
      break;
    }
    if (!waited) {
      waited = true;
      ++backpressure_waits_;
    }
    if (metrics != nullptr) metrics->backpressure_yields.add(1);
    std::this_thread::yield();
  }
  shard.staging.clear();
  // Dispatcher-owned gauge (see constructor comment): depth after this
  // flush, as the dispatcher sees it.
  if (metrics != nullptr) metrics->ring_occupancy.set(ring.size());
}

void ShardedRuntime::worker(Shard& shard) {
  const std::size_t burst = config_.batch_size;
  std::vector<Job> jobs(burst);
  std::vector<std::size_t> live;  // burst slots that carry real packets
  std::vector<PacketOutcome> outcomes;
  net::PacketBatch batch{burst};
  for (;;) {
    const std::size_t popped =
        shard.ring->try_pop_burst(std::span<Job>{jobs});
    if (popped == 0) {
      if ((done_.load(std::memory_order_acquire) ||
           shard.stop.load(std::memory_order_acquire)) &&
          shard.ring->empty()) {
        return;
      }
      std::this_thread::yield();
      continue;
    }
    batch.clear();
    live.clear();
    std::uint64_t marker_epoch = 0;
    for (std::size_t i = 0; i < popped; ++i) {
      if (jobs[i].drain_epoch != 0) {
        marker_epoch = std::max(marker_epoch, jobs[i].drain_epoch);
        continue;
      }
      jobs[i].packet.set_arrival_cycle(util::CycleClock::now());
      batch.push(&jobs[i].packet);
      live.push_back(i);
    }
    if (!live.empty()) {
      shard.runner->process_batch(batch, outcomes);
      for (std::size_t k = 0; k < live.size(); ++k) {
        Job& job = jobs[live[k]];
        if (job.tuple) {
          shard.flow_time_us[*job.tuple] +=
              util::CycleClock::to_us(outcomes[k].latency_cycles);
        }
        shard.processed.push_back(
            {job.index, outcomes[k], std::move(job.packet)});
      }
    }
    if (marker_epoch != 0) {
      // Everything queued ahead of the marker is fully processed; the
      // release store pairs with quiesce()'s acquire load so the
      // dispatcher sees every chain/state write this worker made.
      shard.drained_epoch.store(marker_epoch, std::memory_order_release);
    }
  }
}

void ShardedRuntime::start_worker(Shard& shard) {
  shard.stop.store(false, std::memory_order_relaxed);
  shard.thread = std::thread([this, target = &shard] { worker(*target); });
  shard.running = true;
}

void ShardedRuntime::ensure_worker_shards(std::size_t count) {
  while (shards_.size() < count) {
    const std::size_t s = shards_.size();
    auto shard = std::make_unique<Shard>();
    shard->chain = prototype_->clone("-shard" + std::to_string(s));
    shard->runner = std::make_unique<ChainRunner>(*shard->chain, config_);
    shard->ring = std::make_unique<util::SpscRing<Job>>(ring_capacity_);
    shard->staging.reserve(config_.batch_size);
    if (registry_ != nullptr) {
      shard->metrics = &registry_->create_shard(
          label_prefix_ + std::to_string(s), prototype_->nf_names());
      shard->metrics->ring_capacity.set(shard->ring->capacity());
      shard->runner->set_telemetry(shard->metrics);
    }
    if (overload_set_) {
      shard->runner->set_overload_policy(overload_);
      const auto capacity = static_cast<double>(shard->ring->capacity());
      shard->ring->set_watermarks(
          static_cast<std::size_t>(overload_.high_watermark * capacity),
          static_cast<std::size_t>(overload_.low_watermark * capacity));
    }
    shards_.push_back(std::move(shard));
  }
  for (std::size_t s = 0; s < count; ++s) {
    Shard& shard = *shards_[s];
    if (!shard.running) start_worker(shard);
  }
}

void ShardedRuntime::retire_worker_shards(std::size_t count) {
  for (std::size_t s = count; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    if (!shard.running) continue;
    flush_shard(shard);
    shard.stop.store(true, std::memory_order_release);
    shard.thread.join();
    shard.running = false;
  }
}

void ShardedRuntime::set_active_shard_count(std::size_t count) {
  if (count == 0 || count > shards_.size()) {
    throw std::logic_error(
        "ShardedRuntime::set_active_shard_count: count out of range");
  }
  for (std::size_t s = 0; s < count; ++s) {
    if (!shards_[s]->running) {
      throw std::logic_error(
          "ShardedRuntime::set_active_shard_count: shard " +
          std::to_string(s) + " is not running");
    }
  }
  active_count_ = count;
}

void ShardedRuntime::quiesce() {
  const std::uint64_t epoch = ++quiesce_epoch_;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    if (!shard.running) continue;  // retired: joined, nothing in flight
    flush_shard(shard);
    Job marker;
    marker.drain_epoch = epoch;
    // Markers are control traffic: they bypass the watermark shed (losing
    // one would deadlock the quiesce) and spin past a full ring.
    while (!shard.ring->try_push(std::move(marker))) {
      std::this_thread::yield();
    }
  }
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    if (!shard.running) continue;
    while (shard.drained_epoch.load(std::memory_order_acquire) < epoch) {
      std::this_thread::yield();
    }
  }
}

void ShardedRuntime::join_workers() {
  if (joined_) return;
  // Partial bursts still staged dispatcher-side must reach the rings
  // before the shutdown flag, or the workers would exit with packets
  // unprocessed.
  for (auto& shard : shards_) {
    if (shard->running) flush_shard(*shard);
  }
  done_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
    shard->running = false;
  }
  joined_ = true;
}

ShardedRunResult ShardedRuntime::finish() {
  join_workers();
  ShardedRunResult result;
  result.wall_seconds =
      static_cast<double>(steady_ns() - start_ns_) / 1e9;
  result.outcomes.resize(next_index_);
  result.packets.resize(next_index_);
  result.shard_stats.reserve(shards_.size());
  result.shard_packets.reserve(shards_.size());
  // After live resharding a flow's packets may have been processed by more
  // than one shard, so per-flow times accumulate across shards by tuple
  // before becoming samples (a static run degenerates to the old
  // disjoint-keys merge).
  std::unordered_map<net::FiveTuple, double, net::FiveTupleHash> flow_time;
  for (auto& shard : shards_) {
    const RunStats& stats = shard->runner->stats();
    result.shard_stats.push_back(stats);
    result.shard_packets.push_back(stats.packets);
    result.stats.merge_from(stats);
    result.aggregate_rate_mpps += stats.rate_mpps(config_.platform);
    for (Processed& rec : shard->processed) {
      result.outcomes[rec.index] = rec.outcome;
      result.packets[rec.index] = std::move(rec.packet);
    }
    for (const auto& [tuple, time_us] : shard->flow_time_us) {
      flow_time[tuple] += time_us;
    }
    shard->processed.clear();
    shard->processed.shrink_to_fit();
  }
  for (const auto& [tuple, time_us] : flow_time) {
    result.flow_time_us.add(time_us);
  }
  // Dispatcher-shed packets never reached a shard runner, so no shard's
  // `offered` counted them: add them to both sides of the conservation
  // identity (offered == packets + shed_total) exactly once.
  result.stats.overload.offered += dispatcher_shed_.size();
  result.stats.overload.shed_watermark += dispatcher_shed_.size();
  for (Processed& rec : dispatcher_shed_) {
    result.outcomes[rec.index] = rec.outcome;
    result.packets[rec.index] = std::move(rec.packet);
  }
  dispatcher_shed_.clear();
  dispatcher_shed_.shrink_to_fit();
  return result;
}

ShardedRunResult ShardedRuntime::run_packets(
    const std::vector<net::Packet>& packets) {
  for (const net::Packet& original : packets) {
    net::Packet packet = original;
    packet.reset_metadata();
    push(std::move(packet));
  }
  return finish();
}

ShardedRunResult ShardedRuntime::run_workload(
    const trace::Workload& workload) {
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    push(workload.materialize(i));
  }
  return finish();
}

const RunStats& ShardedRuntime::run(const trace::Workload& workload) {
  last_result_ = run_workload(workload);
  return last_result_.stats;
}

const RunStats& ShardedRuntime::run(
    const std::vector<net::Packet>& packets,
    std::vector<net::Packet>* outputs) {
  last_result_ = run_packets(packets);
  if (outputs != nullptr) *outputs = last_result_.packets;
  return last_result_.stats;
}

void ShardedRuntime::attach_telemetry(telemetry::Registry* registry,
                                      const std::string& label) {
  if (next_index_ != 0) {
    throw std::logic_error(
        "ShardedRuntime::attach_telemetry after first push");
  }
  registry_ = registry;
  label_prefix_ = label + "/shard";
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    if (registry == nullptr) {
      shard.metrics = nullptr;
      shard.runner->set_telemetry(nullptr);
      continue;
    }
    shard.metrics = &registry->create_shard(
        label_prefix_ + std::to_string(s), shard.chain->nf_names());
    shard.metrics->ring_capacity.set(shard.ring->capacity());
    shard.runner->set_telemetry(shard.metrics);
  }
}

void ShardedRuntime::set_overload_policy(const OverloadConfig& config) {
  if (next_index_ != 0) {
    throw std::logic_error(
        "ShardedRuntime::set_overload_policy after first push");
  }
  overload_ = config;
  overload_set_ = true;
  for (auto& shard : shards_) {
    shard->runner->set_overload_policy(config);
    const auto capacity = static_cast<double>(shard->ring->capacity());
    shard->ring->set_watermarks(
        static_cast<std::size_t>(config.high_watermark * capacity),
        static_cast<std::size_t>(config.low_watermark * capacity));
  }
}

}  // namespace speedybox::runtime
