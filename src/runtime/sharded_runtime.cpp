#include "runtime/sharded_runtime.hpp"

#include <chrono>
#include <stdexcept>

#include "util/cycle_clock.hpp"
#include "util/hash.hpp"

namespace speedybox::runtime {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ShardedRuntime::ShardedRuntime(const ServiceChain& prototype,
                               std::size_t shard_count, RunConfig config,
                               std::size_t ring_capacity,
                               telemetry::Registry* registry,
                               std::string shard_label_prefix)
    : config_(config) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->chain = prototype.clone("-shard" + std::to_string(s));
    shard->runner = std::make_unique<ChainRunner>(*shard->chain, config_);
    shard->ring = std::make_unique<util::SpscRing<Job>>(ring_capacity);
    if (registry != nullptr) {
      shard->metrics = &registry->create_shard(
          shard_label_prefix + "shard" + std::to_string(s),
          prototype.nf_names());
      shard->metrics->ring_capacity.set(shard->ring->capacity());
      shard->runner->set_telemetry(shard->metrics);
    }
    shards_.push_back(std::move(shard));
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_[s]->thread = std::thread([this, s] { worker(s); });
  }
  start_ns_ = steady_ns();
}

ShardedRuntime::~ShardedRuntime() { join_workers(); }

std::size_t ShardedRuntime::shard_of(
    const net::FiveTuple& tuple) const noexcept {
  return util::shard_index(tuple.symmetric_hash(), shards_.size());
}

ServiceChain& ShardedRuntime::shard_chain(std::size_t shard) {
  return *shards_.at(shard)->chain;
}

void ShardedRuntime::push(net::Packet packet) {
  if (joined_) {
    throw std::logic_error("ShardedRuntime::push after finish()");
  }
  Job job;
  job.index = next_index_++;
  if (const auto parsed = net::parse_packet(packet)) {
    job.tuple = net::extract_five_tuple(packet, *parsed);
  }
  // Unparseable packets have no flow; any fixed shard preserves their
  // relative order.
  const std::size_t shard =
      job.tuple ? shard_of(*job.tuple) : std::size_t{0};
  job.packet = std::move(packet);
  util::SpscRing<Job>& ring = *shards_[shard]->ring;
  telemetry::ShardMetrics* metrics = shards_[shard]->metrics;
  // A failed try_push leaves `job` intact, so the backpressure loop can
  // keep retrying the same value until the worker frees a slot.
  if (!ring.try_push(std::move(job))) {
    ++backpressure_waits_;
    do {
      if (metrics != nullptr) metrics->backpressure_yields.add(1);
      std::this_thread::yield();
    } while (!ring.try_push(std::move(job)));
  }
  // Dispatcher-owned gauge (see constructor comment): depth after this
  // push, as the dispatcher sees it.
  if (metrics != nullptr) metrics->ring_occupancy.set(ring.size());
}

void ShardedRuntime::worker(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  for (;;) {
    std::optional<Job> job = shard.ring->try_pop();
    if (!job) {
      if (done_.load(std::memory_order_acquire) && shard.ring->empty()) {
        return;
      }
      std::this_thread::yield();
      continue;
    }
    job->packet.set_arrival_cycle(util::CycleClock::now());
    const PacketOutcome outcome =
        shard.runner->process_packet(job->packet);
    if (job->tuple) {
      shard.flow_time_us[*job->tuple] +=
          util::CycleClock::to_us(outcome.latency_cycles);
    }
    shard.processed.push_back(
        {job->index, outcome, std::move(job->packet)});
  }
}

void ShardedRuntime::join_workers() {
  if (joined_) return;
  done_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  joined_ = true;
}

ShardedRunResult ShardedRuntime::finish() {
  join_workers();
  ShardedRunResult result;
  result.wall_seconds =
      static_cast<double>(steady_ns() - start_ns_) / 1e9;
  result.outcomes.resize(next_index_);
  result.packets.resize(next_index_);
  result.shard_stats.reserve(shards_.size());
  result.shard_packets.reserve(shards_.size());
  for (auto& shard : shards_) {
    const RunStats& stats = shard->runner->stats();
    result.shard_stats.push_back(stats);
    result.shard_packets.push_back(stats.packets);
    result.stats.merge_from(stats);
    result.aggregate_rate_mpps += stats.rate_mpps(config_.platform);
    for (Processed& rec : shard->processed) {
      result.outcomes[rec.index] = rec.outcome;
      result.packets[rec.index] = std::move(rec.packet);
    }
    // Flow keys are disjoint across shards (flow affinity), so per-shard
    // per-flow sums concatenate into the global per-flow distribution.
    for (const auto& [tuple, time_us] : shard->flow_time_us) {
      result.flow_time_us.add(time_us);
    }
    shard->processed.clear();
    shard->processed.shrink_to_fit();
  }
  return result;
}

ShardedRunResult ShardedRuntime::run_packets(
    const std::vector<net::Packet>& packets) {
  for (const net::Packet& original : packets) {
    net::Packet packet = original;
    packet.reset_metadata();
    push(std::move(packet));
  }
  return finish();
}

ShardedRunResult ShardedRuntime::run_workload(
    const trace::Workload& workload) {
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    push(workload.materialize(i));
  }
  return finish();
}

}  // namespace speedybox::runtime
