// ChainRunner: executes packets through a ServiceChain under one of four
// configurations — {BESS, ONVM} × {original, SpeedyBox} — with per-packet
// cycle accounting.
//
// Measurement model (DESIGN.md §1/§5):
//   * work cycles   — really-executed CPU cycles (parsing, table lookups,
//                     inspections, consolidations). This is what the
//                     "CPU cycle per packet" figures report.
//   * latency       — work cycles plus the platform's modeled hand-off
//                     costs (BESS module hop / ONVM descriptor ring hop)
//                     plus the packet's share of the per-burst rx fixed
//                     cost (rx_burst_fixed_cycles / burst occupancy — the
//                     vector-I/O amortization, DESIGN.md §8), with
//                     state-function parallelism accounted as the Table-I
//                     critical path plus a fork/join cost.
//   * rate (Mpps)   — BESS runs to completion on one logical pipeline:
//                     rate = f / mean-latency-cycles. ONVM is pipelined
//                     across cores: rate = f / bottleneck-stage cycles.
//
// Original mode runs the chain exactly like an unmodified platform: no
// classifier, no MATs, NFs see every packet (ctx = nullptr).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include <memory>

#include "core/classifier.hpp"
#include "net/packet.hpp"
#include "net/packet_batch.hpp"
#include "platform/costs.hpp"
#include "runtime/chain.hpp"
#include "runtime/executor.hpp"
#include "runtime/overload.hpp"
#include "telemetry/metrics.hpp"
#include "trace/workload.hpp"
#include "util/histogram.hpp"

namespace speedybox::runtime {

struct RunConfig {
  platform::PlatformKind platform = platform::PlatformKind::kBess;
  bool speedybox = true;
  /// Record per-NF cycle attribution (Table III).
  bool measure_per_nf = false;
  /// Account state-function execution as the Table-I critical path (the
  /// §V-C2 optimization). Disabled, state functions count sequentially —
  /// the ablation Fig. 7 uses to split the HA vs SF contributions.
  bool model_parallelism = true;
  /// Burst size the run loops drain in (DESIGN.md §8). 1 degenerates to
  /// packet-at-a-time; results are bit-identical at every size (the
  /// differential harness proves it) — only the amortization changes.
  std::size_t batch_size = net::kDefaultBatchSize;
  /// Overload control (DESIGN.md §9). Disabled: the ingress gate does not
  /// exist and the data path is byte-identical to a config without it.
  OverloadConfig overload{};
};

struct PacketOutcome {
  bool initial = false;
  bool dropped = false;
  bool fast_path = false;  // subsequent packet on the SpeedyBox path
  std::uint64_t work_cycles = 0;     // really-executed CPU cycles
  /// work + per-NF platform framework overhead (no parallelism discount) —
  /// the "CPU cycle per packet" a platform-level measurement reports, which
  /// is what the paper's Fig. 4/6 and Table III count.
  std::uint64_t platform_cycles = 0;
  std::uint64_t latency_cycles = 0;  // platform cycles w/ parallel overlap
  /// Fast path only: latency with state functions accounted sequentially.
  std::uint64_t latency_cycles_sequential = 0;
  std::size_t events_triggered = 0;
  /// Overload/fault disposition (DESIGN.md §9). `shed`: refused at the
  /// ingress gate (also dropped; never entered the chain, not counted in
  /// RunStats.packets). `faulted`: lost to an injected NF failure (also
  /// dropped; counted in overload.faulted, not in drops). `degraded`:
  /// executed a degraded-mode default rule.
  bool shed = false;
  bool faulted = false;
  bool degraded = false;
};

/// Aggregated statistics of a run.
struct RunStats {
  util::SampleRecorder latency_us_all;
  util::SampleRecorder latency_us_initial;
  util::SampleRecorder latency_us_subsequent;
  /// Same packets, with state functions accounted sequentially (parallelism
  /// off) — lets the Fig. 7 ablation split HA vs SF contributions from one
  /// run, free of cross-run noise. Only filled on the SpeedyBox fast path.
  util::SampleRecorder latency_us_subsequent_sequential;
  util::SampleRecorder work_cycles_initial;
  util::SampleRecorder work_cycles_subsequent;
  util::SampleRecorder platform_cycles_initial;
  util::SampleRecorder platform_cycles_subsequent;

  std::uint64_t packets = 0;
  std::uint64_t drops = 0;
  std::uint64_t events_triggered = 0;

  /// Per-NF mean work cycles on the original path (measure_per_nf).
  std::vector<double> per_nf_mean_cycles;
  /// Raw per-NF sums/counts behind the means — kept so per-shard stats can
  /// be merged exactly instead of averaging averages.
  std::vector<std::uint64_t> per_nf_cycle_sum;
  std::vector<std::uint64_t> per_nf_cycle_count;

  /// Pipeline-stage cycle sums/counts for the rate model (subsequent
  /// packets only; see header comment).
  std::vector<double> stage_cycle_sum;
  std::vector<std::uint64_t> stage_cycle_count;

  /// Shed/degraded/faulted counters (DESIGN.md §9). `packets` above counts
  /// ADMITTED packets only; conservation is
  ///   overload.offered == packets + overload.shed_total()   (gate on)
  ///   packets == delivered + drops + overload.faulted       (always)
  OverloadStats overload;

  /// Steady-state processing rate in Mpps under the platform model.
  double rate_mpps(platform::PlatformKind platform) const;

  /// Absorb another run's statistics (sharded runtime result merging):
  /// sample recorders append, counters and per-NF/stage sums add, means are
  /// recomputed from the merged sums.
  void merge_from(const RunStats& other);

  double mean_work_cycles_subsequent() const {
    return work_cycles_subsequent.mean();
  }
};

class ChainRunner : public Executor {
 public:
  ChainRunner(ServiceChain& chain, RunConfig config,
              const platform::PlatformCosts& costs =
                  platform::PlatformCosts::calibrated());

  /// Process one packet through the configured data path.
  PacketOutcome process_packet(net::Packet& packet);

  /// Process a whole burst through the configured data path (DESIGN.md §8).
  /// `outcomes` is resized to batch.size() and slot-aligned with the batch.
  /// Semantics are bit-identical to calling process_packet() per slot in
  /// order: drops mask their slot (never compact), and on the SpeedyBox
  /// path the batched classifier pass flushes at a teardown → same-tuple
  /// reuse boundary so a flow torn down mid-batch re-records exactly as it
  /// would packet-at-a-time.
  void process_batch(net::PacketBatch& batch,
                     std::vector<PacketOutcome>& outcomes);

  /// Run a whole workload; returns aggregate stats. Per-flow processing
  /// times (Fig. 9) are recorded into flow_time_us().
  const RunStats& run_workload(const trace::Workload& workload);

  /// Run a raw packet sequence (e.g. from trace::read_pcap). Packets are
  /// copied per run; per-flow times are keyed by five-tuple. When
  /// `outputs` is non-null it receives every packet post-chain in input
  /// order, dropped ones included.
  const RunStats& run_packets(const std::vector<net::Packet>& packets,
                              std::vector<net::Packet>* outputs = nullptr);

  // -- Executor ------------------------------------------------------------
  std::string_view kind() const noexcept override { return "runner"; }
  const RunStats& run(const trace::Workload& workload) override {
    return run_workload(workload);
  }
  const RunStats& run(const std::vector<net::Packet>& packets,
                      std::vector<net::Packet>* outputs) override {
    return run_packets(packets, outputs);
  }
  void attach_telemetry(telemetry::Registry* registry,
                        const std::string& label) override;
  /// Install (or, with enabled=false, remove) the overload controller.
  /// Call before the first packet of a run.
  void set_overload_policy(const OverloadConfig& config) override;

  /// Tear down every flow idle for longer than `max_idle_us` — rule + FID +
  /// NF per-flow state (via teardown hooks). The garbage collection
  /// complementing FIN/RST for UDP and abandoned connections. Returns how
  /// many flows were expired. SpeedyBox mode only (the original path keeps
  /// no rules).
  std::size_t expire_idle_flows(double max_idle_us);

  const RunStats& stats() const noexcept override { return stats_; }
  RunStats& stats() noexcept { return stats_; }

  /// True while the SpeedyBox path records no new flows (graceful
  /// degradation under sustained pressure).
  bool recording_suspended() const noexcept {
    return controller_ != nullptr && controller_->degraded();
  }
  const OverloadController* overload_controller() const noexcept {
    return controller_.get();
  }

  /// Aggregated per-flow processing time in µs (one sample per flow of the
  /// last run_workload call).
  const util::SampleRecorder& flow_time_us() const noexcept {
    return flow_time_us_;
  }

  const RunConfig& config() const noexcept { return config_; }

  /// Attach live telemetry (null detaches — the default). The runner's
  /// thread is the single writer for every cell except the dispatcher-owned
  /// ring gauges (see telemetry/metrics.hpp). `metrics->per_nf` entries map
  /// to chain positions; when it is shorter than the chain the tail NFs
  /// simply go unattributed. Hooks only ever record cycle values the runner
  /// already measured, outside the measured regions, so attaching telemetry
  /// does not change the reported numbers; when detached every hook is one
  /// null-pointer test.
  void set_telemetry(telemetry::ShardMetrics* metrics) noexcept {
    metrics_ = metrics;
  }
  telemetry::ShardMetrics* telemetry_sink() const noexcept {
    return metrics_;
  }

 private:
  /// Overload ingress gate (DESIGN.md §9): offers the packet to the
  /// controller before any chain work. Returns true to admit; on shed the
  /// packet is marked dropped, `outcome` records the shed class, and the
  /// shed counters (not RunStats.packets) account it. No-op without a
  /// controller.
  bool ingress_admit(net::Packet& packet, PacketOutcome& outcome);
  PacketOutcome process_original(net::Packet& packet);
  PacketOutcome process_speedybox(net::Packet& packet);
  void process_original_batch(net::PacketBatch& batch,
                              std::vector<PacketOutcome>& outcomes);
  void process_speedybox_batch(net::PacketBatch& batch,
                               std::vector<PacketOutcome>& outcomes);
  /// Recording pass + consolidation for an already-classified initial
  /// packet. `classify_cycles` is this packet's (share of the) classifier
  /// cost; `t_start` anchors span timestamps; `ingress_cycles` is the
  /// packet's share of the per-burst rx fixed cost (modeled — added to
  /// latency/platform cycles, never to work cycles).
  void run_recording_path(
      net::Packet& packet,
      const core::PacketClassifier::Classification& classification,
      std::uint64_t classify_cycles, std::uint64_t t_start,
      std::uint64_t ingress_cycles, PacketOutcome& outcome);
  /// Global-MAT fast path for an already-classified subsequent packet. The
  /// measured region starts at `t_start`; `classify_cycles_ahead` is
  /// classifier cost measured elsewhere (batched pass) to add on top —
  /// scalar callers put classification inside the region and pass 0.
  /// `ingress_cycles` as in run_recording_path.
  void run_fast_path(
      net::Packet& packet,
      const core::PacketClassifier::Classification& classification,
      std::uint64_t t_start, std::uint64_t classify_cycles_ahead,
      std::uint64_t ingress_cycles, PacketOutcome& outcome);
  void apply_teardown(
      const core::PacketClassifier::Classification& classification);
  void account(const PacketOutcome& outcome);
  void add_stage_sample(std::size_t stage, std::uint64_t cycles);

  ServiceChain& chain_;
  RunConfig config_;
  platform::PlatformCosts costs_;
  telemetry::ShardMetrics* metrics_ = nullptr;
  std::unique_ptr<OverloadController> controller_;
  /// EMA of per-packet service latency (µs) — scales the virtual queue
  /// depth into the modeled queueing delay added to latency samples while
  /// the gate is active. Stats-only: never touches packet bytes.
  double service_ema_us_ = 0.0;
  RunStats stats_;
  util::SampleRecorder flow_time_us_;
  std::vector<std::uint64_t> per_nf_cycle_sum_;
  std::vector<std::uint64_t> per_nf_cycle_count_;
  /// Original mode only: stats-side init/sub tagging (there is no
  /// classifier on the original path). Maintained outside measured regions.
  std::unordered_set<net::FiveTuple, net::FiveTupleHash> seen_tuples_;
};

}  // namespace speedybox::runtime
