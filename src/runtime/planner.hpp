// Offline profile-guided consolidation planner (DESIGN.md §12, in the
// spirit of CoCo's optimized consolidation of modularized chains).
//
// Input: a ChainSpec plus a Profile — per-NF cycle statistics parsed from a
// telemetry snapshot (the JSON-lines `--metrics-out` file, aggregate.per_nf).
// Output: the DeploymentPlan predicted to meet the target rate:
//
//   * Consolidation segments: maximal runs of adjacent NFs whose state
//     functions are pairwise parallelizable under Table I (the registry's
//     payload-access metadata) are fused and marked `parallel` — their
//     per-packet cost is modeled as the bottleneck member (max) instead of
//     the sum, the §V-C2 overlap. Non-parallelizable neighbors start a new
//     segment.
//   * Shards: predicted single-core rate = cpu_hz / predicted cycles; the
//     plan shards (ceil(target/rate), capped) only when one core cannot
//     meet the target — otherwise the single-threaded runner wins (no ring
//     hops, no merge).
//   * Batch size: the default burst unless the chain is so cheap that ring
//     amortization dominates, then one notch up.
//
// The model is deliberately coarse — it ranks configurations, it does not
// forecast absolute Mpps — and every prediction is written into the plan
// (predicted_cycles_per_packet, target_rate_mpps) so bench_plan can hold
// the planner accountable against the measured default.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/plan.hpp"

namespace speedybox::plan {

struct NfProfile {
  std::string nf;  // telemetry per-NF label ("<kind>-<index>")
  std::uint64_t packets = 0;
  double mean_cycles = 0.0;
  double p95_cycles = 0.0;
};

/// Per-NF cycle statistics lifted out of a telemetry snapshot.
struct Profile {
  std::vector<NfProfile> per_nf;

  /// From one parsed snapshot document (reads aggregate.per_nf; entries
  /// with zero samples are skipped). Throws PlanError when the document
  /// has no aggregate.per_nf array.
  static Profile from_snapshot(const telemetry::Json& snapshot);
  /// From a JSON-lines `--metrics-out` capture: the LAST non-empty line
  /// (cumulative counters make it the most complete). Throws PlanError on
  /// empty input or a malformed final line.
  static Profile from_jsonl(std::string_view text);

  const NfProfile* find(std::string_view name) const noexcept;
  bool empty() const noexcept { return per_nf.empty(); }
};

struct PlannerConfig {
  /// The rate the deployment must sustain.
  double target_mpps = 1.0;
  std::size_t max_shards = 8;
  /// Core frequency for the cycles->rate conversion; 0 = this machine's
  /// measured TSC frequency (fine when profiling host == planning host).
  double cpu_ghz = 0.0;
  /// Modeled per-NF fixed cost outside the profiled work (classifier/MAT
  /// touch, ring hand-off) — what consolidation saves per fused boundary.
  double hop_cycles = 60.0;
  /// Cost assumed for an NF the profile has no samples for (a loud
  /// planner would refuse; a useful one plans conservatively).
  double default_nf_cycles = 500.0;
};

/// The planner's reasoning, for logs and tests.
struct PlanRationale {
  std::vector<double> nf_cycles;       // per-NF modeled cost (chain order)
  std::vector<bool> nf_profiled;       // false = default_nf_cycles fallback
  double predicted_cycles_per_packet = 0.0;
  double predicted_single_core_mpps = 0.0;
  std::size_t shards = 1;  // 1 = single-threaded runner
};

/// Plan `spec` against `profile` to meet `config.target_mpps`. Returns a
/// validated DeploymentPlan (runner or sharded executor, speedybox mode);
/// `rationale_out`, when non-null, receives the model's intermediates.
DeploymentPlan plan_deployment(const ChainSpec& spec, const Profile& profile,
                               const PlannerConfig& config,
                               PlanRationale* rationale_out = nullptr);

}  // namespace speedybox::plan
