// runtime::Executor — the one interface every deployment shape implements:
//
//   ChainRunner        single thread, original or SpeedyBox mode
//   SpeedyBoxPipeline  threaded manager + NF cores (§VI deployment)
//   ShardedRuntime     RSS flow sharding, N full chain replicas
//   OnvmExecutor       adapter over platform::OnvmPipeline (NF per core,
//                      descriptor rings; lives in runtime/ because the
//                      platform layer sits below runtime and cannot see
//                      this header)
//
// Call sites (chainsim, bench_util, the equivalence harnesses) dispatch
// through this interface instead of hand-rolling one loop per executor, so
// every executor gets workload driving, telemetry attachment, overload
// policy and stats reporting through the same four entry points.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "runtime/overload.hpp"

namespace speedybox::net {
class Packet;
}
namespace speedybox::trace {
struct Workload;
}
namespace speedybox::telemetry {
class Registry;
}

namespace speedybox::runtime {

struct RunStats;

class Executor {
 public:
  virtual ~Executor() = default;

  /// Short executor-shape label ("runner", "sharded", "pipeline", "onvm")
  /// — used in logs, JSON output and telemetry shard labels.
  virtual std::string_view kind() const noexcept = 0;

  /// Drive a whole workload through the data path; returns the aggregate
  /// stats (same object stats() reports). Threaded executors start their
  /// worker threads at construction and stop them here, so run() is
  /// one-shot for those shapes.
  virtual const RunStats& run(const trace::Workload& workload) = 0;

  /// Drive a raw packet sequence (e.g. from trace::read_pcap). Packets are
  /// copied per run. When `outputs` is non-null it receives every packet
  /// post-chain — dropped ones included (check Packet::dropped()) — in
  /// input order where the executor preserves it (ChainRunner,
  /// ShardedRuntime) and in completion order otherwise (the pipelines,
  /// which only guarantee per-flow FIFO and omit dropped packets).
  virtual const RunStats& run(const std::vector<net::Packet>& packets,
                              std::vector<net::Packet>* outputs) = 0;
  const RunStats& run_raw(const std::vector<net::Packet>& packets) {
    return run(packets, nullptr);
  }

  virtual const RunStats& stats() const noexcept = 0;

  /// Create this executor's metric shard(s) in `registry` under `label`
  /// (null detaches). Must be called before the first packet; the sharded
  /// runtime labels its per-shard cells "<label>/shard<i>".
  virtual void attach_telemetry(telemetry::Registry* registry,
                                const std::string& label) = 0;

  /// Install the overload policy (DESIGN.md §9). Must be called before the
  /// first packet. A config with enabled=false restores the zero-cost
  /// byte-identical default path.
  virtual void set_overload_policy(const OverloadConfig& config) = 0;
};

}  // namespace speedybox::runtime
