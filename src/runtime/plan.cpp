#include "runtime/plan.hpp"

#include "core/parallel_schedule.hpp"
#include "runtime/onvm_executor.hpp"
#include "runtime/overload.hpp"
#include "runtime/sharded_runtime.hpp"
#include "runtime/speedybox_pipeline.hpp"

namespace speedybox::plan {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw PlanError("deployment plan: " + message);
}

std::size_t size_field(const telemetry::Json& value, const char* key,
                       std::size_t lo = 1) {
  if (!value.is_integer() || value.as_integer() < lo) {
    fail(std::string("field '") + key + "' must be an integer >= " +
         std::to_string(lo));
  }
  return static_cast<std::size_t>(value.as_integer());
}

double number_field(const telemetry::Json& value, const char* key) {
  if (!value.is_number()) {
    fail(std::string("field '") + key + "' must be a number");
  }
  return value.as_number();
}

const std::string& string_field(const telemetry::Json& value,
                                const char* key) {
  if (!value.is_string()) {
    fail(std::string("field '") + key + "' must be a string");
  }
  return value.as_string();
}

telemetry::Json overload_to_json(const runtime::OverloadConfig& overload) {
  using telemetry::Json;
  Json json = Json::object();
  json.set("offered_load", Json::number(overload.offered_load));
  json.set("policy",
           Json::string(std::string(
               runtime::drop_policy_name(overload.policy))));
  json.set("queue_capacity", Json::integer(overload.queue_capacity));
  return json;
}

runtime::OverloadConfig overload_from_json(const telemetry::Json& json) {
  runtime::OverloadConfig overload;
  overload.enabled = true;
  for (const auto& [key, value] : json.members()) {
    if (key == "offered_load") {
      overload.offered_load = number_field(value, "overload.offered_load");
      if (overload.offered_load <= 0.0) {
        fail("field 'overload.offered_load' must be > 0");
      }
    } else if (key == "policy") {
      const auto policy =
          runtime::parse_drop_policy(string_field(value, "overload.policy"));
      if (!policy) {
        fail("field 'overload.policy' must be tail-drop, per-flow-fair or "
             "slo-early-drop");
      }
      overload.policy = *policy;
    } else if (key == "queue_capacity") {
      overload.queue_capacity = size_field(value, "overload.queue_capacity");
    } else {
      fail("unknown field 'overload." + key + "'");
    }
  }
  return overload;
}

}  // namespace

const char* executor_kind_name(ExecutorKind kind) noexcept {
  switch (kind) {
    case ExecutorKind::kRunner:
      return "runner";
    case ExecutorKind::kSharded:
      return "sharded";
    case ExecutorKind::kPipeline:
      return "pipeline";
    case ExecutorKind::kOnvm:
      return "onvm";
  }
  return "runner";
}

std::optional<ExecutorKind> parse_executor_kind(
    std::string_view name) noexcept {
  if (name == "runner") return ExecutorKind::kRunner;
  if (name == "sharded") return ExecutorKind::kSharded;
  if (name == "pipeline") return ExecutorKind::kPipeline;
  if (name == "onvm") return ExecutorKind::kOnvm;
  return std::nullopt;
}

ChainSpec ChainSpec::parse(std::string_view spec, std::string name) {
  ChainSpec chain;
  chain.name = std::move(name);
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string_view token = spec.substr(
        start, comma == std::string_view::npos ? std::string_view::npos
                                               : comma - start);
    if (!token.empty()) chain.nfs.push_back(nf::NfSpec::parse(token));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (chain.nfs.empty()) {
    throw PlanError("chain spec '" + std::string(spec) +
                    "' contains no NFs");
  }
  return chain;
}

std::string ChainSpec::to_string() const {
  std::string out;
  for (const nf::NfSpec& spec : nfs) {
    if (!out.empty()) out += ',';
    out += spec.to_string();
  }
  return out;
}

telemetry::Json ChainSpec::to_json() const {
  using telemetry::Json;
  Json json = Json::object();
  json.set("name", Json::string(name));
  Json tokens = Json::array();
  for (const nf::NfSpec& spec : nfs) {
    tokens.push(Json::string(spec.to_string()));
  }
  json.set("nfs", std::move(tokens));
  return json;
}

ChainSpec ChainSpec::from_json(const telemetry::Json& json) {
  if (!json.is_object()) fail("field 'chain' must be an object");
  ChainSpec chain;
  bool saw_nfs = false;
  for (const auto& [key, value] : json.members()) {
    if (key == "name") {
      chain.name = string_field(value, "chain.name");
    } else if (key == "nfs") {
      if (!value.is_array() || value.elements().empty()) {
        fail("field 'chain.nfs' must be a non-empty array of NF tokens");
      }
      for (const telemetry::Json& token : value.elements()) {
        chain.nfs.push_back(
            nf::NfSpec::parse(string_field(token, "chain.nfs[]")));
      }
      saw_nfs = true;
    } else {
      fail("unknown field 'chain." + key + "'");
    }
  }
  if (!saw_nfs) fail("missing field 'chain.nfs'");
  return chain;
}

void ChainSpec::validate() const {
  if (nfs.empty()) throw PlanError("chain '" + name + "' has no NFs");
  const nf::Registry& registry = nf::Registry::instance();
  // payload_access runs the same kind/option checks make() does, without
  // paying NF construction.
  for (const nf::NfSpec& spec : nfs) registry.payload_access(spec);
}

telemetry::Json DeploymentPlan::to_json() const {
  using telemetry::Json;
  Json json = Json::object();
  json.set("version", Json::integer(1));
  json.set("chain", chain.to_json());
  json.set("executor", Json::string(executor_kind_name(executor)));
  json.set("mode", Json::string(speedybox ? "speedybox" : "original"));
  json.set("platform", Json::string(
                           platform == platform::PlatformKind::kBess
                               ? "bess"
                               : "onvm"));
  json.set("batch_size", Json::integer(batch_size));
  if (shards > 0) json.set("shards", Json::integer(shards));
  json.set("ring_capacity", Json::integer(ring_capacity));
  if (!segments.empty()) {
    Json list = Json::array();
    for (const SegmentSpec& segment : segments) {
      Json entry = Json::object();
      entry.set("nfs", Json::integer(segment.nf_count));
      entry.set("parallel", Json::boolean(segment.parallel));
      list.push(std::move(entry));
    }
    json.set("segments", std::move(list));
  }
  if (overload.enabled) json.set("overload", overload_to_json(overload));
  if (fault.has_value()) {
    json.set("fault",
             Json::string(fault->first + ":" + fault->second.to_string()));
  }
  if (predicted_cycles_per_packet > 0.0) {
    json.set("predicted_cycles_per_packet",
             Json::number(predicted_cycles_per_packet));
  }
  if (target_rate_mpps > 0.0) {
    json.set("target_rate_mpps", Json::number(target_rate_mpps));
  }
  return json;
}

DeploymentPlan DeploymentPlan::from_json(const telemetry::Json& json) {
  if (!json.is_object()) fail("document must be a JSON object");
  DeploymentPlan deployment;
  bool saw_chain = false;
  for (const auto& [key, value] : json.members()) {
    if (key == "version") {
      if (size_field(value, "version") != 1) {
        fail("unsupported plan version " +
             std::to_string(value.as_integer()));
      }
    } else if (key == "chain") {
      deployment.chain = ChainSpec::from_json(value);
      saw_chain = true;
    } else if (key == "executor") {
      const auto kind =
          parse_executor_kind(string_field(value, "executor"));
      if (!kind) {
        fail("field 'executor' must be runner, sharded, pipeline or onvm");
      }
      deployment.executor = *kind;
    } else if (key == "mode") {
      const std::string& mode = string_field(value, "mode");
      if (mode != "speedybox" && mode != "original") {
        fail("field 'mode' must be speedybox or original");
      }
      deployment.speedybox = mode == "speedybox";
    } else if (key == "platform") {
      const std::string& name = string_field(value, "platform");
      if (name != "bess" && name != "onvm") {
        fail("field 'platform' must be bess or onvm");
      }
      deployment.platform = name == "bess" ? platform::PlatformKind::kBess
                                           : platform::PlatformKind::kOnvm;
    } else if (key == "batch_size") {
      deployment.batch_size = size_field(value, "batch_size");
    } else if (key == "shards") {
      deployment.shards = size_field(value, "shards");
    } else if (key == "ring_capacity") {
      deployment.ring_capacity = size_field(value, "ring_capacity");
    } else if (key == "segments") {
      if (!value.is_array()) fail("field 'segments' must be an array");
      for (const telemetry::Json& entry : value.elements()) {
        if (!entry.is_object()) {
          fail("field 'segments[]' must hold objects");
        }
        SegmentSpec segment;
        bool saw_count = false;
        for (const auto& [skey, svalue] : entry.members()) {
          if (skey == "nfs") {
            segment.nf_count = size_field(svalue, "segments[].nfs");
            saw_count = true;
          } else if (skey == "parallel") {
            if (!svalue.is_bool()) {
              fail("field 'segments[].parallel' must be a boolean");
            }
            segment.parallel = svalue.as_bool();
          } else {
            fail("unknown field 'segments[]." + skey + "'");
          }
        }
        if (!saw_count) fail("missing field 'segments[].nfs'");
        deployment.segments.push_back(segment);
      }
    } else if (key == "overload") {
      if (!value.is_object()) fail("field 'overload' must be an object");
      deployment.overload = overload_from_json(value);
    } else if (key == "fault") {
      deployment.fault =
          runtime::parse_fault_spec(string_field(value, "fault"));
      if (!deployment.fault || !deployment.fault->second.any()) {
        fail("field 'fault' is malformed (want \"<nf>:fail-every=N,...\" "
             "with at least one action)");
      }
    } else if (key == "predicted_cycles_per_packet") {
      deployment.predicted_cycles_per_packet =
          number_field(value, "predicted_cycles_per_packet");
    } else if (key == "target_rate_mpps") {
      deployment.target_rate_mpps =
          number_field(value, "target_rate_mpps");
    } else {
      fail("unknown field '" + key + "'");
    }
  }
  if (!saw_chain) fail("missing field 'chain'");
  return deployment;
}

DeploymentPlan DeploymentPlan::parse(std::string_view text) {
  const auto json = telemetry::Json::parse(text);
  if (!json) fail("not valid JSON");
  return from_json(*json);
}

std::vector<std::size_t> DeploymentPlan::segment_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(segments.size());
  for (const SegmentSpec& segment : segments) {
    sizes.push_back(segment.nf_count);
  }
  return sizes;
}

void DeploymentPlan::validate() const {
  chain.validate();
  if (batch_size == 0) fail("batch_size must be > 0");
  if (ring_capacity == 0) fail("ring_capacity must be > 0");
  if (executor == ExecutorKind::kSharded && shards == 0) {
    fail("the sharded executor needs shards > 0");
  }
  if (executor != ExecutorKind::kSharded && shards > 0) {
    fail("shards only applies to the sharded executor");
  }
  if (executor == ExecutorKind::kPipeline && !speedybox) {
    fail("the pipeline executor runs the SpeedyBox path only "
         "(mode must be speedybox)");
  }
  if (executor == ExecutorKind::kOnvm && speedybox) {
    fail("the onvm executor runs the original path only "
         "(mode must be original)");
  }
  if (!segments.empty()) {
    const nf::Registry& registry = nf::Registry::instance();
    std::size_t covered = 0;
    for (std::size_t s = 0; s < segments.size(); ++s) {
      const SegmentSpec& segment = segments[s];
      if (segment.nf_count == 0) {
        fail("segment " + std::to_string(s) + " is empty");
      }
      if (covered + segment.nf_count > chain.nfs.size()) break;  // -> sum check
      if (segment.parallel && segment.nf_count > 1) {
        // Table I: every ordered pair inside the segment must be
        // parallelizable — an earlier WRITE forbids any later touch.
        for (std::size_t i = covered; i < covered + segment.nf_count; ++i) {
          for (std::size_t j = i + 1; j < covered + segment.nf_count; ++j) {
            const auto a = registry.payload_access(chain.nfs[i]);
            const auto b = registry.payload_access(chain.nfs[j]);
            if (!core::parallelizable(a, b)) {
              fail("segment " + std::to_string(s) +
                   " is marked parallel but '" + chain.nfs[i].to_string() +
                   "' (" + std::string(core::payload_access_name(a)) +
                   ") and '" + chain.nfs[j].to_string() + "' (" +
                   std::string(core::payload_access_name(b)) +
                   ") violate Table I");
            }
          }
        }
      }
      covered += segment.nf_count;
    }
    if (covered != chain.nfs.size()) {
      fail("segments cover " + std::to_string(covered) + " NFs but chain '" +
           chain.name + "' has " + std::to_string(chain.nfs.size()));
    }
  }
  if (fault.has_value()) {
    bool found = false;
    for (const nf::NfSpec& spec : chain.nfs) {
      if (spec.kind == fault->first) found = true;
    }
    if (!found) {
      fail("fault target '" + fault->first + "' is not in the chain");
    }
  }
}

std::unique_ptr<runtime::ServiceChain> build_chain(
    const ChainSpec& spec,
    const std::optional<std::pair<std::string, runtime::FaultSpec>>& fault) {
  spec.validate();
  const nf::Registry& registry = nf::Registry::instance();
  auto chain = std::make_unique<runtime::ServiceChain>(spec.name);
  int index = 0;
  for (const nf::NfSpec& nf_spec : spec.nfs) {
    const std::string label =
        nf_spec.kind + "-" + std::to_string(index++);
    std::unique_ptr<nf::NetworkFunction> nf = registry.make(nf_spec, label);
    // The fault spec targets the chain-spec kind; every occurrence of that
    // NF gets its own injector (independent schedules).
    if (fault.has_value() && fault->first == nf_spec.kind) {
      nf = std::make_unique<runtime::FaultInjector>(std::move(nf),
                                                    fault->second);
    }
    chain->adopt_nf(std::move(nf));
  }
  return chain;
}

runtime::RunConfig run_config(const DeploymentPlan& plan) {
  runtime::RunConfig config{plan.platform, plan.speedybox, false};
  config.batch_size = plan.batch_size;
  config.overload = plan.overload;
  return config;
}

BuiltDeployment build(const DeploymentPlan& plan) {
  plan.validate();
  BuiltDeployment built;
  built.chain = build_chain(plan.chain, plan.fault);
  const runtime::RunConfig config = run_config(plan);
  switch (plan.executor) {
    case ExecutorKind::kRunner:
      built.executor =
          std::make_unique<runtime::ChainRunner>(*built.chain, config);
      break;
    case ExecutorKind::kSharded:
      built.executor = std::make_unique<runtime::ShardedRuntime>(
          *built.chain, plan.shards, config, plan.ring_capacity);
      break;
    case ExecutorKind::kPipeline:
      built.executor = std::make_unique<runtime::SpeedyBoxPipeline>(
          *built.chain, plan.ring_capacity, plan.segment_sizes());
      break;
    case ExecutorKind::kOnvm:
      built.executor = std::make_unique<runtime::OnvmExecutor>(
          *built.chain, plan.ring_capacity, plan.batch_size);
      break;
  }
  if (plan.overload.enabled) {
    built.executor->set_overload_policy(plan.overload);
  }
  return built;
}

ChainSpec vii_c_chain1() {
  return ChainSpec::parse(
      "nat,"
      "maglev:backends=5:table=1021:subnet=10.2.0.10:port=8000:port-stride=1,"
      "monitor,ipfilter",
      "chain1_gateway");
}

ChainSpec vii_c_chain2() {
  return ChainSpec::parse("ipfilter:drop-dst-prefix=10.1.3.0/24,snort,monitor",
                          "chain2_ids");
}

ChainSpec vii_c_chain1_heavy() {
  return ChainSpec::parse(
      "nat,"
      "maglev:backends=5:table=65537:subnet=10.2.0.10:port=8000:port-stride=1,"
      "monitor:heavy,ipfilter:blacklist=32",
      "chain1");
}

ChainSpec vii_c_chain2_heavy() {
  return ChainSpec::parse("ipfilter:blacklist=32,snort,monitor:heavy",
                          "chain2");
}

}  // namespace speedybox::plan
