#include "runtime/fault_injector.hpp"

#include <charconv>

#include "util/cycle_clock.hpp"
#include "util/logging.hpp"

namespace speedybox::runtime {

std::string FaultSpec::to_string() const {
  std::string out;
  const auto field = [&out](const char* key, std::uint64_t value) {
    if (value == 0) return;
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += std::to_string(value);
  };
  field("fail-every", fail_every);
  field("latency-every", latency_every);
  if (latency_every != 0) field("latency-cycles", latency_cycles);
  field("crash-at", crash_at);
  return out.empty() ? "none" : out;
}

std::optional<std::pair<std::string, FaultSpec>> parse_fault_spec(
    std::string_view text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos || colon == 0) return std::nullopt;
  std::string nf{text.substr(0, colon)};
  std::string_view rest = text.substr(colon + 1);
  FaultSpec spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view item =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    std::uint64_t parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc{} || ptr != value.data() + value.size()) {
      return std::nullopt;
    }
    if (key == "fail-every") {
      spec.fail_every = parsed;
    } else if (key == "latency-every") {
      spec.latency_every = parsed;
    } else if (key == "latency-cycles") {
      spec.latency_cycles = parsed;
    } else if (key == "crash-at") {
      spec.crash_at = parsed;
    } else {
      return std::nullopt;
    }
  }
  if (!spec.any()) return std::nullopt;
  return std::make_pair(std::move(nf), spec);
}

FaultInjector::FaultInjector(std::unique_ptr<nf::NetworkFunction> inner,
                             FaultSpec spec)
    : nf::NetworkFunction(inner->name()),
      inner_(std::move(inner)),
      spec_(spec) {}

void FaultInjector::process(net::Packet& packet,
                            core::SpeedyBoxContext* ctx) {
  count_packet();
  ++seq_;
  if (spec_.crash_at != 0 && seq_ == spec_.crash_at) {
    crash_and_restore();
  }
  if (spec_.latency_every != 0 && seq_ % spec_.latency_every == 0) {
    ++spikes_;
    // Busy-spin: the spike is real executed cycles, measured like any
    // other NF work and felt downstream as ring backpressure.
    const std::uint64_t t0 = util::CycleClock::now();
    while (util::CycleClock::segment(t0, util::CycleClock::now()) <
           spec_.latency_cycles) {
    }
  }
  if (spec_.fail_every != 0 && seq_ % spec_.fail_every == 0) {
    ++failures_;
    packet.mark_faulted();
    packet.mark_dropped();
    return;  // the inner NF never sees the lost packet
  }
  inner_->process(packet, ctx);
}

void FaultInjector::crash_and_restore() {
  std::unique_ptr<nf::NetworkFunction> fresh = inner_->clone();
  if (fresh == nullptr) {
    // Non-replicable NF: restore is impossible, keep the instance running.
    SB_LOG_INFO("fault_injector", "%s: crash skipped (NF not replicable)",
                name().c_str());
    return;
  }
  ++crashes_;
  SB_LOG_INFO("fault_injector", "%s: crash-and-restore after %llu packets",
              name().c_str(), static_cast<unsigned long long>(seq_));
  retired_.push_back(std::move(inner_));
  inner_ = std::move(fresh);
}

std::unique_ptr<nf::NetworkFunction> FaultInjector::clone() const {
  std::unique_ptr<nf::NetworkFunction> inner_clone = inner_->clone();
  if (inner_clone == nullptr) return nullptr;
  return std::make_unique<FaultInjector>(std::move(inner_clone), spec_);
}

void FaultInjector::on_flow_teardown(const net::FiveTuple& tuple) {
  inner_->on_flow_teardown(tuple);
}

}  // namespace speedybox::runtime
