// Overload control for the data path (DESIGN.md §9).
//
// Three cooperating mechanisms, all deterministic so equivalence and
// conservation proofs stay exact:
//
//   1. Admission control — a token bucket in virtual service-time units
//      shapes the offered load before any chain work is spent.
//   2. Bounded-queue backpressure — a discrete virtual ingress queue
//      models the arrival/service race at a configured offered-load
//      multiple of capacity; high/low watermarks with hysteresis decide
//      when to shed, and the DropPolicy decides WHO sheds:
//        * tail-drop       — shed every arrival while pressured.
//        * per-flow-fair   — shed a flow-consistent hash band sized to
//                            the excess, so surviving flows keep their
//                            full packet sequence (goodput, not just
//                            throughput).
//        * slo-early-drop  — consult the Global MAT: packets of flows
//                            whose consolidated rule already says "drop"
//                            are shed at ingress for near-zero cycles
//                            (the Table-3 early-drop consolidation turned
//                            into a load-shedding weapon); tail-drop
//                            handles the remaining excess.
//   3. Graceful degradation — sustained pressure suspends new-flow
//      recording: new flows get a pre-consolidated pure-forward default
//      rule (GlobalMat::install_default_rule) so the fast path keeps its
//      latency; recording resumes when the queue drains to the low
//      watermark.
//
// The threaded executors (SpeedyBoxPipeline, ShardedRuntime's dispatcher,
// OnvmPipeline) do not need the virtual queue — their SPSC rings ARE the
// queue — so they feed real ring occupancy through the same watermark
// hysteresis (SpscRing::over_watermark / WatermarkGate) and reuse the
// policy decision logic via OverloadController::shed_verdict.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/field_count.hpp"

namespace speedybox::runtime {

enum class DropPolicy : std::uint8_t {
  kTailDrop,
  kPerFlowFair,
  kSloEarlyDrop,
};

std::string_view drop_policy_name(DropPolicy policy) noexcept;
/// Parses "tail-drop" / "per-flow-fair" / "slo-early-drop"; nullopt on
/// anything else.
std::optional<DropPolicy> parse_drop_policy(std::string_view name) noexcept;

struct OverloadConfig {
  bool enabled = false;
  /// Offered load as a multiple of the data path's service capacity: the
  /// virtual arrival clock runs `offered_load` times faster than the
  /// service clock (2.0 = arrivals at twice the drain rate). Values <= 1
  /// still exercise the machinery but the queue stays near-empty. The
  /// threaded executors ignore this (their rings see real arrival rates).
  double offered_load = 2.0;
  DropPolicy policy = DropPolicy::kTailDrop;
  /// Virtual ingress queue bound, in packets. Also the denominator for the
  /// watermark fractions.
  std::size_t queue_capacity = 1024;
  /// Watermark fractions of queue_capacity; pressure engages at high and
  /// clears at low (hysteresis).
  double high_watermark = 0.875;
  double low_watermark = 0.5;
  /// Token-bucket admission shaping: sustained rate in service units
  /// (1.0 = exactly the drain rate) and burst depth in packets. A rate
  /// <= 0 disables the bucket — watermark shedding alone then bounds the
  /// queue.
  double admission_rate = 0.0;
  double admission_burst = 64.0;
  /// Suspend new-flow recording after this many consecutive pressured
  /// arrivals; 0 disables graceful degradation.
  std::uint32_t degrade_after = 64;
};

/// Shed/degrade counters, nested inside RunStats and merged shard-wise
/// alongside it. Conservation invariant (checked by the property tests and
/// bench_overload):
///
///   offered  == admitted + shed_admission + shed_watermark + shed_early_drop
///   admitted == delivered + drops + faulted        (RunStats.packets ==
///                                                   admitted by definition)
///
/// All counters stay zero when overload control is disabled, except
/// `faulted`, which the fault-injection harness feeds independently.
struct OverloadStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed_admission = 0;   // token bucket empty
  std::uint64_t shed_watermark = 0;   // queue pressure (any policy)
  std::uint64_t shed_early_drop = 0;  // MAT-doomed flow shed at ingress
  /// Packets lost to injected NF faults — disjoint from `drops` so
  /// conservation can separate policy drops from failures.
  std::uint64_t faulted = 0;
  std::uint64_t degraded_flows = 0;    // flows given the default rule
  std::uint64_t degraded_packets = 0;  // packets that hit a default rule
  std::uint64_t degraded_episodes = 0;
  /// Total arrivals spent inside degraded episodes (time-in-degraded, in
  /// packet-arrival units; the telemetry histogram records per-episode
  /// lengths, this keeps the exact mergeable sum).
  std::uint64_t degraded_episode_packets = 0;

  std::uint64_t shed_total() const noexcept {
    return shed_admission + shed_watermark + shed_early_drop;
  }

  void merge_from(const OverloadStats& other) noexcept;
};

/// Guard: merge_from below is field-by-field; adding a field without
/// extending it would silently drop that counter from shard merging.
static_assert(util::field_count<OverloadStats>() == 10,
              "OverloadStats changed: update merge_from (overload.cpp) and "
              "this count");

/// Hysteresis over an externally observed queue depth — the watermark
/// state machine factored out so executors with real rings (ONVM adapter)
/// can run the same semantics as the virtual queue.
class WatermarkGate {
 public:
  WatermarkGate(std::size_t high, std::size_t low) noexcept
      : high_(high), low_(low < high ? low : high) {}

  /// Feed the current depth; returns the updated pressure verdict.
  bool update(std::size_t depth) noexcept {
    pressured_ = pressured_ ? depth > low_ : depth >= high_;
    return pressured_;
  }
  bool pressured() const noexcept { return pressured_; }

 private:
  std::size_t high_;
  std::size_t low_;
  bool pressured_ = false;
};

/// Deterministic per-executor overload controller. Single-threaded: each
/// ChainRunner (and each shard's runner) owns one; the threaded executors
/// drive only the policy verdict with their real ring depths.
class OverloadController {
 public:
  enum class Decision : std::uint8_t {
    kAdmit,
    kShedAdmission,
    kShedWatermark,
    kShedEarlyDrop,
  };

  explicit OverloadController(const OverloadConfig& config) noexcept;

  /// Offer one arrival. `flow_hash` keys the per-flow-fair shed band;
  /// `doomed` says the flow's consolidated rule is already a pure drop
  /// (only consulted under slo-early-drop). Executors with real ingress
  /// rings OR pressure in via `external_pressure` (SpscRing::
  /// over_watermark) — it joins the virtual gate's verdict for policy and
  /// degradation purposes.
  Decision offer(std::uint64_t flow_hash, bool doomed,
                 bool external_pressure = false) noexcept;

  /// Pure policy verdict for executors that track queue depth themselves
  /// (real SPSC rings): given "the queue is pressured", should this
  /// arrival shed? Does not touch the virtual queue.
  Decision shed_verdict(bool pressured, std::uint64_t flow_hash,
                        bool doomed) noexcept;

  bool degraded() const noexcept { return degraded_; }
  double queue_depth() const noexcept { return depth_; }
  bool pressured() const noexcept { return gate_.pressured(); }
  const OverloadConfig& config() const noexcept { return config_; }

  /// Expected per-packet queueing delay at the current depth, in units of
  /// one packet's service time (the caller multiplies by its measured
  /// service latency EMA).
  double queue_wait_packets() const noexcept { return depth_; }

  std::uint64_t degraded_episodes() const noexcept { return episodes_; }
  std::uint64_t degraded_episode_packets() const noexcept {
    return episode_packets_total_;
  }
  /// Length (in arrivals) of the episode that ended since the last call,
  /// if any — feed to the time-in-degraded telemetry histogram.
  std::optional<std::uint64_t> take_finished_episode() noexcept {
    const auto out = finished_episode_;
    finished_episode_.reset();
    return out;
  }

 private:
  void update_degrade(bool pressured) noexcept;

  OverloadConfig config_;
  std::size_t high_;  // packets
  std::size_t low_;
  WatermarkGate gate_;
  double depth_ = 0.0;   // virtual queue occupancy, packets
  double tokens_;        // admission bucket fill
  double delta_;         // service completions per arrival (1/offered_load)
  /// Per-flow-fair: hash bands (of 1024) that shed while pressured, sized
  /// to the offered-load excess.
  std::uint64_t shed_band_slots_ = 0;
  std::uint32_t pressured_streak_ = 0;
  bool degraded_ = false;
  std::uint64_t episodes_ = 0;
  std::uint64_t episode_packets_ = 0;        // current episode
  std::uint64_t episode_packets_total_ = 0;  // all episodes
  std::optional<std::uint64_t> finished_episode_;
};

}  // namespace speedybox::runtime
