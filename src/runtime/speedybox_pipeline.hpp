// Threaded SpeedyBox deployment, ONVM-style (§VI-A): the NF Manager
// (classifier + Global MAT) runs on the caller's core; each NF runs on its
// own thread; all hand-offs go through shared-memory SPSC descriptor rings.
//
// Data-path routing, matching the paper's architecture:
//
//   initial packet      manager ──ring──► NF1(record) ─► … ─► NFn(record)
//                               ◄──────────── completion ring ────────┘
//                       manager consolidates, flow becomes READY
//   subsequent packet   manager: event check + consolidated header action
//                       (early drop here), then the descriptor — pinned to
//                       an immutable rule snapshot — visits the NF cores
//                       that own state-function batches; the others pass it
//                       through.
//   packets arriving while the flow is still recording are held at the
//   manager and released, in order, once consolidation completes — so a
//   flow's per-NF state is never touched by two cores at once.
//
// Concurrency contract (see DESIGN.md): Local MATs and the Event Table are
// internally locked (control-plane rate); each NF's internal state is only
// ever touched by its own thread (recording, its recorded state functions,
// and its flow-teardown hooks — which run as the teardown-flagged
// descriptor passes the NF's stage, never on the manager); the classifier
// and Global MAT rule map belong to the manager thread; rules are
// immutable snapshots shared via shared_ptr. The one exception to NF-state
// single ownership: state an NF shares with its registered event lambdas
// (the Event Table check runs them on the manager) must be internally
// locked by that NF — see MaglevLb::mutex_ / DosPrevention::mutex_.
//
// Per-flow FIFO order is preserved end-to-end; the global output order is
// the manager's dispatch order.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "core/flow_table.hpp"
#include "runtime/chain.hpp"
#include "runtime/executor.hpp"
#include "runtime/runner.hpp"
#include "telemetry/metrics.hpp"
#include "util/spsc_ring.hpp"

namespace speedybox::runtime {

class SpeedyBoxPipeline : public Executor {
 public:
  /// The chain (NFs, MATs, classifier) is borrowed and must outlive the
  /// pipeline; its NFs' internal state must only be inspected after
  /// stop_and_collect().
  ///
  /// `segment_sizes` partitions the chain into consolidated stages: each
  /// entry is the number of consecutive NFs fused onto one worker core
  /// (plan::DeploymentPlan::segment_sizes()). Fused NFs run sequentially
  /// in chain order on their core, so outputs are byte-identical at every
  /// partition — only the ring-hop count changes. Empty = one NF per
  /// stage, the historical shape. Throws std::invalid_argument when the
  /// sizes do not cover the chain exactly.
  explicit SpeedyBoxPipeline(ServiceChain& chain,
                             std::size_t ring_capacity = 1024,
                             std::vector<std::size_t> segment_sizes = {});
  ~SpeedyBoxPipeline();

  SpeedyBoxPipeline(const SpeedyBoxPipeline&) = delete;
  SpeedyBoxPipeline& operator=(const SpeedyBoxPipeline&) = delete;

  /// Process one packet (runs the manager logic on the caller's thread).
  void push(net::Packet packet);

  /// Drain everything in flight, join the NF threads, and return the
  /// surviving packets in dispatch order.
  std::vector<net::Packet> stop_and_collect();

  std::uint64_t drops() const noexcept { return drops_; }
  std::uint64_t recorded_flows() const noexcept { return recorded_flows_; }
  std::uint64_t held_packets() const noexcept { return held_packets_; }

  // -- Executor interface (one-shot: run() joins the NF threads) --
  //
  // The pipeline carries no cycle model (that lives in ChainRunner), so
  // its RunStats hold the counters only: packets, drops, and the overload
  // block. Output order is completion order; dropped packets are omitted.
  std::string_view kind() const noexcept override { return "pipeline"; }
  const RunStats& run(const trace::Workload& workload) override;
  const RunStats& run(const std::vector<net::Packet>& packets,
                      std::vector<net::Packet>* outputs) override;
  const RunStats& stats() const noexcept override { return stats_; }
  void attach_telemetry(telemetry::Registry* registry,
                        const std::string& label) override;
  /// The manager is the producer of the first descriptor ring, so real
  /// ring pressure (SpscRing::over_watermark) feeds the controller as
  /// external pressure alongside its virtual-queue model; policy,
  /// admission tokens and graceful degradation are shared with the
  /// single-threaded gate. Call before the first push.
  void set_overload_policy(const OverloadConfig& config) override;

  /// Attach manager-side telemetry (null detaches). Every hooked cell is
  /// written by the manager thread only — push(), completions and teardown
  /// all run there — so the single-writer contract holds with no locking.
  /// The NF worker threads are not instrumented (they carry no timers; the
  /// cycle accounting for this deployment lives in ChainRunner's model).
  void set_telemetry(telemetry::ShardMetrics* metrics) noexcept {
    metrics_ = metrics;
    if (metrics_ != nullptr && !rings_.empty()) {
      metrics_->ring_capacity.set(rings_.front()->capacity());
    }
  }

 private:
  struct Descriptor {
    /// Null for pure teardown markers (hooks-only traversal).
    net::Packet* packet = nullptr;
    std::uint32_t fid = net::kInvalidFid;
    bool recording = false;
    bool teardown = false;
    /// Fast-path packets pin the rule snapshot they execute against.
    std::shared_ptr<const core::ConsolidatedRule> rule;
  };

  enum class FlowPhase : std::uint8_t { kRecording, kReady };
  struct FlowState {
    FlowPhase phase = FlowPhase::kRecording;
    /// Packets (and their teardown flags) held while recording.
    std::deque<std::pair<net::Packet*, bool>> pending;
  };

  void worker(std::size_t stage);
  /// Overload ingress gate: manager-thread twin of
  /// ChainRunner::ingress_admit, with real first-ring pressure OR'd into
  /// the controller's virtual gate. Returns true to admit. No-op without
  /// a controller.
  bool ingress_admit(const net::Packet& packet);
  void dispatch(Descriptor descriptor);
  void drain_completions(bool block_until_idle);
  void handle_completion(Descriptor& descriptor);
  /// Fast-path a packet of a READY flow on the manager, then dispatch or
  /// finish it.
  void fast_path(net::Packet* packet, std::uint32_t fid, bool teardown);
  /// Manager-side erase of a torn-down flow (rule, classifier FID, flow
  /// record). The NF-side teardown hooks are NOT run here: they mutate
  /// NF-internal state and therefore run on the owning NF cores as the
  /// teardown-flagged descriptor traverses the rings.
  void finish_teardown(std::uint32_t fid);
  /// Route a packet-less teardown marker through the NF cores, for flows
  /// whose last packet never traverses the rings (early drop, pure
  /// header-action rules). Its completion then calls finish_teardown.
  void dispatch_teardown_marker(std::uint32_t fid);

  ServiceChain& chain_;
  /// Per-stage [begin, end) NF ranges (one worker thread + ring each).
  std::vector<std::pair<std::size_t, std::size_t>> stages_;
  telemetry::ShardMetrics* metrics_ = nullptr;
  std::unique_ptr<OverloadController> controller_;
  std::vector<std::unique_ptr<util::SpscRing<Descriptor>>> rings_;
  util::SpscRing<Descriptor> completions_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<std::atomic<bool>>> stop_flags_;

  core::FlowTable<std::uint32_t, FlowState> flows_;
  std::vector<net::Packet> sink_;
  std::size_t in_flight_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t recorded_flows_ = 0;
  std::uint64_t held_packets_ = 0;
  std::uint64_t packets_ = 0;  // admitted into the chain
  bool stopped_ = false;
  /// Counter-only Executor stats; finalized by the run() overloads.
  RunStats stats_;
};

}  // namespace speedybox::runtime
