// Threaded state-function batch executor: runs each Table-I parallel group
// by dispatching its batches to a thread pool and joining before the next
// group — real fork/join execution of the §V-C2 optimization.
//
// On multi-core hosts this yields real overlap; the benchmark harness uses
// the deterministic critical-path accounting instead (single-core
// container), but this executor is wired into GlobalMat for functional runs
// and its output equivalence is covered by tests.
#pragma once

#include "core/global_mat.hpp"
#include "util/thread_pool.hpp"

namespace speedybox::runtime {

class ParallelExecutor final : public core::BatchExecutor {
 public:
  explicit ParallelExecutor(std::size_t threads) : pool_(threads) {}

  void execute(const core::ParallelSchedule& schedule,
               const std::vector<core::StateFunctionBatch>& batches,
               net::Packet& packet,
               const net::ParsedPacket& parsed) override;

 private:
  util::ThreadPool pool_;
};

}  // namespace speedybox::runtime
