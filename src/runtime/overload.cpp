#include "runtime/overload.hpp"

#include <algorithm>
#include <cmath>

namespace speedybox::runtime {

std::string_view drop_policy_name(DropPolicy policy) noexcept {
  switch (policy) {
    case DropPolicy::kTailDrop:
      return "tail-drop";
    case DropPolicy::kPerFlowFair:
      return "per-flow-fair";
    case DropPolicy::kSloEarlyDrop:
      return "slo-early-drop";
  }
  return "tail-drop";
}

std::optional<DropPolicy> parse_drop_policy(std::string_view name) noexcept {
  if (name == "tail-drop") return DropPolicy::kTailDrop;
  if (name == "per-flow-fair") return DropPolicy::kPerFlowFair;
  if (name == "slo-early-drop") return DropPolicy::kSloEarlyDrop;
  return std::nullopt;
}

void OverloadStats::merge_from(const OverloadStats& other) noexcept {
  offered += other.offered;
  admitted += other.admitted;
  shed_admission += other.shed_admission;
  shed_watermark += other.shed_watermark;
  shed_early_drop += other.shed_early_drop;
  faulted += other.faulted;
  degraded_flows += other.degraded_flows;
  degraded_packets += other.degraded_packets;
  degraded_episodes += other.degraded_episodes;
  degraded_episode_packets += other.degraded_episode_packets;
}

namespace {

/// Per-flow-fair shed band resolution: flows map to 1024 hash bands, the
/// first `band_slots` of which shed while pressured.
constexpr std::uint64_t kBandCount = 1024;

std::uint64_t band_of(std::uint64_t flow_hash) noexcept {
  // Fibonacci scramble so adjacent flow hashes land in unrelated bands.
  return (flow_hash * 0x9E3779B97F4A7C15ull) >> 54;  // top 10 bits
}

}  // namespace

OverloadController::OverloadController(const OverloadConfig& config) noexcept
    : config_(config),
      high_(std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 config.high_watermark *
                 static_cast<double>(config.queue_capacity)))),
      low_(std::min(static_cast<std::size_t>(
                        config.low_watermark *
                        static_cast<double>(config.queue_capacity)),
                    high_)),
      gate_(high_, low_),
      tokens_(config.admission_burst),
      delta_(config.offered_load > 0.0 ? 1.0 / config.offered_load : 1.0) {
  // Shed just the excess: at offered load L, a fraction 1 - 1/L of the
  // arrivals outpace the drain. Floor of 1/8 keeps the band meaningful
  // when pressure comes from bursts rather than sustained excess.
  const double excess = std::clamp(1.0 - delta_, 0.125, 1.0);
  shed_band_slots_ = static_cast<std::uint64_t>(
      std::ceil(excess * static_cast<double>(kBandCount)));
}

OverloadController::Decision OverloadController::offer(
    std::uint64_t flow_hash, bool doomed,
    bool external_pressure) noexcept {
  // One inter-arrival gap elapses: the server completes delta_ packets and
  // the admission bucket refills accordingly.
  depth_ = std::max(0.0, depth_ - delta_);
  if (config_.admission_rate > 0.0) {
    tokens_ = std::min(config_.admission_burst,
                       tokens_ + delta_ * config_.admission_rate);
  }
  const bool pressured =
      gate_.update(static_cast<std::size_t>(depth_)) || external_pressure;
  update_degrade(pressured);

  Decision decision = Decision::kAdmit;
  if (config_.policy == DropPolicy::kSloEarlyDrop && doomed) {
    // Doomed flows shed unconditionally: their packets die at the Global
    // MAT anyway, so shedding at ingress is free goodput for the rest.
    decision = Decision::kShedEarlyDrop;
  } else if (config_.admission_rate > 0.0 && tokens_ < 1.0) {
    decision = Decision::kShedAdmission;
  } else if (pressured) {
    decision = shed_verdict(true, flow_hash, doomed);
  }

  if (decision == Decision::kAdmit) {
    if (depth_ + 1.0 > static_cast<double>(config_.queue_capacity)) {
      // Per-flow-fair survivors can still outpace the drain; the hard
      // queue bound tail-drops whatever the policy admitted past it.
      decision = Decision::kShedWatermark;
    } else {
      depth_ += 1.0;
      if (config_.admission_rate > 0.0) tokens_ -= 1.0;
    }
  }
  return decision;
}

OverloadController::Decision OverloadController::shed_verdict(
    bool pressured, std::uint64_t flow_hash, bool doomed) noexcept {
  if (config_.policy == DropPolicy::kSloEarlyDrop && doomed) {
    return Decision::kShedEarlyDrop;
  }
  if (!pressured) return Decision::kAdmit;
  if (config_.policy == DropPolicy::kPerFlowFair) {
    return band_of(flow_hash) < shed_band_slots_ ? Decision::kShedWatermark
                                                 : Decision::kAdmit;
  }
  return Decision::kShedWatermark;
}

void OverloadController::update_degrade(bool pressured) noexcept {
  if (pressured) {
    if (pressured_streak_ < UINT32_MAX) ++pressured_streak_;
  } else {
    pressured_streak_ = 0;
  }
  if (!degraded_ && config_.degrade_after > 0 &&
      pressured_streak_ >= config_.degrade_after) {
    degraded_ = true;
    ++episodes_;
    episode_packets_ = 0;
  }
  if (degraded_) {
    ++episode_packets_;
    ++episode_packets_total_;
    if (!pressured) {
      degraded_ = false;
      finished_episode_ = episode_packets_;
    }
  }
}

}  // namespace speedybox::runtime
