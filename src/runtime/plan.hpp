// The deployment-plan layer (DESIGN.md §12): chain topology and executor
// configuration as first-class, serializable data.
//
// A ChainSpec is an ordered list of registry tokens ("nat,maglev:backends=5",
// see nf/registry.hpp); a DeploymentPlan adds everything needed to run it —
// executor shape, mode, platform, batch size, shard count, ring capacity,
// overload/fault configuration, and explicit consolidation segments. Plans
// round-trip through JSON (telemetry::Json), so the offline planner
// (tools/planopt), chainsim (--plan / --emit-plan), the benches and the
// equivalence tests all exchange the same document, and plan::build() turns
// a validated plan into a ready runtime::Executor.
//
// Segments partition the chain into contiguous NF runs. The SpeedyBox
// pipeline fuses each segment onto one worker core (fewer ring hops); a
// segment marked `parallel` additionally asserts that its members' state
// functions are pairwise parallelizable under Table I — validate() enforces
// that against the registry's payload-access metadata, so a plan cannot
// claim parallelism the paper's rule forbids. The single-threaded shapes
// always run the §V-C2 parallel-schedule latency model; segments are
// validated planner metadata for them.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "nf/registry.hpp"
#include "platform/costs.hpp"
#include "runtime/chain.hpp"
#include "runtime/executor.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/runner.hpp"
#include "telemetry/json.hpp"

namespace speedybox::plan {

/// Any malformed spec/plan: parse errors, unknown fields, constraint
/// violations. Messages name the offending field and the valid choices.
class PlanError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class ExecutorKind : std::uint8_t { kRunner, kSharded, kPipeline, kOnvm };

const char* executor_kind_name(ExecutorKind kind) noexcept;
std::optional<ExecutorKind> parse_executor_kind(std::string_view name) noexcept;

/// An ordered chain of NF registry tokens. Parsing does not consult the
/// registry (unknown kinds stay representable); validate() does.
struct ChainSpec {
  std::string name = "chain";
  std::vector<nf::NfSpec> nfs;

  /// Parse "tok1,tok2,..." (tokens as in nf::NfSpec::parse). Throws
  /// PlanError on an empty spec, RegistryError on a malformed token.
  static ChainSpec parse(std::string_view spec, std::string name = "chain");
  /// Comma-joined canonical tokens; parse(to_string()) round-trips.
  std::string to_string() const;

  telemetry::Json to_json() const;
  static ChainSpec from_json(const telemetry::Json& json);

  /// Non-empty + every token resolves against the registry (kind and
  /// option keys/values). Throws PlanError / nf::RegistryError.
  void validate() const;

  bool operator==(const ChainSpec&) const = default;
};

struct SegmentSpec {
  /// Number of consecutive NFs in this segment (>= 1).
  std::size_t nf_count = 1;
  /// The members' state functions are pairwise parallelizable (Table I);
  /// checked by DeploymentPlan::validate() against the registry.
  bool parallel = false;

  bool operator==(const SegmentSpec&) const = default;
};

struct DeploymentPlan {
  ChainSpec chain;
  ExecutorKind executor = ExecutorKind::kRunner;
  /// SpeedyBox consolidation on (the fast path) vs the original per-NF
  /// traversal — chainsim's --mode, one value per plan.
  bool speedybox = true;
  platform::PlatformKind platform = platform::PlatformKind::kBess;
  std::size_t batch_size = net::kDefaultBatchSize;
  std::size_t shards = 0;  // sharded executor only (and then required)
  std::size_t ring_capacity = 1024;
  /// Consolidation segments covering the chain in order; empty = one NF
  /// per segment (the pre-plan pipeline shape).
  std::vector<SegmentSpec> segments;
  runtime::OverloadConfig overload{};
  std::optional<std::pair<std::string, runtime::FaultSpec>> fault;
  /// Planner annotations (0 = not planner-emitted).
  double predicted_cycles_per_packet = 0.0;
  double target_rate_mpps = 0.0;

  telemetry::Json to_json() const;
  /// Strict: unknown top-level fields are errors, so a typoed knob cannot
  /// silently revert to its default. Throws PlanError.
  static DeploymentPlan from_json(const telemetry::Json& json);
  /// from_json over parsed text. Throws PlanError on syntax errors too.
  static DeploymentPlan parse(std::string_view text);
  std::string dump() const { return to_json().dump(); }

  /// Cross-field constraints (throws PlanError / nf::RegistryError):
  /// non-empty registry-valid chain; executor/mode/shards legality
  /// (pipeline => speedybox, onvm => original, sharded <=> shards > 0);
  /// segments cover the chain exactly; parallel segments honor Table I;
  /// a fault target that is actually in the chain.
  void validate() const;

  /// Segment sizes for the pipeline constructor ({} when segments is
  /// empty, meaning one NF per stage).
  std::vector<std::size_t> segment_sizes() const;

  bool operator==(const DeploymentPlan& other) const {
    return dump() == other.dump();
  }
};

struct BuiltDeployment {
  // Declaration order matters: the executor borrows the chain, so it must
  // be destroyed (joining its threads) before the chain goes away.
  std::unique_ptr<runtime::ServiceChain> chain;
  std::unique_ptr<runtime::Executor> executor;
};

/// Build the chain alone: registry factories in spec order, NFs labeled
/// "<kind>-<index>", fault-injector wrapping every NF whose kind matches
/// `fault`'s target. Validates the spec first.
std::unique_ptr<runtime::ServiceChain> build_chain(
    const ChainSpec& spec,
    const std::optional<std::pair<std::string, runtime::FaultSpec>>& fault =
        std::nullopt);

/// The RunConfig a plan implies for the single-threaded/sharded shapes.
runtime::RunConfig run_config(const DeploymentPlan& plan);

/// validate() + build chain + construct the executor shape + apply the
/// overload policy. The returned executor is ready to run().
BuiltDeployment build(const DeploymentPlan& plan);

// -- Canonical §VII-C evaluation chains ------------------------------------
//
// THE single definition of the paper's two chains; every test, bench and
// tool builds them from here (ISSUE: no duplicated emplace_nf builders).

/// Chain 1 (gateway): NAT -> Maglev (5 backends 10.2.0.10+i, ports 8000+i,
/// table 1021) -> Monitor -> IpFilter(empty ACL).
ChainSpec vii_c_chain1();
/// Chain 2 (IDS): IpFilter(drop 10.1.3.0/24) -> Snort -> Monitor.
ChainSpec vii_c_chain2();

/// The heavy variants bench_fig9 drives (production-sized tables/ACLs):
/// chain 1 with a 65537-slot Maglev table, heavy monitor and a 32-rule
/// blacklist; chain 2 with the blacklist and heavy monitor.
ChainSpec vii_c_chain1_heavy();
ChainSpec vii_c_chain2_heavy();

}  // namespace speedybox::plan
