#include "runtime/planner.hpp"

#include <cmath>

#include "core/parallel_schedule.hpp"
#include "util/cycle_clock.hpp"

namespace speedybox::plan {

Profile Profile::from_snapshot(const telemetry::Json& snapshot) {
  const telemetry::Json* aggregate = snapshot.find("aggregate");
  const telemetry::Json* per_nf =
      aggregate != nullptr ? aggregate->find("per_nf") : nullptr;
  if (per_nf == nullptr || !per_nf->is_array()) {
    throw PlanError(
        "profile: snapshot has no aggregate.per_nf array (was the run "
        "recorded with --metrics-out?)");
  }
  Profile profile;
  for (const telemetry::Json& entry : per_nf->elements()) {
    NfProfile nf;
    if (const telemetry::Json* name = entry.find("nf")) {
      nf.nf = name->as_string();
    }
    if (const telemetry::Json* packets = entry.find("packets")) {
      nf.packets = packets->as_integer();
    }
    if (const telemetry::Json* cycles = entry.find("cycles")) {
      const telemetry::Json* count = cycles->find("count");
      if (count == nullptr || count->as_integer() == 0) continue;
      if (const telemetry::Json* mean = cycles->find("mean")) {
        nf.mean_cycles = mean->as_number();
      }
      if (const telemetry::Json* p95 = cycles->find("p95")) {
        nf.p95_cycles = p95->as_number();
      }
    }
    if (nf.nf.empty() || nf.mean_cycles <= 0.0) continue;
    profile.per_nf.push_back(std::move(nf));
  }
  return profile;
}

Profile Profile::from_jsonl(std::string_view text) {
  // The snapshots are cumulative, so the last line is the most complete.
  std::string_view last;
  while (!text.empty()) {
    const std::size_t newline = text.find('\n');
    const std::string_view line =
        newline == std::string_view::npos ? text : text.substr(0, newline);
    if (line.find_first_not_of(" \t\r") != std::string_view::npos) {
      last = line;
    }
    if (newline == std::string_view::npos) break;
    text.remove_prefix(newline + 1);
  }
  if (last.empty()) {
    throw PlanError("profile: metrics capture is empty");
  }
  const auto json = telemetry::Json::parse(last);
  if (!json) {
    throw PlanError("profile: last metrics line is not valid JSON");
  }
  return from_snapshot(*json);
}

const NfProfile* Profile::find(std::string_view name) const noexcept {
  for (const NfProfile& nf : per_nf) {
    if (nf.nf == name) return &nf;
  }
  return nullptr;
}

DeploymentPlan plan_deployment(const ChainSpec& spec, const Profile& profile,
                               const PlannerConfig& config,
                               PlanRationale* rationale_out) {
  spec.validate();
  if (config.target_mpps <= 0.0) {
    throw PlanError("planner: target_mpps must be > 0");
  }
  const nf::Registry& registry = nf::Registry::instance();
  const double hz = config.cpu_ghz > 0.0
                        ? config.cpu_ghz * 1e9
                        : util::CycleClock::frequency_hz();

  PlanRationale rationale;
  std::vector<core::PayloadAccess> access;
  access.reserve(spec.nfs.size());
  for (std::size_t i = 0; i < spec.nfs.size(); ++i) {
    access.push_back(registry.payload_access(spec.nfs[i]));
    // Profile entries are labeled the way build_chain labels NFs.
    const std::string label =
        spec.nfs[i].kind + "-" + std::to_string(i);
    const NfProfile* nf = profile.find(label);
    if (nf == nullptr) nf = profile.find(spec.nfs[i].kind);
    rationale.nf_profiled.push_back(nf != nullptr);
    rationale.nf_cycles.push_back(nf != nullptr ? nf->mean_cycles
                                                : config.default_nf_cycles);
  }

  // Greedy left-to-right fusion: extend the current segment while the next
  // NF is Table-I-parallelizable with EVERY member (an earlier WRITE
  // forbids any later touch, so pairwise over the whole run).
  DeploymentPlan plan;
  plan.chain = spec;
  std::size_t begin = 0;
  double predicted = 0.0;
  for (std::size_t i = 0; i <= spec.nfs.size(); ++i) {
    bool fuse = i < spec.nfs.size() && i > begin;
    for (std::size_t j = begin; fuse && j < i; ++j) {
      fuse = core::parallelizable(access[j], access[i]);
    }
    if (i < spec.nfs.size() && (i == begin || fuse)) continue;
    // Close [begin, i): parallel members overlap, so the segment costs its
    // bottleneck NF plus one hop; sequential members cost the sum.
    SegmentSpec segment;
    segment.nf_count = i - begin;
    segment.parallel = segment.nf_count > 1;
    double cost = 0.0;
    for (std::size_t j = begin; j < i; ++j) {
      cost = segment.parallel ? std::max(cost, rationale.nf_cycles[j])
                              : cost + rationale.nf_cycles[j];
    }
    predicted += cost + config.hop_cycles;
    plan.segments.push_back(segment);
    begin = i;
  }

  rationale.predicted_cycles_per_packet = predicted;
  rationale.predicted_single_core_mpps =
      predicted > 0.0 ? hz / predicted / 1e6 : 0.0;
  const double needed =
      rationale.predicted_single_core_mpps > 0.0
          ? config.target_mpps / rationale.predicted_single_core_mpps
          : 1.0;
  std::size_t shards = static_cast<std::size_t>(std::ceil(needed));
  if (shards < 1) shards = 1;
  if (shards > config.max_shards) shards = config.max_shards;
  rationale.shards = shards;

  plan.speedybox = true;
  if (shards > 1) {
    plan.executor = ExecutorKind::kSharded;
    plan.shards = shards;
  } else {
    plan.executor = ExecutorKind::kRunner;
  }
  // Cheap chains are ring-amortization-bound: one burst-size notch up.
  plan.batch_size = predicted < 4.0 * config.hop_cycles
                        ? 2 * net::kDefaultBatchSize
                        : net::kDefaultBatchSize;
  plan.predicted_cycles_per_packet = predicted;
  plan.target_rate_mpps = config.target_mpps;
  plan.validate();
  if (rationale_out != nullptr) *rationale_out = rationale;
  return plan;
}

}  // namespace speedybox::plan
