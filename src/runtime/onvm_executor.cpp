#include "runtime/onvm_executor.hpp"

#include "net/packet.hpp"
#include "trace/workload.hpp"

namespace speedybox::runtime {

OnvmExecutor::OnvmExecutor(ServiceChain& chain, std::size_t ring_capacity,
                           std::size_t batch_size)
    : chain_(chain) {
  std::vector<nf::NetworkFunction*> stages;
  stages.reserve(chain_.size());
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    stages.push_back(&chain_.nf(i));
  }
  pipeline_ = std::make_unique<platform::OnvmPipeline>(
      std::move(stages), ring_capacity, batch_size);
}

bool OnvmExecutor::ingress_admit(const net::Packet& packet) {
  if (controller_ == nullptr) return true;
  ++stats_.overload.offered;

  std::uint64_t flow_hash = 0;
  if (const auto parsed = net::parse_packet(packet)) {
    flow_hash = net::extract_five_tuple(packet, *parsed).hash();
  }
  // doomed is always false here: no Global MAT on the platform path (see
  // header), so slo-early-drop degenerates to tail-drop.
  const auto decision =
      controller_->offer(flow_hash, /*doomed=*/false,
                         pipeline_->ingress_pressured());
  // Mirror the controller's authoritative episode counts (assignment, not
  // increment — always current).
  stats_.overload.degraded_episodes = controller_->degraded_episodes();
  stats_.overload.degraded_episode_packets =
      controller_->degraded_episode_packets();
  if (metrics_ != nullptr) {
    metrics_->queue_depth.set(pipeline_->ingress_depth());
    if (const auto episode = controller_->take_finished_episode()) {
      metrics_->degraded_episode_packets.record(*episode);
    }
  } else {
    controller_->take_finished_episode();  // keep the latch drained
  }

  switch (decision) {
    case OverloadController::Decision::kAdmit:
      ++stats_.overload.admitted;
      if (metrics_ != nullptr) metrics_->admitted.add(1);
      return true;
    case OverloadController::Decision::kShedAdmission:
      ++stats_.overload.shed_admission;
      if (metrics_ != nullptr) metrics_->shed_admission.add(1);
      break;
    case OverloadController::Decision::kShedWatermark:
      ++stats_.overload.shed_watermark;
      if (metrics_ != nullptr) metrics_->shed_watermark.add(1);
      break;
    case OverloadController::Decision::kShedEarlyDrop:
      ++stats_.overload.shed_early_drop;
      if (metrics_ != nullptr) metrics_->shed_early_drop.add(1);
      break;
  }
  return false;
}

std::vector<net::Packet> OnvmExecutor::finish() {
  auto collected = pipeline_->stop_and_collect();
  stats_.packets = packets_;
  stats_.drops = pipeline_->drops();
  stats_.overload.faulted = pipeline_->faulted();
  if (metrics_ != nullptr) {
    // Workers are joined: one settle write from this (now sole) thread.
    metrics_->packets.add(packets_);
    metrics_->drops.add(stats_.drops);
    metrics_->faulted.add(stats_.overload.faulted);
  }
  return collected;
}

const RunStats& OnvmExecutor::run(const trace::Workload& workload) {
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    net::Packet packet = workload.materialize(i);
    if (!ingress_admit(packet)) continue;
    ++packets_;
    pipeline_->push(std::move(packet));
  }
  finish();
  return stats_;
}

const RunStats& OnvmExecutor::run(const std::vector<net::Packet>& packets,
                                  std::vector<net::Packet>* outputs) {
  for (const net::Packet& original : packets) {
    net::Packet packet = original;
    packet.reset_metadata();
    if (!ingress_admit(packet)) continue;
    ++packets_;
    pipeline_->push(std::move(packet));
  }
  auto collected = finish();
  if (outputs != nullptr) *outputs = std::move(collected);
  return stats_;
}

void OnvmExecutor::attach_telemetry(telemetry::Registry* registry,
                                    const std::string& label) {
  metrics_ = registry == nullptr
                 ? nullptr
                 : &registry->create_shard(label, chain_.nf_names());
  if (metrics_ != nullptr) {
    metrics_->ring_capacity.set(pipeline_->ingress_capacity());
  }
}

void OnvmExecutor::set_overload_policy(const OverloadConfig& config) {
  controller_ = config.enabled
                    ? std::make_unique<OverloadController>(config)
                    : nullptr;
  if (config.enabled) {
    const auto capacity =
        static_cast<double>(pipeline_->ingress_capacity());
    pipeline_->set_ingress_watermarks(
        static_cast<std::size_t>(config.high_watermark * capacity),
        static_cast<std::size_t>(config.low_watermark * capacity));
  }
}

}  // namespace speedybox::runtime
