// ServiceChain: the wiring of a SpeedyBox deployment — an ordered set of
// NFs, one Local MAT per NF, the shared Global MAT (with its Event Table),
// and the Packet Classifier. This is the object users of the library build
// and hand to a ChainRunner.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "core/global_mat.hpp"
#include "core/local_mat.hpp"
#include "nf/network_function.hpp"

namespace speedybox::runtime {

class ServiceChain {
 public:
  explicit ServiceChain(std::string name = "chain")
      : name_(std::move(name)) {}

  /// Append an NF (non-owning: NFs usually live in the caller so their
  /// state can be inspected after a run). Creates the NF's Local MAT and
  /// rewires the Global MAT.
  void add_nf(nf::NetworkFunction* nf);

  /// Convenience for owning use: the chain keeps the NF alive.
  template <typename Nf, typename... Args>
  Nf& emplace_nf(Args&&... args) {
    auto owned = std::make_unique<Nf>(std::forward<Args>(args)...);
    Nf& ref = *owned;
    owned_.push_back(std::move(owned));
    add_nf(&ref);
    return ref;
  }

  /// Owning append of an already-built NF — e.g. one wrapped in a
  /// runtime::FaultInjector after construction.
  nf::NetworkFunction& adopt_nf(std::unique_ptr<nf::NetworkFunction> nf) {
    nf::NetworkFunction& ref = *nf;
    owned_.push_back(std::move(nf));
    add_nf(&ref);
    return ref;
  }

  const std::string& name() const noexcept { return name_; }
  std::size_t size() const noexcept { return nfs_.size(); }
  /// NF names in chain order (labels telemetry's per-NF metrics under).
  std::vector<std::string> nf_names() const;
  nf::NetworkFunction& nf(std::size_t index) { return *nfs_[index]; }
  const nf::NetworkFunction& nf(std::size_t index) const {
    return *nfs_[index];
  }

  core::LocalMat& local_mat(std::size_t index) { return *local_mats_[index]; }
  core::GlobalMat& global_mat() noexcept { return global_mat_; }
  const core::GlobalMat& global_mat() const noexcept { return global_mat_; }
  core::PacketClassifier& classifier() noexcept { return classifier_; }

  /// Aggregated flow-table telemetry for the whole deployment unit: the
  /// classifier's tables, the Global MAT's rule table, and every NF's
  /// per-flow state table (flow_state_stats). Feeds the shard's
  /// flow_table_* metrics.
  core::FlowTableStats flow_table_stats() const {
    core::FlowTableStats stats = classifier_.table_stats();
    stats.merge_from(global_mat_.rule_table_stats());
    for (const nf::NetworkFunction* nf : nfs_) {
      stats.merge_from(nf->flow_state_stats());
    }
    return stats;
  }

  /// Drop every flow's rules and classifier state (NF-internal state is the
  /// NFs' own; reset those separately if needed).
  void reset_flows();

  /// Replicate the chain for a sharded deployment: every NF is clone()d
  /// (configuration copied, per-flow state fresh) and owned by the new
  /// chain, which gets its own classifier, MATs and Event Table. Throws
  /// std::logic_error if any NF does not support clone().
  std::unique_ptr<ServiceChain> clone(const std::string& name_suffix) const;

 private:
  std::string name_;
  std::vector<nf::NetworkFunction*> nfs_;
  std::vector<std::unique_ptr<nf::NetworkFunction>> owned_;
  std::vector<std::unique_ptr<core::LocalMat>> local_mats_;
  core::GlobalMat global_mat_;
  core::PacketClassifier classifier_;
};

}  // namespace speedybox::runtime
