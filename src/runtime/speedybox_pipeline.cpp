#include "runtime/speedybox_pipeline.hpp"

#include <span>
#include <stdexcept>

#include "core/api.hpp"
#include "net/packet_batch.hpp"
#include "trace/workload.hpp"

namespace speedybox::runtime {

SpeedyBoxPipeline::SpeedyBoxPipeline(ServiceChain& chain,
                                     std::size_t ring_capacity,
                                     std::vector<std::size_t> segment_sizes)
    : chain_(chain), completions_(ring_capacity) {
  if (segment_sizes.empty()) {
    segment_sizes.assign(chain_.size(), 1);
  }
  std::size_t begin = 0;
  for (const std::size_t size : segment_sizes) {
    if (size == 0 || begin + size > chain_.size()) {
      throw std::invalid_argument(
          "SpeedyBoxPipeline: segment sizes do not partition the chain");
    }
    stages_.emplace_back(begin, begin + size);
    begin += size;
  }
  if (begin != chain_.size()) {
    throw std::invalid_argument(
        "SpeedyBoxPipeline: segment sizes do not partition the chain");
  }
  rings_.reserve(stages_.size());
  stop_flags_.reserve(stages_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    rings_.push_back(
        std::make_unique<util::SpscRing<Descriptor>>(ring_capacity));
    stop_flags_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  workers_.reserve(stages_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    workers_.emplace_back([this, i] { worker(i); });
  }
}

SpeedyBoxPipeline::~SpeedyBoxPipeline() {
  if (!stopped_) stop_and_collect();
}

void SpeedyBoxPipeline::worker(std::size_t stage) {
  util::SpscRing<Descriptor>& in = *rings_[stage];
  const auto [begin, end] = stages_[stage];
  const bool last = stage + 1 == stages_.size();
  // Burst discipline (DESIGN.md §8): pop up to a batch of descriptors with
  // one ring round-trip, process them in pop order, then forward the whole
  // burst downstream with one push per burst. Per-descriptor semantics —
  // including teardown markers holding their slot relative to later packets
  // of the same flow — are untouched; only the ring traffic amortizes.
  std::vector<Descriptor> burst(net::kDefaultBatchSize);
  for (;;) {
    const std::size_t popped =
        in.try_pop_burst(std::span<Descriptor>{burst});
    if (popped == 0) {
      if (stop_flags_[stage]->load(std::memory_order_acquire) && in.empty()) {
        return;
      }
      std::this_thread::yield();
      continue;
    }

    for (std::size_t d = 0; d < popped; ++d) {
      Descriptor& descriptor = burst[d];
      if (descriptor.packet != nullptr) {
        // Consolidated stage: the fused NFs run sequentially in chain
        // order on this core, re-checking the drop flag between NFs just
        // as the per-NF stages did across ring hops.
        net::Packet& packet = *descriptor.packet;
        for (std::size_t nf = begin; nf < end && !packet.dropped(); ++nf) {
          if (descriptor.recording) {
            core::SpeedyBoxContext ctx{chain_.local_mat(nf),
                                       chain_.global_mat().event_table(),
                                       descriptor.fid};
            chain_.nf(nf).process(packet, &ctx);
          } else if (descriptor.rule != nullptr) {
            // Execute this NF's recorded state-function batch, if any.
            for (const auto& batch : descriptor.rule->batches) {
              if (batch.nf_index != nf) continue;
              if (const auto parsed = net::parse_packet(packet)) {
                batch.execute(packet, *parsed);
              }
              break;
            }
          }
        }
      }

      // Teardown hooks mutate NF-internal per-flow state, so they must run
      // here — on the core that owns these NFs — not on the manager.
      // Per-flow FIFO guarantees every earlier packet of the flow already
      // passed this stage. (Descriptors with a null packet are pure
      // teardown markers for flows the manager finished inline.)
      if (descriptor.teardown) {
        for (std::size_t nf = begin; nf < end; ++nf) {
          chain_.local_mat(nf).run_teardown_hooks(descriptor.fid);
        }
      }
    }

    // A partial try_push_burst moves out exactly what it reports, so the
    // retry loop resumes at the first un-pushed descriptor — burst order
    // (and with it per-flow FIFO) is preserved across partial pushes.
    util::SpscRing<Descriptor>& out =
        last ? completions_ : *rings_[stage + 1];
    std::span<Descriptor> pending{burst.data(), popped};
    while (!pending.empty()) {
      pending = pending.subspan(out.try_push_burst(pending));
      if (!pending.empty()) std::this_thread::yield();
    }
  }
}

void SpeedyBoxPipeline::dispatch(Descriptor descriptor) {
  ++in_flight_;
  while (!rings_.front()->try_push(std::move(descriptor))) {
    // Keep consuming completions while the first ring is full so the
    // pipeline cannot deadlock on its own backpressure.
    if (metrics_ != nullptr) metrics_->backpressure_yields.add(1);
    drain_completions(false);
    std::this_thread::yield();
  }
  if (metrics_ != nullptr) {
    metrics_->ring_occupancy.set(rings_.front()->size());
  }
}

void SpeedyBoxPipeline::finish_teardown(std::uint32_t fid) {
  // Hooks already ran on the NF cores as the teardown descriptor passed
  // each stage; only the manager-owned erase remains.
  chain_.global_mat().erase_flow(fid, /*run_hooks=*/false);
  chain_.classifier().release_flow(fid);
  flows_.erase(fid);
  if (metrics_ != nullptr) {
    metrics_->teardowns.add(1);
    metrics_->active_flows.set(chain_.classifier().active_flows());
    // Manager-owned tables only: the NF-internal state tables belong to
    // the worker threads, so the manager reports classifier + rule table.
    core::FlowTableStats ft = chain_.classifier().table_stats();
    ft.merge_from(chain_.global_mat().rule_table_stats());
    metrics_->set_flow_table(ft.entries, ft.capacity, ft.slab_bytes,
                             ft.max_probe, ft.resize_steps);
  }
}

void SpeedyBoxPipeline::dispatch_teardown_marker(std::uint32_t fid) {
  Descriptor descriptor;
  descriptor.fid = fid;
  descriptor.teardown = true;
  dispatch(std::move(descriptor));
}

void SpeedyBoxPipeline::handle_completion(Descriptor& descriptor) {
  --in_flight_;
  net::Packet* packet = descriptor.packet;

  if (descriptor.recording) {
    // The initial packet has visited every NF: consolidate and release any
    // packets of this flow that arrived in the meantime, in order.
    chain_.global_mat().consolidate_flow(descriptor.fid);
    ++recorded_flows_;
    if (metrics_ != nullptr) metrics_->consolidations.add(1);
    FlowState* flow = flows_.find(descriptor.fid);
    if (flow != nullptr) {
      flow->phase = FlowPhase::kReady;
      std::deque<std::pair<net::Packet*, bool>> pending;
      pending.swap(flow->pending);
      for (auto& [held, teardown] : pending) {
        fast_path(held, descriptor.fid, teardown);
      }
    }
  }

  if (packet != nullptr) {
    if (packet->dropped()) {
      // Injected NF faults are disjoint from policy drops so conservation
      // can separate them (packets == delivered + drops + faulted).
      if (packet->faulted()) {
        ++stats_.overload.faulted;
        if (metrics_ != nullptr) metrics_->faulted.add(1);
      } else {
        ++drops_;
        if (metrics_ != nullptr) metrics_->drops.add(1);
      }
    } else {
      sink_.push_back(std::move(*packet));
    }
    delete packet;
  }
  if (descriptor.teardown) finish_teardown(descriptor.fid);
}

void SpeedyBoxPipeline::fast_path(net::Packet* packet, std::uint32_t fid,
                                  bool teardown) {
  const auto header = chain_.global_mat().process_header(*packet);
  if (metrics_ != nullptr && header.rule_hit) metrics_->mat_hits.add(1);
  if (header.rule_hit && header.degraded_rule) {
    ++stats_.overload.degraded_packets;
    if (metrics_ != nullptr) metrics_->degraded_packets.add(1);
  }
  if (packet->dropped() || !header.rule_hit) {
    if (!header.rule_hit && !packet->dropped()) {
      // No rule (e.g. torn down between hold and release): forward as-is.
      sink_.push_back(std::move(*packet));
      delete packet;
    } else {
      ++drops_;
      if (metrics_ != nullptr) metrics_->drops.add(1);
      delete packet;
    }
    // The packet ends here, but the per-NF teardown hooks still have to
    // run on their owning cores: send a packet-less marker down the rings.
    if (teardown) dispatch_teardown_marker(fid);
    return;
  }

  if (header.rule->batches.empty()) {
    // Pure header-action rule: nothing for the NF cores to do — but route
    // through them anyway iff something of this flow could still be in
    // flight? Recording completion already ordered before READY, so the
    // manager can finish the packet directly.
    sink_.push_back(std::move(*packet));
    delete packet;
    if (teardown) dispatch_teardown_marker(fid);
    return;
  }

  Descriptor descriptor;
  descriptor.packet = packet;
  descriptor.fid = fid;
  descriptor.recording = false;
  descriptor.teardown = teardown;
  descriptor.rule = header.rule;
  dispatch(std::move(descriptor));
}

bool SpeedyBoxPipeline::ingress_admit(const net::Packet& packet) {
  if (controller_ == nullptr) return true;
  ++stats_.overload.offered;

  // Manager-thread twin of ChainRunner::ingress_admit — same flow hash,
  // same doomed-flow peek (the manager owns classifier and Global MAT) —
  // with the real first ring's occupancy OR'd in as external pressure.
  std::uint64_t flow_hash = 0;
  bool doomed = false;
  if (const auto parsed = net::parse_packet(packet)) {
    const net::FiveTuple tuple = net::extract_five_tuple(packet, *parsed);
    flow_hash = tuple.hash();
    if (controller_->config().policy == DropPolicy::kSloEarlyDrop) {
      if (const auto fid = chain_.classifier().peek(tuple)) {
        doomed = chain_.global_mat().rule_marked_drop(*fid);
      }
    }
  }

  const bool ring_pressure = rings_.front()->over_watermark();
  const auto decision = controller_->offer(flow_hash, doomed, ring_pressure);
  // Mirror the controller's authoritative episode counts (assignment, not
  // increment — always current).
  stats_.overload.degraded_episodes = controller_->degraded_episodes();
  stats_.overload.degraded_episode_packets =
      controller_->degraded_episode_packets();
  if (metrics_ != nullptr) {
    metrics_->queue_depth.set(rings_.front()->size());
    if (const auto episode = controller_->take_finished_episode()) {
      metrics_->degraded_episode_packets.record(*episode);
    }
  } else {
    controller_->take_finished_episode();  // keep the latch drained
  }

  switch (decision) {
    case OverloadController::Decision::kAdmit:
      ++stats_.overload.admitted;
      if (metrics_ != nullptr) metrics_->admitted.add(1);
      return true;
    case OverloadController::Decision::kShedAdmission:
      ++stats_.overload.shed_admission;
      if (metrics_ != nullptr) metrics_->shed_admission.add(1);
      break;
    case OverloadController::Decision::kShedWatermark:
      ++stats_.overload.shed_watermark;
      if (metrics_ != nullptr) metrics_->shed_watermark.add(1);
      break;
    case OverloadController::Decision::kShedEarlyDrop:
      ++stats_.overload.shed_early_drop;
      if (metrics_ != nullptr) metrics_->shed_early_drop.add(1);
      break;
  }
  return false;
}

void SpeedyBoxPipeline::push(net::Packet packet) {
  drain_completions(false);

  // Shed packets never allocate a descriptor, never classify, never touch
  // a ring: the near-zero-cycle ingress path.
  if (!ingress_admit(packet)) return;
  ++packets_;

  auto* descriptor_packet = new net::Packet(std::move(packet));
  const auto classification =
      chain_.classifier().classify(*descriptor_packet);
  if (metrics_ != nullptr) {
    metrics_->packets.add(1);
    metrics_->classifier_lookups.add(1);
  }
  if (!classification) {
    ++drops_;
    if (metrics_ != nullptr) metrics_->drops.add(1);
    delete descriptor_packet;
    return;
  }
  const std::uint32_t fid = classification->fid;
  const bool teardown = classification->teardown;

  if (classification->path == core::PacketClassifier::Path::kInitial) {
    if (metrics_ != nullptr) {
      metrics_->mat_misses.add(1);
      metrics_->active_flows.set(chain_.classifier().active_flows());
      core::FlowTableStats ft = chain_.classifier().table_stats();
      ft.merge_from(chain_.global_mat().rule_table_stats());
      metrics_->set_flow_table(ft.entries, ft.capacity, ft.slab_bytes,
                               ft.max_probe, ft.resize_steps);
    }
    if (controller_ != nullptr && controller_->degraded()) {
      // Graceful degradation: no recording traversal — the flow gets the
      // pre-consolidated default rule and goes straight to the fast path,
      // keeping the NF cores free for established flows.
      chain_.global_mat().install_default_rule(fid);
      ++stats_.overload.degraded_flows;
      if (metrics_ != nullptr) metrics_->degraded_flows.add(1);
      flows_.try_emplace(fid).first->phase = FlowPhase::kReady;
      fast_path(descriptor_packet, fid, teardown);
      return;
    }
    flows_.try_emplace(fid).first->phase = FlowPhase::kRecording;
    Descriptor descriptor;
    descriptor.packet = descriptor_packet;
    descriptor.fid = fid;
    descriptor.recording = true;
    descriptor.teardown = teardown;
    dispatch(std::move(descriptor));
    return;
  }

  FlowState& flow = *flows_.try_emplace(fid).first;
  if (flow.phase == FlowPhase::kRecording) {
    // Hold until the initial packet's consolidation completes, preserving
    // per-flow order and single-core access to the NFs' per-flow state.
    flow.pending.emplace_back(descriptor_packet, teardown);
    ++held_packets_;
    if (metrics_ != nullptr) metrics_->held_packets.add(1);
    return;
  }
  fast_path(descriptor_packet, fid, teardown);
}

void SpeedyBoxPipeline::drain_completions(bool block_until_idle) {
  for (;;) {
    while (auto completed = completions_.try_pop()) {
      handle_completion(*completed);
    }
    if (!block_until_idle || in_flight_ == 0) return;
    std::this_thread::yield();
  }
}

std::vector<net::Packet> SpeedyBoxPipeline::stop_and_collect() {
  if (!stopped_) {
    drain_completions(/*block_until_idle=*/true);
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      stop_flags_[i]->store(true, std::memory_order_release);
      workers_[i].join();
    }
    drain_completions(false);
    stopped_ = true;
  }
  return std::move(sink_);
}

const RunStats& SpeedyBoxPipeline::run(const trace::Workload& workload) {
  for (std::size_t i = 0; i < workload.packet_count(); ++i) {
    push(workload.materialize(i));
  }
  stop_and_collect();
  stats_.packets = packets_;
  stats_.drops = drops_;
  return stats_;
}

const RunStats& SpeedyBoxPipeline::run(
    const std::vector<net::Packet>& packets,
    std::vector<net::Packet>* outputs) {
  for (const net::Packet& original : packets) {
    net::Packet packet = original;
    packet.reset_metadata();
    push(std::move(packet));
  }
  auto collected = stop_and_collect();
  stats_.packets = packets_;
  stats_.drops = drops_;
  if (outputs != nullptr) *outputs = std::move(collected);
  return stats_;
}

void SpeedyBoxPipeline::attach_telemetry(telemetry::Registry* registry,
                                         const std::string& label) {
  if (registry == nullptr) {
    set_telemetry(nullptr);
    return;
  }
  set_telemetry(&registry->create_shard(label, chain_.nf_names()));
}

void SpeedyBoxPipeline::set_overload_policy(const OverloadConfig& config) {
  controller_ = config.enabled
                    ? std::make_unique<OverloadController>(config)
                    : nullptr;
  if (config.enabled && !rings_.empty()) {
    const auto capacity = static_cast<double>(rings_.front()->capacity());
    rings_.front()->set_watermarks(
        static_cast<std::size_t>(config.high_watermark * capacity),
        static_cast<std::size_t>(config.low_watermark * capacity));
  }
}

}  // namespace speedybox::runtime
