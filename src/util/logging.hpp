// Leveled logging to stderr. Data-plane code never logs on the per-packet
// path; logging is for control-plane events (consolidation, event triggers,
// calibration) and is rate-friendly by being opt-in via level.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <string_view>

namespace speedybox::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Parse a CLI-style level name ("debug", "info", "warn", "error", "off").
/// Returns nullopt on anything else.
std::optional<LogLevel> parse_log_level(std::string_view name) noexcept;

/// Core sink; prefer the SB_LOG_* macros which skip argument evaluation
/// when the level is disabled.
void log_message(LogLevel level, std::string_view component,
                 const std::string& message);

std::string format_log(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace speedybox::util

#define SB_LOG(level, component, ...)                                      \
  do {                                                                     \
    if (static_cast<int>(level) >=                                         \
        static_cast<int>(::speedybox::util::log_level())) {                \
      ::speedybox::util::log_message(                                      \
          level, component, ::speedybox::util::format_log(__VA_ARGS__));   \
    }                                                                      \
  } while (0)

#define SB_LOG_DEBUG(component, ...) \
  SB_LOG(::speedybox::util::LogLevel::kDebug, component, __VA_ARGS__)
#define SB_LOG_INFO(component, ...) \
  SB_LOG(::speedybox::util::LogLevel::kInfo, component, __VA_ARGS__)
#define SB_LOG_WARN(component, ...) \
  SB_LOG(::speedybox::util::LogLevel::kWarn, component, __VA_ARGS__)
#define SB_LOG_ERROR(component, ...) \
  SB_LOG(::speedybox::util::LogLevel::kError, component, __VA_ARGS__)
