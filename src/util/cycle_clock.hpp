// Cycle-accurate clock used for all latency accounting in SpeedyBox.
//
// On x86 this reads the TSC directly (the same primitive BESS/OpenNetVM use
// for per-packet cycle accounting); elsewhere it falls back to
// std::chrono::steady_clock. The TSC frequency is calibrated once at startup
// against steady_clock so cycles can be converted to wall time.
#pragma once

#include <cstdint>

namespace speedybox::util {

class CycleClock {
 public:
  /// Current cycle counter. Monotonic, ~constant rate on modern x86
  /// (invariant TSC).
  static std::uint64_t now() noexcept;

  /// Calibrated counter frequency in Hz. First call performs a short
  /// (~20ms) calibration loop; subsequent calls are free.
  static double frequency_hz() noexcept;

  /// Convert a cycle delta to nanoseconds / microseconds using the
  /// calibrated frequency.
  static double to_ns(std::uint64_t cycles) noexcept;
  static double to_us(std::uint64_t cycles) noexcept;

  /// Convert wall time back into cycles (used by the platform cost models).
  static std::uint64_t from_ns(double ns) noexcept;

  /// Calibrated cost of one now() call. A span measured as
  /// `now() ... now()` is inflated by roughly one call's worth of counter
  /// serialization (considerable under virtualized TSC); segment() removes
  /// it.
  static std::uint64_t timer_overhead() noexcept;

  /// Duration of the segment [begin, end) with the timer overhead removed
  /// (saturating at zero).
  static std::uint64_t segment(std::uint64_t begin,
                               std::uint64_t end) noexcept {
    const std::uint64_t raw = end - begin;
    const std::uint64_t overhead = timer_overhead();
    return raw > overhead ? raw - overhead : 0;
  }
};

/// Scoped stopwatch: accumulates elapsed cycles into a counter on
/// destruction. Used by the platforms for per-NF cycle attribution.
class ScopedCycleTimer {
 public:
  explicit ScopedCycleTimer(std::uint64_t& sink) noexcept
      : sink_(sink), start_(CycleClock::now()) {}
  ScopedCycleTimer(const ScopedCycleTimer&) = delete;
  ScopedCycleTimer& operator=(const ScopedCycleTimer&) = delete;
  ~ScopedCycleTimer() { sink_ += CycleClock::now() - start_; }

 private:
  std::uint64_t& sink_;
  std::uint64_t start_;
};

}  // namespace speedybox::util
