// Latency statistics: an exact-percentile recorder (stores samples) and a
// log-bucketed streaming histogram for high-volume runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace speedybox::util {

/// Records every sample; supports exact percentiles. Use for per-flow
/// statistics (Fig. 9 CDFs) where sample counts are modest.
class SampleRecorder {
 public:
  void add(double value);
  /// Absorb another recorder's samples (per-shard result merging).
  void merge(const SampleRecorder& other);
  void clear() noexcept { samples_.clear(); sorted_ = true; }

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  double sum() const noexcept;
  double mean() const noexcept;
  double min() const;
  double max() const;

  /// Exact percentile by rank (nearest-rank method), p clamped to
  /// [0, 100]: p=0 returns the minimum sample, p=100 the maximum.
  /// Throws std::out_of_range when empty (as do min()/max()): an empty
  /// distribution has no percentiles, and silently returning 0 would
  /// corrupt merged results. LogHistogram, by contrast, is a streaming
  /// approximation and reports 0 when empty.
  double percentile(double p) const;

  /// CDF points (value at each of the given percentiles) — the series the
  /// Fig. 9 benches print.
  std::vector<std::pair<double, double>> cdf(
      const std::vector<double>& percentiles) const;

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  void sort_if_needed() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Log2-bucketed histogram: O(1) insert, approximate percentiles.
/// Bucket i covers [2^(i/8), 2^((i+1)/8)) — eighth-octave resolution,
/// ≤ ~9% relative error on percentile queries.
class LogHistogram {
 public:
  LogHistogram();

  void add(double value) noexcept;
  /// Absorb another histogram's buckets (per-shard result merging).
  void merge(const LogHistogram& other) noexcept;
  std::uint64_t count() const noexcept { return count_; }
  double percentile(double p) const noexcept;
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Raw bucket geometry, exposed so external single-writer mirrors (the
  /// telemetry subsystem's atomic per-shard histograms) can accumulate into
  /// the same buckets and materialize a LogHistogram on snapshot.
  static constexpr int raw_bucket_count() noexcept { return kBuckets; }
  /// Raw bucket counts and exact value sum — what window-delta consumers
  /// (the autoscaling controller) subtract between successive cumulative
  /// snapshots before rebuilding the interval histogram via from_raw().
  const std::vector<std::uint64_t>& raw_bucket_counts() const noexcept {
    return buckets_;
  }
  double sum() const noexcept { return sum_; }
  static int raw_bucket_index(double value) noexcept;
  /// Rebuild from externally accumulated raw buckets. `bucket_counts` holds
  /// `n` leading buckets (missing trailing buckets are zero); `sum` is the
  /// exact sum of the recorded values (kept for mean()).
  static LogHistogram from_raw(const std::uint64_t* bucket_counts, int n,
                               double sum);

 private:
  static constexpr int kSubBuckets = 8;   // buckets per octave
  static constexpr int kBuckets = 64 * kSubBuckets;

  double bucket_low(int index) const noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Renders "p50=… p90=… p99=…" for log lines and bench output.
std::string summarize_percentiles(const SampleRecorder& recorder);

}  // namespace speedybox::util
