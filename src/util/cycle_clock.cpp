#include "util/cycle_clock.hpp"

#include <chrono>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define SPEEDYBOX_HAVE_RDTSC 1
#endif

namespace speedybox::util {
namespace {

std::uint64_t raw_now() noexcept {
#ifdef SPEEDYBOX_HAVE_RDTSC
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

double calibrate_hz() noexcept {
#ifdef SPEEDYBOX_HAVE_RDTSC
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const std::uint64_t c0 = raw_now();
  // Busy-wait ~20ms; long enough to average out scheduling noise, short
  // enough to be unnoticeable at startup.
  while (clock::now() - t0 < std::chrono::milliseconds(20)) {
  }
  const auto t1 = clock::now();
  const std::uint64_t c1 = raw_now();
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  return static_cast<double>(c1 - c0) / ns * 1e9;
#else
  return 1e9;  // steady_clock ticks are nanoseconds on the supported targets
#endif
}

}  // namespace

std::uint64_t CycleClock::now() noexcept { return raw_now(); }

double CycleClock::frequency_hz() noexcept {
  static const double hz = calibrate_hz();
  return hz;
}

double CycleClock::to_ns(std::uint64_t cycles) noexcept {
  return static_cast<double>(cycles) / frequency_hz() * 1e9;
}

double CycleClock::to_us(std::uint64_t cycles) noexcept {
  return to_ns(cycles) / 1e3;
}

std::uint64_t CycleClock::from_ns(double ns) noexcept {
  return static_cast<std::uint64_t>(ns * frequency_hz() / 1e9);
}

namespace {

std::uint64_t calibrate_timer_overhead() noexcept {
  constexpr int kIters = 4096;
  // Warm up.
  for (int i = 0; i < 256; ++i) (void)CycleClock::now();
  const std::uint64_t t0 = CycleClock::now();
  for (int i = 0; i < kIters; ++i) {
    volatile std::uint64_t sink = CycleClock::now();
    (void)sink;
  }
  const std::uint64_t t1 = CycleClock::now();
  return (t1 - t0) / kIters;
}

}  // namespace

std::uint64_t CycleClock::timer_overhead() noexcept {
  static const std::uint64_t overhead = calibrate_timer_overhead();
  return overhead;
}

}  // namespace speedybox::util
