#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace speedybox::util {

void SampleRecorder::add(double value) {
  samples_.push_back(value);
  sorted_ = false;
}

void SampleRecorder::merge(const SampleRecorder& other) {
  if (other.samples_.empty()) return;
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

double SampleRecorder::sum() const noexcept {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double SampleRecorder::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum() / static_cast<double>(samples_.size());
}

double SampleRecorder::min() const {
  if (samples_.empty()) throw std::out_of_range("SampleRecorder::min: empty");
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleRecorder::max() const {
  if (samples_.empty()) throw std::out_of_range("SampleRecorder::max: empty");
  return *std::max_element(samples_.begin(), samples_.end());
}

void SampleRecorder::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleRecorder::percentile(double p) const {
  if (samples_.empty()) {
    throw std::out_of_range("SampleRecorder::percentile: empty");
  }
  sort_if_needed();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

std::vector<std::pair<double, double>> SampleRecorder::cdf(
    const std::vector<double>& percentiles) const {
  std::vector<std::pair<double, double>> points;
  points.reserve(percentiles.size());
  for (const double p : percentiles) {
    points.emplace_back(p, percentile(p));
  }
  return points;
}

LogHistogram::LogHistogram() : buckets_(kBuckets, 0) {}

int LogHistogram::raw_bucket_index(double value) noexcept {
  if (value < 1.0) return 0;
  const int index = static_cast<int>(std::log2(value) * kSubBuckets);
  return std::clamp(index, 0, kBuckets - 1);
}

LogHistogram LogHistogram::from_raw(const std::uint64_t* bucket_counts,
                                    int n, double sum) {
  LogHistogram hist;
  const int limit = std::min(n, kBuckets);
  for (int i = 0; i < limit; ++i) {
    hist.buckets_[static_cast<std::size_t>(i)] = bucket_counts[i];
    hist.count_ += bucket_counts[i];
  }
  hist.sum_ = sum;
  return hist;
}

double LogHistogram::bucket_low(int index) const noexcept {
  return std::exp2(static_cast<double>(index) / kSubBuckets);
}

void LogHistogram::add(double value) noexcept {
  ++buckets_[static_cast<std::size_t>(raw_bucket_index(value))];
  ++count_;
  sum_ += value;
}

void LogHistogram::merge(const LogHistogram& other) noexcept {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LogHistogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(count_));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= target) {
      // Midpoint of the bucket in linear space.
      return (bucket_low(i) + bucket_low(i + 1)) / 2.0;
    }
  }
  return bucket_low(kBuckets);
}

std::string summarize_percentiles(const SampleRecorder& recorder) {
  if (recorder.empty()) return "(no samples)";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
                recorder.count(), recorder.mean(), recorder.percentile(50),
                recorder.percentile(90), recorder.percentile(99),
                recorder.max());
  return buf;
}

}  // namespace speedybox::util
