// Hashing primitives shared by the classifier (FID generation), flow tables
// and the Maglev consistent-hashing implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace speedybox::util {

/// FNV-1a over an arbitrary byte span. Used for packet five-tuple hashing.
constexpr std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Stafford's mix13 finalizer — a strong 64-bit integer mixer. Used to
/// derive independent hash functions (e.g. Maglev's offset/skip hashes) by
/// seeding with distinct constants.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                     std::uint64_t value) noexcept {
  return mix64(seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// Map a 64-bit flow hash onto one of `shard_count` shards with Lemire's
/// multiply-shift fast range reduction — unbiased for shard counts far below
/// 2^32 and cheaper than a modulo on the dispatch path. shard_count == 0 is
/// treated as 1 so callers never divide by zero.
constexpr std::size_t shard_index(std::uint64_t hash,
                                  std::size_t shard_count) noexcept {
  if (shard_count <= 1) return 0;
  return static_cast<std::size_t>(
      (static_cast<unsigned __int128>(hash) * shard_count) >> 64);
}

}  // namespace speedybox::util
