// Hashing primitives shared by the classifier (FID generation), flow tables
// and the Maglev consistent-hashing implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace speedybox::util {

/// FNV-1a over an arbitrary byte span. Used for packet five-tuple hashing.
constexpr std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Stafford's mix13 finalizer — a strong 64-bit integer mixer. Used to
/// derive independent hash functions (e.g. Maglev's offset/skip hashes) by
/// seeding with distinct constants.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                     std::uint64_t value) noexcept {
  return mix64(seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 6) +
                       (seed >> 2)));
}

}  // namespace speedybox::util
