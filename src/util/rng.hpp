// Deterministic, seedable random number generation for workload synthesis.
//
// We use xoshiro256** (Blackman & Vigna) rather than std::mt19937 because it
// is faster, has a tiny state, and — crucially for reproducible benchmarks —
// its output is identical across standard-library implementations.
#pragma once

#include <cstdint>
#include <cmath>
#include <numbers>

namespace speedybox::util {

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9E3779B97F4A7C15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
      word = x ^ (x >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box–Muller (one value per call; simple and
  /// deterministic, throughput is irrelevant for trace generation).
  double normal() noexcept {
    double u1 = uniform();
    while (u1 <= 1e-18) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Lognormal with the given log-space mean/stddev. Datacenter flow sizes
  /// are well modelled as lognormal (Benson et al., IMC'10).
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(mu + sigma * normal());
  }

  /// Bounded Pareto (heavy tail) in [lo, hi].
  double pareto(double alpha, double lo, double hi) noexcept {
    const double u = uniform();
    const double l = std::pow(lo, alpha);
    const double h = std::pow(hi, alpha);
    return std::pow(-(u * h - u * l - h) / (h * l), -1.0 / alpha);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace speedybox::util
