// Software prefetch hints for batch pre-passes (DESIGN.md §8).
//
// The batched executors walk a burst twice: a stateless pre-pass computes
// hashes and issues prefetches for the state the second (stateful) pass
// will touch — flow-table buckets, sketch rows, consolidated-rule objects —
// so the second pass finds them in cache instead of paying a miss per
// packet. Hints only: correctness never depends on them.
#pragma once

#include <cstddef>

namespace speedybox::util {

/// Destructive-interference (cache line) size. Fixed at 64 — the value for
/// every x86/ARM server part we target — rather than
/// std::hardware_destructive_interference_size, whose value can vary with
/// compiler flags and would make layouts ABI-fragile.
inline constexpr std::size_t kCacheLineSize = 64;

/// Prefetch for reading. No-op on compilers without __builtin_prefetch.
inline void prefetch_read(const void* address) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/3);
#else
  (void)address;
#endif
}

/// Prefetch for writing (counter cells the stateful pass increments).
inline void prefetch_write(const void* address) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/1, /*locality=*/3);
#else
  (void)address;
#endif
}

}  // namespace speedybox::util
