// Single-producer single-consumer lock-free ring buffer.
//
// This is the shared-memory descriptor ring OpenNetVM uses to interconnect
// NFs running on dedicated cores (DPDK rte_ring, SP/SC mode). Our ONVM-like
// platform passes packet descriptors between pipeline stages through these
// rings; the calibrated cost of one enqueue/dequeue pair feeds the
// platform's per-hop latency model.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <new>
#include <optional>
#include <span>
#include <vector>

#include "util/prefetch.hpp"  // kCacheLineSize

namespace speedybox::util {

/// Fixed-capacity SPSC ring. Capacity is rounded up to a power of two.
/// T must be nothrow-movable (packet descriptors are raw pointers).
template <typename T>
class SpscRing {
 public:
  /// `start_index` seeds both cursors; the default 0 is what production
  /// code uses. Tests pass a value near SIZE_MAX so the unsigned index
  /// arithmetic is exercised across the wraparound boundary.
  explicit SpscRing(std::size_t capacity, std::size_t start_index = 0)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        slots_(mask_ + 1),
        high_watermark_(mask_ + 1),
        low_watermark_((mask_ + 1) / 2),
        head_(start_index),
        tail_cache_(start_index),
        tail_(start_index),
        head_cache_(start_index) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Configure the occupancy watermarks the producer-side over_watermark()
  /// gate uses (runtime/overload.*). `high` is clamped to the capacity and
  /// `low` to `high`; the defaults (capacity / capacity-half) make the gate
  /// equivalent to "ring full" until someone opts in. Producer-side state:
  /// call from the producer thread only, before the consumer is racing —
  /// in practice, once at setup.
  void set_watermarks(std::size_t high, std::size_t low) noexcept {
    high_watermark_ = std::min(high, capacity());
    low_watermark_ = std::min(low, high_watermark_);
  }
  std::size_t high_watermark() const noexcept { return high_watermark_; }
  std::size_t low_watermark() const noexcept { return low_watermark_; }

  /// Producer-side hysteresis gate: returns true while the ring is
  /// "pressured" — occupancy reached the high watermark and has not yet
  /// drained back to the low watermark. The stale producer-local tail
  /// cache only ever OVERestimates occupancy (the consumer strictly
  /// drains), so the gate refreshes the cache before any answer that the
  /// stale view alone would flip: it never reports pressure the consumer
  /// has already relieved, and a sub-threshold stale depth is already
  /// proof of no pressure. Call from the producer thread only.
  bool over_watermark() noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t depth = head - tail_cache_;
    const std::size_t threshold =
        pressured_ ? low_watermark_ : high_watermark_;
    if (depth >= threshold && threshold > 0) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      depth = head - tail_cache_;
    }
    pressured_ =
        pressured_ ? depth > low_watermark_ : depth >= high_watermark_;
    return pressured_;
  }

  /// Last over_watermark() verdict, without re-probing (producer side).
  bool pressured() const noexcept { return pressured_; }

  /// Producer side. Returns false when the ring is full — in which case the
  /// value is NOT consumed: the caller keeps it and may retry (the pattern
  /// backpressure loops rely on).
  bool try_push(T&& value) noexcept {
    std::size_t head;
    if (!acquire_slot(head)) return false;
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool try_push(const T& value) noexcept {
    std::size_t head;
    if (!acquire_slot(head)) return false;
    slots_[head & mask_] = value;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Producer side, burst variant: push values[0..n) in order, where n is
  /// the number of free slots (at most values.size()), with ONE release
  /// store for the whole burst — the rte_ring sp_enqueue_burst shape.
  /// Returns n. Only the first n values are consumed (moved from); the
  /// rest are untouched, extending the try_push no-consume-on-failure
  /// contract to bursts: a partial push leaves the tail of the span intact
  /// for the caller's backpressure retry.
  std::size_t try_push_burst(std::span<T> values) noexcept {
    if (values.empty()) return 0;
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t free = capacity() - (head - tail_cache_);
    if (free < values.size()) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      free = capacity() - (head - tail_cache_);
    }
    const std::size_t n = std::min(free, values.size());
    if (n == 0) return 0;
    for (std::size_t i = 0; i < n; ++i) {
      slots_[(head + i) & mask_] = std::move(values[i]);
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Consumer side. Returns nullopt when the ring is empty.
  std::optional<T> try_pop() noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return std::nullopt;
    }
    T value = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  /// Consumer side, burst variant: pop up to out.size() values into
  /// out[0..n) in FIFO order with ONE release store for the whole burst.
  /// Returns n (0 when the ring is empty); out[n..] is untouched.
  std::size_t try_pop_burst(std::span<T> out) noexcept {
    if (out.empty()) return 0;
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t available = head_cache_ - tail;
    if (available < out.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      available = head_cache_ - tail;
    }
    const std::size_t n = std::min(available, out.size());
    if (n == 0) return 0;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::move(slots_[(tail + i) & mask_]);
    }
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Approximate occupancy (exact when called from either endpoint's
  /// thread between operations).
  std::size_t size() const noexcept {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  bool empty() const noexcept { return size() == 0; }

 private:
  /// Producer-side full check; on success `head` is the claimed index.
  bool acquire_slot(std::size_t& head) noexcept {
    head = head_.load(std::memory_order_relaxed);
    if (head - tail_cache_ > mask_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ > mask_) return false;
    }
    return true;
  }

  const std::size_t mask_;
  std::vector<T> slots_;
  std::size_t high_watermark_;  // set at setup, read by the producer
  std::size_t low_watermark_;

  alignas(kCacheLineSize) std::atomic<std::size_t> head_;
  alignas(kCacheLineSize) std::size_t tail_cache_;  // producer-local
  bool pressured_ = false;                          // producer-local
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_;
  alignas(kCacheLineSize) std::size_t head_cache_;  // consumer-local
};

}  // namespace speedybox::util
