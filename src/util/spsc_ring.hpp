// Single-producer single-consumer lock-free ring buffer.
//
// This is the shared-memory descriptor ring OpenNetVM uses to interconnect
// NFs running on dedicated cores (DPDK rte_ring, SP/SC mode). Our ONVM-like
// platform passes packet descriptors between pipeline stages through these
// rings; the calibrated cost of one enqueue/dequeue pair feeds the
// platform's per-hop latency model.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <new>
#include <optional>
#include <vector>

namespace speedybox::util {

/// Destructive-interference (cache line) size. Fixed at 64 — the value for
/// every x86/ARM server part we target — rather than
/// std::hardware_destructive_interference_size, whose value can vary with
/// compiler flags and would make the layout ABI-fragile.
inline constexpr std::size_t kCacheLineSize = 64;

/// Fixed-capacity SPSC ring. Capacity is rounded up to a power of two.
/// T must be nothrow-movable (packet descriptors are raw pointers).
template <typename T>
class SpscRing {
 public:
  /// `start_index` seeds both cursors; the default 0 is what production
  /// code uses. Tests pass a value near SIZE_MAX so the unsigned index
  /// arithmetic is exercised across the wraparound boundary.
  explicit SpscRing(std::size_t capacity, std::size_t start_index = 0)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        slots_(mask_ + 1),
        head_(start_index),
        tail_cache_(start_index),
        tail_(start_index),
        head_cache_(start_index) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. Returns false when the ring is full — in which case the
  /// value is NOT consumed: the caller keeps it and may retry (the pattern
  /// backpressure loops rely on).
  bool try_push(T&& value) noexcept {
    std::size_t head;
    if (!acquire_slot(head)) return false;
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool try_push(const T& value) noexcept {
    std::size_t head;
    if (!acquire_slot(head)) return false;
    slots_[head & mask_] = value;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when the ring is empty.
  std::optional<T> try_pop() noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return std::nullopt;
    }
    T value = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  /// Approximate occupancy (exact when called from either endpoint's
  /// thread between operations).
  std::size_t size() const noexcept {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  bool empty() const noexcept { return size() == 0; }

 private:
  /// Producer-side full check; on success `head` is the claimed index.
  bool acquire_slot(std::size_t& head) noexcept {
    head = head_.load(std::memory_order_relaxed);
    if (head - tail_cache_ > mask_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ > mask_) return false;
    }
    return true;
  }

  const std::size_t mask_;
  std::vector<T> slots_;

  alignas(kCacheLineSize) std::atomic<std::size_t> head_;
  alignas(kCacheLineSize) std::size_t tail_cache_;  // producer-local
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_;
  alignas(kCacheLineSize) std::size_t head_cache_;  // consumer-local
};

}  // namespace speedybox::util
