// Minimal task thread pool.
//
// The ONVM-like platform can run its pipeline stages on real threads
// (ThreadedMode); the state-function parallel executor can dispatch batches
// here. On the single-core evaluation container real threads cannot overlap,
// so the benchmark harness uses the modeled accounting instead — but the
// pool is fully functional and covered by tests, and on a multi-core host
// the threaded paths produce real overlap.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace speedybox::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Safe from any thread.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace speedybox::util
