#include "util/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <mutex>

namespace speedybox::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

std::optional<LogLevel> parse_log_level(std::string_view name) noexcept {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

void log_message(LogLevel level, std::string_view component,
                 const std::string& message) {
  const std::lock_guard lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %.*s: %s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               message.c_str());
}

std::string format_log(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace speedybox::util
