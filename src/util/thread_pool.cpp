#include "util/thread_pool.hpp"

namespace speedybox::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock,
                           [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      const std::lock_guard lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace speedybox::util
