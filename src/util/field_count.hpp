// Compile-time aggregate field counting (the boost.pfr trick): the number
// of fields of an aggregate T is the largest N for which T can be
// brace-initialized from N arguments of "anything". Used to static_assert
// that field-by-field merge functions (RunStats::merge_from and friends)
// are updated whenever a field is added — a silently-unmerged counter in
// the sharded runtime is exactly the kind of bug that survives every
// single-threaded test.
#pragma once

#include <cstddef>
#include <utility>

namespace speedybox::util {

namespace detail {

/// Converts to anything — stands in for "some field initializer" inside an
/// unevaluated brace-init probe. Never defined; never evaluated.
struct AnyField {
  template <typename T>
  operator T() const;  // NOLINT(google-explicit-constructor)
};

template <typename T, typename... Args>
concept BraceConstructible = requires { T{std::declval<Args>()...}; };

template <typename T, typename... Args>
constexpr std::size_t field_count_impl() {
  if constexpr (BraceConstructible<T, Args..., AnyField>) {
    return field_count_impl<T, Args..., AnyField>();
  } else {
    return sizeof...(Args);
  }
}

}  // namespace detail

/// Number of (direct) fields of aggregate T. For non-aggregates the probe
/// counts constructor arity instead, so only use this on plain structs.
template <typename T>
constexpr std::size_t field_count() {
  return detail::field_count_impl<T>();
}

}  // namespace speedybox::util
