// Snort-like IDS (§VI-C).
//
// Mirrors the structure the paper relies on in Snort 2.x:
//   * at configuration time, all rule content strings are compiled into one
//     Aho–Corasick automaton (Snort's detection engine);
//   * when a flow's first packet arrives, the header predicates select the
//     flow's candidate rule set — Observation 1: "Snort assigns a rule
//     matching function for each flow as the initial packet arrives";
//   * every packet is inspected by running the automaton over the payload;
//     a candidate rule fires when all its content strings occur;
//   * the outcome per Pass/Alert/Log action: pass suppresses (pass-first
//     order), alert and log append to the audit log §VII-C compares.
//
// Integration with SpeedyBox records a `forward` header action and one
// READ-class state function wrapping inspect() — the "27 lines" class of
// change from Table II.
#pragma once

#include <cstdint>
#include <vector>

#include "nf/aho_corasick.hpp"
#include "nf/flow_state.hpp"
#include "nf/network_function.hpp"
#include "nf/snort_rule.hpp"

namespace speedybox::nf {

struct SnortLogEntry {
  net::FiveTuple tuple;
  std::uint32_t sid = 0;
  SnortAction action = SnortAction::kAlert;

  friend bool operator==(const SnortLogEntry&,
                         const SnortLogEntry&) = default;
};

/// Per-flow IDS state: the candidate rule group assigned on the initial
/// packet (Observation 1). Owns heap memory, so it carries an explicit
/// FlowStateTraits specialization instead of the memcpy default.
struct SnortFlowState {
  std::vector<std::uint32_t> candidate_rules;  // indices into the rule set
};

template <>
struct FlowStateTraits<SnortFlowState> {
  static void serialize(const SnortFlowState& state, FlowStateWriter& writer) {
    writer.u32(static_cast<std::uint32_t>(state.candidate_rules.size()));
    for (const std::uint32_t rule : state.candidate_rules) writer.u32(rule);
  }
  static void restore(FlowStateReader& reader, SnortFlowState& state) {
    const std::uint32_t count = reader.u32();
    state.candidate_rules.clear();
    state.candidate_rules.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      state.candidate_rules.push_back(reader.u32());
    }
  }
};

class SnortIds : public NetworkFunction {
 public:
  explicit SnortIds(std::vector<SnortRule> rules,
                    std::string name = "snort");

  void process(net::Packet& packet, core::SpeedyBoxContext* ctx) override;
  /// Batched override: parse + tuple extraction hoisted into a pre-pass
  /// that prefetches each packet's payload ahead of the automaton scans;
  /// flow-table mutations, inspection and teardown erases stay in slot
  /// order, bit-identical to scalar.
  void process_batch(net::PacketBatch& batch,
                     std::span<core::SpeedyBoxContext* const> ctxs) override;
  void on_flow_teardown(const net::FiveTuple& tuple) override;
  /// Replicas recompile the automaton from the rule set (config-time cost,
  /// paid once per shard at deployment).
  std::unique_ptr<NetworkFunction> clone() const override {
    return std::make_unique<SnortIds>(rules_, name());
  }

  // Migration payload: the flow's candidate rule indices, so the
  // destination skips the initial-packet header scan and inspects with the
  // identical rule group. The audit log and alert/log/pass totals are
  // shard-local aggregates and are not migrated.
  bool supports_flow_migration() const override { return true; }
  std::optional<std::vector<std::uint8_t>> export_flow_state(
      const net::FiveTuple& tuple) override;
  void import_flow_state(const net::FiveTuple& tuple,
                         std::span<const std::uint8_t> bytes,
                         core::SpeedyBoxContext* ctx) override;

  /// Audit surface for the equivalence tests (§VII-C-1).
  const std::vector<SnortLogEntry>& log() const noexcept { return log_; }
  std::uint64_t alert_count() const noexcept { return alerts_; }
  std::uint64_t log_count() const noexcept { return logs_; }
  std::uint64_t pass_count() const noexcept { return passes_; }
  std::size_t tracked_flows() const noexcept { return flows_.size(); }

  core::FlowTableStats flow_state_stats() const override {
    return flows_.stats();
  }

 private:
  using FlowState = SnortFlowState;

  FlowState& flow_state(const core::HashedTuple& flow);
  void inspect(const net::FiveTuple& tuple, const FlowState& state,
               net::Packet& packet, const net::ParsedPacket& parsed);

  std::vector<SnortRule> rules_;
  AhoCorasick matcher_;         // case-sensitive contents, raw payload
  AhoCorasick nocase_matcher_;  // lowercased contents, lowercased payload
  /// Automaton pattern id -> (rule index, content index within the rule).
  /// Shared id space across both automatons.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pattern_owner_;
  std::vector<std::uint8_t> lowercase_scratch_;

  FlowStateTable<FlowState> flows_;
  std::vector<SnortLogEntry> log_;
  std::uint64_t alerts_ = 0;
  std::uint64_t logs_ = 0;
  std::uint64_t passes_ = 0;

  // Scratch: per-rule matched-content bitmap, reused across packets.
  std::vector<std::uint32_t> matched_generation_;
  std::vector<std::uint64_t> matched_bits_;
  std::uint32_t generation_ = 0;
};

}  // namespace speedybox::nf
