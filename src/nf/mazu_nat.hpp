// MazuNAT (§VI-C): a dynamic NAPT closely following the Click mazu-nat
// configuration — translates the source IP/port of outbound flows to the
// external address with a per-flow allocated port, and reverse-translates
// inbound packets addressed to the external IP. ICMP handling is omitted,
// as in the paper. Each flow's translation is a pair of modify header
// actions, making NAT the canonical Modify NF for consolidation.
//
// Port allocation is deterministic per flow: the external port starts at
// port_lo + hash(tuple) % range and linearly probes past occupied ports.
// This keeps the translation a (near-)pure function of the five-tuple, so
// independent replicas of the NAT — the shards of a flow-sharded runtime —
// assign the same external port a single global instance would, as long as
// no two concurrently-active flows hash to the same starting port.
#pragma once

#include <cstdint>
#include <optional>

#include "nf/flow_state.hpp"
#include "nf/network_function.hpp"

namespace speedybox::nf {

struct MazuNatConfig {
  net::Ipv4Addr external_ip{10, 0, 0, 1};
  std::uint16_t port_lo = 10000;
  std::uint16_t port_hi = 59999;
  /// Flows whose source matches this prefix are outbound (translated).
  net::Ipv4Addr internal_prefix{192, 168, 0, 0};
  std::uint8_t internal_prefix_len = 16;
};

class MazuNat : public NetworkFunction {
 public:
  explicit MazuNat(MazuNatConfig config = {}, std::string name = "mazunat");

  void process(net::Packet& packet, core::SpeedyBoxContext* ctx) override;
  void on_flow_teardown(const net::FiveTuple& tuple) override;
  std::unique_ptr<NetworkFunction> clone() const override {
    return std::make_unique<MazuNat>(config_, name());
  }

  // Migration payload: kind byte (1 = outbound, 2 = inbound) followed by
  // the external port (outbound) or the original pre-NAT tuple (inbound).
  // Untracked flows export nullopt. Port allocation being a deterministic
  // function of the tuple is what makes the handoff exact: the imported
  // port is the one the destination replica would have allocated.
  bool supports_flow_migration() const override { return true; }
  std::optional<std::vector<std::uint8_t>> export_flow_state(
      const net::FiveTuple& tuple) override;
  void import_flow_state(const net::FiveTuple& tuple,
                         std::span<const std::uint8_t> bytes,
                         core::SpeedyBoxContext* ctx) override;

  std::size_t active_mappings() const noexcept { return mappings_.size(); }
  /// External port of a tracked outbound flow (pre-translation tuple).
  std::optional<std::uint16_t> mapping_of(const net::FiveTuple& tuple) const;
  /// Original (pre-NAT) tuple behind an external port; nullopt when the
  /// port is unallocated. The stable view of the reverse direction — the
  /// table shape behind it is not part of the API.
  std::optional<net::FiveTuple> reverse_mapping_of(
      std::uint16_t ext_port) const;
  std::uint64_t translations() const noexcept { return translations_; }

  core::FlowTableStats flow_state_stats() const override {
    core::FlowTableStats stats = mappings_.stats();
    stats.merge_from(reverse_.stats());
    return stats;
  }

 private:
  bool is_outbound(const net::FiveTuple& tuple) const noexcept;
  std::uint16_t allocate_port(const core::HashedTuple& flow);
  void release_mapping(const net::FiveTuple& tuple);
  std::vector<core::HeaderAction> outbound_actions(
      std::uint16_t ext_port) const;

  MazuNatConfig config_;
  FlowStateTable<std::uint16_t> mappings_;  // flow -> external port
  /// ext_port -> original (pre-NAT) tuple, for the inbound direction.
  core::FlowTable<std::uint16_t, net::FiveTuple> reverse_;
  std::uint64_t translations_ = 0;
};

}  // namespace speedybox::nf
