#include "nf/registry.hpp"

#include <charconv>
#include <cstdint>
#include <limits>

#include "core/header_action.hpp"
#include "nf/dos_prevention.hpp"
#include "nf/gateway.hpp"
#include "nf/ip_filter.hpp"
#include "nf/maglev_lb.hpp"
#include "nf/mazu_nat.hpp"
#include "nf/monitor.hpp"
#include "nf/snort_ids.hpp"
#include "nf/snort_rule.hpp"
#include "nf/synthetic_nf.hpp"
#include "nf/vpn_gateway.hpp"

namespace speedybox::nf {

namespace {

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

[[noreturn]] void bad_value(const NfSpec& spec, std::string_view key,
                            std::string_view want) {
  throw RegistryError("NF '" + spec.kind + "': option '" + std::string(key) +
                      "=" + *spec.option(key) + "' is malformed (want " +
                      std::string(want) + ")");
}

/// Option value as u64 in [lo, hi]; the spec's default when absent.
std::uint64_t uint_option(const NfSpec& spec, std::string_view key,
                          std::uint64_t fallback, std::uint64_t lo = 1,
                          std::uint64_t hi =
                              std::numeric_limits<std::uint32_t>::max()) {
  const std::string* raw = spec.option(key);
  if (raw == nullptr) return fallback;
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(raw->data(), raw->data() + raw->size(), value);
  if (ec != std::errc{} || ptr != raw->data() + raw->size() || value < lo ||
      value > hi) {
    bad_value(spec, key, "an integer in [" + std::to_string(lo) + ", " +
                             std::to_string(hi) + "]");
  }
  return value;
}

/// "A.B.C.D/L" -> drop rule; used by ipfilter's drop-dst-prefix option.
AclRule prefix_rule(const NfSpec& spec, std::string_view key) {
  const std::string& raw = *spec.option(key);
  const std::size_t slash = raw.find('/');
  if (slash == std::string::npos) bad_value(spec, key, "A.B.C.D/LEN");
  const auto addr = parse_ipv4(std::string_view{raw}.substr(0, slash));
  if (!addr) bad_value(spec, key, "A.B.C.D/LEN");
  const std::string len_text = raw.substr(slash + 1);
  unsigned len = 0;
  const auto [ptr, ec] = std::from_chars(
      len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size() ||
      len == 0 || len > 32) {
    bad_value(spec, key, "A.B.C.D/LEN with LEN in [1, 32]");
  }
  return AclRule::drop_dst_prefix(*addr, static_cast<std::uint8_t>(len));
}

bool monitor_heavy(const NfSpec& spec) {
  return spec.kind == "heavymonitor" || spec.has_option("heavy");
}

core::PayloadAccess synthetic_access(const NfSpec& spec) {
  const std::string* raw = spec.option("access");
  if (raw == nullptr || *raw == "read") return core::PayloadAccess::kRead;
  if (*raw == "write") return core::PayloadAccess::kWrite;
  if (*raw == "ignore") return core::PayloadAccess::kIgnore;
  throw RegistryError("NF 'synthetic': option 'access=" + *raw +
                      "' is malformed (want read, write or ignore)");
}

constexpr auto kIgnore = core::PayloadAccess::kIgnore;
constexpr auto kRead = core::PayloadAccess::kRead;
constexpr auto kWrite = core::PayloadAccess::kWrite;

core::PayloadAccess fixed(const NfSpec&, core::PayloadAccess access) {
  return access;
}

}  // namespace

NfSpec NfSpec::parse(std::string_view token) {
  NfSpec spec;
  std::size_t start = 0;
  bool first = true;
  while (start <= token.size()) {
    const std::size_t colon = token.find(':', start);
    const std::string_view part = token.substr(
        start, colon == std::string_view::npos ? std::string_view::npos
                                               : colon - start);
    if (first) {
      if (part.empty()) {
        throw RegistryError("empty NF name in chain spec token '" +
                            std::string(token) + "'");
      }
      spec.kind = std::string(part);
      first = false;
    } else {
      const std::size_t eq = part.find('=');
      const std::string key(eq == std::string_view::npos
                                ? part
                                : part.substr(0, eq));
      const std::string value(
          eq == std::string_view::npos ? std::string_view{}
                                       : part.substr(eq + 1));
      if (key.empty()) {
        throw RegistryError("NF '" + spec.kind +
                            "': empty option in token '" +
                            std::string(token) + "'");
      }
      for (const auto& [existing, unused] : spec.options) {
        if (existing == key) {
          throw RegistryError("NF '" + spec.kind + "': duplicate option '" +
                              key + "' in token '" + std::string(token) +
                              "'");
        }
      }
      spec.options.emplace_back(key, value);
    }
    if (colon == std::string_view::npos) break;
    start = colon + 1;
  }
  return spec;
}

std::string NfSpec::to_string() const {
  std::string out = kind;
  for (const auto& [key, value] : options) {
    out += ':';
    out += key;
    if (!value.empty()) {
      out += '=';
      out += value;
    }
  }
  return out;
}

const std::string* NfSpec::option(std::string_view key) const noexcept {
  for (const auto& [existing, value] : options) {
    if (existing == key) return &value;
  }
  return nullptr;
}

const Registry& Registry::instance() {
  static const Registry registry;
  return registry;
}

bool Registry::contains(std::string_view kind) const noexcept {
  for (const auto& [name, unused] : entries_) {
    if (name == kind) return true;
  }
  return false;
}

std::vector<std::string> Registry::kinds() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, unused] : entries_) names.push_back(name);
  return names;
}

const Registry::Entry& Registry::entry(const std::string& kind) const {
  for (const auto& [name, entry] : entries_) {
    if (name == kind) return entry;
  }
  throw RegistryError("unknown NF '" + kind + "' (registered NFs: " +
                      join(kinds()) + ")");
}

void Registry::check_options(const NfSpec& spec, const Entry& entry) const {
  for (const auto& [key, unused] : spec.options) {
    bool known = false;
    for (const std::string& valid : entry.option_keys) {
      if (key == valid) known = true;
    }
    if (!known) {
      throw RegistryError(
          "NF '" + spec.kind + "': unknown option '" + key + "' (" +
          (entry.option_keys.empty()
               ? "this NF takes no options"
               : "valid options: " + join(entry.option_keys)) +
          ")");
    }
  }
}

std::unique_ptr<NetworkFunction> Registry::make(
    const NfSpec& spec, const std::string& label) const {
  const Entry& e = entry(spec.kind);
  check_options(spec, e);
  return e.factory(spec, label);
}

core::PayloadAccess Registry::payload_access(const NfSpec& spec) const {
  const Entry& e = entry(spec.kind);
  check_options(spec, e);
  return e.payload_access(spec);
}

void Registry::add(std::string kind, Entry entry) {
  entries_.emplace_back(std::move(kind), std::move(entry));
}

Registry::Registry() {
  using std::make_unique;

  add("nat", {"Mazu NAT (outbound source translation)",
              {},
              [](const NfSpec& s) { return fixed(s, kIgnore); },
              [](const NfSpec&, const std::string& label) {
                return make_unique<MazuNat>(MazuNatConfig{}, label);
              }});

  add("maglev",
      {"Maglev consistent-hash load balancer",
       {"backends", "table", "subnet", "port", "port-stride"},
       [](const NfSpec& s) { return fixed(s, kIgnore); },
       [](const NfSpec& spec, const std::string& label) {
         // Defaults are chainsim's historical pool: 4 backends at
         // 10.9.0.10+ sharing port 8080. subnet/port/port-stride let one
         // spec express the other pools in the tree (the §VII-C-1 tests'
         // five 10.2.0.x backends on ports 8000+i).
         const auto count = uint_option(spec, "backends", 4, 1, 200);
         const auto table = uint_option(spec, "table", 65537, 7, 1 << 24);
         const auto port = uint_option(spec, "port", 8080, 1, 65535);
         const auto stride = uint_option(spec, "port-stride", 0, 0, 100);
         net::Ipv4Addr base{10, 9, 0, 10};
         if (const std::string* raw = spec.option("subnet")) {
           const auto addr = parse_ipv4(*raw);
           if (!addr) bad_value(spec, "subnet", "A.B.C.D");
           base = *addr;
         }
         std::vector<Backend> backends;
         backends.reserve(count);
         for (std::uint64_t b = 0; b < count; ++b) {
           // Backend b lives at base + b in the last octet (wrapping kept
           // inside the octet, matching the historical pools).
           const net::Ipv4Addr ip{
               (base.value & 0xFFFFFF00u) |
               ((base.value + static_cast<std::uint32_t>(b)) & 0xFFu)};
           backends.push_back(
               {"backend-" + std::to_string(b), ip,
                static_cast<std::uint16_t>(port + stride * b), true});
         }
         return make_unique<MaglevLb>(std::move(backends),
                                      static_cast<std::size_t>(table),
                                      label);
       }});

  add("monitor",
      {"flow statistics monitor (heavy: CM sketch + payload histogram)",
       {"heavy"},
       [](const NfSpec& s) { return monitor_heavy(s) ? kRead : kIgnore; },
       [](const NfSpec& spec, const std::string& label) {
         return make_unique<Monitor>(monitor_heavy(spec)
                                         ? MonitorConfig::heavy()
                                         : MonitorConfig{},
                                     label);
       }});

  add("heavymonitor",
      {"alias for monitor:heavy",
       {},
       [](const NfSpec& s) { return fixed(s, kRead); },
       [](const NfSpec&, const std::string& label) {
         return make_unique<Monitor>(MonitorConfig::heavy(), label);
       }});

  add("ipfilter",
      {"ACL filter (empty ACL by default; options append rules in order)",
       {"drop-dst-port", "drop-dst-prefix", "blacklist"},
       [](const NfSpec& s) { return fixed(s, kIgnore); },
       [](const NfSpec& spec, const std::string& label) {
         std::vector<AclRule> acl;
         for (const auto& [key, value] : spec.options) {
           if (key == "drop-dst-port") {
             acl.push_back(AclRule::drop_dst_port(static_cast<std::uint16_t>(
                 uint_option(spec, key, 0, 1, 65535))));
           } else if (key == "drop-dst-prefix") {
             acl.push_back(prefix_rule(spec, key));
           } else if (key == "blacklist") {
             // A realistically sized blacklist that never matches the
             // benchmark flows (172.31/16) — its linear scan is paid by
             // initial packets (bench_fig9).
             const auto rules = uint_option(spec, key, 32, 1, 4096);
             for (std::uint64_t i = 0; i < rules; ++i) {
               acl.push_back(AclRule::drop_dst_prefix(
                   net::Ipv4Addr{172, 31, static_cast<std::uint8_t>(i), 0},
                   24));
             }
           }
         }
         return make_unique<IpFilter>(std::move(acl), label);
       }});

  add("firewall",
      {"alias for ipfilter:drop-dst-port=23",
       {},
       [](const NfSpec& s) { return fixed(s, kIgnore); },
       [](const NfSpec&, const std::string& label) {
         return make_unique<IpFilter>(
             std::vector<AclRule>{AclRule::drop_dst_port(23)}, label);
       }});

  add("snort", {"Snort-style IDS over the default rule set",
                {},
                [](const NfSpec& s) { return fixed(s, kRead); },
                [](const NfSpec&, const std::string& label) {
                  return make_unique<SnortIds>(default_snort_rules(), label);
                }});

  add("gateway", {"DSCP-marking gateway (VoIP ports 5060-5061 -> EF)",
                  {},
                  [](const NfSpec& s) { return fixed(s, kIgnore); },
                  [](const NfSpec&, const std::string& label) {
                    return make_unique<Gateway>(
                        std::vector<TrafficClass>{{5060, 5061, 46}}, label);
                  }});

  add("vpn-out", {"IPsec-style egress tunnel encapsulation",
                  {"spi"},
                  [](const NfSpec& s) { return fixed(s, kWrite); },
                  [](const NfSpec& spec, const std::string& label) {
                    return make_unique<VpnGateway>(
                        VpnMode::kEgress,
                        static_cast<std::uint32_t>(
                            uint_option(spec, "spi", 0x1000)),
                        label);
                  }});

  add("vpn-in", {"IPsec-style ingress tunnel decapsulation",
                 {"spi"},
                 [](const NfSpec& s) { return fixed(s, kWrite); },
                 [](const NfSpec& spec, const std::string& label) {
                   return make_unique<VpnGateway>(
                       VpnMode::kIngress,
                       static_cast<std::uint32_t>(
                           uint_option(spec, "spi", 0x1000)),
                       label);
                 }});

  add("dos",
      {"SYN-threshold DoS prevention",
       {"threshold"},
       [](const NfSpec& s) { return fixed(s, kIgnore); },
       [](const NfSpec& spec, const std::string& label) {
         // Default threshold below the syn-flood generator's per-tuple SYN
         // budget (24) so `--chain dos,... --workload syn-flood` visibly
         // drops, and far above the single SYN a benign flow opens with.
         return make_unique<DosPrevention>(
             uint_option(spec, "threshold", 16),
             core::HeaderAction::forward(), label);
       }});

  add("synthetic",
      {"configurable-cost synthetic NF (Fig. 5 microbenchmark)",
       {"iterations", "access"},
       [](const NfSpec& s) { return synthetic_access(s); },
       [](const NfSpec& spec, const std::string& label) {
         SyntheticNfConfig config;
         config.work_iterations = static_cast<std::uint32_t>(
             uint_option(spec, "iterations", config.work_iterations));
         config.access = synthetic_access(spec);
         return make_unique<SyntheticNf>(config, label);
       }});
}

}  // namespace speedybox::nf
