#include "nf/mazu_nat.hpp"

#include <stdexcept>

#include "nf/flow_state.hpp"

namespace speedybox::nf {

MazuNat::MazuNat(MazuNatConfig config, std::string name)
    : NetworkFunction(std::move(name)), config_(config) {
  if (config_.port_lo > config_.port_hi) {
    throw std::invalid_argument("MazuNat: empty port range");
  }
}

bool MazuNat::is_outbound(const net::FiveTuple& tuple) const noexcept {
  const std::uint8_t len = config_.internal_prefix_len;
  if (len == 0) return true;
  const std::uint32_t mask = len >= 32 ? ~0u : ~((1u << (32 - len)) - 1);
  return (tuple.src_ip.value & mask) == (config_.internal_prefix.value & mask);
}

std::uint16_t MazuNat::allocate_port(const core::HashedTuple& flow) {
  const std::uint32_t range =
      static_cast<std::uint32_t>(config_.port_hi - config_.port_lo) + 1;
  // The per-packet flow hash doubles as the allocation start point, so
  // allocation stays a deterministic function of the tuple.
  const std::uint32_t start =
      static_cast<std::uint32_t>(flow.hash.value % range);
  for (std::uint32_t probe = 0; probe < range; ++probe) {
    const std::uint16_t port = static_cast<std::uint16_t>(
        config_.port_lo + (start + probe) % range);
    if (!reverse_.contains(port)) return port;
  }
  throw std::runtime_error("MazuNat: port pool exhausted");
}

void MazuNat::release_mapping(const net::FiveTuple& tuple) {
  const std::uint16_t* port = mappings_.find(tuple);
  if (port == nullptr) return;
  reverse_.erase(*port);
  mappings_.erase(tuple);
}

std::vector<core::HeaderAction> MazuNat::outbound_actions(
    std::uint16_t ext_port) const {
  return {
      core::HeaderAction::modify(net::HeaderField::kSrcIp,
                                 config_.external_ip.value),
      core::HeaderAction::modify(net::HeaderField::kSrcPort, ext_port),
  };
}

void MazuNat::process(net::Packet& packet, core::SpeedyBoxContext* ctx) {
  count_packet();
  const auto parsed = parse_and_check(packet);  // R1: per-NF parse+validate
  if (!parsed) return;
  const auto flow =
      core::HashedTuple::of(net::extract_five_tuple(packet, *parsed));
  const net::FiveTuple tuple = flow.tuple;

  if (is_outbound(tuple)) {
    std::uint16_t ext_port;
    if (const std::uint16_t* mapped = mappings_.find(tuple, flow.hash)) {
      ext_port = *mapped;
    } else {
      ext_port = allocate_port(flow);
      mappings_.try_emplace(tuple, flow.hash, ext_port);
      reverse_.try_emplace(ext_port, tuple);
    }
    ++translations_;
    for (const auto& action : outbound_actions(ext_port)) {
      core::apply_action_baseline(action, packet);
    }
    if (ctx != nullptr) {
      for (const auto& action : outbound_actions(ext_port)) {
        ctx->add_header_action(action);
      }
      ctx->on_teardown([this, tuple]() { release_mapping(tuple); });
    }
    if (parsed->has_fin_or_rst()) release_mapping(tuple);
    return;
  }

  // Inbound: reverse-translate packets addressed to the external IP.
  if (tuple.dst_ip == config_.external_ip) {
    const net::FiveTuple* found = reverse_.find(tuple.dst_port);
    if (found == nullptr) {
      packet.mark_dropped();  // no mapping: unsolicited inbound
      return;
    }
    const net::FiveTuple& orig = *found;
    const std::vector<core::HeaderAction> actions = {
        core::HeaderAction::modify(net::HeaderField::kDstIp,
                                   orig.src_ip.value),
        core::HeaderAction::modify(net::HeaderField::kDstPort, orig.src_port),
    };
    ++translations_;
    for (const auto& action : actions) {
      core::apply_action_baseline(action, packet);
    }
    if (ctx != nullptr) {
      for (const auto& action : actions) ctx->add_header_action(action);
    }
  }
  // Neither outbound nor addressed to us: forward untouched.
}

std::optional<std::uint16_t> MazuNat::mapping_of(
    const net::FiveTuple& tuple) const {
  const std::uint16_t* port = mappings_.find(tuple);
  if (port == nullptr) return std::nullopt;
  return *port;
}

std::optional<net::FiveTuple> MazuNat::reverse_mapping_of(
    std::uint16_t ext_port) const {
  const net::FiveTuple* orig = reverse_.find(ext_port);
  if (orig == nullptr) return std::nullopt;
  return *orig;
}

void MazuNat::on_flow_teardown(const net::FiveTuple& tuple) {
  release_mapping(tuple);
}

namespace {
constexpr std::uint8_t kNatOutbound = 1;
constexpr std::uint8_t kNatInbound = 2;
}  // namespace

std::optional<std::vector<std::uint8_t>> MazuNat::export_flow_state(
    const net::FiveTuple& tuple) {
  if (const std::uint16_t* port = mappings_.find(tuple)) {
    FlowStateWriter writer;
    writer.u8(kNatOutbound);
    writer.u16(*port);
    return writer.take();
  }
  if (tuple.dst_ip == config_.external_ip) {
    if (const net::FiveTuple* orig = reverse_.find(tuple.dst_port)) {
      FlowStateWriter writer;
      writer.u8(kNatInbound);
      writer.tuple(*orig);
      return writer.take();
    }
  }
  return std::nullopt;  // untracked: the NAT forwards this flow untouched
}

void MazuNat::import_flow_state(const net::FiveTuple& tuple,
                                std::span<const std::uint8_t> bytes,
                                core::SpeedyBoxContext* ctx) {
  FlowStateReader reader{bytes};
  const std::uint8_t kind = reader.u8();
  if (kind == kNatOutbound) {
    const std::uint16_t ext_port = reader.u16();
    mappings_.try_emplace(tuple, ext_port);
    reverse_.try_emplace(ext_port, tuple);
    if (ctx != nullptr) {
      for (const auto& action : outbound_actions(ext_port)) {
        ctx->add_header_action(action);
      }
      ctx->on_teardown([this, tuple]() { release_mapping(tuple); });
    }
    return;
  }
  if (kind == kNatInbound) {
    // Both directions share a shard (symmetric-hash affinity), so the
    // outbound sibling migrates alongside; emplace keeps whichever
    // direction imported first authoritative.
    const net::FiveTuple orig = reader.tuple();
    mappings_.try_emplace(orig, tuple.dst_port);
    reverse_.try_emplace(tuple.dst_port, orig);
    if (ctx != nullptr) {
      ctx->add_header_action(core::HeaderAction::modify(
          net::HeaderField::kDstIp, orig.src_ip.value));
      ctx->add_header_action(core::HeaderAction::modify(
          net::HeaderField::kDstPort, orig.src_port));
    }
    return;
  }
  throw std::invalid_argument("MazuNat: unknown flow-state kind");
}

}  // namespace speedybox::nf
