#include "nf/mazu_nat.hpp"

#include <stdexcept>

#include "nf/flow_state.hpp"

namespace speedybox::nf {

MazuNat::MazuNat(MazuNatConfig config, std::string name)
    : NetworkFunction(std::move(name)), config_(config) {
  if (config_.port_lo > config_.port_hi) {
    throw std::invalid_argument("MazuNat: empty port range");
  }
}

bool MazuNat::is_outbound(const net::FiveTuple& tuple) const noexcept {
  const std::uint8_t len = config_.internal_prefix_len;
  if (len == 0) return true;
  const std::uint32_t mask = len >= 32 ? ~0u : ~((1u << (32 - len)) - 1);
  return (tuple.src_ip.value & mask) == (config_.internal_prefix.value & mask);
}

std::uint16_t MazuNat::allocate_port(const net::FiveTuple& tuple) {
  const std::uint32_t range =
      static_cast<std::uint32_t>(config_.port_hi - config_.port_lo) + 1;
  const std::uint32_t start =
      static_cast<std::uint32_t>(tuple.hash() % range);
  for (std::uint32_t probe = 0; probe < range; ++probe) {
    const std::uint16_t port = static_cast<std::uint16_t>(
        config_.port_lo + (start + probe) % range);
    if (reverse_.find(port) == reverse_.end()) return port;
  }
  throw std::runtime_error("MazuNat: port pool exhausted");
}

void MazuNat::release_mapping(const net::FiveTuple& tuple) {
  const auto it = mappings_.find(tuple);
  if (it == mappings_.end()) return;
  reverse_.erase(it->second);
  mappings_.erase(it);
}

std::vector<core::HeaderAction> MazuNat::outbound_actions(
    std::uint16_t ext_port) const {
  return {
      core::HeaderAction::modify(net::HeaderField::kSrcIp,
                                 config_.external_ip.value),
      core::HeaderAction::modify(net::HeaderField::kSrcPort, ext_port),
  };
}

void MazuNat::process(net::Packet& packet, core::SpeedyBoxContext* ctx) {
  count_packet();
  const auto parsed = parse_and_check(packet);  // R1: per-NF parse+validate
  if (!parsed) return;
  const net::FiveTuple tuple = net::extract_five_tuple(packet, *parsed);

  if (is_outbound(tuple)) {
    std::uint16_t ext_port;
    const auto it = mappings_.find(tuple);
    if (it != mappings_.end()) {
      ext_port = it->second;
    } else {
      ext_port = allocate_port(tuple);
      mappings_.emplace(tuple, ext_port);
      reverse_.emplace(ext_port, tuple);
    }
    ++translations_;
    for (const auto& action : outbound_actions(ext_port)) {
      core::apply_action_baseline(action, packet);
    }
    if (ctx != nullptr) {
      for (const auto& action : outbound_actions(ext_port)) {
        ctx->add_header_action(action);
      }
      ctx->on_teardown([this, tuple]() { release_mapping(tuple); });
    }
    if (parsed->has_fin_or_rst()) release_mapping(tuple);
    return;
  }

  // Inbound: reverse-translate packets addressed to the external IP.
  if (tuple.dst_ip == config_.external_ip) {
    const auto it = reverse_.find(tuple.dst_port);
    if (it == reverse_.end()) {
      packet.mark_dropped();  // no mapping: unsolicited inbound
      return;
    }
    const net::FiveTuple& orig = it->second;
    const std::vector<core::HeaderAction> actions = {
        core::HeaderAction::modify(net::HeaderField::kDstIp,
                                   orig.src_ip.value),
        core::HeaderAction::modify(net::HeaderField::kDstPort, orig.src_port),
    };
    ++translations_;
    for (const auto& action : actions) {
      core::apply_action_baseline(action, packet);
    }
    if (ctx != nullptr) {
      for (const auto& action : actions) ctx->add_header_action(action);
    }
  }
  // Neither outbound nor addressed to us: forward untouched.
}

std::optional<std::uint16_t> MazuNat::mapping_of(
    const net::FiveTuple& tuple) const {
  const auto it = mappings_.find(tuple);
  if (it == mappings_.end()) return std::nullopt;
  return it->second;
}

void MazuNat::on_flow_teardown(const net::FiveTuple& tuple) {
  release_mapping(tuple);
}

namespace {
constexpr std::uint8_t kNatOutbound = 1;
constexpr std::uint8_t kNatInbound = 2;
}  // namespace

std::optional<std::vector<std::uint8_t>> MazuNat::export_flow_state(
    const net::FiveTuple& tuple) {
  if (const auto it = mappings_.find(tuple); it != mappings_.end()) {
    FlowStateWriter writer;
    writer.u8(kNatOutbound);
    writer.u16(it->second);
    return writer.take();
  }
  if (tuple.dst_ip == config_.external_ip) {
    if (const auto it = reverse_.find(tuple.dst_port);
        it != reverse_.end()) {
      FlowStateWriter writer;
      writer.u8(kNatInbound);
      writer.tuple(it->second);
      return writer.take();
    }
  }
  return std::nullopt;  // untracked: the NAT forwards this flow untouched
}

void MazuNat::import_flow_state(const net::FiveTuple& tuple,
                                std::span<const std::uint8_t> bytes,
                                core::SpeedyBoxContext* ctx) {
  FlowStateReader reader{bytes};
  const std::uint8_t kind = reader.u8();
  if (kind == kNatOutbound) {
    const std::uint16_t ext_port = reader.u16();
    mappings_.emplace(tuple, ext_port);
    reverse_.emplace(ext_port, tuple);
    if (ctx != nullptr) {
      for (const auto& action : outbound_actions(ext_port)) {
        ctx->add_header_action(action);
      }
      ctx->on_teardown([this, tuple]() { release_mapping(tuple); });
    }
    return;
  }
  if (kind == kNatInbound) {
    // Both directions share a shard (symmetric-hash affinity), so the
    // outbound sibling migrates alongside; emplace keeps whichever
    // direction imported first authoritative.
    const net::FiveTuple orig = reader.tuple();
    mappings_.emplace(orig, tuple.dst_port);
    reverse_.emplace(tuple.dst_port, orig);
    if (ctx != nullptr) {
      ctx->add_header_action(core::HeaderAction::modify(
          net::HeaderField::kDstIp, orig.src_ip.value));
      ctx->add_header_action(core::HeaderAction::modify(
          net::HeaderField::kDstPort, orig.src_port));
    }
    return;
  }
  throw std::invalid_argument("MazuNat: unknown flow-state kind");
}

}  // namespace speedybox::nf
