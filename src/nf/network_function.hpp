// NF framework: the contract between NFs and the two data paths.
//
// An NF implements process(packet, ctx). On the baseline path and for all
// packets of the original chain, ctx is null and the NF behaves like an
// unmodified middlebox — it parses the packet itself, looks up its own flow
// tables, applies its actions. On the SpeedyBox recording pass (the initial
// packet of each flow), ctx carries the flow's SpeedyBoxContext and the NF
// additionally records its behavior through the §IV-B APIs. Recording never
// alters processing: the packet leaves process() identical either way.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "core/flow_table.hpp"
#include "net/checksum.hpp"
#include "net/packet.hpp"
#include "net/packet_batch.hpp"

namespace speedybox::nf {

class NetworkFunction {
 public:
  explicit NetworkFunction(std::string name) : name_(std::move(name)) {}
  virtual ~NetworkFunction() = default;

  NetworkFunction(const NetworkFunction&) = delete;
  NetworkFunction& operator=(const NetworkFunction&) = delete;

  const std::string& name() const noexcept { return name_; }

  /// Process one packet. May mark it dropped; the chain stops there.
  virtual void process(net::Packet& packet, core::SpeedyBoxContext* ctx) = 0;

  /// Process a burst (DESIGN.md §8). `ctxs` carries one SpeedyBoxContext*
  /// per slot, or is empty when every slot runs baseline (ctx = nullptr).
  /// The default loops the scalar process() over the valid slots in slot
  /// order — every NF keeps working unchanged — and masks slots whose
  /// packet dropped. Overrides (Monitor, IpFilter, SnortIds) hoist the
  /// stateless per-packet work (parse + validate + hash) into a pre-pass
  /// that prefetches across the batch, but MUST keep all stateful work in
  /// slot order and byte-identical to the scalar path: the differential
  /// harness compares the two paths bit for bit.
  virtual void process_batch(net::PacketBatch& batch,
                             std::span<core::SpeedyBoxContext* const> ctxs) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!batch.valid(i)) continue;
      process(batch.packet(i), ctxs.empty() ? nullptr : ctxs[i]);
      if (batch.packet(i).dropped()) batch.mask(i);
    }
  }

  /// Create a configuration-identical instance with fresh per-flow state —
  /// how a sharded deployment replicates the chain, one replica per core.
  /// Because flows are shard-affine, replicas never need to share state, so
  /// per-flow tables start empty; configuration (ACLs, rules, backends,
  /// port ranges) is copied. Returns nullptr when the NF is not replicable
  /// (the sharded runtime refuses such chains).
  virtual std::unique_ptr<NetworkFunction> clone() const { return nullptr; }

  /// clone() with the silent-nullptr footgun removed: throws
  /// std::logic_error naming the offending NF when clone() is
  /// unimplemented. Replication points (ServiceChain::clone, the sharded
  /// runtime, flow migration) call this so a non-replicable NF fails loudly
  /// at setup instead of degrading at runtime.
  std::unique_ptr<NetworkFunction> clone_checked() const {
    auto copy = clone();
    if (copy == nullptr) {
      throw std::logic_error("NetworkFunction '" + name_ +
                             "' does not support clone()");
    }
    return copy;
  }

  // --- Per-flow state migration (live resharding, DESIGN.md §10) ----------

  /// Whether this NF implements the export/import pair below. The migration
  /// engine refuses chains containing non-migratable NFs at setup.
  virtual bool supports_flow_migration() const { return false; }

  /// Serialize this NF's state for `tuple` (the tuple as observed by THIS
  /// NF, i.e. after upstream rewrites) into an opaque byte payload. Returns
  /// std::nullopt when the NF holds no state for the flow — the importer
  /// then skips this NF entirely. Export is a COPY: source-side state is
  /// released later via the LocalMat teardown hooks, except where an NF
  /// documents move semantics (Monitor moves its per-flow counters so the
  /// cross-shard union of counter maps stays a partition).
  virtual std::optional<std::vector<std::uint8_t>> export_flow_state(
      const net::FiveTuple& tuple) {
    (void)tuple;
    throw std::logic_error("NetworkFunction '" + name_ +
                           "' does not support flow migration (export)");
  }

  /// Restore state exported by an identically configured instance AND
  /// re-record the flow's behavior through `ctx` (header actions, state
  /// functions, teardown hooks, events), exactly as process() would have on
  /// the initial packet. Re-recording — not copying LocalMat entries — is
  /// required because recorded closures capture the source instance and
  /// node pointers into its tables; the destination must capture its own.
  virtual void import_flow_state(const net::FiveTuple& tuple,
                                 std::span<const std::uint8_t> bytes,
                                 core::SpeedyBoxContext* ctx) {
    (void)tuple;
    (void)bytes;
    (void)ctx;
    throw std::logic_error("NetworkFunction '" + name_ +
                           "' does not support flow migration (import)");
  }

  /// Flow teardown notification (FIN/RST): release per-flow state.
  virtual void on_flow_teardown(const net::FiveTuple& tuple) {
    (void)tuple;
  }

  /// Occupancy / probe-length / slab statistics of this NF's per-flow
  /// tables (DESIGN.md §13), merged across all of them when the NF keeps
  /// several (MazuNat's forward+reverse). Zero-valued for stateless NFs.
  virtual core::FlowTableStats flow_state_stats() const { return {}; }

  std::uint64_t packets_processed() const noexcept { return packets_; }

 protected:
  void count_packet() noexcept { ++packets_; }

  /// Parse the packet and validate the IPv4 header checksum, dropping it on
  /// failure — what Click's CheckIPHeader element (present in the paper's
  /// IPFilter and mazu-nat configurations) does at the head of every
  /// pipeline. Every baseline NF pays this per packet: this is exactly the
  /// R1 redundancy (repeated parsing and validation) that SpeedyBox's
  /// classifier amortizes to once per packet.
  static std::optional<net::ParsedPacket> parse_and_check(
      net::Packet& packet) noexcept {
    auto parsed = net::parse_packet(packet);
    if (!parsed || !net::verify_ipv4_checksum(packet, parsed->l3_offset)) {
      packet.mark_dropped();
      return std::nullopt;
    }
    return parsed;
  }

 private:
  std::string name_;
  std::uint64_t packets_ = 0;
};

}  // namespace speedybox::nf
