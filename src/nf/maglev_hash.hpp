// Maglev consistent hashing (Eisenbud et al., NSDI'16, §3.4).
//
// Google's Maglev is closed source; like the paper, we implement the lookup
// table construction from the published algorithm: each backend gets a
// permutation of table slots derived from two independent hashes of its
// name (offset/skip), and backends take turns claiming their next preferred
// empty slot until the table is full. The construction guarantees near-even
// load and minimal disruption when the backend set changes — both verified
// by property tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace speedybox::nf {

/// True if n is prime (the table size must be prime so every skip value
/// walks all slots).
bool is_prime(std::uint64_t n) noexcept;

class MaglevTable {
 public:
  /// Build the lookup table for the given backend names, considering only
  /// those with active[i] == true. `table_size` must be prime and >= the
  /// number of active backends; throws std::invalid_argument otherwise.
  MaglevTable(const std::vector<std::string>& backend_names,
              const std::vector<bool>& active, std::size_t table_size);

  /// Convenience: all backends active.
  MaglevTable(const std::vector<std::string>& backend_names,
              std::size_t table_size);

  /// Backend index for a flow-hash; -1 when no backend is active.
  std::int32_t lookup(std::uint64_t flow_hash) const noexcept {
    if (entries_.empty()) return -1;
    return entries_[flow_hash % entries_.size()];
  }

  std::size_t size() const noexcept { return entries_.size(); }
  const std::vector<std::int32_t>& entries() const noexcept {
    return entries_;
  }

  /// Slots assigned to each backend index (for the balance property test).
  std::vector<std::size_t> slot_counts(std::size_t backend_count) const;

 private:
  void build(const std::vector<std::string>& names,
             const std::vector<bool>& active);

  std::vector<std::int32_t> entries_;
};

}  // namespace speedybox::nf
