#include "nf/synthetic_nf.hpp"

#include "util/hash.hpp"

namespace speedybox::nf {

SyntheticNf::SyntheticNf(SyntheticNfConfig config, std::string name)
    : NetworkFunction(std::move(name)), config_(config) {}

void SyntheticNf::run_state_function(net::Packet& packet,
                                     const net::ParsedPacket& parsed) {
  switch (config_.access) {
    case core::PayloadAccess::kRead: {
      // Inspection-like work: hash the payload repeatedly.
      const auto payload = net::payload_view(
          static_cast<const net::Packet&>(packet), parsed);
      for (std::uint32_t i = 0; i < config_.work_iterations; ++i) {
        digest_ = util::hash_combine(digest_, util::fnv1a(payload));
      }
      break;
    }
    case core::PayloadAccess::kWrite: {
      // Deterministic payload transform (e.g. scrubbing/normalization).
      auto payload = net::payload_view(packet, parsed);
      for (std::uint32_t i = 0; i < config_.work_iterations; ++i) {
        std::uint8_t rolling = static_cast<std::uint8_t>(i + 1);
        for (std::uint8_t& byte : payload) {
          byte = static_cast<std::uint8_t>(byte ^ rolling);
          rolling = static_cast<std::uint8_t>(rolling * 31 + 7);
        }
      }
      digest_ = util::hash_combine(digest_, util::fnv1a(payload));
      break;
    }
    case core::PayloadAccess::kIgnore: {
      // Internal-state-only work.
      std::uint64_t acc = digest_ | 1;
      for (std::uint32_t i = 0; i < config_.work_iterations * 8; ++i) {
        acc = util::mix64(acc + i);
      }
      digest_ = acc;
      break;
    }
  }
}

void SyntheticNf::process(net::Packet& packet, core::SpeedyBoxContext* ctx) {
  count_packet();
  const auto parsed = parse_and_check(packet);  // R1: per-NF parse+validate
  if (!parsed) return;

  if (config_.header_action) {
    core::apply_action_baseline(*config_.header_action, packet);
    if (packet.dropped()) {
      if (ctx != nullptr) ctx->add_header_action(*config_.header_action);
      return;
    }
  }
  run_state_function(packet, *parsed);

  if (ctx != nullptr) {
    ctx->add_header_action(config_.header_action
                               ? *config_.header_action
                               : core::HeaderAction::forward());
    core::localmat_add_SF(
        ctx,
        [this](net::Packet& pkt, const net::ParsedPacket& p) {
          run_state_function(pkt, p);
        },
        config_.access, name() + ".work");
  }
}

}  // namespace speedybox::nf
