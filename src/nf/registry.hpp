// Library-level NF registry: chain topology as data (DESIGN.md §12).
//
// An NfSpec is one parsed chain-spec token — `kind[:key[=value]]...`, e.g.
// `nat`, `maglev:backends=5:table=1021`, `monitor:heavy` — and the Registry
// maps kinds to factories that validate the options and construct the NF.
// This is the single place the §VII-C chains (and every user-defined chain)
// are built from: chainsim, the plan layer (runtime/plan.hpp), the benches
// and the equivalence tests all route through Registry::make(), so an NF's
// construction defaults live in exactly one factory.
//
// Error contract (the "loud errors" the tools rely on): every failure is a
// RegistryError whose message names the offending kind/option AND lists the
// valid choices — an unknown kind lists every registered NF, an unknown or
// malformed option lists that NF's option keys.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/state_function.hpp"
#include "nf/network_function.hpp"

namespace speedybox::nf {

/// One chain-spec token, parsed. Options keep their spelling order so
/// to_string() round-trips the token (parse(to_string(s)) == s), which the
/// plan layer's JSON serialization leans on. Keys within one spec must be
/// unique (duplicate keys are rejected at parse time).
struct NfSpec {
  std::string kind;
  std::vector<std::pair<std::string, std::string>> options;

  /// Parse `kind[:key[=value]]...`. Throws RegistryError on an empty token,
  /// an empty option key, or a duplicate key. Does NOT check the kind or
  /// keys against the registry — Registry::make() does, so specs for
  /// not-yet-registered NFs can still be represented.
  static NfSpec parse(std::string_view token);

  /// The canonical token: kind, then options in spelling order
  /// (value-less flags render bare).
  std::string to_string() const;

  /// First value for `key`; nullptr when absent.
  const std::string* option(std::string_view key) const noexcept;
  bool has_option(std::string_view key) const noexcept {
    return option(key) != nullptr;
  }

  bool operator==(const NfSpec&) const = default;
};

/// Every registry failure: unknown kind, unknown option, malformed value.
/// The message always names the offender and lists the valid choices.
class RegistryError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Registry {
 public:
  struct Entry {
    /// One-line summary for listings (usage text, error messages).
    std::string description;
    /// Valid option keys, in documentation order. make() rejects any spec
    /// option not in this list.
    std::vector<std::string> option_keys;
    /// Worst-case payload access of the NF's recorded state functions for
    /// this spec — what the consolidation planner feeds Table I's
    /// parallelizable() predicate. A function of the spec because options
    /// change it (monitor:heavy records a READ histogram pass,
    /// synthetic:access=write a WRITE kernel).
    std::function<core::PayloadAccess(const NfSpec&)> payload_access;
    std::function<std::unique_ptr<NetworkFunction>(const NfSpec&,
                                                   const std::string& label)>
        factory;
  };

  /// The process-wide registry with every built-in NF registered.
  static const Registry& instance();

  bool contains(std::string_view kind) const noexcept;
  /// Registered kinds in registration (documentation) order.
  std::vector<std::string> kinds() const;
  /// Throws RegistryError listing every registered kind when unknown.
  const Entry& entry(const std::string& kind) const;

  /// Validate the spec against the kind's entry (unknown kind, unknown
  /// option keys) and construct the NF named `label`. Option-value errors
  /// surface as RegistryError from the factory.
  std::unique_ptr<NetworkFunction> make(const NfSpec& spec,
                                        const std::string& label) const;

  /// The spec's state-function payload-access class (validates the spec the
  /// same way make() does, without constructing).
  core::PayloadAccess payload_access(const NfSpec& spec) const;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry();
  void add(std::string kind, Entry entry);
  void check_options(const NfSpec& spec, const Entry& entry) const;

  std::vector<std::pair<std::string, Entry>> entries_;
};

}  // namespace speedybox::nf
