#include "nf/snort_ids.hpp"

#include <stdexcept>

#include "nf/flow_state.hpp"
#include "util/prefetch.hpp"

namespace speedybox::nf {

namespace {

std::string to_lower(std::string_view text) {
  std::string lowered{text};
  for (char& c : lowered) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return lowered;
}

}  // namespace

SnortIds::SnortIds(std::vector<SnortRule> rules, std::string name)
    : NetworkFunction(std::move(name)), rules_(std::move(rules)) {
  for (std::uint32_t r = 0; r < rules_.size(); ++r) {
    for (std::uint32_t c = 0; c < rules_[r].contents.size(); ++c) {
      const ContentMatch& content = rules_[r].contents[c];
      const auto pattern_id =
          static_cast<std::uint32_t>(pattern_owner_.size());
      pattern_owner_.emplace_back(r, c);
      if (content.nocase) {
        nocase_matcher_.add_pattern(to_lower(content.pattern), pattern_id);
      } else {
        matcher_.add_pattern(content.pattern, pattern_id);
      }
    }
  }
  matcher_.build();
  nocase_matcher_.build();
  matched_generation_.assign(rules_.size(), 0);
  matched_bits_.assign(rules_.size(), 0);
}

SnortIds::FlowState& SnortIds::flow_state(const core::HashedTuple& flow) {
  const auto [state, inserted] = flows_.try_emplace(flow.tuple, flow.hash);
  if (inserted) {
    // Initial packet of the flow: assign the candidate rule set by linear
    // header matching — the per-flow "rule matching function" of
    // Observation 1. This is the initialization cost Fig. 4 shows
    // dominating initial packets.
    for (std::uint32_t r = 0; r < rules_.size(); ++r) {
      if (rules_[r].header_matches(flow.tuple)) {
        state->candidate_rules.push_back(r);
      }
    }
  }
  return *state;
}

void SnortIds::inspect(const net::FiveTuple& tuple, const FlowState& state,
                       net::Packet& packet,
                       const net::ParsedPacket& parsed) {
  if (state.candidate_rules.empty()) return;
  const auto payload = net::payload_view(packet, parsed);

  // One automaton pass per case class; mark which contents of which rules
  // occurred at positions satisfying their offset/depth constraints.
  ++generation_;
  const auto on_match = [this](std::uint32_t pattern_id, std::size_t end) {
    const auto [rule, content] = pattern_owner_[pattern_id];
    if (!rules_[rule].contents[content].position_ok(end)) return;
    if (matched_generation_[rule] != generation_) {
      matched_generation_[rule] = generation_;
      matched_bits_[rule] = 0;
    }
    matched_bits_[rule] |= 1ULL << content;
  };
  if (matcher_.pattern_count() > 0) {
    matcher_.match(payload, on_match);
  }
  if (nocase_matcher_.pattern_count() > 0) {
    lowercase_scratch_.assign(payload.begin(), payload.end());
    for (std::uint8_t& byte : lowercase_scratch_) {
      if (byte >= 'A' && byte <= 'Z') {
        byte = static_cast<std::uint8_t>(byte - 'A' + 'a');
      }
    }
    nocase_matcher_.match(lowercase_scratch_, on_match);
  }

  // Evaluate candidates; pass-first order (a firing pass rule suppresses
  // alert/log outcomes for this packet).
  bool passed = false;
  std::vector<std::uint32_t> fired;
  for (const std::uint32_t r : state.candidate_rules) {
    if (matched_generation_[r] != generation_) continue;
    const SnortRule& rule = rules_[r];
    const std::uint64_t all =
        rule.contents.size() >= 64
            ? ~0ULL
            : (1ULL << rule.contents.size()) - 1;
    if ((matched_bits_[r] & all) != all) continue;
    if (rule.action == SnortAction::kPass) {
      passed = true;
      break;
    }
    fired.push_back(r);
  }
  if (passed) {
    ++passes_;
    return;
  }
  for (const std::uint32_t r : fired) {
    const SnortRule& rule = rules_[r];
    log_.push_back({tuple, rule.sid, rule.action});
    if (rule.action == SnortAction::kAlert) {
      ++alerts_;
    } else {
      ++logs_;
    }
  }
}

void SnortIds::process(net::Packet& packet, core::SpeedyBoxContext* ctx) {
  count_packet();
  const auto parsed = parse_and_check(packet);  // R1: per-NF parse+validate
  if (!parsed) return;
  const auto flow =
      core::HashedTuple::of(net::extract_five_tuple(packet, *parsed));
  const net::FiveTuple tuple = flow.tuple;
  FlowState& state = flow_state(flow);

  inspect(tuple, state, packet, *parsed);

  if (ctx != nullptr) {
    // Snort never modifies packets: forward header action (§VI-C), and the
    // inspection wrapped as a READ-class state function. Per Figure 2 the
    // handler is recorded together with its args — here the flow's resolved
    // rule-group state — so the fast path skips the per-packet flow-table
    // lookup (slab records are pointer-stable across resizes; the teardown
    // hook that frees the state runs only when the rule itself is erased).
    ctx->add_header_action(core::HeaderAction::forward());
    const FlowState* flow_args = &state;
    core::localmat_add_SF(
        ctx,
        [this, tuple, flow_args](net::Packet& pkt,
                                 const net::ParsedPacket& p) {
          inspect(tuple, *flow_args, pkt, p);
        },
        core::PayloadAccess::kRead, name() + ".inspect");
    ctx->on_teardown([this, tuple]() { flows_.erase(tuple); });
  }

  // Connection close frees the flow state inline on the unrecorded path;
  // on the recorded path the teardown hook does it (after the rule whose
  // handler references this state has been destroyed).
  if (ctx == nullptr && parsed->has_fin_or_rst()) {
    flows_.erase(tuple, flow.hash);
  }
}

void SnortIds::process_batch(net::PacketBatch& batch,
                             std::span<core::SpeedyBoxContext* const> ctxs) {
  // Pre-pass: parse + validate and prefetch each payload — the automaton
  // walks every payload byte, so streaming the later packets' payloads in
  // while the earlier ones are inspected hides their memory latency.
  struct Live {
    std::size_t slot;
    net::ParsedPacket parsed;
    core::HashedTuple flow;
  };
  std::vector<Live> live;
  live.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!batch.valid(i)) continue;
    core::SpeedyBoxContext* ctx = ctxs.empty() ? nullptr : ctxs[i];
    if (ctx != nullptr) {
      // Recording stays scalar (DESIGN.md §8).
      process(batch.packet(i), ctx);
      if (batch.packet(i).dropped()) batch.mask(i);
      continue;
    }
    net::Packet& packet = batch.packet(i);
    count_packet();
    const auto parsed = parse_and_check(packet);
    if (!parsed) {
      batch.mask(i);
      continue;
    }
    const auto payload = net::payload_view(packet, *parsed);
    for (std::size_t off = 0; off < payload.size();
         off += util::kCacheLineSize) {
      util::prefetch_read(payload.data() + off);
    }
    const auto flow =
        core::HashedTuple::of(net::extract_five_tuple(packet, *parsed));
    flows_.prefetch(flow.hash);
    live.push_back({i, *parsed, flow});
  }
  // Stateful pass in slot order: candidate-set assignment (first packet of
  // a flow), inspection, and the inline FIN/RST flow-state erase interleave
  // exactly as the scalar loop would.
  for (const Live& entry : live) {
    FlowState& state = flow_state(entry.flow);
    inspect(entry.flow.tuple, state, batch.packet(entry.slot), entry.parsed);
    if (entry.parsed.has_fin_or_rst()) {
      flows_.erase(entry.flow.tuple, entry.flow.hash);
    }
  }
}

void SnortIds::on_flow_teardown(const net::FiveTuple& tuple) {
  flows_.erase(tuple);
}

std::optional<std::vector<std::uint8_t>> SnortIds::export_flow_state(
    const net::FiveTuple& tuple) {
  return flows_.export_state(tuple);
}

void SnortIds::import_flow_state(const net::FiveTuple& tuple,
                                 std::span<const std::uint8_t> bytes,
                                 core::SpeedyBoxContext* ctx) {
  // The traits restore handles the wire format; the rule-range check needs
  // the configured rule set, so it stays here. A bad payload must not leave
  // a half-trusted candidate group behind.
  FlowState& stored = flows_.import_state(tuple, bytes);
  for (const std::uint32_t rule : stored.candidate_rules) {
    if (rule >= rules_.size()) {
      flows_.erase(tuple);
      throw std::invalid_argument("SnortIds: imported rule index out of range");
    }
  }
  if (ctx != nullptr) {
    // Re-record what process() recorded on the initial packet, binding the
    // destination's own flow-state node.
    ctx->add_header_action(core::HeaderAction::forward());
    const FlowState* flow_args = &stored;
    core::localmat_add_SF(
        ctx,
        [this, tuple, flow_args](net::Packet& pkt,
                                 const net::ParsedPacket& p) {
          inspect(tuple, *flow_args, pkt, p);
        },
        core::PayloadAccess::kRead, name() + ".inspect");
    ctx->on_teardown([this, tuple]() { flows_.erase(tuple); });
  }
}

}  // namespace speedybox::nf
