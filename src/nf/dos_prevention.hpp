// DoS-prevention NF: the paper's Fig. 3 walkthrough example of the Event
// Table. Monitors the number of TCP SYN flags per flow; while under the
// threshold the flow gets its normal header action, and when the counter
// exceeds the threshold an event replaces the action with drop — on the
// fast path this is a registered event that rewrites the Local MAT record
// and re-consolidates the Global MAT entry, exactly as in Fig. 3.
#pragma once

#include <cstdint>
#include <mutex>

#include "nf/flow_state.hpp"
#include "nf/network_function.hpp"

namespace speedybox::nf {

class DosPrevention : public NetworkFunction {
 public:
  /// `normal_action`: what the NF does to non-attack traffic (Fig. 3 shows
  /// a modify; forward by default).
  explicit DosPrevention(
      std::uint64_t syn_threshold,
      core::HeaderAction normal_action = core::HeaderAction::forward(),
      std::string name = "dosprev");

  void process(net::Packet& packet, core::SpeedyBoxContext* ctx) override;
  void on_flow_teardown(const net::FiveTuple& tuple) override;
  std::unique_ptr<NetworkFunction> clone() const override {
    return std::make_unique<DosPrevention>(threshold_, normal_action_,
                                           name());
  }

  // Migration payload: the flow's SYN count and blacklist flag. For a
  // not-yet-blacklisted flow the one-shot blacklist event is re-registered
  // so it fires at the same packet it would have on the source shard; for
  // an already-blacklisted flow only the drop action is re-recorded — the
  // event has fired, and re-arming it would double-count drops().
  bool supports_flow_migration() const override { return true; }
  std::optional<std::vector<std::uint8_t>> export_flow_state(
      const net::FiveTuple& tuple) override;
  void import_flow_state(const net::FiveTuple& tuple,
                         std::span<const std::uint8_t> bytes,
                         core::SpeedyBoxContext* ctx) override;

  std::uint64_t syn_count(const net::FiveTuple& tuple) const;
  bool is_blacklisted(const net::FiveTuple& tuple) const;
  std::uint64_t drops() const {
    const std::lock_guard lock(mutex_);
    return drops_;
  }

  core::FlowTableStats flow_state_stats() const override {
    const std::lock_guard lock(mutex_);
    return flows_.stats();
  }

 private:
  struct FlowState {
    std::uint64_t syn_count = 0;
    bool blacklisted = false;
  };

  std::uint64_t threshold_;
  core::HeaderAction normal_action_;
  /// Guards flows_ and drops_: the blacklist event lambdas run on the
  /// manager core (Global MAT event check) while the data path, the
  /// recorded SYN-counting state function, and the teardown hook run on
  /// this NF's core. Never held across a SpeedyBoxContext call (the Event
  /// Table invokes conditions under its own mutex — see MaglevLb).
  mutable std::mutex mutex_;
  FlowStateTable<FlowState> flows_;
  std::uint64_t drops_ = 0;
};

}  // namespace speedybox::nf
